#include <gtest/gtest.h>

#include <cmath>

#include "tuning/search.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {
namespace {

double bowl(const ConfigPoint& p, const std::vector<double>& target) {
  double sum = 1.0;
  for (std::size_t d = 0; d < p.size(); ++d) {
    const double delta = static_cast<double>(p[d]) - target[d];
    sum += delta * delta;
  }
  return sum;
}

template <typename Fn>
std::size_t drive(SearchStrategy& s, std::vector<std::int64_t> sizes, Fn&& cost,
                  std::size_t cap = 20000) {
  s.initialize(std::move(sizes));
  std::size_t evals = 0;
  while (!s.converged() && evals < cap) {
    const ConfigPoint p = s.propose();
    s.report(cost(p));
    ++evals;
  }
  return evals;
}

TEST(HillClimb, FindsExactMinimumOfConvexBowl) {
  // On a convex separable function, steepest descent reaches the *exact*
  // grid optimum (no local minima to get stuck in).
  auto search = make_hill_climb_search(0, 123);
  drive(*search, {40, 30}, [](const ConfigPoint& p) { return bowl(p, {25, 7}); });
  EXPECT_TRUE(search->converged());
  EXPECT_EQ(search->best(), (ConfigPoint{25, 7}));
}

TEST(HillClimb, ProposalsStayInGrid) {
  auto search = make_hill_climb_search(1, 5);
  search->initialize({3, 3});
  for (int i = 0; i < 200 && !search->converged(); ++i) {
    const ConfigPoint p = search->propose();
    for (std::size_t d = 0; d < 2; ++d) {
      ASSERT_GE(p[d], 0);
      ASSERT_LT(p[d], 3);
    }
    search->report(bowl(p, {0, 2}));
  }
  EXPECT_EQ(search->best(), (ConfigPoint{0, 2}));
}

TEST(HillClimb, RestartsEscapeLocalMinima) {
  // Two-basin landscape on a line: local minimum at 5 (value 2), global at
  // 45 (value 1), separated by a high ridge at 25.
  const auto cost = [](const ConfigPoint& p) {
    const double x = static_cast<double>(p[0]);
    const double local = 2.0 + 0.1 * (x - 5.0) * (x - 5.0);
    const double global = 1.0 + 0.1 * (x - 45.0) * (x - 45.0);
    return std::min(local, global);
  };
  // With many restarts, at least one lands in the global basin.
  auto search = make_hill_climb_search(8, 99);
  drive(*search, {50}, cost);
  EXPECT_EQ(search->best(), (ConfigPoint{45}));
}

TEST(HillClimb, ConvergesAtLocalMinimumWithoutRestarts) {
  auto search = make_hill_climb_search(0, 7);
  const std::size_t evals =
      drive(*search, {20}, [](const ConfigPoint& p) { return bowl(p, {10}); });
  EXPECT_TRUE(search->converged());
  EXPECT_LT(evals, 100u);
  // After convergence it pins its best point.
  EXPECT_EQ(search->propose(), search->best());
}

TEST(HillClimb, SingletonDimensionsHandled) {
  auto search = make_hill_climb_search(0, 3);
  drive(*search, {1, 10, 1}, [](const ConfigPoint& p) { return bowl(p, {0, 4, 0}); });
  EXPECT_TRUE(search->converged());
  EXPECT_EQ(search->best()[1], 4);
}

TEST(HillClimb, RestartReopensSearch) {
  auto search = make_hill_climb_search(0, 11);
  drive(*search, {30}, [](const ConfigPoint& p) { return bowl(p, {3}); });
  ASSERT_TRUE(search->converged());
  search->restart();
  EXPECT_FALSE(search->converged());
  drive(*search, {30}, [&](const ConfigPoint& p) { return bowl(p, {3}); });
  EXPECT_EQ(search->best(), (ConfigPoint{3}));
}

TEST(HillClimb, WorksInsideTuner) {
  std::int64_t x = 0;
  Tuner tuner(make_hill_climb_search(1, 17));
  tuner.register_parameter(&x, 0, 50);
  for (int i = 0; i < 500 && !tuner.converged(); ++i) {
    tuner.apply_next();
    tuner.record(1.0 + std::abs(static_cast<double>(x) - 33.0));
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_EQ(tuner.best_values()[0], 33);
}

}  // namespace
}  // namespace kdtune
