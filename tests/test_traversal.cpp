// Traversal edge cases the random-ray oracle sweeps are unlikely to hit:
// rays lying exactly in split planes, axis-parallel rays, interval clamping,
// early termination across leaf boundaries.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/intersect.hpp"
#include "kdtree/builder.hpp"

namespace kdtune {
namespace {

// Two quads (4 triangles) at z=1 and z=3, side by side in x so the root
// split lands between them on some axis.
std::vector<Triangle> two_walls() {
  std::vector<Triangle> tris;
  const auto quad = [&tris](float z, float x0, float x1) {
    tris.push_back({{x0, -1, z}, {x1, -1, z}, {x1, 1, z}});
    tris.push_back({{x0, -1, z}, {x1, 1, z}, {x0, 1, z}});
  };
  quad(1.0f, -2.0f, -0.5f);
  quad(3.0f, 0.5f, 2.0f);
  return tris;
}

class TraversalEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    tris_ = two_walls();
    ThreadPool pool(0);
    tree_ = make_sweep_builder()->build(tris_, kBaseConfig, pool);
  }

  void expect_matches_oracle(const Ray& ray) {
    const Hit expected = brute_force_closest_hit(ray, tris_);
    const Hit got = tree_->closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid());
    if (expected.valid()) EXPECT_NEAR(got.t, expected.t, 1e-5f);
    EXPECT_EQ(tree_->any_hit(ray), brute_force_any_hit(ray, tris_));
  }

  std::vector<Triangle> tris_;
  std::unique_ptr<KdTreeBase> tree_;
};

TEST_F(TraversalEdgeCases, StraightThroughBothWalls) {
  expect_matches_oracle(Ray({-1, 0, -1}, {0, 0, 1}));
  expect_matches_oracle(Ray({1, 0, -1}, {0, 0, 1}));
}

TEST_F(TraversalEdgeCases, FromBehind) {
  expect_matches_oracle(Ray({-1, 0, 5}, {0, 0, -1}));
}

TEST_F(TraversalEdgeCases, OriginBetweenWalls) {
  expect_matches_oracle(Ray({0, 0, 2}, {0, 0, 1}));
  expect_matches_oracle(Ray({0, 0, 2}, {0, 0, -1}));
}

TEST_F(TraversalEdgeCases, AxisParallelThroughGap) {
  // Travels along x between the walls; never hits.
  expect_matches_oracle(Ray({-5, 0, 2}, {1, 0, 0}));
}

TEST_F(TraversalEdgeCases, RayInSplitPlane) {
  // The kd-tree of two z-separated walls splits on z somewhere in (1, 3);
  // build a ray living exactly in a node plane: dir.z == 0, origin.z at a
  // plane position. Sweep all z in [1, 3] to be sure one matches a plane.
  for (float z = 1.0f; z <= 3.01f; z += 0.125f) {
    expect_matches_oracle(Ray({-5, 0, z}, {1, 0, 0}));
    expect_matches_oracle(Ray({5, 0.5f, z}, {-1, 0, 0}));
  }
}

TEST_F(TraversalEdgeCases, DiagonalCorners) {
  expect_matches_oracle(Ray({-3, -3, -3}, normalized(Vec3{1, 1, 1})));
  expect_matches_oracle(Ray({3, 3, 5}, normalized(Vec3{-1, -1, -1})));
}

TEST_F(TraversalEdgeCases, TminTmaxWindow) {
  // A window that excludes the first wall but includes the second.
  const Ray windowed({-1, 0, -1}, {0, 0, 1}, 2.5f, 10.0f);
  EXPECT_FALSE(tree_->closest_hit(windowed).valid());  // first wall at t=2 skipped
  const Ray narrow({1, 0, -1}, {0, 0, 1}, 3.5f, 4.5f);
  const Hit hit = tree_->closest_hit(narrow);
  ASSERT_TRUE(hit.valid());
  EXPECT_NEAR(hit.t, 4.0f, 1e-5f);  // second wall at z=3
}

TEST_F(TraversalEdgeCases, GrazingTheSceneBounds) {
  const AABB box = bounds_of(tris_);
  // Skim along the top face.
  expect_matches_oracle(Ray({box.lo.x - 1, box.hi.y, 2.0f}, {1, 0, 0}));
  // Just above: must be a clean miss.
  const Ray above({box.lo.x - 1, box.hi.y + 0.01f, 2.0f}, {1, 0, 0});
  EXPECT_FALSE(tree_->closest_hit(above).valid());
}

TEST_F(TraversalEdgeCases, EarlyTerminationIsNotPremature) {
  // A hit found in a near leaf must not mask a closer hit in a farther leaf
  // when the near hit lies beyond the leaf's interval. Construct the classic
  // trap: a big triangle spanning both children, hit far away, plus a close
  // triangle only in the far child.
  std::vector<Triangle> tris{
      // Large slanted triangle spanning x in [-2, 2], hit at z ~ 4.
      {{-2, -2, 4}, {2, -2, 4}, {0, 2, 4}},
      // Small triangle at z = 1 on the +x side only.
      {{0.5f, -0.5f, 1}, {1.5f, -0.5f, 1}, {1.0f, 0.5f, 1}},
  };
  ThreadPool pool(0);
  const auto tree = make_sweep_builder()->build(tris, kBaseConfig, pool);
  const Ray ray({1, 0, -1}, {0, 0, 1});
  const Hit expected = brute_force_closest_hit(ray, tris);
  const Hit got = tree->closest_hit(ray);
  ASSERT_TRUE(got.valid());
  EXPECT_EQ(got.triangle, expected.triangle);
  EXPECT_NEAR(got.t, expected.t, 1e-5f);
  EXPECT_NEAR(got.t, 2.0f, 1e-5f);
}

TEST_F(TraversalEdgeCases, ZeroLengthIntervalMisses) {
  const Ray degenerate({-1, 0, -1}, {0, 0, 1}, 5.0f, 5.0f);
  EXPECT_FALSE(tree_->closest_hit(degenerate).valid());
}

// ---------------------------------------------------------------------------
// Traversal stack-depth safety. The fixed near/far stack holds
// kMaxStackDepth entries; a tree deeper than that silently drops far-child
// pushes, i.e. loses hits. resolved_max_depth must therefore clamp any
// depth request (manual or automatic) to the stack capacity.

TEST(TraversalStackDepth, ResolvedMaxDepthIsClampedToStack) {
  BuildConfig config;
  config.max_depth = 200;  // manual override far beyond the stack
  EXPECT_LE(config.resolved_max_depth(1000), traversal_detail::kMaxStackDepth);
  config.max_depth = 0;  // automatic bound with an absurd primitive count
  EXPECT_LE(config.resolved_max_depth(std::size_t{1} << 62),
            traversal_detail::kMaxStackDepth);
}

// Regression: a degenerate scene whose spatial-median tree would exceed the
// stack depth if the clamp were removed. Triangles sit at exponentially
// spaced z = 2^i, so every midpoint split peels only the topmost few off —
// a depth ~N chain. A ray entering from below descends the chain pushing
// one far child per level; without the clamp (depth 200 honored) the pushes
// past kMaxStackDepth were dropped and the hits below went missing.
// Verified to fail against the unclamped resolved_max_depth.
TEST(TraversalStackDepth, DeepChainSceneDoesNotLoseHits) {
  std::vector<Triangle> tris;
  for (int i = 0; i < 90; ++i) {
    const float z = std::ldexp(1.0f, i);  // 2^i
    // Hittable band lives at x in [10, 11]; the rest at x in [0, 1] only
    // shapes the tree. The ray below misses those.
    const float x0 = (i >= 8 && i < 20) ? 10.0f : 0.0f;
    tris.push_back({{x0, 0, z}, {x0 + 1, 0, z}, {x0, 1, z}});
  }
  BuildConfig config;
  config.max_depth = 200;
  ThreadPool pool(0);
  const auto tree = make_median_builder()->build(tris, config, pool);

  const Ray up({10.25f, 0.25f, 0.0f}, {0, 0, 1});
  const Hit expected = brute_force_closest_hit(up, tris);
  ASSERT_TRUE(expected.valid());
  const Hit got = tree->closest_hit(up);
  ASSERT_TRUE(got.valid());
  EXPECT_EQ(got.triangle, expected.triangle);
  EXPECT_EQ(got.t, expected.t);
  EXPECT_TRUE(tree->any_hit(up));
}

}  // namespace
}  // namespace kdtune
