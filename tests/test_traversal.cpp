// Traversal edge cases the random-ray oracle sweeps are unlikely to hit:
// rays lying exactly in split planes, axis-parallel rays, interval clamping,
// early termination across leaf boundaries.

#include <gtest/gtest.h>

#include "geom/intersect.hpp"
#include "kdtree/builder.hpp"

namespace kdtune {
namespace {

// Two quads (4 triangles) at z=1 and z=3, side by side in x so the root
// split lands between them on some axis.
std::vector<Triangle> two_walls() {
  std::vector<Triangle> tris;
  const auto quad = [&tris](float z, float x0, float x1) {
    tris.push_back({{x0, -1, z}, {x1, -1, z}, {x1, 1, z}});
    tris.push_back({{x0, -1, z}, {x1, 1, z}, {x0, 1, z}});
  };
  quad(1.0f, -2.0f, -0.5f);
  quad(3.0f, 0.5f, 2.0f);
  return tris;
}

class TraversalEdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    tris_ = two_walls();
    ThreadPool pool(0);
    tree_ = make_sweep_builder()->build(tris_, kBaseConfig, pool);
  }

  void expect_matches_oracle(const Ray& ray) {
    const Hit expected = brute_force_closest_hit(ray, tris_);
    const Hit got = tree_->closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid());
    if (expected.valid()) EXPECT_NEAR(got.t, expected.t, 1e-5f);
    EXPECT_EQ(tree_->any_hit(ray), brute_force_any_hit(ray, tris_));
  }

  std::vector<Triangle> tris_;
  std::unique_ptr<KdTreeBase> tree_;
};

TEST_F(TraversalEdgeCases, StraightThroughBothWalls) {
  expect_matches_oracle(Ray({-1, 0, -1}, {0, 0, 1}));
  expect_matches_oracle(Ray({1, 0, -1}, {0, 0, 1}));
}

TEST_F(TraversalEdgeCases, FromBehind) {
  expect_matches_oracle(Ray({-1, 0, 5}, {0, 0, -1}));
}

TEST_F(TraversalEdgeCases, OriginBetweenWalls) {
  expect_matches_oracle(Ray({0, 0, 2}, {0, 0, 1}));
  expect_matches_oracle(Ray({0, 0, 2}, {0, 0, -1}));
}

TEST_F(TraversalEdgeCases, AxisParallelThroughGap) {
  // Travels along x between the walls; never hits.
  expect_matches_oracle(Ray({-5, 0, 2}, {1, 0, 0}));
}

TEST_F(TraversalEdgeCases, RayInSplitPlane) {
  // The kd-tree of two z-separated walls splits on z somewhere in (1, 3);
  // build a ray living exactly in a node plane: dir.z == 0, origin.z at a
  // plane position. Sweep all z in [1, 3] to be sure one matches a plane.
  for (float z = 1.0f; z <= 3.01f; z += 0.125f) {
    expect_matches_oracle(Ray({-5, 0, z}, {1, 0, 0}));
    expect_matches_oracle(Ray({5, 0.5f, z}, {-1, 0, 0}));
  }
}

TEST_F(TraversalEdgeCases, DiagonalCorners) {
  expect_matches_oracle(Ray({-3, -3, -3}, normalized(Vec3{1, 1, 1})));
  expect_matches_oracle(Ray({3, 3, 5}, normalized(Vec3{-1, -1, -1})));
}

TEST_F(TraversalEdgeCases, TminTmaxWindow) {
  // A window that excludes the first wall but includes the second.
  const Ray windowed({-1, 0, -1}, {0, 0, 1}, 2.5f, 10.0f);
  EXPECT_FALSE(tree_->closest_hit(windowed).valid());  // first wall at t=2 skipped
  const Ray narrow({1, 0, -1}, {0, 0, 1}, 3.5f, 4.5f);
  const Hit hit = tree_->closest_hit(narrow);
  ASSERT_TRUE(hit.valid());
  EXPECT_NEAR(hit.t, 4.0f, 1e-5f);  // second wall at z=3
}

TEST_F(TraversalEdgeCases, GrazingTheSceneBounds) {
  const AABB box = bounds_of(tris_);
  // Skim along the top face.
  expect_matches_oracle(Ray({box.lo.x - 1, box.hi.y, 2.0f}, {1, 0, 0}));
  // Just above: must be a clean miss.
  const Ray above({box.lo.x - 1, box.hi.y + 0.01f, 2.0f}, {1, 0, 0});
  EXPECT_FALSE(tree_->closest_hit(above).valid());
}

TEST_F(TraversalEdgeCases, EarlyTerminationIsNotPremature) {
  // A hit found in a near leaf must not mask a closer hit in a farther leaf
  // when the near hit lies beyond the leaf's interval. Construct the classic
  // trap: a big triangle spanning both children, hit far away, plus a close
  // triangle only in the far child.
  std::vector<Triangle> tris{
      // Large slanted triangle spanning x in [-2, 2], hit at z ~ 4.
      {{-2, -2, 4}, {2, -2, 4}, {0, 2, 4}},
      // Small triangle at z = 1 on the +x side only.
      {{0.5f, -0.5f, 1}, {1.5f, -0.5f, 1}, {1.0f, 0.5f, 1}},
  };
  ThreadPool pool(0);
  const auto tree = make_sweep_builder()->build(tris, kBaseConfig, pool);
  const Ray ray({1, 0, -1}, {0, 0, 1});
  const Hit expected = brute_force_closest_hit(ray, tris);
  const Hit got = tree->closest_hit(ray);
  ASSERT_TRUE(got.valid());
  EXPECT_EQ(got.triangle, expected.triangle);
  EXPECT_NEAR(got.t, expected.t, 1e-5f);
  EXPECT_NEAR(got.t, 2.0f, 1e-5f);
}

TEST_F(TraversalEdgeCases, ZeroLengthIntervalMisses) {
  const Ray degenerate({-1, 0, -1}, {0, 0, 1}, 5.0f, 5.0f);
  EXPECT_FALSE(tree_->closest_hit(degenerate).valid());
}

}  // namespace
}  // namespace kdtune
