// Determinism regression for the dynamic generators: frame i of Toasters,
// Wood Doll and Fairy Forest must produce bit-identical triangle data no
// matter how often, from which generator instance, or from how many threads
// concurrently it is generated. The dynamic FramePipeline's oracle-parity
// guarantee (overlapped == sequential, bit-exact) rests on this: frames are
// regenerated per build, sometimes on a pool worker, sometimes on the driver.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/differential.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::vector<std::size_t> sample_frames(std::size_t count) {
  std::vector<std::size_t> frames{0};
  if (count > 1) frames.push_back(1);
  if (count > 4) frames.push_back(count / 2);
  if (count > 2) frames.push_back(count - 1);
  return frames;
}

bool bit_identical(const Scene& a, const Scene& b) {
  if (a.triangle_count() != b.triangle_count()) return false;
  if (a.triangle_count() == 0) return true;
  return std::memcmp(a.triangles().data(), b.triangles().data(),
                     a.triangle_count() * sizeof(Triangle)) == 0;
}

class DynamicSceneDeterminism
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DynamicSceneDeterminism, FramesAreBitIdenticalAcrossInstances) {
  const float detail = kdtune_ci_small() ? 0.05f : 0.1f;
  const auto gen_a = make_scene(GetParam(), detail);
  const auto gen_b = make_scene(GetParam(), detail);  // independent instance
  for (const std::size_t i : sample_frames(gen_a->frame_count())) {
    const Scene ref = gen_a->frame(i);
    EXPECT_TRUE(bit_identical(ref, gen_a->frame(i)))
        << GetParam() << " frame " << i << " differs between calls";
    EXPECT_TRUE(bit_identical(ref, gen_b->frame(i)))
        << GetParam() << " frame " << i << " differs between instances";
  }
}

TEST_P(DynamicSceneDeterminism, FramesAreBitIdenticalAcrossThreads) {
  const float detail = kdtune_ci_small() ? 0.05f : 0.1f;
  const auto gen = make_scene(GetParam(), detail);
  const std::size_t frame = gen->frame_count() / 2;
  const Scene ref = gen->frame(frame);

  constexpr int kThreads = 4;
  std::vector<Scene> produced(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&gen, &produced, frame, t] { produced[t] = gen->frame(frame); });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(bit_identical(ref, produced[t]))
        << GetParam() << " frame " << frame << " differs on thread " << t;
  }
}

TEST_P(DynamicSceneDeterminism, GeometryActuallyChangesBetweenFrames) {
  const float detail = kdtune_ci_small() ? 0.05f : 0.1f;
  const auto gen = make_scene(GetParam(), detail);
  ASSERT_GT(gen->frame_count(), 1u);
  EXPECT_TRUE(gen->dynamic());
  EXPECT_FALSE(bit_identical(gen->frame(0), gen->frame(1)))
      << GetParam() << " frames 0 and 1 are identical — not dynamic?";
}

INSTANTIATE_TEST_SUITE_P(Dynamic, DynamicSceneDeterminism,
                         ::testing::ValuesIn(dynamic_scene_ids()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '_') c = 'X';
                           }
                           return name;
                         });

}  // namespace
}  // namespace kdtune
