#include "parallel/stable_pool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kdtune {
namespace {

TEST(StablePool, AppendAndRead) {
  StablePool<int> pool(100);
  const std::size_t a = pool.append(3);
  EXPECT_EQ(a, 0u);
  pool[0] = 10;
  pool[1] = 20;
  pool[2] = 30;
  const std::size_t b = pool.append(2);
  EXPECT_EQ(b, 3u);
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_EQ(pool[0], 10);
  EXPECT_EQ(pool[2], 30);
}

TEST(StablePool, ElementsAreValueInitialized) {
  StablePool<int> pool(10);
  pool.append(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(pool[i], 0);
  }
}

TEST(StablePool, CapacityExceededThrows) {
  StablePool<int> pool(10);
  pool.append(8);
  EXPECT_THROW(pool.append(3), std::length_error);
  // The failed append must not have changed the size.
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_NO_THROW(pool.append(2));
}

TEST(StablePool, AddressesAreStableAcrossGrowth) {
  StablePool<int> pool(StablePool<int>::kBlockSize * 4);
  pool.append(1);
  int* first = &pool[0];
  pool[0] = 42;
  // Grow across several blocks.
  pool.append(StablePool<int>::kBlockSize * 3);
  EXPECT_EQ(first, &pool[0]);
  EXPECT_EQ(pool[0], 42);
}

TEST(StablePool, SpansMultipleBlocks) {
  const std::size_t n = StablePool<int>::kBlockSize * 2 + 17;
  StablePool<int> pool(n);
  pool.append(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = static_cast<int>(i % 1000);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(pool[i], static_cast<int>(i % 1000));
  }
}

TEST(StablePool, ConcurrentReadersDuringAppend) {
  // Readers hammer already-published elements while a writer appends new
  // blocks; under TSan/ASan this exercises the acquire/release pairing.
  constexpr std::size_t kBlock = StablePool<int>::kBlockSize;
  StablePool<int> pool(kBlock * 16);
  const std::size_t base = pool.append(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) pool[base + i] = 7;

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::size_t i = 0; i < kBlock; ++i) {
          if (pool[i] != 7) bad.fetch_add(1);
        }
      }
    });
  }
  for (int k = 0; k < 15; ++k) {
    const std::size_t s = pool.append(kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) pool[s + i] = 7;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace kdtune
