#include "geom/transform.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace kdtune {
namespace {

constexpr float kPi = std::numbers::pi_v<float>;

void expect_near(const Vec3& a, const Vec3& b, float eps = 1e-5f) {
  EXPECT_NEAR(a.x, b.x, eps);
  EXPECT_NEAR(a.y, b.y, eps);
  EXPECT_NEAR(a.z, b.z, eps);
}

TEST(Transform, IdentityLeavesPointsAlone) {
  const Transform id;
  expect_near(id.apply_point({1, 2, 3}), {1, 2, 3});
  expect_near(id.apply_vector({1, 2, 3}), {1, 2, 3});
}

TEST(Transform, TranslateMovesPointsNotVectors) {
  const Transform t = Transform::translate({1, 2, 3});
  expect_near(t.apply_point({0, 0, 0}), {1, 2, 3});
  expect_near(t.apply_vector({5, 5, 5}), {5, 5, 5});
}

TEST(Transform, Scale) {
  const Transform s = Transform::scale({2, 3, 4});
  expect_near(s.apply_point({1, 1, 1}), {2, 3, 4});
  expect_near(Transform::scale(2.0f).apply_point({1, 1, 1}), {2, 2, 2});
}

TEST(Transform, RotateQuarterTurnAroundZ) {
  const Transform r = Transform::rotate({0, 0, 1}, kPi / 2.0f);
  expect_near(r.apply_point({1, 0, 0}), {0, 1, 0});
  expect_near(r.apply_point({0, 1, 0}), {-1, 0, 0});
}

TEST(Transform, RotationPreservesLength) {
  const Transform r = Transform::rotate({1, 2, 3}, 1.234f);
  const Vec3 v{0.5f, -2.0f, 1.5f};
  EXPECT_NEAR(length(r.apply_vector(v)), length(v), 1e-5f);
}

TEST(Transform, CompositionAppliesRightFirst) {
  const Transform t = Transform::translate({1, 0, 0});
  const Transform s = Transform::scale(2.0f);
  // (s * t): translate first, then scale.
  expect_near((s * t).apply_point({0, 0, 0}), {2, 0, 0});
  // (t * s): scale first, then translate.
  expect_near((t * s).apply_point({1, 0, 0}), {3, 0, 0});
}

TEST(Transform, CompositionMatchesSequentialApplication) {
  const Transform a =
      Transform::translate({1, 2, 3}) * Transform::rotate({0, 1, 0}, 0.7f);
  const Transform b = Transform::scale({2, 1, 0.5f});
  const Vec3 p{0.3f, -1.0f, 2.0f};
  expect_near((a * b).apply_point(p), a.apply_point(b.apply_point(p)), 1e-4f);
}

TEST(Transform, BoundsTransformContainsTransformedCorners) {
  const AABB box({-1, -1, -1}, {1, 1, 1});
  const Transform xf =
      Transform::translate({5, 0, 0}) * Transform::rotate({0, 0, 1}, 0.5f);
  const AABB out = xf.apply_bounds(box);
  for (int c = 0; c < 8; ++c) {
    const Vec3 p{(c & 1) ? box.hi.x : box.lo.x, (c & 2) ? box.hi.y : box.lo.y,
                 (c & 4) ? box.hi.z : box.lo.z};
    EXPECT_TRUE(out.contains(xf.apply_point(p), 1e-4f));
  }
}

TEST(Transform, EmptyBoundsStayEmpty) {
  const AABB out = Transform::translate({1, 1, 1}).apply_bounds(AABB{});
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace kdtune
