#include "geom/aabb.hpp"

#include <gtest/gtest.h>

#include "geom/rng.hpp"

namespace kdtune {
namespace {

TEST(AABB, DefaultIsEmpty) {
  const AABB box;
  EXPECT_TRUE(box.empty());
  EXPECT_FLOAT_EQ(box.surface_area(), 0.0f);
  EXPECT_FLOAT_EQ(box.volume(), 0.0f);
}

TEST(AABB, ExpandByPoints) {
  AABB box;
  box.expand({1, 2, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo, Vec3(1, 2, 3));
  EXPECT_EQ(box.hi, Vec3(1, 2, 3));
  box.expand({-1, 5, 0});
  EXPECT_EQ(box.lo, Vec3(-1, 2, 0));
  EXPECT_EQ(box.hi, Vec3(1, 5, 3));
}

TEST(AABB, ExpandByEmptyBoxIsIdentity) {
  AABB box({0, 0, 0}, {1, 1, 1});
  box.expand(AABB{});
  EXPECT_EQ(box, AABB({0, 0, 0}, {1, 1, 1}));
}

TEST(AABB, SurfaceAreaAndVolume) {
  const AABB box({0, 0, 0}, {2, 3, 4});
  EXPECT_FLOAT_EQ(box.surface_area(), 2 * (2 * 3 + 3 * 4 + 4 * 2));
  EXPECT_FLOAT_EQ(box.volume(), 24.0f);
}

TEST(AABB, FlatBoxHasAreaButNoVolume) {
  const AABB box({0, 0, 0}, {2, 0, 4});
  EXPECT_FLOAT_EQ(box.surface_area(), 2 * (2 * 4));
  EXPECT_FLOAT_EQ(box.volume(), 0.0f);
}

TEST(AABB, CenterExtentLongestAxis) {
  const AABB box({0, 0, 0}, {4, 2, 8});
  EXPECT_EQ(box.center(), Vec3(2, 1, 4));
  EXPECT_EQ(box.extent(), Vec3(4, 2, 8));
  EXPECT_EQ(box.longest_axis(), Axis::Z);
}

TEST(AABB, Contains) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(box.contains(Vec3(0.5f, 0.5f, 0.5f)));
  EXPECT_TRUE(box.contains(Vec3(0, 0, 0)));  // boundary inclusive
  EXPECT_FALSE(box.contains(Vec3(1.1f, 0.5f, 0.5f)));
  EXPECT_TRUE(box.contains(Vec3(1.05f, 0.5f, 0.5f), 0.1f));  // epsilon
  EXPECT_TRUE(box.contains(AABB({0.2f, 0.2f, 0.2f}, {0.8f, 0.8f, 0.8f})));
  EXPECT_FALSE(box.contains(AABB({0.2f, 0.2f, 0.2f}, {1.8f, 0.8f, 0.8f})));
}

TEST(AABB, Overlaps) {
  const AABB a({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(a.overlaps(AABB({0.5f, 0.5f, 0.5f}, {2, 2, 2})));
  EXPECT_TRUE(a.overlaps(AABB({1, 0, 0}, {2, 1, 1})));  // touching counts
  EXPECT_FALSE(a.overlaps(AABB({1.01f, 0, 0}, {2, 1, 1})));
}

TEST(AABB, SplitPartitionsTheBox) {
  const AABB box({0, 0, 0}, {4, 2, 2});
  const auto [l, r] = box.split(Axis::X, 1.0f);
  EXPECT_EQ(l, AABB({0, 0, 0}, {1, 2, 2}));
  EXPECT_EQ(r, AABB({1, 0, 0}, {4, 2, 2}));
  EXPECT_FLOAT_EQ(l.volume() + r.volume(), box.volume());
}

TEST(AABB, SplitClampsOutOfRangeOffsets) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  const auto [l, r] = box.split(Axis::Y, 5.0f);
  EXPECT_FLOAT_EQ(l.hi.y, 1.0f);
  EXPECT_FLOAT_EQ(r.lo.y, 1.0f);
  EXPECT_TRUE(r.volume() == 0.0f);
}

TEST(AABB, IntersectAndUnite) {
  const AABB a({0, 0, 0}, {2, 2, 2});
  const AABB b({1, 1, 1}, {3, 3, 3});
  EXPECT_EQ(AABB::intersect(a, b), AABB({1, 1, 1}, {2, 2, 2}));
  EXPECT_EQ(AABB::unite(a, b), AABB({0, 0, 0}, {3, 3, 3}));
  EXPECT_TRUE(AABB::intersect(a, AABB({5, 5, 5}, {6, 6, 6})).empty());
}

// Property sweep: for random boxes and random split planes, child surface
// areas never exceed the parent's and the SAH probabilities stay in [0, 1] —
// the invariant equation 1 relies on.
TEST(AABB, SplitAreaProperty) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    AABB box;
    box.expand({rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)});
    box.expand({rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)});
    const Axis axis = static_cast<Axis>(rng.next_int(0, 2));
    const float pos = rng.uniform(box.lo[axis], box.hi[axis]);
    const auto [l, r] = box.split(axis, pos);
    const float area = box.surface_area();
    EXPECT_LE(l.surface_area(), area + 1e-3f);
    EXPECT_LE(r.surface_area(), area + 1e-3f);
    EXPECT_TRUE(box.contains(l, 1e-5f));
    EXPECT_TRUE(box.contains(r, 1e-5f));
  }
}

}  // namespace
}  // namespace kdtune
