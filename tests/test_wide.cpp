#include "kdtree/wide_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/serialize.hpp"
#include "kdtree/simd_dispatch.hpp"
#include "serve/scene_registry.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<Triangle> soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    tris.push_back({a, a + e1, a + e2});
  }
  return tris;
}

std::shared_ptr<const CompactKdTree> build_compact(std::size_t n,
                                                   std::uint64_t seed) {
  ThreadPool pool(0);
  const auto base = make_sweep_builder()->build(soup(n, seed), kBaseConfig,
                                                pool);
  return std::make_shared<const CompactKdTree>(
      dynamic_cast<const KdTree&>(*base));
}

std::vector<Ray> probe_rays(const AABB& bounds, std::size_t n,
                            std::uint64_t seed) {
  Rng rng(seed);
  const Vec3 center = (bounds.lo + bounds.hi) * 0.5f;
  std::vector<Ray> rays;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 origin{rng.uniform(-12, 12), rng.uniform(-12, 12),
                      rng.uniform(-12, 12)};
    Vec3 dir = center - origin +
               Vec3{rng.uniform(-4, 4), rng.uniform(-4, 4),
                    rng.uniform(-4, 4)};
    // Mix in axis-aligned rays: zero direction components exercise the
    // 0 * inf NaN lanes in the slab kernels.
    if (i % 5 == 0) dir.y = 0.0f;
    if (i % 7 == 0) dir.x = 0.0f;
    rays.emplace_back(origin, dir);
  }
  return rays;
}

template <int W>
void check_structure(const WideKdTree<W>& wide, const CompactKdTree& src) {
  const auto nodes = wide.wide_nodes();
  ASSERT_FALSE(nodes.empty());
  for (const WideNode<W>& node : nodes) {
    ASSERT_GE(node.count, 1u);
    ASSERT_LE(node.count, static_cast<std::uint32_t>(W));
    for (int i = 0; i < W; ++i) {
      const bool live = i < static_cast<int>(node.count);
      for (int a = 0; a < 3; ++a) {
        if (live) {
          EXPECT_LE(node.lo[a][i], node.hi[a][i]);
        } else {
          // Dead lanes carry the canonical empty slab so unconditioned
          // W-lane kernels cannot produce a hit in them.
          EXPECT_EQ(node.lo[a][i], kInf);
          EXPECT_EQ(node.hi[a][i], -kInf);
        }
      }
      if (!live) continue;
      const std::int32_t ref = node.child[i];
      if (ref >= 0) {
        EXPECT_LT(static_cast<std::size_t>(ref), nodes.size());
      } else {
        const auto cidx = static_cast<std::size_t>(~ref);
        ASSERT_LT(cidx, src.nodes().size());
        EXPECT_TRUE(src.nodes()[cidx].is_leaf());
        // Empty leaves are dropped by the collapse; a lane must never
        // point at one.
        EXPECT_GT(src.nodes()[cidx].prim_count(), 0u);
      }
    }
  }
}

TEST(WideTree, CollapseStructureInvariants) {
  const auto compact = build_compact(400, 11);
  const WideKdTree4 w4(compact);
  const WideKdTree8 w8(compact);
  check_structure(w4, *compact);
  check_structure(w8, *compact);
  // Greedy frontier packing: with 400 triangles every 8-wide node set
  // should average clearly above half-full lanes.
  std::size_t lanes = 0;
  for (const auto& n : w8.wide_nodes()) lanes += n.count;
  EXPECT_GT(static_cast<double>(lanes) / w8.wide_nodes().size(), 4.0);
}

template <class Tree>
void expect_parity(const CompactKdTree& compact, const Tree& wide,
                   const std::vector<Ray>& rays) {
  for (const Ray& ray : rays) {
    const Hit a = compact.closest_hit(ray);
    const Hit b = wide.closest_hit(ray);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) {
      // Bit-identical distances; triangle ids may differ only on exact
      // t-ties, so parity is valid + t.
      ASSERT_EQ(a.t, b.t);
    }
    ASSERT_EQ(compact.any_hit(ray), wide.any_hit(ray));
  }
}

TEST(WideTree, ParityAcrossSimdLevels) {
  const auto compact = build_compact(500, 23);
  const auto rays = probe_rays(compact->bounds(), 400, 7);

  // Every kernel tier this binary can run must answer identically — the
  // scalar fallback is the semantic reference, the detected tier is what
  // production uses, and SSE is the x86 floor.
  const SimdLevel levels[] = {SimdLevel::kScalar, SimdLevel::kSse,
                              SimdLevel::kNeon, detect_simd_level()};
  for (const SimdLevel level : levels) {
    expect_parity(*compact, WideKdTree4(compact, level), rays);
    expect_parity(*compact, WideKdTree8(compact, level), rays);
  }
}

TEST(WideTree, ForcedScalarMatchesDetected) {
  const auto compact = build_compact(300, 31);
  const auto rays = probe_rays(compact->bounds(), 200, 13);
  const WideKdTree8 detected(compact);
  const WideKdTree8 scalar(compact, SimdLevel::kScalar);
  EXPECT_EQ(scalar.simd_level(), SimdLevel::kScalar);
  for (const Ray& ray : rays) {
    const Hit a = detected.closest_hit(ray);
    const Hit b = scalar.closest_hit(ray);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) ASSERT_EQ(a.t, b.t);
  }
}

TEST(WideTree, TinyTreesAndMisses) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}}) {
    const auto compact = build_compact(n, 41);
    const WideKdTree4 w4(compact);
    const WideKdTree8 w8(compact);
    const auto rays = probe_rays(compact->bounds(), 100, 17);
    expect_parity(*compact, w4, rays);
    expect_parity(*compact, w8, rays);
    // A ray pointing away from the scene must miss through every backend.
    const Ray away{{100.0f, 100.0f, 100.0f}, {1.0f, 0.0f, 0.0f}};
    EXPECT_FALSE(w4.closest_hit(away).valid());
    EXPECT_FALSE(w8.any_hit(away));
  }
}

TEST(WideTree, MakeWideTreeSelectsWidth) {
  const auto compact = build_compact(100, 43);
  const auto w4 = make_wide_tree(compact, QueryBackend::kWide4);
  const auto w8 = make_wide_tree(compact, QueryBackend::kWide8);
  EXPECT_EQ(w4->width(), 4);
  EXPECT_EQ(w4->backend(), QueryBackend::kWide4);
  EXPECT_EQ(w8->width(), 8);
  EXPECT_EQ(w8->backend(), QueryBackend::kWide8);
  EXPECT_EQ(&w4->source(), compact.get());
}

TEST(WideSerialize, V3RoundTripBothWidths) {
  const auto compact = build_compact(250, 53);
  const auto rays = probe_rays(compact->bounds(), 150, 19);
  for (const QueryBackend backend :
       {QueryBackend::kWide4, QueryBackend::kWide8}) {
    const auto wide = make_wide_tree(compact, backend);
    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    save_wide_tree(buffer, *wide);
    const auto loaded = load_wide_tree(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->width(), wide->width());
    EXPECT_EQ(loaded->backend(), backend);
    for (const Ray& ray : rays) {
      const Hit a = wide->closest_hit(ray);
      const Hit b = loaded->closest_hit(ray);
      ASSERT_EQ(a.valid(), b.valid());
      if (a.valid()) ASSERT_EQ(a.t, b.t);
    }
  }
}

TEST(WideSerialize, V3BodyLoadsAsCompactTree) {
  const auto compact = build_compact(200, 59);
  const WideKdTree8 wide(compact);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_wide_tree(buffer, wide);
  const auto loaded = load_compact_tree(buffer);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->nodes().size(), compact->nodes().size());
  const auto rays = probe_rays(compact->bounds(), 100, 23);
  for (const Ray& ray : rays) {
    const Hit a = compact->closest_hit(ray);
    const Hit b = loaded->closest_hit(ray);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) ASSERT_EQ(a.t, b.t);
  }
}

TEST(WideSerialize, OlderVersionsLoadWithFallbackWidth) {
  const auto compact = build_compact(200, 61);

  // v2 file (compact layout) → wide tree at the requested fallback width.
  std::stringstream v2(std::ios::in | std::ios::out | std::ios::binary);
  save_compact_tree(v2, *compact);
  const auto from_v2 = load_wide_tree(v2, 8);
  ASSERT_NE(from_v2, nullptr);
  EXPECT_EQ(from_v2->width(), 8);

  // v1 file (builder layout) still loads too.
  ThreadPool pool(0);
  const auto base = make_sweep_builder()->build(soup(200, 61), kBaseConfig,
                                                pool);
  std::stringstream v1(std::ios::in | std::ios::out | std::ios::binary);
  save_tree(v1, dynamic_cast<const KdTree&>(*base));
  const auto from_v1 = load_wide_tree(v1);  // default fallback: 4
  ASSERT_NE(from_v1, nullptr);
  EXPECT_EQ(from_v1->width(), 4);

  const auto rays = probe_rays(compact->bounds(), 100, 29);
  for (const Ray& ray : rays) {
    const Hit a = compact->closest_hit(ray);
    const Hit b = from_v2->closest_hit(ray);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) ASSERT_EQ(a.t, b.t);
  }
}

TEST(WideRegistry, SetBackendSwitchesWithoutRebuild) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  Scene scene("soup");
  scene.mutable_triangles() = soup(300, 71);
  const auto v1 = registry.admit("soup", scene);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->backend, QueryBackend::kCompact);

  // Unknown scenes cannot switch.
  EXPECT_EQ(registry.set_backend("nope", QueryBackend::kWide8), nullptr);

  const auto v2 = registry.set_backend("soup", QueryBackend::kWide8);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->backend, QueryBackend::kWide8);
  EXPECT_GT(v2->version, v1->version);

  // Same-backend switch is a no-op: the live snapshot is returned as-is.
  const auto v3 = registry.set_backend("soup", QueryBackend::kWide8);
  ASSERT_NE(v3, nullptr);
  EXPECT_EQ(v3->version, v2->version);

  // The switched layout answers identically to the compact one it wraps.
  const Ray ray{{-20.0f, 0.0f, 0.0f}, {1.0f, 0.01f, 0.01f}};
  const Hit a = v1->tree->closest_hit(ray);
  const Hit b = v3->tree->closest_hit(ray);
  EXPECT_EQ(a.valid(), b.valid());
  if (a.valid()) EXPECT_EQ(a.t, b.t);
}

TEST(WideTuner, SelectorConvergesToFastestBackend) {
  // Synthetic serving costs with a known winner: wide8 is fastest. The
  // selector sees only the measurements, so convergence to kWide8 shows the
  // query_backend dimension is searchable end-to-end.
  std::int64_t backend = 0;
  Tuner tuner;
  tuner.register_parameter(&backend, 0, kQueryBackendCount - 1, 1,
                           kQueryBackendParam);
  const double cost[kQueryBackendCount] = {1.0, 0.8, 0.55, 0.9};
  int guard = 0;
  while (!tuner.converged() && guard++ < 300) {
    tuner.apply_next();
    tuner.record(cost[static_cast<std::size_t>(backend_from_int(backend))]);
  }
  ASSERT_TRUE(tuner.converged());
  EXPECT_EQ(backend_from_int(backend), QueryBackend::kWide8);
}

TEST(WideSimd, LevelNamesRoundTrip) {
  SimdLevel level = SimdLevel::kAvx2;
  EXPECT_TRUE(simd_level_from_string("scalar", level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(simd_level_from_string("sse", level));
  EXPECT_EQ(level, SimdLevel::kSse);
  EXPECT_TRUE(simd_level_from_string("avx2", level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_TRUE(simd_level_from_string("neon", level));
  EXPECT_EQ(level, SimdLevel::kNeon);
  EXPECT_FALSE(simd_level_from_string("avx512", level));
  EXPECT_EQ(level, SimdLevel::kNeon);  // unknown names leave `out` untouched
  EXPECT_STREQ(to_string(SimdLevel::kScalar), "scalar");
  // Detection never reports a tier the binary does not contain.
  EXPECT_LE(static_cast<int>(detect_simd_level()),
            static_cast<int>(simd_compiled_level()));
}

}  // namespace
}  // namespace kdtune
