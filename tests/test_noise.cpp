#include "scene/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/rng.hpp"

namespace kdtune {
namespace {

TEST(ValueNoise, Deterministic) {
  const ValueNoise a(42), b(42);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)};
    EXPECT_EQ(a.sample(p), b.sample(p));
    EXPECT_EQ(a.fbm(p, 4), b.fbm(p, 4));
  }
}

TEST(ValueNoise, SeedsDiffer) {
  const ValueNoise a(1), b(2);
  int equal = 0;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)};
    equal += a.sample(p) == b.sample(p);
  }
  EXPECT_LT(equal, 5);
}

TEST(ValueNoise, OutputInRange) {
  const ValueNoise noise(7);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p{rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const float v = noise.sample(p);
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
    const float f = noise.fbm(p, 5);
    EXPECT_GE(f, -1.0f);
    EXPECT_LE(f, 1.0f);
  }
}

TEST(ValueNoise, SmoothOverSmallSteps) {
  // C2 interpolation: adjacent samples must be close.
  const ValueNoise noise(11);
  float prev = noise.sample({0.0f, 0.3f, 0.7f});
  for (int i = 1; i <= 1000; ++i) {
    const float cur = noise.sample({static_cast<float>(i) * 0.01f, 0.3f, 0.7f});
    EXPECT_LT(std::fabs(cur - prev), 0.15f) << "step " << i;
    prev = cur;
  }
}

TEST(ValueNoise, FbmZeroOctavesIsZero) {
  const ValueNoise noise(5);
  EXPECT_EQ(noise.fbm({1, 2, 3}, 0), 0.0f);
}

TEST(ValueNoise, NotConstant) {
  const ValueNoise noise(13);
  float lo = 1e9f, hi = -1e9f;
  for (int i = 0; i < 500; ++i) {
    const float v =
        noise.sample({static_cast<float>(i) * 0.37f, 0.0f, 0.0f});
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.5f);
}

}  // namespace
}  // namespace kdtune
