// The six evaluation-scene stand-ins: exact paper triangle counts at
// detail=1 (DESIGN.md substitution #1), frame counts, determinism, and the
// geometric properties the experiments rely on (e.g. Fairy Forest occlusion).

#include "scene/generators.hpp"

#include <gtest/gtest.h>

#include "geom/intersect.hpp"
#include "render/camera.hpp"

namespace kdtune {
namespace {

struct SceneSpec {
  const char* id;
  std::size_t triangles;
  std::size_t frames;
};

class GeneratorCounts : public ::testing::TestWithParam<SceneSpec> {};

// Full-size generation: the paper's exact triangle and frame counts.
TEST_P(GeneratorCounts, PaperTriangleAndFrameCounts) {
  const SceneSpec spec = GetParam();
  const auto scene = make_scene(spec.id, 1.0f);
  EXPECT_EQ(scene->frame_count(), spec.frames);
  EXPECT_EQ(scene->frame(0).triangle_count(), spec.triangles);
  EXPECT_EQ(scene->name(), spec.id);
}

TEST_P(GeneratorCounts, ReducedDetailShrinksScene) {
  const SceneSpec spec = GetParam();
  const auto small = make_scene(spec.id, 0.15f);
  const std::size_t count = small->frame(0).triangle_count();
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, spec.triangles / 2);
  EXPECT_EQ(small->frame_count(), spec.frames);  // frames don't scale
}

TEST_P(GeneratorCounts, DeterministicGeneration) {
  const SceneSpec spec = GetParam();
  const auto a = make_scene(spec.id, 0.12f);
  const auto b = make_scene(spec.id, 0.12f);
  const Scene fa = a->frame(0);
  const Scene fb = b->frame(0);
  ASSERT_EQ(fa.triangle_count(), fb.triangle_count());
  for (std::size_t i = 0; i < fa.triangle_count(); i += 97) {
    EXPECT_EQ(fa.triangles()[i].a, fb.triangles()[i].a);
  }
}

TEST_P(GeneratorCounts, HasCameraAndLights) {
  const SceneSpec spec = GetParam();
  const Scene frame = make_scene(spec.id, 0.1f)->frame(0);
  EXPECT_FALSE(frame.lights().empty());
  EXPECT_GT(length(frame.camera().eye - frame.camera().look_at), 0.0f);
}

TEST_P(GeneratorCounts, NoDegenerateTriangles) {
  const SceneSpec spec = GetParam();
  const Scene frame = make_scene(spec.id, 0.1f)->frame(0);
  std::size_t degenerate = 0;
  for (const Triangle& t : frame.triangles()) {
    degenerate += t.degenerate();
  }
  // The generators avoid degenerate output almost entirely; allow a tiny
  // tolerance for pole slivers in displaced spheres.
  EXPECT_LE(degenerate, frame.triangle_count() / 500);
}

INSTANTIATE_TEST_SUITE_P(
    PaperScenes, GeneratorCounts,
    ::testing::Values(SceneSpec{"bunny", 69666, 1},
                      SceneSpec{"sponza", 66450, 1},
                      SceneSpec{"sibenik", 75284, 1},
                      SceneSpec{"toasters", 11141, 246},
                      SceneSpec{"wood_doll", 6658, 29},
                      SceneSpec{"fairy_forest", 174117, 21}),
    [](const ::testing::TestParamInfo<SceneSpec>& info) {
      return info.param.id;
    });

TEST(Generators, Registry) {
  EXPECT_EQ(scene_ids().size(), 6u);
  EXPECT_EQ(static_scene_ids().size(), 3u);
  EXPECT_EQ(dynamic_scene_ids().size(), 3u);
  EXPECT_THROW(make_scene("not_a_scene"), std::invalid_argument);
}

TEST(Generators, DynamicScenesActuallyMove) {
  for (const std::string& id : dynamic_scene_ids()) {
    const auto scene = make_scene(id, 0.12f);
    const Scene f0 = scene->frame(0);
    const Scene f1 = scene->frame(scene->frame_count() / 2);
    ASSERT_EQ(f0.triangle_count(), f1.triangle_count()) << id;
    bool moved = false;
    for (std::size_t i = 0; i < f0.triangle_count() && !moved; ++i) {
      moved = !(f0.triangles()[i].a == f1.triangles()[i].a);
    }
    EXPECT_TRUE(moved) << id << " geometry did not change between frames";
  }
}

TEST(Generators, FriezeHasExactCount) {
  using detail_helpers::frieze;
  for (std::size_t n : {1u, 2u, 3u, 10u, 1001u}) {
    const Mesh m = frieze(5.0f, 0.0f, 1.0f, 0.0f, n);
    EXPECT_EQ(m.triangle_count(), n);
    for (std::size_t i = 0; i < m.triangle_count(); ++i) {
      EXPECT_FALSE(m.triangle(i).degenerate());
    }
  }
  EXPECT_EQ(frieze(5.0f, 0.0f, 1.0f, 0.0f, 0).triangle_count(), 0u);
}

TEST(Generators, FairyForestCameraSeesLittleGeometry) {
  // The paper's corner case: the close-up camera means primary rays hit only
  // a tiny fraction of the scene's triangles (most geometry is occluded or
  // out of frame). Verify with brute-force ray casts on a reduced scene.
  const auto scene = make_scene("fairy_forest", 0.2f);
  const Scene frame = scene->frame(0);
  const Camera camera(frame.camera(), 32, 24);

  std::size_t hit_count = 0;
  std::vector<bool> hit_tri(frame.triangle_count(), false);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 32; ++x) {
      const Hit h = brute_force_closest_hit(camera.primary_ray(x, y),
                                            frame.triangles());
      if (h.valid()) {
        ++hit_count;
        hit_tri[h.triangle] = true;
      }
    }
  }
  EXPECT_GT(hit_count, 0u);
  const std::size_t unique =
      static_cast<std::size_t>(std::count(hit_tri.begin(), hit_tri.end(), true));
  // "The cast rays intersect only with a tiny fraction of the scene's
  // triangles."
  EXPECT_LT(unique, frame.triangle_count() / 20);
}

}  // namespace
}  // namespace kdtune
