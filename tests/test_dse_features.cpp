#include "dse/features.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "kdtree/builder.hpp"
#include "parallel/thread_pool.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

Scene test_scene() { return make_bunny(0.06f); }

TEST(SceneFeatures, ExtractionIsDeterministicAcrossRuns) {
  const Scene scene = test_scene();
  const SceneFeatures a = SceneFeatures::extract(scene.triangles());
  const SceneFeatures b = SceneFeatures::extract(scene.triangles());
  EXPECT_EQ(a, b);  // bit-identical, not just approximately equal
  EXPECT_EQ(a.prim_count, scene.triangle_count());

  // A second generator invocation produces the same geometry, hence the
  // same features down to the last bit.
  const Scene again = test_scene();
  EXPECT_EQ(SceneFeatures::extract(again.triangles()), a);
}

TEST(SceneFeatures, IndependentOfThreadCountAndBuilder) {
  // The database key must not depend on how the scene happens to be built:
  // features are extracted from geometry alone, so building with any
  // builder at any pool width first must not perturb them.
  const Scene scene = test_scene();
  const SceneFeatures reference = SceneFeatures::extract(scene.triangles());
  for (const unsigned workers : {0u, 1u, 4u}) {
    ThreadPool pool(workers);
    for (const Algorithm algorithm :
         {Algorithm::kNodeLevel, Algorithm::kInPlace, Algorithm::kLazy}) {
      const auto tree =
          make_builder(algorithm)->build(scene.triangles(), kBaseConfig, pool);
      ASSERT_NE(tree, nullptr);
      EXPECT_EQ(SceneFeatures::extract(scene.triangles()), reference)
          << "builder " << to_string(algorithm) << ", workers " << workers;
    }
  }
}

TEST(SceneFeatures, ValuesAreSane) {
  const Scene scene = test_scene();
  const SceneFeatures f = SceneFeatures::extract(scene.triangles());
  EXPECT_GT(f.v[0], 0.0);  // log2(1 + prims)
  // Aspect ratios and centroid means are normalized into [0, 1].
  for (const std::size_t i : {1u, 2u, 3u, 4u, 5u, 9u}) {
    EXPECT_GE(f.v[i], 0.0) << feature_names()[i];
    EXPECT_LE(f.v[i], 1.0) << feature_names()[i];
  }
  // The size histogram is a distribution over the buckets.
  double hist_sum = 0.0;
  for (std::size_t b = 0; b < kSceneSizeBuckets; ++b) {
    EXPECT_GE(f.v[11 + b], 0.0);
    hist_sum += f.v[11 + b];
  }
  EXPECT_NEAR(hist_sum, 1.0, 1e-12);
}

TEST(SceneFeatures, EmptySceneExtractsWithoutNaNs) {
  const SceneFeatures f = SceneFeatures::extract({});
  EXPECT_EQ(f.prim_count, 0u);
  for (std::size_t i = 0; i < kSceneFeatureCount; ++i) {
    EXPECT_TRUE(std::isfinite(f.v[i])) << feature_names()[i];
  }
}

TEST(FeatureDistance, FuzzSymmetryAndZeroDistanceExactness) {
  // Deterministic xorshift-style fuzz over random vectors: the metric must
  // be symmetric, zero exactly on identical vectors, and positive on any
  // perturbed copy — nearest() relies on all three.
  std::uint64_t state = 0x5EEDF00Dull;
  const auto next_unit = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (int round = 0; round < 200; ++round) {
    SceneFeatures a, b;
    for (std::size_t i = 0; i < kSceneFeatureCount; ++i) {
      a.v[i] = next_unit() * 8.0;
      b.v[i] = next_unit() * 8.0;
    }
    EXPECT_DOUBLE_EQ(feature_distance(a, b), feature_distance(b, a));
    EXPECT_EQ(feature_distance(a, a), 0.0);
    EXPECT_EQ(feature_distance(b, b), 0.0);

    SceneFeatures c = a;
    const std::size_t dim =
        static_cast<std::size_t>(next_unit() * kSceneFeatureCount) %
        kSceneFeatureCount;
    c.v[dim] += 0.125 + next_unit();
    EXPECT_GT(feature_distance(a, c), 0.0);
  }
}

TEST(HardwareDescriptor, DetectAndIdentity) {
  const HardwareDescriptor hw = HardwareDescriptor::detect(4);
  EXPECT_EQ(hw.threads, 4u);
  EXPECT_GE(hw.cores, 1u);
  EXPECT_GE(hw.cache_line, 16u);
  EXPECT_EQ(hw.id(), "4t-" + hw.suffix());
  EXPECT_EQ(hw, HardwareDescriptor::detect(4));
  EXPECT_EQ(hardware_distance(hw, hw), 0.0);

  // detect(0) floors the thread count instead of producing a 0-thread key.
  EXPECT_EQ(HardwareDescriptor::detect(0).threads, 1u);
}

TEST(HardwareDescriptor, DistanceIsSymmetricAndSensitive) {
  HardwareDescriptor a = HardwareDescriptor::detect(2);
  HardwareDescriptor b = a;
  b.threads = 8;
  b.simd = a.simd == SimdLevel::kScalar ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  EXPECT_GT(hardware_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(hardware_distance(a, b), hardware_distance(b, a));
}

}  // namespace
}  // namespace kdtune
