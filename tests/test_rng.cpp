#include "geom/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace kdtune {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, IntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values reached
}

TEST(Rng, SingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.next_int(42, 42), 42);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  float lo = 1e9f, hi = -1e9f;
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(2.0f, 4.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 4.0f);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 2.1f);
  EXPECT_GT(hi, 3.9f);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent.next_u64() == child.next_u64();
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, RoughlyUniformBuckets) {
  Rng rng(2024);
  int buckets[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[static_cast<int>(rng.next_double() * 10.0)];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], kDraws / 10, kDraws / 100);
  }
}

}  // namespace
}  // namespace kdtune
