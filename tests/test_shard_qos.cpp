#include "shard/qos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>

namespace kdtune {
namespace {

using Clock = TenantTable::Clock;

// All quota arithmetic runs off caller-supplied time points, so the tests
// drive a synthetic clock and never sleep.
Clock::time_point t0() { return Clock::time_point{} + std::chrono::hours(1); }
Clock::time_point after(double seconds) {
  return t0() + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
}

TEST(TenantTable, UnknownTenantsAreUnlimited) {
  TenantTable table;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(table.admit("anyone", t0()));
  }
  EXPECT_EQ(table.size(), 1u);
  const auto stats = table.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].admitted, 1000u);
  EXPECT_EQ(stats[0].rejected_quota, 0u);
}

TEST(TenantTable, TokenBucketLimitsBurstThenRefills) {
  TenantTable table;
  table.set_quota("t", TenantQuota{1.0, 2.0, Priority::kInteractive});
  // Full bucket at first touch: exactly `burst` admissions, then rejection.
  EXPECT_TRUE(table.admit("t", t0()));
  EXPECT_TRUE(table.admit("t", t0()));
  EXPECT_FALSE(table.admit("t", t0()));
  // One second at rate 1/s buys exactly one more token.
  EXPECT_TRUE(table.admit("t", after(1.0)));
  EXPECT_FALSE(table.admit("t", after(1.0)));
  // Refill accumulates but clamps at burst: a long idle stretch buys at
  // most 2 tokens, not 100.
  EXPECT_TRUE(table.admit("t", after(101.0)));
  EXPECT_TRUE(table.admit("t", after(101.0)));
  EXPECT_FALSE(table.admit("t", after(101.0)));

  const auto stats = table.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].admitted, 5u);
  EXPECT_EQ(stats[0].rejected_quota, 3u);
}

TEST(TenantTable, TimeNeverRunsBackwards) {
  TenantTable table;
  table.set_quota("t", TenantQuota{1.0, 1.0, Priority::kInteractive});
  EXPECT_TRUE(table.admit("t", after(10.0)));
  // An earlier time point must not mint tokens (or crash on a negative
  // elapsed interval).
  EXPECT_FALSE(table.admit("t", after(5.0)));
  EXPECT_TRUE(table.admit("t", after(11.0)));
}

TEST(TenantTable, InfiniteBurstClampsToRate) {
  TenantTable table;
  // A finite rate with an unbounded bucket would never throttle; the table
  // clamps burst to max(rate, 1).
  table.set_quota("t", TenantQuota{4.0,
                                   std::numeric_limits<double>::infinity(),
                                   Priority::kInteractive});
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (table.admit("t", t0())) ++admitted;
  }
  EXPECT_EQ(admitted, 4);

  // Sub-1 rates still get a usable single-token bucket.
  table.set_quota("slow", TenantQuota{0.25,
                                      std::numeric_limits<double>::infinity(),
                                      Priority::kBatch});
  EXPECT_TRUE(table.admit("slow", t0()));
  EXPECT_FALSE(table.admit("slow", t0()));
  EXPECT_FALSE(table.admit("slow", after(1.0)));
  EXPECT_TRUE(table.admit("slow", after(4.0)));
}

TEST(TenantTable, ReconfigureRefillsToNewBurst) {
  TenantTable table;
  table.set_quota("t", TenantQuota{1.0, 1.0, Priority::kInteractive});
  EXPECT_TRUE(table.admit("t", t0()));
  EXPECT_FALSE(table.admit("t", t0()));
  // The new regime starts with a full (new) bucket.
  table.set_quota("t", TenantQuota{1.0, 3.0, Priority::kBatch});
  EXPECT_TRUE(table.admit("t", t0()));
  EXPECT_TRUE(table.admit("t", t0()));
  EXPECT_TRUE(table.admit("t", t0()));
  EXPECT_FALSE(table.admit("t", t0()));
  EXPECT_EQ(table.quota("t").priority, Priority::kBatch);
}

TEST(TenantTable, AdmitReportsPriorityEvenOnRejection) {
  TenantTable table;
  table.set_quota("b", TenantQuota{1.0, 1.0, Priority::kBatch});
  Priority p = Priority::kInteractive;
  EXPECT_TRUE(table.admit("b", t0(), &p));
  EXPECT_EQ(p, Priority::kBatch);
  p = Priority::kInteractive;
  EXPECT_FALSE(table.admit("b", t0(), &p));
  EXPECT_EQ(p, Priority::kBatch);
}

TEST(TenantTable, OneTenantAtQuotaDoesNotAffectOthers) {
  TenantTable table;
  table.set_quota("greedy", TenantQuota{1.0, 1.0, Priority::kInteractive});
  EXPECT_TRUE(table.admit("greedy", t0()));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(table.admit("greedy", t0()));
    EXPECT_TRUE(table.admit("polite", t0()));
  }
  const auto stats = table.stats();
  ASSERT_EQ(stats.size(), 2u);  // sorted by name
  EXPECT_EQ(stats[0].tenant, "greedy");
  EXPECT_EQ(stats[0].rejected_quota, 50u);
  EXPECT_EQ(stats[1].tenant, "polite");
  EXPECT_EQ(stats[1].admitted, 50u);
  EXPECT_EQ(stats[1].rejected_quota, 0u);
}

TEST(TenantTable, CompletionLatencyFeedsStatsAndMerge) {
  TenantTable table;
  table.admit("a", t0());
  table.admit("b", t0());
  for (int i = 0; i < 100; ++i) table.record_completion("a", 1e-3);
  for (int i = 0; i < 100; ++i) table.record_completion("b", 4e-3);

  const auto stats = table.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].completed, 100u);
  EXPECT_NEAR(stats[0].p50_seconds, 1e-3, 0.3e-3);
  EXPECT_NEAR(stats[1].p99_seconds, 4e-3, 1.2e-3);

  // The fleet-wide merge sees every sample without re-recording.
  LogHistogram fleet;
  table.merge_latency(fleet);
  EXPECT_EQ(fleet.count(), 200u);
  EXPECT_NEAR(fleet.quantile_seconds(0.5), 1e-3, 0.3e-3);
  EXPECT_NEAR(fleet.quantile_seconds(0.99), 4e-3, 1.2e-3);
}

TEST(TenantTable, PriorityNamesRoundTrip) {
  EXPECT_EQ(to_string(Priority::kInteractive), "interactive");
  EXPECT_EQ(to_string(Priority::kBatch), "batch");
}

}  // namespace
}  // namespace kdtune
