// The central correctness suite: every builder (the paper's four parallel
// algorithms plus the three sequential references), across scenes, pool
// widths and configurations, must produce structurally valid trees whose
// traversal answers exactly match the brute-force oracle.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/recursive_builder.hpp"
#include "kdtree/validate.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::unique_ptr<Builder> builder_by_name(const std::string& name) {
  if (name == "median") return make_median_builder();
  if (name == "sweep") return make_sweep_builder();
  if (name == "event") return make_event_builder();
  return make_builder(algorithm_from_string(name));
}

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

/// Fires `count` random rays (a mix of outside-in and inside-out) and checks
/// closest_hit/any_hit against the brute-force oracle.
void expect_oracle_equivalence(const KdTreeBase& tree,
                               std::span<const Triangle> tris,
                               std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  AABB box = bounds_of(tris);
  if (box.empty()) box = AABB({-1, -1, -1}, {1, 1, 1});
  const Vec3 c = box.center();
  const float radius = length(box.extent()) * 0.75f + 1.0f;

  for (std::size_t i = 0; i < count; ++i) {
    Vec3 origin, target;
    if (i % 3 == 0) {
      origin = c + Vec3{rng.uniform(-0.4f, 0.4f), rng.uniform(-0.4f, 0.4f),
                        rng.uniform(-0.4f, 0.4f)} *
                       length(box.extent());
      target = c + Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)} *
                       radius;
    } else {
      origin = c + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                   rng.uniform(-1, 1)}) *
                       radius;
      target = c + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                        rng.uniform(-0.5f, 0.5f)} *
                       length(box.extent());
    }
    const Vec3 dir = target - origin;
    if (length(dir) == 0.0f) continue;
    const Ray ray(origin, normalized(dir));

    const Hit expected = brute_force_closest_hit(ray, tris);
    const Hit got = tree.closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid()) << "ray " << i;
    if (expected.valid()) {
      ASSERT_NEAR(got.t, expected.t, 1e-4f) << "ray " << i;
    }
    EXPECT_EQ(tree.any_hit(ray), brute_force_any_hit(ray, tris)) << "ray " << i;
  }
}

// ---------------------------------------------------------------------------
// Parameterized sweep: builder x pool width.

struct BuilderCase {
  const char* builder;
  unsigned workers;
};

class AllBuilders : public ::testing::TestWithParam<BuilderCase> {
 protected:
  std::unique_ptr<Builder> builder() const {
    return builder_by_name(GetParam().builder);
  }
  ThreadPool pool_{GetParam().workers};
};

TEST_P(AllBuilders, EmptySceneYieldsEmptyTree) {
  const auto tree = builder()->build({}, kBaseConfig, pool_);
  EXPECT_FALSE(tree->closest_hit(Ray({0, 0, 0}, {0, 0, 1})).valid());
  EXPECT_FALSE(tree->any_hit(Ray({0, 0, 0}, {0, 0, 1})));
  EXPECT_EQ(tree->stats().prim_refs, 0u);
}

TEST_P(AllBuilders, SingleTriangle) {
  const std::vector<Triangle> tris{{{-1, -1, 2}, {1, -1, 2}, {0, 1, 2}}};
  const auto tree = builder()->build(tris, kBaseConfig, pool_);
  const Hit hit = tree->closest_hit(Ray({0, 0, 0}, {0, 0, 1}));
  ASSERT_TRUE(hit.valid());
  EXPECT_FLOAT_EQ(hit.t, 2.0f);
  EXPECT_EQ(hit.triangle, 0u);
  EXPECT_FALSE(tree->any_hit(Ray({0, 0, 0}, {0, 0, -1})));
}

TEST_P(AllBuilders, AllDegenerateTrianglesYieldNoHits) {
  const std::vector<Triangle> tris{
      {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
      {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}},
  };
  const auto tree = builder()->build(tris, kBaseConfig, pool_);
  EXPECT_FALSE(tree->closest_hit(Ray({0, 0, -5}, {0, 0, 1})).valid());
}

TEST_P(AllBuilders, DuplicateTrianglesAreHandled) {
  std::vector<Triangle> tris = random_soup(30, 5);
  tris.insert(tris.end(), tris.begin(), tris.end());  // every triangle twice
  const auto tree = builder()->build(tris, kBaseConfig, pool_);
  expect_oracle_equivalence(*tree, tris, 60, 77);
}

TEST_P(AllBuilders, CoplanarGeometry) {
  // All triangles in the z = 0 plane: the Z extent of the root is flat,
  // planar events everywhere.
  std::vector<Triangle> tris;
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), 0.0f};
    tris.push_back(
        {base, base + Vec3{rng.uniform(0.1f, 0.5f), 0, 0},
         base + Vec3{0, rng.uniform(0.1f, 0.5f), 0}});
  }
  const auto tree = builder()->build(tris, kBaseConfig, pool_);
  expect_oracle_equivalence(*tree, tris, 80, 13);
}

TEST_P(AllBuilders, RandomSoupMatchesOracle) {
  const auto tris = random_soup(300, 21);
  const auto tree = builder()->build(tris, kBaseConfig, pool_);
  expect_oracle_equivalence(*tree, tris, 150, 99);
}

TEST_P(AllBuilders, SceneGeometryMatchesOracle) {
  const Scene scene = make_scene("sponza", 0.08f)->frame(0);
  const auto tree =
      builder()->build(scene.triangles(), kBaseConfig, pool_);
  expect_oracle_equivalence(*tree, scene.triangles(), 100, 3);
}

TEST_P(AllBuilders, ExtremeConfigurationsStillCorrect) {
  const auto tris = random_soup(120, 31);
  for (const BuildConfig config :
       {BuildConfig{3, 0, 1, 16, 0, 32},      // cheapest intersection
        BuildConfig{101, 60, 8, 8192, 0, 32},  // dearest everything
        BuildConfig{3, 60, 8, 16, 0, 4}}) {    // few bins
    const auto tree = builder()->build(tris, config, pool_);
    expect_oracle_equivalence(*tree, tris, 60, 7);
  }
}

TEST_P(AllBuilders, StatsAreConsistent) {
  const auto tris = random_soup(200, 41);
  const auto tree = builder()->build(tris, kBaseConfig, pool_);
  const TreeStats stats = tree->stats();
  EXPECT_GT(stats.node_count, 0u);
  EXPECT_GT(stats.leaf_count + stats.deferred_count, 0u);
  EXPECT_GE(stats.prim_refs, 0u);
  EXPECT_GT(stats.max_depth, 0u);
  EXPECT_GT(stats.sah_cost, 0.0);
  // A binary tree with L leaves has L-1 interior nodes.
  const std::size_t terminals = stats.leaf_count + stats.deferred_count;
  EXPECT_EQ(stats.node_count, 2 * terminals - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllBuilders,
    ::testing::Values(BuilderCase{"median", 0}, BuilderCase{"sweep", 0},
                      BuilderCase{"event", 0}, BuilderCase{"node-level", 0},
                      BuilderCase{"node-level", 3},
                      BuilderCase{"nested", 0}, BuilderCase{"nested", 3},
                      BuilderCase{"in-place", 0}, BuilderCase{"in-place", 3},
                      BuilderCase{"lazy", 0}, BuilderCase{"lazy", 3},
                      BuilderCase{"balanced", 0}, BuilderCase{"balanced", 3}),
    [](const ::testing::TestParamInfo<BuilderCase>& info) {
      std::string name = info.param.builder;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_w" + std::to_string(info.param.workers);
    });

// ---------------------------------------------------------------------------
// Structural validation of the eager builders (the lazy tree is validated via
// oracle equivalence above and its dedicated suite).

class EagerBuilders : public ::testing::TestWithParam<const char*> {};

TEST_P(EagerBuilders, StructurallyValidTrees) {
  ThreadPool pool(2);
  const auto builder = builder_by_name(GetParam());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto tris = random_soup(150, seed);
    const auto tree_base = builder->build(tris, kBaseConfig, pool);
    const auto* tree = dynamic_cast<const KdTree*>(tree_base.get());
    ASSERT_NE(tree, nullptr);
    const ValidationResult result = validate_tree(*tree, true);
    EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  }
}

TEST_P(EagerBuilders, SceneTreeStructurallyValid) {
  ThreadPool pool(2);
  const auto builder = builder_by_name(GetParam());
  const Scene scene = make_scene("sibenik", 0.08f)->frame(0);
  const auto tree_base = builder->build(scene.triangles(), kBaseConfig, pool);
  const auto* tree = dynamic_cast<const KdTree*>(tree_base.get());
  ASSERT_NE(tree, nullptr);
  // Completeness check is O(leaves x prims); soundness-only on the scene.
  const ValidationResult result = validate_tree(*tree, false);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

INSTANTIATE_TEST_SUITE_P(Matrix, EagerBuilders,
                         ::testing::Values("median", "sweep", "event",
                                           "node-level", "nested", "in-place",
                                           "balanced"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Cross-builder agreement.

TEST(BuilderAgreement, EventBuilderMatchesSweepExactly) {
  // Both implement the same exact SAH; their trees must have identical
  // statistics (same planes chosen) on generic geometry.
  ThreadPool pool(0);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto tris = random_soup(200, seed);
    const auto sweep = make_sweep_builder()->build(tris, kBaseConfig, pool);
    const auto event = make_event_builder()->build(tris, kBaseConfig, pool);
    const TreeStats a = sweep->stats();
    const TreeStats b = event->stats();
    EXPECT_EQ(a.node_count, b.node_count) << "seed " << seed;
    EXPECT_EQ(a.leaf_count, b.leaf_count) << "seed " << seed;
    EXPECT_EQ(a.max_depth, b.max_depth) << "seed " << seed;
    EXPECT_NEAR(a.sah_cost, b.sah_cost, 1e-3) << "seed " << seed;
  }
}

TEST(BuilderAgreement, NodeLevelMatchesSweepTree) {
  // Node-level parallelism must not change the tree, only who builds it.
  ThreadPool pool(3);
  const auto tris = random_soup(300, 17);
  const auto sweep = make_sweep_builder()->build(tris, kBaseConfig, pool);
  const auto parallel = make_builder(Algorithm::kNodeLevel)
                            ->build(tris, kBaseConfig, pool);
  const TreeStats a = sweep->stats();
  const TreeStats b = parallel->stats();
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.leaf_count, b.leaf_count);
  EXPECT_NEAR(a.sah_cost, b.sah_cost, 1e-3);
}

// ---------------------------------------------------------------------------
// Left-balanced builder: degenerate-input guards and determinism. The
// level-synchronous median partition must terminate in a leaf — never loop
// or emit a lopsided chain — on inputs where no plane separates anything.

TEST(BalancedBuilder, AllCoincidentPrimitivesTerminateInOneLeaf) {
  ThreadPool pool(2);
  // 100 identical copies: every candidate plane straddles all of them.
  const Triangle t{{-1, -1, 0}, {1, -1, 0.5f}, {0, 1, -0.5f}};
  const std::vector<Triangle> tris(100, t);
  const auto tree = make_builder(Algorithm::kBalanced)
                        ->build(tris, kBaseConfig, pool);
  const TreeStats stats = tree->stats();
  EXPECT_EQ(stats.leaf_count, 1u);
  EXPECT_EQ(stats.node_count, 1u);
  EXPECT_EQ(stats.prim_refs, 100u);
  expect_oracle_equivalence(*tree, tris, 40, 19);
}

TEST(BalancedBuilder, PointDegenerateDomainBecomesEmptyOrLeaf) {
  ThreadPool pool(2);
  // All triangles collapse to the same point: degenerate, skipped like the
  // oracles do, leaving the empty-tree shape.
  const std::vector<Triangle> tris(
      16, Triangle{{2, 2, 2}, {2, 2, 2}, {2, 2, 2}});
  const auto tree = make_builder(Algorithm::kBalanced)
                        ->build(tris, kBaseConfig, pool);
  EXPECT_EQ(tree->stats().prim_refs, 0u);
  EXPECT_FALSE(tree->closest_hit(Ray({0, 0, 0}, {1, 1, 1})).valid());
}

TEST(BalancedBuilder, TreeIsBitIdenticalAcrossThreadCounts) {
  // Large enough that the top levels take the block-parallel path (the
  // serial small-level cutoff is 16384 references).
  const auto tris = random_soup(20000, 23);
  std::unique_ptr<KdTreeBase> trees[3];
  unsigned widths[3] = {0, 1, 5};
  for (int i = 0; i < 3; ++i) {
    ThreadPool pool(widths[i]);
    trees[i] = make_builder(Algorithm::kBalanced)
                   ->build(tris, kBaseConfig, pool);
  }
  const auto* a = dynamic_cast<const KdTree*>(trees[0].get());
  ASSERT_NE(a, nullptr);
  for (int i = 1; i < 3; ++i) {
    const auto* b = dynamic_cast<const KdTree*>(trees[i].get());
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->nodes().size(), b->nodes().size()) << "width " << widths[i];
    ASSERT_EQ(std::memcmp(a->nodes().data(), b->nodes().data(),
                          a->nodes().size() * sizeof(KdNode)),
              0)
        << "width " << widths[i];
    ASSERT_EQ(a->prim_indices().size(), b->prim_indices().size());
    ASSERT_EQ(std::memcmp(a->prim_indices().data(), b->prim_indices().data(),
                          a->prim_indices().size() * sizeof(std::uint32_t)),
              0)
        << "width " << widths[i];
  }
}

TEST(BuilderAgreement, TaskDepthForFormula) {
  EXPECT_EQ(task_depth_for(1, 1), 0);
  EXPECT_EQ(task_depth_for(2, 1), 1);
  EXPECT_EQ(task_depth_for(3, 8), 4);   // floor(log2(24))
  EXPECT_EQ(task_depth_for(8, 24), 7);  // floor(log2(192))
  EXPECT_EQ(task_depth_for(0, 4), 2);   // S clamped to >= 1
}

}  // namespace
}  // namespace kdtune
