#include "kdtree/analysis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"

namespace kdtune {
namespace {

std::unique_ptr<KdTree> build_soup_tree(std::size_t n, std::uint64_t seed,
                                        const BuildConfig& config = kBaseConfig) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.4f, 0.4f), rng.uniform(-0.4f, 0.4f),
                                rng.uniform(-0.4f, 0.4f)},
                    base + Vec3{rng.uniform(-0.4f, 0.4f), rng.uniform(-0.4f, 0.4f),
                                rng.uniform(-0.4f, 0.4f)}});
  }
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(tris, config, pool);
  return std::unique_ptr<KdTree>(dynamic_cast<KdTree*>(base.release()));
}

TEST(TreeAnalysis, HistogramsSumToLeafCount) {
  const auto tree = build_soup_tree(300, 1);
  const TreeAnalysis a = analyze_tree(*tree);
  const TreeStats s = tree->stats();

  const std::size_t depth_total =
      std::accumulate(a.leaf_depth_histogram.begin(),
                      a.leaf_depth_histogram.end(), std::size_t{0});
  const std::size_t size_total =
      std::accumulate(a.leaf_size_histogram.begin(),
                      a.leaf_size_histogram.end(), std::size_t{0});
  EXPECT_EQ(depth_total, s.leaf_count);
  EXPECT_EQ(size_total, s.leaf_count);
  // Deepest histogram bucket matches the stats' max depth (stats count the
  // root as depth 1, analysis as depth 0).
  EXPECT_EQ(a.leaf_depth_histogram.size(), s.max_depth);
}

TEST(TreeAnalysis, DuplicationFactorAtLeastOne) {
  const auto tree = build_soup_tree(400, 2);
  const TreeAnalysis a = analyze_tree(*tree);
  EXPECT_GE(a.duplication_factor, 1.0);
  EXPECT_LT(a.duplication_factor, 4.0);  // sane for random soups
}

TEST(TreeAnalysis, HigherCbReducesDuplication) {
  // CB penalizes duplication, so cranking it up must not increase the
  // duplication factor.
  BuildConfig cheap;
  cheap.cb = 0;
  BuildConfig dear;
  dear.cb = 60;
  const auto a = analyze_tree(*build_soup_tree(400, 3, cheap));
  const auto b = analyze_tree(*build_soup_tree(400, 3, dear));
  EXPECT_LE(b.duplication_factor, a.duplication_factor + 0.05);
}

TEST(TreeAnalysis, BalanceIsReasonable) {
  const auto tree = build_soup_tree(500, 4);
  const TreeAnalysis a = analyze_tree(*tree);
  EXPECT_GT(a.balance, 0.5);
  EXPECT_LT(a.balance, 3.0);
}

TEST(TreeAnalysis, SizeBucketsAreCapped) {
  const auto tree = build_soup_tree(200, 5);
  const TreeAnalysis a = analyze_tree(*tree, 4);
  EXPECT_EQ(a.leaf_size_histogram.size(), 5u);  // 0..3 plus the 4+ bucket
}

TEST(TreeAnalysis, ToStringMentionsEverything) {
  const auto tree = build_soup_tree(100, 6);
  const std::string text = analyze_tree(*tree).to_string();
  EXPECT_NE(text.find("duplication factor"), std::string::npos);
  EXPECT_NE(text.find("leaf depths:"), std::string::npos);
  EXPECT_NE(text.find("leaf sizes:"), std::string::npos);
}

TEST(TreeAnalysis, SingleLeafTreeIsBalanced) {
  std::vector<Triangle> one{{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}};
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(one, kBaseConfig, pool);
  const auto* tree = dynamic_cast<const KdTree*>(base.get());
  const TreeAnalysis a = analyze_tree(*tree);
  EXPECT_DOUBLE_EQ(a.balance, 1.0);
  EXPECT_DOUBLE_EQ(a.duplication_factor, 1.0);
}

}  // namespace
}  // namespace kdtune
