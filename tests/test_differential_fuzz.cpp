// Differential fuzz (the cross-implementation oracle, src/core/differential):
// seeded random (scene, config) cases over the Table II search space, every
// builder + the compact layout + the BVH baseline checked for *exact*
// agreement with brute force on all four query kinds, with the lazy tree
// probed both while racing its own first-touch expansion and after
// expand_all(). The ctest run sweeps a fixed seed range; the standalone
// driver (tools/kdtune_fuzz) runs the 500+ case CI sweep over the same code.

#include "core/differential.hpp"

#include <gtest/gtest.h>

namespace kdtune {
namespace {

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AllImplementationsAgreeExactly) {
  const DifferentialResult result =
      run_differential_case(GetParam(), differential_default_options());
  EXPECT_GT(result.queries, 0u);
  for (const std::string& msg : result.disagreements) {
    ADD_FAILURE() << msg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(DifferentialFuzz, CasesAreDeterministic) {
  // Resuming a reported seed must reproduce the exact same probes: the
  // driver's failure output is only actionable if seeds are replayable.
  const DifferentialResult a = run_differential_case(42);
  const DifferentialResult b = run_differential_case(42);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.disagreements, b.disagreements);
}

}  // namespace
}  // namespace kdtune
