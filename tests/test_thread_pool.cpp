#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>

namespace kdtune {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&counter] { counter.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  int counter = 0;  // no atomics needed: everything runs on this thread
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) {
    group.run([&counter] { ++counter; });
  }
  group.wait();
  EXPECT_EQ(counter, 10);
}

TEST(ThreadPool, ConcurrencyCountsCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.concurrency(), 4u);
}

TEST(TaskGroup, NestedForkJoinDoesNotDeadlock) {
  // Recursive fork-join with more outstanding groups than workers: waiting
  // threads must help execute queued tasks or this deadlocks.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};

  struct Rec {
    static void go(ThreadPool& pool, std::atomic<int>& leaves, int depth) {
      if (depth == 0) {
        leaves.fetch_add(1);
        return;
      }
      TaskGroup group(pool);
      group.run([&pool, &leaves, depth] { go(pool, leaves, depth - 1); });
      go(pool, leaves, depth - 1);
      group.wait();
    }
  };
  Rec::go(pool, leaves, 8);
  EXPECT_EQ(leaves.load(), 256);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i == 3) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, ExceptionDoesNotPoisonPool) {
  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.run([] { throw std::logic_error("boom"); });
    EXPECT_THROW(group.wait(), std::logic_error);
  }
  // The pool still works afterwards.
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroup, WaitTwiceIsSafe) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  group.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroup, DestructorWaitsForTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) {
      group.run([&counter] { counter.fetch_add(1); });
    }
    // no explicit wait
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(TaskGroup, ManyTasksFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &counter] {
      TaskGroup inner(pool);
      for (int j = 0; j < 50; ++j) {
        inner.run([&counter] { counter.fetch_add(1); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(counter.load(), 400);
}

TEST(TaskGroup, TeardownRaceStress) {
  // Regression: a waiter that observes the pending counter hit zero may
  // destroy the group while the last finisher is still inside its wake-up
  // path. Thousands of short-lived groups make the window observable (as an
  // intermittent segfault / TSan report before the fix).
  ThreadPool pool(4);
  for (int iter = 0; iter < 20000; ++iter) {
    TaskGroup group(pool);
    group.run([] {});
    group.wait();
  }
  SUCCEED();
}

TEST(ThreadPool, GlobalPoolExists) {
  ThreadPool& pool = ThreadPool::global();
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
}

// Regression: "hardware_concurrency() - 1" sizing gave the global pool zero
// workers on single-core machines (and when hardware_concurrency() reports
// 0), so a bare submit() with no helping TaskGroup waiter never ran. Both
// expectations below hang/fail against the unclamped sizing on a 1-CPU host.
TEST(ThreadPool, GlobalPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::global().worker_count(), 1u);
}

TEST(ThreadPool, GlobalPoolRunsBareSubmitWithoutHelping) {
  auto done = std::make_shared<std::promise<void>>();
  auto fut = done->get_future();
  ThreadPool::global().submit([done] { done->set_value(); });
  // No TaskGroup, no try_run_one(): only a pool worker can run the task.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "global pool executed no submitted work (zero workers?)";
}

}  // namespace
}  // namespace kdtune
