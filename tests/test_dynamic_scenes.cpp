// Dynamic-scene sweeps: the per-frame rebuild workload of the paper's
// evaluation, checked for correctness across animation frames and detail
// levels (not just frame 0, which most other tests use).

#include <gtest/gtest.h>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "render/camera.hpp"
#include "render/raycaster.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

struct DynamicCase {
  const char* scene;
  const char* algorithm;
};

class DynamicScenes : public ::testing::TestWithParam<DynamicCase> {};

TEST_P(DynamicScenes, EveryNthFrameMatchesOracle) {
  const auto [scene_id, algo] = GetParam();
  const auto scene = make_scene(scene_id, 0.08f);
  ThreadPool pool(2);
  const auto builder = make_builder(algorithm_from_string(algo));

  const std::size_t step = std::max<std::size_t>(1, scene->frame_count() / 4);
  for (std::size_t f = 0; f < scene->frame_count(); f += step) {
    const Scene frame = scene->frame(f);
    const auto tree = builder->build(frame.triangles(), kBaseConfig, pool);

    // Camera rays: the distribution the real workload uses.
    const Camera camera(frame.camera(), 16, 12);
    for (int y = 0; y < 12; y += 3) {
      for (int x = 0; x < 16; x += 3) {
        const Ray ray = camera.primary_ray(x, y);
        const Hit expected = brute_force_closest_hit(ray, frame.triangles());
        const Hit got = tree->closest_hit(ray);
        ASSERT_EQ(got.valid(), expected.valid())
            << scene_id << " frame " << f << " px " << x << ',' << y;
        if (expected.valid()) {
          ASSERT_NEAR(got.t, expected.t, 1e-3f)
              << scene_id << " frame " << f;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DynamicScenes,
    ::testing::Values(DynamicCase{"toasters", "node-level"},
                      DynamicCase{"toasters", "lazy"},
                      DynamicCase{"wood_doll", "nested"},
                      DynamicCase{"wood_doll", "in-place"},
                      DynamicCase{"fairy_forest", "in-place"},
                      DynamicCase{"fairy_forest", "lazy"}),
    [](const ::testing::TestParamInfo<DynamicCase>& info) {
      std::string name =
          std::string(info.param.scene) + "_" + info.param.algorithm;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class DetailSweep : public ::testing::TestWithParam<float> {};

TEST_P(DetailSweep, GeneratorsScaleCleanly) {
  const float detail = GetParam();
  for (const std::string& id : scene_ids()) {
    const auto scene = make_scene(id, detail);
    const Scene frame = scene->frame(0);
    ASSERT_GT(frame.triangle_count(), 0u) << id;
    // Bounds are finite and non-degenerate.
    const AABB box = frame.bounds();
    ASSERT_FALSE(box.empty()) << id;
    EXPECT_TRUE(is_finite(box.lo)) << id;
    EXPECT_TRUE(is_finite(box.hi)) << id;
    EXPECT_GT(box.volume(), 0.0f) << id;
    // Every vertex is finite (noise/displacement never produces NaN).
    for (const Triangle& t : frame.triangles()) {
      ASSERT_TRUE(is_finite(t.a) && is_finite(t.b) && is_finite(t.c)) << id;
    }
  }
}

TEST_P(DetailSweep, CountsGrowWithDetail) {
  const float detail = GetParam();
  if (detail >= 0.5f) return;  // compare against 2x detail below 0.5 only
  for (const std::string& id : scene_ids()) {
    const std::size_t small = make_scene(id, detail)->frame(0).triangle_count();
    const std::size_t large =
        make_scene(id, detail * 2.0f)->frame(0).triangle_count();
    EXPECT_GT(large, small) << id << " at detail " << detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DetailSweep,
                         ::testing::Values(0.06f, 0.12f, 0.24f),
                         [](const ::testing::TestParamInfo<float>& info) {
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(DynamicScenes, RebuildLoopRendersEveryFrame) {
  // End-to-end: the paper's per-frame loop on a whole (small) animation.
  const auto scene = make_scene("wood_doll", 0.1f);
  ThreadPool pool(2);
  const auto builder = make_builder(Algorithm::kInPlace);
  double previous_checksum = -1.0;
  bool any_change = false;
  for (std::size_t f = 0; f < scene->frame_count(); ++f) {
    const Scene frame = scene->frame(f);
    const auto tree = builder->build(frame.triangles(), kBaseConfig, pool);
    const Camera camera(frame.camera(), 24, 18);
    Framebuffer fb(24, 18);
    render(*tree, frame, camera, fb, pool);
    EXPECT_GT(fb.checksum(), 0.0) << "frame " << f;
    if (previous_checksum >= 0.0 && fb.checksum() != previous_checksum) {
      any_change = true;
    }
    previous_checksum = fb.checksum();
  }
  EXPECT_TRUE(any_change) << "animation should change the rendered image";
}

}  // namespace
}  // namespace kdtune
