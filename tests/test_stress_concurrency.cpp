// Concurrency stress suite. These tests exist to give the sanitizer CI jobs
// (ThreadSanitizer in particular) something worth watching: they hammer every
// documented publication protocol — LazyKdTree's first-touch expansion under
// mixed query kinds, StablePool's block publication against concurrent
// readers, and ThreadPool/TaskGroup construction-destruction cycles — while
// simultaneously checking results against single-threaded oracles. Sizes
// scale down when KDTUNE_CI_SMALL is set (sanitizer jobs; TSan is ~10x).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/differential.hpp"
#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/lazy_tree.hpp"
#include "parallel/stable_pool.hpp"
#include "parallel/thread_pool.hpp"
#include "scene/generators.hpp"
#include "serve/query_service.hpp"
#include "serve/scene_registry.hpp"

namespace kdtune {
namespace {

std::size_t scaled(std::size_t full, std::size_t small) {
  return kdtune_ci_small() ? small : full;
}

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  tris.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3),
                    rng.uniform(-3, 3)};
    tris.push_back(
        {base,
         base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                     rng.uniform(-0.5f, 0.5f)},
         base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                     rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

const LazyKdTree& as_lazy(const KdTreeBase& tree) {
  return dynamic_cast<const LazyKdTree&>(tree);
}

Ray random_ray_into(Rng& rng, const AABB& box) {
  const Vec3 origin =
      box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)}) *
                         (length(box.extent()) * 0.8f + 0.5f);
  const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                    rng.uniform(box.lo.y, box.hi.y),
                    rng.uniform(box.lo.z, box.hi.z)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

// ---------------------------------------------------------------------------
// LazyKdTree: N threads of mixed closest_hit / any_hit / query_range /
// nearest calls racing first-touch expansion, with stats() and
// deferred_remaining() churning on the side. The eager sweep tree over the
// same configuration is the oracle; agreement is exact (shared per-triangle
// primitives make the minima bit-identical, see core/differential.hpp).

TEST(LazyStressConcurrency, MixedQueriesRaceFirstTouchExpansion) {
  const std::size_t tri_count = scaled(1500, 400);
  const auto tris = random_soup(tri_count, 101);
  BuildConfig config;
  config.r = 32;
  ThreadPool pool(0);

  const auto eager = make_sweep_builder()->build(tris, config, pool);
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  ASSERT_GT(lazy.deferred_remaining(), 0u);

  // Precompute every probe and its oracle answer single-threaded.
  const AABB box = bounds_of(tris);
  Rng rng(102);
  const int probes = static_cast<int>(scaled(90, 36));
  std::vector<Ray> rays;
  std::vector<Hit> expected_hit;
  std::vector<bool> expected_any;
  std::vector<AABB> boxes;
  std::vector<std::vector<std::uint32_t>> expected_range;
  std::vector<Vec3> points;
  std::vector<float> expected_d2;
  for (int i = 0; i < probes; ++i) {
    rays.push_back(random_ray_into(rng, box));
    expected_hit.push_back(eager->closest_hit(rays.back()));
    expected_any.push_back(eager->any_hit(rays.back()));
    const Vec3 p{rng.uniform(box.lo.x, box.hi.x),
                 rng.uniform(box.lo.y, box.hi.y),
                 rng.uniform(box.lo.z, box.hi.z)};
    const Vec3 q{rng.uniform(box.lo.x, box.hi.x),
                 rng.uniform(box.lo.y, box.hi.y),
                 rng.uniform(box.lo.z, box.hi.z)};
    boxes.push_back(AABB(min(p, q), max(p, q)));
    expected_range.emplace_back();
    eager->query_range(boxes.back(), expected_range.back());
    points.push_back(p);
    expected_d2.push_back(eager->nearest(p).distance_sq);
  }

  std::atomic<int> mismatches{0};
  const int num_threads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::uint32_t> out;
      // Strided with overlap: most probes are executed by several threads,
      // so first-touch expansion of the same subtree is genuinely contended.
      for (int i = t % 2; i < probes; ++i) {
        switch ((i + t) % 4) {
          case 0: {
            const Hit got = tree->closest_hit(rays[i]);
            if (got.valid() != expected_hit[i].valid() ||
                (got.valid() && got.t != expected_hit[i].t)) {
              mismatches.fetch_add(1);
            }
            break;
          }
          case 1:
            if (tree->any_hit(rays[i]) != expected_any[i]) {
              mismatches.fetch_add(1);
            }
            break;
          case 2: {
            out.clear();
            tree->query_range(boxes[i], out);
            if (out != expected_range[i]) mismatches.fetch_add(1);
            break;
          }
          default: {
            const NearestResult got = tree->nearest(points[i]);
            if (got.distance_sq != expected_d2[i]) mismatches.fetch_add(1);
            break;
          }
        }
        if (i % 16 == t) {
          // Structural reads racing the expansions the queries trigger —
          // the regression surface for the unsynchronized stats() snapshot.
          const TreeStats stats = lazy.stats();
          if (stats.node_count == 0) mismatches.fetch_add(1);
          (void)lazy.deferred_remaining();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(lazy.stack_overflows(), 0u);
}

// The k-NN and radius queries added with the serve-layer families, raced
// against first-touch expansion. The lowest-id tie-break makes the returned
// triangle ids traversal-order independent, so the oracle comparison is exact
// on ids too — an id mismatch here means expansion order leaked into results.

TEST(LazyStressConcurrency, KnnQueriesRaceFirstTouchExpansion) {
  const std::size_t tri_count = scaled(1200, 400);
  const auto tris = random_soup(tri_count, 105);
  BuildConfig config;
  config.r = 32;
  ThreadPool pool(0);

  const auto eager = make_sweep_builder()->build(tris, config, pool);
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  ASSERT_GT(lazy.deferred_remaining(), 0u);

  const AABB box = bounds_of(tris);
  Rng rng(106);
  const int probes = static_cast<int>(scaled(80, 32));
  std::vector<Vec3> points;
  std::vector<std::uint32_t> ks;
  std::vector<float> radii;
  std::vector<std::vector<NearestResult>> expected_knn;
  std::vector<NearestResult> expected_within;
  std::vector<AABB> boxes;
  std::vector<std::vector<std::uint32_t>> expected_range;
  for (int i = 0; i < probes; ++i) {
    const Vec3 p{rng.uniform(box.lo.x, box.hi.x),
                 rng.uniform(box.lo.y, box.hi.y),
                 rng.uniform(box.lo.z, box.hi.z)};
    points.push_back(p);
    ks.push_back(1u + static_cast<std::uint32_t>(i % 6));
    radii.push_back(i % 2 == 0 ? std::numeric_limits<float>::infinity()
                               : rng.uniform(0.5f, 4.0f));
    expected_knn.emplace_back();
    eager->nearest_k(p, ks.back(), expected_knn.back(), radii.back());
    expected_within.push_back(eager->nearest_within(p, 3.0f));
    const Vec3 q{rng.uniform(box.lo.x, box.hi.x),
                 rng.uniform(box.lo.y, box.hi.y),
                 rng.uniform(box.lo.z, box.hi.z)};
    boxes.push_back(AABB(min(p, q), max(p, q)));
    expected_range.emplace_back();
    eager->query_range(boxes.back(), expected_range.back());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<NearestResult> knn;
      std::vector<std::uint32_t> out;
      // Strided with overlap so several threads contend on expanding the
      // same subtrees, exactly like MixedQueriesRaceFirstTouchExpansion.
      for (int i = t % 2; i < probes; ++i) {
        switch ((i + t) % 3) {
          case 0: {
            knn.clear();
            tree->nearest_k(points[i], ks[i], knn, radii[i]);
            const auto& want = expected_knn[i];
            if (knn.size() != want.size()) {
              mismatches.fetch_add(1);
              break;
            }
            for (std::size_t j = 0; j < want.size(); ++j) {
              if (knn[j].triangle != want[j].triangle ||
                  knn[j].distance_sq != want[j].distance_sq) {
                mismatches.fetch_add(1);
                break;
              }
            }
            break;
          }
          case 1: {
            const NearestResult got = tree->nearest_within(points[i], 3.0f);
            if (got.triangle != expected_within[i].triangle ||
                got.distance_sq != expected_within[i].distance_sq) {
              mismatches.fetch_add(1);
            }
            break;
          }
          default: {
            out.clear();
            tree->query_range(boxes[i], out);
            if (out != expected_range[i]) mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(lazy.stack_overflows(), 0u);
}

TEST(LazyStressConcurrency, StatsRacesExpandAll) {
  // Minimized regression for the stats() data race: one thread repeatedly
  // snapshots structural statistics while another expands every deferred
  // subtree. Before stats() synchronized with expand(), TSan flagged the
  // split/a/b reads against expand()'s field writes, and a torn child index
  // could send compute_stats walking garbage.
  const auto tris = random_soup(scaled(1200, 400), 103);
  BuildConfig config;
  config.r = 32;
  ThreadPool pool(0);
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  ASSERT_GT(lazy.deferred_remaining(), 0u);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const TreeStats stats = lazy.stats();
      EXPECT_GT(stats.node_count, 0u);
      EXPECT_GT(stats.prim_refs, 0u);
    }
  });
  lazy.expand_all();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(lazy.deferred_remaining(), 0u);
  EXPECT_EQ(lazy.stats().deferred_count, 0u);
}

TEST(LazyStressConcurrency, ConcurrentExpandAllIsIdempotent) {
  // Several threads calling expand_all() concurrently with query traffic:
  // every deferred node must be expanded exactly once (the expansions
  // counter equals the initially deferred count).
  const auto tris = random_soup(scaled(1000, 400), 104);
  BuildConfig config;
  config.r = 32;
  ThreadPool pool(0);
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  const std::size_t initially_deferred = lazy.deferred_remaining();
  ASSERT_GT(initially_deferred, 0u);

  const AABB box = bounds_of(tris);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        lazy.expand_all();
      } else {
        Rng rng(200 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < 40; ++i) {
          tree->closest_hit(random_ray_into(rng, box));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lazy.deferred_remaining(), 0u);
  EXPECT_EQ(lazy.expansions(), initially_deferred);
}

// ---------------------------------------------------------------------------
// Satellite: concurrent-expansion parity on the paper's six scenes. N threads
// of seeded ray batches over a *fresh* lazy tree must produce bit-identical
// hits to the eager sweep tree, no matter which thread expands what first.

TEST(LazyStressConcurrency, SixSceneConcurrentExpansionParity) {
  const float detail = kdtune_ci_small() ? 0.08f : 0.15f;
  const int rays_per_thread = static_cast<int>(scaled(60, 24));
  BuildConfig config;
  config.r = 64;
  ThreadPool pool(0);

  for (const std::string& id : scene_ids()) {
    SCOPED_TRACE(id);
    const Scene scene = make_scene(id, detail)->frame(0);
    const auto tris = scene.triangles();
    const auto eager = make_sweep_builder()->build(tris, config, pool);
    const auto tree =
        make_builder(Algorithm::kLazy)->build(tris, config, pool);
    const LazyKdTree& lazy = as_lazy(*tree);

    const AABB box = bounds_of(tris);
    const int num_threads = 4;
    std::vector<std::vector<Ray>> batches(num_threads);
    std::vector<std::vector<Hit>> expected(num_threads);
    Rng master(905);
    for (int t = 0; t < num_threads; ++t) {
      Rng rng = master.split();
      for (int i = 0; i < rays_per_thread; ++i) {
        batches[t].push_back(random_ray_into(rng, box));
        expected[t].push_back(eager->closest_hit(batches[t].back()));
      }
    }

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < batches[t].size(); ++i) {
          const Hit got = tree->closest_hit(batches[t][i]);
          const Hit& want = expected[t][i];
          if (got.valid() != want.valid() ||
              (want.valid() && got.t != want.t)) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(lazy.stack_overflows(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Satellite: the depth clamp makes traversal-stack saturation impossible, so
// the (release-build) overflow counter must stay zero even on the adversarial
// depth-chain geometry that used to overflow before the clamp — including
// through lazy expansion, whose subtrees budget only the depth remaining
// below the deferred node.

TEST(LazyStressConcurrency, ClampDepthTreeNeverDropsFarChildren) {
  std::vector<Triangle> tris;
  for (int i = 0; i < 90; ++i) {
    const float z = std::ldexp(1.0f, i);  // 2^i: every median split peels one
    const float x0 = (i >= 8 && i < 20) ? 10.0f : 0.0f;
    tris.push_back({{x0, 0, z}, {x0 + 1, 0, z}, {x0, 1, z}});
  }
  BuildConfig config;
  config.max_depth = 200;  // clamped to the stack budget by resolved_max_depth
  config.r = 16;
  ThreadPool pool(0);
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);

  Rng rng(906);
  const AABB box = bounds_of(tris);
  for (int i = 0; i < 200; ++i) {
    const Ray ray = random_ray_into(rng, box);
    const Hit expected = brute_force_closest_hit(ray, tris);
    const Hit got = tree->closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid()) << "ray " << i;
    if (expected.valid()) {
      ASSERT_EQ(got.t, expected.t) << "ray " << i;
    }
  }
  lazy.expand_all();
  const Ray up({10.25f, 0.25f, 0.0f}, {0, 0, 1});
  EXPECT_TRUE(tree->closest_hit(up).valid());
  EXPECT_EQ(lazy.stack_overflows(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool / TaskGroup construction-destruction churn.

TEST(ThreadPoolStressConcurrency, ConstructDestroyChurn) {
  const int iterations = static_cast<int>(scaled(150, 40));
  std::atomic<int> executed{0};
  int expected = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    ThreadPool pool(1 + iter % 3);
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i) {
      group.run([&executed] { executed.fetch_add(1); });
    }
    expected += 16;
    if (iter % 2 == 0) {
      group.wait();
    }
    // Odd iterations leave the wait to ~TaskGroup, then ~ThreadPool joins
    // workers — the destruction-ordering handshake documented in
    // docs/CONCURRENCY.md, exercised back to back.
  }
  EXPECT_EQ(executed.load(), expected);
}

TEST(ThreadPoolStressConcurrency, BareSubmitChurn) {
  // Fire-and-forget submissions racing pool destruction: every task must
  // still run (the destructor drains the queue before stopping workers is
  // NOT guaranteed — workers exit only when stopping && queue empty, so all
  // queued work executes).
  const int iterations = static_cast<int>(scaled(100, 30));
  for (int iter = 0; iter < iterations; ++iter) {
    std::promise<void> last;
    auto fut = last.get_future();
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 32; ++i) {
        pool.submit([&ran] { ran.fetch_add(1); });
      }
      pool.submit([&last] { last.set_value(); });
      ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                std::future_status::ready);
    }
    EXPECT_EQ(ran.load(), 32);
  }
}

TEST(ThreadPoolStressConcurrency, TaskGroupChurnAcrossThreads) {
  // The TeardownRaceStress scenario, but with several external threads
  // churning short-lived groups against one shared pool: the last-finisher
  // wake-up must never touch a group object a waiter already destroyed.
  ThreadPool pool(4);
  const int iterations = static_cast<int>(scaled(2000, 500));
  std::atomic<int> executed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < iterations; ++i) {
        TaskGroup group(pool);
        group.run([&executed] { executed.fetch_add(1); });
        group.wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(executed.load(), 4 * iterations);
}

// ---------------------------------------------------------------------------
// StablePool: readers racing the appender across block boundaries. Mirrors
// the lazy tree's protocol exactly: the appender publishes a watermark with
// release order *after* writing the new elements, and readers only touch
// indices below an acquired watermark.

TEST(StablePoolStressConcurrency, ReadersRaceAppenderAcrossBlocks) {
  const std::size_t capacity = scaled(3 * 4096 + 512, 4096 + 512);
  StablePool<std::uint32_t> pool(capacity);
  std::atomic<std::size_t> published{0};
  std::atomic<bool> done{false};
  std::atomic<int> corrupt{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(300 + static_cast<std::uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        for (int k = 0; k < 64; ++k) {
          const std::size_t i = static_cast<std::size_t>(
              rng.next_int(0, static_cast<std::int64_t>(n) - 1));
          if (pool[i] != i) corrupt.fetch_add(1);
        }
      }
    });
  }

  Rng rng(301);
  std::size_t total = 0;
  while (total < capacity) {
    const std::size_t chunk = std::min<std::size_t>(
        static_cast<std::size_t>(rng.next_int(1, 97)), capacity - total);
    const std::size_t start = pool.append(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      pool[start + i] = static_cast<std::uint32_t>(start + i);
    }
    published.store(start + chunk, std::memory_order_release);
    total += chunk;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.size(), capacity);
  EXPECT_THROW(pool.append(1), std::length_error);
}

// ---------------------------------------------------------------------------
// SceneRegistry: RCU hot swap under load. Reader threads continuously
// acquire() and query while a writer republishes the scene with alternating
// build configurations. Every result must match the single-threaded eager
// oracle bit-exactly regardless of which tree generation served it — the
// acceptance criterion of the serving layer's publication protocol.

TEST(ServeStressConcurrency, RegistryHotSwapUnderQueryLoad) {
  const auto tris = random_soup(scaled(1200, 400), 401);
  ThreadPool oracle_pool(0);
  const auto oracle = make_sweep_builder()->build(tris, kBaseConfig,
                                                  oracle_pool);
  Scene scene("swap-soup");
  scene.mutable_triangles().assign(tris.begin(), tris.end());
  const AABB box = bounds_of(tris);

  ThreadPool pool(2);
  SceneRegistry registry(pool);
  registry.admit("swap-soup", scene);

  const int swaps = static_cast<int>(scaled(12, 5));
  const int reader_count = 3;
  std::atomic<int> mismatches{0};
  std::atomic<int> null_snapshots{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < reader_count; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(500 + static_cast<std::uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = registry.acquire("swap-soup");
        if (snap == nullptr || snap->tree == nullptr) {
          null_snapshots.fetch_add(1);
          continue;
        }
        // Several queries against one acquired snapshot: the snapshot must
        // stay fully valid even if the writer republishes mid-loop.
        for (int i = 0; i < 16; ++i) {
          const Ray ray = random_ray_into(rng, box);
          const Hit got = snap->tree->closest_hit(ray);
          const Hit want = oracle->closest_hit(ray);
          if (got.valid() != want.valid() ||
              (want.valid() && got.t != want.t)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }

  std::uint64_t last_version = 1;
  for (int s = 0; s < swaps; ++s) {
    BuildConfig config = kBaseConfig;
    config.ci = (s % 2 == 0) ? 35 : 9;
    config.cb = (s % 2 == 0) ? 4 : 20;
    const auto snap = registry.rebuild("swap-soup", config);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, last_version + 1);  // monotonic publication
    last_version = snap->version;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(null_snapshots.load(), 0);
  EXPECT_EQ(registry.swap_count(), static_cast<std::uint64_t>(swaps));
}

// ---------------------------------------------------------------------------
// QueryService under hot swaps: client threads submit through the batching
// service while the writer republishes both scenes. Exactly-once completion
// and oracle parity must hold across the swap boundary, and the final drain
// must leave no request behind.

TEST(ServeStressConcurrency, ServiceSurvivesHotSwapsWithExactResults) {
  const auto tris_a = random_soup(scaled(900, 300), 402);
  const auto tris_b = random_soup(scaled(900, 300), 403);
  ThreadPool oracle_pool(0);
  const auto oracle_a = make_sweep_builder()->build(tris_a, kBaseConfig,
                                                    oracle_pool);
  const auto oracle_b = make_sweep_builder()->build(tris_b, kBaseConfig,
                                                    oracle_pool);
  Scene scene_a("a"), scene_b("b");
  scene_a.mutable_triangles().assign(tris_a.begin(), tris_a.end());
  scene_b.mutable_triangles().assign(tris_b.begin(), tris_b.end());
  const AABB box_a = bounds_of(tris_a);
  const AABB box_b = bounds_of(tris_b);

  ThreadPool pool(3);
  SceneRegistry registry(pool);
  registry.admit("a", scene_a);
  registry.admit("b", scene_b);
  ServiceOptions opts;
  opts.params.batch_size = 8;
  opts.params.flush_timeout_us = 100;
  QueryService service(registry, pool, opts);

  const int per_client = static_cast<int>(scaled(160, 60));
  const int client_count = 3;
  std::atomic<int> mismatches{0};
  std::atomic<bool> clients_done{false};

  std::thread swapper([&] {
    Rng rng(404);
    while (!clients_done.load(std::memory_order_acquire)) {
      for (const char* name : {"a", "b"}) {
        BuildConfig config = kBaseConfig;
        config.ci = static_cast<std::int64_t>(rng.next_int(5, 60));
        registry.rebuild(name, config);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < client_count; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(600 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < per_client; ++i) {
        const bool use_a = rng.next_int(0, 1) == 0;
        const Ray ray = random_ray_into(rng, use_a ? box_a : box_b);
        const QueryResponse resp =
            service.submit_closest_hit(use_a ? "a" : "b", ray).get();
        if (resp.status != QueryStatus::kOk) {
          mismatches.fetch_add(1);
          continue;
        }
        const Hit want =
            (use_a ? *oracle_a : *oracle_b).closest_hit(ray);
        if (resp.hit.valid() != want.valid() ||
            (want.valid() && resp.hit.t != want.t)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  clients_done.store(true, std::memory_order_release);
  swapper.join();
  service.drain();

  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(client_count) *
      static_cast<std::uint64_t>(per_client);
  EXPECT_EQ(stats.accepted, total);    // exactly-once: nothing lost...
  EXPECT_EQ(stats.completed, total);   // ...and nothing unresolved
  EXPECT_GT(stats.swaps, 0u);
}

}  // namespace
}  // namespace kdtune
