#include "render/raycaster.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "kdtree/builder.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

TEST(Camera, CenterRayLooksForward) {
  const Camera cam({0, 0, 0}, {0, 0, -5}, {0, 1, 0}, 60.0f, 100, 100);
  const Ray center = cam.primary_ray(50, 50);
  EXPECT_NEAR(center.dir.z, -1.0f, 0.02f);
  EXPECT_NEAR(center.dir.x, 0.0f, 0.02f);
  EXPECT_NEAR(center.dir.y, 0.0f, 0.02f);
  EXPECT_EQ(center.origin, Vec3(0, 0, 0));
}

TEST(Camera, CornersDivergeSymmetrically) {
  const Camera cam({0, 0, 0}, {0, 0, -5}, {0, 1, 0}, 60.0f, 100, 100);
  const Ray tl = cam.primary_ray(0, 0);
  const Ray tr = cam.primary_ray(99, 0);
  const Ray bl = cam.primary_ray(0, 99);
  EXPECT_LT(tl.dir.x, 0.0f);
  EXPECT_GT(tr.dir.x, 0.0f);
  EXPECT_GT(tl.dir.y, 0.0f);  // top of image looks up
  EXPECT_LT(bl.dir.y, 0.0f);
  EXPECT_NEAR(tl.dir.x, -tr.dir.x, 1e-4f);
  EXPECT_NEAR(tl.dir.y, -bl.dir.y, 1e-4f);
}

TEST(Camera, WiderFovSpreadsRays) {
  const Camera narrow({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 30.0f, 64, 64);
  const Camera wide({0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 90.0f, 64, 64);
  EXPECT_GT(std::abs(wide.primary_ray(0, 32).dir.x),
            std::abs(narrow.primary_ray(0, 32).dir.x));
}

TEST(Framebuffer, SetAndChecksum) {
  Framebuffer fb(4, 4);
  EXPECT_DOUBLE_EQ(fb.checksum(), 0.0);
  fb.set(1, 2, {0.5f, 0.25f, 0.25f});
  EXPECT_DOUBLE_EQ(fb.checksum(), 1.0);
  EXPECT_EQ(fb.at(1, 2), Vec3(0.5f, 0.25f, 0.25f));
}

TEST(Framebuffer, SavesPpm) {
  Framebuffer fb(2, 2);
  fb.set(0, 0, {1, 0, 0});
  const std::string path = ::testing::TempDir() + "/kdtune_test.ppm";
  fb.save_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  int w, h, maxval;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 2);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

class RenderFixture : public ::testing::Test {
 protected:
  // Floor at y=0 plus an occluder square hovering above part of it; a light
  // straight overhead. Shadow rays from under the occluder must hit it.
  void SetUp() override {
    scene_.mutable_triangles() = {
        // floor 10x10 on XZ
        {{-5, 0, -5}, {5, 0, -5}, {5, 0, 5}},
        {{-5, 0, -5}, {5, 0, 5}, {-5, 0, 5}},
        // occluder 2x2 at y=2 over the +x,+z quadrant
        {{1, 2, 1}, {3, 2, 1}, {3, 2, 3}},
        {{1, 2, 1}, {3, 2, 3}, {1, 2, 3}},
    };
    scene_.add_light({{0, 10, 0}, {1, 1, 1}});
    ThreadPool pool(0);
    tree_ = make_sweep_builder()->build(scene_.triangles(), kBaseConfig, pool);
  }

  Scene scene_;
  std::unique_ptr<KdTreeBase> tree_;
};

TEST_F(RenderFixture, ShadowedPointIsDarkerThanLitPoint) {
  RenderOptions opts;
  // A ray hitting the floor under the occluder (x=2, z=2); it starts *below*
  // the occluder plane so the primary hit is the floor, not the occluder.
  const Ray shadowed_ray({2, 1.5f, 2.2f}, {0, -1, 0});
  const Hit shadowed_hit = tree_->closest_hit(shadowed_ray);
  ASSERT_TRUE(shadowed_hit.valid());
  // A ray hitting open floor (x=-2, z=-2).
  const Ray lit_ray({-2, 5, -2}, {0, -1, 0});
  const Hit lit_hit = tree_->closest_hit(lit_ray);
  ASSERT_TRUE(lit_hit.valid());

  std::size_t shadow_rays = 0;
  const Vec3 dark =
      shade_hit(*tree_, scene_, shadowed_ray, shadowed_hit, opts, &shadow_rays);
  const Vec3 lit =
      shade_hit(*tree_, scene_, lit_ray, lit_hit, opts, &shadow_rays);
  EXPECT_GT(shadow_rays, 0u);
  EXPECT_LT(dark.x + dark.y + dark.z, 0.5f * (lit.x + lit.y + lit.z));
}

TEST_F(RenderFixture, DisablingShadowsRemovesThem) {
  RenderOptions no_shadows;
  no_shadows.shadows = false;
  const Ray ray({2, 5, 2.2f}, {0, -1, 0});
  const Hit hit = tree_->closest_hit(ray);
  ASSERT_TRUE(hit.valid());
  const Vec3 color = shade_hit(*tree_, scene_, ray, hit, no_shadows, nullptr);
  // Without shadow tests the occluded point gets direct light.
  EXPECT_GT(color.x + color.y + color.z, 0.2f);
}

TEST_F(RenderFixture, RenderFillsFramebufferAndCounts) {
  ThreadPool pool(2);
  scene_.set_camera({{0, 6, 8}, {0, 0, 0}, {0, 1, 0}, 55.0f});
  const Camera camera(scene_.camera(), 64, 48);
  Framebuffer fb(64, 48);
  const RenderResult result = render(*tree_, scene_, camera, fb, pool);
  EXPECT_EQ(result.rays_cast, 64u * 48u);
  EXPECT_GT(result.hits, 0u);
  EXPECT_LT(result.hits, result.rays_cast);  // horizon shows background
  EXPECT_GT(result.shadow_rays, 0u);
  EXPECT_GT(fb.checksum(), 0.0);
}

TEST_F(RenderFixture, RenderIsDeterministicAcrossPoolWidths) {
  scene_.set_camera({{0, 6, 8}, {0, 0, 0}, {0, 1, 0}, 55.0f});
  const Camera camera(scene_.camera(), 48, 36);
  ThreadPool seq(0), par(3);
  Framebuffer fb_seq(48, 36), fb_par(48, 36);
  render(*tree_, scene_, camera, fb_seq, seq);
  render(*tree_, scene_, camera, fb_par, par);
  EXPECT_DOUBLE_EQ(fb_seq.checksum(), fb_par.checksum());
}

TEST(RenderAgreement, AllBuildersProduceTheSameImage) {
  const Scene scene = make_scene("wood_doll", 0.25f)->frame(0);
  const Camera camera(scene.camera(), 48, 36);
  ThreadPool pool(2);

  double reference = -1.0;
  for (Algorithm a : all_algorithms()) {
    const auto tree =
        make_builder(a)->build(scene.triangles(), kBaseConfig, pool);
    Framebuffer fb(48, 36);
    render(*tree, scene, camera, fb, pool);
    if (reference < 0) {
      reference = fb.checksum();
    } else {
      EXPECT_DOUBLE_EQ(fb.checksum(), reference) << to_string(a);
    }
  }
}

}  // namespace
}  // namespace kdtune
