#include "serve/scene_registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "geom/rng.hpp"
#include "kdtree/tree.hpp"
#include "scene/scene.hpp"

namespace kdtune {
namespace {

Scene soup_scene(std::size_t n, std::uint64_t seed) {
  Scene scene("soup");
  Rng rng(seed);
  auto& tris = scene.mutable_triangles();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    tris.push_back({a, a + e1, a + e2});
  }
  return scene;
}

TEST(SceneRegistry, AdmitAcquireAndVersioning) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  EXPECT_EQ(registry.acquire("nope"), nullptr);
  EXPECT_EQ(registry.size(), 0u);

  const auto v1 = registry.admit("soup", soup_scene(200, 1));
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->scene, "soup");
  EXPECT_EQ(v1->triangle_count, 200u);
  EXPECT_EQ(v1->layout, "compact");  // eager builds re-emit by default
  ASSERT_NE(v1->tree, nullptr);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.swap_count(), 0u);

  const auto got = registry.acquire("soup");
  EXPECT_EQ(got, v1);
}

TEST(SceneRegistry, RebuildPublishesNextVersionAndCountsSwap) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  registry.admit("soup", soup_scene(200, 2));

  const auto held = registry.acquire("soup");
  BuildConfig alt = kBaseConfig;
  alt.ci = 40;
  const auto v2 = registry.rebuild("soup", alt);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->config.ci, 40);
  EXPECT_EQ(registry.swap_count(), 1u);
  EXPECT_EQ(registry.acquire("soup"), v2);

  // RCU: the held snapshot outlives the swap and still answers queries.
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->version, 1u);
  const Ray ray({0, 0, -30}, {0, 0, 1});
  const Hit old_hit = held->tree->closest_hit(ray);
  const Hit new_hit = v2->tree->closest_hit(ray);
  EXPECT_EQ(old_hit.valid(), new_hit.valid());
  if (old_hit.valid()) {
    EXPECT_EQ(old_hit.t, new_hit.t);  // bit-identical
  }

  EXPECT_EQ(registry.rebuild("unknown"), nullptr);
}

TEST(SceneRegistry, ReadmissionIsHotSwapWithNewGeometry) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  registry.admit("soup", soup_scene(100, 3));
  const auto v2 = registry.admit("soup", soup_scene(150, 4));
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->triangle_count, 150u);
  EXPECT_EQ(registry.swap_count(), 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SceneRegistry, AdmitOptionsControlAlgorithmAndLayout) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);

  AdmitOptions raw;
  raw.compact = false;
  const auto eager = registry.admit("eager", soup_scene(120, 5), raw);
  EXPECT_EQ(eager->layout, "kdtree");
  EXPECT_NE(dynamic_cast<const KdTree*>(eager->tree.get()), nullptr);

  AdmitOptions lazy;
  lazy.algorithm = Algorithm::kLazy;
  const auto lz = registry.admit("lazy", soup_scene(120, 6), lazy);
  EXPECT_EQ(lz->layout, "lazy");
  EXPECT_EQ(lz->algorithm, Algorithm::kLazy);

  AdmitOptions fixed;
  fixed.config = BuildConfig{.ci = 25, .cb = 7, .s = 2, .r = kBaseConfig.r};
  const auto cfg = registry.admit("fixed", soup_scene(120, 7), fixed);
  EXPECT_EQ(cfg->config.ci, 25);
  EXPECT_EQ(cfg->config.cb, 7);
  EXPECT_EQ(cfg->config.s, 2);
}

TEST(SceneRegistry, RemoveAndNames) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  registry.admit("a", soup_scene(60, 8));
  registry.admit("b", soup_scene(60, 9));
  const auto names = registry.names();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(registry.remove("a"));
  EXPECT_FALSE(registry.remove("a"));
  EXPECT_EQ(registry.acquire("a"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SceneRegistry, ConfigValuesRoundTrip) {
  BuildConfig c{.ci = 33, .cb = 12, .s = 4, .r = 2048};
  const auto eager_vals = SceneRegistry::values_of(c, Algorithm::kInPlace);
  EXPECT_EQ(eager_vals, (std::vector<std::int64_t>{33, 12, 4}));
  const BuildConfig back = SceneRegistry::config_from_values(eager_vals);
  EXPECT_EQ(back.ci, 33);
  EXPECT_EQ(back.cb, 12);
  EXPECT_EQ(back.s, 4);

  const auto lazy_vals = SceneRegistry::values_of(c, Algorithm::kLazy);
  EXPECT_EQ(lazy_vals, (std::vector<std::int64_t>{33, 12, 4, 2048}));
  EXPECT_EQ(SceneRegistry::config_from_values(lazy_vals).r, 2048);

  EXPECT_THROW(SceneRegistry::config_from_values({1, 2}),
               std::invalid_argument);
}

TEST(SceneRegistry, StageBuildsWithoutPublishing) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  const auto v1 = registry.admit("soup", soup_scene(150, 20));

  // Unknown names stage nothing.
  EXPECT_FALSE(registry.stage("nope", soup_scene(10, 21)).valid());

  auto staged = registry.stage("soup", soup_scene(180, 22));
  ASSERT_TRUE(staged.valid());
  EXPECT_EQ(staged.snapshot->triangle_count, 180u);
  // Nothing published yet: readers still see version 1, no swap counted.
  EXPECT_EQ(registry.acquire("soup"), v1);
  EXPECT_EQ(registry.swap_count(), 0u);

  const auto v2 = registry.publish_staged(std::move(staged));
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(registry.acquire("soup"), v2);
  EXPECT_EQ(registry.swap_count(), 1u);
}

TEST(SceneRegistry, StagedConfigAndAlgorithmBecomeEntryDefaults) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  registry.admit("soup", soup_scene(150, 23));

  BuildConfig alt = kBaseConfig;
  alt.ci = 37;
  auto staged =
      registry.stage("soup", soup_scene(150, 24), alt, Algorithm::kNested);
  ASSERT_TRUE(staged.valid());
  EXPECT_EQ(staged.snapshot->config.ci, 37);
  EXPECT_EQ(staged.snapshot->algorithm, Algorithm::kNested);
  registry.publish_staged(std::move(staged));

  // A follow-up stage with nothing overridden inherits the published pair.
  auto next = registry.stage("soup", soup_scene(150, 25));
  ASSERT_TRUE(next.valid());
  EXPECT_EQ(next.snapshot->config.ci, 37);
  EXPECT_EQ(next.snapshot->algorithm, Algorithm::kNested);
}

TEST(SceneRegistry, PublishStagedAfterRemoveRetiresUnpublished) {
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  registry.admit("soup", soup_scene(120, 26));
  auto staged = registry.stage("soup", soup_scene(120, 27));
  ASSERT_TRUE(staged.valid());
  EXPECT_TRUE(registry.remove("soup"));
  EXPECT_EQ(registry.publish_staged(std::move(staged)), nullptr);
  EXPECT_EQ(registry.swap_count(), 0u);
}

TEST(SceneRegistry, RecordTunedCanSwitchAlgorithm) {
  ThreadPool pool(2);
  ConfigCache cache;
  SceneRegistry registry(pool);
  registry.attach_cache(&cache);
  registry.admit("soup", soup_scene(150, 28));  // default kInPlace

  BuildConfig tuned = kBaseConfig;
  tuned.ci = 21;
  tuned.r = 4096;
  EXPECT_TRUE(
      registry.record_tuned("soup", tuned, 0.002, Algorithm::kLazy));

  // The cache entry lands under the *winning* algorithm's canonical
  // (backend/hardware-keyed) key.
  const auto entry = cache.lookup(ConfigCache::key_for(
      "soup", std::string(to_string(Algorithm::kLazy)), pool.concurrency(),
      "compact", HardwareDescriptor::detect(pool.concurrency()).suffix()));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->values,
            (std::vector<std::int64_t>{tuned.ci, tuned.cb, tuned.s, 4096}));

  // Future rebuilds use the recorded algorithm and configuration.
  const auto snap = registry.rebuild("soup");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->algorithm, Algorithm::kLazy);
  EXPECT_EQ(snap->config.ci, 21);
}

TEST(SceneRegistry, ConfigCacheWarmStartRoundTrip) {
  ThreadPool pool(2);
  const std::string key = ConfigCache::key_for(
      "soup", std::string(to_string(Algorithm::kInPlace)), pool.concurrency(),
      "compact", HardwareDescriptor::detect(pool.concurrency()).suffix());

  // First "run": admit, tune, record. record_tuned stores to the cache.
  ConfigCache cache;
  std::stringstream persisted;
  {
    SceneRegistry registry(pool);
    registry.attach_cache(&cache);
    registry.admit("soup", soup_scene(200, 10));
    const BuildConfig tuned{.ci = 29, .cb = 3, .s = 2, .r = kBaseConfig.r};
    EXPECT_TRUE(registry.record_tuned("soup", tuned, 0.001));
    EXPECT_FALSE(registry.record_tuned("unknown", tuned, 0.001));
    const auto entry = cache.lookup(key);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->values, (std::vector<std::int64_t>{29, 3, 2}));
    cache.save(persisted);

    // Rebuilds now default to the tuned config without passing one.
    const auto snap = registry.rebuild("soup");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->config.ci, 29);
    EXPECT_EQ(snap->config.cb, 3);
  }

  // Second "run": a fresh registry with the persisted cache warm-starts
  // admit() straight into the tuned configuration.
  ConfigCache reloaded;
  reloaded.load(persisted);
  SceneRegistry registry(pool);
  registry.attach_cache(&reloaded);
  const auto snap = registry.admit("soup", soup_scene(200, 10));
  EXPECT_EQ(snap->config.ci, 29);
  EXPECT_EQ(snap->config.cb, 3);
  EXPECT_EQ(snap->config.s, 2);

  // An explicit config always wins over the cache.
  AdmitOptions fixed;
  fixed.config = kBaseConfig;
  const auto base = registry.admit("soup", soup_scene(200, 10), fixed);
  EXPECT_EQ(base->config.ci, kBaseConfig.ci);
}

}  // namespace
}  // namespace kdtune
