// Strategy x landscape property matrix: every search strategy, driven on a
// family of synthetic cost surfaces (convex bowl, ridge, plateau, noisy
// bowl, double well), must converge and end at a point that is a large
// improvement over the landscape's worst corner. This guards the common
// SearchStrategy contract (initialize / propose / report / converged / best)
// across all implementations at once.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "geom/rng.hpp"
#include "tuning/search.hpp"

namespace kdtune {
namespace {

struct Landscape {
  const char* name;
  std::vector<std::int64_t> sizes;
  std::function<double(const ConfigPoint&)> cost;
  /// Required improvement: best <= improvement_bound * worst_corner.
  double improvement_bound;
};

double bowl(const ConfigPoint& p, const std::vector<double>& t) {
  double s = 1.0;
  for (std::size_t d = 0; d < p.size(); ++d) {
    const double delta = static_cast<double>(p[d]) - t[d];
    s += delta * delta;
  }
  return s;
}

std::vector<Landscape> landscapes() {
  return {
      {"bowl2d",
       {60, 40},
       [](const ConfigPoint& p) { return bowl(p, {45, 10}); },
       0.25},
      {"ridge",
       {50, 50},
       [](const ConfigPoint& p) {
         return 1.0 + std::abs(static_cast<double>(p[0]) - 12.0) +
                4.0 * std::abs(static_cast<double>(p[1]) - 30.0);
       },
       0.35},
      {"plateau",  // flat almost everywhere; narrow funnel near the optimum
       {80},
       [](const ConfigPoint& p) {
         const double x = static_cast<double>(p[0]);
         return x > 50 && x < 70 ? 1.0 + std::abs(x - 60.0) : 20.0;
       },
       1.01},  // just require no worse than the plateau
      {"noisy_bowl",
       {60, 40},
       [](const ConfigPoint& p) {
         // Deterministic "noise" from the point itself (reproducible).
         const auto h = static_cast<double>(
             ((p[0] * 2654435761u) ^ (p[1] * 40503u)) % 97);
         return bowl(p, {20, 20}) * (1.0 + 0.02 * h / 97.0);
       },
       0.25},
      {"double_well",
       {100},
       [](const ConfigPoint& p) {
         const double x = static_cast<double>(p[0]);
         return std::min(3.0 + 0.05 * (x - 15) * (x - 15),
                         1.0 + 0.05 * (x - 75) * (x - 75));
       },
       0.4},
  };
}

struct StrategyCase {
  const char* name;
  std::function<std::unique_ptr<SearchStrategy>(std::uint64_t)> make;
  std::size_t cap;  // evaluation budget
};

std::vector<StrategyCase> strategies() {
  return {
      {"nelder_mead",
       [](std::uint64_t seed) {
         NelderMeadOptions o;
         o.seed = seed;
         return make_nelder_mead_search(o);
       },
       400},
      {"hill_climb",
       [](std::uint64_t seed) { return make_hill_climb_search(3, seed); },
       3000},
      {"annealing",
       [](std::uint64_t seed) {
         AnnealingOptions o;
         o.seed = seed;
         return make_annealing_search(o);
       },
       600},
      {"random",
       [](std::uint64_t seed) { return make_random_search(300, seed); },
       400},
      {"exhaustive",
       [](std::uint64_t) { return make_exhaustive_search(); },
       20000},
  };
}

struct MatrixParam {
  std::size_t strategy_index;
  std::size_t landscape_index;
};

class StrategyMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StrategyMatrix, ConvergesToGoodPoint) {
  const StrategyCase sc = strategies()[GetParam().strategy_index];
  const Landscape land = landscapes()[GetParam().landscape_index];

  // Three seeds; the *median* outcome must satisfy the bound (stochastic
  // strategies may blow one seed on a hard landscape).
  std::vector<double> outcomes;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto search = sc.make(seed * 1299709);
    search->initialize(land.sizes);
    std::size_t evals = 0;
    while (!search->converged() && evals < sc.cap) {
      const ConfigPoint p = search->propose();
      ASSERT_EQ(p.size(), land.sizes.size());
      for (std::size_t d = 0; d < p.size(); ++d) {
        ASSERT_GE(p[d], 0);
        ASSERT_LT(p[d], land.sizes[d]);
      }
      search->report(land.cost(p));
      ++evals;
    }
    EXPECT_TRUE(search->converged())
        << sc.name << " on " << land.name << " ran out of budget";
    outcomes.push_back(land.cost(search->best()));
    // best_time must be consistent with the best point's cost for
    // deterministic landscapes (noisy_bowl included: cost is deterministic).
    EXPECT_DOUBLE_EQ(search->best_time(), land.cost(search->best()));
  }
  std::sort(outcomes.begin(), outcomes.end());
  const double median = outcomes[1];

  // Worst corner as the reference scale.
  ConfigPoint corner(land.sizes.size());
  double worst = 0.0;
  for (int mask = 0; mask < (1 << land.sizes.size()); ++mask) {
    for (std::size_t d = 0; d < land.sizes.size(); ++d) {
      corner[d] = (mask >> d) & 1 ? land.sizes[d] - 1 : 0;
    }
    worst = std::max(worst, land.cost(corner));
  }
  EXPECT_LE(median, land.improvement_bound * worst)
      << sc.name << " on " << land.name;
}

std::vector<MatrixParam> all_cases() {
  std::vector<MatrixParam> cases;
  for (std::size_t s = 0; s < strategies().size(); ++s) {
    for (std::size_t l = 0; l < landscapes().size(); ++l) {
      cases.push_back({s, l});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, StrategyMatrix, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return std::string(strategies()[info.param.strategy_index].name) + "_" +
             landscapes()[info.param.landscape_index].name;
    });

}  // namespace
}  // namespace kdtune
