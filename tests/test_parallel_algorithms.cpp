// Parameterized sweeps of the parallel primitives against their sequential
// references, across pool widths and input sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "geom/rng.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/parallel_sort.hpp"

namespace kdtune {
namespace {

struct ParallelCase {
  unsigned workers;
  std::size_t n;
};

class ParallelPrimitives : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelPrimitives, ForTouchesEveryIndexOnce) {
  const auto [workers, n] = GetParam();
  ThreadPool pool(workers);
  std::vector<std::atomic<int>> touched(n);
  parallel_for(pool, 0, n, 16, [&](std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelPrimitives, BlockedForCoversRangeExactly) {
  const auto [workers, n] = GetParam();
  ThreadPool pool(workers);
  std::atomic<std::size_t> total{0};
  parallel_for_blocked(pool, 0, n, 8, [&](std::size_t b, std::size_t e) {
    EXPECT_LE(b, e);
    total.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), n);
}

TEST_P(ParallelPrimitives, ReduceMatchesSequentialSum) {
  const auto [workers, n] = GetParam();
  ThreadPool pool(workers);
  std::vector<std::int64_t> data(n);
  Rng rng(n + workers);
  for (auto& v : data) v = rng.next_int(-100, 100);

  const std::int64_t expected =
      std::accumulate(data.begin(), data.end(), std::int64_t{0});
  const std::int64_t got = parallel_reduce<std::int64_t>(
      pool, 0, n, 16, 0,
      [&](std::size_t b, std::size_t e) {
        std::int64_t s = 0;
        for (std::size_t i = b; i < e; ++i) s += data[i];
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelPrimitives, ExclusiveScanMatchesSequential) {
  const auto [workers, n] = GetParam();
  ThreadPool pool(workers);
  std::vector<std::uint32_t> in(n);
  Rng rng(31 * n + workers);
  for (auto& v : in) v = static_cast<std::uint32_t>(rng.next_int(0, 9));

  std::vector<std::uint32_t> expected(n);
  std::uint32_t acc = 5;  // non-trivial init
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = acc;
    acc += in[i];
  }

  std::vector<std::uint32_t> out(n);
  const std::uint32_t total =
      parallel_exclusive_scan_total<std::uint32_t>(pool, in, out, 5);
  EXPECT_EQ(out, expected);
  EXPECT_EQ(total, acc);
}

TEST_P(ParallelPrimitives, SortMatchesStdSort) {
  const auto [workers, n] = GetParam();
  ThreadPool pool(workers);
  std::vector<int> data(n);
  Rng rng(17 * n + workers);
  for (auto& v : data) v = static_cast<int>(rng.next_int(-1000, 1000));

  std::vector<int> expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(pool, std::span<int>(data));
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelPrimitives,
    ::testing::Values(ParallelCase{0, 0}, ParallelCase{0, 1},
                      ParallelCase{0, 1000}, ParallelCase{1, 37},
                      ParallelCase{2, 1000}, ParallelCase{3, 4096},
                      ParallelCase{4, 20000}, ParallelCase{7, 65536}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return "w" + std::to_string(info.param.workers) + "_n" +
             std::to_string(info.param.n);
    });

TEST(ParallelScan, SizeMismatchThrows) {
  ThreadPool pool(1);
  std::vector<std::uint32_t> in(4), out(3);
  EXPECT_THROW(
      (parallel_exclusive_scan<std::uint32_t>(pool, in, out)),
      std::invalid_argument);
}

TEST(ParallelSort, CustomComparatorDescending) {
  ThreadPool pool(2);
  std::vector<int> data(10000);
  Rng rng(5);
  for (auto& v : data) v = static_cast<int>(rng.next_int(0, 99));
  parallel_sort(pool, std::span<int>(data), std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), std::greater<int>{}));
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 1, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelReduce, DeterministicFloatFoldOrder) {
  // The fold is defined to run in block order, so float reductions are
  // bit-stable run to run.
  ThreadPool pool(4);
  std::vector<double> data(50000);
  Rng rng(404);
  for (auto& v : data) v = rng.next_double() - 0.5;

  const auto run = [&] {
    return parallel_reduce<double>(
        pool, 0, data.size(), 128, 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0;
          for (std::size_t i = b; i < e; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double first = run();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(run(), first);
  }
}

}  // namespace
}  // namespace kdtune
