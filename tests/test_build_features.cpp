// Build-control features: the empty-space bonus, the perfect-splits toggle,
// and the parallelism thresholds. Lowering the thresholds forces the nested
// builder's intra-node prefix-op path and the BFS builders' wide-node path
// onto small inputs, so those code paths are exercised and oracle-checked.

#include <gtest/gtest.h>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/sah.hpp"
#include "kdtree/validate.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

void expect_oracle(const KdTreeBase& tree, std::span<const Triangle> tris,
                   std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  const AABB box = bounds_of(tris);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec3 origin = box.center() +
                        normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                        rng.uniform(-1, 1)}) *
                            (length(box.extent()) * 0.8f);
    const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                      rng.uniform(box.lo.y, box.hi.y),
                      rng.uniform(box.lo.z, box.hi.z)};
    const Ray ray(origin, normalized(target - origin));
    const Hit expected = brute_force_closest_hit(ray, tris);
    const Hit got = tree.closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid()) << "ray " << i;
    if (expected.valid()) ASSERT_NEAR(got.t, expected.t, 1e-4f) << "ray " << i;
  }
}

// --- Parallelism thresholds -------------------------------------------------

TEST(ForcedParallelPaths, NestedIntraNodePathIsCorrect) {
  // Threshold 1 forces the chunked prefix-op path in *every* node.
  const auto tris = random_soup(600, 1);
  ThreadPool pool(3);
  BuildConfig config;
  config.nested_threshold = 1;
  const auto tree =
      make_builder(Algorithm::kNested)->build(tris, config, pool);
  expect_oracle(*tree, tris, 120, 2);
}

TEST(ForcedParallelPaths, NestedParallelSweepMatchesSequentialTree) {
  // The intra-node parallel plane search must choose the same planes as the
  // sequential sweep: identical tree statistics.
  const auto tris = random_soup(800, 3);
  ThreadPool pool(3);
  BuildConfig parallel_cfg;
  parallel_cfg.nested_threshold = 1;
  const auto nested =
      make_builder(Algorithm::kNested)->build(tris, parallel_cfg, pool);
  const auto sweep = make_sweep_builder()->build(tris, kBaseConfig, pool);
  EXPECT_EQ(nested->stats().node_count, sweep->stats().node_count);
  EXPECT_EQ(nested->stats().leaf_count, sweep->stats().leaf_count);
  EXPECT_NEAR(nested->stats().sah_cost, sweep->stats().sah_cost, 1e-3);
}

TEST(ForcedParallelPaths, BfsWideNodePathIsCorrect) {
  const auto tris = random_soup(700, 4);
  ThreadPool pool(3);
  BuildConfig config;
  config.wide_node_threshold = 1;  // every node takes the wide path
  const auto inplace =
      make_builder(Algorithm::kInPlace)->build(tris, config, pool);
  expect_oracle(*inplace, tris, 120, 5);

  config.r = 64;
  const auto lazy = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  expect_oracle(*lazy, tris, 120, 6);
}

TEST(ForcedParallelPaths, BfsWidePathMatchesNarrowPathTree) {
  const auto tris = random_soup(900, 7);
  ThreadPool pool(3);
  BuildConfig wide;
  wide.wide_node_threshold = 1;
  BuildConfig narrow;  // default: nothing is "wide" at this input size
  const auto a = make_builder(Algorithm::kInPlace)->build(tris, wide, pool);
  const auto b = make_builder(Algorithm::kInPlace)->build(tris, narrow, pool);
  // The wide path may order instances differently but must pick the same
  // splits: identical structure.
  EXPECT_EQ(a->stats().node_count, b->stats().node_count);
  EXPECT_EQ(a->stats().leaf_count, b->stats().leaf_count);
  EXPECT_EQ(a->stats().prim_refs, b->stats().prim_refs);
  EXPECT_NEAR(a->stats().sah_cost, b->stats().sah_cost, 1e-3);
}

// --- Perfect splits (straddler clipping) -------------------------------------

TEST(ClipStraddlers, DisabledStillMatchesOracle) {
  const auto tris = random_soup(400, 8);
  ThreadPool pool(2);
  BuildConfig config;
  config.clip_straddlers = false;
  for (const Algorithm a : all_algorithms()) {
    const auto tree = make_builder(a)->build(tris, config, pool);
    expect_oracle(*tree, tris, 80, 9);
  }
}

TEST(ClipStraddlers, ClippingNeverIncreasesSahCost) {
  // Perfect splits give the sweep tighter events, which can only improve
  // (or equal) the resulting tree's expected cost.
  const auto tris = random_soup(500, 10);
  ThreadPool pool(0);
  BuildConfig clipped;
  BuildConfig loose;
  loose.clip_straddlers = false;
  const auto a = make_sweep_builder()->build(tris, clipped, pool);
  const auto b = make_sweep_builder()->build(tris, loose, pool);
  EXPECT_LE(a->stats().sah_cost, b->stats().sah_cost * 1.05);
}

TEST(ClipStraddlers, DisabledTreeIsStructurallyValid) {
  const auto tris = random_soup(300, 11);
  ThreadPool pool(0);
  BuildConfig config;
  config.clip_straddlers = false;
  const auto tree_base = make_sweep_builder()->build(tris, config, pool);
  const auto* tree = dynamic_cast<const KdTree*>(tree_base.get());
  ASSERT_NE(tree, nullptr);
  const ValidationResult r = validate_tree(*tree, true);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
}

// --- Empty-space bonus --------------------------------------------------------

TEST(EmptyBonus, DiscountsEmptyCuts) {
  const SahParams plain{10.0, 17.0, 10.0, 0.0};
  const SahParams bonus{10.0, 17.0, 10.0, 0.3};
  const AABB box({0, 0, 0}, {4, 1, 1});
  // Plane at x=1 with everything on the right: empty left child.
  const SplitCandidate a = evaluate_plane(plain, box, Axis::X, 1.0f, 0, 0, 9, 9);
  const SplitCandidate b = evaluate_plane(bonus, box, Axis::X, 1.0f, 0, 0, 9, 9);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_NEAR(b.cost, a.cost * 0.7, 1e-9);
}

TEST(EmptyBonus, NoDiscountWhenBothSidesOccupied) {
  const SahParams plain{10.0, 17.0, 10.0, 0.0};
  const SahParams bonus{10.0, 17.0, 10.0, 0.3};
  const AABB box({0, 0, 0}, {4, 1, 1});
  const SplitCandidate a = evaluate_plane(plain, box, Axis::X, 2.0f, 4, 0, 5, 9);
  const SplitCandidate b = evaluate_plane(bonus, box, Axis::X, 2.0f, 4, 0, 5, 9);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(EmptyBonus, TreeRemainsCorrectWithBonus) {
  // Clustered geometry with lots of empty space around it.
  std::vector<Triangle> tris = random_soup(200, 12);
  for (Triangle& t : tris) {
    t.a = t.a * 0.2f + Vec3{5, 5, 5};
    t.b = t.b * 0.2f + Vec3{5, 5, 5};
    t.c = t.c * 0.2f + Vec3{5, 5, 5};
  }
  tris.push_back({{-5, -5, -5}, {-4.5f, -5, -5}, {-5, -4.5f, -5}});  // far away
  ThreadPool pool(0);
  BuildConfig config;
  config.empty_bonus = 0.8;
  for (const Algorithm a : all_algorithms()) {
    const auto tree = make_builder(a)->build(tris, config, pool);
    expect_oracle(*tree, tris, 60, 13);
  }
}

}  // namespace
}  // namespace kdtune
