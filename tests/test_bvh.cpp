#include "bvh/bvh.hpp"

#include <gtest/gtest.h>

#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "render/raycaster.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

TEST(Bvh, EmptyScene) {
  ThreadPool pool(0);
  const auto bvh = build_bvh({}, {}, pool);
  EXPECT_FALSE(bvh->closest_hit(Ray({0, 0, 0}, {0, 0, 1})).valid());
  EXPECT_FALSE(bvh->any_hit(Ray({0, 0, 0}, {0, 0, 1})));
  EXPECT_FALSE(bvh->nearest({0, 0, 0}).valid());
  std::vector<std::uint32_t> out;
  bvh->query_range(AABB({-1, -1, -1}, {1, 1, 1}), out);
  EXPECT_TRUE(out.empty());
}

TEST(Bvh, SingleTriangle) {
  ThreadPool pool(0);
  const std::vector<Triangle> tris{{{-1, -1, 2}, {1, -1, 2}, {0, 1, 2}}};
  const auto bvh = build_bvh(tris, {}, pool);
  const Hit hit = bvh->closest_hit(Ray({0, 0, 0}, {0, 0, 1}));
  ASSERT_TRUE(hit.valid());
  EXPECT_FLOAT_EQ(hit.t, 2.0f);
}

TEST(Bvh, ClosestHitMatchesOracle) {
  for (const unsigned workers : {0u, 3u}) {
    ThreadPool pool(workers);
    const auto tris = random_soup(500, 1);
    const auto bvh = build_bvh(tris, {}, pool);
    Rng rng(2);
    const AABB box = bounds_of(tris);
    for (int i = 0; i < 150; ++i) {
      const Vec3 origin = box.center() +
                          normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                          rng.uniform(-1, 1)}) *
                              (length(box.extent()) * 0.8f);
      const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                        rng.uniform(box.lo.y, box.hi.y),
                        rng.uniform(box.lo.z, box.hi.z)};
      const Ray ray(origin, normalized(target - origin));
      const Hit expected = brute_force_closest_hit(ray, tris);
      const Hit got = bvh->closest_hit(ray);
      ASSERT_EQ(got.valid(), expected.valid()) << "ray " << i;
      if (expected.valid()) ASSERT_NEAR(got.t, expected.t, 1e-4f);
      EXPECT_EQ(bvh->any_hit(ray), brute_force_any_hit(ray, tris));
    }
  }
}

TEST(Bvh, IdenticalCentroidsDoNotRecurseForever) {
  // 64 triangles, all with the same centroid (rotated copies).
  std::vector<Triangle> tris;
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    const Vec3 d{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                 rng.uniform(-0.5f, 0.5f)};
    tris.push_back({Vec3{0, 0, 0} - d, Vec3{0, 0, 0} + d,
                    Vec3{d.y, d.z, d.x}});
  }
  // Force equal centroids exactly: translate each so centroid == origin.
  for (Triangle& t : tris) {
    const Vec3 c = t.centroid();
    t.a -= c;
    t.b -= c;
    t.c -= c;
  }
  ThreadPool pool(0);
  const auto bvh = build_bvh(tris, {}, pool);
  EXPECT_GT(bvh->stats().leaf_count, 1u);  // the median fallback split
  EXPECT_LE(bvh->stats().max_depth, 65u);
}

TEST(Bvh, StatsAreCoherent) {
  ThreadPool pool(0);
  const auto tris = random_soup(300, 4);
  const auto bvh = build_bvh(tris, {}, pool);
  const TreeStats s = bvh->stats();
  EXPECT_EQ(s.node_count, 2 * s.leaf_count - 1);  // binary tree
  EXPECT_GE(s.prim_refs, tris.size());  // BVH never duplicates: == actually
  EXPECT_EQ(s.prim_refs, tris.size());
  EXPECT_GT(s.sah_cost, 0.0);
}

TEST(Bvh, MaxLeafSizeIsHonoredOnSeparableInput) {
  // Evenly spread triangles: binning always separates, so leaves obey the
  // bound strictly.
  std::vector<Triangle> tris;
  for (int i = 0; i < 256; ++i) {
    const float x = static_cast<float>(i);
    tris.push_back({{x, 0, 0}, {x + 0.4f, 0, 0}, {x, 0.4f, 0.1f}});
  }
  ThreadPool pool(0);
  BvhConfig config;
  config.max_leaf_size = 2;
  const auto bvh = build_bvh(tris, config, pool);
  for (const Bvh::Node& node : bvh->nodes()) {
    if (node.is_leaf()) EXPECT_LE(node.count, 2u);
  }
}

TEST(Bvh, RangeAndNearestMatchBruteForce) {
  ThreadPool pool(0);
  const auto tris = random_soup(300, 5);
  const auto bvh = build_bvh(tris, {}, pool);
  Rng rng(6);

  for (int q = 0; q < 30; ++q) {
    AABB box;
    box.expand({rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)});
    box.expand({rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)});
    std::vector<std::uint32_t> got;
    bvh->query_range(box, got);
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < tris.size(); ++i) {
      if (box.overlaps(tris[i].bounds()) &&
          !clipped_bounds(tris[i], box).empty()) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(got, expected) << "query " << q;
  }

  for (int q = 0; q < 30; ++q) {
    const Vec3 p{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const NearestResult got = bvh->nearest(p);
    float best = std::numeric_limits<float>::infinity();
    for (const Triangle& t : tris) best = std::min(best, distance_squared(p, t));
    EXPECT_NEAR(got.distance_sq, best, 1e-3f) << "query " << q;
  }
}

TEST(Bvh, RendersTheSameImageAsKdTree) {
  const Scene scene = make_scene("wood_doll", 0.2f)->frame(0);
  ThreadPool pool(2);
  const auto kd = make_builder(Algorithm::kInPlace)
                      ->build(scene.triangles(), kBaseConfig, pool);
  const auto bvh = build_bvh(scene.triangles(), {}, pool);

  const Camera camera(scene.camera(), 48, 36);
  Framebuffer kd_fb(48, 36), bvh_fb(48, 36);
  render(*kd, scene, camera, kd_fb, pool);
  render(*bvh, scene, camera, bvh_fb, pool);
  EXPECT_DOUBLE_EQ(kd_fb.checksum(), bvh_fb.checksum());
}

TEST(Bvh, ParallelBuildMatchesSequentialStructure) {
  const auto tris = random_soup(600, 7);
  ThreadPool seq(0), par(3);
  const auto a = build_bvh(tris, {}, seq);
  const auto b = build_bvh(tris, {}, par);
  EXPECT_EQ(a->stats().node_count, b->stats().node_count);
  EXPECT_EQ(a->stats().leaf_count, b->stats().leaf_count);
  EXPECT_EQ(a->stats().max_depth, b->stats().max_depth);
}

}  // namespace
}  // namespace kdtune
