#include "serve/serve_tuner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "geom/rng.hpp"
#include "scene/scene.hpp"

namespace kdtune {
namespace {

Scene soup_scene(std::size_t n, std::uint64_t seed) {
  Scene scene("soup");
  Rng rng(seed);
  auto& tris = scene.mutable_triangles();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    tris.push_back({a, a + e1, a + e2});
  }
  return scene;
}

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

void pump_requests(QueryService& service, Rng& rng, int n) {
  for (int i = 0; i < n; ++i) {
    const Vec3 origin{rng.uniform(-25, 25), rng.uniform(-25, 25),
                      rng.uniform(-25, 25)};
    const Vec3 target{rng.uniform(-10, 10), rng.uniform(-10, 10),
                      rng.uniform(-10, 10)};
    Vec3 dir = target - origin;
    if (length(dir) == 0.0f) dir = {1, 0, 0};
    service.submit_closest_hit("soup", Ray(origin, normalized(dir))).get();
  }
}

void pump_mixed(QueryService& service, Rng& rng, int n) {
  for (int i = 0; i < n; ++i) {
    const Vec3 p{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    switch (i % 3) {
      case 0:
        service.submit_range("soup", {p - Vec3{2, 2, 2}, p + Vec3{2, 2, 2}})
            .get();
        break;
      case 1:
        service.submit_nearest("soup", p, 4).get();
        break;
      default:
        service.submit_closest_point("soup", p, 8.0f).get();
        break;
    }
  }
}

struct TunerFixture {
  ThreadPool pool{2};
  SceneRegistry registry{pool};
  QueryService service{registry, pool};

  TunerFixture() { registry.admit("soup", soup_scene(200, 21)); }
};

TEST(ServeTuner, AppliesTrialParamsWithinGrids) {
  TunerFixture f;
  ServeTunerOptions opts;
  opts.batch_min = 1;
  opts.batch_max = 64;
  ServeTuner tuner(f.service, opts);
  Rng rng(1);

  std::set<std::int64_t> batches;
  for (int w = 0; w < 12; ++w) {
    tuner.begin_window();
    EXPECT_TRUE(tuner.window_open());
    const ServingParams trial = tuner.current();
    EXPECT_TRUE(is_pow2(trial.batch_size));
    EXPECT_GE(trial.batch_size, 1);
    EXPECT_LE(trial.batch_size, 64);
    EXPECT_GE(trial.flush_timeout_us, opts.flush_min_us);
    EXPECT_LE(trial.flush_timeout_us, opts.flush_max_us);
    EXPECT_GE(trial.max_inflight_batches, 1);
    EXPECT_LE(trial.max_inflight_batches,
              static_cast<std::int64_t>(f.service.concurrency()));
    // The trial is actually applied to the service, not just stored.
    EXPECT_EQ(f.service.serving_params().batch_size, trial.batch_size);
    batches.insert(trial.batch_size);

    pump_requests(f.service, rng, 30);
    const double qps = tuner.end_window();
    EXPECT_FALSE(tuner.window_open());
    EXPECT_GT(qps, 0.0);
  }
  EXPECT_EQ(tuner.windows(), 12u);
  // The search explored: more than one distinct batch size was applied.
  EXPECT_GE(batches.size(), 2u);
}

TEST(ServeTuner, BestStaysWithinGrids) {
  TunerFixture f;
  ServeTunerOptions opts;
  opts.batch_min = 2;
  opts.batch_max = 32;
  ServeTuner tuner(f.service, opts);
  Rng rng(2);
  for (int w = 0; w < 8; ++w) {
    tuner.begin_window();
    pump_requests(f.service, rng, 20);
    tuner.end_window();
  }
  const ServingParams best = tuner.best();
  EXPECT_TRUE(is_pow2(best.batch_size));
  EXPECT_GE(best.batch_size, 2);
  EXPECT_LE(best.batch_size, 32);
  EXPECT_GE(best.flush_timeout_us, 0);
  EXPECT_LE(best.flush_timeout_us, opts.flush_max_us);
  EXPECT_GE(best.max_inflight_batches, 1);
}

TEST(ServeTuner, ZeroCompletionWindowDoesNotPoisonTheSearch) {
  TunerFixture f;
  ServeTuner tuner(f.service);
  Rng rng(3);

  // An idle window: zero completions must record a finite cost.
  tuner.begin_window();
  EXPECT_EQ(tuner.end_window(), 0.0);
  EXPECT_EQ(tuner.windows(), 1u);

  // The tuner keeps proposing and measuring normally afterwards.
  for (int w = 0; w < 4; ++w) {
    tuner.begin_window();
    pump_requests(f.service, rng, 15);
    EXPECT_GT(tuner.end_window(), 0.0);
  }
  EXPECT_EQ(tuner.windows(), 5u);
  const ServingParams best = tuner.best();
  EXPECT_GE(best.batch_size, 1);
}

TEST(ServeTuner, WindowProtocolIsForgiving) {
  TunerFixture f;
  ServeTuner tuner(f.service);
  // end before begin: a no-op, not an error.
  EXPECT_EQ(tuner.end_window(), 0.0);
  EXPECT_EQ(tuner.windows(), 0u);
  // double begin: the second is a no-op.
  tuner.begin_window();
  const ServingParams first = tuner.current();
  tuner.begin_window();
  EXPECT_EQ(tuner.current().batch_size, first.batch_size);
  tuner.end_window();
  EXPECT_EQ(tuner.windows(), 1u);
}

TEST(ServeTuner, OptionalKnobsCanBeDisabled) {
  TunerFixture f;
  const ServingParams before = f.service.serving_params();
  ServeTunerOptions opts;
  opts.tune_flush = false;
  opts.tune_workers = false;
  ServeTuner tuner(f.service, opts);
  Rng rng(4);
  for (int w = 0; w < 4; ++w) {
    tuner.begin_window();
    pump_requests(f.service, rng, 10);
    tuner.end_window();
  }
  // Only batch_size is searched; the other knobs keep their initial values.
  EXPECT_EQ(tuner.current().flush_timeout_us, before.flush_timeout_us);
  EXPECT_EQ(tuner.current().max_inflight_batches,
            before.max_inflight_batches);
  EXPECT_EQ(tuner.best().flush_timeout_us, before.flush_timeout_us);
}

TEST(ServeTuner, FamilyDimensionsAreSearchedAndBackendStaysLast) {
  TunerFixture f;
  ServeTunerOptions opts;
  opts.batch_min = 1;
  opts.batch_max = 64;
  opts.tune_families = {QueryKind::kRange, QueryKind::kNearest,
                        QueryKind::kClosestPoint};
  opts.tune_backend = true;
  ServeTuner tuner(f.service, opts);

  // Dimension layout: the three global knobs, then one batch + one flush
  // dimension per listed family, with the backend dimension last —
  // best_backend() decodes the final value, so the order is load-bearing.
  const auto& params = tuner.tuner().parameters();
  ASSERT_EQ(params.size(), 3u + 2u * 3u + 1u);
  EXPECT_EQ(params[3].name(), "range.batch_size");
  EXPECT_EQ(params[4].name(), "range.flush_timeout_us");
  EXPECT_EQ(params[5].name(), "nearest.batch_size");
  EXPECT_EQ(params[6].name(), "nearest.flush_timeout_us");
  EXPECT_EQ(params[7].name(), "closest_point.batch_size");
  EXPECT_EQ(params[8].name(), "closest_point.flush_timeout_us");
  EXPECT_EQ(params.back().name(), std::string(kQueryBackendParam));

  Rng rng(6);
  for (int w = 0; w < 8; ++w) {
    tuner.begin_window();
    const ServingParams trial = tuner.current();
    for (const QueryKind kind : opts.tune_families) {
      const FamilyParams& fam = trial.family[static_cast<std::size_t>(kind)];
      EXPECT_TRUE(is_pow2(fam.batch_size));
      EXPECT_GE(fam.batch_size, 1);
      EXPECT_LE(fam.batch_size, 64);
      EXPECT_GE(fam.flush_timeout_us, opts.flush_min_us);
      EXPECT_LE(fam.flush_timeout_us, opts.flush_max_us);
      // The family trial is live on the service, not just stored.
      EXPECT_EQ(f.service.serving_params().effective_batch(kind),
                fam.batch_size);
    }
    pump_mixed(f.service, rng, 12);
    tuner.end_window();
  }

  const ServingParams best = tuner.best();
  for (const QueryKind kind : opts.tune_families) {
    const FamilyParams& fam = best.family[static_cast<std::size_t>(kind)];
    EXPECT_TRUE(is_pow2(fam.batch_size));
    EXPECT_GE(fam.batch_size, 1);
    EXPECT_LE(fam.batch_size, 64);
    EXPECT_GE(fam.flush_timeout_us, opts.flush_min_us);
    EXPECT_LE(fam.flush_timeout_us, opts.flush_max_us);
  }
  const int bb = static_cast<int>(tuner.best_backend());
  EXPECT_GE(bb, 0);
  EXPECT_LT(bb, static_cast<int>(kQueryBackendCount));
}

}  // namespace
}  // namespace kdtune
