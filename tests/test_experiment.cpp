#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "core/table_io.hpp"
#include "scene/generators.hpp"

#include <sstream>

namespace kdtune {
namespace {

ExperimentOptions tiny_opts() {
  ExperimentOptions opts;
  opts.width = 32;
  opts.height = 24;
  opts.detail = 0.08f;
  opts.max_iterations = 25;
  opts.post_convergence = 3;
  opts.base_samples = 3;
  return opts;
}

TEST(Experiment, TuningRunHasCoherentStructure) {
  ThreadPool pool(0);
  const auto scene = make_scene("bunny", 0.08f);
  const TuningRun run = run_tuning_experiment(Algorithm::kInPlace, *scene,
                                              pool, tiny_opts());
  EXPECT_EQ(run.scene, "bunny");
  EXPECT_EQ(run.algorithm, "in-place");
  EXPECT_FALSE(run.samples.empty());
  EXPECT_GT(run.base_median, 0.0);
  EXPECT_GT(run.tuned_median, 0.0);
  EXPECT_GT(run.speedup(), 0.0);
  EXPECT_EQ(run.tuned_values.size(), 3u);
  EXPECT_GT(run.iterations_to_convergence, 0u);
  // Samples are sequentially numbered.
  for (std::size_t i = 0; i < run.samples.size(); ++i) {
    EXPECT_EQ(run.samples[i].iteration, i);
  }
}

TEST(Experiment, LazyRunCarriesFourValues) {
  ThreadPool pool(0);
  const auto scene = make_scene("bunny", 0.08f);
  const TuningRun run =
      run_tuning_experiment(Algorithm::kLazy, *scene, pool, tiny_opts());
  EXPECT_EQ(run.tuned_values.size(), 4u);
  for (const IterationSample& s : run.samples) {
    EXPECT_EQ(s.values.size(), 4u);
  }
}

TEST(Experiment, DynamicSceneCyclesFramesWithRepeat) {
  ThreadPool pool(0);
  const auto scene = make_scene("wood_doll", 0.08f);
  ExperimentOptions opts = tiny_opts();
  opts.frame_repeat = 2;
  const TuningRun run =
      run_tuning_experiment(Algorithm::kNodeLevel, *scene, pool, opts);
  // Frames advance every `frame_repeat` iterations.
  ASSERT_GE(run.samples.size(), 6u);
  EXPECT_EQ(run.samples[0].frame, 0u);
  EXPECT_EQ(run.samples[1].frame, 0u);
  EXPECT_EQ(run.samples[2].frame, 1u);
  EXPECT_EQ(run.samples[4].frame, 2u);
}

TEST(Experiment, MeasureConfigTimesCount) {
  ThreadPool pool(0);
  const auto scene = make_scene("bunny", 0.06f);
  const auto times = measure_config_times(Algorithm::kInPlace, *scene,
                                          kBaseConfig, pool, tiny_opts(), 5);
  ASSERT_EQ(times.size(), 5u);
  for (double t : times) EXPECT_GT(t, 0.0);
}

TEST(Experiment, StrategyFactorySeedsAreUsed) {
  ThreadPool pool(0);
  const auto scene = make_scene("bunny", 0.06f);
  ExperimentOptions a = tiny_opts();
  ExperimentOptions b = tiny_opts();
  b.seed = a.seed + 1;
  const TuningRun ra =
      run_tuning_experiment(Algorithm::kInPlace, *scene, pool, a);
  const TuningRun rb =
      run_tuning_experiment(Algorithm::kInPlace, *scene, pool, b);
  // Different seeds explore different configurations (compare the first
  // sampled values; identical sampling for different seeds would indicate the
  // seed is ignored).
  ASSERT_FALSE(ra.samples.empty());
  ASSERT_FALSE(rb.samples.empty());
  bool any_different = false;
  const std::size_t n = std::min(ra.samples.size(), rb.samples.size());
  for (std::size_t i = 0; i < n && !any_different; ++i) {
    any_different = ra.samples[i].values != rb.samples[i].values;
  }
  EXPECT_TRUE(any_different);
}

TEST(Platforms, PaperMachines) {
  const auto platforms = paper_platforms();
  ASSERT_EQ(platforms.size(), 4u);
  EXPECT_EQ(platforms[0].threads, 24u);
  EXPECT_EQ(platforms[3].threads, 4u);
  EXPECT_EQ(opteron_platform().name, "opteron24");
}

TEST(TableIo, AlignedTableOutput) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 1  "), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TableIo, CsvOutput) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableIo, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(0.000123, 6), "0.000123");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(TableIo, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"1"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace kdtune
