// Packet traversal must be bit-identical to per-ray traversal: same hit
// triangle, same t, for coherent and incoherent packets alike.

#include "kdtree/packet.hpp"

#include <gtest/gtest.h>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "render/camera.hpp"
#include "render/raycaster.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::unique_ptr<KdTree> build_tree(const std::vector<Triangle>& tris) {
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(tris, kBaseConfig, pool);
  return std::unique_ptr<KdTree>(dynamic_cast<KdTree*>(base.release()));
}

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

void expect_packet_matches_scalar(const KdTree& tree,
                                  std::span<const Ray> rays) {
  std::vector<Hit> packet_hits(rays.size());
  closest_hit_packet(tree, rays, packet_hits);
  for (std::size_t i = 0; i < rays.size(); ++i) {
    const Hit scalar = tree.closest_hit(rays[i]);
    ASSERT_EQ(packet_hits[i].valid(), scalar.valid()) << "ray " << i;
    if (scalar.valid()) {
      EXPECT_EQ(packet_hits[i].triangle, scalar.triangle) << "ray " << i;
      EXPECT_FLOAT_EQ(packet_hits[i].t, scalar.t) << "ray " << i;
    }
  }
}

TEST(Packet, CoherentCameraTileMatchesScalar) {
  const Scene scene = make_scene("sponza", 0.12f)->frame(0);
  const auto tree = build_tree(std::vector<Triangle>(
      scene.triangles().begin(), scene.triangles().end()));
  const Camera camera(scene.camera(), 64, 48);
  std::vector<Ray> rays;
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) rays.push_back(camera.primary_ray(x, y));
  }
  ASSERT_EQ(rays.size(), kMaxPacketSize);
  expect_packet_matches_scalar(*tree, rays);
}

TEST(Packet, IncoherentRandomRaysMatchScalar) {
  const auto tris = random_soup(400, 3);
  const auto tree = build_tree(tris);
  Rng rng(4);
  std::vector<Ray> rays;
  for (std::size_t i = 0; i < kMaxPacketSize; ++i) {
    rays.emplace_back(
        Vec3{rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-6, 6)},
        normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)}));
  }
  expect_packet_matches_scalar(*tree, rays);
}

TEST(Packet, MixedDirectionsAlongEveryAxis) {
  const auto tris = random_soup(200, 5);
  const auto tree = build_tree(tris);
  std::vector<Ray> rays;
  for (int axis = 0; axis < 3; ++axis) {
    for (int sign = -1; sign <= 1; sign += 2) {
      Vec3 dir{0, 0, 0};
      dir[axis] = static_cast<float>(sign);
      for (int j = 0; j < 4; ++j) {
        Vec3 origin{0.3f * j, 0.2f * j, 0.1f * j};
        origin[axis] = sign > 0 ? -8.0f : 8.0f;
        rays.emplace_back(origin, dir);
      }
    }
  }
  expect_packet_matches_scalar(*tree, rays);
}

TEST(Packet, PartialAndSingleRayPackets) {
  const auto tris = random_soup(150, 6);
  const auto tree = build_tree(tris);
  Rng rng(7);
  for (const std::size_t size : {1u, 2u, 7u, 33u}) {
    std::vector<Ray> rays;
    for (std::size_t i = 0; i < size; ++i) {
      rays.emplace_back(
          Vec3{rng.uniform(-5, 5), rng.uniform(-5, 5), -8.0f},
          normalized(Vec3{rng.uniform(-0.3f, 0.3f), rng.uniform(-0.3f, 0.3f), 1.0f}));
    }
    expect_packet_matches_scalar(*tree, rays);
  }
}

TEST(Packet, RespectsPerRayIntervals) {
  const std::vector<Triangle> tris{
      {{-1, -1, 2}, {1, -1, 2}, {0, 1, 2}},
      {{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}},
  };
  const auto tree = build_tree(tris);
  std::vector<Ray> rays{
      Ray({0, 0, 0}, {0, 0, 1}),                 // hits z=2
      Ray({0, 0, 0}, {0, 0, 1}, 3.0f, 10.0f),    // window excludes z=2
      Ray({0, 0, 0}, {0, 0, 1}, 6.0f, 10.0f),    // window excludes both
  };
  std::vector<Hit> hits(rays.size());
  closest_hit_packet(*tree, rays, hits);
  ASSERT_TRUE(hits[0].valid());
  EXPECT_FLOAT_EQ(hits[0].t, 2.0f);
  ASSERT_TRUE(hits[1].valid());
  EXPECT_FLOAT_EQ(hits[1].t, 5.0f);
  EXPECT_FALSE(hits[2].valid());
}

TEST(Packet, ErrorsOnBadArguments) {
  const auto tris = random_soup(10, 8);
  const auto tree = build_tree(tris);
  std::vector<Ray> rays(3);
  std::vector<Hit> wrong(2);
  EXPECT_THROW(closest_hit_packet(*tree, rays, wrong), std::invalid_argument);
  std::vector<Ray> huge(kMaxPacketSize + 1);
  std::vector<Hit> huge_hits(kMaxPacketSize + 1);
  EXPECT_THROW(closest_hit_packet(*tree, huge, huge_hits),
               std::invalid_argument);
}

TEST(Packet, AnyFallbackChunksLargeSpans) {
  const auto tris = random_soup(200, 9);
  const auto tree = build_tree(tris);
  Rng rng(10);
  std::vector<Ray> rays;
  for (int i = 0; i < 150; ++i) {  // > 2 packets
    rays.emplace_back(
        Vec3{rng.uniform(-5, 5), rng.uniform(-5, 5), -8.0f},
        normalized(Vec3{rng.uniform(-0.3f, 0.3f), rng.uniform(-0.3f, 0.3f), 1.0f}));
  }
  std::vector<Hit> hits(rays.size());
  closest_hit_packet_any(*tree, rays, hits);
  for (std::size_t i = 0; i < rays.size(); ++i) {
    const Hit scalar = tree->closest_hit(rays[i]);
    ASSERT_EQ(hits[i].valid(), scalar.valid());
    if (scalar.valid()) EXPECT_FLOAT_EQ(hits[i].t, scalar.t);
  }
}

TEST(Packet, RenderWithPacketsMatchesScalarRender) {
  const Scene scene = make_scene("wood_doll", 0.2f)->frame(0);
  ThreadPool pool(2);
  const auto tree = make_builder(Algorithm::kInPlace)
                        ->build(scene.triangles(), kBaseConfig, pool);
  const Camera camera(scene.camera(), 64, 48);

  Framebuffer scalar_fb(64, 48), packet_fb(64, 48);
  RenderOptions scalar_opts;
  RenderOptions packet_opts;
  packet_opts.use_packets = true;
  render(*tree, scene, camera, scalar_fb, pool, scalar_opts);
  render(*tree, scene, camera, packet_fb, pool, packet_opts);
  EXPECT_DOUBLE_EQ(scalar_fb.checksum(), packet_fb.checksum());
}

TEST(Packet, LazyTreeFallsBackToScalar) {
  const auto tris = random_soup(300, 11);
  ThreadPool pool(0);
  BuildConfig config;
  config.r = 64;
  const auto lazy = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  Rng rng(12);
  std::vector<Ray> rays;
  for (std::size_t i = 0; i < 32; ++i) {
    rays.emplace_back(
        Vec3{rng.uniform(-5, 5), rng.uniform(-5, 5), -8.0f},
        normalized(Vec3{rng.uniform(-0.3f, 0.3f), rng.uniform(-0.3f, 0.3f), 1.0f}));
  }
  std::vector<Hit> hits(rays.size());
  closest_hit_packet_any(*lazy, rays, hits);
  for (std::size_t i = 0; i < rays.size(); ++i) {
    const Hit scalar = lazy->closest_hit(rays[i]);
    ASSERT_EQ(hits[i].valid(), scalar.valid());
    if (scalar.valid()) EXPECT_FLOAT_EQ(hits[i].t, scalar.t);
  }
}

}  // namespace
}  // namespace kdtune
