#include "kdtree/compact_tree.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/serialize.hpp"
#include "scene/animation.hpp"
#include "render/camera.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

// The compact layout promises *bit-identical* query results to the source
// KdTree — same traversal decisions, same per-leaf test order, same
// Möller–Trumbore arithmetic. These tests enforce exact equality (==, not
// NEAR) across every procedural scene and every builder.

std::unique_ptr<KdTree> build_eager(std::span<const Triangle> tris,
                                    const Builder& builder) {
  ThreadPool pool(2);
  auto base = builder.build(tris, kBaseConfig, pool);
  auto* eager = dynamic_cast<KdTree*>(base.get());
  EXPECT_NE(eager, nullptr);
  base.release();
  return std::unique_ptr<KdTree>(eager);
}

std::vector<Ray> make_rays(const Scene& scene, int count, std::uint64_t seed) {
  std::vector<Ray> rays;
  const Camera camera(scene.camera(), 64, 48);
  for (int y = 0; y < 48; y += 4) {
    for (int x = 0; x < 64; x += 4) rays.push_back(camera.primary_ray(x, y));
  }
  Rng rng(seed);
  const AABB b = scene.bounds();
  const Vec3 size = b.hi - b.lo;
  for (int i = 0; i < count; ++i) {
    const Vec3 origin{b.lo.x + rng.uniform(-0.5f, 1.5f) * size.x,
                      b.lo.y + rng.uniform(-0.5f, 1.5f) * size.y,
                      b.lo.z + rng.uniform(-0.5f, 1.5f) * size.z};
    const Vec3 dir = normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)} +
                                Vec3{0.0f, 0.0f, 1e-4f});
    rays.emplace_back(origin, dir);
  }
  return rays;
}

void expect_identical_hit(const Hit& a, const Hit& b) {
  ASSERT_EQ(a.valid(), b.valid());
  if (a.valid()) {
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.triangle, b.triangle);
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
  }
}

void expect_parity(const KdTree& kd, const CompactKdTree& compact,
                   const Scene& scene, std::uint64_t seed) {
  const std::vector<Ray> rays = make_rays(scene, 64, seed);
  for (const Ray& ray : rays) {
    expect_identical_hit(kd.closest_hit(ray), compact.closest_hit(ray));
    EXPECT_EQ(kd.any_hit(ray), compact.any_hit(ray));

    TraversalCounters ca, cb;
    expect_identical_hit(kd.closest_hit_counted(ray, ca),
                         compact.closest_hit_counted(ray, cb));
    EXPECT_EQ(ca.interior_visited, cb.interior_visited);
    EXPECT_EQ(ca.leaves_visited, cb.leaves_visited);
    EXPECT_EQ(ca.triangles_tested, cb.triangles_tested);
  }

  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const AABB b = scene.bounds();
  const Vec3 size = b.hi - b.lo;
  for (int i = 0; i < 32; ++i) {
    const Vec3 c{b.lo.x + rng.uniform(0, 1) * size.x,
                 b.lo.y + rng.uniform(0, 1) * size.y,
                 b.lo.z + rng.uniform(0, 1) * size.z};
    const Vec3 half = size * rng.uniform(0.01f, 0.3f);
    std::vector<std::uint32_t> got_kd, got_compact;
    kd.query_range({c - half, c + half}, got_kd);
    compact.query_range({c - half, c + half}, got_compact);
    EXPECT_EQ(got_kd, got_compact);

    const NearestResult na = kd.nearest(c);
    const NearestResult nb = compact.nearest(c);
    ASSERT_EQ(na.valid(), nb.valid());
    if (na.valid()) {
      EXPECT_EQ(na.triangle, nb.triangle);
      EXPECT_EQ(na.distance_sq, nb.distance_sq);
      EXPECT_EQ(na.point, nb.point);
    }
  }
}

struct NamedBuilder {
  const char* name;
  std::unique_ptr<Builder> builder;
};

std::vector<NamedBuilder> all_builders() {
  std::vector<NamedBuilder> out;
  out.push_back({"median", make_median_builder()});
  out.push_back({"sweep", make_sweep_builder()});
  out.push_back({"event", make_event_builder()});
  out.push_back({"nodelevel", make_builder(Algorithm::kNodeLevel)});
  out.push_back({"nested", make_builder(Algorithm::kNested)});
  out.push_back({"inplace", make_builder(Algorithm::kInPlace)});
  return out;
}

// All six procedural scenes x all eager builders, exact parity on every
// query type. Small detail keeps the cross-product fast; determinism comes
// from fixed seeds.
TEST(CompactParity, AllScenesAllBuilders) {
  const auto builders = all_builders();
  std::uint64_t seed = 1;
  for (const std::string& id : scene_ids()) {
    const Scene scene = make_scene(id, 0.1f)->frame(0);
    for (const NamedBuilder& spec : builders) {
      SCOPED_TRACE(id + " / " + spec.name);
      const auto kd = build_eager(scene.triangles(), *spec.builder);
      const CompactKdTree compact(*kd);
      expect_parity(*kd, compact, scene, seed++);
    }
  }
}

// Counters and stats agree with the source tree structurally.
TEST(CompactParity, StatsMatchSource) {
  const Scene scene = make_scene("bunny", 0.2f)->frame(0);
  const auto kd = build_eager(scene.triangles(), *make_sweep_builder());
  const CompactKdTree compact(*kd);

  const TreeStats a = kd->stats();
  const TreeStats b = compact.stats();
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.leaf_count, b.leaf_count);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.prim_refs, b.prim_refs);
  EXPECT_DOUBLE_EQ(a.sah_cost, b.sah_cost);
  EXPECT_EQ(compact.bounds(), kd->bounds());
  EXPECT_EQ(compact.triangles().size(), kd->triangles().size());
}

// Degenerate inputs: a single triangle (inlined leaf) and a handful that
// never split.
TEST(CompactParity, TinyTrees) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}}) {
    Rng rng(7 + n);
    std::vector<Triangle> tris;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 base{rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-2, 2)};
      tris.push_back({base, base + Vec3{1, 0, 0}, base + Vec3{0, 1, 0}});
    }
    const auto kd = build_eager(tris, *make_sweep_builder());
    const CompactKdTree compact(*kd);
    Rng ray_rng(n);
    for (int i = 0; i < 200; ++i) {
      const Ray ray({ray_rng.uniform(-4, 4), ray_rng.uniform(-4, 4), -6.0f},
                    normalized(Vec3{ray_rng.uniform(-0.4f, 0.4f),
                                    ray_rng.uniform(-0.4f, 0.4f), 1.0f}));
      expect_identical_hit(kd->closest_hit(ray), compact.closest_hit(ray));
      EXPECT_EQ(kd->any_hit(ray), compact.any_hit(ray));
    }
  }
}

// Compact results are also correct, not just consistent: spot-check against
// the brute-force oracle.
TEST(CompactParity, MatchesBruteForceOracle) {
  const Scene scene = make_scene("toasters", 0.15f)->frame(0);
  const auto kd = build_eager(scene.triangles(), *make_event_builder());
  const CompactKdTree compact(*kd);
  const std::vector<Ray> rays = make_rays(scene, 32, 99);
  for (const Ray& ray : rays) {
    const Hit got = compact.closest_hit(ray);
    const Hit want = brute_force_closest_hit(ray, scene.triangles());
    ASSERT_EQ(got.valid(), want.valid());
    if (want.valid()) EXPECT_EQ(got.t, want.t);
    EXPECT_EQ(compact.any_hit(ray), brute_force_any_hit(ray, scene.triangles()));
  }
}

// ---------------------------------------------------------------------------
// Serialization: v2 round trip, v1 backward read, cross-format rejection.

TEST(CompactSerialize, V2RoundTripIsExact) {
  const Scene scene = make_scene("wood_doll", 0.15f)->frame(0);
  const auto kd = build_eager(scene.triangles(), *make_sweep_builder());
  const CompactKdTree compact(*kd);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_compact_tree(buffer, compact);
  const auto loaded = load_compact_tree(buffer);

  ASSERT_EQ(loaded->nodes().size(), compact.nodes().size());
  for (std::size_t i = 0; i < compact.nodes().size(); ++i) {
    EXPECT_EQ(loaded->nodes()[i].meta, compact.nodes()[i].meta);
    EXPECT_EQ(loaded->nodes()[i].prim, compact.nodes()[i].prim);
  }
  ASSERT_EQ(loaded->leaf_tris().size(), compact.leaf_tris().size());
  EXPECT_EQ(loaded->bounds(), compact.bounds());
  expect_parity(*kd, *loaded, scene, 123);
}

TEST(CompactSerialize, ReadsV1FilesByConversion) {
  const Scene scene = make_scene("fairy_forest", 0.1f)->frame(0);
  const auto kd = build_eager(scene.triangles(), *make_median_builder());

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_tree(buffer, *kd);  // v1 (builder layout)
  const auto loaded = load_compact_tree(buffer);
  expect_parity(*kd, *loaded, scene, 321);
}

TEST(CompactSerialize, LoadTreeRejectsV2WithPointer) {
  const auto kd = build_eager(make_scene("bunny", 0.05f)->frame(0).triangles(),
                              *make_sweep_builder());
  const CompactKdTree compact(*kd);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_compact_tree(buffer, compact);
  try {
    load_tree(buffer);
    FAIL() << "load_tree accepted a v2 stream";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("load_compact_tree"),
              std::string::npos);
  }
}

TEST(CompactSerialize, RejectsTruncatedStream) {
  const auto kd = build_eager(make_scene("bunny", 0.05f)->frame(0).triangles(),
                              *make_sweep_builder());
  const CompactKdTree compact(*kd);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_compact_tree(full, compact);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(load_compact_tree(cut), std::runtime_error);
}

}  // namespace
}  // namespace kdtune
