// FramePipeline + FrameTuner: the dynamic-scene frame loop.
//
// The load-bearing assertions here are the pipeline contracts from
// docs/DYNAMIC.md — overlapped execution is bit-identical to the sequential
// build-then-query baseline, publication is exactly-once with versions
// advancing by 1 per frame, the pacing policies behave as specified — plus
// the probe-frame tuning protocol and the ConfigCache cross-frame
// warm-start loop.

#include "dynamic/frame_pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/differential.hpp"
#include "dynamic/frame_tuner.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "obs/tuner_log.hpp"
#include "scene/animation.hpp"
#include "scene/generators.hpp"
#include "serve/scene_registry.hpp"

namespace kdtune {
namespace {

// Deterministic per-frame triangle soup: frame i regenerates identical
// geometry on every call (the pipeline may build it on any thread).
std::shared_ptr<const AnimatedScene> soup_animation(const std::string& name,
                                                    std::size_t frames,
                                                    std::size_t tris) {
  return std::make_shared<ProceduralAnimation>(
      name, frames, [name, tris](std::size_t i) {
        Scene scene(name);
        Rng rng(0x5eed + 131 * static_cast<std::uint64_t>(i));
        auto& out = scene.mutable_triangles();
        out.reserve(tris);
        for (std::size_t k = 0; k < tris; ++k) {
          const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10),
                       rng.uniform(-10, 10)};
          const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)};
          const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)};
          out.push_back({a, a + e1, a + e2});
        }
        return scene;
      });
}

std::vector<Ray> probe_rays(std::size_t n) {
  std::vector<Ray> rays;
  rays.reserve(n);
  Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 origin{rng.uniform(-12, 12), rng.uniform(-12, 12), -30.0f};
    const Vec3 target{rng.uniform(-6, 6), rng.uniform(-6, 6),
                      rng.uniform(-6, 6)};
    rays.emplace_back(origin, normalized(target - origin));
  }
  return rays;
}

// ---------------------------------------------------------------- FrameTuner

TEST(FrameTuner, ProbeCadenceInOverlappedOperation) {
  FrameTuner tuner;
  const FrameTuner::Trial t0 = tuner.next_trial();
  EXPECT_TRUE(t0.probe);  // fresh proposal outstanding

  // A second build launched before the probe retires reuses the trial
  // configuration unrecorded.
  const FrameTuner::Trial t1 = tuner.next_trial();
  EXPECT_FALSE(t1.probe);
  EXPECT_EQ(t0.config.ci, t1.config.ci);
  EXPECT_EQ(t0.config.cb, t1.config.cb);
  EXPECT_EQ(t0.config.s, t1.config.s);

  tuner.frame_retired(false, 0.5, 0.5);  // non-probe: ignored
  EXPECT_EQ(tuner.iterations(), 0u);

  tuner.frame_retired(true, 0.01, 0.0);  // probe completes the measurement
  EXPECT_EQ(tuner.iterations(), 1u);

  EXPECT_TRUE(tuner.next_trial().probe);  // next iteration starts
}

TEST(FrameTuner, ProbeRetireWithoutOutstandingProbeThrows) {
  FrameTuner tuner;
  EXPECT_THROW(tuner.frame_retired(true, 0.01, 0.0), std::logic_error);
}

TEST(FrameTuner, ObjectiveWeightsQueryTime) {
  FrameTunerOptions opts;
  opts.query_weight = 2.0;
  FrameTuner tuner(opts);
  EXPECT_DOUBLE_EQ(tuner.query_weight(), 2.0);
  (void)tuner.next_trial();
  tuner.frame_retired(true, 0.010, 0.005);  // m = 0.010 + 2 * 0.005
  EXPECT_DOUBLE_EQ(tuner.best_objective(), 0.020);
}

TEST(FrameTuner, EmptyAlgorithmListThrows) {
  FrameTunerOptions opts;
  opts.algorithms.clear();
  EXPECT_THROW(FrameTuner{opts}, std::invalid_argument);
}

TEST(FrameTuner, SelectionRoutesToFastestAlgorithm) {
  FrameTunerOptions opts;
  opts.algorithms = {Algorithm::kInPlace, Algorithm::kNested};
  opts.frames_per_algorithm = 5;
  FrameTuner tuner(opts);
  EXPECT_FALSE(tuner.selection_done());

  // Synthetic costs: kNested is always twice as fast.
  int guard = 0;
  while (!tuner.selection_done() && guard++ < 1000) {
    const FrameTuner::Trial t = tuner.next_trial();
    const double cost = t.algorithm == Algorithm::kNested ? 0.001 : 0.002;
    tuner.frame_retired(t.probe, cost, 0.0);
  }
  ASSERT_TRUE(tuner.selection_done());
  EXPECT_EQ(tuner.current_algorithm(), Algorithm::kNested);
  EXPECT_EQ(tuner.best_algorithm(), Algorithm::kNested);
  EXPECT_DOUBLE_EQ(tuner.best_objective(), 0.001);
  // Further trials keep going to the winner (its tuner stays online).
  EXPECT_EQ(tuner.next_trial().algorithm, Algorithm::kNested);
}

// ------------------------------------ five-candidate selection, real scenes
//
// The paper-conclusion experiment in miniature: all five tuned algorithms
// compete on real builds and real query batches, and the decision is read
// back from the TunerLog stream rather than tuner accessors alone. A
// fast-deforming soup (rebuilt every frame, light query load) must route to
// the left-balanced builder; a static structured scene under a query-heavy
// objective must route back to an SAH builder.

std::vector<Ray> rays_toward(const AABB& bounds, std::size_t n) {
  const Vec3 ext = bounds.extent();
  std::vector<Ray> rays;
  rays.reserve(n);
  Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 origin{bounds.lo.x - ext.x * 0.3f + rng.next_float() * ext.x * 1.6f,
                      bounds.lo.y - ext.y * 0.3f + rng.next_float() * ext.y * 1.6f,
                      bounds.lo.z - ext.z};
    const Vec3 target{bounds.lo.x + rng.next_float() * ext.x,
                      bounds.lo.y + rng.next_float() * ext.y,
                      bounds.lo.z + rng.next_float() * ext.z};
    rays.emplace_back(origin, normalized(target - origin));
  }
  return rays;
}

// Runs probe frames with real wall-clock measurement until algorithm
// selection finishes, then a few more so the log's tail shows the winner's
// stream. `frame_tris` supplies frame i's geometry (constant for a static
// scene).
void drive_real_selection(
    FrameTuner& tuner, ThreadPool& pool,
    const std::function<const std::vector<Triangle>&(std::size_t)>& frame_tris,
    const std::vector<Ray>& rays) {
  using Clock = std::chrono::steady_clock;
  float sink = 0.0f;
  std::size_t frame = 0;
  const std::size_t post_selection_probes = 3;
  std::size_t remaining = post_selection_probes;
  while (!tuner.selection_done() || remaining-- > 0) {
    ASSERT_LT(frame, std::size_t{400});  // runaway guard
    const FrameTuner::Trial trial = tuner.next_trial();
    const std::vector<Triangle>& tris = frame_tris(frame);
    const auto t0 = Clock::now();
    const auto tree =
        make_builder(trial.algorithm)->build(tris, trial.config, pool);
    const auto t1 = Clock::now();
    for (const Ray& ray : rays) {
      const Hit hit = tree->closest_hit(ray);
      if (hit.valid()) sink += hit.t;
    }
    const auto t2 = Clock::now();
    tuner.frame_retired(trial.probe,
                        std::chrono::duration<double>(t1 - t0).count(),
                        std::chrono::duration<double>(t2 - t1).count());
    ++frame;
  }
  EXPECT_GE(sink, 0.0f);  // keep the query loop observable
}

struct LogDigest {
  std::map<std::string, double> min_seconds;  ///< per-stream best objective
  std::string last_stream;                    ///< stream of the final record
  std::size_t records = 0;
};

// Reads a TunerLog JSONL file back; the schema is one flat object per line
// with "tuner" and "seconds" fields (docs/OBSERVABILITY.md).
LogDigest digest_tuner_log(const std::string& path) {
  LogDigest digest;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::string tuner_key = "\"tuner\":\"";
    const std::size_t t0 = line.find(tuner_key);
    const std::size_t s0 = line.find("\"seconds\":");
    if (t0 == std::string::npos || s0 == std::string::npos) continue;
    const std::size_t t1 = line.find('"', t0 + tuner_key.size());
    const std::string stream = line.substr(t0 + tuner_key.size(),
                                           t1 - t0 - tuner_key.size());
    const double seconds = std::strtod(line.c_str() + s0 + 10, nullptr);
    if (seconds > 0.0) {
      const auto it = digest.min_seconds.find(stream);
      if (it == digest.min_seconds.end() || seconds < it->second) {
        digest.min_seconds[stream] = seconds;
      }
    }
    digest.last_stream = stream;
    ++digest.records;
  }
  return digest;
}

std::string winning_stream(const LogDigest& digest) {
  std::string best;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (const auto& [stream, seconds] : digest.min_seconds) {
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best = stream;
    }
  }
  return best;
}

const std::vector<Algorithm> kAllFiveCandidates = {
    Algorithm::kNodeLevel, Algorithm::kNested, Algorithm::kInPlace,
    Algorithm::kLazy, Algorithm::kBalanced};

TEST(FrameTunerSelection, FastDeformingSceneConvergesToBalanced) {
  // Rebuild-every-frame soup with a light query batch: the objective is
  // dominated by construction, where the left-balanced builder's sampled
  // plane search beats every SAH sweep by ~3x and the lazy builder loses its
  // deferred work to the soup's overlap-heavy expansion.
  namespace fs = std::filesystem;
  const std::size_t kTris = kdtune_ci_small() ? 4000 : 10000;
  const std::size_t kRays = kdtune_ci_small() ? 400 : 1000;
  const std::size_t kFrames = 8;
  const auto anim = soup_animation("deform", kFrames, kTris);
  std::vector<std::vector<Triangle>> frames;
  AABB bounds;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const Scene scene = anim->frame(i);
    frames.emplace_back(scene.triangles().begin(), scene.triangles().end());
    for (const Triangle& t : frames.back()) {
      bounds.expand(t.a);
      bounds.expand(t.b);
      bounds.expand(t.c);
    }
  }
  const std::vector<Ray> rays = rays_toward(bounds, kRays);

  const std::string log_path =
      (fs::path(::testing::TempDir()) / "frame_select_deform.jsonl").string();
  TunerLog log;
  ASSERT_TRUE(log.open(log_path));

  FrameTunerOptions opts;
  opts.algorithms = kAllFiveCandidates;
  opts.frames_per_algorithm = 4;
  opts.query_weight = 1.0;
  FrameTuner tuner(opts);
  tuner.set_log(&log);

  ThreadPool pool(3);
  drive_real_selection(
      tuner, pool,
      [&frames](std::size_t i) -> const std::vector<Triangle>& {
        return frames[i % frames.size()];
      },
      rays);
  log.close();

  ASSERT_TRUE(tuner.selection_done());
  EXPECT_EQ(tuner.best_algorithm(), Algorithm::kBalanced);

  // The decision must be reconstructible from the log alone: the balanced
  // stream holds the globally best objective, every candidate stream is
  // present, and post-selection probes keep landing on the winner.
  const LogDigest digest = digest_tuner_log(log_path);
  EXPECT_EQ(digest.min_seconds.size(), 5u);
  EXPECT_EQ(winning_stream(digest), "frame:balanced");
  EXPECT_EQ(digest.last_stream, "frame:balanced");
  std::remove(log_path.c_str());
}

TEST(FrameTunerSelection, StaticSceneConvergesToSah) {
  // Static structured scene under a query-heavy objective: the tree is
  // rebuilt per frame, but the weighted query batch dominates, so SAH sweep
  // quality wins back the frames the balanced builder saved during
  // construction.
  namespace fs = std::filesystem;
  const float kDetail = kdtune_ci_small() ? 0.2f : 0.3f;
  const std::size_t kRays = kdtune_ci_small() ? 4000 : 8000;
  const Scene scene = make_bunny(kDetail);
  const std::vector<Triangle> tris(scene.triangles().begin(),
                                   scene.triangles().end());
  const std::vector<Ray> rays = rays_toward(scene.bounds(), kRays);

  const std::string log_path =
      (fs::path(::testing::TempDir()) / "frame_select_static.jsonl").string();
  TunerLog log;
  ASSERT_TRUE(log.open(log_path));

  FrameTunerOptions opts;
  opts.algorithms = kAllFiveCandidates;
  opts.frames_per_algorithm = 4;
  opts.query_weight = 20.0;  // static service: queries dwarf the rebuild
  FrameTuner tuner(opts);
  tuner.set_log(&log);

  ThreadPool pool(3);
  drive_real_selection(
      tuner, pool,
      [&tris](std::size_t) -> const std::vector<Triangle>& { return tris; },
      rays);
  log.close();

  ASSERT_TRUE(tuner.selection_done());
  const Algorithm winner = tuner.best_algorithm();
  EXPECT_TRUE(winner == Algorithm::kNodeLevel || winner == Algorithm::kNested ||
              winner == Algorithm::kInPlace)
      << "winner: " << to_string(winner);

  const LogDigest digest = digest_tuner_log(log_path);
  EXPECT_EQ(digest.min_seconds.size(), 5u);
  const std::string best_stream = winning_stream(digest);
  EXPECT_TRUE(best_stream == "frame:node-level" ||
              best_stream == "frame:nested" || best_stream == "frame:in-place")
      << "best stream: " << best_stream;
  EXPECT_EQ(digest.last_stream, "frame:" + std::string(to_string(winner)));
  std::remove(log_path.c_str());
}

double synthetic_cost(const BuildConfig& c) {
  // Smooth bowl with its optimum inside the Table II ranges.
  const double ci = static_cast<double>(c.ci) - 30.0;
  const double cb = static_cast<double>(c.cb) - 4.0;
  const double s = static_cast<double>(c.s) - 8.0;
  return 1e-3 + 1e-6 * (ci * ci + 4.0 * cb * cb + s * s);
}

std::size_t iterations_to_convergence(FrameTuner& tuner) {
  std::size_t iterations = 0;
  while (!tuner.converged() && iterations < 500) {
    const FrameTuner::Trial t = tuner.next_trial();
    tuner.frame_retired(t.probe, synthetic_cost(t.config), 0.0);
    ++iterations;
  }
  return iterations;
}

TEST(FrameTuner, ConfigCacheWarmStartAcrossRuns) {
  // First run: converge cold on a deterministic objective, record the result
  // the way a draining FramePipeline does.
  ThreadPool pool(1);
  ConfigCache cache;
  FrameTuner cold;
  const std::size_t cold_iterations = iterations_to_convergence(cold);
  ASSERT_TRUE(cold.converged());
  cache.store(
      ConfigCache::key_for("anim", std::string(to_string(Algorithm::kInPlace)),
                           pool.concurrency()),
      SceneRegistry::values_of(cold.best_config(), Algorithm::kInPlace),
      cold.best_objective());

  // Second run: warm-started. The very first trial IS the cached best, and
  // the search needs no more iterations than the cold run to converge.
  FrameTuner warm;
  EXPECT_EQ(warm.warm_start(cache, "anim", pool.concurrency()), 1u);
  const FrameTuner::Trial first = warm.next_trial();
  EXPECT_EQ(first.config.ci, cold.best_config().ci);
  EXPECT_EQ(first.config.cb, cold.best_config().cb);
  EXPECT_EQ(first.config.s, cold.best_config().s);
  warm.frame_retired(first.probe, synthetic_cost(first.config), 0.0);

  const std::size_t warm_iterations = 1 + iterations_to_convergence(warm);
  ASSERT_TRUE(warm.converged());
  EXPECT_LE(warm_iterations, cold_iterations);
  // And the warm optimum is at least as good.
  EXPECT_LE(warm.best_objective(), cold.best_objective() + 1e-12);
}

// -------------------------------------------------------------- FramePipeline

std::vector<float> run_and_query(const std::shared_ptr<const AnimatedScene>& anim,
                                 bool overlap, const std::vector<Ray>& rays,
                                 unsigned workers) {
  ThreadPool pool(workers);
  SceneRegistry registry(pool);
  FramePipelineOptions opts;
  opts.overlap = overlap;
  FramePipeline pipeline(anim, registry, opts);

  std::vector<float> hits;
  for (FrameTick tick = pipeline.begin(); tick.published;
       tick = pipeline.advance(0.0)) {
    const auto snap = registry.acquire(anim->name());
    for (const Ray& ray : rays) {
      const Hit hit = snap->tree->closest_hit(ray);
      hits.push_back(hit.valid() ? hit.t : -1.0f);
    }
  }
  return hits;
}

TEST(FramePipeline, OverlappedMatchesSequentialBitExact) {
  const auto anim = soup_animation("parity", 6, 300);
  const std::vector<Ray> rays = probe_rays(64);
  const std::vector<float> sequential = run_and_query(anim, false, rays, 3);
  const std::vector<float> overlapped = run_and_query(anim, true, rays, 3);
  ASSERT_EQ(sequential.size(), 6u * 64u);
  EXPECT_EQ(sequential, overlapped);  // float == : bit-exact hit distances
}

TEST(FramePipeline, ExactlyOncePublicationAndDrain) {
  const std::size_t kFrames = 5;
  const auto anim = soup_animation("exact", kFrames, 200);
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  FramePipeline pipeline(anim, registry, {});

  FrameTick tick = pipeline.begin();
  EXPECT_TRUE(tick.published);
  EXPECT_EQ(tick.frame, 0u);
  EXPECT_EQ(tick.version, 1u);
  std::uint64_t version = tick.version;

  for (std::size_t f = 1; f < kFrames; ++f) {
    tick = pipeline.advance(0.0);
    ASSERT_TRUE(tick.published);
    EXPECT_EQ(tick.frame, f);                 // frames strictly monotone
    EXPECT_EQ(tick.version, version + 1);     // versions advance by exactly 1
    EXPECT_EQ(tick.skipped, 0u);              // unpaced: nothing dropped
    EXPECT_GT(tick.build_seconds, 0.0);
    version = tick.version;
    EXPECT_EQ(registry.acquire("exact")->version, version);
  }

  EXPECT_TRUE(pipeline.done());
  tick = pipeline.advance(0.0);  // drained: nothing further publishes
  EXPECT_FALSE(tick.published);
  EXPECT_EQ(registry.acquire("exact")->version, version);

  const FramePipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_published, kFrames);
  EXPECT_EQ(stats.frames_skipped, 0u);
  EXPECT_GT(stats.total_build_seconds, 0.0);
}

TEST(FramePipeline, LifecycleErrorsAndAccessors) {
  const auto anim = soup_animation("life", 3, 100);
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  EXPECT_THROW(FramePipeline(nullptr, registry, {}), std::invalid_argument);

  FramePipeline pipeline(anim, registry, {});
  EXPECT_THROW(pipeline.advance(0.0), std::logic_error);  // begin() first
  EXPECT_FALSE(pipeline.done());
  pipeline.begin();
  EXPECT_THROW(pipeline.begin(), std::logic_error);  // begin() once
  EXPECT_EQ(pipeline.scene_name(), "life");
  EXPECT_EQ(pipeline.current_frame(), 0u);
  EXPECT_EQ(pipeline.tuner(), nullptr);
  // Destruction with the frame-1 build still in flight must be safe.
}

TEST(FramePipeline, LoopWrapsFrameIndices) {
  const std::size_t kFrames = 3;
  const auto anim = soup_animation("loop", kFrames, 100);
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  FramePipelineOptions opts;
  opts.loop = true;
  FramePipeline pipeline(anim, registry, opts);

  FrameTick tick = pipeline.begin();
  for (std::size_t step = 1; step <= 2 * kFrames + 1; ++step) {
    tick = pipeline.advance(0.0);
    ASSERT_TRUE(tick.published);
    EXPECT_EQ(tick.frame, step % kFrames);
    EXPECT_FALSE(pipeline.done());  // a looping service never drains
  }
}

TEST(FramePipeline, ZeroWorkerPoolStillCompletes) {
  // All "async" work runs via the helping wait on the driver thread.
  const auto anim = soup_animation("zerow", 4, 120);
  const std::vector<Ray> rays = probe_rays(16);
  const std::vector<float> sequential = run_and_query(anim, false, rays, 0);
  const std::vector<float> overlapped = run_and_query(anim, true, rays, 0);
  EXPECT_EQ(sequential, overlapped);
}

TEST(FramePipeline, CarryOverPublishesEveryFrameLate) {
  const std::size_t kFrames = 8;
  const auto anim = soup_animation("carry", kFrames, 600);
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  FramePipelineOptions opts;
  opts.target_frame_seconds = 2e-5;  // builds always overrun the deadline
  opts.lag_policy = LagPolicy::kCarryOver;
  FramePipeline pipeline(anim, registry, opts);

  pipeline.begin();
  std::size_t expected = 1;
  for (FrameTick tick = pipeline.advance(0.0); tick.published;
       tick = pipeline.advance(0.0)) {
    EXPECT_EQ(tick.frame, expected);  // carry-over never drops frames
    EXPECT_EQ(tick.skipped, 0u);
    ++expected;
  }
  EXPECT_EQ(expected, kFrames);
  const FramePipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.frames_published, kFrames);
  EXPECT_EQ(stats.frames_skipped, 0u);
  EXPECT_GT(stats.late_frames, 0u);  // every deadline overran, none dropped
}

TEST(FramePipeline, SkipAheadDropsFramesToKeepSchedule) {
  const std::size_t kFrames = 24;
  const auto anim = soup_animation("skip", kFrames, 600);
  ThreadPool pool(2);
  SceneRegistry registry(pool);
  FramePipelineOptions opts;
  opts.target_frame_seconds = 2e-5;  // builds always overrun the deadline
  opts.lag_policy = LagPolicy::kSkipAhead;
  FramePipeline pipeline(anim, registry, opts);

  std::size_t last_frame = pipeline.begin().frame;
  std::uint64_t version = 1;
  while (true) {
    const FrameTick tick = pipeline.advance(0.0);
    if (!tick.published) break;
    EXPECT_GT(tick.frame, last_frame);        // still strictly monotone
    EXPECT_EQ(tick.version, version + 1);     // every publish is one version
    last_frame = tick.frame;
    version = tick.version;
  }
  EXPECT_EQ(last_frame, kFrames - 1);  // the final frame is always presented
  const FramePipelineStats stats = pipeline.stats();
  EXPECT_GT(stats.frames_skipped, 0u);
  EXPECT_GT(stats.late_frames, 0u);
  EXPECT_GT(stats.max_lag_seconds, 0.0);
  EXPECT_LT(stats.frames_published, kFrames);
}

TEST(FramePipeline, TunerDrivenRunRecordsBestIntoCache) {
  const std::size_t kFrames = kdtune_ci_small() ? 8 : 16;
  const auto anim = soup_animation("tuned", kFrames, 250);
  ThreadPool pool(2);
  ConfigCache cache;
  SceneRegistry registry(pool);
  registry.attach_cache(&cache);

  FrameTuner tuner;
  tuner.warm_start(cache, "tuned", pool.concurrency());  // empty cache: no-op
  FramePipelineOptions opts;
  opts.tuner = &tuner;
  FramePipeline pipeline(anim, registry, opts);

  for (FrameTick tick = pipeline.begin(); tick.published;
       tick = pipeline.advance(1e-4)) {
  }
  // Overlapped operation completes a tuner iteration every other frame.
  EXPECT_GE(tuner.iterations(), kFrames / 2 - 1);
  EXPECT_GT(tuner.best_objective(), 0.0);

  // Draining recorded the best configuration: cache holds it for the next
  // run, and the registry entry now defaults to it.
  const auto entry = cache.lookup(ConfigCache::key_for(
      "tuned", std::string(to_string(tuner.best_algorithm())),
      pool.concurrency(), "compact",
      HardwareDescriptor::detect(pool.concurrency()).suffix()));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->values,
            SceneRegistry::values_of(tuner.best_config(),
                                     tuner.best_algorithm()));

  // Cross-frame warm start: a fresh tuner for a second run opens with the
  // recorded configuration as its first trial.
  FrameTuner second;
  EXPECT_EQ(second.warm_start(cache, "tuned", pool.concurrency()), 1u);
  const FrameTuner::Trial first = second.next_trial();
  EXPECT_EQ(first.config.ci, tuner.best_config().ci);
  EXPECT_EQ(first.config.cb, tuner.best_config().cb);
  EXPECT_EQ(first.config.s, tuner.best_config().s);
}

TEST(FramePipeline, StressQueriesDuringRebuild) {
  // TSan target: readers hammer acquire()+traversal from several threads
  // while the pipeline hot-swaps a new tree every frame.
  const std::size_t kFrames = kdtune_ci_small() ? 6 : 20;
  const auto anim = soup_animation("stress", kFrames, 400);
  ThreadPool pool(3);
  SceneRegistry registry(pool);
  FramePipelineOptions opts;
  FramePipeline pipeline(anim, registry, opts);
  pipeline.begin();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&registry, &stop, &queries, t] {
      Rng rng(500 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = registry.acquire("stress");
        if (!snap) continue;
        const Ray ray({rng.uniform(-12, 12), rng.uniform(-12, 12), -30.0f},
                      {0, 0, 1});
        (void)snap->tree->closest_hit(ray);
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  while (pipeline.advance(0.0).published) {
  }
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(pipeline.stats().frames_published, kFrames);
  EXPECT_EQ(registry.acquire("stress")->version, kFrames);
}

}  // namespace
}  // namespace kdtune
