#include "core/selector.hpp"

#include <gtest/gtest.h>

#include "scene/generators.hpp"

namespace kdtune {
namespace {

SelectorOptions tiny_selector() {
  SelectorOptions opts;
  opts.width = 32;
  opts.height = 24;
  opts.frames_per_algorithm = 6;
  return opts;
}

TEST(AlgorithmSelector, EvaluatesAlgorithmsInSequence) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.06f);
  AlgorithmSelector selector(pool, tiny_selector());

  EXPECT_FALSE(selector.selection_done());
  EXPECT_EQ(selector.current(), Algorithm::kNodeLevel);
  EXPECT_THROW(selector.selected(), std::logic_error);

  std::vector<Algorithm> seen;
  while (!selector.selection_done()) {
    if (seen.empty() || seen.back() != selector.current()) {
      seen.push_back(selector.current());
    }
    selector.render_frame(scene);
  }
  // Every algorithm was visited exactly once: the paper's four in its order,
  // then the left-balanced builder.
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0], Algorithm::kNodeLevel);
  EXPECT_EQ(seen[1], Algorithm::kNested);
  EXPECT_EQ(seen[2], Algorithm::kInPlace);
  EXPECT_EQ(seen[3], Algorithm::kLazy);
  EXPECT_EQ(seen[4], Algorithm::kBalanced);
}

TEST(AlgorithmSelector, PicksTheFastestCandidate) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.06f);
  AlgorithmSelector selector(pool, tiny_selector());
  while (!selector.selection_done()) selector.render_frame(scene);

  const Algorithm winner = selector.selected();
  const auto standings = selector.standings();
  double winner_time = 0.0, best_time = 1e18;
  for (const auto& [algorithm, time] : standings) {
    EXPECT_TRUE(std::isfinite(time)) << to_string(algorithm);
    if (algorithm == winner) winner_time = time;
    best_time = std::min(best_time, time);
  }
  EXPECT_DOUBLE_EQ(winner_time, best_time);
}

TEST(AlgorithmSelector, RoutesFramesToWinnerAfterSelection) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.06f);
  AlgorithmSelector selector(pool, tiny_selector());
  while (!selector.selection_done()) selector.render_frame(scene);

  const Algorithm winner = selector.selected();
  const std::size_t before = selector.pipeline(winner).tuner().iterations();
  selector.render_frame(scene);
  selector.render_frame(scene);
  EXPECT_EQ(selector.pipeline(winner).tuner().iterations(), before + 2);
  EXPECT_EQ(selector.current(), winner);
}

TEST(AlgorithmSelector, StandingsBeforeEvaluationAreInfinite) {
  ThreadPool pool(0);
  AlgorithmSelector selector(pool, tiny_selector());
  for (const auto& [algorithm, time] : selector.standings()) {
    EXPECT_TRUE(std::isinf(time)) << to_string(algorithm);
  }
}

TEST(AlgorithmSelector, PipelineAccessorsWork) {
  ThreadPool pool(0);
  AlgorithmSelector selector(pool, tiny_selector());
  EXPECT_EQ(selector.pipeline(Algorithm::kLazy).algorithm(), Algorithm::kLazy);
  EXPECT_EQ(selector.pipeline(Algorithm::kNested).tuner().parameter_count(), 3u);
}

}  // namespace
}  // namespace kdtune
