#include "core/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "geom/rng.hpp"

namespace kdtune {
namespace {

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LogHistogram, SmallValuesAreExact) {
  // Values 0..3 get identity buckets, so they round-trip exactly.
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(LogHistogram::index_of(v), static_cast<int>(v));
    EXPECT_EQ(LogHistogram::bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(LogHistogram::bucket_upper(static_cast<int>(v)), v);
  }
}

TEST(LogHistogram, BucketGeometryIsMonotoneAndTight) {
  int last = -1;
  for (int shift = 0; shift < 64; ++shift) {
    const std::uint64_t v = std::uint64_t{1} << shift;
    // Bucket index must be non-decreasing in the value and each value must
    // lie inside its bucket's [lower, upper] range.
    for (const std::uint64_t probe : {v, v + v / 4, v + v / 2, 2 * v - 1}) {
      if (probe < v) continue;  // overflow at the top octave
      const int idx = LogHistogram::index_of(probe);
      EXPECT_GE(idx, last);
      EXPECT_LT(idx, LogHistogram::kBucketCount);
      EXPECT_LE(LogHistogram::bucket_lower(idx), probe);
      EXPECT_GE(LogHistogram::bucket_upper(idx), probe);
      last = LogHistogram::index_of(v);
    }
  }
  EXPECT_EQ(LogHistogram::index_of(~std::uint64_t{0}),
            LogHistogram::kBucketCount - 1);
}

TEST(LogHistogram, SubBucketRelativeErrorBounded) {
  // One sub-bucket spans 1/4 of its octave, so interpolated quantiles are
  // within ~25% of the true value. Spot-check the bracket widths.
  for (const std::uint64_t v : {100ull, 5000ull, 123456789ull, 1ull << 40}) {
    const int idx = LogHistogram::index_of(v);
    const double lo = static_cast<double>(LogHistogram::bucket_lower(idx));
    const double hi = static_cast<double>(LogHistogram::bucket_upper(idx));
    EXPECT_LE((hi - lo) / lo, 0.26);
  }
}

TEST(LogHistogram, ExactBoundariesArePinned) {
  // Pin the bucket edges exactly: every bucket's lower bound maps back to
  // its own index, the upper (inclusive) bound too, and adjacent buckets
  // tile the domain with no gap and no overlap.
  EXPECT_EQ(LogHistogram::index_of(0), 0);
  EXPECT_EQ(LogHistogram::index_of(~std::uint64_t{0}),
            LogHistogram::kBucketCount - 1);
  EXPECT_EQ(LogHistogram::bucket_lower(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_upper(LogHistogram::kBucketCount - 1),
            ~std::uint64_t{0});
  for (int i = 0; i < LogHistogram::kBucketCount; ++i) {
    EXPECT_EQ(LogHistogram::index_of(LogHistogram::bucket_lower(i)), i);
    EXPECT_EQ(LogHistogram::index_of(LogHistogram::bucket_upper(i)), i);
    EXPECT_LE(LogHistogram::bucket_lower(i), LogHistogram::bucket_upper(i));
    if (i + 1 < LogHistogram::kBucketCount) {
      EXPECT_EQ(LogHistogram::bucket_upper(i) + 1,
                LogHistogram::bucket_lower(i + 1));
    }
  }
}

TEST(LogHistogram, ZeroOnlyStream) {
  LogHistogram h;
  for (int i = 0; i < 5; ++i) h.record(0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(LogHistogram, TopBucketQuantileDoesNotWrapToMin) {
  // Regression: the top bucket spans [0xE000000000000000, 2^64-1]. Its width
  // (2^61 - 1) rounds *up* to 2^61 in double, so `lo + span * frac` computed
  // through double could exceed UINT64_MAX and wrap to ~0 on the cast,
  // making p99 of a max-heavy stream report the histogram *minimum*.
  LogHistogram h;
  h.record(1);
  for (int i = 0; i < 10; ++i) h.record(~std::uint64_t{0});
  EXPECT_EQ(h.quantile(0.99), ~std::uint64_t{0});
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});
  EXPECT_EQ(h.quantile(0.0), 1u);
}

TEST(LogHistogram, MaxOnlyStreamIsExactEverywhere) {
  LogHistogram h;
  for (int i = 0; i < 3; ++i) h.record(~std::uint64_t{0});
  EXPECT_EQ(h.min(), ~std::uint64_t{0});
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), ~std::uint64_t{0}) << "q=" << q;
  }
}

TEST(LogHistogram, CountMinMaxMean) {
  LogHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, QuantilesOrderedAndClamped) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const std::uint64_t p10 = h.quantile(0.10);
  const std::uint64_t p50 = h.quantile(0.50);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // Log-bucket quantiles carry at most one sub-bucket of relative error.
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 500.0 * 0.26);
  EXPECT_NEAR(static_cast<double>(p99), 990.0, 990.0 * 0.26);
  // Extremes clamp to the observed range.
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(LogHistogram, SingleValueQuantileIsExact) {
  LogHistogram h;
  for (int i = 0; i < 17; ++i) h.record(777);
  // min/max clamping makes every quantile exact for a constant stream.
  EXPECT_EQ(h.quantile(0.5), 777u);
  EXPECT_EQ(h.quantile(0.99), 777u);
}

TEST(LogHistogram, RecordSecondsClampsAndConverts) {
  LogHistogram h;
  h.record_seconds(-1.0);     // clamps to 0
  h.record_seconds(1e-6);     // 1000 ns
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_NEAR(static_cast<double>(h.max()), 1000.0, 1.0);
  // Quantiles carry one sub-bucket of relative error (the exact max is in
  // max(); quantile() answers from bucket geometry).
  EXPECT_NEAR(h.quantile_seconds(1.0), 1e-6, 0.26e-6);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a, b;
  a.record(5);
  a.record(100);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_DOUBLE_EQ(a.mean(), (5.0 + 100.0 + 1000.0) / 3.0);
}

TEST(LogHistogram, MergeQuantilesMatchTheCombinedStream) {
  // merge() must be indistinguishable from having recorded both streams
  // into one histogram: identical counts, extremes, mean, and quantiles at
  // every probe point — not merely "close".
  LogHistogram a, b, combined;
  Rng rng(404);
  for (int i = 0; i < 4000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(1.0f, 1e6f));
    a.record(v);
    combined.record(v);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(1e7f, 1e9f));
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (const double q :
       {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram a, empty;
  a.record(10);
  a.record(1000);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);

  LogHistogram into;
  into.merge(a);  // empty absorbs a fully
  EXPECT_EQ(into.count(), 2u);
  EXPECT_EQ(into.min(), 10u);
  EXPECT_EQ(into.max(), 1000u);
  EXPECT_DOUBLE_EQ(into.mean(), a.mean());
  EXPECT_EQ(into.quantile(0.5), a.quantile(0.5));

  LogHistogram x, y;
  x.merge(y);  // empty + empty stays empty
  EXPECT_EQ(x.count(), 0u);
  EXPECT_EQ(x.quantile(0.5), 0u);
}

TEST(LogHistogram, MergeTopBucketDoesNotWrap) {
  // The top-bucket interpolation hazard (see TopBucketQuantileDoesNotWrapToMin)
  // must survive a merge: max-heavy mass arriving via merge() instead of
  // record() takes the same quantile path.
  LogHistogram a, b;
  a.record(1);
  for (int i = 0; i < 10; ++i) b.record(~std::uint64_t{0});
  a.merge(b);
  EXPECT_EQ(a.count(), 11u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), ~std::uint64_t{0});
  EXPECT_EQ(a.quantile(0.99), ~std::uint64_t{0});
  EXPECT_EQ(a.quantile(1.0), ~std::uint64_t{0});
  EXPECT_EQ(a.quantile(0.0), 1u);
}

TEST(LogHistogram, MergeIsCommutativeOnQuantiles) {
  LogHistogram ab, ba, a1, b1;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a1.record(v);
    ab.record(v);
  }
  for (std::uint64_t v = 10000; v <= 10500; ++v) {
    b1.record(v);
    ba.record(v);
  }
  ab.merge(b1);  // a then b
  ba.merge(a1);  // b then a
  EXPECT_EQ(ab.count(), ba.count());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.record(7);  // usable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7u);
}

TEST(LogHistogram, ToJsonContainsFields) {
  LogHistogram h;
  h.record(1000);
  const std::string json = h.to_json(1e-3);  // ns -> us scaling
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(LogHistogram, ConcurrentRecordLosesNothing) {
  LogHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace kdtune
