#include "scene/obj_loader.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace kdtune {
namespace {

TEST(ObjLoader, ParsesVerticesAndTriangles) {
  std::istringstream in(
      "v 0 0 0\n"
      "v 1 0 0\n"
      "v 0 1 0\n"
      "f 1 2 3\n");
  const Mesh m = load_obj(in);
  EXPECT_EQ(m.vertex_count(), 3u);
  EXPECT_EQ(m.triangle_count(), 1u);
  EXPECT_FLOAT_EQ(m.triangle(0).b.x, 1.0f);
}

TEST(ObjLoader, FanTriangulatesPolygons) {
  std::istringstream in(
      "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nv -1 0.5 0\n"
      "f 1 2 3 4 5\n");
  const Mesh m = load_obj(in);
  EXPECT_EQ(m.triangle_count(), 3u);  // pentagon -> 3 triangles
}

TEST(ObjLoader, HandlesSlashForms) {
  std::istringstream in(
      "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
      "vt 0 0\nvn 0 0 1\n"
      "f 1/1 2/1/1 3//1\n");
  const Mesh m = load_obj(in);
  EXPECT_EQ(m.triangle_count(), 1u);
}

TEST(ObjLoader, NegativeIndicesAreRelative) {
  std::istringstream in(
      "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
      "f -3 -2 -1\n");
  const Mesh m = load_obj(in);
  ASSERT_EQ(m.triangle_count(), 1u);
  EXPECT_FLOAT_EQ(m.triangle(0).c.y, 1.0f);
}

TEST(ObjLoader, IgnoresCommentsAndUnknownTags) {
  std::istringstream in(
      "# a comment\n"
      "mtllib scene.mtl\n"
      "o object\n"
      "v 0 0 0 # trailing comment\n"
      "v 1 0 0\nv 0 1 0\n"
      "s off\n"
      "f 1 2 3\n");
  const Mesh m = load_obj(in);
  EXPECT_EQ(m.triangle_count(), 1u);
}

TEST(ObjLoader, RejectsMalformedInput) {
  {
    std::istringstream in("v 1 2\n");  // missing coordinate
    EXPECT_THROW(load_obj(in), std::runtime_error);
  }
  {
    std::istringstream in("v 0 0 0\nf 1 2 3\n");  // indices out of range
    EXPECT_THROW(load_obj(in), std::runtime_error);
  }
  {
    std::istringstream in("v 0 0 0\nv 1 0 0\nf 1 2\n");  // 2-gon
    EXPECT_THROW(load_obj(in), std::runtime_error);
  }
  {
    std::istringstream in("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 x 3\n");
    EXPECT_THROW(load_obj(in), std::runtime_error);
  }
  {
    std::istringstream in("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n");  // 0 invalid
    EXPECT_THROW(load_obj(in), std::runtime_error);
  }
}

TEST(ObjLoader, ErrorMentionsLineNumber) {
  std::istringstream in("v 0 0 0\nv 1 2\n");
  try {
    load_obj(in);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ObjLoader, RoundTripThroughSave) {
  Mesh m;
  m.add_vertex({0, 0, 0});
  m.add_vertex({1, 0, 0});
  m.add_vertex({0, 1, 0});
  m.add_vertex({0, 0, 1});
  m.add_triangle(0, 1, 2);
  m.add_triangle(0, 2, 3);

  std::stringstream buffer;
  save_obj(buffer, m);
  const Mesh loaded = load_obj(buffer);
  ASSERT_EQ(loaded.vertex_count(), m.vertex_count());
  ASSERT_EQ(loaded.triangle_count(), m.triangle_count());
  for (std::size_t i = 0; i < m.triangle_count(); ++i) {
    EXPECT_EQ(loaded.triangle(i).a, m.triangle(i).a);
    EXPECT_EQ(loaded.triangle(i).b, m.triangle(i).b);
    EXPECT_EQ(loaded.triangle(i).c, m.triangle(i).c);
  }
}

TEST(ObjLoader, MissingFileThrows) {
  EXPECT_THROW(load_obj_file("/nonexistent/path/model.obj"), std::runtime_error);
}

}  // namespace
}  // namespace kdtune
