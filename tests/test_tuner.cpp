#include "tuning/tuner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace kdtune {
namespace {

TEST(Tuner, RegisterAfterStartThrows) {
  std::int64_t a = 0, b = 0;
  Tuner tuner;
  tuner.register_parameter(&a, 0, 10);
  tuner.apply_next();
  EXPECT_THROW(tuner.register_parameter(&b, 0, 10), std::logic_error);
}

TEST(Tuner, NoParametersThrows) {
  Tuner tuner;
  EXPECT_THROW(tuner.start(), std::logic_error);
}

TEST(Tuner, StartStopProtocolEnforced) {
  std::int64_t a = 0;
  Tuner tuner;
  tuner.register_parameter(&a, 0, 10);
  EXPECT_THROW(tuner.stop(), std::logic_error);
  tuner.start();
  EXPECT_THROW(tuner.start(), std::logic_error);
  tuner.stop();
  // stop() already applied the *next* configuration, so a manual record()
  // is legal here; a fresh tuner without any application must throw.
  EXPECT_NO_THROW(tuner.record(1.0));
  std::int64_t b = 0;
  Tuner fresh;
  fresh.register_parameter(&b, 0, 10);
  EXPECT_THROW(fresh.record(1.0), std::logic_error);
}

TEST(Tuner, AppliesProposalsIntoRegisteredVariable) {
  std::int64_t a = -100;
  Tuner tuner;
  tuner.register_parameter(&a, 5, 15);
  tuner.apply_next();
  EXPECT_GE(a, 5);
  EXPECT_LE(a, 15);
}

TEST(Tuner, ConvergesOnSyntheticCostAndFindsMinimum) {
  std::int64_t x = 0;
  Tuner tuner;
  tuner.register_parameter(&x, 0, 100, 1, "x");

  for (int i = 0; i < 300 && !tuner.converged(); ++i) {
    tuner.apply_next();
    const double cost =
        1.0 + 0.01 * (static_cast<double>(x) - 62) * (static_cast<double>(x) - 62);
    tuner.record(cost);
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_NEAR(static_cast<double>(tuner.best_values()[0]), 62.0, 10.0);
  EXPECT_GT(tuner.iterations(), 5u);
}

TEST(Tuner, MultiParameterValuesRespectGrids) {
  std::int64_t ci = 0, r = 0;
  Tuner tuner;
  tuner.register_parameter(&ci, 3, 101, 1, "CI");
  tuner.register_parameter_pow2(&r, 16, 8192, "R");
  EXPECT_EQ(tuner.parameter_count(), 2u);

  for (int i = 0; i < 50; ++i) {
    tuner.apply_next();
    EXPECT_GE(ci, 3);
    EXPECT_LE(ci, 101);
    // R must always be a power of two within range.
    EXPECT_GE(r, 16);
    EXPECT_LE(r, 8192);
    EXPECT_EQ(r & (r - 1), 0);
    tuner.record(1.0 + std::abs(static_cast<double>(ci) - 20.0));
  }
}

TEST(Tuner, HistoryRecordsEverything) {
  std::int64_t a = 0;
  Tuner tuner;
  tuner.register_parameter(&a, 0, 9);
  for (int i = 0; i < 10; ++i) {
    tuner.apply_next();
    tuner.record(static_cast<double>(i + 1));
  }
  ASSERT_EQ(tuner.history().size(), 10u);
  EXPECT_DOUBLE_EQ(tuner.history()[3].seconds, 4.0);
  EXPECT_EQ(tuner.history()[3].values.size(), 1u);
}

TEST(Tuner, HistoryCanBeDisabled) {
  std::int64_t a = 0;
  TunerOptions opts;
  opts.keep_history = false;
  Tuner tuner(nullptr, opts);
  tuner.register_parameter(&a, 0, 9);
  for (int i = 0; i < 5; ++i) {
    tuner.apply_next();
    tuner.record(1.0);
  }
  EXPECT_TRUE(tuner.history().empty());
  EXPECT_EQ(tuner.iterations(), 5u);
}

TEST(Tuner, DriftTriggersRetune) {
  std::int64_t a = 0;
  TunerOptions opts;
  opts.drift_threshold = 0.5;
  opts.drift_window = 4;
  Tuner tuner(nullptr, opts);
  tuner.register_parameter(&a, 0, 20);

  // Phase 1: stable landscape, let the search converge.
  int guard = 0;
  while (!tuner.converged() && guard++ < 300) {
    tuner.apply_next();
    tuner.record(1.0 + 0.05 * std::abs(static_cast<double>(a) - 10.0));
  }
  ASSERT_TRUE(tuner.converged());
  EXPECT_EQ(tuner.retune_count(), 0u);

  // Phase 2: the world changes — everything is 4x slower. After a window of
  // slow measurements the tuner must re-open the search.
  for (int i = 0; i < 10 && tuner.retune_count() == 0; ++i) {
    tuner.apply_next();
    tuner.record(4.0 + 0.05 * std::abs(static_cast<double>(a) - 10.0));
  }
  EXPECT_EQ(tuner.retune_count(), 1u);
  EXPECT_FALSE(tuner.converged());
}

TEST(Tuner, NoRetuneWhenDriftDisabled) {
  std::int64_t a = 0;
  TunerOptions opts;
  opts.drift_threshold = 0.0;  // disabled
  Tuner tuner(nullptr, opts);
  tuner.register_parameter(&a, 0, 20);
  int guard = 0;
  while (!tuner.converged() && guard++ < 300) {
    tuner.apply_next();
    tuner.record(1.0);
  }
  for (int i = 0; i < 20; ++i) {
    tuner.apply_next();
    tuner.record(100.0);
  }
  EXPECT_EQ(tuner.retune_count(), 0u);
}

TEST(Tuner, CustomStrategyIsUsed) {
  std::int64_t a = 0;
  Tuner tuner(make_fixed_search({7}));
  tuner.register_parameter(&a, 0, 20);
  for (int i = 0; i < 3; ++i) {
    tuner.apply_next();
    EXPECT_EQ(a, 7);
    tuner.record(1.0);
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_EQ(tuner.best_values()[0], 7);
}

TEST(Tuner, BestValuesBeforeAnyMeasurement) {
  std::int64_t a = 4;
  Tuner tuner;
  tuner.register_parameter(&a, 0, 9);
  // Falls back to the current variable values.
  EXPECT_EQ(tuner.best_values()[0], 4);
}

TEST(Tuner, RejectsNonFiniteSamplesAndRemeasures) {
  // A NaN/Inf frame time must never reach the search: NaN is unordered, so
  // it would poison compute_stats' sort in the drift detector and the
  // Nelder-Mead simplex comparisons. The sample is dropped and the *same*
  // configuration stays applied for a re-measure.
  std::int64_t x = 0;
  Tuner tuner;
  tuner.register_parameter(&x, 0, 100, 1, "x");
  tuner.apply_next();
  const std::int64_t proposed = x;

  tuner.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(tuner.rejected_samples(), 1u);
  EXPECT_EQ(tuner.iterations(), 0u);
  EXPECT_EQ(x, proposed) << "rejected sample must keep the config applied";
  EXPECT_TRUE(tuner.history().empty());

  tuner.record(std::numeric_limits<double>::infinity());
  tuner.record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(tuner.rejected_samples(), 3u);
  EXPECT_EQ(tuner.iterations(), 0u);

  // The re-measure of the same configuration is accepted and the search
  // carries on to convergence with a finite optimum.
  tuner.record(0.5);
  EXPECT_EQ(tuner.iterations(), 1u);
  ASSERT_EQ(tuner.history().size(), 1u);
  EXPECT_EQ(tuner.history()[0].values[0], proposed);

  for (int i = 0; i < 300 && !tuner.converged(); ++i) {
    const double cost = 1.0 + 0.01 * static_cast<double>((x - 40) * (x - 40));
    tuner.record(cost);
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_TRUE(std::isfinite(tuner.best_time()));
  EXPECT_EQ(tuner.rejected_samples(), 3u);
}

TEST(Tuner, StartStopMeasuresWallClock) {
  std::int64_t a = 0;
  Tuner tuner;
  tuner.register_parameter(&a, 0, 9);
  tuner.start();
  // Busy-wait a little so elapsed > 0.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  tuner.stop();
  ASSERT_EQ(tuner.history().size(), 1u);
  EXPECT_GT(tuner.history()[0].seconds, 0.0);
}

}  // namespace
}  // namespace kdtune
