#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace kdtune {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v, Vec3(0, 0, 0));
}

TEST(Vec3, BroadcastConstructor) {
  EXPECT_EQ(Vec3(2.5f), Vec3(2.5f, 2.5f, 2.5f));
}

TEST(Vec3, Arithmetic) {
  const Vec3 a(1, 2, 3);
  const Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
  EXPECT_EQ(Vec3(2, 4, 6) / 2.0f, Vec3(1, 2, 3));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_EQ(a * b, Vec3(4, 10, 18));  // componentwise
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v(1, 1, 1);
  v += Vec3(1, 2, 3);
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3(1, 1, 1);
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0f;
  EXPECT_EQ(v, Vec3(3, 6, 9));
  v /= 3.0f;
  EXPECT_EQ(v, Vec3(1, 2, 3));
}

TEST(Vec3, DotAndCross) {
  EXPECT_FLOAT_EQ(dot(Vec3(1, 2, 3), Vec3(4, 5, 6)), 32.0f);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_EQ(cross(Vec3(0, 1, 0), Vec3(1, 0, 0)), Vec3(0, 0, -1));
  // Cross product is perpendicular to both operands.
  const Vec3 a(1.2f, -3.4f, 0.7f), b(0.3f, 2.0f, -1.1f);
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
  EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
}

TEST(Vec3, LengthAndNormalize) {
  EXPECT_FLOAT_EQ(length(Vec3(3, 4, 0)), 5.0f);
  EXPECT_FLOAT_EQ(length_squared(Vec3(3, 4, 0)), 25.0f);
  const Vec3 n = normalized(Vec3(0, 0, 7));
  EXPECT_EQ(n, Vec3(0, 0, 1));
}

TEST(Vec3, NormalizeZeroVectorIsSafe) {
  const Vec3 n = normalized(Vec3(0, 0, 0));
  EXPECT_TRUE(is_finite(n));
  EXPECT_EQ(n, Vec3(0, 0, 0));
}

TEST(Vec3, MinMaxLerp) {
  EXPECT_EQ(min(Vec3(1, 5, 3), Vec3(2, 4, 3)), Vec3(1, 4, 3));
  EXPECT_EQ(max(Vec3(1, 5, 3), Vec3(2, 4, 3)), Vec3(2, 5, 3));
  EXPECT_EQ(lerp(Vec3(0, 0, 0), Vec3(2, 4, 6), 0.5f), Vec3(1, 2, 3));
  EXPECT_EQ(lerp(Vec3(1, 1, 1), Vec3(2, 2, 2), 0.0f), Vec3(1, 1, 1));
  EXPECT_EQ(lerp(Vec3(1, 1, 1), Vec3(2, 2, 2), 1.0f), Vec3(2, 2, 2));
}

TEST(Vec3, IndexingByIntAndAxis) {
  Vec3 v(7, 8, 9);
  EXPECT_FLOAT_EQ(v[0], 7);
  EXPECT_FLOAT_EQ(v[1], 8);
  EXPECT_FLOAT_EQ(v[2], 9);
  EXPECT_FLOAT_EQ(v[Axis::Y], 8);
  v[Axis::Z] = 1.0f;
  EXPECT_FLOAT_EQ(v.z, 1.0f);
}

TEST(Vec3, MaxAxisPicksLargestExtent) {
  EXPECT_EQ(max_axis(Vec3(3, 2, 1)), Axis::X);
  EXPECT_EQ(max_axis(Vec3(1, 3, 2)), Axis::Y);
  EXPECT_EQ(max_axis(Vec3(1, 2, 3)), Axis::Z);
  // Ties go to the earlier axis.
  EXPECT_EQ(max_axis(Vec3(2, 2, 1)), Axis::X);
}

TEST(Vec3, NextAxisCycles) {
  EXPECT_EQ(next_axis(Axis::X), Axis::Y);
  EXPECT_EQ(next_axis(Axis::Y), Axis::Z);
  EXPECT_EQ(next_axis(Axis::Z), Axis::X);
}

TEST(Vec3, IsFiniteDetectsNanAndInf) {
  EXPECT_TRUE(is_finite(Vec3(1, 2, 3)));
  EXPECT_FALSE(is_finite(Vec3(std::nanf(""), 0, 0)));
  EXPECT_FALSE(is_finite(Vec3(0, INFINITY, 0)));
}

}  // namespace
}  // namespace kdtune
