#include "geom/intersect.hpp"

#include <gtest/gtest.h>

#include "geom/rng.hpp"

namespace kdtune {
namespace {

TEST(SlabTest, StraightThroughHit) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  const Ray ray({-1, 0.5f, 0.5f}, {1, 0, 0});
  float t0, t1;
  ASSERT_TRUE(intersect_aabb(ray, box, t0, t1));
  EXPECT_FLOAT_EQ(t0, 1.0f);
  EXPECT_FLOAT_EQ(t1, 2.0f);
}

TEST(SlabTest, MissAbove) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  const Ray ray({-1, 2.0f, 0.5f}, {1, 0, 0});
  EXPECT_FALSE(intersect_aabb(ray, box));
}

TEST(SlabTest, OriginInsideBox) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  const Ray ray({0.5f, 0.5f, 0.5f}, {0, 1, 0});
  float t0, t1;
  ASSERT_TRUE(intersect_aabb(ray, box, t0, t1));
  EXPECT_FLOAT_EQ(t0, ray.t_min);  // clamped to the ray interval
  EXPECT_FLOAT_EQ(t1, 0.5f);
}

TEST(SlabTest, NegativeDirection) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  const Ray ray({2, 0.5f, 0.5f}, {-1, 0, 0});
  float t0, t1;
  ASSERT_TRUE(intersect_aabb(ray, box, t0, t1));
  EXPECT_FLOAT_EQ(t0, 1.0f);
  EXPECT_FLOAT_EQ(t1, 2.0f);
}

TEST(SlabTest, RespectsRayInterval) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  const Ray before({-1, 0.5f, 0.5f}, {1, 0, 0}, 1e-4f, 0.5f);
  EXPECT_FALSE(intersect_aabb(before, box));
  const Ray after({-1, 0.5f, 0.5f}, {1, 0, 0}, 3.0f, 10.0f);
  EXPECT_FALSE(intersect_aabb(after, box));
}

TEST(SlabTest, AxisParallelRayInsideSlab) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  // dir.y == dir.z == 0; origin inside the y and z slabs.
  const Ray ray({-5, 0.5f, 0.5f}, {1, 0, 0});
  EXPECT_TRUE(intersect_aabb(ray, box));
  // Origin outside a parallel slab must miss.
  const Ray outside({-5, 1.5f, 0.5f}, {1, 0, 0});
  EXPECT_FALSE(intersect_aabb(outside, box));
}

TEST(SlabTest, PointsOnRayInsideIntervalAreInBox) {
  Rng rng(1234);
  const AABB box({-1, -1, -1}, {1, 1, 1});
  for (int i = 0; i < 500; ++i) {
    const Vec3 origin{rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
    const Vec3 dir = normalized(
        {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)});
    if (length(dir) == 0.0f) continue;
    const Ray ray(origin, dir);
    float t0, t1;
    if (!intersect_aabb(ray, box, t0, t1)) continue;
    const float mid = 0.5f * (t0 + t1);
    EXPECT_TRUE(box.contains(ray.at(mid), 1e-3f))
        << "t0=" << t0 << " t1=" << t1;
  }
}

TEST(BruteForce, ClosestHitPicksNearest) {
  const std::vector<Triangle> tris{
      {{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}},   // far
      {{-1, -1, 2}, {1, -1, 2}, {0, 1, 2}},   // near
      {{-1, -1, 8}, {1, -1, 8}, {0, 1, 8}},   // farthest
  };
  const Ray ray({0, 0, 0}, {0, 0, 1});
  const Hit hit = brute_force_closest_hit(ray, tris);
  ASSERT_TRUE(hit.valid());
  EXPECT_EQ(hit.triangle, 1u);
  EXPECT_FLOAT_EQ(hit.t, 2.0f);
}

TEST(BruteForce, AnyHitAndMiss) {
  const std::vector<Triangle> tris{{{-1, -1, 5}, {1, -1, 5}, {0, 1, 5}}};
  EXPECT_TRUE(brute_force_any_hit(Ray({0, 0, 0}, {0, 0, 1}), tris));
  EXPECT_FALSE(brute_force_any_hit(Ray({0, 0, 0}, {0, 0, -1}), tris));
  EXPECT_FALSE(brute_force_closest_hit(Ray({0, 0, 0}, {0, 0, -1}), tris).valid());
}

TEST(BruteForce, EmptySceneNeverHits) {
  EXPECT_FALSE(brute_force_closest_hit(Ray({0, 0, 0}, {0, 0, 1}), {}).valid());
  EXPECT_FALSE(brute_force_any_hit(Ray({0, 0, 0}, {0, 0, 1}), {}));
}

TEST(BoundsOf, CoversAllTriangles) {
  const std::vector<Triangle> tris{
      {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}},
      {{-3, 2, 1}, {0, 5, -2}, {1, 1, 1}},
  };
  const AABB box = bounds_of(tris);
  for (const Triangle& t : tris) {
    EXPECT_TRUE(box.contains(t.bounds()));
  }
  EXPECT_TRUE(bounds_of({}).empty());
}

}  // namespace
}  // namespace kdtune
