#include "scene/mesh.hpp"

#include <gtest/gtest.h>

namespace kdtune {
namespace {

Mesh unit_triangle_mesh() {
  Mesh m;
  const auto a = m.add_vertex({0, 0, 0});
  const auto b = m.add_vertex({1, 0, 0});
  const auto c = m.add_vertex({0, 1, 0});
  m.add_triangle(a, b, c);
  return m;
}

TEST(Mesh, StartsEmpty) {
  const Mesh m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.vertex_count(), 0u);
  EXPECT_EQ(m.triangle_count(), 0u);
  EXPECT_TRUE(m.bounds().empty());
}

TEST(Mesh, AddVertexReturnsSequentialIndices) {
  Mesh m;
  EXPECT_EQ(m.add_vertex({0, 0, 0}), 0u);
  EXPECT_EQ(m.add_vertex({1, 1, 1}), 1u);
  EXPECT_EQ(m.vertex_count(), 2u);
}

TEST(Mesh, AddTriangleValidatesIndices) {
  Mesh m = unit_triangle_mesh();
  EXPECT_THROW(m.add_triangle(0, 1, 7), std::out_of_range);
  EXPECT_EQ(m.triangle_count(), 1u);
}

TEST(Mesh, QuadBecomesTwoTriangles) {
  Mesh m;
  const auto a = m.add_vertex({0, 0, 0});
  const auto b = m.add_vertex({1, 0, 0});
  const auto c = m.add_vertex({1, 1, 0});
  const auto d = m.add_vertex({0, 1, 0});
  m.add_quad(a, b, c, d);
  EXPECT_EQ(m.triangle_count(), 2u);
  // The two triangles tile the quad: total area 1.
  EXPECT_NEAR(m.triangle(0).area() + m.triangle(1).area(), 1.0f, 1e-6f);
}

TEST(Mesh, MergeOffsetsIndicesAndTransforms) {
  Mesh a = unit_triangle_mesh();
  const Mesh b = unit_triangle_mesh();
  a.merge(b, Transform::translate({10, 0, 0}));
  EXPECT_EQ(a.vertex_count(), 6u);
  EXPECT_EQ(a.triangle_count(), 2u);
  const Triangle t = a.triangle(1);
  EXPECT_FLOAT_EQ(t.a.x, 10.0f);
  EXPECT_FLOAT_EQ(t.b.x, 11.0f);
}

TEST(Mesh, TransformInPlace) {
  Mesh m = unit_triangle_mesh();
  m.transform(Transform::scale(2.0f));
  EXPECT_EQ(m.bounds(), AABB({0, 0, 0}, {2, 2, 0}));
}

TEST(Mesh, AppendTrianglesFlattens) {
  const Mesh m = unit_triangle_mesh();
  std::vector<Triangle> out;
  m.append_triangles(out);
  m.append_triangles(out, Transform::translate({0, 0, 5}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[1].a.z, 5.0f);
}

TEST(Mesh, RemoveDegenerateTriangles) {
  Mesh m = unit_triangle_mesh();
  const auto a = m.add_vertex({5, 5, 5});
  m.add_triangle(a, a, a);  // degenerate
  EXPECT_EQ(m.triangle_count(), 2u);
  EXPECT_EQ(m.remove_degenerate_triangles(), 1u);
  EXPECT_EQ(m.triangle_count(), 1u);
  EXPECT_FALSE(m.triangle(0).degenerate());
}

TEST(Mesh, BoundsCoverAllVertices) {
  Mesh m;
  m.add_vertex({-1, 2, 3});
  m.add_vertex({4, -5, 6});
  EXPECT_EQ(m.bounds(), AABB({-1, -5, 3}, {4, 2, 6}));
}

}  // namespace
}  // namespace kdtune
