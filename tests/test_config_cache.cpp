#include "tuning/config_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/pipeline.hpp"
#include "scene/generators.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {
namespace {

TEST(ConfigCache, StoreAndLookup) {
  ConfigCache cache;
  EXPECT_TRUE(cache.empty());
  EXPECT_FALSE(cache.lookup("k").has_value());

  EXPECT_TRUE(cache.store("k", {17, 10, 3}, 0.5));
  ASSERT_TRUE(cache.lookup("k").has_value());
  EXPECT_EQ(cache.lookup("k")->values, (std::vector<std::int64_t>{17, 10, 3}));
  EXPECT_DOUBLE_EQ(cache.lookup("k")->seconds, 0.5);
}

TEST(ConfigCache, KeepsTheFasterEntry) {
  ConfigCache cache;
  cache.store("k", {1}, 0.5);
  EXPECT_FALSE(cache.store("k", {2}, 0.7));  // slower: rejected
  EXPECT_EQ(cache.lookup("k")->values[0], 1);
  EXPECT_TRUE(cache.store("k", {3}, 0.3));   // faster: replaces
  EXPECT_EQ(cache.lookup("k")->values[0], 3);
}

TEST(ConfigCache, RoundTripsThroughStream) {
  ConfigCache cache;
  cache.store("sibenik/lazy/threads=8", {40, 20, 5, 128}, 0.0123);
  cache.store("bunny/in-place/threads=4", {17, 10, 3}, 1.5);

  std::stringstream buffer;
  cache.save(buffer);

  ConfigCache loaded;
  loaded.load(buffer);
  EXPECT_EQ(loaded.size(), 2u);
  const auto entry = loaded.lookup("sibenik/lazy/threads=8");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->values, (std::vector<std::int64_t>{40, 20, 5, 128}));
  EXPECT_NEAR(entry->seconds, 0.0123, 1e-9);
}

TEST(ConfigCache, LoadMergesKeepingFaster) {
  ConfigCache cache;
  cache.store("k", {1}, 0.2);
  std::stringstream buffer("k\t0.5\t9\nother\t1.0\t7\n");
  cache.load(buffer);
  EXPECT_EQ(cache.lookup("k")->values[0], 1);  // existing 0.2 is faster
  EXPECT_EQ(cache.lookup("other")->values[0], 7);
}

TEST(ConfigCache, MalformedInputThrows) {
  for (const char* bad : {"justakey\n", "k\tnotanumber\t1\n", "k\t1.0\t\n",
                          "k\t1.0\tx,y\n"}) {
    ConfigCache cache;
    std::stringstream buffer(bad);
    EXPECT_THROW(cache.load(buffer), std::runtime_error) << bad;
  }
}

TEST(ConfigCache, RejectsKeysWithSeparators) {
  ConfigCache cache;
  EXPECT_THROW(cache.store("bad\tkey", {1}, 1.0), std::invalid_argument);
  EXPECT_THROW(cache.store("bad\nkey", {1}, 1.0), std::invalid_argument);
}

TEST(ConfigCache, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/kdtune_cache.txt";
  ConfigCache cache;
  cache.store("k", {4, 2}, 0.25);
  cache.save_file(path);

  ConfigCache loaded;
  loaded.load_file(path);
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());

  ConfigCache empty;
  empty.load_file("/nonexistent/dir/cache.txt");  // no throw: first run
  EXPECT_TRUE(empty.empty());
}

TEST(ConfigCache, SecondsRoundTripBitExact) {
  // save() writes seconds with max_digits10, so values survive a
  // save→load round-trip *bit-exactly* — not merely to EXPECT_NEAR
  // tolerance. The keeps-if-faster merge in store() depends on this:
  // with fewer digits a reloaded entry can appear slower than itself
  // and be replaced by a genuinely slower measurement.
  const double nasty[] = {
      0.1,
      1.0 / 3.0,
      0.1 + 0.2,  // 0.30000000000000004
      std::nextafter(1.0, 2.0),
      1.2345678901234567e-7,
      9.007199254740993e15,  // > 2^53: not exactly representable as written
  };
  ConfigCache cache;
  int i = 0;
  for (const double s : nasty) {
    cache.store("k" + std::to_string(i++), {1}, s);
  }

  std::stringstream buffer;
  cache.save(buffer);
  ConfigCache loaded;
  loaded.load(buffer);

  ASSERT_EQ(loaded.size(), cache.size());
  i = 0;
  for (const double s : nasty) {
    const auto entry = loaded.lookup("k" + std::to_string(i++));
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->seconds, s);  // bit-exact, no tolerance
  }
}

TEST(ConfigCache, SaveLoadSaveIsByteIdentical) {
  ConfigCache cache;
  cache.store("sibenik/lazy/threads=8", {40, 20, 5, 128}, 0.1 + 0.2);
  cache.store("bunny/in-place/threads=4", {17, 10, 3}, 1.0 / 3.0);
  cache.store("city/bfs/threads=16", {3, 1, 2}, 1.2345678901234567e-7);

  std::stringstream first;
  cache.save(first);
  ConfigCache reloaded;
  reloaded.load(first);
  std::stringstream second;
  reloaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ConfigCache, SavePreservesStreamPrecision) {
  // save() raises the stream's precision for itself but must restore it:
  // callers interleaving their own floating-point output with save() would
  // otherwise silently inherit 17-digit formatting.
  std::stringstream buffer;
  buffer.precision(3);
  ConfigCache cache;
  cache.store("k", {1}, 0.1);
  cache.save(buffer);
  EXPECT_EQ(buffer.precision(), 3);
}

TEST(ConfigCache, CorruptFileDegradesToColdStart) {
  const std::string path = ::testing::TempDir() + "/kdtune_corrupt_cache.txt";
  {
    std::ofstream out(path);
    out << "valid\t0.5\t1,2,3\n"
        << "truncated-mid-wri";  // crash mid-write of a non-atomic writer
  }
  ConfigCache cache;
  cache.store("pre-existing", {9}, 0.9);
  EXPECT_NO_THROW(cache.load_file(path));  // warns, does not throw
  // Cold start: nothing from the corrupt file, pre-existing entries intact,
  // no partial merge of the valid prefix.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup("valid").has_value());
  EXPECT_TRUE(cache.lookup("pre-existing").has_value());
  std::remove(path.c_str());
}

TEST(ConfigCache, SaveFileReplacesAtomically) {
  const std::string path = ::testing::TempDir() + "/kdtune_atomic_cache.txt";
  ConfigCache first;
  first.store("old", {1}, 1.0);
  first.save_file(path);

  ConfigCache second;
  second.store("new", {2}, 2.0);
  second.save_file(path);  // replaces via temp + rename

  ConfigCache loaded;
  loaded.load_file(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.lookup("new").has_value());
  EXPECT_FALSE(loaded.lookup("old").has_value());

  // No temp droppings left next to the target.
  namespace fs = std::filesystem;
  for (const auto& entry : fs::directory_iterator(::testing::TempDir())) {
    EXPECT_EQ(entry.path().string().find("kdtune_atomic_cache.txt.tmp"),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(ConfigCache, SaveFileIntoMissingDirectoryThrowsAndCleansUp) {
  ConfigCache cache;
  cache.store("k", {1}, 1.0);
  EXPECT_THROW(cache.save_file("/nonexistent/dir/cache.txt"),
               std::runtime_error);
}

TEST(ConfigCache, KeyForComposesContext) {
  EXPECT_EQ(ConfigCache::key_for("sibenik", "lazy", 8),
            "sibenik/lazy/threads=8");
}

TEST(ConfigCache, CanonicalKeyAddsBackendAndHardware) {
  EXPECT_EQ(ConfigCache::key_for("sibenik", "lazy", 8, "wide8", "8c-avx2-cl64"),
            "sibenik/lazy/threads=8/backend=wide8/hw=8c-avx2-cl64");
}

TEST(ConfigCache, MigratesOldFormatKeysViaCompatLookup) {
  // A cache file written before keys carried backend/hardware components
  // must keep warm-starting: lookup_compat back-reads the legacy key.
  const std::string legacy = ConfigCache::key_for("bunny", "in-place", 4);
  const std::string canonical =
      ConfigCache::key_for("bunny", "in-place", 4, "compact", "8c-avx2-cl64");

  std::stringstream old_file("bunny/in-place/threads=4\t0.25\t21,9,4\n");
  ConfigCache cache;
  cache.load(old_file);

  EXPECT_FALSE(cache.lookup(canonical).has_value());
  const auto migrated = cache.lookup_compat(canonical, legacy);
  ASSERT_TRUE(migrated.has_value());
  EXPECT_EQ(migrated->values, (std::vector<std::int64_t>{21, 9, 4}));

  // Once a canonical entry exists it wins over the legacy one, even when
  // the legacy entry is faster — the contexts are not comparable.
  cache.store(canonical, {50, 1, 1}, 0.9);
  const auto preferred = cache.lookup_compat(canonical, legacy);
  ASSERT_TRUE(preferred.has_value());
  EXPECT_EQ(preferred->values, (std::vector<std::int64_t>{50, 1, 1}));
}

TEST(WarmStart, TunerProposesSeedFirst) {
  std::int64_t ci = 0, cb = 0;
  Tuner tuner;
  tuner.register_parameter(&ci, 3, 101, 1, "CI");
  tuner.register_parameter(&cb, 0, 60, 1, "CB");
  tuner.warm_start({42, 13});
  tuner.apply_next();
  EXPECT_EQ(ci, 42);
  EXPECT_EQ(cb, 13);
}

TEST(WarmStart, WrongValueCountThrows) {
  std::int64_t a = 0;
  Tuner tuner;
  tuner.register_parameter(&a, 0, 10);
  EXPECT_THROW(tuner.warm_start({1, 2}), std::invalid_argument);
}

TEST(WarmStart, OutOfRangeValuesAreClamped) {
  std::int64_t a = 0;
  Tuner tuner;
  tuner.register_parameter(&a, 5, 15);
  tuner.warm_start({1000});
  tuner.apply_next();
  EXPECT_EQ(a, 15);
}

TEST(WarmStart, PipelineSeedsFromBuildConfig) {
  ThreadPool pool(0);
  PipelineOptions popts;
  popts.width = 32;
  popts.height = 24;
  TunedPipeline pipeline(Algorithm::kLazy, pool, std::move(popts));
  BuildConfig cached;
  cached.ci = 55;
  cached.cb = 5;
  cached.s = 2;
  cached.r = 256;
  pipeline.warm_start(cached);

  const Scene scene = make_bunny(0.06f);
  const FrameReport first = pipeline.render_frame(scene);
  EXPECT_EQ(first.config.ci, 55);
  EXPECT_EQ(first.config.cb, 5);
  EXPECT_EQ(first.config.s, 2);
  EXPECT_EQ(first.config.r, 256);
}

TEST(WarmStart, EndToEndCacheRoundTrip) {
  // Tune, cache the result, start a fresh pipeline warm-started from the
  // cache: its first frame runs the cached configuration.
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.06f);
  const std::string key = ConfigCache::key_for(scene.name(), "lazy", 1);

  ConfigCache cache;
  {
    PipelineOptions popts;
    popts.width = 32;
    popts.height = 24;
    TunedPipeline pipeline(Algorithm::kLazy, pool, std::move(popts));
    for (int i = 0; i < 8; ++i) pipeline.render_frame(scene);
    cache.store(key, pipeline.tuner().best_values(),
                pipeline.tuner().best_time());
  }

  const auto entry = cache.lookup(key);
  ASSERT_TRUE(entry.has_value());
  PipelineOptions popts;
  popts.width = 32;
  popts.height = 24;
  TunedPipeline fresh(Algorithm::kLazy, pool, std::move(popts));
  BuildConfig cached;
  cached.ci = entry->values[0];
  cached.cb = entry->values[1];
  cached.s = entry->values[2];
  cached.r = entry->values[3];
  fresh.warm_start(cached);
  const FrameReport first = fresh.render_frame(scene);
  EXPECT_EQ(first.config.ci, cached.ci);
  EXPECT_EQ(first.config.r, cached.r);
}

}  // namespace
}  // namespace kdtune
