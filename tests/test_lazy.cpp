// The lazy construction algorithm (§IV-D): deferral honoring R, on-demand
// expansion correctness, equivalence with eager trees, and thread-safety of
// concurrent expansion.

#include "kdtree/lazy_tree.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

const LazyKdTree& as_lazy(const KdTreeBase& tree) {
  return dynamic_cast<const LazyKdTree&>(tree);
}

TEST(LazyTree, FreshTreeHasDeferredNodes) {
  ThreadPool pool(0);
  const auto tris = random_soup(500, 1);
  BuildConfig config;
  config.r = 64;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  EXPECT_GT(lazy.deferred_remaining(), 0u);
  EXPECT_EQ(lazy.expansions(), 0u);
}

TEST(LazyTree, BuildIsCheaperWithLargerR) {
  // Larger R means less is built eagerly: the fresh tree has fewer nodes.
  ThreadPool pool(0);
  const auto tris = random_soup(2000, 2);
  BuildConfig small_r;
  small_r.r = 16;
  BuildConfig large_r;
  large_r.r = 8192;
  const auto fine =
      make_builder(Algorithm::kLazy)->build(tris, small_r, pool);
  const auto coarse =
      make_builder(Algorithm::kLazy)->build(tris, large_r, pool);
  EXPECT_GT(fine->stats().node_count, coarse->stats().node_count);
}

TEST(LazyTree, RaysExpandOnlyWhatTheyTouch) {
  ThreadPool pool(0);
  const auto tris = random_soup(2000, 3);
  BuildConfig config;
  config.r = 64;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  const std::size_t initially_deferred = lazy.deferred_remaining();

  // A single ray through the middle expands a handful of nodes, not all.
  tree->closest_hit(Ray({-10, 0, 0}, {1, 0, 0}));
  EXPECT_GT(lazy.expansions(), 0u);
  EXPECT_LT(lazy.expansions(), initially_deferred);
  EXPECT_GT(lazy.deferred_remaining(), 0u);
}

TEST(LazyTree, MatchesOracleWhileExpanding) {
  ThreadPool pool(0);
  const auto tris = random_soup(800, 4);
  BuildConfig config;
  config.r = 32;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);

  Rng rng(5);
  const AABB box = bounds_of(tris);
  for (int i = 0; i < 200; ++i) {
    const Vec3 origin = box.center() +
                        normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                        rng.uniform(-1, 1)}) *
                            (length(box.extent()) * 0.8f);
    const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                      rng.uniform(box.lo.y, box.hi.y),
                      rng.uniform(box.lo.z, box.hi.z)};
    const Ray ray(origin, normalized(target - origin));
    const Hit expected = brute_force_closest_hit(ray, tris);
    const Hit got = tree->closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid()) << "ray " << i;
    if (expected.valid()) ASSERT_NEAR(got.t, expected.t, 1e-4f) << "ray " << i;
  }
}

TEST(LazyTree, ExpandAllMatchesEagerStats) {
  // Fully expanded, the lazy tree's leaves cover the same primitives as an
  // eager build; its traversal keeps matching the oracle.
  ThreadPool pool(0);
  const auto tris = random_soup(600, 6);
  BuildConfig config;
  config.r = 128;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  lazy.expand_all();
  EXPECT_EQ(lazy.deferred_remaining(), 0u);
  EXPECT_EQ(lazy.stats().deferred_count, 0u);

  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Ray ray({rng.uniform(-5, 5), rng.uniform(-5, 5), -10.0f}, {0, 0, 1});
    const Hit expected = brute_force_closest_hit(ray, tris);
    const Hit got = tree->closest_hit(ray);
    ASSERT_EQ(got.valid(), expected.valid());
    if (expected.valid()) ASSERT_NEAR(got.t, expected.t, 1e-4f);
  }
}

TEST(LazyTree, ExpansionIsIdempotent) {
  ThreadPool pool(0);
  const auto tris = random_soup(400, 8);
  BuildConfig config;
  config.r = 64;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);

  const Ray ray({-10, 0, 0}, {1, 0, 0});
  tree->closest_hit(ray);
  const std::size_t after_first = lazy.expansions();
  // The same ray again finds everything already expanded.
  tree->closest_hit(ray);
  EXPECT_EQ(lazy.expansions(), after_first);
}

TEST(LazyTree, ConcurrentRaysRaceExpansionSafely) {
  ThreadPool pool(0);  // builders sequential; the *rays* are the threads here
  const auto tris = random_soup(1500, 9);
  BuildConfig config;
  config.r = 32;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);

  // Precompute oracle answers, then hammer the tree from several threads.
  std::vector<Ray> rays;
  std::vector<Hit> expected;
  Rng rng(10);
  const AABB box = bounds_of(tris);
  for (int i = 0; i < 120; ++i) {
    const Vec3 origin = box.center() +
                        normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                        rng.uniform(-1, 1)}) *
                            (length(box.extent()) * 0.8f);
    const Vec3 target = box.center() +
                        Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                             rng.uniform(-1, 1)};
    rays.emplace_back(origin, normalized(target - origin));
    expected.push_back(brute_force_closest_hit(rays.back(), tris));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < rays.size(); i += 2) {  // overlapping work
        const Hit got = tree->closest_hit(rays[i]);
        if (got.valid() != expected[i].valid() ||
            (expected[i].valid() && std::abs(got.t - expected[i].t) > 1e-3f)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(LazyTree, OccludedSceneExpandsFewNodes) {
  // The Fairy-Forest effect: a close-up camera leaves most subtrees
  // unexpanded after rendering the visible part.
  ThreadPool pool(0);
  const Scene scene = make_scene("fairy_forest", 0.3f)->frame(0);
  BuildConfig config;
  config.r = 128;
  const auto tree =
      make_builder(Algorithm::kLazy)->build(scene.triangles(), config, pool);
  const LazyKdTree& lazy = as_lazy(*tree);
  const std::size_t total_deferred = lazy.deferred_remaining();
  ASSERT_GT(total_deferred, 10u);

  // Cast the camera's rays.
  Rng rng(11);
  const CameraPreset cam = scene.camera();
  const Vec3 fwd = normalized(cam.look_at - cam.eye);
  for (int i = 0; i < 500; ++i) {
    const Vec3 jitter{rng.uniform(-0.3f, 0.3f), rng.uniform(-0.3f, 0.3f),
                      rng.uniform(-0.3f, 0.3f)};
    tree->closest_hit(Ray(cam.eye, normalized(fwd + jitter)));
  }
  EXPECT_LT(lazy.expansions(), total_deferred / 2)
      << "close-up camera should leave most of the forest unexpanded";
}

TEST(LazyTree, StatsCountDeferredNodes) {
  ThreadPool pool(0);
  const auto tris = random_soup(1000, 12);
  BuildConfig config;
  config.r = 64;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const TreeStats stats = tree->stats();
  EXPECT_EQ(stats.deferred_count, as_lazy(*tree).deferred_remaining());
  EXPECT_GT(stats.prim_refs, 0u);
}

}  // namespace
}  // namespace kdtune
