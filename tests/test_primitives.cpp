#include "scene/primitives.hpp"

#include <gtest/gtest.h>

namespace kdtune {
namespace {

namespace prim = kdtune::primitives;

// Triangle-count formulas: the generators rely on these to hit the paper's
// exact scene sizes.
TEST(Primitives, BoxHasTwelveTriangles) {
  const Mesh m = prim::box({1, 2, 3});
  EXPECT_EQ(m.triangle_count(), 12u);
  EXPECT_EQ(m.vertex_count(), 8u);
  EXPECT_EQ(m.bounds(), AABB({-0.5f, -1, -1.5f}, {0.5f, 1, 1.5f}));
}

TEST(Primitives, GridTriangleCount) {
  for (int res : {1, 2, 7, 16}) {
    const Mesh m = prim::grid(2.0f, res);
    EXPECT_EQ(m.triangle_count(), static_cast<std::size_t>(2 * res * res));
  }
}

TEST(Primitives, GridLiesInXZPlane) {
  const Mesh m = prim::grid(4.0f, 4);
  const AABB b = m.bounds();
  EXPECT_FLOAT_EQ(b.lo.y, 0.0f);
  EXPECT_FLOAT_EQ(b.hi.y, 0.0f);
  EXPECT_FLOAT_EQ(b.lo.x, -2.0f);
  EXPECT_FLOAT_EQ(b.hi.x, 2.0f);
}

TEST(Primitives, CylinderTriangleCount) {
  // sides: 2 per segment; caps: 1 per segment each.
  EXPECT_EQ(prim::cylinder(1, 2, 8, false).triangle_count(), 16u);
  EXPECT_EQ(prim::cylinder(1, 2, 8, true).triangle_count(), 32u);
}

TEST(Primitives, CylinderBounds) {
  const Mesh m = prim::cylinder(1.0f, 2.0f, 64, true);
  const AABB b = m.bounds();
  EXPECT_NEAR(b.lo.y, 0.0f, 1e-6f);
  EXPECT_NEAR(b.hi.y, 2.0f, 1e-6f);
  EXPECT_NEAR(b.hi.x, 1.0f, 1e-2f);
}

TEST(Primitives, ConeTriangleCount) {
  EXPECT_EQ(prim::cone(1, 2, 10, false).triangle_count(), 10u);
  EXPECT_EQ(prim::cone(1, 2, 10, true).triangle_count(), 20u);
}

TEST(Primitives, IcosphereSubdivisionCounts) {
  EXPECT_EQ(prim::icosphere(0).triangle_count(), 20u);
  EXPECT_EQ(prim::icosphere(1).triangle_count(), 80u);
  EXPECT_EQ(prim::icosphere(2).triangle_count(), 320u);
}

TEST(Primitives, IcosphereVerticesOnUnitSphere) {
  const Mesh m = prim::icosphere(2);
  for (const Vec3& v : m.vertices()) {
    EXPECT_NEAR(length(v), 1.0f, 1e-5f);
  }
}

TEST(Primitives, IcosphereSharesSubdivisionVertices) {
  // Closed subdivision: V = 10 * 4^n + 2.
  EXPECT_EQ(prim::icosphere(1).vertex_count(), 42u);
  EXPECT_EQ(prim::icosphere(2).vertex_count(), 162u);
}

TEST(Primitives, UvSphereTriangleCountFormula) {
  // 2 * segments * (rings - 1)
  EXPECT_EQ(prim::uv_sphere(1, 4, 6).triangle_count(), 36u);
  EXPECT_EQ(prim::uv_sphere(1, 52, 683).triangle_count(), 69666u);  // Bunny!
}

TEST(Primitives, UvSphereRadius) {
  const Mesh m = prim::uv_sphere(2.5f, 8, 12);
  for (const Vec3& v : m.vertices()) {
    EXPECT_NEAR(length(v), 2.5f, 1e-5f);
  }
}

TEST(Primitives, ArchTriangleCount) {
  // 4 quads per angular segment.
  EXPECT_EQ(prim::arch(1.0f, 0.2f, 0.5f, 10).triangle_count(), 80u);
}

TEST(Primitives, ArchSpansHalfCircle) {
  const Mesh m = prim::arch(1.0f, 0.2f, 0.5f, 16);
  const AABB b = m.bounds();
  EXPECT_NEAR(b.lo.x, -1.2f, 1e-5f);
  EXPECT_NEAR(b.hi.x, 1.2f, 1e-5f);
  EXPECT_NEAR(b.hi.y, 1.2f, 1e-5f);
  EXPECT_GE(b.lo.y, -1e-5f);  // nothing below the springing line
}

TEST(Primitives, NoDegenerateTriangles) {
  for (const Mesh& m :
       {prim::box({1, 1, 1}), prim::grid(2, 5), prim::cylinder(1, 2, 12, true),
        prim::cone(1, 2, 12, true), prim::icosphere(2),
        prim::uv_sphere(1, 6, 9), prim::arch(1, 0.3f, 0.6f, 9)}) {
    for (std::size_t i = 0; i < m.triangle_count(); ++i) {
      EXPECT_FALSE(m.triangle(i).degenerate()) << "triangle " << i;
    }
  }
}

}  // namespace
}  // namespace kdtune
