// Range and nearest-neighbor queries — the other two query families the
// paper's introduction names — oracle-checked against brute force on every
// builder's trees.

#include <gtest/gtest.h>

#include <algorithm>

#include "bvh/bvh.hpp"
#include "geom/closest_point.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/lazy_tree.hpp"
#include "kdtree/wide_tree.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> random_soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  return tris;
}

std::vector<std::uint32_t> brute_force_range(std::span<const Triangle> tris,
                                             const AABB& box) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;
    if (box.overlaps(tris[i].bounds()) &&
        !clipped_bounds(tris[i], box).empty()) {
      out.push_back(i);
    }
  }
  return out;
}

// --- closest_point_on_triangle ----------------------------------------------

TEST(ClosestPoint, VertexEdgeFaceRegions) {
  const Triangle tri{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}};
  // Face region: projects straight down.
  EXPECT_EQ(closest_point_on_triangle({0.5f, 0.5f, 3.0f}, tri),
            Vec3(0.5f, 0.5f, 0.0f));
  // Vertex regions.
  EXPECT_EQ(closest_point_on_triangle({-1, -1, 0}, tri), Vec3(0, 0, 0));
  EXPECT_EQ(closest_point_on_triangle({5, -1, 0}, tri), Vec3(2, 0, 0));
  EXPECT_EQ(closest_point_on_triangle({-1, 5, 0}, tri), Vec3(0, 2, 0));
  // Edge AB region.
  EXPECT_EQ(closest_point_on_triangle({1, -2, 0}, tri), Vec3(1, 0, 0));
  // Edge AC region.
  EXPECT_EQ(closest_point_on_triangle({-2, 1, 0}, tri), Vec3(0, 1, 0));
  // Edge BC (hypotenuse) region.
  const Vec3 cp = closest_point_on_triangle({2, 2, 0}, tri);
  EXPECT_NEAR(cp.x, 1.0f, 1e-5f);
  EXPECT_NEAR(cp.y, 1.0f, 1e-5f);
}

TEST(ClosestPoint, ResultIsMinimalBySampling) {
  // Property: no sampled point of the triangle is closer than the result.
  Rng rng(1);
  for (int iter = 0; iter < 100; ++iter) {
    const Triangle tri{
        {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)},
        {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)},
        {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    if (tri.degenerate()) continue;
    const Vec3 p{rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
    const float best = distance_squared(p, tri);
    for (int s = 0; s < 30; ++s) {
      float u = rng.next_float();
      float v = rng.next_float();
      if (u + v > 1.0f) {
        u = 1.0f - u;
        v = 1.0f - v;
      }
      const Vec3 sample = tri.a * (1 - u - v) + tri.b * u + tri.c * v;
      EXPECT_GE(length_squared(p - sample), best - 1e-4f);
    }
  }
}

TEST(ClosestPoint, DistanceToBox) {
  const AABB box({0, 0, 0}, {1, 1, 1});
  EXPECT_FLOAT_EQ(distance_squared(Vec3(0.5f, 0.5f, 0.5f), box), 0.0f);
  EXPECT_FLOAT_EQ(distance_squared(Vec3(2, 0.5f, 0.5f), box), 1.0f);
  EXPECT_FLOAT_EQ(distance_squared(Vec3(2, 2, 0.5f), box), 2.0f);
  EXPECT_FLOAT_EQ(distance_squared(Vec3(-1, -1, -1), box), 3.0f);
  EXPECT_TRUE(std::isinf(distance_squared(Vec3(0, 0, 0), AABB{})));
}

// --- tree queries, parameterized across builders -----------------------------

class TreeQueries : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<KdTreeBase> build(std::span<const Triangle> tris) {
    BuildConfig config;
    config.r = 64;  // ensure the lazy tree actually defers something
    if (std::string(GetParam()) == "sweep") {
      return make_sweep_builder()->build(tris, config, pool_);
    }
    return make_builder(algorithm_from_string(GetParam()))
        ->build(tris, config, pool_);
  }

  ThreadPool pool_{2};
};

TEST_P(TreeQueries, RangeQueryMatchesBruteForce) {
  const auto tris = random_soup(400, 7);
  const auto tree = build(tris);
  Rng rng(8);
  for (int q = 0; q < 40; ++q) {
    AABB box;
    box.expand({rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)});
    box.expand({rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)});
    std::vector<std::uint32_t> got;
    tree->query_range(box, got);
    EXPECT_EQ(got, brute_force_range(tris, box)) << "query " << q;
  }
}

TEST_P(TreeQueries, RangeQueryAppendsAndDedups) {
  const auto tris = random_soup(100, 9);
  const auto tree = build(tris);
  std::vector<std::uint32_t> out{999999};  // pre-existing content survives
  tree->query_range(tree->bounds(), out);
  EXPECT_EQ(out[0], 999999u);
  // Whole-bounds query returns every non-degenerate triangle exactly once.
  std::vector<std::uint32_t> rest(out.begin() + 1, out.end());
  EXPECT_TRUE(std::is_sorted(rest.begin(), rest.end()));
  EXPECT_EQ(std::adjacent_find(rest.begin(), rest.end()), rest.end());
  EXPECT_EQ(rest.size(), tris.size());
}

TEST_P(TreeQueries, NearestMatchesBruteForce) {
  const auto tris = random_soup(300, 10);
  const auto tree = build(tris);
  Rng rng(11);
  for (int q = 0; q < 60; ++q) {
    const Vec3 p{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const NearestResult got = tree->nearest(p);
    ASSERT_TRUE(got.valid());

    float best = std::numeric_limits<float>::infinity();
    for (const Triangle& t : tris) {
      best = std::min(best, distance_squared(p, t));
    }
    EXPECT_NEAR(got.distance_sq, best, 1e-3f) << "query " << q;
    // The reported point lies on the reported triangle at that distance.
    EXPECT_NEAR(length_squared(p - got.point), got.distance_sq, 1e-4f);
  }
}

TEST_P(TreeQueries, EmptyTreeQueries) {
  const auto tree = build({});
  std::vector<std::uint32_t> out;
  tree->query_range(AABB({-1, -1, -1}, {1, 1, 1}), out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(tree->nearest({0, 0, 0}).valid());
  std::vector<NearestResult> knn;
  tree->nearest_k({0, 0, 0}, 3, knn);
  EXPECT_TRUE(knn.empty());
  EXPECT_FALSE(tree->nearest_within({0, 0, 0}, 10.0f).valid());
}

TEST_P(TreeQueries, NearestKMatchesBruteForce) {
  const auto tris = random_soup(300, 21);
  const auto tree = build(tris);
  Rng rng(22);
  for (int q = 0; q < 40; ++q) {
    const Vec3 p{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const std::size_t k = static_cast<std::size_t>(rng.next_int(1, 9));
    const float radius = q % 2 == 0 ? std::numeric_limits<float>::infinity()
                                    : rng.uniform(0.1f, 3.0f);

    // Brute oracle: (distance_sq, id) ascending, radius-filtered, top k.
    std::vector<NearestResult> expected;
    for (std::uint32_t i = 0; i < tris.size(); ++i) {
      if (tris[i].degenerate()) continue;
      const Vec3 cp = closest_point_on_triangle(p, tris[i]);
      const float d = length_squared(p - cp);
      if (d <= radius * radius) expected.push_back({i, cp, d});
    }
    std::sort(expected.begin(), expected.end(),
              [](const NearestResult& a, const NearestResult& b) {
                return a.distance_sq != b.distance_sq
                           ? a.distance_sq < b.distance_sq
                           : a.triangle < b.triangle;
              });
    if (expected.size() > k) expected.resize(k);

    std::vector<NearestResult> got;
    tree->nearest_k(p, k, got, radius);
    ASSERT_EQ(got.size(), expected.size()) << "query " << q << " k=" << k;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].triangle, expected[i].triangle) << "query " << q;
      EXPECT_EQ(got[i].distance_sq, expected[i].distance_sq) << "query " << q;
    }

    // nearest_within == the first k-NN entry under the same radius.
    const NearestResult within = tree->nearest_within(p, radius);
    if (expected.empty()) {
      EXPECT_FALSE(within.valid());
    } else {
      EXPECT_EQ(within.triangle, expected.front().triangle);
      EXPECT_EQ(within.distance_sq, expected.front().distance_sq);
    }
  }
}

TEST_P(TreeQueries, NearestTieBreaksTowardLowestTriangleId) {
  // Several *coincident* triangles: every copy is at the identical distance
  // from any query point, so the winner is purely the tie-break. The bugfix
  // contract: lowest triangle id wins, independent of traversal order.
  const Triangle proto{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}};
  std::vector<Triangle> tris;
  // Spacer geometry first so the coincident block lands mid-array and
  // straddles split planes.
  tris.push_back({{-4, 0, 0}, {-4, 1, 0}, {-4, 0, 1}});
  tris.push_back({{4, 0, 0}, {4, 1, 0}, {4, 0, 1}});
  const std::uint32_t first_copy = static_cast<std::uint32_t>(tris.size());
  for (int i = 0; i < 5; ++i) tris.push_back(proto);
  const auto tree = build(tris);

  const NearestResult got = tree->nearest({1.1f, 0.2f, 0.2f});
  ASSERT_TRUE(got.valid());
  EXPECT_EQ(got.triangle, first_copy);

  // k-NN over the coincident block: ids ascend within the equal-distance run.
  std::vector<NearestResult> knn;
  tree->nearest_k({1.1f, 0.2f, 0.2f}, 5, knn);
  ASSERT_EQ(knn.size(), 5u);
  for (std::size_t i = 0; i < knn.size(); ++i) {
    EXPECT_EQ(knn[i].triangle, first_copy + i);
    EXPECT_EQ(knn[i].distance_sq, knn[0].distance_sq);
  }
}

TEST_P(TreeQueries, DisjointRangeIsEmpty) {
  const auto tris = random_soup(100, 12);
  const auto tree = build(tris);
  std::vector<std::uint32_t> out;
  tree->query_range(AABB({100, 100, 100}, {101, 101, 101}), out);
  EXPECT_TRUE(out.empty());
}

INSTANTIATE_TEST_SUITE_P(Matrix, TreeQueries,
                         ::testing::Values("sweep", "in-place", "lazy"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- point queries across the serving layouts --------------------------------

TEST(LayoutQueries, TieBreakAndKnnAgreeAcrossBackends) {
  // The coincident-triangle scene again, this time through every serving
  // layout: compact, wide4/wide8 (which delegate non-ray queries to their
  // compact source) and the BVH baseline must all pick the lowest id and
  // produce identical k-NN lists.
  const Triangle proto{{1, 0, 0}, {1, 1, 0}, {1, 0, 1}};
  std::vector<Triangle> tris;
  tris.push_back({{-4, 0, 0}, {-4, 1, 0}, {-4, 0, 1}});
  tris.push_back({{4, 0, 0}, {4, 1, 0}, {4, 0, 1}});
  const std::uint32_t first_copy = static_cast<std::uint32_t>(tris.size());
  for (int i = 0; i < 5; ++i) tris.push_back(proto);

  ThreadPool pool(0);
  const auto kd = make_sweep_builder()->build(tris, {}, pool);
  const auto compact = std::make_shared<const CompactKdTree>(
      dynamic_cast<const KdTree&>(*kd));
  const auto wide4 = make_wide_tree(compact, QueryBackend::kWide4);
  const auto wide8 = make_wide_tree(compact, QueryBackend::kWide8);
  const auto bvh = build_bvh(tris, {}, pool);

  const Vec3 p{1.1f, 0.2f, 0.2f};
  const std::vector<const KdTreeBase*> trees{kd.get(), compact.get(),
                                             wide4.get(), wide8.get(),
                                             bvh.get()};
  for (const KdTreeBase* tree : trees) {
    const NearestResult got = tree->nearest(p);
    ASSERT_TRUE(got.valid());
    EXPECT_EQ(got.triangle, first_copy);
    std::vector<NearestResult> knn;
    tree->nearest_k(p, 5, knn);
    ASSERT_EQ(knn.size(), 5u);
    for (std::size_t i = 0; i < knn.size(); ++i) {
      EXPECT_EQ(knn[i].triangle, first_copy + i);
    }
  }
}

TEST(LayoutQueries, DirectlyConstructedEmptyTreeDoesNotCrash) {
  // Regression: query_range()/nearest() used to dereference the root with no
  // empty-node guard. Builders always emit one empty leaf, so the reachable
  // repro is a directly-assembled tree with zero nodes and non-empty bounds.
  const KdTree tree({}, {}, {}, 0, AABB({0, 0, 0}, {1, 1, 1}));
  std::vector<std::uint32_t> out;
  tree.query_range(AABB({-1, -1, -1}, {2, 2, 2}), out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(tree.nearest({0.5f, 0.5f, 0.5f}).valid());
  std::vector<NearestResult> knn;
  tree.nearest_k({0.5f, 0.5f, 0.5f}, 4, knn);
  EXPECT_TRUE(knn.empty());
  EXPECT_FALSE(tree.nearest_within({0.5f, 0.5f, 0.5f}, 5.0f).valid());
}

TEST(LayoutQueries, SinglePointSceneThroughEveryBackend) {
  // One degenerate (point) triangle: every builder and backend skips it, so
  // all query families must return empty results rather than crash.
  const std::vector<Triangle> tris{{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}};
  ThreadPool pool(0);
  const auto kd = make_sweep_builder()->build(tris, {}, pool);
  const auto compact = std::make_shared<const CompactKdTree>(
      dynamic_cast<const KdTree&>(*kd));
  const auto wide4 = make_wide_tree(compact, QueryBackend::kWide4);
  const auto wide8 = make_wide_tree(compact, QueryBackend::kWide8);
  const auto bvh = build_bvh(tris, {}, pool);
  const auto lazy = make_builder(Algorithm::kLazy)->build(tris, {}, pool);

  const std::vector<const KdTreeBase*> trees{
      kd.get(), compact.get(), wide4.get(), wide8.get(), bvh.get(),
      lazy.get()};
  for (const KdTreeBase* tree : trees) {
    std::vector<std::uint32_t> out;
    tree->query_range(AABB({0, 0, 0}, {2, 2, 2}), out);
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(tree->nearest({1, 1, 1}).valid());
    std::vector<NearestResult> knn;
    tree->nearest_k({1, 1, 1}, 2, knn);
    EXPECT_TRUE(knn.empty());
    EXPECT_FALSE(tree->nearest_within({1, 1, 1}, 10.0f).valid());
  }
}

TEST(LazyQueries, RangeQueryExpandsOnlyTouchedRegion) {
  const auto tris = random_soup(2000, 13);
  ThreadPool pool(0);
  BuildConfig config;
  config.r = 32;
  const auto tree = make_builder(Algorithm::kLazy)->build(tris, config, pool);
  const auto& lazy = dynamic_cast<const LazyKdTree&>(*tree);
  const std::size_t deferred = lazy.deferred_remaining();
  ASSERT_GT(deferred, 4u);

  std::vector<std::uint32_t> out;
  tree->query_range(AABB({-0.5f, -0.5f, -0.5f}, {0.5f, 0.5f, 0.5f}), out);
  EXPECT_GT(lazy.expansions(), 0u);
  EXPECT_LT(lazy.expansions(), deferred);
}

}  // namespace
}  // namespace kdtune
