#include "serve/query_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <vector>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "scene/scene.hpp"

namespace kdtune {
namespace {

Scene soup_scene(std::size_t n, std::uint64_t seed) {
  Scene scene("soup");
  Rng rng(seed);
  auto& tris = scene.mutable_triangles();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    tris.push_back({a, a + e1, a + e2});
  }
  return scene;
}

Ray random_ray(Rng& rng) {
  const Vec3 origin{rng.uniform(-25, 25), rng.uniform(-25, 25),
                    rng.uniform(-25, 25)};
  const Vec3 target{rng.uniform(-10, 10), rng.uniform(-10, 10),
                    rng.uniform(-10, 10)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

struct ServiceFixture {
  ThreadPool pool{2};
  ThreadPool single{0};
  SceneRegistry registry{pool};
  Scene scene = soup_scene(300, 11);
  std::unique_ptr<KdTreeBase> reference =
      make_sweep_builder()->build(scene.triangles(), kBaseConfig, single);

  ServiceFixture() { registry.admit("soup", scene); }
};

TEST(QueryService, MixedKindsMatchDirectQueries) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(99);

  std::vector<Ray> single_rays;
  std::vector<std::future<QueryResponse>> closest, any;
  for (int i = 0; i < 64; ++i) {
    single_rays.push_back(random_ray(rng));
    closest.push_back(service.submit_closest_hit("soup", single_rays.back()));
    any.push_back(service.submit_any_hit("soup", single_rays.back()));
  }
  std::vector<Ray> packet;
  for (int i = 0; i < 12; ++i) packet.push_back(random_ray(rng));
  auto pkt = service.submit_packet("soup", packet);

  for (int i = 0; i < 64; ++i) {
    const QueryResponse ch = closest[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(ch.status, QueryStatus::kOk);
    EXPECT_EQ(ch.kind, QueryKind::kClosestHit);
    EXPECT_EQ(ch.scene_version, 1u);
    EXPECT_GT(ch.latency_seconds, 0.0);
    const Hit expect = f.reference->closest_hit(
        single_rays[static_cast<std::size_t>(i)]);
    ASSERT_EQ(ch.hit.valid(), expect.valid());
    if (expect.valid()) {
      EXPECT_EQ(ch.hit.t, expect.t);  // bit-identical
    }

    const QueryResponse ah = any[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(ah.status, QueryStatus::kOk);
    EXPECT_EQ(ah.any, f.reference->any_hit(
                          single_rays[static_cast<std::size_t>(i)]));
  }
  const QueryResponse pr = pkt.get();
  ASSERT_EQ(pr.status, QueryStatus::kOk);
  ASSERT_EQ(pr.hits.size(), packet.size());
  for (std::size_t i = 0; i < packet.size(); ++i) {
    const Hit expect = f.reference->closest_hit(packet[i]);
    ASSERT_EQ(pr.hits[i].valid(), expect.valid());
    if (expect.valid()) {
      EXPECT_EQ(pr.hits[i].t, expect.t);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 129u);
  EXPECT_EQ(stats.completed, 129u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.batches, 0u);
}

TEST(QueryService, UnknownSceneReportsNotFound) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(5);
  const QueryResponse r =
      service.submit_closest_hit("missing", random_ray(rng)).get();
  EXPECT_EQ(r.status, QueryStatus::kSceneNotFound);
  EXPECT_EQ(service.stats().not_found, 1u);
  // A not-found response still counts as a resolved request.
  EXPECT_EQ(service.stats().accepted, 1u);
}

TEST(QueryService, FullQueueRejectsWithoutBlocking) {
  ServiceFixture f;
  ServiceOptions opts;
  opts.max_queue = 8;
  // Park the dispatcher: batches far larger than the queue bound and an
  // hour-long flush timeout mean nothing dispatches until drain().
  opts.params.batch_size = 1 << 20;
  opts.params.flush_timeout_us = 3600ll * 1000 * 1000;
  QueryService service(f.registry, f.pool, opts);
  Rng rng(6);

  std::vector<std::future<QueryResponse>> accepted;
  for (int i = 0; i < 8; ++i) {
    accepted.push_back(service.submit_closest_hit("soup", random_ray(rng)));
  }
  // The queue is full: the next submissions must reject as already-ready
  // futures — submit() never blocks the caller.
  for (int i = 0; i < 3; ++i) {
    auto rejected = service.submit_any_hit("soup", random_ray(rng));
    ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(rejected.get().status, QueryStatus::kRejectedOverflow);
  }
  EXPECT_EQ(service.stats().rejected, 3u);

  // drain() flushes the parked batch; all accepted requests complete.
  service.drain();
  for (auto& fut : accepted) {
    EXPECT_EQ(fut.get().status, QueryStatus::kOk);
  }
  EXPECT_EQ(service.stats().completed, 8u);
}

TEST(QueryService, ExpiredDeadlineTimesOutInsteadOfRunning) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(7);
  const auto past = QueryService::Clock::now() - std::chrono::milliseconds(1);
  const QueryResponse r =
      service.submit_closest_hit("soup", random_ray(rng), past).get();
  EXPECT_EQ(r.status, QueryStatus::kTimedOut);
  EXPECT_FALSE(r.hit.valid());
  EXPECT_EQ(service.stats().timed_out, 1u);

  // A generous deadline completes normally.
  const auto future_deadline =
      QueryService::Clock::now() + std::chrono::seconds(60);
  EXPECT_EQ(
      service.submit_closest_hit("soup", random_ray(rng), future_deadline)
          .get()
          .status,
      QueryStatus::kOk);
}

TEST(QueryService, DrainCompletesAllAcceptedWork) {
  ServiceFixture f;
  ServiceOptions opts;
  opts.params.batch_size = 4;
  QueryService service(f.registry, f.pool, opts);
  Rng rng(8);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(service.submit_closest_hit("soup", random_ray(rng)));
  }
  service.drain();
  // After drain every accepted future is ready — no .get() waits.
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(fut.get().status, QueryStatus::kOk);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 100u);
  EXPECT_EQ(stats.completed, 100u);
}

TEST(QueryService, ShutdownRejectsNewSubmissionsAndIsIdempotent) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(9);
  auto before = service.submit_closest_hit("soup", random_ray(rng));
  EXPECT_TRUE(service.accepting());
  service.shutdown();
  EXPECT_FALSE(service.accepting());
  // Work accepted before shutdown still completed (shutdown drains).
  EXPECT_EQ(before.get().status, QueryStatus::kOk);

  auto after = service.submit_closest_hit("soup", random_ray(rng));
  ASSERT_EQ(after.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(after.get().status, QueryStatus::kShutdown);
  service.shutdown();  // idempotent
}

TEST(QueryService, ZeroWorkerPoolRunsBatchesInline) {
  ThreadPool pool(0);
  SceneRegistry registry(pool);
  registry.admit("soup", soup_scene(150, 12));
  QueryService service(registry, pool);
  Rng rng(10);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(service.submit_closest_hit("soup", random_ray(rng)));
  }
  for (auto& fut : futures) {
    EXPECT_EQ(fut.get().status, QueryStatus::kOk);
  }
  EXPECT_EQ(service.stats().completed, 40u);
}

TEST(QueryService, ServingParamsApplyAndClamp) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  ServingParams p;
  p.batch_size = 64;
  p.flush_timeout_us = 500;
  p.max_inflight_batches = 2;
  service.set_serving_params(p);
  const ServingParams got = service.serving_params();
  EXPECT_EQ(got.batch_size, 64);
  EXPECT_EQ(got.flush_timeout_us, 500);
  EXPECT_EQ(got.max_inflight_batches, 2);

  // Degenerate values clamp rather than wedge the dispatcher.
  ServingParams bad;
  bad.batch_size = -5;
  bad.flush_timeout_us = -1;
  bad.max_inflight_batches = -3;
  service.set_serving_params(bad);
  const ServingParams clamped = service.serving_params();
  EXPECT_GE(clamped.batch_size, 1);
  EXPECT_GE(clamped.flush_timeout_us, 0);
  EXPECT_GE(clamped.max_inflight_batches, 0);

  // Service still works under the clamped parameters.
  Rng rng(13);
  EXPECT_EQ(service.submit_closest_hit("soup", random_ray(rng)).get().status,
            QueryStatus::kOk);
}

TEST(QueryService, StatsJsonIsWellFormedEnough) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(14);
  service.submit_closest_hit("soup", random_ray(rng)).get();
  const std::string json = service.stats_json();
  EXPECT_NE(json.find("\"accepted\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"closest_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"swaps\""), std::string::npos);
}

TEST(QueryService, ResponsesCarryTheServingSnapshotVersion) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(15);
  EXPECT_EQ(service.submit_closest_hit("soup", random_ray(rng))
                .get()
                .scene_version,
            1u);
  f.registry.rebuild("soup");
  service.drain();
  EXPECT_EQ(service.submit_closest_hit("soup", random_ray(rng))
                .get()
                .scene_version,
            2u);
}

TEST(QueryService, RangeKnnAndClosestPointMatchDirectQueries) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  Rng rng(21);
  const AABB bounds = f.scene.bounds();

  std::vector<AABB> boxes;
  std::vector<std::future<QueryResponse>> range_futs;
  for (int i = 0; i < 16; ++i) {
    const Vec3 c{rng.uniform(bounds.lo.x, bounds.hi.x),
                 rng.uniform(bounds.lo.y, bounds.hi.y),
                 rng.uniform(bounds.lo.z, bounds.hi.z)};
    const Vec3 half{rng.uniform(0.5f, 3.0f), rng.uniform(0.5f, 3.0f),
                    rng.uniform(0.5f, 3.0f)};
    boxes.push_back({c - half, c + half});
    range_futs.push_back(service.submit_range("soup", boxes.back()));
  }

  std::vector<Vec3> points;
  std::vector<std::uint32_t> ks;
  std::vector<float> radii;
  std::vector<std::future<QueryResponse>> knn_futs, cp_futs;
  for (int i = 0; i < 16; ++i) {
    points.push_back({rng.uniform(-12, 12), rng.uniform(-12, 12),
                      rng.uniform(-12, 12)});
    ks.push_back(1u + static_cast<std::uint32_t>(i % 5));
    radii.push_back(i % 2 == 0 ? std::numeric_limits<float>::infinity()
                               : rng.uniform(1.0f, 8.0f));
    knn_futs.push_back(
        service.submit_nearest("soup", points.back(), ks.back(), radii.back()));
    cp_futs.push_back(
        service.submit_closest_point("soup", points.back(), 6.0f));
  }

  for (std::size_t i = 0; i < boxes.size(); ++i) {
    const QueryResponse r = range_futs[i].get();
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(r.kind, QueryKind::kRange);
    std::vector<std::uint32_t> expect;
    f.reference->query_range(boxes[i], expect);
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    EXPECT_EQ(r.range_ids, expect);  // service canonicalizes: sorted + unique
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const QueryResponse kn = knn_futs[i].get();
    ASSERT_EQ(kn.status, QueryStatus::kOk);
    EXPECT_EQ(kn.kind, QueryKind::kNearest);
    std::vector<NearestResult> expect;
    f.reference->nearest_k(points[i], ks[i], expect, radii[i]);
    ASSERT_EQ(kn.neighbors.size(), expect.size());
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(kn.neighbors[j].triangle, expect[j].triangle);
      EXPECT_EQ(kn.neighbors[j].distance_sq, expect[j].distance_sq);
    }

    const QueryResponse cp = cp_futs[i].get();
    ASSERT_EQ(cp.status, QueryStatus::kOk);
    EXPECT_EQ(cp.kind, QueryKind::kClosestPoint);
    const NearestResult expect_cp = f.reference->nearest_within(points[i], 6.0f);
    ASSERT_EQ(cp.nearest.valid(), expect_cp.valid());
    if (expect_cp.valid()) {
      EXPECT_EQ(cp.nearest.triangle, expect_cp.triangle);
      EXPECT_EQ(cp.nearest.distance_sq, expect_cp.distance_sq);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 48u);
  for (const QueryKind kind :
       {QueryKind::kRange, QueryKind::kNearest, QueryKind::kClosestPoint}) {
    const EndpointStats& ep = stats.endpoints[static_cast<std::size_t>(kind)];
    EXPECT_EQ(ep.accepted, 16u);
    EXPECT_EQ(ep.completed, 16u);
    EXPECT_GT(ep.batches, 0u);
  }
}

TEST(QueryService, FamilyParamsApplyClampAndInherit) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);

  ServingParams p;
  p.batch_size = 32;
  p.flush_timeout_us = 200;
  p.family[static_cast<std::size_t>(QueryKind::kRange)] = {4, 50};
  service.set_serving_params(p);
  const ServingParams got = service.serving_params();
  EXPECT_EQ(got.effective_batch(QueryKind::kRange), 4);
  EXPECT_EQ(got.effective_flush_us(QueryKind::kRange), 50);
  // Families without overrides inherit the global knobs.
  EXPECT_EQ(got.effective_batch(QueryKind::kNearest), 32);
  EXPECT_EQ(got.effective_flush_us(QueryKind::kClosestPoint), 200);

  // Degenerate family values clamp onto the inherit sentinels.
  ServingParams bad;
  bad.family[static_cast<std::size_t>(QueryKind::kNearest)] = {-7, -9};
  service.set_serving_params(bad);
  const ServingParams clamped = service.serving_params();
  const FamilyParams& fam =
      clamped.family[static_cast<std::size_t>(QueryKind::kNearest)];
  EXPECT_EQ(fam.batch_size, 0);
  EXPECT_EQ(fam.flush_timeout_us, -1);

  // Service still answers every family under clamped per-family knobs.
  Rng rng(31);
  EXPECT_EQ(service.submit_range("soup", {{-1, -1, -1}, {1, 1, 1}})
                .get()
                .status,
            QueryStatus::kOk);
  EXPECT_EQ(service.submit_nearest("soup", {0, 0, 0}, 3).get().status,
            QueryStatus::kOk);
  EXPECT_EQ(service.submit_closest_point("soup", {0, 0, 0}, 5.0f).get().status,
            QueryStatus::kOk);
}

TEST(QueryService, StatsJsonCoversEveryQueryFamily) {
  ServiceFixture f;
  QueryService service(f.registry, f.pool);
  service.submit_range("soup", {{-2, -2, -2}, {2, 2, 2}}).get();
  service.submit_nearest("soup", {1, 1, 1}, 2).get();
  service.submit_closest_point("soup", {0, 0, 0}, 4.0f).get();
  const std::string json = service.stats_json();
  EXPECT_NE(json.find("\"range\""), std::string::npos);
  EXPECT_NE(json.find("\"nearest\""), std::string::npos);
  EXPECT_NE(json.find("\"closest_point\""), std::string::npos);
  EXPECT_NE(json.find("\"batches\""), std::string::npos);
}

TEST(QueryService, RejectBreakdownByReason) {
  // Rejections must land in the per-reason counter matching their status,
  // and `rejected` must stay their sum — the aggregate older dashboards key
  // on. Overflow first: a huge batch with a far-future flush timeout parks
  // one request in the queue, so a max_queue of 1 bounces everything after
  // it deterministically...
  ServiceFixture f;
  ServiceOptions opts;
  opts.max_queue = 1;
  opts.params.batch_size = 64;
  opts.params.flush_timeout_us = 10'000'000;
  QueryService service(f.registry, f.pool, opts);
  Rng rng(71);
  auto held = service.submit_closest_hit("soup", random_ray(rng));
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(service.submit_closest_hit("soup", random_ray(rng)).get().status,
              QueryStatus::kRejectedOverflow);
  }
  // ...then shutdown rejects, which must not be misfiled as overflow. The
  // shutdown force-flush completes the parked request normally.
  service.shutdown();
  EXPECT_EQ(held.get().status, QueryStatus::kOk);
  EXPECT_EQ(service.submit_any_hit("soup", random_ray(rng)).get().status,
            QueryStatus::kShutdown);

  const ServiceStats s = service.stats();
  EXPECT_EQ(s.rejected_overflow, 2u);
  EXPECT_EQ(s.rejected_shutdown, 1u);
  EXPECT_EQ(s.rejected_quota, 0u);  // quota lives in the router QoS layer
  EXPECT_EQ(s.rejected,
            s.rejected_overflow + s.rejected_shutdown + s.rejected_quota);
  const EndpointStats& ch =
      s.endpoints[static_cast<std::size_t>(QueryKind::kClosestHit)];
  EXPECT_EQ(ch.rejected_overflow, 2u);
  EXPECT_EQ(ch.rejected_shutdown, 0u);
  const EndpointStats& ah =
      s.endpoints[static_cast<std::size_t>(QueryKind::kAnyHit)];
  EXPECT_EQ(ah.rejected_shutdown, 1u);
  EXPECT_EQ(ah.rejected_overflow, 0u);
}

TEST(QueryService, StatsJsonCarriesTheRejectBreakdown) {
  // Schema regression: the top level and every endpoint object must expose
  // all three reject reasons, with the counts we just provoked.
  ServiceFixture f;
  ServiceOptions opts;
  opts.max_queue = 1;
  opts.params.batch_size = 64;
  opts.params.flush_timeout_us = 10'000'000;
  QueryService service(f.registry, f.pool, opts);
  Rng rng(72);
  auto held = service.submit_closest_hit("soup", random_ray(rng));
  service.submit_closest_hit("soup", random_ray(rng)).get();
  service.submit_closest_hit("soup", random_ray(rng)).get();
  service.shutdown();  // flushes the parked request
  held.get();
  const std::string json = service.stats_json();
  EXPECT_NE(json.find("\"rejected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_overflow\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_shutdown\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"rejected_quota\": 0"), std::string::npos);
  // Endpoint objects carry the same keys (flat, one line per family).
  const std::size_t ep = json.find("\"closest_hit\"");
  ASSERT_NE(ep, std::string::npos);
  const std::size_t eol = json.find('\n', ep);
  const std::string line = json.substr(ep, eol - ep);
  EXPECT_NE(line.find("\"rejected_overflow\": 2"), std::string::npos);
  EXPECT_NE(line.find("\"rejected_shutdown\": 0"), std::string::npos);
  EXPECT_NE(line.find("\"rejected_quota\": 0"), std::string::npos);
}

}  // namespace
}  // namespace kdtune
