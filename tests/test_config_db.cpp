#include "dse/config_db.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace kdtune {
namespace {

HardwareDescriptor test_hw() {
  HardwareDescriptor hw;
  hw.threads = 4;
  hw.cores = 8;
  hw.simd = SimdLevel::kAvx2;
  hw.cache_line = 64;
  return hw;
}

SceneFeatures test_features(double fill) {
  SceneFeatures f;
  f.prim_count = 1000;
  for (std::size_t i = 0; i < kSceneFeatureCount; ++i) {
    f.v[i] = fill + 0.01 * static_cast<double>(i);
  }
  return f;
}

ConfigDatabase::Entry test_entry(double seconds = 0.5) {
  ConfigDatabase::Entry e;
  e.workload = "build";
  e.scene = "bunny";
  e.builder = "in-place";
  e.backend = "compact";
  e.hw = test_hw();
  e.features = test_features(0.25);
  e.params = {{"ci", 17}, {"cb", 10}, {"s", 3}};
  e.seconds = seconds;
  return e;
}

TEST(ConfigDatabase, StoreLookupAndKeepsIfFaster) {
  ConfigDatabase db;
  EXPECT_TRUE(db.empty());

  ConfigDatabase::Entry e = test_entry(0.5);
  EXPECT_TRUE(db.store(e));
  EXPECT_EQ(db.size(), 1u);
  const auto hit = db.lookup(e.key());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->params, e.params);
  EXPECT_DOUBLE_EQ(hit->seconds, 0.5);

  // Slower same-context measurements are rejected; faster ones replace.
  ConfigDatabase::Entry slower = test_entry(0.9);
  slower.params[0].second = 99;
  EXPECT_FALSE(db.store(slower));
  EXPECT_EQ(db.lookup(e.key())->params[0].second, 17);
  ConfigDatabase::Entry faster = test_entry(0.1);
  faster.params[0].second = 42;
  EXPECT_TRUE(db.store(faster));
  EXPECT_EQ(db.lookup(e.key())->params[0].second, 42);
}

TEST(ConfigDatabase, SaveLoadResaveIsByteIdentical) {
  ConfigDatabase db;
  ConfigDatabase::Entry e1 = test_entry(1.0 / 3.0);  // non-terminating double
  db.store(e1);
  ConfigDatabase::Entry e2 = test_entry(0.125);
  e2.workload = "serve";
  e2.params = {{"batch_size", 16}, {"flush_timeout_us", 200}};
  db.store(e2);

  std::stringstream first;
  db.save(first);

  ConfigDatabase reloaded;
  std::stringstream in(first.str());
  reloaded.load(in);
  EXPECT_EQ(reloaded.size(), db.size());

  std::stringstream second;
  reloaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ConfigDatabase, LoadMergesKeepingFaster) {
  ConfigDatabase a;
  a.store(test_entry(0.5));
  std::stringstream saved;
  a.save(saved);

  ConfigDatabase b;
  b.store(test_entry(0.2));  // already knows a faster config
  b.load(saved);
  EXPECT_DOUBLE_EQ(b.lookup(test_entry().key())->seconds, 0.2);
}

TEST(ConfigDatabase, NearestDistinguishesExactNearFar) {
  ConfigDatabase db;
  db.store(test_entry());

  // Bit-identical features + identical hardware: an exact hit.
  const auto exact =
      db.nearest("build", test_features(0.25), test_hw(), "in-place",
                 "compact");
  ASSERT_NE(exact.entry, nullptr);
  EXPECT_EQ(exact.kind, ConfigDatabase::MatchKind::kExact);
  EXPECT_EQ(exact.distance, 0.0);

  // A small perturbation: near, with a positive distance.
  SceneFeatures near_f = test_features(0.25);
  near_f.v[3] += 0.05;
  const auto near = db.nearest("build", near_f, test_hw());
  ASSERT_NE(near.entry, nullptr);
  EXPECT_EQ(near.kind, ConfigDatabase::MatchKind::kNear);
  EXPECT_GT(near.distance, 0.0);

  // A wildly different scene: the candidate exists but is a far miss.
  const auto far = db.nearest("build", test_features(6.0), test_hw());
  ASSERT_NE(far.entry, nullptr);
  EXPECT_EQ(far.kind, ConfigDatabase::MatchKind::kFar);

  // Workload / builder / backend filters exclude non-matching entries.
  EXPECT_EQ(db.nearest("serve", test_features(0.25), test_hw()).entry,
            nullptr);
  EXPECT_EQ(
      db.nearest("build", test_features(0.25), test_hw(), "lazy").entry,
      nullptr);
  EXPECT_EQ(db.nearest("build", test_features(0.25), test_hw(), "in-place",
                       "wide8")
                .entry,
            nullptr);
}

TEST(ConfigDatabase, NearestBreaksDistanceTiesByKey) {
  // Two entries with identical features and hardware but different scene
  // names are equidistant from any query; the winner must be the smaller
  // key regardless of insertion order and across a save→load round trip.
  ConfigDatabase::Entry alpha = test_entry(0.5);
  alpha.scene = "alpha";
  alpha.params = {{"ci", 11}};
  ConfigDatabase::Entry zulu = test_entry(0.5);
  zulu.scene = "zulu";
  zulu.params = {{"ci", 99}};

  SceneFeatures query = test_features(0.25);
  query.v[1] += 0.07;  // equidistant near miss from both entries

  for (const bool alpha_first : {true, false}) {
    ConfigDatabase db;
    db.store(alpha_first ? alpha : zulu);
    db.store(alpha_first ? zulu : alpha);

    const auto match = db.nearest("build", query, test_hw());
    ASSERT_NE(match.entry, nullptr);
    EXPECT_EQ(match.entry->scene, "alpha")
        << "insertion order leaked into the tie-break (alpha_first="
        << alpha_first << ")";

    std::stringstream buf;
    db.save(buf);
    ConfigDatabase reloaded;
    reloaded.load(buf);
    const auto again = reloaded.nearest("build", query, test_hw());
    ASSERT_NE(again.entry, nullptr);
    EXPECT_EQ(again.entry->scene, "alpha");
    EXPECT_EQ(again.distance, match.distance);
  }
}

TEST(ConfigDatabase, DifferentHardwareDemotesExactToNear) {
  ConfigDatabase db;
  db.store(test_entry());
  HardwareDescriptor other = test_hw();
  other.simd = SimdLevel::kScalar;
  const auto match = db.nearest("build", test_features(0.25), other);
  ASSERT_NE(match.entry, nullptr);
  EXPECT_NE(match.kind, ConfigDatabase::MatchKind::kExact);
  EXPECT_GT(match.distance, 0.0);
}

TEST(ConfigDatabase, FileRoundTripAtomicAndMissingFileIsEmpty) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::path(::testing::TempDir()) / "kdtune_test_configdb.jsonl").string();
  std::remove(path.c_str());

  ConfigDatabase missing;
  missing.load_file(path);  // no file: silently empty
  EXPECT_TRUE(missing.empty());

  ConfigDatabase db;
  db.store(test_entry());
  db.save_file(path);
  ConfigDatabase loaded;
  loaded.load_file(path);
  EXPECT_EQ(loaded.size(), 1u);

  for (const auto& entry : fs::directory_iterator(::testing::TempDir())) {
    EXPECT_EQ(entry.path().string().find("kdtune_test_configdb.jsonl.tmp"),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  std::remove(path.c_str());
}

TEST(ConfigDatabase, CorruptFileDegradesToColdStart) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::path(::testing::TempDir()) / "kdtune_corrupt_db.jsonl").string();
  {
    std::ofstream out(path);
    out << "{\"format\":\"kdtune-configdb\",\"version\":1}\n";
    out << "this is not json\n";
  }
  ConfigDatabase db;
  db.load_file(path);  // warns to stderr, loads nothing
  EXPECT_TRUE(db.empty());
  std::remove(path.c_str());
}

TEST(ConfigDatabase, StrictLoadRejectsBadHeaderAndNewerVersion) {
  ConfigDatabase db;
  std::stringstream no_header("{\"not\":\"a header\"}\n");
  EXPECT_THROW(db.load(no_header), std::runtime_error);
  std::stringstream newer(
      "{\"format\":\"kdtune-configdb\",\"version\":999}\n");
  EXPECT_THROW(db.load(newer), std::runtime_error);
}

}  // namespace
}  // namespace kdtune
