#include "kdtree/build_common.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"

namespace kdtune {
namespace {

const SahParams kParams{10.0, 17.0, 10.0};

std::vector<Triangle> random_triangles(std::size_t n, std::uint64_t seed,
                                       float extent = 2.0f) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  tris.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-extent, extent), rng.uniform(-extent, extent),
                    rng.uniform(-extent, extent)};
    const Vec3 e1{rng.uniform(-0.4f, 0.4f), rng.uniform(-0.4f, 0.4f),
                  rng.uniform(-0.4f, 0.4f)};
    const Vec3 e2{rng.uniform(-0.4f, 0.4f), rng.uniform(-0.4f, 0.4f),
                  rng.uniform(-0.4f, 0.4f)};
    tris.push_back({base, base + e1, base + e2});
  }
  return tris;
}

TEST(PrimRefs, SkipsDegenerateTriangles) {
  std::vector<Triangle> tris = random_triangles(5, 1);
  tris.push_back({{1, 1, 1}, {1, 1, 1}, {1, 1, 1}});
  const auto refs = make_prim_refs(tris);
  EXPECT_EQ(refs.size(), 5u);
}

TEST(PrimRefs, BoundsMatchTriangles) {
  const auto tris = random_triangles(20, 2);
  const auto refs = make_prim_refs(tris);
  for (const PrimRef& r : refs) {
    EXPECT_EQ(r.bounds, tris[r.tri].bounds());
  }
  EXPECT_EQ(bounds_of_refs(refs), bounds_of(tris));
}

TEST(Events, GenerationAndOrdering) {
  std::vector<PrimRef> refs{
      {0, AABB({0, 0, 0}, {1, 1, 1})},
      {1, AABB({0.5f, 0, 0}, {0.5f, 1, 1})},  // planar on X at 0.5
  };
  std::vector<SahEvent> events;
  make_events(refs, Axis::X, events);
  ASSERT_EQ(events.size(), 3u);  // start+end for #0, planar for #1
  std::sort(events.begin(), events.end());
  EXPECT_EQ(events[0].type, SahEvent::kStart);
  EXPECT_FLOAT_EQ(events[0].position, 0.0f);
  EXPECT_EQ(events[1].type, SahEvent::kPlanar);
  EXPECT_FLOAT_EQ(events[1].position, 0.5f);
  EXPECT_EQ(events[2].type, SahEvent::kEnd);
}

TEST(Events, TypeOrderAtEqualPositions) {
  // End < Planar < Start at the same coordinate.
  const SahEvent end{1.0f, 0, SahEvent::kEnd};
  const SahEvent planar{1.0f, 1, SahEvent::kPlanar};
  const SahEvent start{1.0f, 2, SahEvent::kStart};
  EXPECT_TRUE(end < planar);
  EXPECT_TRUE(planar < start);
  EXPECT_FALSE(start < end);
}

// The sweep must agree with direct enumeration: for every candidate plane,
// count sides by brute force and evaluate; the sweep's winner must match the
// enumerated minimum.
TEST(Sweep, MatchesBruteForceEnumeration) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto tris = random_triangles(40, seed);
    const auto refs = make_prim_refs(tris);
    const AABB box = bounds_of_refs(refs);

    const SplitCandidate sweep_best = find_best_split_sweep(kParams, box, refs);

    SplitCandidate enum_best;
    for (const PrimRef& r : refs) {
      for (int a = 0; a < 3; ++a) {
        const Axis axis = static_cast<Axis>(a);
        for (const float pos : {r.bounds.lo[axis], r.bounds.hi[axis]}) {
          std::size_t nl = 0, np = 0, nr = 0;
          for (const PrimRef& q : refs) {
            const float lo = q.bounds.lo[axis];
            const float hi = q.bounds.hi[axis];
            if (lo == pos && hi == pos) {
              ++np;
            } else {
              if (lo < pos) ++nl;          // starts before the plane
              if (hi > pos) ++nr;          // ends after the plane
            }
          }
          const SplitCandidate c =
              evaluate_plane(kParams, box, axis, pos, nl, np, nr, refs.size());
          if (c.cost < enum_best.cost) enum_best = c;
        }
      }
    }

    ASSERT_TRUE(sweep_best.valid());
    EXPECT_NEAR(sweep_best.cost, enum_best.cost, 1e-6)
        << "seed " << seed << ": sweep chose axis "
        << axis_index(sweep_best.axis) << " pos " << sweep_best.position;
  }
}

TEST(Classify, SidesAgainstPlane) {
  SplitCandidate split;
  split.axis = Axis::X;
  split.position = 1.0f;
  split.planar_left = true;

  EXPECT_EQ(classify({0, AABB({0, 0, 0}, {0.5f, 1, 1})}, split), Side::kLeft);
  EXPECT_EQ(classify({0, AABB({1.5f, 0, 0}, {2, 1, 1})}, split), Side::kRight);
  EXPECT_EQ(classify({0, AABB({0.5f, 0, 0}, {1.5f, 1, 1})}, split), Side::kBoth);
  // Touching the plane from either side is one-sided, not straddling.
  EXPECT_EQ(classify({0, AABB({0, 0, 0}, {1, 1, 1})}, split), Side::kLeft);
  EXPECT_EQ(classify({0, AABB({1, 0, 0}, {2, 1, 1})}, split), Side::kRight);
  // Exactly in the plane goes to BOTH children regardless of the SAH's
  // planar_left counting choice: one-sided placement loses closest hits
  // whose computed t rounds across the computed t_split (a ray terminating
  // in the other child would never test the primitive).
  EXPECT_EQ(classify({0, AABB({1, 0, 0}, {1, 1, 1})}, split), Side::kBoth);
  split.planar_left = false;
  EXPECT_EQ(classify({0, AABB({1, 0, 0}, {1, 1, 1})}, split), Side::kBoth);
}

TEST(Partition, CountsMatchCandidate) {
  const auto tris = random_triangles(60, 9);
  const auto refs = make_prim_refs(tris);
  const AABB box = bounds_of_refs(refs);
  const SplitCandidate best = find_best_split_sweep(kParams, box, refs);
  ASSERT_TRUE(best.valid());

  const auto [lbox, rbox] = box.split(best.axis, best.position);
  std::vector<PrimRef> left, right;
  partition_prims(refs, tris, best, lbox, rbox, left, right);

  // The partition may drop straddlers whose clip to a child is empty, so the
  // realized counts are bounded by the sweep's predictions.
  EXPECT_LE(left.size(), best.nl);
  EXPECT_LE(right.size(), best.nr);
  EXPECT_GE(left.size() + right.size(), refs.size());  // straddlers duplicate

  for (const PrimRef& p : left) {
    EXPECT_TRUE(lbox.contains(p.bounds, 1e-4f));
  }
  for (const PrimRef& p : right) {
    EXPECT_TRUE(rbox.contains(p.bounds, 1e-4f));
  }
}

TEST(Flatten, PreservesStructure) {
  // Hand-build:   root(X@1) -> [leaf{0,1}, inner(Y@2) -> [leaf{2}, leaf{}]]
  auto leaf_a = std::make_unique<BuildNode>();
  leaf_a->prims = {0, 1};
  auto leaf_b = std::make_unique<BuildNode>();
  leaf_b->prims = {2};
  auto leaf_c = std::make_unique<BuildNode>();
  auto inner = std::make_unique<BuildNode>();
  inner->leaf = false;
  inner->axis = Axis::Y;
  inner->split = 2.0f;
  inner->left = std::move(leaf_b);
  inner->right = std::move(leaf_c);
  BuildNode root;
  root.leaf = false;
  root.axis = Axis::X;
  root.split = 1.0f;
  root.left = std::move(leaf_a);
  root.right = std::move(inner);

  const FlatTree flat = flatten(root);
  ASSERT_EQ(flat.nodes.size(), 5u);
  const KdNode& r = flat.nodes[flat.root];
  ASSERT_TRUE(r.is_interior());
  EXPECT_EQ(r.axis(), Axis::X);
  EXPECT_FLOAT_EQ(r.split, 1.0f);

  const KdNode& l = flat.nodes[r.a];
  ASSERT_TRUE(l.is_leaf());
  EXPECT_EQ(l.b, 2u);
  EXPECT_EQ(flat.prim_indices[l.a], 0u);
  EXPECT_EQ(flat.prim_indices[l.a + 1], 1u);

  const KdNode& i = flat.nodes[r.b];
  ASSERT_TRUE(i.is_interior());
  EXPECT_EQ(i.axis(), Axis::Y);
  const KdNode& empty = flat.nodes[i.b];
  ASSERT_TRUE(empty.is_leaf());
  EXPECT_EQ(empty.b, 0u);
}

TEST(BuildNodeLeaf, DeduplicatesPrims) {
  std::vector<PrimRef> refs{{3, {}}, {1, {}}, {3, {}}, {2, {}}};
  const auto leaf = BuildNode::make_leaf(refs);
  EXPECT_EQ(leaf->prims, (std::vector<std::uint32_t>{1, 2, 3}));
}

}  // namespace
}  // namespace kdtune
