#include "tuning/parameter.hpp"

#include <gtest/gtest.h>

namespace kdtune {
namespace {

TEST(TunableParameter, LinearGrid) {
  std::int64_t var = 0;
  const auto p = TunableParameter::linear(&var, 3, 101, 1, "CI");
  EXPECT_EQ(p.count(), 99);
  EXPECT_EQ(p.value_at(0), 3);
  EXPECT_EQ(p.value_at(98), 101);
  EXPECT_EQ(p.name(), "CI");
}

TEST(TunableParameter, LinearGridWithStep) {
  std::int64_t var = 0;
  const auto p = TunableParameter::linear(&var, 0, 10, 3);
  EXPECT_EQ(p.count(), 4);  // 0, 3, 6, 9
  EXPECT_EQ(p.value_at(3), 9);
}

TEST(TunableParameter, ApplyWritesThroughPointer) {
  std::int64_t var = -1;
  const auto p = TunableParameter::linear(&var, 10, 20);
  p.apply(5);
  EXPECT_EQ(var, 15);
  EXPECT_EQ(p.current(), 15);
}

TEST(TunableParameter, ValueAtClampsIndex) {
  std::int64_t var = 0;
  const auto p = TunableParameter::linear(&var, 0, 9);
  EXPECT_EQ(p.value_at(-5), 0);
  EXPECT_EQ(p.value_at(100), 9);
}

TEST(TunableParameter, Pow2Grid) {
  std::int64_t var = 0;
  const auto p = TunableParameter::pow2(&var, 16, 8192, "R");
  EXPECT_EQ(p.count(), 10);  // 16 .. 8192
  EXPECT_EQ(p.value_at(0), 16);
  EXPECT_EQ(p.value_at(9), 8192);
  EXPECT_EQ(p.value_at(4), 256);
}

TEST(TunableParameter, Pow2IndexOfSnapsToNearest) {
  std::int64_t var = 0;
  const auto p = TunableParameter::pow2(&var, 16, 8192);
  EXPECT_EQ(p.index_of(16), 0);
  EXPECT_EQ(p.index_of(8192), 9);
  EXPECT_EQ(p.index_of(100), 3);  // nearest of {64, 128} by absolute error: 128
  EXPECT_EQ(p.value_at(p.index_of(100)), 128);
}

TEST(TunableParameter, LinearIndexOfRounds) {
  std::int64_t var = 0;
  const auto p = TunableParameter::linear(&var, 0, 100, 10);
  EXPECT_EQ(p.index_of(34), 3);
  EXPECT_EQ(p.index_of(36), 4);
  EXPECT_EQ(p.index_of(-5), 0);
  EXPECT_EQ(p.index_of(1000), 10);
}

TEST(TunableParameter, RoundIndexClamps) {
  std::int64_t var = 0;
  const auto p = TunableParameter::linear(&var, 0, 9);
  EXPECT_EQ(p.round_index(4.4), 4);
  EXPECT_EQ(p.round_index(4.6), 5);
  EXPECT_EQ(p.round_index(-3.0), 0);
  EXPECT_EQ(p.round_index(99.0), 9);
}

TEST(TunableParameter, InvalidArgumentsThrow) {
  std::int64_t var = 0;
  EXPECT_THROW(TunableParameter::linear(nullptr, 0, 1), std::invalid_argument);
  EXPECT_THROW(TunableParameter::linear(&var, 5, 1), std::invalid_argument);
  EXPECT_THROW(TunableParameter::linear(&var, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(TunableParameter::pow2(&var, 12, 100), std::invalid_argument);
  EXPECT_THROW(TunableParameter::pow2(&var, 0, 100), std::invalid_argument);
}

TEST(TunableParameter, SearchSpaceSize) {
  std::int64_t a = 0, b = 0, c = 0, d = 0;
  // The paper's Table II space: 99 * 61 * 8 * 10.
  const std::vector<TunableParameter> params{
      TunableParameter::linear(&a, 3, 101),
      TunableParameter::linear(&b, 0, 60),
      TunableParameter::linear(&c, 1, 8),
      TunableParameter::pow2(&d, 16, 8192),
  };
  EXPECT_EQ(search_space_size(params), 99ull * 61ull * 8ull * 10ull);
  EXPECT_EQ(search_space_size({}), 1ull);
}

}  // namespace
}  // namespace kdtune
