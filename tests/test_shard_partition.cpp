#include "shard/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>
#include <vector>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "parallel/thread_pool.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  tris.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    tris.push_back({a, a + e1, a + e2});
  }
  return tris;
}

bool same_triangle(const Triangle& a, const Triangle& b) {
  return std::memcmp(&a, &b, sizeof(Triangle)) == 0;
}

TEST(ShardPartition, ClampShardCountIsPow2Floor) {
  EXPECT_EQ(clamp_shard_count(-3), 1);
  EXPECT_EQ(clamp_shard_count(0), 1);
  EXPECT_EQ(clamp_shard_count(1), 1);
  EXPECT_EQ(clamp_shard_count(2), 2);
  EXPECT_EQ(clamp_shard_count(3), 2);
  EXPECT_EQ(clamp_shard_count(5), 4);
  EXPECT_EQ(clamp_shard_count(8), 8);
  EXPECT_EQ(clamp_shard_count(63), 32);
  EXPECT_EQ(clamp_shard_count(64), kMaxShardCount);
  EXPECT_EQ(clamp_shard_count(1000), kMaxShardCount);
}

TEST(ShardPartition, SingleShardIsTheWholeSoup) {
  const auto tris = soup(64, 1);
  const ShardPlan plan = build_shard_plan(tris, 1);
  EXPECT_EQ(plan.shard_count, 1);
  EXPECT_TRUE(plan.cuts.empty());
  ASSERT_EQ(plan.shard_triangles.size(), 1u);
  ASSERT_EQ(plan.shard_triangles[0].size(), tris.size());
  ASSERT_EQ(plan.shard_global_ids[0].size(), tris.size());
  for (std::size_t i = 0; i < tris.size(); ++i) {
    EXPECT_EQ(plan.shard_global_ids[0][i], static_cast<std::uint32_t>(i));
    EXPECT_TRUE(same_triangle(plan.shard_triangles[0][i], tris[i]));
  }
}

TEST(ShardPartition, CoverageDuplicationAndIdMaps) {
  const auto tris = soup(500, 2);
  for (const int k : {2, 4, 8}) {
    const ShardPlan plan = build_shard_plan(tris, k);
    EXPECT_EQ(plan.shard_count, k);
    EXPECT_EQ(plan.cuts.size(), static_cast<std::size_t>(k - 1));
    EXPECT_EQ(plan.input_triangles, tris.size());

    std::set<std::uint32_t> covered;
    std::size_t refs = 0;
    for (int s = 0; s < k; ++s) {
      const auto& ids = plan.shard_global_ids[static_cast<std::size_t>(s)];
      const auto& local = plan.shard_triangles[static_cast<std::size_t>(s)];
      ASSERT_EQ(ids.size(), local.size());
      refs += ids.size();
      // Strictly ascending local->global maps, and each local triangle is a
      // verbatim copy of its global original (so local id comparisons agree
      // with global ones after remapping).
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i > 0) EXPECT_LT(ids[i - 1], ids[i]);
        ASSERT_LT(ids[i], tris.size());
        EXPECT_TRUE(same_triangle(local[i], tris[ids[i]]));
        covered.insert(ids[i]);
      }
    }
    // Every input triangle lives in at least one shard; straddlers make the
    // ref total exceed the input count.
    EXPECT_EQ(covered.size(), tris.size());
    EXPECT_EQ(plan.total_refs, refs);
    EXPECT_GE(plan.total_refs, tris.size());
  }
}

TEST(ShardPartition, PlacementMatchesBoxRouting) {
  // The bit-exactness argument rests on placement and routing sharing the
  // same inclusive predicates: the shards holding a triangle must be exactly
  // the shards its bounding box routes to.
  const auto tris = soup(300, 3);
  const ShardPlan plan = build_shard_plan(tris, 8);
  std::vector<int> routed;
  for (std::size_t t = 0; t < tris.size(); ++t) {
    std::vector<int> holders;
    for (int s = 0; s < plan.shard_count; ++s) {
      const auto& ids = plan.shard_global_ids[static_cast<std::size_t>(s)];
      if (std::binary_search(ids.begin(), ids.end(),
                             static_cast<std::uint32_t>(t))) {
        holders.push_back(s);
      }
    }
    plan.route_box(tris[t].bounds(), routed);
    EXPECT_EQ(holders, routed) << "triangle " << t;
  }
}

TEST(ShardPartition, RayRoutingReachesTheClosestHit) {
  const auto tris = soup(400, 4);
  const ShardPlan plan = build_shard_plan(tris, 8);
  ThreadPool pool(0);
  const auto reference = make_sweep_builder()->build(tris, kBaseConfig, pool);
  Rng rng(5);
  std::vector<int> routed;
  int hits = 0;
  for (int i = 0; i < 256; ++i) {
    const Vec3 origin{rng.uniform(-25, 25), rng.uniform(-25, 25),
                      rng.uniform(-25, 25)};
    const Vec3 target{rng.uniform(-10, 10), rng.uniform(-10, 10),
                      rng.uniform(-10, 10)};
    Vec3 dir = target - origin;
    if (length(dir) == 0.0f) dir = {1, 0, 0};
    const Ray ray(origin, normalized(dir));
    const Hit hit = reference->closest_hit(ray);
    if (!hit.valid()) continue;
    ++hits;
    plan.route_ray(ray, routed);
    ASSERT_FALSE(routed.empty());
    // Some routed shard must hold the globally closest triangle.
    bool reachable = false;
    for (const int s : routed) {
      const auto& ids = plan.shard_global_ids[static_cast<std::size_t>(s)];
      reachable |= std::binary_search(ids.begin(), ids.end(), hit.triangle);
    }
    EXPECT_TRUE(reachable) << "ray " << i;
  }
  EXPECT_GT(hits, 30);  // the workload actually exercised the check
}

TEST(ShardPartition, DegenerateRaysRouteSomewhere) {
  const auto tris = soup(100, 6);
  const ShardPlan plan = build_shard_plan(tris, 4);
  std::vector<int> routed;
  // Axis-aligned rays with zero direction components, and a ray starting
  // far outside the bounds: routing must stay NaN-free and non-empty.
  plan.route_ray(Ray({0, 0, 0}, {1, 0, 0}), routed);
  EXPECT_FALSE(routed.empty());
  plan.route_ray(Ray({0, 0, 0}, {0, 0, 1}), routed);
  EXPECT_FALSE(routed.empty());
  plan.route_ray(Ray({-1000, 0, 0}, {1, 0, 0}), routed);
  EXPECT_FALSE(routed.empty());
}

TEST(ShardPartition, SphereRoutingHandlesInfinity) {
  const auto tris = soup(100, 7);
  const ShardPlan plan = build_shard_plan(tris, 8);
  std::vector<int> routed, all;
  plan.route_all(all);
  EXPECT_EQ(all.size(), 8u);
  plan.route_sphere({0, 0, 0}, std::numeric_limits<float>::infinity(), routed);
  EXPECT_EQ(routed, all);
  // A tiny sphere in one corner should not touch every shard.
  plan.route_sphere(plan.bounds.lo, 1e-3f, routed);
  EXPECT_FALSE(routed.empty());
  EXPECT_LT(routed.size(), all.size());
}

TEST(ShardPartition, DeterministicAcrossRebuilds) {
  const auto tris = soup(200, 8);
  const ShardPlan a = build_shard_plan(tris, 8);
  const ShardPlan b = build_shard_plan(tris, 8);
  ASSERT_EQ(a.cuts.size(), b.cuts.size());
  for (std::size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].axis, b.cuts[i].axis);
    EXPECT_EQ(a.cuts[i].pos, b.cuts[i].pos);
  }
  EXPECT_EQ(a.shard_global_ids, b.shard_global_ids);
}

TEST(ShardPartition, CoincidentCentroidsStillCover) {
  // Every centroid identical: median cuts land on the common coordinate and
  // the inclusive predicates duplicate everything everywhere — ugly but
  // correct. Coverage must hold and nothing may crash.
  std::vector<Triangle> tris(32, Triangle{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  const ShardPlan plan = build_shard_plan(tris, 4);
  std::set<std::uint32_t> covered;
  for (const auto& ids : plan.shard_global_ids) {
    covered.insert(ids.begin(), ids.end());
  }
  EXPECT_EQ(covered.size(), tris.size());
}

}  // namespace
}  // namespace kdtune
