#include "kdtree/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "scene/animation.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::unique_ptr<KdTree> build_test_tree(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 base{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
    tris.push_back({base,
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)},
                    base + Vec3{rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                                rng.uniform(-0.5f, 0.5f)}});
  }
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(tris, kBaseConfig, pool);
  return std::unique_ptr<KdTree>(dynamic_cast<KdTree*>(base.release()));
}

TEST(Serialize, RoundTripPreservesEverything) {
  const auto tree = build_test_tree(200, 1);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_tree(buffer, *tree);
  const auto loaded = load_tree(buffer);

  EXPECT_EQ(loaded->root(), tree->root());
  EXPECT_EQ(loaded->nodes().size(), tree->nodes().size());
  EXPECT_EQ(loaded->prim_indices().size(), tree->prim_indices().size());
  EXPECT_EQ(loaded->triangles().size(), tree->triangles().size());
  EXPECT_EQ(loaded->bounds(), tree->bounds());

  const TreeStats a = tree->stats();
  const TreeStats b = loaded->stats();
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_DOUBLE_EQ(a.sah_cost, b.sah_cost);
}

TEST(Serialize, LoadedTreeTraversesIdentically) {
  const auto tree = build_test_tree(300, 2);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_tree(buffer, *tree);
  const auto loaded = load_tree(buffer);

  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Ray ray({rng.uniform(-5, 5), rng.uniform(-5, 5), -10.0f},
                  normalized(Vec3{rng.uniform(-0.3f, 0.3f),
                                  rng.uniform(-0.3f, 0.3f), 1.0f}));
    const Hit a = tree->closest_hit(ray);
    const Hit b = loaded->closest_hit(ray);
    ASSERT_EQ(a.valid(), b.valid());
    if (a.valid()) {
      EXPECT_EQ(a.triangle, b.triangle);
      EXPECT_FLOAT_EQ(a.t, b.t);
    }
    EXPECT_EQ(tree->any_hit(ray), loaded->any_hit(ray));
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto tree = build_test_tree(100, 4);
  const std::string path = ::testing::TempDir() + "/kdtune_tree.bin";
  save_tree_file(path, *tree);
  const auto loaded = load_tree_file(path);
  EXPECT_EQ(loaded->nodes().size(), tree->nodes().size());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer("not a tree file at all");
  EXPECT_THROW(load_tree(buffer), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  const auto tree = build_test_tree(50, 5);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_tree(buffer, *tree);
  const std::string full = buffer.str();
  // Chop at several points; every prefix must be rejected, never crash.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{10}, full.size() / 2, full.size() - 4}) {
    std::stringstream cut(full.substr(0, keep),
                          std::ios::in | std::ios::binary);
    EXPECT_THROW(load_tree(cut), std::runtime_error) << "keep=" << keep;
  }
}

TEST(Serialize, RejectsCorruptChildIndex) {
  const auto tree = build_test_tree(50, 6);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_tree(buffer, *tree);
  std::string data = buffer.str();
  // The first node starts right after magic(4) + version(4) + bounds(24) +
  // root(4) + count(8). Corrupt its child index field.
  const std::size_t node0 = 4 + 4 + 24 + 4 + 8;
  data[node0 + 8] = '\xFF';  // KdNode::a low byte -> huge index
  data[node0 + 9] = '\xFF';
  data[node0 + 10] = '\xFF';
  data[node0 + 11] = '\xFF';
  std::stringstream cut(data, std::ios::in | std::ios::binary);
  EXPECT_THROW(load_tree(cut), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tree_file("/nonexistent/tree.bin"), std::runtime_error);
}

TEST(OrbitScene, CameraMovesGeometryDoesNot) {
  Scene base = make_bunny(0.08f);
  const OrbitScene orbit(base, 8);
  EXPECT_EQ(orbit.frame_count(), 8u);
  EXPECT_FALSE(orbit.dynamic());
  EXPECT_EQ(orbit.name(), "bunny_orbit");

  const Scene f0 = orbit.frame(0);
  const Scene f4 = orbit.frame(4);
  ASSERT_EQ(f0.triangle_count(), f4.triangle_count());
  for (std::size_t i = 0; i < f0.triangle_count(); i += 101) {
    EXPECT_EQ(f0.triangles()[i].a, f4.triangles()[i].a);
  }
  // Half a revolution: the camera is on the opposite side, same distance.
  const Vec3 c = base.camera().look_at;
  EXPECT_GT(length(f0.camera().eye - f4.camera().eye), 0.1f);
  EXPECT_NEAR(length(f0.camera().eye - c), length(f4.camera().eye - c), 1e-3f);
  EXPECT_THROW(orbit.frame(8), std::out_of_range);
}

}  // namespace
}  // namespace kdtune
