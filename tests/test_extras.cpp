// Tests for the auxiliary features: Graphviz export, simulated annealing,
// and supersampled rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "kdtree/builder.hpp"
#include "kdtree/dot_export.hpp"
#include "render/raycaster.hpp"
#include "scene/generators.hpp"
#include "tuning/search.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {
namespace {

std::unique_ptr<KdTree> small_tree() {
  const std::vector<Triangle> tris{
      {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}},
      {{-1, -1, 2}, {1, -1, 2}, {0, 1, 2}},
      {{-1, -1, 4}, {1, -1, 4}, {0, 1, 4}},
  };
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(tris, kBaseConfig, pool);
  return std::unique_ptr<KdTree>(dynamic_cast<KdTree*>(base.release()));
}

// --- Graphviz export ---------------------------------------------------------

TEST(DotExport, ProducesWellFormedGraph) {
  const auto tree = small_tree();
  std::ostringstream out;
  export_dot(out, *tree);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph kdtree {"), std::string::npos);
  EXPECT_NE(dot.find("n0 ["), std::string::npos);
  EXPECT_NE(dot.find("leaf"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  // One node statement per tree node.
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = dot.find("  n", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_GE(count, tree->nodes().size());  // nodes + edges
}

TEST(DotExport, DepthLimitCollapsesSubtrees) {
  const Scene scene = make_bunny(0.1f);
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(scene.triangles(), kBaseConfig, pool);
  const auto* tree = dynamic_cast<const KdTree*>(base.get());
  DotOptions opts;
  opts.max_depth = 3;
  std::ostringstream out;
  export_dot(out, *tree, opts);
  EXPECT_NE(out.str().find("\"...\""), std::string::npos);
  // Far fewer statements than nodes in the full tree.
  EXPECT_LT(out.str().size(), tree->nodes().size() * 40);
}

TEST(DotExport, ShowBoundsAddsVolumeShares) {
  const auto tree = small_tree();
  DotOptions opts;
  opts.show_bounds = true;
  std::ostringstream out;
  export_dot(out, *tree, opts);
  EXPECT_NE(out.str().find("% vol"), std::string::npos);
}

// --- Simulated annealing -------------------------------------------------------

double bowl(const ConfigPoint& p, const std::vector<double>& target) {
  double sum = 1.0;
  for (std::size_t d = 0; d < p.size(); ++d) {
    const double delta = static_cast<double>(p[d]) - target[d];
    sum += delta * delta;
  }
  return sum;
}

TEST(Annealing, ApproachesBowlMinimum) {
  auto search = make_annealing_search();
  search->initialize({100, 60});
  std::size_t evals = 0;
  while (!search->converged() && evals < 1000) {
    const ConfigPoint p = search->propose();
    search->report(bowl(p, {70, 20}));
    ++evals;
  }
  EXPECT_TRUE(search->converged());
  EXPECT_LT(bowl(search->best(), {70, 20}), bowl({0, 0}, {70, 20}) * 0.1);
}

TEST(Annealing, EscapesLocalMinimum) {
  // Double well on a line: local min at 10 (value 2), global at 80 (value 1).
  const auto cost = [](const ConfigPoint& p) {
    const double x = static_cast<double>(p[0]);
    return std::min(2.0 + 0.05 * (x - 10) * (x - 10),
                    1.0 + 0.05 * (x - 80) * (x - 80));
  };
  int found_global = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AnnealingOptions opts;
    opts.seed = seed;
    auto search = make_annealing_search(opts);
    search->initialize({100});
    while (!search->converged()) {
      const ConfigPoint p = search->propose();
      search->report(cost(p));
    }
    found_global += std::llabs(search->best()[0] - 80) <= 3;
  }
  EXPECT_GE(found_global, 3);  // most seeds find the global basin
}

TEST(Annealing, HonorsEvaluationCap) {
  AnnealingOptions opts;
  opts.max_evaluations = 30;
  opts.cooling = 1.0;  // never cools below final temperature on its own
  auto search = make_annealing_search(opts);
  search->initialize({50});
  std::size_t evals = 0;
  while (!search->converged() && evals < 500) {
    search->report(1.0 + (search->propose()[0] % 7)), ++evals;
  }
  EXPECT_EQ(evals, 30u);
}

TEST(Annealing, SeedIsRespectedOnRestart) {
  auto search = make_annealing_search();
  search->initialize({100});
  search->seed({42});
  EXPECT_EQ(search->propose(), (ConfigPoint{42}));
  // After restart the search resumes from the best known point.
  search->report(1.0);
  search->restart();
  EXPECT_FALSE(search->converged());
}

TEST(Annealing, WorksInsideTuner) {
  std::int64_t x = 0;
  Tuner tuner(make_annealing_search());
  tuner.register_parameter(&x, 0, 80);
  for (int i = 0; i < 400 && !tuner.converged(); ++i) {
    tuner.apply_next();
    tuner.record(1.0 + 0.1 * std::abs(static_cast<double>(x) - 55.0));
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_NEAR(static_cast<double>(tuner.best_values()[0]), 55.0, 10.0);
}

// --- Supersampling -------------------------------------------------------------

TEST(Supersampling, SmoothsEdgesAndCountsRays) {
  const Scene scene = make_scene("wood_doll", 0.15f)->frame(0);
  ThreadPool pool(0);
  const auto tree = make_builder(Algorithm::kInPlace)
                        ->build(scene.triangles(), kBaseConfig, pool);
  const Camera camera(scene.camera(), 32, 24);

  RenderOptions plain;
  RenderOptions ssaa;
  ssaa.samples_per_axis = 2;
  Framebuffer plain_fb(32, 24), ssaa_fb(32, 24);
  const RenderResult r1 = render(*tree, scene, camera, plain_fb, pool, plain);
  const RenderResult r4 = render(*tree, scene, camera, ssaa_fb, pool, ssaa);

  EXPECT_EQ(r4.rays_cast, r1.rays_cast * 4);
  // Same overall brightness (box filter), different per-pixel values at
  // silhouettes.
  EXPECT_NEAR(ssaa_fb.checksum(), plain_fb.checksum(),
              plain_fb.checksum() * 0.2 + 1.0);
  bool differs = false;
  for (int y = 0; y < 24 && !differs; ++y) {
    for (int x = 0; x < 32 && !differs; ++x) {
      differs = !(plain_fb.at(x, y) == ssaa_fb.at(x, y));
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Supersampling, OneSampleIsTheDefaultPath) {
  const Scene scene = make_scene("wood_doll", 0.1f)->frame(0);
  ThreadPool pool(0);
  const auto tree = make_builder(Algorithm::kInPlace)
                        ->build(scene.triangles(), kBaseConfig, pool);
  const Camera camera(scene.camera(), 24, 18);
  RenderOptions one;
  one.samples_per_axis = 1;
  RenderOptions zero;  // clamped up to 1
  zero.samples_per_axis = 0;
  Framebuffer a(24, 18), b(24, 18);
  render(*tree, scene, camera, a, pool, one);
  render(*tree, scene, camera, b, pool, zero);
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
}

}  // namespace
}  // namespace kdtune
