#include "geom/triangle.hpp"

#include <gtest/gtest.h>

#include "geom/rng.hpp"

namespace kdtune {
namespace {

const Triangle kUnit{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};  // z = 0 plane

TEST(Triangle, BoundsCentroidAreaNormal) {
  EXPECT_EQ(kUnit.bounds(), AABB({0, 0, 0}, {1, 1, 0}));
  const Vec3 c = kUnit.centroid();
  EXPECT_NEAR(c.x, 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(c.y, 1.0f / 3.0f, 1e-6f);
  EXPECT_FLOAT_EQ(kUnit.area(), 0.5f);
  EXPECT_EQ(kUnit.normal(), Vec3(0, 0, 1));
}

TEST(Triangle, DegenerateDetection) {
  EXPECT_FALSE(kUnit.degenerate());
  const Triangle line{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}};
  EXPECT_TRUE(line.degenerate());
  const Triangle point{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}};
  EXPECT_TRUE(point.degenerate());
}

TEST(MollerTrumbore, CenterHit) {
  const Ray ray({0.25f, 0.25f, 1.0f}, {0, 0, -1});
  float t, u, v;
  ASSERT_TRUE(intersect(ray, kUnit, t, u, v));
  EXPECT_FLOAT_EQ(t, 1.0f);
  EXPECT_NEAR(u, 0.25f, 1e-5f);
  EXPECT_NEAR(v, 0.25f, 1e-5f);
}

TEST(MollerTrumbore, MissOutsideBarycentrics) {
  const Ray ray({0.9f, 0.9f, 1.0f}, {0, 0, -1});  // u + v > 1
  float t, u, v;
  EXPECT_FALSE(intersect(ray, kUnit, t, u, v));
}

TEST(MollerTrumbore, BehindOriginMisses) {
  const Ray ray({0.25f, 0.25f, -1.0f}, {0, 0, -1});
  float t, u, v;
  EXPECT_FALSE(intersect(ray, kUnit, t, u, v));
}

TEST(MollerTrumbore, ParallelRayMisses) {
  const Ray ray({0.25f, 0.25f, 1.0f}, {1, 0, 0});
  float t, u, v;
  EXPECT_FALSE(intersect(ray, kUnit, t, u, v));
}

TEST(MollerTrumbore, RespectsTminTmax) {
  float t, u, v;
  const Ray short_ray({0.25f, 0.25f, 1.0f}, {0, 0, -1}, 1e-4f, 0.5f);
  EXPECT_FALSE(intersect(short_ray, kUnit, t, u, v));
  const Ray far_ray({0.25f, 0.25f, 1.0f}, {0, 0, -1}, 1.5f, 10.0f);
  EXPECT_FALSE(intersect(far_ray, kUnit, t, u, v));
}

TEST(MollerTrumbore, BackfaceIsHit) {
  const Ray ray({0.25f, 0.25f, -1.0f}, {0, 0, 1});  // from behind
  float t, u, v;
  ASSERT_TRUE(intersect(ray, kUnit, t, u, v));
  EXPECT_FLOAT_EQ(t, 1.0f);
}

// Property: barycentric interpolation of the hit reproduces the hit point.
TEST(MollerTrumbore, BarycentricReconstruction) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Triangle tri{{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)},
                       {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)},
                       {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)}};
    if (tri.degenerate()) continue;
    const Vec3 target = tri.a * 0.2f + tri.b * 0.3f + tri.c * 0.5f;
    const Vec3 origin = target + tri.normal() * 3.0f;
    const Ray ray(origin, normalized(target - origin));
    float t, u, v;
    if (!intersect(ray, tri, t, u, v)) continue;  // grazing precision cases
    const Vec3 reconstructed =
        tri.a * (1 - u - v) + tri.b * u + tri.c * v;
    const Vec3 hit_point = ray.at(t);
    EXPECT_NEAR(length(reconstructed - hit_point), 0.0f, 1e-3f);
  }
}

TEST(ClippedBounds, TriangleFullyInsideIsItsBounds) {
  const AABB box({-5, -5, -5}, {5, 5, 5});
  EXPECT_EQ(clipped_bounds(kUnit, box), kUnit.bounds());
}

TEST(ClippedBounds, TriangleOutsideIsEmpty) {
  const AABB box({10, 10, 10}, {11, 11, 11});
  EXPECT_TRUE(clipped_bounds(kUnit, box).empty());
}

TEST(ClippedBounds, StraddlingTriangleIsTight) {
  // Clip the unit triangle to x <= 0.5: the clipped polygon reaches exactly
  // x = 0.5 and y = 1 stays at the a-c edge.
  const AABB box({-1, -1, -1}, {0.5f, 2, 1});
  const AABB clipped = clipped_bounds(kUnit, box);
  ASSERT_FALSE(clipped.empty());
  EXPECT_FLOAT_EQ(clipped.hi.x, 0.5f);
  EXPECT_FLOAT_EQ(clipped.lo.x, 0.0f);
  EXPECT_FLOAT_EQ(clipped.hi.y, 1.0f);
}

TEST(ClippedBounds, ResultIsInsideBoxAndTriangleBounds) {
  Rng rng(99);
  const AABB box({-0.5f, -0.5f, -0.5f}, {0.5f, 0.5f, 0.5f});
  for (int i = 0; i < 300; ++i) {
    const Triangle tri{{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
                       {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
                       {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}};
    const AABB clipped = clipped_bounds(tri, box);
    if (clipped.empty()) continue;
    EXPECT_TRUE(box.contains(clipped, 1e-5f));
    EXPECT_TRUE(tri.bounds().contains(clipped, 1e-4f));
  }
}

TEST(ClippedBounds, PlanarTriangleOnBoxFace) {
  // Triangle lying exactly in the z = 0 face of the box.
  const AABB box({0, 0, 0}, {1, 1, 1});
  const AABB clipped = clipped_bounds(kUnit, box);
  ASSERT_FALSE(clipped.empty());
  EXPECT_FLOAT_EQ(clipped.lo.z, 0.0f);
  EXPECT_FLOAT_EQ(clipped.hi.z, 0.0f);
}

}  // namespace
}  // namespace kdtune
