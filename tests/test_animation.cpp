#include "scene/animation.hpp"

#include <gtest/gtest.h>

#include "scene/primitives.hpp"

namespace kdtune {
namespace {

TEST(StaticScene, SingleFrame) {
  Scene s("demo");
  s.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  const StaticScene wrapped(s);
  EXPECT_EQ(wrapped.name(), "demo");
  EXPECT_EQ(wrapped.frame_count(), 1u);
  EXPECT_FALSE(wrapped.dynamic());
  EXPECT_EQ(wrapped.frame(0).triangle_count(), 1u);
}

TEST(RigidRig, StaticPartsAreIdenticalEveryFrame) {
  RigidRigScene rig("rig", 10, {}, {});
  rig.add_static_part(primitives::box({1, 1, 1}));
  const Scene f0 = rig.frame(0);
  const Scene f7 = rig.frame(7);
  ASSERT_EQ(f0.triangle_count(), f7.triangle_count());
  for (std::size_t i = 0; i < f0.triangle_count(); ++i) {
    EXPECT_EQ(f0.triangles()[i].a, f7.triangles()[i].a);
  }
}

TEST(RigidRig, AnimatedPartMoves) {
  RigidRigScene rig("rig", 10, {}, {});
  rig.add_part(primitives::box({1, 1, 1}), [](std::size_t frame) {
    return Transform::translate({static_cast<float>(frame), 0, 0});
  });
  const AABB b0 = rig.frame(0).bounds();
  const AABB b5 = rig.frame(5).bounds();
  EXPECT_FLOAT_EQ(b5.lo.x - b0.lo.x, 5.0f);
  // Same shape, different place.
  EXPECT_FLOAT_EQ(b5.extent().x, b0.extent().x);
}

TEST(RigidRig, FrameCountAndOutOfRange) {
  RigidRigScene rig("rig", 3, {}, {});
  rig.add_static_part(primitives::box({1, 1, 1}));
  EXPECT_EQ(rig.frame_count(), 3u);
  EXPECT_TRUE(rig.dynamic());
  EXPECT_NO_THROW(rig.frame(2));
  EXPECT_THROW(rig.frame(3), std::out_of_range);
}

TEST(RigidRig, CarriesCameraAndLights) {
  CameraPreset cam;
  cam.eye = {1, 2, 3};
  RigidRigScene rig("rig", 2, cam, {{{0, 5, 0}, {1, 1, 1}}});
  const Scene f = rig.frame(1);
  EXPECT_EQ(f.camera().eye, Vec3(1, 2, 3));
  ASSERT_EQ(f.lights().size(), 1u);
  EXPECT_EQ(f.lights()[0].position, Vec3(0, 5, 0));
}

TEST(RigidRig, TriangleCountConstantAcrossFrames) {
  RigidRigScene rig("rig", 5, {}, {});
  rig.add_static_part(primitives::box({1, 1, 1}));
  rig.add_part(primitives::cone(1, 2, 8, true), [](std::size_t f) {
    return Transform::rotate({0, 1, 0}, static_cast<float>(f) * 0.3f);
  });
  const std::size_t count = rig.frame(0).triangle_count();
  for (std::size_t f = 1; f < 5; ++f) {
    EXPECT_EQ(rig.frame(f).triangle_count(), count);
  }
}

TEST(ProceduralAnimation, DelegatesToCallback) {
  const ProceduralAnimation anim("proc", 4, [](std::size_t frame) {
    Scene s("proc");
    for (std::size_t i = 0; i <= frame; ++i) {
      s.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    }
    return s;
  });
  EXPECT_EQ(anim.frame_count(), 4u);
  EXPECT_EQ(anim.frame(0).triangle_count(), 1u);
  EXPECT_EQ(anim.frame(3).triangle_count(), 4u);
}

}  // namespace
}  // namespace kdtune
