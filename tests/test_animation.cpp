#include "scene/animation.hpp"

#include <gtest/gtest.h>

#include "scene/primitives.hpp"

namespace kdtune {
namespace {

TEST(StaticScene, SingleFrame) {
  Scene s("demo");
  s.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  const StaticScene wrapped(s);
  EXPECT_EQ(wrapped.name(), "demo");
  EXPECT_EQ(wrapped.frame_count(), 1u);
  EXPECT_FALSE(wrapped.dynamic());
  EXPECT_EQ(wrapped.frame(0).triangle_count(), 1u);
}

TEST(StaticScene, FrameSharesTriangleStorage) {
  Scene s("demo");
  s.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  const StaticScene wrapped(std::move(s));
  const Scene f0 = wrapped.frame(0);
  const Scene f1 = wrapped.frame(0);
  // frame() hands out the stored soup: O(1), no triangle copy.
  EXPECT_TRUE(f0.shares_triangles(f1));
  EXPECT_EQ(f0.triangles().data(), f1.triangles().data());
}

TEST(SceneCopyOnWrite, CopiesShareUntilMutation) {
  Scene a("demo");
  a.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  Scene b = a;
  EXPECT_TRUE(a.shares_triangles(b));
  EXPECT_EQ(a.triangles().data(), b.triangles().data());

  b.mutable_triangles().push_back({{1, 1, 1}, {2, 1, 1}, {1, 2, 1}});
  EXPECT_FALSE(a.shares_triangles(b));
  EXPECT_EQ(a.triangle_count(), 1u);
  EXPECT_EQ(b.triangle_count(), 2u);
  // The untouched original still sees its own data.
  EXPECT_EQ(a.triangles()[0].b, Vec3(1, 0, 0));
}

TEST(SceneCopyOnWrite, SoleOwnerMutatesInPlace) {
  Scene a("demo");
  a.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  const Triangle* before = a.triangles().data();
  a.mutable_triangles()[0].a = {5, 5, 5};
  EXPECT_EQ(a.triangles().data(), before);  // no detach when unshared
}

TEST(OrbitScene, FramesShareSoupOnlyCameraDiffers) {
  Scene base("city");
  base.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  CameraPreset cam;
  cam.eye = {0, 1, -5};
  base.set_camera(cam);
  const OrbitScene orbit(std::move(base), 8);
  const Scene f0 = orbit.frame(0);
  const Scene f4 = orbit.frame(4);
  EXPECT_TRUE(f0.shares_triangles(f4));
  EXPECT_NE(f0.camera().eye, f4.camera().eye);
}

TEST(RigidRig, StaticPartsAreIdenticalEveryFrame) {
  RigidRigScene rig("rig", 10, {}, {});
  rig.add_static_part(primitives::box({1, 1, 1}));
  const Scene f0 = rig.frame(0);
  const Scene f7 = rig.frame(7);
  ASSERT_EQ(f0.triangle_count(), f7.triangle_count());
  for (std::size_t i = 0; i < f0.triangle_count(); ++i) {
    EXPECT_EQ(f0.triangles()[i].a, f7.triangles()[i].a);
  }
}

TEST(RigidRig, AnimatedPartMoves) {
  RigidRigScene rig("rig", 10, {}, {});
  rig.add_part(primitives::box({1, 1, 1}), [](std::size_t frame) {
    return Transform::translate({static_cast<float>(frame), 0, 0});
  });
  const AABB b0 = rig.frame(0).bounds();
  const AABB b5 = rig.frame(5).bounds();
  EXPECT_FLOAT_EQ(b5.lo.x - b0.lo.x, 5.0f);
  // Same shape, different place.
  EXPECT_FLOAT_EQ(b5.extent().x, b0.extent().x);
}

TEST(RigidRig, FrameCountAndOutOfRange) {
  RigidRigScene rig("rig", 3, {}, {});
  rig.add_static_part(primitives::box({1, 1, 1}));
  EXPECT_EQ(rig.frame_count(), 3u);
  EXPECT_TRUE(rig.dynamic());
  EXPECT_NO_THROW(rig.frame(2));
  EXPECT_THROW(rig.frame(3), std::out_of_range);
}

TEST(RigidRig, CarriesCameraAndLights) {
  CameraPreset cam;
  cam.eye = {1, 2, 3};
  RigidRigScene rig("rig", 2, cam, {{{0, 5, 0}, {1, 1, 1}}});
  const Scene f = rig.frame(1);
  EXPECT_EQ(f.camera().eye, Vec3(1, 2, 3));
  ASSERT_EQ(f.lights().size(), 1u);
  EXPECT_EQ(f.lights()[0].position, Vec3(0, 5, 0));
}

TEST(RigidRig, TriangleCountConstantAcrossFrames) {
  RigidRigScene rig("rig", 5, {}, {});
  rig.add_static_part(primitives::box({1, 1, 1}));
  rig.add_part(primitives::cone(1, 2, 8, true), [](std::size_t f) {
    return Transform::rotate({0, 1, 0}, static_cast<float>(f) * 0.3f);
  });
  const std::size_t count = rig.frame(0).triangle_count();
  for (std::size_t f = 1; f < 5; ++f) {
    EXPECT_EQ(rig.frame(f).triangle_count(), count);
  }
}

TEST(ProceduralAnimation, DelegatesToCallback) {
  const ProceduralAnimation anim("proc", 4, [](std::size_t frame) {
    Scene s("proc");
    for (std::size_t i = 0; i <= frame; ++i) {
      s.mutable_triangles().push_back({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
    }
    return s;
  });
  EXPECT_EQ(anim.frame_count(), 4u);
  EXPECT_EQ(anim.frame(0).triangle_count(), 1u);
  EXPECT_EQ(anim.frame(3).triangle_count(), 4u);
}

}  // namespace
}  // namespace kdtune
