// TreeStats / compute_stats on hand-built trees with known answers, plus the
// orbit-pipeline integration (camera motion with per-frame rebuilds).

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "kdtree/tree.hpp"
#include "scene/animation.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

// Hand-built tree over box [0,2]x[0,1]x[0,1], split at x=1:
//   root (x@1) -> leaf L {0,1}, leaf R {2}
KdTree two_leaf_tree() {
  std::vector<Triangle> tris{
      {{0.1f, 0.1f, 0.5f}, {0.4f, 0.1f, 0.5f}, {0.1f, 0.4f, 0.5f}},
      {{0.5f, 0.5f, 0.5f}, {0.9f, 0.5f, 0.5f}, {0.5f, 0.9f, 0.5f}},
      {{1.5f, 0.5f, 0.5f}, {1.9f, 0.5f, 0.5f}, {1.5f, 0.9f, 0.5f}},
  };
  std::vector<KdNode> nodes{
      KdNode::make_interior(Axis::X, 1.0f, 1, 2),
      KdNode::make_leaf(0, 2),
      KdNode::make_leaf(2, 1),
  };
  std::vector<std::uint32_t> prims{0, 1, 2};
  return KdTree(std::move(tris), std::move(nodes), std::move(prims), 0,
                AABB({0, 0, 0}, {2, 1, 1}));
}

TEST(TreeStatsManual, CountsAndDepth) {
  const KdTree tree = two_leaf_tree();
  const TreeStats s = tree.stats();
  EXPECT_EQ(s.node_count, 3u);
  EXPECT_EQ(s.leaf_count, 2u);
  EXPECT_EQ(s.empty_leaf_count, 0u);
  EXPECT_EQ(s.deferred_count, 0u);
  EXPECT_EQ(s.prim_refs, 3u);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_DOUBLE_EQ(s.avg_leaf_prims, 1.5);
}

TEST(TreeStatsManual, SahCostFormula) {
  // Root area: 2*(2*1 + 1*1 + 1*2) = 10. Children are 1x1x1 with area 6.
  // cost = 1.0*CT + 0.6*CI*2 + 0.6*CI*1 with CT=10, CI=17.
  const KdTree tree = two_leaf_tree();
  const TreeStats s =
      compute_stats(tree.nodes(), tree.root(), tree.bounds(), 10.0, 17.0);
  EXPECT_NEAR(s.sah_cost, 10.0 + 0.6 * 17.0 * 2 + 0.6 * 17.0 * 1, 1e-6);
}

TEST(TreeStatsManual, CustomCostWeights) {
  const KdTree tree = two_leaf_tree();
  const TreeStats a =
      compute_stats(tree.nodes(), tree.root(), tree.bounds(), 1.0, 1.0);
  EXPECT_NEAR(a.sah_cost, 1.0 + 0.6 * 2 + 0.6 * 1, 1e-6);
}

TEST(TreeStatsManual, SingleLeafTree) {
  std::vector<KdNode> nodes{KdNode::make_leaf(0, 0)};
  const TreeStats s = compute_stats(nodes, 0, AABB({0, 0, 0}, {1, 1, 1}));
  EXPECT_EQ(s.node_count, 1u);
  EXPECT_EQ(s.leaf_count, 1u);
  EXPECT_EQ(s.empty_leaf_count, 1u);
  EXPECT_EQ(s.max_depth, 1u);
  EXPECT_DOUBLE_EQ(s.avg_leaf_prims, 0.0);
}

TEST(OrbitPipeline, TunesAcrossCameraMotion) {
  // The paper's static-scene protocol: geometry fixed, camera (and thus the
  // ray distribution) moving, tree rebuilt and tuned every frame.
  ThreadPool pool(0);
  const OrbitScene orbit(make_bunny(0.08f), 12);
  PipelineOptions opts;
  opts.width = 32;
  opts.height = 24;
  TunedPipeline pipeline(Algorithm::kInPlace, pool, std::move(opts));

  for (std::size_t i = 0; i < orbit.frame_count(); ++i) {
    const FrameReport r = pipeline.render_frame(orbit.frame(i));
    EXPECT_GT(r.total_seconds, 0.0);
  }
  EXPECT_EQ(pipeline.tuner().iterations(), orbit.frame_count());
  // All measurements recorded with per-frame configs.
  EXPECT_EQ(pipeline.tuner().history().size(), orbit.frame_count());
}

}  // namespace
}  // namespace kdtune
