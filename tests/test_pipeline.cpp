#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "scene/generators.hpp"

namespace kdtune {
namespace {

PipelineOptions small_opts() {
  PipelineOptions opts;
  opts.width = 40;
  opts.height = 30;
  return opts;
}

TEST(TunedPipeline, RegistersThreeParamsForEagerAlgorithms) {
  ThreadPool pool(0);
  for (Algorithm a : {Algorithm::kNodeLevel, Algorithm::kNested,
                      Algorithm::kInPlace}) {
    TunedPipeline p(a, pool, small_opts());
    EXPECT_EQ(p.tuner().parameter_count(), 3u) << to_string(a);
  }
  TunedPipeline lazy(Algorithm::kLazy, pool, small_opts());
  EXPECT_EQ(lazy.tuner().parameter_count(), 4u);
}

TEST(TunedPipeline, FrameReportIsCoherent) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.1f);
  TunedPipeline pipeline(Algorithm::kInPlace, pool, small_opts());
  const FrameReport r = pipeline.render_frame(scene);
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.render_seconds, 0.0);
  EXPECT_NEAR(r.total_seconds, r.build_seconds + r.render_seconds, 1e-9);
  EXPECT_GT(r.tree.node_count, 0u);
  // Config values within Table II ranges.
  EXPECT_GE(r.config.ci, 3);
  EXPECT_LE(r.config.ci, 101);
  EXPECT_GE(r.config.cb, 0);
  EXPECT_LE(r.config.cb, 60);
  EXPECT_GE(r.config.s, 1);
  EXPECT_LE(r.config.s, 8);
}

TEST(TunedPipeline, TunerIteratesAcrossFrames) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.08f);
  TunedPipeline pipeline(Algorithm::kNodeLevel, pool, small_opts());
  for (int i = 0; i < 5; ++i) pipeline.render_frame(scene);
  EXPECT_EQ(pipeline.tuner().iterations(), 5u);
  EXPECT_EQ(pipeline.tuner().history().size(), 5u);
}

TEST(TunedPipeline, PinnedConfigDoesNotTouchTuner) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.08f);
  TunedPipeline pipeline(Algorithm::kInPlace, pool, small_opts());
  BuildConfig pinned;
  pinned.ci = 50;
  const FrameReport r = pipeline.render_frame_with(scene, pinned);
  EXPECT_EQ(r.config.ci, 50);
  EXPECT_EQ(pipeline.tuner().iterations(), 0u);
}

TEST(TunedPipeline, LazyReportsExpansions) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.12f);
  TunedPipeline pipeline(Algorithm::kLazy, pool, small_opts());
  BuildConfig config;
  config.r = 64;  // force a deferred top so rendering expands something
  const FrameReport r = pipeline.render_frame_with(scene, config);
  EXPECT_GT(r.lazy_expansions, 0u);
}

TEST(TunedPipeline, BestConfigReflectsTunerBest) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.08f);
  TunedPipeline pipeline(Algorithm::kLazy, pool, small_opts());
  for (int i = 0; i < 6; ++i) pipeline.render_frame(scene);
  const BuildConfig best = pipeline.best_config();
  const auto values = pipeline.tuner().best_values();
  EXPECT_EQ(best.ci, values[0]);
  EXPECT_EQ(best.cb, values[1]);
  EXPECT_EQ(best.s, values[2]);
  EXPECT_EQ(best.r, values[3]);
}

TEST(TunedPipeline, FixedStrategyPinsTheBaseConfig) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.08f);
  PipelineOptions opts = small_opts();
  opts.strategy = make_fixed_search(base_config_point(Algorithm::kLazy));
  TunedPipeline pipeline(Algorithm::kLazy, pool, std::move(opts));
  const FrameReport r = pipeline.render_frame(scene);
  EXPECT_EQ(r.config.ci, kBaseConfig.ci);
  EXPECT_EQ(r.config.cb, kBaseConfig.cb);
  EXPECT_EQ(r.config.s, kBaseConfig.s);
  EXPECT_EQ(r.config.r, kBaseConfig.r);
}

TEST(TunedPipeline, ObjectiveSelectsTheMeasuredComponent) {
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.08f);
  for (const TuningObjective objective :
       {TuningObjective::kTotalTime, TuningObjective::kBuildTime,
        TuningObjective::kRenderTime}) {
    PipelineOptions opts = small_opts();
    opts.objective = objective;
    TunedPipeline pipeline(objective == TuningObjective::kBuildTime
                               ? Algorithm::kLazy
                               : Algorithm::kInPlace,
                           pool, std::move(opts));
    const FrameReport r = pipeline.render_frame(scene);
    const double recorded = pipeline.tuner().history().back().seconds;
    switch (objective) {
      case TuningObjective::kTotalTime:
        EXPECT_DOUBLE_EQ(recorded, r.total_seconds);
        break;
      case TuningObjective::kBuildTime:
        EXPECT_DOUBLE_EQ(recorded, r.build_seconds);
        break;
      case TuningObjective::kRenderTime:
        EXPECT_DOUBLE_EQ(recorded, r.render_seconds);
        break;
    }
  }
}

TEST(TunedPipeline, BuildObjectiveDrivesLazyTowardLargeR) {
  // When only construction time matters, the lazy builder's optimum is the
  // largest R (defer everything). The tuner should discover that.
  ThreadPool pool(0);
  const Scene scene = make_bunny(0.12f);
  PipelineOptions opts = small_opts();
  opts.objective = TuningObjective::kBuildTime;
  TunedPipeline pipeline(Algorithm::kLazy, pool, std::move(opts));
  for (int i = 0; i < 80 && !pipeline.tuner().converged(); ++i) {
    pipeline.render_frame(scene);
  }
  EXPECT_GE(pipeline.best_config().r, 1024);
}

TEST(BaseConfig, PointRoundTripsThroughRanges) {
  // base_config_point must map back to C_base through the registered grids.
  ThreadPool pool(0);
  for (Algorithm a : all_algorithms()) {
    BuildConfig config;
    Tuner tuner(make_fixed_search(base_config_point(a)));
    register_build_parameters(tuner, config, a);
    tuner.apply_next();
    EXPECT_EQ(config.ci, kBaseConfig.ci) << to_string(a);
    EXPECT_EQ(config.cb, kBaseConfig.cb) << to_string(a);
    EXPECT_EQ(config.s, kBaseConfig.s) << to_string(a);
    if (a == Algorithm::kLazy) {
      EXPECT_EQ(config.r, kBaseConfig.r);
    }
  }
}

}  // namespace
}  // namespace kdtune
