#include "dse/explore.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "geom/rng.hpp"
#include "kdtree/tree.hpp"
#include "scene/generators.hpp"
#include "serve/scene_registry.hpp"

namespace kdtune {
namespace {

ExploreOptions tiny_options() {
  ExploreOptions opts;
  opts.scenes = {"bunny"};
  opts.detail = 0.035f;
  opts.threads = 2;
  opts.grid = ExploreGrid::smoke();
  opts.build_rays = 32;
  opts.serve_requests = 32;
  return opts;
}

TEST(Explore, SmokeSweepPopulatesDatabase) {
  ConfigDatabase db;
  const ExploreOptions opts = tiny_options();
  const ExploreStats stats = run_explore(opts, db);
  // Smoke grid: 3 builders x 2 ci x 2 backends + 2 serve cells; exact
  // arithmetic pinned here so grid edits are noticed.
  EXPECT_EQ(stats.cells_total, 3u * 2u * 2u + 2u);
  EXPECT_EQ(stats.cells_run, stats.cells_total);
  EXPECT_EQ(stats.cells_skipped, 0u);
  EXPECT_GT(stats.db_updates, 0u);
  EXPECT_FALSE(db.empty());

  // Build entries collapse per (builder, backend) context with the fastest
  // configuration winning; serve entries land under the "serve" workload.
  bool saw_build = false, saw_serve = false;
  for (const ConfigDatabase::Entry* e : db.entries()) {
    if (e->workload == "build") saw_build = true;
    if (e->workload == "serve") saw_serve = true;
    EXPECT_EQ(e->scene, "bunny");
    EXPECT_GT(e->seconds, 0.0);
  }
  EXPECT_TRUE(saw_build);
  EXPECT_TRUE(saw_serve);
}

TEST(Explore, CheckpointsAndResumesViaProgressFile) {
  namespace fs = std::filesystem;
  const std::string db_path =
      (fs::path(::testing::TempDir()) / "kdtune_explore_db.jsonl").string();
  const std::string progress_path = db_path + ".progress";
  std::remove(db_path.c_str());
  std::remove(progress_path.c_str());

  ExploreOptions opts = tiny_options();
  opts.db_path = db_path;
  opts.max_cells = 3;  // interrupted run: only part of the grid measured

  ConfigDatabase db;
  const ExploreStats partial = run_explore(opts, db);
  EXPECT_EQ(partial.cells_run, 3u);
  EXPECT_TRUE(fs::exists(db_path));
  EXPECT_TRUE(fs::exists(progress_path));

  // Resume with a fresh process state: the finished cells are skipped, the
  // remainder measured, and the checkpoint database keeps growing.
  ConfigDatabase resumed;
  resumed.load_file(db_path);
  opts.max_cells = 0;
  const ExploreStats rest = run_explore(opts, resumed);
  EXPECT_EQ(rest.cells_skipped, 3u);
  EXPECT_EQ(rest.cells_run, rest.cells_total - 3u);

  // A third run has nothing left to do.
  const ExploreStats done = run_explore(opts, resumed);
  EXPECT_EQ(done.cells_run, 0u);
  EXPECT_EQ(done.cells_skipped, done.cells_total);
  EXPECT_FALSE(done.progress_invalidated);

  std::remove(db_path.c_str());
  std::remove(progress_path.c_str());
}

TEST(Explore, ResumeAfterGridChangeInvalidatesStaleProgress) {
  namespace fs = std::filesystem;
  const std::string db_path =
      (fs::path(::testing::TempDir()) / "kdtune_explore_stale.jsonl").string();
  const std::string progress_path = db_path + ".progress";
  std::remove(db_path.c_str());
  std::remove(progress_path.c_str());

  // Sweep a reduced grid to completion.
  ExploreOptions narrow = tiny_options();
  narrow.db_path = db_path;
  narrow.grid.builders = {"in-place"};
  ConfigDatabase db;
  const ExploreStats first = run_explore(narrow, db);
  EXPECT_FALSE(first.progress_invalidated);
  EXPECT_EQ(first.cells_run, first.cells_total);

  // Grow the builder axis and resume against the same progress file. The
  // old checkpoint was recorded under a different grid, so it must be
  // discarded (with a warning) and every cell of the new grid measured —
  // not just the ones whose keys happen to be new.
  ExploreOptions grown = narrow;
  grown.grid.builders = {"in-place", "balanced"};
  const ExploreStats second = run_explore(grown, db);
  EXPECT_TRUE(second.progress_invalidated);
  EXPECT_EQ(second.cells_skipped, 0u);
  EXPECT_EQ(second.cells_run, second.cells_total);
  EXPECT_GT(second.cells_total, first.cells_total);

  // The rewritten checkpoint carries the new grid's signature: an identical
  // follow-up run resumes cleanly and has nothing to measure.
  const ExploreStats third = run_explore(grown, db);
  EXPECT_FALSE(third.progress_invalidated);
  EXPECT_EQ(third.cells_run, 0u);
  EXPECT_EQ(third.cells_skipped, third.cells_total);

  // A header-less (pre-signature) progress file is also treated as stale.
  {
    std::ofstream legacy(progress_path, std::ios::trunc);
    legacy << "some-old-cell-key\n";
  }
  const ExploreStats legacy_run = run_explore(grown, db);
  EXPECT_TRUE(legacy_run.progress_invalidated);
  EXPECT_EQ(legacy_run.cells_skipped, 0u);

  std::remove(db_path.c_str());
  std::remove(progress_path.c_str());
}

TEST(Explore, RegistryConsultsDatabaseAndAnswersStayBitIdentical) {
  ThreadPool pool(2);
  const Scene scene = make_bunny(0.035f);
  const SceneFeatures features = SceneFeatures::extract(scene.triangles());
  const HardwareDescriptor hw =
      HardwareDescriptor::detect(pool.concurrency());

  // A database entry whose parameters match the swept best for this exact
  // context. Deliberately NOT C_base, so the admit path provably read it.
  ConfigDatabase db;
  ConfigDatabase::Entry entry;
  entry.workload = "build";
  entry.scene = "bunny";
  entry.builder = "in-place";
  entry.backend = "compact";
  entry.hw = hw;
  entry.features = features;
  entry.params = {{"ci", 29}, {"cb", 4}, {"s", 2}};
  entry.seconds = 0.001;
  db.store(entry);

  SceneRegistry with_db(pool);
  with_db.attach_database(&db);
  const auto snap_db = with_db.admit("bunny", scene);
  ASSERT_NE(snap_db, nullptr);
  // Exact-key hit: the stored configuration is reused directly.
  EXPECT_EQ(snap_db->config.ci, 29);
  EXPECT_EQ(snap_db->config.cb, 4);
  EXPECT_EQ(snap_db->config.s, 2);

  // Served answers must be bit-identical with and without the database:
  // build the same configuration without one and compare exact hits.
  SceneRegistry without_db(pool);
  AdmitOptions opts;
  opts.config = snap_db->config;
  const auto snap_plain = without_db.admit("bunny", scene, opts);
  ASSERT_NE(snap_plain, nullptr);

  Rng rng(7);
  const AABB bounds = scene.bounds();
  const Vec3 ext = bounds.extent();
  for (int i = 0; i < 64; ++i) {
    const Vec3 origin{bounds.lo.x - ext.x * 0.5f + rng.next_float() * ext.x,
                      bounds.lo.y + rng.next_float() * ext.y,
                      bounds.lo.z + rng.next_float() * ext.z};
    const Vec3 target{bounds.lo.x + rng.next_float() * ext.x,
                      bounds.lo.y + rng.next_float() * ext.y,
                      bounds.lo.z + rng.next_float() * ext.z};
    const Ray ray(origin, target - origin);
    const Hit a = snap_db->tree->closest_hit(ray);
    const Hit b = snap_plain->tree->closest_hit(ray);
    EXPECT_EQ(a.triangle, b.triangle);
    EXPECT_EQ(a.t, b.t);  // exact float equality, not approximate
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
  }
}

TEST(Explore, RecordTunedWritesBackToDatabase) {
  ThreadPool pool(2);
  ConfigDatabase db;
  SceneRegistry registry(pool);
  registry.attach_database(&db);
  registry.admit("bunny", make_bunny(0.035f));

  BuildConfig tuned = kBaseConfig;
  tuned.ci = 23;
  ASSERT_TRUE(registry.record_tuned("bunny", tuned, 0.004));
  ASSERT_EQ(db.size(), 1u);
  const ConfigDatabase::Entry* e = db.entries().front();
  EXPECT_EQ(e->workload, "build");
  EXPECT_EQ(e->builder, "in-place");
  EXPECT_EQ(e->params.front().first, "ci");
  EXPECT_EQ(e->params.front().second, 23);

  // keeps-if-faster: a slower later result does not displace the stored one.
  ASSERT_TRUE(registry.record_tuned("bunny", kBaseConfig, 0.9));
  EXPECT_EQ(db.entries().front()->params.front().second, 23);
}

}  // namespace
}  // namespace kdtune
