// The SAH cost model: equation 1, the termination criterion (equation 2), and
// plane evaluation including the planar-side choice.

#include "kdtree/sah.hpp"

#include <gtest/gtest.h>

namespace kdtune {
namespace {

const SahParams kParams{10.0, 17.0, 10.0};  // CT, CI, CB = the base config
const AABB kUnitBox({0, 0, 0}, {2, 1, 1});

TEST(Sah, LeafCostIsLinear) {
  EXPECT_DOUBLE_EQ(leaf_cost(kParams, 0), 0.0);
  EXPECT_DOUBLE_EQ(leaf_cost(kParams, 1), 17.0);
  EXPECT_DOUBLE_EQ(leaf_cost(kParams, 10), 170.0);
}

TEST(Sah, SplitCostMatchesEquation1) {
  // Split the 2x1x1 box at x=1 into two 1x1x1 halves: parent area is
  // 2*(2+1+2) = 10, each child's is 6, so p(l) = p(r) = 0.6.
  const auto [l, r] = kUnitBox.split(Axis::X, 1.0f);
  const double area_b = kUnitBox.surface_area();
  EXPECT_DOUBLE_EQ(area_b, 10.0);
  EXPECT_DOUBLE_EQ(l.surface_area(), 6.0);
  const double cost =
      split_cost(kParams, l.surface_area(), r.surface_area(), area_b,
                 /*nl=*/3, /*nr=*/4, /*nb=*/6);
  // CT + 0.6*3*17 + 0.6*4*17 + (3+4-6)*10
  EXPECT_NEAR(cost, 10.0 + 0.6 * 3 * 17 + 0.6 * 4 * 17 + 1 * 10, 1e-9);
}

TEST(Sah, NoDuplicationNoPenalty) {
  const auto [l, r] = kUnitBox.split(Axis::X, 1.0f);
  const double with = split_cost(kParams, l.surface_area(), r.surface_area(),
                                 kUnitBox.surface_area(), 3, 3, 6);
  SahParams no_cb = kParams;
  no_cb.cb = 0.0;
  const double without = split_cost(no_cb, l.surface_area(), r.surface_area(),
                                    kUnitBox.surface_area(), 3, 3, 6);
  EXPECT_DOUBLE_EQ(with, without);  // nl + nr == nb -> no CB term either way
}

TEST(Sah, DuplicationPenaltyGrowsWithCb) {
  const auto [l, r] = kUnitBox.split(Axis::X, 1.0f);
  SahParams cheap = kParams;
  cheap.cb = 0.0;
  SahParams dear = kParams;
  dear.cb = 60.0;
  const double c0 = split_cost(cheap, l.surface_area(), r.surface_area(),
                               kUnitBox.surface_area(), 5, 5, 6);
  const double c1 = split_cost(dear, l.surface_area(), r.surface_area(),
                               kUnitBox.surface_area(), 5, 5, 6);
  EXPECT_NEAR(c1 - c0, 4 * 60.0, 1e-9);  // 4 duplicated prims
}

TEST(Sah, DegenerateParentIsInfinitelyExpensive) {
  const double cost = split_cost(kParams, 1.0, 1.0, 0.0, 1, 1, 2);
  EXPECT_TRUE(std::isinf(cost));
}

TEST(Sah, EvaluatePlaneRejectsBoundaryPlanes) {
  EXPECT_FALSE(
      evaluate_plane(kParams, kUnitBox, Axis::X, 0.0f, 0, 0, 6, 6).valid());
  EXPECT_FALSE(
      evaluate_plane(kParams, kUnitBox, Axis::X, 2.0f, 6, 0, 0, 6).valid());
  EXPECT_FALSE(
      evaluate_plane(kParams, kUnitBox, Axis::X, -1.0f, 0, 0, 6, 6).valid());
}

TEST(Sah, EvaluatePlanePutsPlanarsOnEmptierCheaperSide) {
  // All 4 regular prims on the right, 2 planar: putting planars left gives
  // (2, 4); right gives (0, 6). With symmetric areas the left assignment is
  // cheaper (smaller sum of products... verify both costs explicitly).
  const SplitCandidate c =
      evaluate_plane(kParams, kUnitBox, Axis::X, 1.0f, 0, 2, 4, 6);
  ASSERT_TRUE(c.valid());
  const auto [l, r] = kUnitBox.split(Axis::X, 1.0f);
  const double left_cost = split_cost(kParams, l.surface_area(),
                                      r.surface_area(), 10.0, 2, 4, 6);
  const double right_cost = split_cost(kParams, l.surface_area(),
                                       r.surface_area(), 10.0, 0, 6, 6);
  EXPECT_DOUBLE_EQ(c.cost, std::min(left_cost, right_cost));
  EXPECT_EQ(c.planar_left, left_cost <= right_cost);
  EXPECT_EQ(c.nl + c.nr, 6u);
}

TEST(Sah, TerminationEquation2) {
  SplitCandidate best;
  best.cost = 100.0;
  // 5 prims: leaf cost 85 < 100 -> stop.
  EXPECT_TRUE(should_terminate(kParams, 5, best));
  // 7 prims: leaf cost 119 > 100 -> split.
  EXPECT_FALSE(should_terminate(kParams, 7, best));
  // No valid split -> always stop.
  EXPECT_TRUE(should_terminate(kParams, 1000, SplitCandidate{}));
}

TEST(Sah, FromConfigUsesFixedCt) {
  BuildConfig config;
  config.ci = 42;
  config.cb = 7;
  const SahParams p = SahParams::from_config(config);
  EXPECT_DOUBLE_EQ(p.ct, 10.0);
  EXPECT_DOUBLE_EQ(p.ci, 42.0);
  EXPECT_DOUBLE_EQ(p.cb, 7.0);
}

TEST(Sah, ResolvedMaxDepthGrowsWithLogN) {
  BuildConfig config;
  const int d1k = config.resolved_max_depth(1000);
  const int d1m = config.resolved_max_depth(1000000);
  EXPECT_GT(d1m, d1k);
  EXPECT_LE(d1m, 40);
  config.max_depth = 5;
  EXPECT_EQ(config.resolved_max_depth(1000000), 5);
}

}  // namespace
}  // namespace kdtune
