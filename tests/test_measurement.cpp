#include "tuning/measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace kdtune {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  sw.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = sw.elapsed();
  EXPECT_GE(t, 0.018);
  EXPECT_LT(t, 1.0);
}

TEST(SampleStats, EmptySample) {
  const SampleStats s = compute_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(SampleStats, SingleValue) {
  const std::vector<double> v{4.2};
  const SampleStats s = compute_stats(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.2);
  EXPECT_DOUBLE_EQ(s.median, 4.2);
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.max, 4.2);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
}

TEST(SampleStats, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const SampleStats s = compute_stats(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(SampleStats, OrderIndependent) {
  const std::vector<double> sorted{1, 2, 3, 4};
  const std::vector<double> shuffled{3, 1, 4, 2};
  const SampleStats a = compute_stats(sorted);
  const SampleStats b = compute_stats(shuffled);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.q1, b.q1);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(SampleStats, EvenCountMedianInterpolates) {
  const std::vector<double> v{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(compute_stats(v).median, 2.5);
}

TEST(SampleStats, MadIsRobustToOutliers) {
  const std::vector<double> clean{10, 10, 10, 10, 10};
  const std::vector<double> dirty{10, 10, 10, 10, 1000};
  EXPECT_DOUBLE_EQ(compute_stats(clean).mad, 0.0);
  EXPECT_DOUBLE_EQ(compute_stats(dirty).mad, 0.0);  // median deviation still 0
  EXPECT_GT(compute_stats(dirty).stddev, 100.0);    // stddev is not robust
}

TEST(SortedQuantile, Interpolation) {
  const std::vector<double> v{0, 10, 20, 30};
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.25), 7.5);
  EXPECT_DOUBLE_EQ(sorted_quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace kdtune
