// Search strategies on synthetic cost functions: the Nelder-Mead search must
// find near-optimal points of smooth landscapes quickly; exhaustive must
// enumerate exactly; random must respect its budget.

#include "tuning/search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace kdtune {
namespace {

/// Drives a strategy against a synthetic cost function until convergence (or
/// `cap` evaluations), returning the number of evaluations used.
template <typename Fn>
std::size_t drive(SearchStrategy& search, std::vector<std::int64_t> sizes,
                  Fn&& cost, std::size_t cap = 10000) {
  search.initialize(std::move(sizes));
  std::size_t evals = 0;
  while (!search.converged() && evals < cap) {
    const ConfigPoint p = search.propose();
    search.report(cost(p));
    ++evals;
  }
  return evals;
}

double bowl(const ConfigPoint& p, const std::vector<double>& target) {
  double sum = 1.0;
  for (std::size_t d = 0; d < p.size(); ++d) {
    const double delta = static_cast<double>(p[d]) - target[d];
    sum += delta * delta;
  }
  return sum;
}

TEST(NelderMead, FindsMinimumOfQuadraticBowl1D) {
  auto search = make_nelder_mead_search();
  drive(*search, {101}, [](const ConfigPoint& p) { return bowl(p, {70}); });
  EXPECT_TRUE(search->converged());
  EXPECT_NEAR(static_cast<double>(search->best()[0]), 70.0, 5.0);
}

TEST(NelderMead, FindsMinimumOfQuadraticBowl4D) {
  // The paper's search-space shape: 99 x 61 x 8 x 10.
  auto search = make_nelder_mead_search();
  const std::vector<double> target{40, 20, 5, 3};
  const std::size_t evals =
      drive(*search, {99, 61, 8, 10},
            [&](const ConfigPoint& p) { return bowl(p, target); });
  EXPECT_TRUE(search->converged());
  // Fast convergence matters online (paper: stable after ~40 iterations).
  EXPECT_LE(evals, 200u);
  const double final_cost = bowl(search->best(), target);
  const double worst_cost = bowl({0, 0, 0, 0}, target);
  EXPECT_LT(final_cost, worst_cost * 0.05);
}

TEST(NelderMead, ConvergesOnSeparableRidge) {
  auto search = make_nelder_mead_search();
  const auto cost = [](const ConfigPoint& p) {
    return std::abs(static_cast<double>(p[0]) - 10.0) +
           3.0 * std::abs(static_cast<double>(p[1]) - 44.0) + 1.0;
  };
  const std::size_t evals = drive(*search, {50, 50}, cost);
  EXPECT_LE(evals, 200u);  // default max_evaluations caps the search
  // The found point must be a large improvement over the worst corner.
  EXPECT_LT(cost(search->best()), 0.2 * cost({49, 0}));
}

TEST(NelderMead, DeterministicForSameSeed) {
  NelderMeadOptions opts;
  opts.seed = 99;
  auto a = make_nelder_mead_search(opts);
  auto b = make_nelder_mead_search(opts);
  const auto cost = [](const ConfigPoint& p) { return bowl(p, {30, 7}); };
  drive(*a, {60, 15}, cost);
  drive(*b, {60, 15}, cost);
  EXPECT_EQ(a->best(), b->best());
  EXPECT_EQ(a->best_time(), b->best_time());
}

TEST(NelderMead, TracksGlobalBestNotJustSimplex) {
  auto search = make_nelder_mead_search();
  search->initialize({1000});
  double best_seen = 1e18;
  for (int i = 0; i < 50 && !search->converged(); ++i) {
    const ConfigPoint p = search->propose();
    const double c = bowl(p, {123});
    best_seen = std::min(best_seen, c);
    search->report(c);
  }
  EXPECT_DOUBLE_EQ(search->best_time(), best_seen);
}

TEST(NelderMead, ConvergedProposesBestForever) {
  auto search = make_nelder_mead_search();
  drive(*search, {40}, [](const ConfigPoint& p) { return bowl(p, {12}); });
  ASSERT_TRUE(search->converged());
  const ConfigPoint best = search->best();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(search->propose(), best);
    search->report(1e6);  // converged reports are ignored
  }
  EXPECT_EQ(search->best(), best);
}

TEST(NelderMead, RestartKeepsBestAsSeed) {
  auto search = make_nelder_mead_search();
  drive(*search, {200}, [](const ConfigPoint& p) { return bowl(p, {150}); });
  const ConfigPoint best = search->best();
  search->restart();
  EXPECT_FALSE(search->converged());
  // First proposal after restart is the previous best (warm start).
  EXPECT_EQ(search->propose(), best);
}

TEST(NelderMead, HonorsMaxEvaluations) {
  NelderMeadOptions opts;
  opts.max_evaluations = 25;
  auto search = make_nelder_mead_search(opts);
  // A noisy cost function that never naturally converges.
  std::uint64_t state = 1;
  const std::size_t evals =
      drive(*search, {100, 100}, [&state](const ConfigPoint&) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return 1.0 + static_cast<double>(state >> 40);
      });
  EXPECT_EQ(evals, 25u);
  EXPECT_TRUE(search->converged());
}

TEST(ExhaustiveSearch, EnumeratesEveryPoint) {
  auto search = make_exhaustive_search();
  std::set<ConfigPoint> seen;
  search->initialize({3, 4});
  while (!search->converged()) {
    const ConfigPoint p = search->propose();
    seen.insert(p);
    search->report(static_cast<double>(p[0] * 10 + p[1]) + 1.0);
  }
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(search->best(), (ConfigPoint{0, 0}));
}

TEST(ExhaustiveSearch, FindsExactMinimum) {
  auto search = make_exhaustive_search();
  drive(*search, {20, 20},
        [](const ConfigPoint& p) { return bowl(p, {13, 4}); });
  EXPECT_EQ(search->best(), (ConfigPoint{13, 4}));
}

TEST(ExhaustiveSearch, StrideCoarsensTheGrid) {
  auto search = make_exhaustive_search({2, 3});
  std::size_t count = 0;
  search->initialize({10, 9});
  while (!search->converged()) {
    search->propose();
    search->report(1.0);
    ++count;
  }
  EXPECT_EQ(count, 5u * 3u);  // ceil(10/2) x ceil(9/3)
}

TEST(ExhaustiveSearch, StrideMismatchThrows) {
  auto search = make_exhaustive_search({2});
  EXPECT_THROW(search->initialize({10, 10}), std::invalid_argument);
}

TEST(RandomSearch, RespectsBudgetAndFindsDecentPoint) {
  auto search = make_random_search(300, 42);
  const std::size_t evals = drive(*search, {100, 100}, [](const ConfigPoint& p) {
    return bowl(p, {50, 50});
  });
  EXPECT_EQ(evals, 300u);
  EXPECT_TRUE(search->converged());
  EXPECT_LT(bowl(search->best(), {50, 50}), bowl({0, 0}, {50, 50}) * 0.5);
}

TEST(RandomSearch, ProposalsAreInRange) {
  auto search = make_random_search(100, 7);
  search->initialize({5, 3});
  for (int i = 0; i < 100; ++i) {
    const ConfigPoint p = search->propose();
    ASSERT_GE(p[0], 0);
    ASSERT_LT(p[0], 5);
    ASSERT_GE(p[1], 0);
    ASSERT_LT(p[1], 3);
    search->report(1.0);
  }
}

TEST(FixedSearch, AlwaysProposesItsPoint) {
  auto search = make_fixed_search({7, 2});
  search->initialize({10, 10});
  EXPECT_TRUE(search->converged());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(search->propose(), (ConfigPoint{7, 2}));
    search->report(5.0);
  }
  EXPECT_DOUBLE_EQ(search->best_time(), 5.0);
}

TEST(FixedSearch, ClampsAndValidates) {
  auto clamped = make_fixed_search({99, 99});
  clamped->initialize({10, 10});
  EXPECT_EQ(clamped->propose(), (ConfigPoint{9, 9}));

  auto wrong = make_fixed_search({1});
  EXPECT_THROW(wrong->initialize({10, 10}), std::invalid_argument);
}

}  // namespace
}  // namespace kdtune
