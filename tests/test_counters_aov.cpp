// Instrumented traversal (work counters) and the renderer's AOV modes.

#include <gtest/gtest.h>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "render/raycaster.hpp"
#include "scene/generators.hpp"

namespace kdtune {
namespace {

std::unique_ptr<KdTree> build_scene_tree(const Scene& scene,
                                         const BuildConfig& config = kBaseConfig) {
  ThreadPool pool(0);
  auto base = make_sweep_builder()->build(scene.triangles(), config, pool);
  return std::unique_ptr<KdTree>(dynamic_cast<KdTree*>(base.release()));
}

TEST(TraversalCounters, CountedHitMatchesPlainHit) {
  const Scene scene = make_scene("sponza", 0.12f)->frame(0);
  const auto tree = build_scene_tree(scene);
  const Camera camera(scene.camera(), 32, 24);
  for (int y = 0; y < 24; y += 3) {
    for (int x = 0; x < 32; x += 3) {
      const Ray ray = camera.primary_ray(x, y);
      TraversalCounters counters;
      const Hit counted = tree->closest_hit_counted(ray, counters);
      const Hit plain = tree->closest_hit(ray);
      ASSERT_EQ(counted.valid(), plain.valid());
      if (plain.valid()) {
        EXPECT_EQ(counted.triangle, plain.triangle);
        EXPECT_FLOAT_EQ(counted.t, plain.t);
      }
    }
  }
}

TEST(TraversalCounters, CountsArePlausible) {
  const Scene scene = make_scene("sibenik", 0.12f)->frame(0);
  const auto tree = build_scene_tree(scene);
  const Camera camera(scene.camera(), 16, 12);
  TraversalCounters total;
  std::size_t rays = 0;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 16; ++x) {
      TraversalCounters c;
      tree->closest_hit_counted(camera.primary_ray(x, y), c);
      // A ray that visits any leaf must have passed interior nodes (unless
      // the tree is a single leaf).
      if (c.leaves_visited > 0 && tree->nodes().size() > 1) {
        EXPECT_GT(c.interior_visited, 0u);
      }
      total += c;
      ++rays;
    }
  }
  EXPECT_GT(total.leaves_visited, 0u);
  EXPECT_GT(total.triangles_tested, 0u);
  // Sanity bound: no ray can visit more nodes than exist.
  EXPECT_LT(total.interior_visited, rays * tree->nodes().size());
}

TEST(TraversalCounters, MissingRayTouchesNothing) {
  const Scene scene = make_scene("bunny", 0.08f)->frame(0);
  const auto tree = build_scene_tree(scene);
  TraversalCounters c;
  const Hit hit =
      tree->closest_hit_counted(Ray({100, 100, 100}, {1, 0, 0}), c);
  EXPECT_FALSE(hit.valid());
  EXPECT_EQ(c.interior_visited + c.leaves_visited + c.triangles_tested, 0u);
}

TEST(TraversalCounters, HigherCiMeansDeeperTreesFewerTests) {
  // CI scales both the leaf cost and the intersection term of the split
  // cost; only CT stays fixed. So larger CI makes node traversal relatively
  // cheaper -> splitting pays off longer -> deeper trees with fewer triangle
  // tests per ray but more node visits. The counters must show that
  // direction (it is the mechanism the tuner exploits).
  const Scene scene = make_scene("sponza", 0.15f)->frame(0);
  BuildConfig low_ci;
  low_ci.ci = 3;    // CT dominates: stop early, big leaves
  BuildConfig high_ci;
  high_ci.ci = 101; // traversal relatively cheap: deep tree, small leaves
  const auto shallow_tree = build_scene_tree(scene, low_ci);
  const auto deep_tree = build_scene_tree(scene, high_ci);
  EXPECT_GT(deep_tree->stats().node_count, shallow_tree->stats().node_count);

  const Camera camera(scene.camera(), 24, 18);
  TraversalCounters deep, shallow;
  for (int y = 0; y < 18; ++y) {
    for (int x = 0; x < 24; ++x) {
      const Ray ray = camera.primary_ray(x, y);
      deep_tree->closest_hit_counted(ray, deep);
      shallow_tree->closest_hit_counted(ray, shallow);
    }
  }
  EXPECT_GT(deep.interior_visited, shallow.interior_visited);
  EXPECT_LT(deep.triangles_tested, shallow.triangles_tested);
}

TEST(RenderModes, DepthAndNormalsProduceDistinctImages) {
  const Scene scene = make_scene("wood_doll", 0.15f)->frame(0);
  ThreadPool pool(0);
  const auto tree = make_builder(Algorithm::kInPlace)
                        ->build(scene.triangles(), kBaseConfig, pool);
  const Camera camera(scene.camera(), 32, 24);

  Framebuffer shaded(32, 24), depth(32, 24), normals(32, 24);
  RenderOptions opts;
  render(*tree, scene, camera, shaded, pool, opts);
  opts.mode = RenderMode::kDepth;
  render(*tree, scene, camera, depth, pool, opts);
  opts.mode = RenderMode::kNormals;
  render(*tree, scene, camera, normals, pool, opts);

  EXPECT_NE(shaded.checksum(), depth.checksum());
  EXPECT_NE(shaded.checksum(), normals.checksum());
  EXPECT_NE(depth.checksum(), normals.checksum());
}

TEST(RenderModes, DepthIsMonotonicWithDistance) {
  // Two big walls at different depths, both spanning the full view; render
  // them separately and compare the center pixel: nearer = brighter.
  const auto wall_scene = [](float z) {
    Scene scene("wall");
    scene.mutable_triangles() = {
        {{-20, -20, z}, {20, -20, z}, {20, 20, z}},
        {{-20, -20, z}, {20, 20, z}, {-20, 20, z}},
    };
    scene.set_camera({{0, 0, -2}, {0, 0, 1}, {0, 1, 0}, 60.0f});
    return scene;
  };
  ThreadPool pool(0);
  RenderOptions opts;
  opts.mode = RenderMode::kDepth;

  float values[2];
  int i = 0;
  for (const float z : {2.0f, 8.0f}) {
    const Scene scene = wall_scene(z);
    const auto tree =
        make_sweep_builder()->build(scene.triangles(), kBaseConfig, pool);
    const Camera camera(scene.camera(), 16, 12);
    Framebuffer fb(16, 12);
    render(*tree, scene, camera, fb, pool, opts);
    values[i++] = fb.at(8, 6).x;
  }
  ASSERT_GT(values[0], 0.1f);  // both walls actually hit
  ASSERT_GT(values[1], 0.1f);
  EXPECT_GT(values[0], values[1]);  // near wall brighter
}

TEST(RenderModes, NormalsEncodeOrientation) {
  // A floor facing +y: normal (0,1,0) encodes to (0.5, 1.0, 0.5).
  Scene scene("floor");
  scene.mutable_triangles() = {
      {{-5, 0, -5}, {5, 0, -5}, {5, 0, 5}},
      {{-5, 0, -5}, {5, 0, 5}, {-5, 0, 5}},
  };
  scene.set_camera({{0, 3, 0.1f}, {0, 0, 0}, {0, 0, -1}, 60.0f});
  ThreadPool pool(0);
  const auto tree =
      make_sweep_builder()->build(scene.triangles(), kBaseConfig, pool);
  const Camera camera(scene.camera(), 16, 12);
  Framebuffer fb(16, 12);
  RenderOptions opts;
  opts.mode = RenderMode::kNormals;
  render(*tree, scene, camera, fb, pool, opts);
  const Vec3 c = fb.at(8, 6);
  EXPECT_NEAR(c.x, 0.5f, 1e-3f);
  EXPECT_NEAR(c.y, 1.0f, 1e-3f);
  EXPECT_NEAR(c.z, 0.5f, 1e-3f);
}

}  // namespace
}  // namespace kdtune
