#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/query_backend.hpp"
#include "kdtree/wide_tree.hpp"
#include "obs/tuner_log.hpp"
#include "parallel/thread_pool.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {
namespace {

// ---------------------------------------------------------------------------
// A minimal strict JSON parser — enough to assert that the trace exporter and
// the tuner log emit well-formed JSON without pulling in a dependency. It
// validates the full grammar we use (objects, arrays, strings with escapes,
// numbers, true/false/null) and reports the element count of the
// "traceEvents" array when it meets one.
class MiniJson {
 public:
  explicit MiniJson(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return p_ == end_;
  }

  long trace_events = -1;  ///< -1: no "traceEvents" array seen

 private:
  bool peek(char c) const { return p_ < end_ && *p_ == c; }
  bool expect(char c) {
    if (!peek(c)) return false;
    ++p_;
    return true;
  }
  void skip_ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool literal(const char* s) {
    for (; *s != '\0'; ++s) {
      if (p_ == end_ || *p_ != *s) return false;
      ++p_;
    }
    return true;
  }

  bool parse_value() {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return parse_object();
      case '[': {
        long n = 0;
        return parse_array(&n);
      }
      case '"': return parse_string(nullptr);
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    if (!expect('{')) return false;
    skip_ws();
    if (expect('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (key == "traceEvents" && peek('[')) {
        long n = 0;
        if (!parse_array(&n)) return false;
        trace_events = n;
      } else if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (expect(',')) continue;
      return expect('}');
    }
  }

  bool parse_array(long* count) {
    if (!expect('[')) return false;
    skip_ws();
    *count = 0;
    if (expect(']')) return true;
    for (;;) {
      if (!parse_value()) return false;
      ++*count;
      skip_ws();
      if (expect(',')) continue;
      return expect(']');
    }
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      if (out != nullptr) out->push_back(*p_);
      ++p_;
    }
    return expect('"');
  }

  bool parse_number() {
    const char* start = p_;
    if (peek('-')) ++p_;
    bool digits = false;
    while (p_ < end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      digits = true;
      ++p_;
    }
    return digits && p_ != start;
  }

  const char* p_;
  const char* end_;
};

/// Enables tracing for one test and restores the disabled default (and an
/// empty buffer) however the test exits.
class ScopedTracing {
 public:
  ScopedTracing() {
    TraceRecorder::instance().reset();
    TraceRecorder::instance().set_enabled(true);
  }
  ~ScopedTracing() {
    TraceRecorder::instance().set_enabled(false);
    TraceRecorder::instance().reset();
  }
};

using Event = TraceRecorder::Event;
using Phase = TraceRecorder::Phase;

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.reset();
  ASSERT_FALSE(recorder.enabled());
  const std::size_t before = recorder.event_count();
  {
    TraceSpan span("test.noop", "test");
    trace_instant("test.noop_instant", "test");
    trace_counter("test.noop_counter", 1.0, "test");
  }
  EXPECT_EQ(recorder.event_count(), before);
}

TEST(TraceRecorder, SpansNestAndBalancePerThread) {
  ScopedTracing tracing;
  ThreadPool pool(3);

  {
    TraceSpan outer("test.outer", "test");
    trace_instant("test.mark", "test");
    {
      TraceSpan inner("test.inner", "test");
      trace_counter("test.depth", 2.0, "test");
    }
  }
  // Pool tasks produce spans on worker threads (pool.task wraps each task).
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.run([] { TraceSpan span("test.task_body", "test"); });
  }
  group.wait();

  const auto threads = TraceRecorder::instance().snapshot();
  ASSERT_FALSE(threads.empty());
  std::size_t total = 0;
  for (const auto& [tid, events] : threads) {
    int depth = 0;
    std::int64_t last_ts = 0;
    for (const Event& e : events) {
      EXPECT_GE(e.ts_ns, last_ts) << "timestamps monotone within thread";
      last_ts = e.ts_ns;
      if (e.phase == Phase::kBegin) {
        ASSERT_NE(e.name, nullptr);
        ++depth;
      } else if (e.phase == Phase::kEnd) {
        --depth;
        ASSERT_GE(depth, 0) << "E without matching B on tid " << tid;
      }
      ++total;
    }
    EXPECT_EQ(depth, 0) << "unbalanced spans on tid " << tid;
  }
  // 2 B/E pairs + 2 instants/counters on this thread, plus >= 16 task-body
  // pairs and their pool.task wrappers on the workers.
  EXPECT_GE(total, 4u + 2u + 16u * 2u);
  EXPECT_EQ(total, TraceRecorder::instance().event_count());
}

TEST(TraceRecorder, SpanStillClosesWhenDisabledMidSpan) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.reset();
  recorder.set_enabled(true);
  {
    TraceSpan span("test.cut", "test");
    recorder.set_enabled(false);  // e.g. a tool finishing its run mid-span
  }
  const auto threads = recorder.snapshot();
  int begins = 0, ends = 0;
  for (const auto& [tid, events] : threads) {
    for (const Event& e : events) {
      begins += e.phase == Phase::kBegin;
      ends += e.phase == Phase::kEnd;
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);  // the armed span emits its E regardless
  recorder.reset();
}

TEST(TraceRecorder, ExportsParseableChromeTraceJson) {
  ScopedTracing tracing;
  ThreadPool pool(2);
  {
    TraceSpan span("test.export \"quoted\"\n", "test");  // escaping path
    trace_counter("test.value", 42.5, "test");
  }
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([] { TraceSpan span("test.worker", "test"); });
  }
  group.wait();

  const std::string json = TraceRecorder::instance().to_json();
  MiniJson parser(json);
  ASSERT_TRUE(parser.parse()) << json.substr(0, 400);
  EXPECT_EQ(parser.trace_events,
            static_cast<long>(TraceRecorder::instance().event_count()));
  // Counter payload serialized under args.value.
  EXPECT_NE(json.find("\"args\":{\"value\":42.5}"), std::string::npos);
  // Only Chrome phases we emit.
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceRecorder, CounterCarriesValue) {
  ScopedTracing tracing;
  trace_counter("test.queue", 7.0, "test");
  bool found = false;
  for (const auto& [tid, events] : TraceRecorder::instance().snapshot()) {
    for (const Event& e : events) {
      if (e.phase == Phase::kCounter &&
          std::string_view(e.name) == "test.queue") {
        EXPECT_EQ(e.value, 7.0);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(TunerLog, WritesOneValidJsonlLinePerIteration) {
  const std::string path = ::testing::TempDir() + "/kdtune_tuner_log.jsonl";
  TunerLog log;
  ASSERT_TRUE(log.open(path));

  std::int64_t alpha = 0, beta = 0;
  Tuner tuner;
  tuner.register_parameter(&alpha, 1, 8, 1, "alpha");
  tuner.register_parameter_pow2(&beta, 1, 16, "beta");
  tuner.set_log(&log, "test-tuner");

  tuner.apply_next();
  for (int i = 0; i < 6; ++i) {
    tuner.record(0.01 * static_cast<double>(alpha + beta));
  }
  tuner.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(log.records(), 7u);
  log.close();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 7u);

  int accepted = 0, nan_rejected = 0;
  for (const std::string& line : lines) {
    MiniJson parser(line);
    EXPECT_TRUE(parser.parse()) << line;
    EXPECT_NE(line.find("\"tuner\":\"test-tuner\""), std::string::npos);
    EXPECT_NE(line.find("\"alpha\":"), std::string::npos);
    EXPECT_NE(line.find("\"beta\":"), std::string::npos);
    accepted += line.find("\"status\":\"accepted\"") != std::string::npos;
    nan_rejected +=
        line.find("\"status\":\"nan-rejected\"") != std::string::npos;
  }
  EXPECT_GE(accepted, 1);  // the first finite sample always improves on +inf
  EXPECT_EQ(nan_rejected, 1);
  // The NaN iteration must not leak a bare NaN into the JSON.
  EXPECT_NE(lines.back().find("\"seconds\":null"), std::string::npos);
  EXPECT_EQ(lines.back().find("nan,"), std::string::npos);

  std::remove(path.c_str());
}

TEST(TunerLog, SecondsRoundTripBitExactInLog) {
  // The log writes seconds with max_digits10 — the same guarantee as
  // ConfigCache::save(), pinned here for the log's schema.
  const std::string path = ::testing::TempDir() + "/kdtune_tuner_log2.jsonl";
  TunerLog log;
  ASSERT_TRUE(log.open(path));
  const double nasty = 0.1 + 0.2;  // 0.30000000000000004
  TunerLog::Record rec;
  rec.tuner = "t";
  rec.params = {{"p", 1}};
  rec.seconds = nasty;
  rec.status = "accepted";
  rec.phase = "search";
  log.log(rec);
  log.close();

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const std::size_t at = line.find("\"seconds\":");
  ASSERT_NE(at, std::string::npos);
  const double back = std::strtod(line.c_str() + at + 10, nullptr);
  EXPECT_EQ(back, nasty);  // bit-exact, not approximately equal
  std::remove(path.c_str());
}

TEST(TunerLog, BackendFieldDecodesQueryBackendDimension) {
  // When the tuner searches a `query_backend` dimension, every decision line
  // carries the decoded layout name — the greppable schema the serving docs
  // promise. Other dimensions must not produce the field.
  const std::string path = ::testing::TempDir() + "/kdtune_tuner_log3.jsonl";
  TunerLog log;
  ASSERT_TRUE(log.open(path));

  std::int64_t batch = 0, backend = 0;
  Tuner tuner;
  tuner.register_parameter(&batch, 1, 4, 1, "batch");
  tuner.register_parameter(&backend, 0, kQueryBackendCount - 1, 1,
                           kQueryBackendParam);
  tuner.set_log(&log, "serve-test");
  tuner.apply_next();
  for (int i = 0; i < 5; ++i) tuner.record(1.0);
  log.close();

  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ++lines;
    MiniJson parser(line);
    EXPECT_TRUE(parser.parse()) << line;
    const std::size_t at = line.find("\"backend\":\"");
    ASSERT_NE(at, std::string::npos) << line;
    const std::string name =
        line.substr(at + 11, line.find('"', at + 11) - (at + 11));
    QueryBackend decoded = QueryBackend::kCompact;
    EXPECT_TRUE(backend_from_string(name, decoded)) << name;
    // The field mirrors the query_backend parameter value on the same line.
    EXPECT_NE(line.find("\"query_backend\":" +
                        std::to_string(static_cast<std::int64_t>(decoded))),
              std::string::npos)
        << line;
  }
  EXPECT_EQ(lines, 5u);
  std::remove(path.c_str());
}

TEST(TraceRecorder, WideCollapseEmitsBuildSpan) {
  ScopedTracing tracing;
  {
    Rng rng(5);
    std::vector<Triangle> tris;
    for (int i = 0; i < 64; ++i) {
      const Vec3 a{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
      tris.push_back({a, a + Vec3{0.3f, 0, 0}, a + Vec3{0, 0.3f, 0}});
    }
    ThreadPool pool(0);
    const auto base = make_sweep_builder()->build(tris, kBaseConfig, pool);
    const auto compact = std::make_shared<const CompactKdTree>(
        dynamic_cast<const KdTree&>(*base));
    WideKdTree4 w4(compact);
    WideKdTree8 w8(compact);
  }
  // Both collapse widths report into the build layer, spans balanced. End
  // events carry no name, so spans are paired through a begin stack.
  int open4 = 0, open8 = 0, close4 = 0, close8 = 0;
  for (const auto& [tid, events] : TraceRecorder::instance().snapshot()) {
    std::vector<std::string_view> begins;
    for (const Event& e : events) {
      if (e.phase == Phase::kBegin) {
        const std::string_view name(e.name);
        if (name == "build.emit_wide4") {
          EXPECT_STREQ(e.cat, "build");
          ++open4;
        } else if (name == "build.emit_wide8") {
          EXPECT_STREQ(e.cat, "build");
          ++open8;
        }
        begins.push_back(name);
      } else if (e.phase == Phase::kEnd) {
        ASSERT_FALSE(begins.empty());
        close4 += begins.back() == "build.emit_wide4";
        close8 += begins.back() == "build.emit_wide8";
        begins.pop_back();
      }
    }
    EXPECT_TRUE(begins.empty()) << "unbalanced spans on tid " << tid;
  }
  EXPECT_EQ(open4, 1);
  EXPECT_EQ(close4, 1);
  EXPECT_EQ(open8, 1);
  EXPECT_EQ(close8, 1);
}

}  // namespace
}  // namespace kdtune
