// Randomized cross-cutting sweep: random geometry x random configurations x
// every builder, oracle-checked. Each seed generates a different soup shape
// (uniform, clustered, flat, elongated, mixed-scale) and a random point in
// the Table II configuration space, catching interactions no directed test
// enumerates.

#include <gtest/gtest.h>

#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> fuzz_geometry(Rng& rng) {
  const int shape = static_cast<int>(rng.next_int(0, 4));
  const std::size_t n = static_cast<std::size_t>(rng.next_int(2, 250));
  std::vector<Triangle> tris;
  tris.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 base;
    float scale = 0.4f;
    switch (shape) {
      case 0:  // uniform cloud
        base = {rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
        break;
      case 1:  // tight cluster + outliers
        if (i % 10 == 0) {
          base = {rng.uniform(-20, 20), rng.uniform(-20, 20),
                  rng.uniform(-20, 20)};
        } else {
          base = {rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                  rng.uniform(-0.5f, 0.5f)};
        }
        break;
      case 2:  // flat sheet (z ~ 0)
        base = {rng.uniform(-5, 5), rng.uniform(-5, 5),
                rng.uniform(-0.01f, 0.01f)};
        scale = 0.6f;
        break;
      case 3:  // elongated tube along x
        base = {rng.uniform(-50, 50), rng.uniform(-1, 1), rng.uniform(-1, 1)};
        break;
      default:  // mixed triangle sizes over 3 orders of magnitude
        base = {rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
        scale = rng.next_float() < 0.3f ? 3.0f : 0.02f;
        break;
    }
    tris.push_back(
        {base,
         base + Vec3{rng.uniform(-scale, scale), rng.uniform(-scale, scale),
                     rng.uniform(-scale, scale)},
         base + Vec3{rng.uniform(-scale, scale), rng.uniform(-scale, scale),
                     rng.uniform(-scale, scale)}});
  }
  // Sprinkle degenerates: builders must skip them silently.
  if (n > 10) {
    tris[n / 2] = {tris[0].a, tris[0].a, tris[0].a};
  }
  return tris;
}

BuildConfig fuzz_config(Rng& rng) {
  BuildConfig config;
  config.ci = rng.next_int(3, 101);
  config.cb = rng.next_int(0, 60);
  config.s = rng.next_int(1, 8);
  config.r = 16ll << rng.next_int(0, 9);
  config.bin_count = static_cast<int>(rng.next_int(4, 64));
  config.empty_bonus = rng.next_float() < 0.5f ? 0.0 : rng.next_double() * 0.9;
  config.clip_straddlers = rng.next_float() < 0.8f;
  return config;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, AllBuildersMatchOracle) {
  Rng rng(GetParam() * 7919 + 17);
  const auto tris = fuzz_geometry(rng);
  const BuildConfig config = fuzz_config(rng);
  const unsigned workers = static_cast<unsigned>(rng.next_int(0, 3));
  ThreadPool pool(workers);

  std::vector<std::unique_ptr<KdTreeBase>> trees;
  trees.push_back(make_sweep_builder()->build(tris, config, pool));
  trees.push_back(make_event_builder()->build(tris, config, pool));
  for (const Algorithm a : all_algorithms()) {
    trees.push_back(make_builder(a)->build(tris, config, pool));
  }

  AABB box = bounds_of(tris);
  if (box.empty()) box = AABB({-1, -1, -1}, {1, 1, 1});
  for (int i = 0; i < 40; ++i) {
    const Vec3 origin =
        box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                       rng.uniform(-1, 1)}) *
                           (length(box.extent()) * 0.8f + 1.0f);
    const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                      rng.uniform(box.lo.y, box.hi.y),
                      rng.uniform(box.lo.z, box.hi.z)};
    const Vec3 dir = target - origin;
    if (length(dir) == 0.0f) continue;
    const Ray ray(origin, normalized(dir));
    const Hit expected = brute_force_closest_hit(ray, tris);
    for (const auto& tree : trees) {
      const Hit got = tree->closest_hit(ray);
      ASSERT_EQ(got.valid(), expected.valid())
          << "seed " << GetParam() << " ray " << i;
      if (expected.valid()) {
        ASSERT_NEAR(got.t, expected.t, 1e-3f)
            << "seed " << GetParam() << " ray " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace kdtune
