#include "shard/shard_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <limits>
#include <memory>
#include <vector>

#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "parallel/thread_pool.hpp"

namespace kdtune {
namespace {

std::vector<Triangle> soup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triangle> tris;
  tris.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 a{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    const Vec3 e1{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 e2{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    tris.push_back({a, a + e1, a + e2});
  }
  return tris;
}

Ray random_ray(Rng& rng) {
  const Vec3 origin{rng.uniform(-25, 25), rng.uniform(-25, 25),
                    rng.uniform(-25, 25)};
  const Vec3 target{rng.uniform(-10, 10), rng.uniform(-10, 10),
                    rng.uniform(-10, 10)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

/// Fires every query family at the router and asserts bit-identity against
/// direct queries on the single reference tree. `queries` scales the load.
void expect_bit_identical(ShardRouter& router, const KdTreeBase& reference,
                          std::uint64_t seed, int queries) {
  Rng rng(seed);
  for (int i = 0; i < queries; ++i) {
    const Ray ray = random_ray(rng);
    const QueryResponse ch = router.submit_closest_hit("t", ray).get();
    ASSERT_EQ(ch.status, QueryStatus::kOk);
    const Hit want = reference.closest_hit(ray);
    EXPECT_EQ(ch.hit.triangle, want.triangle);
    EXPECT_EQ(ch.hit.t, want.t);
    EXPECT_EQ(ch.hit.u, want.u);
    EXPECT_EQ(ch.hit.v, want.v);

    const QueryResponse ah = router.submit_any_hit("t", ray).get();
    ASSERT_EQ(ah.status, QueryStatus::kOk);
    EXPECT_EQ(ah.any, reference.any_hit(ray));

    const Vec3 point{rng.uniform(-12, 12), rng.uniform(-12, 12),
                     rng.uniform(-12, 12)};
    const Vec3 half{rng.uniform(0.5f, 3.0f), rng.uniform(0.5f, 3.0f),
                    rng.uniform(0.5f, 3.0f)};
    const AABB box{point - half, point + half};
    const QueryResponse rq = router.submit_range("t", box).get();
    ASSERT_EQ(rq.status, QueryStatus::kOk);
    std::vector<std::uint32_t> want_ids;
    reference.query_range(box, want_ids);
    EXPECT_EQ(rq.range_ids, want_ids);

    const float radius = rng.uniform(1.0f, 8.0f);
    const QueryResponse knn = router.submit_nearest("t", point, 4, radius).get();
    ASSERT_EQ(knn.status, QueryStatus::kOk);
    std::vector<NearestResult> want_nn;
    reference.nearest_k(point, 4, want_nn, radius);
    ASSERT_EQ(knn.neighbors.size(), want_nn.size());
    for (std::size_t j = 0; j < want_nn.size(); ++j) {
      EXPECT_EQ(knn.neighbors[j].triangle, want_nn[j].triangle);
      EXPECT_EQ(knn.neighbors[j].distance_sq, want_nn[j].distance_sq);
    }

    const QueryResponse cp =
        router.submit_closest_point("t", point, radius).get();
    ASSERT_EQ(cp.status, QueryStatus::kOk);
    const NearestResult want_cp = reference.nearest_within(point, radius);
    EXPECT_EQ(cp.nearest.triangle, want_cp.triangle);
    EXPECT_EQ(cp.nearest.distance_sq, want_cp.distance_sq);
  }
  // Packets: several rays per request, merged per-lane.
  for (int i = 0; i < std::max(1, queries / 4); ++i) {
    std::vector<Ray> rays;
    for (int j = 0; j < 8; ++j) rays.push_back(random_ray(rng));
    const QueryResponse pk = router.submit_packet("t", rays).get();
    ASSERT_EQ(pk.status, QueryStatus::kOk);
    ASSERT_EQ(pk.hits.size(), rays.size());
    for (std::size_t j = 0; j < rays.size(); ++j) {
      const Hit want = reference.closest_hit(rays[j]);
      EXPECT_EQ(pk.hits[j].triangle, want.triangle);
      EXPECT_EQ(pk.hits[j].t, want.t);
    }
  }
}

struct RouterFixture {
  std::vector<Triangle> tris = soup(400, 42);
  ThreadPool single{0};
  std::unique_ptr<KdTreeBase> reference =
      make_sweep_builder()->build(tris, kBaseConfig, single);
};

TEST(ShardRouter, BitIdenticalToUnshardedAcrossShardCounts) {
  RouterFixture f;
  for (const int k : {1, 2, 4, 8}) {
    ShardRouterOptions opts;
    opts.shard_count = k;
    ShardRouter router(f.tris, opts);
    EXPECT_EQ(router.shard_count(), k);
    expect_bit_identical(router, *f.reference, 7u + static_cast<unsigned>(k),
                         32);
  }
}

TEST(ShardRouter, FanoutCapPreservesAnswers) {
  RouterFixture f;
  ShardRouterOptions opts;
  opts.shard_count = 8;
  ShardRouter router(f.tris, opts);
  // Serializing the fan-out (one shard per wave) changes scheduling only —
  // never the merged answer.
  router.set_fanout_cap(1);
  EXPECT_EQ(router.fanout_cap(), 1);
  expect_bit_identical(router, *f.reference, 11, 16);
  router.set_fanout_cap(2);
  expect_bit_identical(router, *f.reference, 12, 16);
  const ShardRouterStats stats = router.stats();
  EXPECT_GT(stats.subqueries, stats.completed);  // K=8 really fanned out
}

TEST(ShardRouter, LiveShardCountSwapKeepsServing) {
  RouterFixture f;
  ShardRouterOptions opts;
  opts.shard_count = 1;
  ShardRouter router(f.tris, opts);
  expect_bit_identical(router, *f.reference, 21, 8);
  router.set_shard_count(4);
  EXPECT_EQ(router.shard_count(), 4);
  expect_bit_identical(router, *f.reference, 22, 8);
  router.set_shard_count(9);  // clamps to pow2
  EXPECT_EQ(router.shard_count(), 8);
  expect_bit_identical(router, *f.reference, 23, 8);
  const ShardRouterStats stats = router.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ShardRouter, QuotaRejectsTaggedTenantOnly) {
  RouterFixture f;
  ShardRouterOptions opts;
  opts.shard_count = 2;
  ShardRouter router(f.tris, opts);
  router.set_quota("greedy", TenantQuota{0.0, 1.0, Priority::kBatch});
  Rng rng(31);

  std::uint64_t greedy_ok = 0, greedy_quota = 0;
  for (int i = 0; i < 20; ++i) {
    const QueryResponse r =
        router.submit_closest_hit("greedy", random_ray(rng)).get();
    if (r.status == QueryStatus::kOk) ++greedy_ok;
    if (r.status == QueryStatus::kRejectedQuota) ++greedy_quota;
  }
  EXPECT_EQ(greedy_ok, 1u);      // the single burst token
  EXPECT_EQ(greedy_quota, 19u);  // everything past it bounces immediately
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router.submit_closest_hit("polite", random_ray(rng)).get().status,
              QueryStatus::kOk);
  }

  const ShardRouterStats stats = router.stats();
  EXPECT_EQ(stats.rejected_quota, 19u);
  EXPECT_EQ(stats.rejected, stats.rejected_quota);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].tenant, "greedy");
  EXPECT_EQ(stats.tenants[0].rejected_quota, 19u);
  EXPECT_EQ(stats.tenants[1].tenant, "polite");
  EXPECT_EQ(stats.tenants[1].rejected_quota, 0u);
  EXPECT_EQ(stats.tenants[1].completed, 20u);
}

TEST(ShardRouter, ZeroQueueRejectsWithOverflow) {
  RouterFixture f;
  ShardRouterOptions opts;
  opts.shard_count = 2;
  opts.max_queue = 0;
  ShardRouter router(f.tris, opts);
  Rng rng(33);
  const QueryResponse r = router.submit_closest_hit("t", random_ray(rng)).get();
  EXPECT_EQ(r.status, QueryStatus::kRejectedOverflow);
  EXPECT_EQ(router.stats().rejected_overflow, 1u);
}

TEST(ShardRouter, ShutdownRejectsNewWorkButResolvesFutures) {
  RouterFixture f;
  ShardRouter router(f.tris, ShardRouterOptions{});
  router.shutdown();
  EXPECT_FALSE(router.accepting());
  Rng rng(34);
  const QueryResponse r = router.submit_closest_hit("t", random_ray(rng)).get();
  EXPECT_EQ(r.status, QueryStatus::kShutdown);
  router.shutdown();  // idempotent
}

TEST(ShardRouter, StatsJsonCarriesTheSchema) {
  RouterFixture f;
  ShardRouterOptions opts;
  opts.shard_count = 4;
  ShardRouter router(f.tris, opts);
  Rng rng(35);
  router.submit_closest_hit("t", random_ray(rng)).get();
  const std::string json = router.stats_json();
  for (const char* key :
       {"\"shard_count\":4", "\"fanout_cap\":", "\"rejected_overflow\":",
        "\"rejected_quota\":", "\"mean_fanout\":", "\"tenants\":[",
        "\"shards\":[", "\"alive\":", "\"rerouted\":", "\"p99_us\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

#ifdef KDTUNE_SHARDD_PATH
TEST(ShardRouterProcess, BitIdenticalAndSurvivesWorkerDeath) {
  RouterFixture f;
  ShardRouterOptions opts;
  opts.shard_count = 2;
  opts.process_workers = true;
  opts.worker_path = KDTUNE_SHARDD_PATH;
  ShardRouter router(f.tris, opts);
  expect_bit_identical(router, *f.reference, 51, 16);
  {
    const ShardRouterStats stats = router.stats();
    ASSERT_EQ(stats.shards.size(), 2u);
    EXPECT_TRUE(stats.shards[0].alive);
    EXPECT_EQ(stats.rerouted, 0u);
  }

  // SIGKILL shard 0's child: the worker degrades to the retained in-parent
  // fallback tree and the router keeps returning bit-identical answers.
  router.kill_worker(0);
  expect_bit_identical(router, *f.reference, 52, 16);
  const ShardRouterStats stats = router.stats();
  EXPECT_FALSE(stats.shards[0].alive);
  EXPECT_TRUE(stats.shards[1].alive);
  EXPECT_GT(stats.rerouted, 0u);
  EXPECT_EQ(stats.failed, 0u);
  router.shutdown();  // must reap the surviving child without hanging
}
#endif  // KDTUNE_SHARDD_PATH

}  // namespace
}  // namespace kdtune
