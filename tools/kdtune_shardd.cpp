// kdtune_shardd — one shard's worker process.
//
// Speaks the shard wire protocol on stdin/stdout (the ShardRouter spawns it
// with its pipe ends dup2'ed to fds 0/1): reads a kHello carrying the
// serving backend byte and the shard's serialized tree (the v2 compact or
// v3 wide streams from kdtree/serialize), re-emits the requested serving
// layout, acknowledges with the triangle count, then answers kQuery frames
// with kResult frames until kShutdown or EOF. Answers use execute_shard_query
// — the same canonicalization as the in-process and fallback paths, so a
// process-pool shard is bit-identical to every other execution mode.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bvh/bvh.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/query_backend.hpp"
#include "kdtree/serialize.hpp"
#include "kdtree/wide_tree.hpp"
#include "parallel/thread_pool.hpp"
#include "shard/shard_worker.hpp"
#include "shard/wire.hpp"

using namespace kdtune;

int main() {
  wire::ignore_sigpipe();

  wire::MsgType type{};
  std::vector<std::uint8_t> body;
  if (!wire::read_frame(STDIN_FILENO, type, body) ||
      type != wire::MsgType::kHello || body.size() < 2) {
    std::fprintf(stderr, "kdtune_shardd: bad hello\n");
    return 1;
  }

  const auto backend = static_cast<QueryBackend>(body[0]);
  std::shared_ptr<const CompactKdTree> compact;
  try {
    std::istringstream stream(std::string(
        reinterpret_cast<const char*>(body.data()) + 1, body.size() - 1));
    compact = load_compact_tree(stream);  // accepts v2 and v3 streams
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kdtune_shardd: bad tree: %s\n", e.what());
    return 1;
  }

  // Re-emit the requested serving layout over the shipped tree.
  std::shared_ptr<const KdTreeBase> tree = compact;
  if (backend == QueryBackend::kWide4 || backend == QueryBackend::kWide8) {
    tree = std::shared_ptr<const KdTreeBase>(make_wide_tree(compact, backend));
  } else if (backend == QueryBackend::kBvh) {
    ThreadPool pool(0);
    tree = std::shared_ptr<const KdTreeBase>(
        build_bvh(compact->triangles(), BvhConfig{}, pool));
  }

  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(wire::MsgType::kHelloAck));
  const std::uint64_t count = compact->triangles().size();
  const auto* count_bytes = reinterpret_cast<const std::uint8_t*>(&count);
  out.insert(out.end(), count_bytes, count_bytes + sizeof(count));
  if (!wire::write_frame(STDOUT_FILENO, out)) return 1;

  while (wire::read_frame(STDIN_FILENO, type, body)) {
    if (type == wire::MsgType::kShutdown) break;
    if (type != wire::MsgType::kQuery) continue;
    wire::ShardQuery query;
    if (!wire::decode_query(body, query)) {
      std::fprintf(stderr, "kdtune_shardd: bad query frame\n");
      return 1;
    }
    const QueryResponse resp = execute_shard_query(*tree, query);
    out.clear();
    wire::encode_result(query.id, resp, out);
    if (!wire::write_frame(STDOUT_FILENO, out)) return 1;  // router went away
  }
  return 0;
}
