// kdtune_dynamic — demo driver and contract checker for the dynamic-scene
// frame pipeline (FramePipeline + FrameTuner; see docs/DYNAMIC.md).
//
//   kdtune_dynamic [options]         # seeded run over the dynamic scenes
//   kdtune_dynamic --smoke           # CI-sized run; exit code = checks
//
// For each dynamic scene the driver runs the overlapped pipeline as a
// service: frame N serves a deterministic (seeded) ray workload while frame
// N+1 builds in the background, with the FrameTuner choosing the build
// configuration across frames and warm-starting from / recording back to a
// ConfigCache. At the end it verifies the pipeline contracts:
//
//   * oracle parity — for every published frame, closest-hit distances are
//     bit-identical to a sequential build-then-query of that frame with the
//     same (algorithm, configuration) on a single thread (hit t values are
//     exact across builders/layouts; see core/differential.hpp);
//   * exactly-once publication — registry versions advance by exactly 1 per
//     frame, frame indices are strictly monotone, and the animation drains
//     on its final frame;
//   * with tuning on, the tuner completes iterations and the best
//     configuration lands in the ConfigCache for the next run.
//
// Options:
//   --scenes=a,b,..  scene ids (default: the three dynamic scenes)
//   --detail=F       scene detail scale          --threads=N  pool workers
//   --frames=N       cap frames per scene        --rays=N     rays per frame
//   --algorithms=a,b tuner candidate algorithms ("node-level", "nested",
//                    "in-place", "lazy", "balanced"; default in-place only);
//                    with several, the FrameTuner runs algorithm selection
//   --probe-frames=N probe frames per candidate before selection moves on
//   --sequential     disable overlap (baseline --no-verify    skip parity
//                    build-then-query order)
//   --no-tune        fixed base configuration    --seed=N     workload seed
//   --target-fps=F   pace frames; late builds carry over
//   --skip-ahead     with --target-fps: drop frames instead
//   --config-db=FILE feature-keyed config database from kdtune_explore:
//                    warm-starts candidates the ConfigCache missed and
//                    records each scene's best result back (keeps-if-faster)
//   --json=FILE      write stats + check results as JSON
//   --trace=FILE     write a Chrome trace-event JSON of the whole run
//                    (open in Perfetto; see docs/OBSERVABILITY.md)
//   --tuner-log=FILE write every tuner iteration as JSONL
//   --smoke          small sizes (smaller still under KDTUNE_CI_SMALL)

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/differential.hpp"
#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct DynamicOptions {
  std::vector<std::string> scenes;
  std::vector<Algorithm> algorithms;  ///< empty = FrameTuner default
  std::size_t probe_frames = 0;       ///< 0 = FrameTuner default
  float detail = 0.2f;
  unsigned threads = 3;
  std::size_t frames = 40;
  int rays = 256;
  bool overlap = true;
  bool tune = true;
  bool verify = true;
  double target_fps = 0.0;
  bool skip_ahead = false;
  std::uint64_t seed = 0x5EEDu;
  std::string config_db_path;
  std::string json_path;
  std::string trace_path;
  std::string tuner_log_path;
  bool smoke = false;
};

DynamicOptions parse_options(int argc, char** argv) {
  DynamicOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--scenes=")) {
      o.scenes.clear();
      std::string item;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!item.empty()) o.scenes.push_back(item);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    } else if (const char* v = value("--algorithms=")) {
      o.algorithms.clear();
      std::string item;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!item.empty()) {
            try {
              o.algorithms.push_back(algorithm_from_string(item));
            } catch (const std::invalid_argument& e) {
              std::fprintf(stderr, "%s\n", e.what());
              std::exit(1);
            }
          }
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    } else if (const char* v = value("--probe-frames=")) {
      o.probe_frames = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--detail=")) {
      o.detail = std::strtof(v, nullptr);
    } else if (const char* v = value("--threads=")) {
      o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--frames=")) {
      o.frames = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--rays=")) {
      o.rays = std::atoi(v);
    } else if (const char* v = value("--target-fps=")) {
      o.target_fps = std::strtod(v, nullptr);
    } else if (const char* v = value("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--config-db=")) {
      o.config_db_path = v;
    } else if (const char* v = value("--json=")) {
      o.json_path = v;
    } else if (const char* v = value("--trace=")) {
      o.trace_path = v;
    } else if (const char* v = value("--tuner-log=")) {
      o.tuner_log_path = v;
    } else if (arg == "--sequential") {
      o.overlap = false;
    } else if (arg == "--skip-ahead") {
      o.skip_ahead = true;
    } else if (arg == "--no-tune") {
      o.tune = false;
    } else if (arg == "--no-verify") {
      o.verify = false;
    } else if (arg == "--smoke") {
      o.smoke = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header of tools/kdtune_dynamic.cpp for options\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      std::exit(1);
    }
  }
  if (o.scenes.empty()) o.scenes = dynamic_scene_ids();
  if (o.smoke) {
    o.detail = kdtune_ci_small() ? 0.06f : 0.1f;
    o.frames = kdtune_ci_small() ? 6 : 10;
    o.rays = kdtune_ci_small() ? 48 : 96;
  }
  o.frames = std::max<std::size_t>(o.frames, 2);
  o.rays = std::max(o.rays, 1);
  return o;
}

Ray random_ray_into(Rng& rng, const AABB& box) {
  const Vec3 origin =
      box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)}) *
                         (length(box.extent()) * 0.8f + 0.5f);
  const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                    rng.uniform(box.lo.y, box.hi.y),
                    rng.uniform(box.lo.z, box.hi.z)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

/// Caps an animation at `frames` frames without changing its name (the name
/// keys the registry entry and the ConfigCache).
std::shared_ptr<const AnimatedScene> capped(
    std::shared_ptr<const AnimatedScene> anim, std::size_t frames) {
  const std::size_t count = std::min(frames, anim->frame_count());
  const std::string name = anim->name();
  return std::make_shared<ProceduralAnimation>(
      name, count, [anim](std::size_t i) { return anim->frame(i); });
}

struct SceneOutcome {
  std::string scene;
  std::size_t frames = 0;
  std::uint64_t frames_published = 0;
  std::uint64_t frames_skipped = 0;
  std::uint64_t version_skews = 0;   ///< publishes whose version != prev + 1
  std::uint64_t order_violations = 0;///< frames not strictly monotone
  std::uint64_t mismatches = 0;      ///< parity failures vs reference
  std::uint64_t rays = 0;
  bool drained_on_last = false;
  double wall_seconds = 0.0;
  double total_build_seconds = 0.0;
  double total_query_seconds = 0.0;
  std::size_t tuner_iterations = 0;
  bool cache_recorded = false;
  Algorithm best_algorithm = Algorithm::kInPlace;
  BuildConfig best_config{};
};

SceneOutcome run_scene(const DynamicOptions& o, const std::string& id,
                       ConfigCache& cache, ConfigDatabase* db,
                       TunerLog* tuner_log) {
  ThreadPool pool(o.threads);
  ThreadPool reference_pool(0);
  SceneRegistry registry(pool);
  registry.attach_cache(&cache);
  if (db != nullptr) registry.attach_database(db);

  const auto anim = capped(make_scene(id, o.detail), o.frames);
  SceneOutcome out;
  out.scene = id;
  out.frames = anim->frame_count();

  std::unique_ptr<FrameTuner> tuner;
  FramePipelineOptions popts;
  if (o.tune) {
    FrameTunerOptions topts;
    if (!o.algorithms.empty()) topts.algorithms = o.algorithms;
    if (o.probe_frames > 0) topts.frames_per_algorithm = o.probe_frames;
    tuner = std::make_unique<FrameTuner>(topts);
    tuner->warm_start(cache, id, pool.concurrency());
    if (db != nullptr) {
      // Candidates the cache missed start from the database's nearest
      // measured context instead of C_base.
      const std::size_t seeded = tuner->warm_start_db(
          *db, SceneFeatures::extract(anim->frame(0).triangles()),
          HardwareDescriptor::detect(pool.concurrency()));
      if (seeded != 0) {
        std::printf("  %-14s db warm start: %zu candidate(s)\n", id.c_str(),
                    seeded);
      }
    }
    if (tuner_log != nullptr) tuner->set_log(tuner_log);
    popts.tuner = tuner.get();
  }
  popts.overlap = o.overlap;
  if (o.target_fps > 0.0) {
    popts.target_frame_seconds = 1.0 / o.target_fps;
    popts.lag_policy =
        o.skip_ahead ? LagPolicy::kSkipAhead : LagPolicy::kCarryOver;
  }
  FramePipeline pipeline(anim, registry, popts);

  Rng rng(o.seed ^ std::hash<std::string>{}(id));
  Stopwatch wall;
  wall.start();
  std::uint64_t version = 0;
  std::size_t last_frame = 0;
  bool first = true;
  for (FrameTick tick = pipeline.begin(); tick.published;) {
    if (first) {
      version = tick.version;
      last_frame = tick.frame;
      first = false;
    } else {
      if (tick.version != version + 1) ++out.version_skews;
      if (tick.frame <= last_frame) ++out.order_violations;
      version = tick.version;
      last_frame = tick.frame;
    }

    // The frame's query workload: seeded rays against the published tree.
    const auto snap = registry.acquire(id);
    const AABB box = snap->tree->bounds();
    std::vector<Ray> rays(static_cast<std::size_t>(o.rays));
    for (Ray& ray : rays) ray = random_ray_into(rng, box);
    Stopwatch query_clock;
    query_clock.start();
    std::vector<Hit> hits(rays.size());
    {
      TraceSpan span("frame.query", "frame");
      for (std::size_t r = 0; r < rays.size(); ++r) {
        hits[r] = snap->tree->closest_hit(rays[r]);
      }
    }
    const double query_seconds = query_clock.elapsed();
    out.rays += rays.size();

    // Oracle parity: sequential build-then-query of the same frame with the
    // same (algorithm, configuration), single-threaded, fresh tree.
    if (o.verify) {
      const Scene frame_scene = anim->frame(tick.frame);
      const auto reference = make_builder(tick.algorithm)
                                 ->build(frame_scene.triangles(), tick.config,
                                         reference_pool);
      for (std::size_t r = 0; r < rays.size(); ++r) {
        const Hit expect = reference->closest_hit(rays[r]);
        if (expect.valid() != hits[r].valid() ||
            (expect.valid() && expect.t != hits[r].t)) {
          ++out.mismatches;
        }
      }
    }

    tick = pipeline.advance(query_seconds);
  }
  out.wall_seconds = wall.elapsed();
  out.drained_on_last = pipeline.done() && last_frame == out.frames - 1;

  const FramePipelineStats stats = pipeline.stats();
  out.frames_published = stats.frames_published;
  out.frames_skipped = stats.frames_skipped;
  out.total_build_seconds = stats.total_build_seconds;
  out.total_query_seconds = stats.total_query_seconds;
  if (tuner) {
    out.tuner_iterations = tuner->iterations();
    out.best_algorithm = tuner->best_algorithm();
    out.best_config = tuner->best_config();
    // The registry records under the canonical backend/hardware-keyed name;
    // the tuner may have retired on any backend, so probe them all (plus the
    // legacy pre-backend key for caches written by older builds).
    const std::string algorithm(to_string(out.best_algorithm));
    const std::string hw =
        HardwareDescriptor::detect(pool.concurrency()).suffix();
    bool recorded =
        cache.lookup(ConfigCache::key_for(id, algorithm, pool.concurrency()))
            .has_value();
    for (std::int64_t b = 0; !recorded && b < kQueryBackendCount; ++b) {
      recorded = cache
                     .lookup(ConfigCache::key_for(
                         id, algorithm, pool.concurrency(),
                         to_string(backend_from_int(b)), hw))
                     .has_value();
    }
    out.cache_recorded = recorded;
  }
  return out;
}

int run(const DynamicOptions& o) {
  std::printf("dynamic frame pipeline: %zu scene(s), detail %.2f, %zu frames, "
              "%d rays/frame, %s%s\n",
              o.scenes.size(), o.detail, o.frames, o.rays,
              o.overlap ? "overlapped" : "sequential",
              o.tune ? ", tuned" : ", base config");

  if (!o.trace_path.empty()) {
    TraceRecorder::instance().set_enabled(true);
  }
  TunerLog tuner_log;
  if (!o.tuner_log_path.empty() && !tuner_log.open(o.tuner_log_path)) {
    std::fprintf(stderr, "cannot write %s\n", o.tuner_log_path.c_str());
  }

  ConfigCache cache;
  ConfigDatabase config_db;
  const bool use_db = !o.config_db_path.empty();
  if (use_db) {
    config_db.load_file(o.config_db_path);
    std::printf("config db %s: %zu entries\n", o.config_db_path.c_str(),
                config_db.size());
  }
  std::vector<SceneOutcome> outcomes;
  for (const std::string& id : o.scenes) {
    const SceneOutcome out =
        run_scene(o, id, cache, use_db ? &config_db : nullptr,
                  tuner_log.is_open() ? &tuner_log : nullptr);
    std::printf(
        "  %-14s %3llu frames in %6.2f s (%5.1f fps), build %6.1f ms, "
        "query %6.1f ms, %llu rays%s",
        out.scene.c_str(),
        static_cast<unsigned long long>(out.frames_published),
        out.wall_seconds,
        static_cast<double>(out.frames_published) / out.wall_seconds,
        out.total_build_seconds * 1e3, out.total_query_seconds * 1e3,
        static_cast<unsigned long long>(out.rays),
        o.verify ? "" : " (parity off)");
    if (o.tune) {
      std::printf(", tuner %zu iters -> %s CI=%lld CB=%lld S=%lld",
                  out.tuner_iterations,
                  std::string(to_string(out.best_algorithm)).c_str(),
                  static_cast<long long>(out.best_config.ci),
                  static_cast<long long>(out.best_config.cb),
                  static_cast<long long>(out.best_config.s));
    }
    std::printf("\n");
    outcomes.push_back(out);
  }
  if (use_db) {
    // record_tuned stored each scene's best into the attached database
    // (keeps-if-faster); persist it for the next run / machine.
    config_db.save_file(o.config_db_path);
    std::printf("config db saved: %zu entries\n", config_db.size());
  }

  // --- Checks (the pipeline contracts; exit code for CI) -------------------
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  std::printf("checks:\n");
  bool parity = true, exactly_once = true, monotone = true, drained = true;
  bool published_all = true, tuned = true, recorded = true;
  for (const SceneOutcome& out : outcomes) {
    parity &= out.mismatches == 0;
    exactly_once &= out.version_skews == 0;
    monotone &= out.order_violations == 0;
    drained &= out.drained_on_last;
    if (o.target_fps <= 0.0) {
      published_all &= out.frames_published == out.frames;
    }
    tuned &= out.tuner_iterations > 0;
    recorded &= out.cache_recorded;
  }
  if (o.verify) {
    check(parity, "oracle parity: hits bit-identical to sequential "
                  "build-then-query of every frame");
  }
  check(exactly_once, "exactly-once: registry versions advance by 1 per frame");
  check(monotone, "frame indices strictly monotone");
  check(drained, "animation drains on its final frame");
  if (o.target_fps <= 0.0) {
    check(published_all, "unpaced: every animation frame published");
  }
  if (o.tune) {
    check(tuned, "tuner completed iterations on every scene");
    check(recorded, "best configuration recorded to the ConfigCache");
  }

  if (!o.json_path.empty()) {
    std::FILE* out = std::fopen(o.json_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(out, "{\n\"failures\": %d,\n\"scenes\": [\n", failures);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SceneOutcome& s = outcomes[i];
        std::fprintf(
            out,
            "  {\"scene\": \"%s\", \"frames\": %llu, \"skipped\": %llu, "
            "\"wall_seconds\": %.4f, \"build_seconds\": %.4f, "
            "\"query_seconds\": %.4f, \"mismatches\": %llu, "
            "\"tuner_iterations\": %zu}%s\n",
            s.scene.c_str(),
            static_cast<unsigned long long>(s.frames_published),
            static_cast<unsigned long long>(s.frames_skipped), s.wall_seconds,
            s.total_build_seconds, s.total_query_seconds,
            static_cast<unsigned long long>(s.mismatches), s.tuner_iterations,
            i + 1 < outcomes.size() ? "," : "");
      }
      std::fprintf(out, "]}\n");
      std::fclose(out);
      std::printf("wrote %s\n", o.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.json_path.c_str());
    }
  }
  if (!o.trace_path.empty()) {
    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.set_enabled(false);
    if (recorder.write_json(o.trace_path)) {
      std::printf("wrote %s (%zu trace events)\n", o.trace_path.c_str(),
                  recorder.event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.trace_path.c_str());
    }
  }
  if (tuner_log.is_open()) {
    std::printf("wrote %s (%llu tuner iterations)\n", o.tuner_log_path.c_str(),
                static_cast<unsigned long long>(tuner_log.records()));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_options(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
