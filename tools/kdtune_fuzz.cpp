// Standalone differential fuzz driver. Runs N seeded (scene, config) cases
// through the cross-implementation harness (src/core/differential.hpp) and
// exits non-zero on the first disagreement batch, printing every divergent
// probe with its seed so a failure is replayable:
//
//   kdtune_fuzz --cases=500            # the CI sweep
//   kdtune_fuzz --seed0=17 --cases=1   # replay one reported seed
//
// KDTUNE_CI_SMALL=1 shrinks scenes and probe counts (sanitizer jobs).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/differential.hpp"

namespace {

std::uint64_t parse_u64(const char* arg, const char* name) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "kdtune_fuzz: bad value for %s: '%s'\n", name, arg);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t cases = 100;
  std::uint64_t seed0 = 1;
  bool keep_going = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--cases=", 8) == 0) {
      cases = parse_u64(arg + 8, "--cases");
    } else if (std::strncmp(arg, "--seed0=", 8) == 0) {
      seed0 = parse_u64(arg + 8, "--seed0");
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      keep_going = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: kdtune_fuzz [--cases=N] [--seed0=S] [--keep-going]\n"
          "Differential fuzz: every builder, the compact layout and the BVH\n"
          "baseline must agree exactly with brute force on seeded random\n"
          "scenes and Table II configurations.\n");
      return 0;
    } else {
      std::fprintf(stderr, "kdtune_fuzz: unknown argument '%s'\n", arg);
      return 2;
    }
  }

  const kdtune::DifferentialOptions opts =
      kdtune::differential_default_options();
  std::size_t total_queries = 0;
  std::size_t total_disagreements = 0;

  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = seed0 + i;
    const kdtune::DifferentialResult result =
        kdtune::run_differential_case(seed, opts);
    total_queries += result.queries;
    total_disagreements += result.disagreements.size();
    for (const std::string& msg : result.disagreements) {
      std::fprintf(stderr, "DISAGREEMENT %s\n", msg.c_str());
    }
    if (!result.ok() && !keep_going) {
      std::fprintf(stderr,
                   "kdtune_fuzz: stopping at seed %llu (replay with "
                   "--seed0=%llu --cases=1)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
    if ((i + 1) % 100 == 0) {
      std::printf("kdtune_fuzz: %llu/%llu cases, %zu queries, %zu "
                  "disagreements\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(cases), total_queries,
                  total_disagreements);
      std::fflush(stdout);
    }
  }

  std::printf("kdtune_fuzz: %s — %zu queries checked, %zu disagreements\n",
              total_disagreements == 0 ? "PASS" : "FAIL", total_queries,
              total_disagreements);
  return total_disagreements == 0 ? 0 : 1;
}
