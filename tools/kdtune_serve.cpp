// kdtune_serve — demo driver and load generator for the query-serving engine
// (SceneRegistry + QueryService + ServeTuner; see docs/SERVING.md).
//
//   kdtune_serve [options]           # closed-loop demo over two scenes
//   kdtune_serve --smoke             # CI-sized run; exit code = checks
//
// The generator admits the requested scenes, fires a deterministic (seeded)
// mix of every query family the service speaks — closest-hit / any-hit /
// packet rays, collision-detection style range boxes around random targets,
// photon-gather k-NN spheres, and sensor-style closest-point probes with a
// conservative seed radius — from closed-loop client threads (or one
// open-loop submitter with --rate), hot-swaps every scene to a different
// build configuration mid-run, and runs the ServeTuner windows (including
// the per-family batch/flush knobs) over the live traffic. At the end it
// verifies the serving contracts:
//
//   * zero lost or duplicated responses — every accepted request resolved
//     its future exactly once;
//   * results bit-identical to direct single-threaded queries on a reference
//     tree (hit distances, range id lists and k-NN result lists are exact
//     across builders/layouts/swaps; see core/differential.hpp for why);
//   * every query family actually served at least one batch;
//   * at least one hot swap per scene and, with tuning on, at least one
//     tuner-driven batch-size change.
//
// Options:
//   --scenes=a,b,..  scene ids (default bunny,sponza)  --detail=F
//   --threads=N      pool workers                      --clients=N
//   --requests=N     requests per client (closed) / total (open)
//   --rate=QPS       open-loop arrival rate (0 = closed-loop)
//   --batch=N --flush-us=N --queue=N   initial serving parameters
//   --no-tune --no-swap --no-verify    disable pieces of the demo
//   --packet=N       rays per packet request
//   --window-ms=N    tuner window length
//   --seed=N         deterministic load (same seed = same requests)
//   --config-db=FILE feature-keyed config database from kdtune_explore:
//                    admits consult it for build configs, the ServeTuner
//                    warm-starts from the nearest "serve" entry, and the
//                    best serving parameters are recorded back
//   --json=FILE      write stats + check results as JSON
//   --trace=FILE     write a Chrome trace-event JSON of the whole run
//   --tuner-log=FILE write every tuner iteration as JSONL
//   --smoke          small sizes (smaller still under KDTUNE_CI_SMALL)
//
// Sharded mode (--shards=K) drives the ShardRouter instead of a single
// QueryService: the first scene is spatially partitioned into K shards,
// --tenants=N client threads (tenant "t0" runs with a deliberately tight
// token-bucket quota, the rest unlimited) fire the same deterministic mix,
// and the checks add the sharding contracts — sharded answers bit-identical
// to the unsharded reference for every family, quota rejects confined to
// the throttled tenant, no starvation among the others, and (with
// --process-workers) a mid-run SIGKILL of shard 0's worker that must
// degrade to reroute-or-reject, never hang.
//   --shards=K           shard count (power of two; 0 = classic mode)
//   --tenants=N          tenant client threads (default 3)
//   --process-workers    spawn kdtune_shardd processes instead of in-process
//   --shardd=PATH        kdtune_shardd binary (default: next to this binary)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/differential.hpp"
#include "core/kdtune.hpp"
#include "shard/shard_router.hpp"

namespace {

using namespace kdtune;

struct ServeOptions {
  std::vector<std::string> scenes{"bunny", "sponza"};
  float detail = 0.2f;
  unsigned threads = 3;
  int clients = 4;
  int requests = 300;
  double rate = 0.0;
  std::size_t queue = 4096;
  std::int64_t batch = 16;
  std::int64_t flush_us = 200;
  bool tune = true;
  bool swap = true;
  bool verify = true;
  int packet_rays = 8;
  int window_ms = 25;
  std::uint64_t seed = 0x5EEDu;
  std::string config_db_path;
  std::string json_path;
  std::string trace_path;
  std::string tuner_log_path;
  bool smoke = false;
  int shards = 0;  ///< 0 = classic single-service mode
  int tenants = 3;
  bool process_workers = false;
  std::string shardd_path;
  std::string argv0;
};

ServeOptions parse_options(int argc, char** argv) {
  ServeOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--scenes=")) {
      o.scenes.clear();
      std::string item;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!item.empty()) o.scenes.push_back(item);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    } else if (const char* v = value("--detail=")) {
      o.detail = std::strtof(v, nullptr);
    } else if (const char* v = value("--threads=")) {
      o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--clients=")) {
      o.clients = std::atoi(v);
    } else if (const char* v = value("--requests=")) {
      o.requests = std::atoi(v);
    } else if (const char* v = value("--rate=")) {
      o.rate = std::strtod(v, nullptr);
    } else if (const char* v = value("--queue=")) {
      o.queue = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--batch=")) {
      o.batch = std::atoll(v);
    } else if (const char* v = value("--flush-us=")) {
      o.flush_us = std::atoll(v);
    } else if (const char* v = value("--packet=")) {
      o.packet_rays = std::atoi(v);
    } else if (const char* v = value("--window-ms=")) {
      o.window_ms = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--config-db=")) {
      o.config_db_path = v;
    } else if (const char* v = value("--json=")) {
      o.json_path = v;
    } else if (const char* v = value("--trace=")) {
      o.trace_path = v;
    } else if (const char* v = value("--tuner-log=")) {
      o.tuner_log_path = v;
    } else if (const char* v = value("--shards=")) {
      o.shards = std::atoi(v);
    } else if (const char* v = value("--tenants=")) {
      o.tenants = std::atoi(v);
    } else if (const char* v = value("--shardd=")) {
      o.shardd_path = v;
    } else if (arg == "--process-workers") {
      o.process_workers = true;
    } else if (arg == "--no-tune") {
      o.tune = false;
    } else if (arg == "--no-swap") {
      o.swap = false;
    } else if (arg == "--no-verify") {
      o.verify = false;
    } else if (arg == "--smoke") {
      o.smoke = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header of tools/kdtune_serve.cpp for options\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      std::exit(1);
    }
  }
  if (o.smoke) {
    o.detail = kdtune_ci_small() ? 0.06f : 0.1f;
    o.clients = 3;
    o.requests = kdtune_ci_small() ? 120 : 200;
    o.window_ms = 15;
  }
  if (o.scenes.empty()) o.scenes = {"bunny", "sponza"};
  o.clients = std::max(o.clients, 1);
  o.requests = std::max(o.requests, 1);
  o.packet_rays = std::max(o.packet_rays, 1);
  return o;
}

Ray random_ray_into(Rng& rng, const AABB& box) {
  const Vec3 origin =
      box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)}) *
                         (length(box.extent()) * 0.8f + 0.5f);
  const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                    rng.uniform(box.lo.y, box.hi.y),
                    rng.uniform(box.lo.z, box.hi.z)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

// A collision-detection style range probe: a box around a random target
// point, sized like a moving object's swept bounds.
AABB random_collision_box(Rng& rng, const AABB& bounds) {
  const float diag = length(bounds.extent());
  const Vec3 center{rng.uniform(bounds.lo.x, bounds.hi.x),
                    rng.uniform(bounds.lo.y, bounds.hi.y),
                    rng.uniform(bounds.lo.z, bounds.hi.z)};
  const Vec3 half{rng.uniform(0.01f, 0.12f) * diag,
                  rng.uniform(0.01f, 0.12f) * diag,
                  rng.uniform(0.01f, 0.12f) * diag};
  return AABB(center - half, center + half);
}

Vec3 random_probe_point(Rng& rng, const AABB& bounds) {
  const float pad = 0.2f * length(bounds.extent());
  return {rng.uniform(bounds.lo.x - pad, bounds.hi.x + pad),
          rng.uniform(bounds.lo.y - pad, bounds.hi.y + pad),
          rng.uniform(bounds.lo.z - pad, bounds.hi.z + pad)};
}

struct PlannedRequest {
  QueryKind kind = QueryKind::kClosestHit;
  int scene = 0;
  Ray ray{};
  std::vector<Ray> rays;
  AABB box{};     ///< kRange: collision-detection box
  Vec3 point{};   ///< kNearest / kClosestPoint: gather / sensor point
  std::uint32_t k = 1;
  float max_distance = std::numeric_limits<float>::infinity();
  // Expected results from the single-threaded reference tree. Hit distances,
  // range id lists and k-NN results (ids included — ties break toward the
  // lowest triangle id everywhere) are bit-exact across builders/layouts, so
  // equality is the pass criterion.
  Hit expect_hit{};
  bool expect_any = false;
  std::vector<Hit> expect_hits;
  std::vector<std::uint32_t> expect_ids;
  std::vector<NearestResult> expect_neighbors;
  NearestResult expect_nearest{};
};

/// Fills everything but `scene` of one planned request: the deterministic
/// family mix and, with verify on, the expected results from the reference
/// tree. Shared by the classic and sharded load generators.
void plan_query(Rng& rng, const ServeOptions& o, const AABB& box,
                const KdTreeBase& ref, PlannedRequest& p) {
  const int mix = static_cast<int>(rng.next_int(0, 9));
  const float diag = length(box.extent());
  if (mix < 3) {  // 30% closest-hit
    p.kind = QueryKind::kClosestHit;
    p.ray = random_ray_into(rng, box);
    if (o.verify) p.expect_hit = ref.closest_hit(p.ray);
  } else if (mix == 3) {  // 10% any-hit
    p.kind = QueryKind::kAnyHit;
    p.ray = random_ray_into(rng, box);
    if (o.verify) p.expect_any = ref.any_hit(p.ray);
  } else if (mix == 4) {  // 10% packet
    p.kind = QueryKind::kPacket;
    p.rays.reserve(static_cast<std::size_t>(o.packet_rays));
    for (int r = 0; r < o.packet_rays; ++r) {
      p.rays.push_back(random_ray_into(rng, box));
      if (o.verify) p.expect_hits.push_back(ref.closest_hit(p.rays.back()));
    }
  } else if (mix < 7) {  // 20% range (collision-detection box)
    p.kind = QueryKind::kRange;
    p.box = random_collision_box(rng, box);
    if (o.verify) {
      ref.query_range(p.box, p.expect_ids);
      std::sort(p.expect_ids.begin(), p.expect_ids.end());
      p.expect_ids.erase(
          std::unique(p.expect_ids.begin(), p.expect_ids.end()),
          p.expect_ids.end());
    }
  } else if (mix < 9) {  // 20% k-NN (photon-gather sphere)
    p.kind = QueryKind::kNearest;
    p.point = random_probe_point(rng, box);
    p.k = static_cast<std::uint32_t>(rng.next_int(1, 8));
    if (rng.next_float() < 0.5f) {
      p.max_distance = rng.uniform(0.05f, 0.5f) * diag;
    }
    if (o.verify) {
      ref.nearest_k(p.point, p.k, p.expect_neighbors, p.max_distance);
    }
  } else {  // 10% closest point (sensor probe, conservative radius)
    p.kind = QueryKind::kClosestPoint;
    p.point = random_probe_point(rng, box);
    p.max_distance = rng.uniform(0.3f, 1.0f) * (diag + 1.0f);
    if (o.verify) {
      p.expect_nearest = ref.nearest_within(p.point, p.max_distance);
    }
  }
}

struct ClientTally {
  std::uint64_t submitted = 0;
  std::uint64_t responses = 0;  ///< futures that resolved (any status)
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t other = 0;      ///< timed_out / not_found / error
  std::uint64_t mismatches = 0;
  std::uint64_t broken_futures = 0;
};

bool verify_response(const PlannedRequest& plan, const QueryResponse& resp) {
  switch (plan.kind) {
    case QueryKind::kClosestHit:
      return resp.hit.valid() == plan.expect_hit.valid() &&
             (!resp.hit.valid() || resp.hit.t == plan.expect_hit.t);
    case QueryKind::kAnyHit:
      return resp.any == plan.expect_any;
    case QueryKind::kPacket: {
      if (resp.hits.size() != plan.expect_hits.size()) return false;
      for (std::size_t i = 0; i < resp.hits.size(); ++i) {
        if (resp.hits[i].valid() != plan.expect_hits[i].valid()) return false;
        if (resp.hits[i].valid() && resp.hits[i].t != plan.expect_hits[i].t) {
          return false;
        }
      }
      return true;
    }
    case QueryKind::kRange:
      return resp.range_ids == plan.expect_ids;
    case QueryKind::kNearest: {
      if (resp.neighbors.size() != plan.expect_neighbors.size()) return false;
      for (std::size_t i = 0; i < resp.neighbors.size(); ++i) {
        if (resp.neighbors[i].triangle != plan.expect_neighbors[i].triangle ||
            resp.neighbors[i].distance_sq !=
                plan.expect_neighbors[i].distance_sq) {
          return false;
        }
      }
      return true;
    }
    case QueryKind::kClosestPoint:
      return resp.nearest.valid() == plan.expect_nearest.valid() &&
             (!resp.nearest.valid() ||
              (resp.nearest.triangle == plan.expect_nearest.triangle &&
               resp.nearest.distance_sq == plan.expect_nearest.distance_sq));
  }
  return false;
}

void tally_response(const ServeOptions& o, const PlannedRequest& plan,
                    const QueryResponse& resp, ClientTally& tally) {
  ++tally.responses;
  switch (resp.status) {
    case QueryStatus::kOk:
      ++tally.ok;
      if (o.verify && !verify_response(plan, resp)) ++tally.mismatches;
      break;
    case QueryStatus::kRejectedOverflow:
    case QueryStatus::kRejectedQuota:
    case QueryStatus::kShutdown:
      ++tally.rejected;
      break;
    default:
      ++tally.other;
      break;
  }
}

std::future<QueryResponse> submit_planned(QueryService& service,
                                          const ServeOptions& o,
                                          const std::string& scene,
                                          const PlannedRequest& plan) {
  switch (plan.kind) {
    case QueryKind::kAnyHit:
      return service.submit_any_hit(scene, plan.ray);
    case QueryKind::kPacket:
      return service.submit_packet(scene, plan.rays);
    case QueryKind::kRange:
      return service.submit_range(scene, plan.box);
    case QueryKind::kNearest:
      return service.submit_nearest(scene, plan.point, plan.k,
                                    plan.max_distance);
    case QueryKind::kClosestPoint:
      return service.submit_closest_point(scene, plan.point,
                                          plan.max_distance);
    case QueryKind::kClosestHit:
    default:
      return service.submit_closest_hit(scene, plan.ray);
  }
  (void)o;
}

std::future<QueryResponse> submit_planned_sharded(ShardRouter& router,
                                                  const std::string& tenant,
                                                  const PlannedRequest& plan) {
  switch (plan.kind) {
    case QueryKind::kAnyHit:
      return router.submit_any_hit(tenant, plan.ray);
    case QueryKind::kPacket:
      return router.submit_packet(tenant, plan.rays);
    case QueryKind::kRange:
      return router.submit_range(tenant, plan.box);
    case QueryKind::kNearest:
      return router.submit_nearest(tenant, plan.point, plan.k,
                                   plan.max_distance);
    case QueryKind::kClosestPoint:
      return router.submit_closest_point(tenant, plan.point,
                                         plan.max_distance);
    case QueryKind::kClosestHit:
    default:
      return router.submit_closest_hit(tenant, plan.ray);
  }
}

std::string default_shardd_path(const ServeOptions& o) {
  if (!o.shardd_path.empty()) return o.shardd_path;
  const std::size_t slash = o.argv0.rfind('/');
  if (slash == std::string::npos) return "kdtune_shardd";
  return o.argv0.substr(0, slash + 1) + "kdtune_shardd";
}

int run_sharded(const ServeOptions& o) {
  const int tenant_count = std::max(2, o.tenants);
  std::printf("sharded mode: %d shard(s), %d tenant(s), %s workers\n",
              clamp_shard_count(o.shards), tenant_count,
              o.process_workers ? "process" : "in-process");

  const Scene scene = make_scene(o.scenes[0], o.detail)->frame(0);
  std::vector<Triangle> tris(scene.triangles().begin(),
                             scene.triangles().end());
  ThreadPool reference_pool(0);
  const std::unique_ptr<KdTreeBase> reference =
      make_sweep_builder()->build(tris, kBaseConfig, reference_pool);
  const AABB box = scene.bounds();
  std::printf("  %-14s %7zu tris\n", o.scenes[0].c_str(), tris.size());

  ShardRouterOptions ropts;
  ropts.shard_count = o.shards;
  ropts.router_threads = 2;
  ropts.max_queue = o.queue;
  ropts.shard_service.max_queue = o.queue;
  ropts.shard_service.params.batch_size = o.batch;
  ropts.shard_service.params.flush_timeout_us = o.flush_us;
  ropts.process_workers = o.process_workers;
  ropts.worker_path = default_shardd_path(o);
  ShardRouter router(tris, ropts);

  // Tenant "t0" runs at a deliberately tight quota so the closed-loop client
  // saturates it; everyone else is unlimited. The QoS contract under test:
  // t0's rejects stay t0's problem — the other tenants keep completing, and
  // none of them starves relative to its peers.
  router.set_quota("t0", TenantQuota{50.0, 10.0, Priority::kInteractive});

  Rng master(o.seed);
  std::vector<std::vector<PlannedRequest>> plans(
      static_cast<std::size_t>(tenant_count));
  for (auto& plan : plans) {
    Rng rng = master.split();
    plan.resize(static_cast<std::size_t>(o.requests));
    for (PlannedRequest& p : plan) {
      p.scene = 0;
      plan_query(rng, o, box, *reference, p);
    }
  }

  // In-process mode also drives a ServeTuner over the router: the shard
  // count and fanout cap join the serving-parameter search via
  // register_shard_dimensions. (The service reference is only used at
  // construction — measurement and application go through the router hooks,
  // which stay valid across cluster swaps.)
  std::atomic<bool> load_done{false};
  std::unique_ptr<ServeTuner> tuner;
  std::thread tuner_thread;
  std::mutex applied_mutex;
  std::set<int> shard_counts_applied;
  if (o.tune && !o.process_workers && router.shard_service(0) != nullptr) {
    ServeTunerOptions topts;
    topts.tune_flush = false;
    topts.tune_workers = false;
    register_shard_dimensions(topts, router,
                              std::max(4, clamp_shard_count(o.shards)), 4);
    tuner = std::make_unique<ServeTuner>(*router.shard_service(0), topts);
    tuner_thread = std::thread([&] {
      while (!load_done.load(std::memory_order_acquire)) {
        tuner->begin_window();
        {
          std::lock_guard<std::mutex> lk(applied_mutex);
          shard_counts_applied.insert(router.shard_count());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(o.window_ms));
        tuner->end_window();
      }
    });
  }

  std::once_flag kill_once;
  bool killed = false;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(tenant_count));
  Stopwatch wall;
  wall.start();
  std::vector<std::thread> clients;
  for (int t = 0; t < tenant_count; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "t" + std::to_string(t);
      ClientTally& tally = tallies[static_cast<std::size_t>(t)];
      auto& plan = plans[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < plan.size(); ++i) {
        if (o.process_workers && i == plan.size() / 2) {
          // Mid-run worker death drill: SIGKILL shard 0's child once. The
          // router must degrade to reroute-or-reject, never hang, and the
          // rerouted answers must stay bit-identical.
          std::call_once(kill_once, [&] {
            router.kill_worker(0);
            killed = true;
            std::printf("  killed shard 0 worker mid-run\n");
          });
        }
        auto fut = submit_planned_sharded(router, tenant, plan[i]);
        ++tally.submitted;
        try {
          tally_response(o, plan[i], fut.get(), tally);
        } catch (...) {
          ++tally.broken_futures;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  load_done.store(true, std::memory_order_release);
  const double load_seconds = wall.elapsed();
  if (tuner_thread.joinable()) tuner_thread.join();
  router.drain();
  const ShardRouterStats stats = router.stats();
  const std::string stats_json = router.stats_json();
  router.shutdown();

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.submitted += t.submitted;
    total.responses += t.responses;
    total.ok += t.ok;
    total.rejected += t.rejected;
    total.other += t.other;
    total.mismatches += t.mismatches;
    total.broken_futures += t.broken_futures;
  }
  std::printf("\nload: %llu requests in %.2f s across %d tenants\n",
              static_cast<unsigned long long>(total.submitted), load_seconds,
              tenant_count);
  std::printf("%s\n", stats_json.c_str());
  if (tuner) {
    std::printf("tuner: %zu windows, shard counts tried {", tuner->windows());
    bool first = true;
    for (const int k : shard_counts_applied) {
      std::printf("%s%d", first ? "" : ", ", k);
      first = false;
    }
    std::printf("}\n");
  }

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  std::printf("checks:\n");
  check(total.responses == total.submitted && total.broken_futures == 0,
        "every request resolved its future exactly once");
  if (o.verify) {
    check(total.mismatches == 0,
          "sharded results bit-identical to the unsharded reference");
  }
  {
    const TenantStats* throttled = nullptr;
    bool others_clean = true;
    for (const TenantStats& t : stats.tenants) {
      if (t.tenant == "t0") {
        throttled = &t;
      } else if (t.rejected_quota != 0) {
        others_clean = false;
      }
    }
    check(throttled != nullptr && throttled->rejected_quota > 0,
          "saturating tenant t0 hit its quota (rejected_quota > 0)");
    check(others_clean, "no quota rejects leaked to unlimited tenants");
  }
  {
    std::uint64_t min_ok = ~std::uint64_t{0};
    std::uint64_t max_ok = 0;
    for (int t = 1; t < tenant_count; ++t) {
      const std::uint64_t ok = tallies[static_cast<std::size_t>(t)].ok;
      min_ok = std::min(min_ok, ok);
      max_ok = std::max(max_ok, ok);
    }
    check(max_ok > 0 && static_cast<double>(min_ok) >=
                            0.5 * static_cast<double>(max_ok),
          "no unlimited tenant starved (min/max served ratio >= 0.5)");
    std::uint64_t unlimited_ok = 0;
    std::uint64_t unlimited_submitted = 0;
    for (int t = 1; t < tenant_count; ++t) {
      unlimited_ok += tallies[static_cast<std::size_t>(t)].ok;
      unlimited_submitted += tallies[static_cast<std::size_t>(t)].submitted;
    }
    check(static_cast<double>(unlimited_ok) >=
              0.8 * static_cast<double>(unlimited_submitted),
          "unlimited tenants served >= 80% of their load");
  }
  if (o.process_workers) {
    check(killed, "worker-death drill actually fired");
    check(stats.rerouted > 0,
          "dead worker's sub-queries rerouted to the fallback tree");
  }
  if (tuner) {
    check(tuner->windows() >= 1, "tuner measured at least one window");
  }

  if (!o.json_path.empty()) {
    std::FILE* out = std::fopen(o.json_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(out,
                   "{\n\"load_seconds\": %.3f,\n\"submitted\": %llu,\n"
                   "\"responses\": %llu,\n\"mismatches\": %llu,\n"
                   "\"failures\": %d,\n\"router\": %s}\n",
                   load_seconds,
                   static_cast<unsigned long long>(total.submitted),
                   static_cast<unsigned long long>(total.responses),
                   static_cast<unsigned long long>(total.mismatches), failures,
                   stats_json.c_str());
      std::fclose(out);
      std::printf("wrote %s\n", o.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.json_path.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

int run(const ServeOptions& o) {
  if (!o.trace_path.empty()) {
    TraceRecorder::instance().set_enabled(true);
  }
  TunerLog tuner_log;
  if (!o.tuner_log_path.empty() && !tuner_log.open(o.tuner_log_path)) {
    std::fprintf(stderr, "cannot write %s\n", o.tuner_log_path.c_str());
  }

  ThreadPool pool(o.threads);
  ThreadPool reference_pool(0);
  ConfigDatabase config_db;
  SceneRegistry registry(pool);
  const bool use_db = !o.config_db_path.empty();
  if (use_db) {
    config_db.load_file(o.config_db_path);
    registry.attach_database(&config_db);  // admits consult it on cache miss
    std::printf("config db %s: %zu entries\n", o.config_db_path.c_str(),
                config_db.size());
  }

  // --- Admit scenes and build single-threaded reference trees --------------
  std::vector<std::string> names;
  std::vector<std::unique_ptr<KdTreeBase>> references;
  std::vector<AABB> boxes;
  std::printf("admitting %zu scene(s) at detail %.2f ...\n", o.scenes.size(),
              o.detail);
  SceneFeatures serve_features{};  // scene 0's features key the serve entries
  for (const std::string& id : o.scenes) {
    const Scene scene = make_scene(id, o.detail)->frame(0);
    if (use_db && names.empty()) {
      serve_features = SceneFeatures::extract(scene.triangles());
    }
    AdmitOptions admit;
    admit.algorithm = Algorithm::kInPlace;
    const auto snap = registry.admit(id, scene, admit);
    names.push_back(id);
    boxes.push_back(scene.bounds());
    references.push_back(
        make_sweep_builder()->build(scene.triangles(), kBaseConfig,
                                    reference_pool));
    std::printf("  %-14s %7zu tris, %s v%llu, build %.1f ms\n", id.c_str(),
                snap->triangle_count, snap->layout.c_str(),
                static_cast<unsigned long long>(snap->version),
                snap->build_seconds * 1e3);
  }

  // --- Plan the load deterministically from the seed -----------------------
  const int total_clients = o.rate > 0.0 ? 1 : o.clients;
  const int per_client = o.rate > 0.0 ? o.requests : o.requests;
  Rng master(o.seed);
  std::vector<std::vector<PlannedRequest>> plans(
      static_cast<std::size_t>(total_clients));
  for (auto& plan : plans) {
    Rng rng = master.split();
    plan.resize(static_cast<std::size_t>(per_client));
    for (int i = 0; i < per_client; ++i) {
      PlannedRequest& p = plan[static_cast<std::size_t>(i)];
      p.scene = static_cast<int>(
          rng.next_int(0, static_cast<std::int64_t>(names.size()) - 1));
      plan_query(rng, o, boxes[static_cast<std::size_t>(p.scene)],
                 *references[static_cast<std::size_t>(p.scene)], p);
    }
  }

  // --- Service + tuner + swap machinery ------------------------------------
  ServiceOptions sopts;
  sopts.max_queue = o.queue;
  sopts.params.batch_size = o.batch;
  sopts.params.flush_timeout_us = o.flush_us;
  QueryService service(registry, pool, sopts);

  // Mid-run hot swap: clients rendezvous at their halfway point, the swapper
  // republishes every scene with a different configuration, then the second
  // half of the load runs against the new versions. Deterministic by
  // construction — every client queries both tree generations.
  std::mutex swap_mutex;
  std::condition_variable swap_cv;
  int clients_at_half = 0;
  bool swap_done = !o.swap;
  std::atomic<bool> load_done{false};

  std::thread swapper;
  if (o.swap) {
    swapper = std::thread([&] {
      {
        std::unique_lock<std::mutex> lk(swap_mutex);
        swap_cv.wait(lk, [&] {
          return clients_at_half == total_clients ||
                 load_done.load(std::memory_order_acquire);
        });
      }
      for (const std::string& name : names) {
        BuildConfig alt = kBaseConfig;
        alt.ci = 35;
        alt.cb = 4;
        const auto snap = registry.rebuild(name, alt);
        if (snap) {
          std::printf("  hot swap: %s -> v%llu (CI=%lld CB=%lld)\n",
                      name.c_str(),
                      static_cast<unsigned long long>(snap->version),
                      static_cast<long long>(snap->config.ci),
                      static_cast<long long>(snap->config.cb));
        }
      }
      {
        std::lock_guard<std::mutex> lk(swap_mutex);
        swap_done = true;
      }
      swap_cv.notify_all();
    });
  }

  const auto reach_halfway = [&] {
    if (!o.swap) return;
    std::unique_lock<std::mutex> lk(swap_mutex);
    ++clients_at_half;
    swap_cv.notify_all();
    swap_cv.wait(lk, [&] { return swap_done; });
  };

  // Tuner thread: fixed-length windows over the live traffic.
  std::set<std::int64_t> batch_sizes_applied;
  std::unique_ptr<ServeTuner> tuner;
  std::thread tuner_thread;
  if (o.tune) {
    ServeTunerOptions topts;
    topts.tune_flush = true;
    topts.tune_workers = true;
    // Give the heavy non-ray families their own batch/flush dimensions.
    topts.tune_families = {QueryKind::kRange, QueryKind::kNearest,
                           QueryKind::kClosestPoint};
    tuner = std::make_unique<ServeTuner>(service, topts);
    if (tuner_log.is_open()) tuner->tuner().set_log(&tuner_log, "serve");
    if (use_db) {
      const auto match = config_db.nearest(
          "serve", serve_features, HardwareDescriptor::detect(o.threads));
      if (match.entry != nullptr &&
          match.kind != ConfigDatabase::MatchKind::kFar) {
        const std::size_t seeded = tuner->warm_start_named(match.entry->params);
        std::printf(
            "serve tuner warm start: %zu dimension(s) from %s db match "
            "(d=%.3f, scene '%s')\n",
            seeded,
            match.kind == ConfigDatabase::MatchKind::kExact ? "exact" : "near",
            match.distance, match.entry->scene.c_str());
      }
    }
    tuner_thread = std::thread([&] {
      while (!load_done.load(std::memory_order_acquire)) {
        tuner->begin_window();
        {
          std::lock_guard<std::mutex> lk(swap_mutex);
          batch_sizes_applied.insert(service.serving_params().batch_size);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(o.window_ms));
        tuner->end_window();
      }
    });
  }

  // --- Fire the load -------------------------------------------------------
  std::vector<ClientTally> tallies(static_cast<std::size_t>(total_clients));
  Stopwatch wall;
  wall.start();
  std::vector<std::thread> clients;
  if (o.rate > 0.0) {
    // Open loop: one submitter paces arrivals; futures resolve out of band.
    clients.emplace_back([&] {
      ClientTally& tally = tallies[0];
      const auto interval = std::chrono::duration<double>(1.0 / o.rate);
      auto next = QueryService::Clock::now();
      std::vector<std::future<QueryResponse>> futures;
      futures.reserve(plans[0].size());
      for (std::size_t i = 0; i < plans[0].size(); ++i) {
        if (i == plans[0].size() / 2) reach_halfway();
        std::this_thread::sleep_until(next);
        next += std::chrono::duration_cast<QueryService::Clock::duration>(
            interval);
        futures.push_back(submit_planned(
            service, o, names[static_cast<std::size_t>(plans[0][i].scene)],
            plans[0][i]));
        ++tally.submitted;
      }
      service.drain();
      for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
          tally_response(o, plans[0][i], futures[i].get(), tally);
        } catch (...) {
          ++tally.broken_futures;
        }
      }
    });
  } else {
    for (int t = 0; t < total_clients; ++t) {
      clients.emplace_back([&, t] {
        ClientTally& tally = tallies[static_cast<std::size_t>(t)];
        auto& plan = plans[static_cast<std::size_t>(t)];
        for (std::size_t i = 0; i < plan.size(); ++i) {
          if (i == plan.size() / 2) reach_halfway();
          auto fut = submit_planned(
              service, o, names[static_cast<std::size_t>(plan[i].scene)],
              plan[i]);
          ++tally.submitted;
          try {
            tally_response(o, plan[i], fut.get(), tally);
          } catch (...) {
            ++tally.broken_futures;
          }
        }
      });
    }
  }
  for (auto& c : clients) c.join();
  load_done.store(true, std::memory_order_release);
  swap_cv.notify_all();
  const double load_seconds = wall.elapsed();
  if (tuner_thread.joinable()) tuner_thread.join();
  if (swapper.joinable()) swapper.join();
  service.drain();
  const ServiceStats stats = service.stats();
  service.shutdown();

  // --- Report --------------------------------------------------------------
  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.submitted += t.submitted;
    total.responses += t.responses;
    total.ok += t.ok;
    total.rejected += t.rejected;
    total.other += t.other;
    total.mismatches += t.mismatches;
    total.broken_futures += t.broken_futures;
  }

  std::printf(
      "\nload: %llu requests in %.2f s (%.0f submitted/s, %s)\n",
      static_cast<unsigned long long>(total.submitted), load_seconds,
      static_cast<double>(total.submitted) / load_seconds,
      o.rate > 0.0 ? "open loop" : "closed loop");
  std::printf("%s", service.stats_json().c_str());
  if (tuner) {
    const ServingParams best = tuner->best();
    std::printf(
        "tuner: %zu windows, %zu iterations, batch sizes tried {",
        tuner->windows(), tuner->tuner().iterations());
    bool first = true;
    for (const std::int64_t b : batch_sizes_applied) {
      std::printf("%s%lld", first ? "" : ", ", static_cast<long long>(b));
      first = false;
    }
    std::printf("}, best batch=%lld flush=%lldus inflight=%lld\n",
                static_cast<long long>(best.batch_size),
                static_cast<long long>(best.flush_timeout_us),
                static_cast<long long>(best.max_inflight_batches));
    if (use_db && tuner->windows() >= 1) {
      const double best_time = tuner->tuner().best_time();
      if (best_time > 0.0 && best_time < 1e30) {  // at least one full window
        ConfigDatabase::Entry entry;
        entry.workload = "serve";
        entry.scene = names[0];
        entry.builder = "in-place";  // matches the explorer's serve cells
        entry.backend = "compact";
        entry.hw = HardwareDescriptor::detect(o.threads);
        entry.features = serve_features;
        entry.params = {{"batch_size", best.batch_size},
                        {"flush_timeout_us", best.flush_timeout_us}};
        entry.seconds = best_time;
        if (config_db.store(std::move(entry))) {  // keeps-if-faster
          config_db.save_file(o.config_db_path);
          std::printf("recorded best serving params in %s\n",
                      o.config_db_path.c_str());
        }
      }
    }
  }

  // --- Checks (the serving contracts; exit code for CI) --------------------
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  std::printf("checks:\n");
  check(total.responses == total.submitted && total.broken_futures == 0,
        "every request resolved its future exactly once");
  check(stats.accepted == stats.completed + stats.timed_out +
                              stats.not_found + stats.failed,
        "accepted == completed + timed_out + not_found + failed");
  check(stats.not_found == 0 && stats.failed == 0,
        "no scene_not_found / internal errors");
  {
    bool all_served = true;
    for (int k = 0; k < kQueryKindCount; ++k) {
      const EndpointStats& e = stats.endpoints[static_cast<std::size_t>(k)];
      if (e.completed == 0 || e.batches == 0) all_served = false;
    }
    check(all_served, "every query family completed at least one batch");
  }
  if (o.verify) {
    check(total.mismatches == 0,
          "results bit-identical to single-threaded reference queries");
  }
  if (o.swap) {
    check(stats.swaps >= names.size(), "at least one hot swap per scene");
  }
  if (o.tune) {
    check(batch_sizes_applied.size() >= 2,
          "tuner applied at least two distinct batch sizes");
  }

  if (!o.json_path.empty()) {
    std::FILE* out = std::fopen(o.json_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(out,
                   "{\n\"load_seconds\": %.3f,\n\"submitted\": %llu,\n"
                   "\"responses\": %llu,\n\"mismatches\": %llu,\n"
                   "\"failures\": %d,\n\"service\": %s}\n",
                   load_seconds,
                   static_cast<unsigned long long>(total.submitted),
                   static_cast<unsigned long long>(total.responses),
                   static_cast<unsigned long long>(total.mismatches), failures,
                   service.stats_json().c_str());
      std::fclose(out);
      std::printf("wrote %s\n", o.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.json_path.c_str());
    }
  }
  if (!o.trace_path.empty()) {
    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.set_enabled(false);
    if (recorder.write_json(o.trace_path)) {
      std::printf("wrote %s (%zu trace events)\n", o.trace_path.c_str(),
                  recorder.event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.trace_path.c_str());
    }
  }
  if (tuner_log.is_open()) {
    std::printf("wrote %s (%llu tuner iterations)\n", o.tuner_log_path.c_str(),
                static_cast<unsigned long long>(tuner_log.records()));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ServeOptions o = parse_options(argc, argv);
    o.argv0 = argc > 0 ? argv[0] : "";
    return o.shards > 0 ? run_sharded(o) : run(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
