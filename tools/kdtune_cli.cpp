// kdtune command-line driver: the library's features end-to-end without
// writing code.
//
//   kdtune_cli info
//   kdtune_cli tune   <scene> <algorithm> [options]   # online-tune, cache
//   kdtune_cli render <scene> <algorithm> [options]   # warm-start + image
//   kdtune_cli select <scene> [options]               # pick best algorithm
//   kdtune_cli bake   <scene> <out.kdt> [options]     # build + serialize
//   kdtune_cli inspect <tree.kdt>                     # stats of a baked tree
//   kdtune_cli serve  <scene>[,scene...] [options]    # quick serving demo
//
// Options: --detail=F --threads=N --frames=N --cache=FILE --out=FILE
//          --seed=N (deterministic serve load)
//          --config-db=FILE (feature-keyed config database from
//          kdtune_explore; warm-starts tune/render/serve and records
//          tuned results back — see docs/EXPLORE.md)
//          --trace=FILE (Chrome trace-event JSON of the run; Perfetto)
//          --tuner-log=FILE (JSONL tuner decision log; `tune` command)
//          --obj=FILE (load geometry from a Wavefront OBJ instead of a
//          generated scene; pass "obj" as the scene name)
//
// `serve` is a short registry + QueryService demonstration; the full load
// generator with hot swaps, online tuning, and result verification is the
// dedicated kdtune_serve binary (tools/kdtune_serve.cpp).

#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct CliOptions {
  float detail = 0.5f;
  unsigned threads = 3;
  std::size_t frames = 80;
  std::string cache_path;
  std::string config_db_path;
  std::string out_path;
  std::string obj_path;
  int width = 320;
  int height = 240;
  std::uint64_t seed = 0x5EEDu;
  std::string tuner_log_path;
};

// The trace outlives any single command (main writes it after dispatch), so
// the requested path lives here rather than in CliOptions.
std::string g_trace_path;

CliOptions parse_options(int argc, char** argv, int first) {
  CliOptions o;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--detail=")) {
      o.detail = std::strtof(v, nullptr);
    } else if (const char* v = value("--threads=")) {
      o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--frames=")) {
      o.frames = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--cache=")) {
      o.cache_path = v;
    } else if (const char* v = value("--config-db=")) {
      o.config_db_path = v;
    } else if (const char* v = value("--out=")) {
      o.out_path = v;
    } else if (const char* v = value("--obj=")) {
      o.obj_path = v;
    } else if (const char* v = value("--size=")) {
      std::sscanf(v, "%dx%d", &o.width, &o.height);
    } else if (const char* v = value("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--trace=")) {
      g_trace_path = v;
      TraceRecorder::instance().set_enabled(true);
    } else if (const char* v = value("--tuner-log=")) {
      o.tuner_log_path = v;
    } else {
      throw std::invalid_argument("unknown option: " + arg);
    }
  }
  return o;
}

std::unique_ptr<AnimatedScene> resolve_scene(const std::string& id,
                                             const CliOptions& o) {
  if (id == "obj") {
    if (o.obj_path.empty()) {
      throw std::invalid_argument("scene 'obj' requires --obj=FILE");
    }
    const Mesh mesh = load_obj_file(o.obj_path);
    Scene scene(o.obj_path);
    mesh.append_triangles(scene.mutable_triangles());
    const AABB box = scene.bounds();
    const Vec3 c = box.center();
    const float r = length(box.extent());
    scene.set_camera({c + Vec3{0.0f, r * 0.3f, r * 0.9f}, c, {0, 1, 0}, 55.0f});
    scene.add_light({c + Vec3{r, r, r}, {1, 1, 1}});
    scene.add_light({c + Vec3{-r, r * 0.5f, -r}, {0.3f, 0.3f, 0.35f}});
    return std::make_unique<StaticScene>(std::move(scene));
  }
  return make_scene(id, o.detail);
}

void print_config(const char* label, const BuildConfig& c, bool lazy) {
  std::printf("%s CI=%lld CB=%lld S=%lld", label,
              static_cast<long long>(c.ci), static_cast<long long>(c.cb),
              static_cast<long long>(c.s));
  if (lazy) std::printf(" R=%lld", static_cast<long long>(c.r));
  std::printf("\n");
}

BuildConfig config_from_values(const std::vector<std::int64_t>& values) {
  BuildConfig c;
  c.ci = values[0];
  c.cb = values[1];
  c.s = values[2];
  if (values.size() > 3) c.r = values[3];
  return c;
}

BuildConfig config_from_db_entry(const ConfigDatabase::Entry& e) {
  BuildConfig c = kBaseConfig;
  for (const auto& [name, v] : e.params) {
    if (name == "ci") c.ci = v;
    else if (name == "cb") c.cb = v;
    else if (name == "s") c.s = v;
    else if (name == "r") c.r = v;
  }
  return c;
}

// The database's backend tag for a plain KdTree query path (matches
// SceneRegistry::db_backend_name): lazy trees stay in their native layout.
std::string db_backend_for(Algorithm algorithm) {
  return algorithm == Algorithm::kLazy ? "native" : "compact";
}

int cmd_info() {
  std::printf("scenes:     ");
  for (const auto& id : scene_ids()) std::printf("%s ", id.c_str());
  std::printf("obj (with --obj=FILE)\nalgorithms: ");
  for (const Algorithm a : all_algorithms()) {
    std::printf("%s ", std::string(to_string(a)).c_str());
  }
  std::printf("\nbase config: CI=17 CB=10 S=3 R=4096; CT fixed at 10\n");
  std::printf("ranges: CI [3,101], CB [0,60], S [1,8], R [16,8192] pow2\n");
  return 0;
}

int cmd_tune(const std::string& scene_id, const std::string& algo,
             const CliOptions& o) {
  const Algorithm algorithm = algorithm_from_string(algo);
  const auto scene = resolve_scene(scene_id, o);
  ThreadPool pool(o.threads);

  const HardwareDescriptor hw = HardwareDescriptor::detect(pool.concurrency());
  ConfigCache cache;
  const std::string legacy_key =
      ConfigCache::key_for(scene->name(), algo, pool.concurrency());
  const std::string key = ConfigCache::key_for(
      scene->name(), algo, pool.concurrency(), db_backend_for(algorithm),
      hw.suffix());
  if (!o.cache_path.empty()) cache.load_file(o.cache_path);

  ConfigDatabase db;
  if (!o.config_db_path.empty()) db.load_file(o.config_db_path);

  PipelineOptions popts;
  popts.width = o.width / 2;
  popts.height = o.height / 2;
  TunedPipeline pipeline(algorithm, pool, std::move(popts));
  TunerLog tuner_log;
  if (!o.tuner_log_path.empty()) {
    if (tuner_log.open(o.tuner_log_path)) {
      pipeline.tuner().set_log(&tuner_log, "core:" + algo);
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.tuner_log_path.c_str());
    }
  }
  const Scene first = scene->frame(0);
  SceneFeatures features{};
  if (!o.config_db_path.empty()) {
    features = SceneFeatures::extract(first.triangles());
  }
  if (const auto hit = cache.lookup_compat(key, legacy_key)) {
    std::printf("warm start from cache: ");
    print_config("", config_from_values(hit->values),
                 algorithm == Algorithm::kLazy);
    pipeline.warm_start(config_from_values(hit->values));
  } else if (!o.config_db_path.empty()) {
    // Cache miss: fall back to the explorer database. An exact context hit
    // reuses the stored parameters directly; a near neighbor seeds the
    // search; a far miss leaves the cold start untouched.
    const auto match = db.nearest("build", features, hw,
                                  std::string(to_string(algorithm)));
    if (match.entry && match.kind != ConfigDatabase::MatchKind::kFar) {
      std::printf("%s warm start from config db (d=%.3f, scene '%s'): ",
                  match.kind == ConfigDatabase::MatchKind::kExact ? "exact"
                                                                  : "near",
                  match.distance, match.entry->scene.c_str());
      const BuildConfig seed = config_from_db_entry(*match.entry);
      print_config("", seed, algorithm == Algorithm::kLazy);
      pipeline.warm_start(seed);
    }
  }

  double base_time = 0.0;
  for (int i = 0; i < 3; ++i) {
    base_time += pipeline.render_frame_with(first, kBaseConfig).total_seconds;
  }
  base_time /= 3.0;

  for (std::size_t i = 0; i < o.frames; ++i) {
    const std::size_t f =
        scene->frame_count() > 1 ? (i / 5) % scene->frame_count() : 0;
    pipeline.render_frame(scene->frame(f));
    if (pipeline.tuner().converged()) break;
  }

  const double best = pipeline.tuner().best_time();
  std::printf("C_base %.2f ms -> tuned %.2f ms (%.2fx) after %zu frames\n",
              base_time * 1e3, best * 1e3, base_time / best,
              pipeline.tuner().iterations());
  print_config("best:", pipeline.best_config(),
               algorithm == Algorithm::kLazy);

  if (!o.cache_path.empty()) {
    cache.store(key, pipeline.tuner().best_values(), best);
    cache.save_file(o.cache_path);
    std::printf("cached as '%s' in %s\n", key.c_str(), o.cache_path.c_str());
  }
  if (!o.config_db_path.empty()) {
    ConfigDatabase::Entry entry;
    entry.workload = "build";
    entry.scene = scene->name();
    entry.builder = std::string(to_string(algorithm));
    entry.backend = db_backend_for(algorithm);
    entry.hw = hw;
    entry.features = features;
    const BuildConfig bc = pipeline.best_config();
    entry.params = {{"ci", bc.ci}, {"cb", bc.cb}, {"s", bc.s}};
    if (algorithm == Algorithm::kLazy) entry.params.emplace_back("r", bc.r);
    entry.seconds = best;
    if (db.store(std::move(entry))) {  // keeps-if-faster
      db.save_file(o.config_db_path);
      std::printf("recorded in config db %s\n", o.config_db_path.c_str());
    }
  }
  return 0;
}

int cmd_render(const std::string& scene_id, const std::string& algo,
               const CliOptions& o) {
  const Algorithm algorithm = algorithm_from_string(algo);
  const auto scene = resolve_scene(scene_id, o);
  ThreadPool pool(o.threads);

  const Scene frame = scene->frame(0);
  BuildConfig config = kBaseConfig;
  bool configured = false;
  if (!o.cache_path.empty()) {
    ConfigCache cache;
    cache.load_file(o.cache_path);
    const std::string key = ConfigCache::key_for(
        scene->name(), algo, pool.concurrency(), db_backend_for(algorithm),
        HardwareDescriptor::detect(pool.concurrency()).suffix());
    const std::string legacy_key =
        ConfigCache::key_for(scene->name(), algo, pool.concurrency());
    if (const auto hit = cache.lookup_compat(key, legacy_key)) {
      config = config_from_values(hit->values);
      configured = true;
      std::printf("using cached configuration for '%s'\n", key.c_str());
    }
  }
  if (!configured && !o.config_db_path.empty()) {
    ConfigDatabase db;
    db.load_file(o.config_db_path);
    const auto match = db.nearest(
        "build", SceneFeatures::extract(frame.triangles()),
        HardwareDescriptor::detect(pool.concurrency()),
        std::string(to_string(algorithm)));
    if (match.entry && match.kind != ConfigDatabase::MatchKind::kFar) {
      config = config_from_db_entry(*match.entry);
      std::printf("using config db %s match (d=%.3f, scene '%s')\n",
                  match.kind == ConfigDatabase::MatchKind::kExact ? "exact"
                                                                  : "near",
                  match.distance, match.entry->scene.c_str());
    }
  }
  print_config("config:", config, algorithm == Algorithm::kLazy);

  PipelineOptions popts;
  popts.width = o.width;
  popts.height = o.height;
  TunedPipeline pipeline(algorithm, pool, std::move(popts));
  Framebuffer fb(o.width, o.height);
  const FrameReport r = pipeline.render_frame_with(frame, config, &fb);
  std::printf("frame: %.2f ms (build %.2f + render %.2f), %zu nodes\n",
              r.total_seconds * 1e3, r.build_seconds * 1e3,
              r.render_seconds * 1e3, r.tree.node_count);

  const std::string out =
      o.out_path.empty() ? scene->name() + ".ppm" : o.out_path;
  fb.save_ppm(out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_select(const std::string& scene_id, const CliOptions& o) {
  const auto scene = resolve_scene(scene_id, o);
  ThreadPool pool(o.threads);
  SelectorOptions sopts;
  sopts.width = o.width / 2;
  sopts.height = o.height / 2;
  sopts.frames_per_algorithm = o.frames / 4 + 1;
  AlgorithmSelector selector(pool, sopts);
  const Scene frame = scene->frame(0);
  while (!selector.selection_done()) selector.render_frame(frame);

  for (const auto& [algorithm, time] : selector.standings()) {
    std::printf("%-10s %8.2f ms\n", std::string(to_string(algorithm)).c_str(),
                time * 1e3);
  }
  std::printf("selected: %s\n",
              std::string(to_string(selector.selected())).c_str());
  return 0;
}

int cmd_bake(const std::string& scene_id, const std::string& out,
             const CliOptions& o) {
  const auto scene = resolve_scene(scene_id, o);
  const Scene frame = scene->frame(0);
  ThreadPool pool(o.threads);
  Stopwatch clock;
  clock.start();
  auto tree_base =
      make_builder(Algorithm::kInPlace)->build(frame.triangles(), kBaseConfig, pool);
  const double build_s = clock.elapsed();
  auto* tree = dynamic_cast<KdTree*>(tree_base.get());
  save_tree_file(out, *tree);
  std::printf("built %zu nodes over %zu triangles in %.2f ms -> %s\n",
              tree->nodes().size(), frame.triangle_count(), build_s * 1e3,
              out.c_str());
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto tree = load_tree_file(path);
  const TreeStats s = tree->stats();
  std::printf("%s:\n", path.c_str());
  std::printf("  triangles     %zu\n", tree->triangles().size());
  std::printf("  nodes         %zu (%zu leaves, %zu empty)\n", s.node_count,
              s.leaf_count, s.empty_leaf_count);
  std::printf("  max depth     %zu\n", s.max_depth);
  std::printf("  prim refs     %zu (avg %.2f per non-empty leaf)\n",
              s.prim_refs, s.avg_leaf_prims);
  std::printf("  SAH cost      %.1f\n", s.sah_cost);
  const TreeAnalysis analysis = analyze_tree(*tree);
  std::printf("  %s\n", analysis.to_string().c_str());
  return 0;
}

int cmd_serve(const std::string& scene_list, const CliOptions& o) {
  std::vector<std::string> ids;
  std::string item;
  for (const char* p = scene_list.c_str();; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) ids.push_back(item);
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  if (ids.empty()) throw std::invalid_argument("serve: no scenes given");

  ThreadPool pool(o.threads);
  ConfigDatabase db;
  SceneRegistry registry(pool);
  ConfigCache cache;
  if (!o.cache_path.empty()) {
    cache.load_file(o.cache_path);
    registry.attach_cache(&cache);  // warm-starts every admit below
  }
  if (!o.config_db_path.empty()) {
    db.load_file(o.config_db_path);
    registry.attach_database(&db);  // cache misses fall back to NN lookup
  }

  std::vector<AABB> boxes;
  for (const std::string& id : ids) {
    const Scene scene = resolve_scene(id, o)->frame(0);
    boxes.push_back(scene.bounds());
    const auto snap = registry.admit(id, scene);
    std::printf("admitted %-12s %7zu tris, %s v%llu, ", id.c_str(),
                snap->triangle_count, snap->layout.c_str(),
                static_cast<unsigned long long>(snap->version));
    print_config("", snap->config, snap->algorithm == Algorithm::kLazy);
  }

  QueryService service(registry, pool);
  const std::size_t per_scene = 2000;
  Rng master(o.seed);
  Stopwatch wall;
  wall.start();
  std::vector<std::thread> clients;
  for (std::size_t s = 0; s < ids.size(); ++s) {
    clients.emplace_back([&, s, rng = master.split()]() mutable {
      const AABB& box = boxes[s];
      for (std::size_t i = 0; i < per_scene; ++i) {
        const Vec3 origin = box.center() +
                            normalized(Vec3{rng.uniform(-1, 1),
                                            rng.uniform(-1, 1),
                                            rng.uniform(-1, 1)}) *
                                (length(box.extent()) * 0.8f + 0.5f);
        const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                          rng.uniform(box.lo.y, box.hi.y),
                          rng.uniform(box.lo.z, box.hi.z)};
        Vec3 dir = target - origin;
        if (length(dir) == 0.0f) dir = {1, 0, 0};
        service.submit_closest_hit(ids[s], Ray(origin, normalized(dir)))
            .get();
      }
    });
  }
  for (auto& c : clients) c.join();
  service.drain();
  const double seconds = wall.elapsed();

  std::printf("%s", service.stats_json().c_str());
  std::printf("%zu requests in %.2f s (%.0f req/s, seed %llu)\n",
              per_scene * ids.size(), seconds,
              static_cast<double>(per_scene * ids.size()) / seconds,
              static_cast<unsigned long long>(o.seed));
  std::printf(
      "(full load generator with hot swaps, tuning, and verification: "
      "kdtune_serve)\n");
  return 0;
}

int cmd_export_scene(const std::string& scene_id, const std::string& out,
                     const CliOptions& o) {
  const Scene frame = resolve_scene(scene_id, o)->frame(0);
  Mesh mesh;
  for (const Triangle& t : frame.triangles()) {
    const auto a = mesh.add_vertex(t.a);
    const auto b = mesh.add_vertex(t.b);
    const auto c = mesh.add_vertex(t.c);
    mesh.add_triangle(a, b, c);
  }
  save_obj_file(out, mesh);
  std::printf("wrote %zu triangles to %s\n", mesh.triangle_count(),
              out.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: kdtune_cli <info|tune|render|select|bake|inspect|"
               "export-scene|serve> ...\n"
               "  tune   <scene> <algorithm> [--frames=N] [--cache=FILE]\n"
               "  render <scene> <algorithm> [--cache=FILE] [--out=FILE]\n"
               "  select <scene>\n"
               "  bake   <scene> <out.kdt>\n"
               "  inspect <tree.kdt>\n"
               "  export-scene <scene> <out.obj>\n"
               "  serve  <scene>[,scene...] [--cache=FILE] [--seed=N]\n"
               "         (quick demo; kdtune_serve is the full load "
               "generator)\n"
               "common: --detail=F --threads=N --size=WxH --obj=FILE "
               "--seed=N --config-db=FILE\n");
  return 1;
}

}  // namespace

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "info") return cmd_info();
    if (cmd == "tune" && argc >= 4) {
      return cmd_tune(argv[2], argv[3], parse_options(argc, argv, 4));
    }
    if (cmd == "render" && argc >= 4) {
      return cmd_render(argv[2], argv[3], parse_options(argc, argv, 4));
    }
    if (cmd == "select" && argc >= 3) {
      return cmd_select(argv[2], parse_options(argc, argv, 3));
    }
    if (cmd == "bake" && argc >= 4) {
      return cmd_bake(argv[2], argv[3], parse_options(argc, argv, 4));
    }
    if (cmd == "inspect" && argc >= 3) return cmd_inspect(argv[2]);
    if (cmd == "serve" && argc >= 3) {
      return cmd_serve(argv[2], parse_options(argc, argv, 3));
    }
    if (cmd == "export-scene" && argc >= 4) {
      return cmd_export_scene(argv[2], argv[3], parse_options(argc, argv, 4));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

int main(int argc, char** argv) {
  const int rc = dispatch(argc, argv);
  if (!g_trace_path.empty()) {
    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.set_enabled(false);
    if (recorder.write_json(g_trace_path)) {
      std::printf("wrote %s (%zu trace events)\n", g_trace_path.c_str(),
                  recorder.event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", g_trace_path.c_str());
    }
  }
  return rc;
}
