// kdtune_explore: offline design-space sweep driver (docs/EXPLORE.md).
//
//   kdtune_explore [options]
//
// Sweeps builders x Table-II configurations x query backends x serving
// knobs over generator scenes and distills the results into a portable
// ConfigDatabase that warm-starts the online tuners on later runs. The
// sweep checkpoints after every cell (database + progress file), so an
// interrupted run resumes instead of restarting.
//
// Options:
//   --db=FILE         database path (default explore_db.jsonl); loaded if
//                     present, checkpointed after every cell
//   --scenes=a,b,c    generator scene ids (default: all six; see
//                     kdtune_cli info)
//   --detail=F        generator detail scale (default 0.12)
//   --threads=N       pool workers (default 3)
//   --rays=N          probe rays per build cell (default 512)
//   --requests=N      requests per serve cell (default 256)
//   --max-cells=N     stop after measuring N cells (resume later; 0 = all)
//   --smoke           tiny grid + bunny-only defaults (CI)
//   --fresh           ignore an existing progress file (re-measure all)
//   --no-serve        skip the serving-knob sweep
//   --no-build        skip the build sweep
//   --check-roundtrip=FILE
//                     validation mode: load FILE, re-save, and verify the
//                     bytes are identical; exits 0/1, runs no sweep
//   --trace=FILE      Chrome trace-event JSON of the sweep
//   --tuner-log=FILE  JSONL measurement log (streams "explore:<scene>:...")

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

int check_roundtrip(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream original;
  original << in.rdbuf();

  ConfigDatabase db;
  try {
    std::stringstream parse(original.str());
    db.load(parse);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s does not parse: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::stringstream resaved;
  db.save(resaved);
  if (resaved.str() != original.str()) {
    std::fprintf(stderr,
                 "%s: re-save is not byte-identical (%zu vs %zu bytes)\n",
                 path.c_str(), resaved.str().size(), original.str().size());
    return 1;
  }
  std::printf("%s: %zu entries, load -> save byte-identical\n", path.c_str(),
              db.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ExploreOptions opts;
  opts.scenes = scene_ids();
  opts.db_path = "explore_db.jsonl";
  bool fresh = false;
  bool smoke = false;
  std::string roundtrip_path;
  std::string trace_path;
  std::string tuner_log_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--db=")) {
      opts.db_path = v;
    } else if (const char* v = value("--scenes=")) {
      opts.scenes = split_csv(v);
    } else if (const char* v = value("--detail=")) {
      opts.detail = std::strtof(v, nullptr);
    } else if (const char* v = value("--threads=")) {
      opts.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--rays=")) {
      opts.build_rays = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--requests=")) {
      opts.serve_requests = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--max-cells=")) {
      opts.max_cells = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--check-roundtrip=")) {
      roundtrip_path = v;
    } else if (const char* v = value("--trace=")) {
      trace_path = v;
      TraceRecorder::instance().set_enabled(true);
    } else if (const char* v = value("--tuner-log=")) {
      tuner_log_path = v;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--fresh") {
      fresh = true;
    } else if (arg == "--no-serve") {
      opts.sweep_serve = false;
    } else if (arg == "--no-build") {
      opts.sweep_build = false;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  if (!roundtrip_path.empty()) return check_roundtrip(roundtrip_path);

  if (smoke) {
    opts.grid = ExploreGrid::smoke();
    opts.scenes = {"bunny"};
    opts.detail = 0.05f;
    opts.build_rays = 64;
    opts.serve_requests = 64;
  }

  if (fresh) {
    const std::string progress = opts.progress_path.empty()
                                     ? opts.db_path + ".progress"
                                     : opts.progress_path;
    std::remove(progress.c_str());
  }

  TunerLog log;
  if (!tuner_log_path.empty()) {
    if (!log.open(tuner_log_path)) {
      std::fprintf(stderr, "cannot write %s\n", tuner_log_path.c_str());
      return 1;
    }
    opts.log = &log;
  }

  ConfigDatabase db;
  db.load_file(opts.db_path);  // resume; missing/corrupt = cold start
  std::printf("exploring %zu scene(s), db %s (%zu entries loaded)\n",
              opts.scenes.size(), opts.db_path.c_str(), db.size());

  ExploreStats stats;
  try {
    stats = run_explore(opts, db);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore failed: %s\n", e.what());
    return 1;
  }

  std::printf(
      "cells: %zu total, %zu measured, %zu resumed; db: %zu entries "
      "(%zu updated)\n",
      stats.cells_total, stats.cells_run, stats.cells_skipped, db.size(),
      stats.db_updates);

  if (!trace_path.empty()) {
    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.set_enabled(false);
    if (recorder.write_json(trace_path)) {
      std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                  recorder.event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}
