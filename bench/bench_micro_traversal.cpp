// Micro: traversal (closest-hit and shadow-ray) throughput through trees
// built by the different algorithms, plus the SAH-vs-median-split ablation —
// how much query time the SAH actually buys — and the query-backend
// comparison: builder layout (KdTree), compact serving layout
// (CompactKdTree), its 4/8-wide SIMD collapses (WideKdTree), and the BVH
// baseline, all over the same trees and rays with hit parity checked first.
//
// Besides the google-benchmark suite, the binary always runs a small
// measurement pass that writes machine-readable results to
// BENCH_traversal.json (override with --json=PATH). `--smoke` runs only that
// pass with reduced repetitions — the CI Release job uses it to produce the
// JSON artifact without paying for the full suite.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct Fixture {
  Scene scene;
  std::unique_ptr<KdTreeBase> tree;
  std::shared_ptr<const CompactKdTree> compact;
  std::unique_ptr<WideTreeBase> wide4;
  std::unique_ptr<WideTreeBase> wide8;
  std::unique_ptr<Bvh> bvh;
  std::vector<Ray> rays;
};

Fixture make_fixture(int builder_id) {
  Fixture f;
  f.scene = make_scene("sponza", 0.3f)->frame(0);
  ThreadPool pool(3);
  switch (builder_id) {
    case 0:
      f.tree = make_median_builder()->build(f.scene.triangles(), kBaseConfig, pool);
      break;
    case 1:
      f.tree = make_sweep_builder()->build(f.scene.triangles(), kBaseConfig, pool);
      break;
    default:
      f.tree = make_builder(Algorithm::kInPlace)
                   ->build(f.scene.triangles(), kBaseConfig, pool);
      break;
  }
  f.compact = std::make_shared<const CompactKdTree>(
      dynamic_cast<const KdTree&>(*f.tree));
  f.wide4 = make_wide_tree(f.compact, QueryBackend::kWide4);
  f.wide8 = make_wide_tree(f.compact, QueryBackend::kWide8);
  f.bvh = build_bvh(f.scene.triangles(), {}, pool);
  const Camera camera(f.scene.camera(), 256, 192);
  for (int y = 0; y < 192; y += 2) {
    for (int x = 0; x < 256; x += 2) {
      f.rays.push_back(camera.primary_ray(x, y));
    }
  }
  return f;
}

const char* fixture_name(int id) {
  switch (id) {
    case 0: return "median-tree";
    case 1: return "sweep-tree";
    default: return "in-place-tree";
  }
}

const char* kLayoutNames[] = {"kdtree", "compact", "wide4", "wide8", "bvh"};

const KdTreeBase& pick_layout(const Fixture& f, int layout) {
  switch (layout) {
    case 0: return *f.tree;
    case 1: return *f.compact;
    case 2: return *f.wide4;
    case 3: return *f.wide8;
    default: return *f.bvh;
  }
}

std::string layout_label(int id, int layout) {
  return std::string(fixture_name(id)) + "/" + kLayoutNames[layout];
}

void BM_ClosestHit(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int id = static_cast<int>(state.range(0));
  const int layout = static_cast<int>(state.range(1));
  if (!cache.contains(id)) cache.emplace(id, make_fixture(id));
  const Fixture& f = cache.at(id);
  const KdTreeBase& tree = pick_layout(f, layout);

  std::size_t i = 0;
  for (auto _ : state) {
    const Hit hit = tree.closest_hit(f.rays[i]);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) % f.rays.size();
  }
  state.SetLabel(layout_label(id, layout));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosestHit)->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4}});

void BM_AnyHit(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int id = static_cast<int>(state.range(0));
  const int layout = static_cast<int>(state.range(1));
  if (!cache.contains(id)) cache.emplace(id, make_fixture(id));
  const Fixture& f = cache.at(id);
  const KdTreeBase& tree = pick_layout(f, layout);

  std::size_t i = 0;
  for (auto _ : state) {
    const bool hit = tree.any_hit(f.rays[i]);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) % f.rays.size();
  }
  state.SetLabel(layout_label(id, layout));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnyHit)->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4}});

// CI/CB sensitivity: how the SAH parameters change the tree's query cost —
// the mechanism the autotuner exploits.
void BM_TraversalVsCi(benchmark::State& state) {
  const Scene scene = make_scene("sibenik", 0.25f)->frame(0);
  ThreadPool pool(3);
  BuildConfig config;
  config.ci = state.range(0);
  const auto tree =
      make_builder(Algorithm::kInPlace)->build(scene.triangles(), config, pool);
  const Camera camera(scene.camera(), 128, 96);
  std::vector<Ray> rays;
  for (int y = 0; y < 96; y += 2) {
    for (int x = 0; x < 128; x += 2) rays.push_back(camera.primary_ray(x, y));
  }

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->closest_hit(rays[i]));
    i = (i + 1) % rays.size();
  }
  state.SetLabel("CI=" + std::to_string(config.ci));
}
BENCHMARK(BM_TraversalVsCi)->Arg(3)->Arg(17)->Arg(50)->Arg(101);

// Packet vs scalar traversal on coherent camera tiles, for both layouts.
void BM_PacketVsScalar(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  static std::map<int, Fixture> cache;
  if (!cache.contains(1)) cache.emplace(1, make_fixture(1));
  const Fixture& f = cache.at(1);
  const auto* tree = dynamic_cast<const KdTree*>(f.tree.get());

  std::vector<Hit> hits(kMaxPacketSize);
  std::size_t offset = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kMaxPacketSize, f.rays.size() - offset);
    const std::span<const Ray> rays(f.rays.data() + offset, n);
    if (mode == 1) {
      closest_hit_packet(*tree, rays, std::span<Hit>(hits.data(), n));
      benchmark::DoNotOptimize(hits.data());
    } else if (mode == 2) {
      closest_hit_packet(*f.compact, rays, std::span<Hit>(hits.data(), n));
      benchmark::DoNotOptimize(hits.data());
    } else {
      for (const Ray& ray : rays) {
        benchmark::DoNotOptimize(tree->closest_hit(ray));
      }
    }
    offset = (offset + kMaxPacketSize) % (f.rays.size() - kMaxPacketSize);
  }
  state.SetLabel(mode == 1 ? "packet64" : mode == 2 ? "packet64-compact"
                                                    : "scalar");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMaxPacketSize));
}
BENCHMARK(BM_PacketVsScalar)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// Machine-readable measurement pass (BENCH_traversal.json).

double time_pass_ns(const KdTreeBase& tree, const std::vector<Ray>& rays,
                    bool any) {
  using Clock = std::chrono::steady_clock;
  std::size_t sink = 0;
  const auto t0 = Clock::now();
  for (const Ray& ray : rays) {
    if (any) {
      sink += tree.any_hit(ray) ? 1 : 0;
    } else {
      sink += tree.closest_hit(ray).valid() ? 1 : 0;
    }
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(rays.size());
}

/// Times every layout with interleaved repetitions (A B C ... A B C ...) so
/// that machine noise hits all sides equally, and reports the best pass of
/// each — the standard min-of-N estimator for a noisy shared host.
std::vector<double> measure_all_ns(
    const std::vector<const KdTreeBase*>& trees, const std::vector<Ray>& rays,
    bool any, int reps) {
  std::vector<double> best(trees.size(), 1e30);
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < trees.size(); ++i) {
      best[i] = std::min(best[i], time_pass_ns(*trees[i], rays, any));
    }
  }
  return best;
}

void run_json_pass(const std::string& path, bool smoke) {
  const int reps = smoke ? 7 : 9;
  const float detail = 1.0f;
  std::vector<bench::BenchRecord> records;
  ThreadPool pool(3);

  struct BuilderSpec {
    const char* name;
    std::unique_ptr<Builder> builder;
  };
  BuilderSpec builders[3] = {{"median", make_median_builder()},
                             {"sweep", make_sweep_builder()},
                             {"inplace", make_builder(Algorithm::kInPlace)}};
  const char* scenes[] = {"bunny", "sponza"};

  double bunny_kd_ns = 0.0, bunny_compact_ns = 0.0, bunny_wide8_ns = 0.0;
  std::size_t mismatches = 0;

  for (const char* scene_id : scenes) {
    const Scene scene = make_scene(scene_id, detail)->frame(0);
    const Camera camera(scene.camera(), 256, 192);
    std::vector<Ray> rays;
    for (int y = 0; y < 192; ++y) {
      for (int x = 0; x < 256; ++x) rays.push_back(camera.primary_ray(x, y));
    }
    for (BuilderSpec& spec : builders) {
      const auto tree =
          spec.builder->build(scene.triangles(), kBaseConfig, pool);
      const auto& kd = dynamic_cast<const KdTree&>(*tree);
      const auto compact = std::make_shared<const CompactKdTree>(kd);
      const auto wide4 = make_wide_tree(compact, QueryBackend::kWide4);
      const auto wide8 = make_wide_tree(compact, QueryBackend::kWide8);
      const auto bvh = build_bvh(scene.triangles(), {}, pool);
      const std::vector<const KdTreeBase*> trees{
          &kd, compact.get(), wide4.get(), wide8.get(), bvh.get()};

      // Hit parity on every ray before trusting the timings. The compact
      // layout must match the builder tree exactly (same traversal order);
      // the wide collapses and the BVH visit leaves in a different order, so
      // triangle ids may differ on exact t-ties — valid/t stay bit-exact.
      for (const Ray& ray : rays) {
        const Hit a = kd.closest_hit(ray);
        const Hit b = compact->closest_hit(ray);
        if (a.valid() != b.valid() ||
            (a.valid() && (a.t != b.t || a.triangle != b.triangle ||
                           a.u != b.u || a.v != b.v))) {
          ++mismatches;
        }
        for (const KdTreeBase* other : {static_cast<const KdTreeBase*>(
                                            wide4.get()),
                                        static_cast<const KdTreeBase*>(
                                            wide8.get()),
                                        static_cast<const KdTreeBase*>(
                                            bvh.get())}) {
          const Hit c = other->closest_hit(ray);
          if (a.valid() != c.valid() || (a.valid() && a.t != c.t)) {
            ++mismatches;
          }
          if (a.valid() != other->any_hit(ray)) ++mismatches;
        }
      }

      for (const bool any : {false, true}) {
        const char* query = any ? "any_hit" : "closest_hit";
        const std::vector<double> ns =
            measure_all_ns(trees, rays, any, reps);
        for (std::size_t i = 0; i < trees.size(); ++i) {
          records.push_back({scene_id, spec.name, kLayoutNames[i], query,
                             ns[i], 1e9 / ns[i]});
        }
        if (!any && std::string(scene_id) == "bunny" &&
            std::string(spec.name) == "sweep") {
          bunny_kd_ns = ns[0];
          bunny_compact_ns = ns[1];
          bunny_wide8_ns = ns[3];
        }
        std::printf("%-8s %-8s %-12s kdtree %7.1f | compact %7.1f | wide4 "
                    "%7.1f | wide8 %7.1f | bvh %7.1f ns/ray\n",
                    scene_id, spec.name, query, ns[0], ns[1], ns[2], ns[3],
                    ns[4]);
      }
    }
  }

  std::printf("hit-parity mismatches: %zu\n", mismatches);
  if (bunny_compact_ns > 0.0) {
    std::printf(
        "compact speedup (bunny, recursive sweep builder, closest_hit): "
        "%.2fx\n",
        bunny_kd_ns / bunny_compact_ns);
    std::printf(
        "wide8 speedup vs compact (bunny, sweep builder, closest_hit, "
        "simd=%s): %.2fx\n",
        to_string(detect_simd_level()),
        bunny_compact_ns / bunny_wide8_ns);
  }
  bench::write_bench_json(path, records);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_traversal.json";
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  run_json_pass(json_path, smoke);
  if (smoke) return 0;

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
