// Micro: traversal (closest-hit and shadow-ray) throughput through trees
// built by the different algorithms, plus the SAH-vs-median-split ablation —
// how much query time the SAH actually buys.

#include <benchmark/benchmark.h>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct Fixture {
  Scene scene;
  std::unique_ptr<KdTreeBase> tree;
  std::vector<Ray> rays;
};

Fixture make_fixture(int builder_id) {
  Fixture f;
  f.scene = make_scene("sponza", 0.3f)->frame(0);
  ThreadPool pool(3);
  switch (builder_id) {
    case 0:
      f.tree = make_median_builder()->build(f.scene.triangles(), kBaseConfig, pool);
      break;
    case 1:
      f.tree = make_sweep_builder()->build(f.scene.triangles(), kBaseConfig, pool);
      break;
    default:
      f.tree = make_builder(Algorithm::kInPlace)
                   ->build(f.scene.triangles(), kBaseConfig, pool);
      break;
  }
  const Camera camera(f.scene.camera(), 256, 192);
  for (int y = 0; y < 192; y += 2) {
    for (int x = 0; x < 256; x += 2) {
      f.rays.push_back(camera.primary_ray(x, y));
    }
  }
  return f;
}

const char* fixture_name(int id) {
  switch (id) {
    case 0: return "median-tree";
    case 1: return "sweep-tree";
    default: return "in-place-tree";
  }
}

void BM_ClosestHit(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int id = static_cast<int>(state.range(0));
  if (!cache.contains(id)) cache.emplace(id, make_fixture(id));
  const Fixture& f = cache.at(id);

  std::size_t i = 0;
  for (auto _ : state) {
    const Hit hit = f.tree->closest_hit(f.rays[i]);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) % f.rays.size();
  }
  state.SetLabel(fixture_name(id));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosestHit)->DenseRange(0, 2);

void BM_AnyHit(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int id = static_cast<int>(state.range(0));
  if (!cache.contains(id)) cache.emplace(id, make_fixture(id));
  const Fixture& f = cache.at(id);

  std::size_t i = 0;
  for (auto _ : state) {
    const bool hit = f.tree->any_hit(f.rays[i]);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) % f.rays.size();
  }
  state.SetLabel(fixture_name(id));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnyHit)->DenseRange(0, 2);

// CI/CB sensitivity: how the SAH parameters change the tree's query cost —
// the mechanism the autotuner exploits.
void BM_TraversalVsCi(benchmark::State& state) {
  const Scene scene = make_scene("sibenik", 0.25f)->frame(0);
  ThreadPool pool(3);
  BuildConfig config;
  config.ci = state.range(0);
  const auto tree =
      make_builder(Algorithm::kInPlace)->build(scene.triangles(), config, pool);
  const Camera camera(scene.camera(), 128, 96);
  std::vector<Ray> rays;
  for (int y = 0; y < 96; y += 2) {
    for (int x = 0; x < 128; x += 2) rays.push_back(camera.primary_ray(x, y));
  }

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->closest_hit(rays[i]));
    i = (i + 1) % rays.size();
  }
  state.SetLabel("CI=" + std::to_string(config.ci));
}
BENCHMARK(BM_TraversalVsCi)->Arg(3)->Arg(17)->Arg(50)->Arg(101);

// Packet vs scalar traversal on coherent camera tiles.
void BM_PacketVsScalar(benchmark::State& state) {
  const bool packets = state.range(0) == 1;
  static std::map<int, Fixture> cache;
  if (!cache.contains(1)) cache.emplace(1, make_fixture(1));
  const Fixture& f = cache.at(1);
  const auto* tree = dynamic_cast<const KdTree*>(f.tree.get());

  std::vector<Hit> hits(kMaxPacketSize);
  std::size_t offset = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kMaxPacketSize, f.rays.size() - offset);
    const std::span<const Ray> rays(f.rays.data() + offset, n);
    if (packets) {
      closest_hit_packet(*tree, rays, std::span<Hit>(hits.data(), n));
      benchmark::DoNotOptimize(hits.data());
    } else {
      for (const Ray& ray : rays) {
        benchmark::DoNotOptimize(tree->closest_hit(ray));
      }
    }
    offset = (offset + kMaxPacketSize) % (f.rays.size() - kMaxPacketSize);
  }
  state.SetLabel(packets ? "packet64" : "scalar");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMaxPacketSize));
}
BENCHMARK(BM_PacketVsScalar)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
