// Micro: traversal (closest-hit and shadow-ray) throughput through trees
// built by the different algorithms, plus the SAH-vs-median-split ablation —
// how much query time the SAH actually buys — and the builder layout
// (KdTree) vs compact serving layout (CompactKdTree) comparison.
//
// Besides the google-benchmark suite, the binary always runs a small
// measurement pass that writes machine-readable results to
// BENCH_traversal.json (override with --json=PATH). `--smoke` runs only that
// pass with reduced repetitions — the CI Release job uses it to produce the
// JSON artifact without paying for the full suite.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct Fixture {
  Scene scene;
  std::unique_ptr<KdTreeBase> tree;
  std::unique_ptr<CompactKdTree> compact;
  std::vector<Ray> rays;
};

Fixture make_fixture(int builder_id) {
  Fixture f;
  f.scene = make_scene("sponza", 0.3f)->frame(0);
  ThreadPool pool(3);
  switch (builder_id) {
    case 0:
      f.tree = make_median_builder()->build(f.scene.triangles(), kBaseConfig, pool);
      break;
    case 1:
      f.tree = make_sweep_builder()->build(f.scene.triangles(), kBaseConfig, pool);
      break;
    default:
      f.tree = make_builder(Algorithm::kInPlace)
                   ->build(f.scene.triangles(), kBaseConfig, pool);
      break;
  }
  f.compact = std::make_unique<CompactKdTree>(
      dynamic_cast<const KdTree&>(*f.tree));
  const Camera camera(f.scene.camera(), 256, 192);
  for (int y = 0; y < 192; y += 2) {
    for (int x = 0; x < 256; x += 2) {
      f.rays.push_back(camera.primary_ray(x, y));
    }
  }
  return f;
}

const char* fixture_name(int id) {
  switch (id) {
    case 0: return "median-tree";
    case 1: return "sweep-tree";
    default: return "in-place-tree";
  }
}

const KdTreeBase& pick_layout(const Fixture& f, int layout) {
  return layout == 0 ? *f.tree
                     : static_cast<const KdTreeBase&>(*f.compact);
}

std::string layout_label(int id, int layout) {
  return std::string(fixture_name(id)) + (layout == 0 ? "/kdtree" : "/compact");
}

void BM_ClosestHit(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int id = static_cast<int>(state.range(0));
  const int layout = static_cast<int>(state.range(1));
  if (!cache.contains(id)) cache.emplace(id, make_fixture(id));
  const Fixture& f = cache.at(id);
  const KdTreeBase& tree = pick_layout(f, layout);

  std::size_t i = 0;
  for (auto _ : state) {
    const Hit hit = tree.closest_hit(f.rays[i]);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) % f.rays.size();
  }
  state.SetLabel(layout_label(id, layout));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClosestHit)->ArgsProduct({{0, 1, 2}, {0, 1}});

void BM_AnyHit(benchmark::State& state) {
  static std::map<int, Fixture> cache;
  const int id = static_cast<int>(state.range(0));
  const int layout = static_cast<int>(state.range(1));
  if (!cache.contains(id)) cache.emplace(id, make_fixture(id));
  const Fixture& f = cache.at(id);
  const KdTreeBase& tree = pick_layout(f, layout);

  std::size_t i = 0;
  for (auto _ : state) {
    const bool hit = tree.any_hit(f.rays[i]);
    benchmark::DoNotOptimize(hit);
    i = (i + 1) % f.rays.size();
  }
  state.SetLabel(layout_label(id, layout));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnyHit)->ArgsProduct({{0, 1, 2}, {0, 1}});

// CI/CB sensitivity: how the SAH parameters change the tree's query cost —
// the mechanism the autotuner exploits.
void BM_TraversalVsCi(benchmark::State& state) {
  const Scene scene = make_scene("sibenik", 0.25f)->frame(0);
  ThreadPool pool(3);
  BuildConfig config;
  config.ci = state.range(0);
  const auto tree =
      make_builder(Algorithm::kInPlace)->build(scene.triangles(), config, pool);
  const Camera camera(scene.camera(), 128, 96);
  std::vector<Ray> rays;
  for (int y = 0; y < 96; y += 2) {
    for (int x = 0; x < 128; x += 2) rays.push_back(camera.primary_ray(x, y));
  }

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->closest_hit(rays[i]));
    i = (i + 1) % rays.size();
  }
  state.SetLabel("CI=" + std::to_string(config.ci));
}
BENCHMARK(BM_TraversalVsCi)->Arg(3)->Arg(17)->Arg(50)->Arg(101);

// Packet vs scalar traversal on coherent camera tiles, for both layouts.
void BM_PacketVsScalar(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  static std::map<int, Fixture> cache;
  if (!cache.contains(1)) cache.emplace(1, make_fixture(1));
  const Fixture& f = cache.at(1);
  const auto* tree = dynamic_cast<const KdTree*>(f.tree.get());

  std::vector<Hit> hits(kMaxPacketSize);
  std::size_t offset = 0;
  for (auto _ : state) {
    const std::size_t n = std::min(kMaxPacketSize, f.rays.size() - offset);
    const std::span<const Ray> rays(f.rays.data() + offset, n);
    if (mode == 1) {
      closest_hit_packet(*tree, rays, std::span<Hit>(hits.data(), n));
      benchmark::DoNotOptimize(hits.data());
    } else if (mode == 2) {
      closest_hit_packet(*f.compact, rays, std::span<Hit>(hits.data(), n));
      benchmark::DoNotOptimize(hits.data());
    } else {
      for (const Ray& ray : rays) {
        benchmark::DoNotOptimize(tree->closest_hit(ray));
      }
    }
    offset = (offset + kMaxPacketSize) % (f.rays.size() - kMaxPacketSize);
  }
  state.SetLabel(mode == 1 ? "packet64" : mode == 2 ? "packet64-compact"
                                                    : "scalar");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMaxPacketSize));
}
BENCHMARK(BM_PacketVsScalar)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------------------------
// Machine-readable measurement pass (BENCH_traversal.json).

double time_pass_ns(const KdTreeBase& tree, const std::vector<Ray>& rays,
                    bool any) {
  using Clock = std::chrono::steady_clock;
  std::size_t sink = 0;
  const auto t0 = Clock::now();
  for (const Ray& ray : rays) {
    if (any) {
      sink += tree.any_hit(ray) ? 1 : 0;
    } else {
      sink += tree.closest_hit(ray).valid() ? 1 : 0;
    }
  }
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(rays.size());
}

/// Times both layouts with interleaved repetitions (A B A B ...) so that
/// machine noise hits both sides equally, and reports the best pass of each —
/// the standard min-of-N estimator for a noisy shared host.
std::pair<double, double> measure_pair_ns(const KdTreeBase& kd,
                                          const KdTreeBase& compact,
                                          const std::vector<Ray>& rays,
                                          bool any, int reps) {
  double kd_best = 1e30, co_best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    kd_best = std::min(kd_best, time_pass_ns(kd, rays, any));
    co_best = std::min(co_best, time_pass_ns(compact, rays, any));
  }
  return {kd_best, co_best};
}

void run_json_pass(const std::string& path, bool smoke) {
  const int reps = smoke ? 7 : 9;
  const float detail = 1.0f;
  std::vector<bench::BenchRecord> records;
  ThreadPool pool(3);

  struct BuilderSpec {
    const char* name;
    std::unique_ptr<Builder> builder;
  };
  BuilderSpec builders[3] = {{"median", make_median_builder()},
                             {"sweep", make_sweep_builder()},
                             {"inplace", make_builder(Algorithm::kInPlace)}};
  const char* scenes[] = {"bunny", "sponza"};

  double bunny_kd_ns = 0.0, bunny_compact_ns = 0.0;
  std::size_t mismatches = 0;

  for (const char* scene_id : scenes) {
    const Scene scene = make_scene(scene_id, detail)->frame(0);
    const Camera camera(scene.camera(), 256, 192);
    std::vector<Ray> rays;
    for (int y = 0; y < 192; ++y) {
      for (int x = 0; x < 256; ++x) rays.push_back(camera.primary_ray(x, y));
    }
    for (BuilderSpec& spec : builders) {
      const auto tree =
          spec.builder->build(scene.triangles(), kBaseConfig, pool);
      const auto& kd = dynamic_cast<const KdTree&>(*tree);
      const CompactKdTree compact(kd);

      // Hit parity on every ray before trusting the timings.
      for (const Ray& ray : rays) {
        const Hit a = kd.closest_hit(ray);
        const Hit b = compact.closest_hit(ray);
        if (a.valid() != b.valid() ||
            (a.valid() && (a.t != b.t || a.triangle != b.triangle ||
                           a.u != b.u || a.v != b.v))) {
          ++mismatches;
        }
      }

      for (const bool any : {false, true}) {
        const char* query = any ? "any_hit" : "closest_hit";
        const auto [kd_ns, co_ns] = measure_pair_ns(kd, compact, rays, any, reps);
        records.push_back({scene_id, spec.name, "kdtree", query, kd_ns,
                           1e9 / kd_ns});
        records.push_back({scene_id, spec.name, "compact", query, co_ns,
                           1e9 / co_ns});
        if (!any && std::string(scene_id) == "bunny" &&
            std::string(spec.name) == "sweep") {
          bunny_kd_ns = kd_ns;
          bunny_compact_ns = co_ns;
        }
        std::printf("%-8s %-8s %-12s kdtree %8.1f ns/ray | compact %8.1f "
                    "ns/ray | speedup %.2fx\n",
                    scene_id, spec.name, query, kd_ns, co_ns, kd_ns / co_ns);
      }
    }
  }

  std::printf("hit-parity mismatches: %zu\n", mismatches);
  if (bunny_compact_ns > 0.0) {
    std::printf(
        "compact speedup (bunny, recursive sweep builder, closest_hit): "
        "%.2fx\n",
        bunny_kd_ns / bunny_compact_ns);
  }
  bench::write_bench_json(path, records);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_traversal.json";
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  run_json_pass(json_path, smoke);
  if (smoke) return 0;

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
