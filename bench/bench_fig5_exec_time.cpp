// Figure 5: absolute frame time (t_c + t_r) with and without tuning for the
// four algorithms on Sibenik, Sponza and Fairy Forest. The paper shows bar
// charts; this harness prints the bar heights: median frame time at C_base
// next to the median frame time at the configuration the autotuner found.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;
  using namespace kdtune::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe("Figure 5: absolute execution time, base vs tuned");

  ThreadPool pool(opts.threads);
  const ExperimentOptions eopts = opts.experiment();

  TextTable table({"scene", "algorithm", "base [ms]", "tuned [ms]",
                   "tuned config (CI, CB, S[, R])", "speedup"});
  TextTable csv({"scene", "algorithm", "base_ms", "tuned_ms", "speedup"});

  for (const char* scene_id : {"sibenik", "sponza", "fairy_forest"}) {
    const auto scene = make_scene(scene_id, opts.detail);
    std::printf("\n[%s] %zu triangles, %zu frame(s)\n", scene_id,
                scene->frame(0).triangle_count(), scene->frame_count());
    for (const Algorithm algorithm : all_algorithms()) {
      const TuningRun run =
          run_tuning_experiment(algorithm, *scene, pool, eopts);
      table.add_row({scene_id, run.algorithm, fmt(run.base_median * 1e3, 2),
                     fmt(run.tuned_median * 1e3, 2),
                     config_to_string(run.tuned_config,
                                      algorithm == Algorithm::kLazy),
                     fmt(run.speedup(), 2)});
      csv.add_row({scene_id, run.algorithm, fmt(run.base_median * 1e3, 3),
                   fmt(run.tuned_median * 1e3, 3), fmt(run.speedup(), 3)});
      std::printf("  %-10s base %8.2f ms -> tuned %8.2f ms (%.2fx)\n",
                  run.algorithm.c_str(), run.base_median * 1e3,
                  run.tuned_median * 1e3, run.speedup());
    }
  }

  print_banner("Figure 5 summary (paper: tuned bars at or below base bars; "
               "lazy lowest on the occluded Fairy-Forest scene)");
  table.print();
  if (opts.csv) {
    print_banner("CSV");
    csv.print_csv();
  }
  return 0;
}
