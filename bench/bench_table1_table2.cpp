// Tables I & II: the tunable parameter sets per algorithm and the tuning
// ranges / search-space size. These are static properties of the
// implementation; this binary prints them as the paper reports them and
// verifies the search-space arithmetic.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;
  using namespace kdtune::bench;
  (void)BenchOptions::parse(argc, argv);

  print_banner("Table Ia: parameters of the node-level, nested and in-place "
               "algorithms");
  {
    TextTable t({"Parameter", "Semantics"});
    t.add_row({"CI", "Cost for intersecting a triangle"});
    t.add_row({"CB", "Cost for duplication of a primitive"});
    t.add_row({"S", "Max. number of subtrees per thread"});
    t.print();
  }

  print_banner("Table Ib: parameters of the lazy construction algorithm");
  {
    TextTable t({"Parameter", "Semantics"});
    t.add_row({"CI", "Cost for intersecting a triangle"});
    t.add_row({"CB", "Cost for duplication of a primitive"});
    t.add_row({"S", "Max. number of subtrees per thread"});
    t.add_row({"R", "Minimal resolution of a node"});
    t.print();
  }

  print_banner("Table II: tuning parameter ranges");
  {
    TextTable t({"Parameter", "Range", "Grid points"});
    t.add_row({"CI", "[3, 101]", "99"});
    t.add_row({"CB", "[0, 60]", "61"});
    t.add_row({"S", "[1, 8]", "8"});
    t.add_row({"R", "[16, 8192] (powers of 2)", "10"});
    t.print();
  }

  // Verify the advertised grid sizes against the actual registration.
  for (const Algorithm a : all_algorithms()) {
    BuildConfig config;
    Tuner tuner;
    register_build_parameters(tuner, config, a);
    const std::uint64_t space = search_space_size(tuner.parameters());
    std::printf("\n%-10s: %zu tunable parameter(s), |T| = %llu configurations",
                std::string(to_string(a)).c_str(), tuner.parameter_count(),
                static_cast<unsigned long long>(space));
  }
  std::printf("\n\nC_base = (CI=17, CB=10, S=3, R=4096)  [paper SV-C]\n");
  std::printf("CT fixed at %.0f (paper SIV-A)\n", BuildConfig::kCt);
  return 0;
}
