// Figure 6: speedup of the four tuned algorithms over their base
// configuration on all six scenes (the paper's per-scene bar charts, 15
// repetitions each). Prints median speedup with min/max across repetitions.

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;
  using namespace kdtune::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe("Figure 6: speedup of the tuned algorithms on all scenes");

  ThreadPool pool(opts.threads);

  TextTable table({"scene", "algorithm", "speedup (median)", "min", "max",
                   "iters to converge"});
  TextTable csv({"scene", "algorithm", "rep", "speedup"});

  for (const std::string& scene_id : scene_ids()) {
    const auto scene = make_scene(scene_id, opts.detail);
    std::printf("\n[%s] %zu triangles, %zu frame(s)\n", scene_id.c_str(),
                scene->frame(0).triangle_count(), scene->frame_count());
    for (const Algorithm algorithm : all_algorithms()) {
      std::vector<double> speedups;
      std::vector<double> convergence;
      for (std::size_t rep = 0; rep < opts.reps; ++rep) {
        ExperimentOptions eopts = opts.experiment();
        eopts.seed = opts.seed + rep * 7919;
        const TuningRun run =
            run_tuning_experiment(algorithm, *scene, pool, eopts);
        speedups.push_back(run.speedup());
        convergence.push_back(
            static_cast<double>(run.iterations_to_convergence));
        csv.add_row({scene_id, run.algorithm, std::to_string(rep),
                     fmt(run.speedup(), 3)});
      }
      const SampleStats stats = compute_stats(speedups);
      table.add_row({scene_id, std::string(to_string(algorithm)),
                     fmt(stats.median, 2), fmt(stats.min, 2),
                     fmt(stats.max, 2),
                     fmt(compute_stats(convergence).median, 0)});
      std::printf("  %-10s median speedup %.2fx (min %.2f, max %.2f)\n",
                  std::string(to_string(algorithm)).c_str(), stats.median,
                  stats.min, stats.max);
    }
  }

  print_banner(
      "Figure 6 summary (paper: up to 1.96x, lazy on Sibenik; near-1.0 for "
      "in-place on Bunny and node-level/nested on Bunny)");
  table.print();
  if (opts.csv) {
    print_banner("CSV");
    csv.print_csv();
  }
  return 0;
}
