// Dynamic-scene frame pipeline benchmark: the two comparisons the pipeline
// exists to win, measured over the paper's three dynamic scenes.
//
//   1. Overlap: frames/sec of the sequential build-then-query loop vs the
//      overlapped pipeline (frame N+1 builds while frame N's queries run),
//      both at the base configuration. Overlap hides build time behind query
//      time, so the overlapped loop should sustain at least the sequential
//      frame rate.
//   2. Tuning: total frame time (build + query, summed over the animation)
//      at the base configuration vs with the FrameTuner driving the build
//      configuration across frames, warm-started from a prior (untimed)
//      tuning pass through the ConfigCache — the paper's cross-run
//      warm-start loop.
//   3. Algorithm routing: a `balanced` row per scene (the left-balanced
//      builder serving the same pipeline, fixed) showing its raw build
//      throughput, plus a five-candidate FrameTuner selection demo — the
//      fast-moving scene must route to the balanced builder, a static
//      query-heavy scene back to an SAH sweep.
//
// Writes BENCH_dynamic.json. `--smoke` shrinks everything for CI (smaller
// still under KDTUNE_CI_SMALL).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/differential.hpp"
#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

/// Pool workers + the query thread together should match the machine: on a
/// single-core host that means zero workers (the query thread helps the build
/// through the pool's cooperative path), so overlap degrades to a tie instead
/// of oversubscription losses.
unsigned default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

struct DynamicBenchOptions {
  float detail = 0.15f;
  unsigned threads = default_workers();
  std::size_t frames = 30;
  int rays = 0;  ///< 0 = calibrate so query time ≈ build time per frame
  std::size_t reps = 3;
  std::uint64_t seed = 0x5EEDu;
  std::string json_path = "BENCH_dynamic.json";
  bool smoke = false;
};

DynamicBenchOptions parse_options(int argc, char** argv) {
  DynamicBenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--detail=")) {
      o.detail = std::strtof(v, nullptr);
    } else if (const char* v = value("--threads=")) {
      o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--frames=")) {
      o.frames = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--rays=")) {
      o.rays = std::atoi(v);
    } else if (const char* v = value("--reps=")) {
      o.reps = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      o.json_path = v;
    } else if (arg == "--smoke") {
      o.smoke = true;
    } else if (arg == "--full") {
      o.detail = 1.0f;
      o.frames = 0;  // full animations
      o.reps = 5;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header of bench/bench_dynamic.cpp for options\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      std::exit(1);
    }
  }
  if (o.smoke) {
    o.detail = kdtune_ci_small() ? 0.06f : 0.1f;
    o.frames = kdtune_ci_small() ? 6 : 10;
    o.reps = 3;
  }
  o.reps = std::max<std::size_t>(o.reps, 1);
  return o;
}

Ray random_ray_into(Rng& rng, const AABB& box) {
  const Vec3 origin =
      box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)}) *
                         (length(box.extent()) * 0.8f + 0.5f);
  const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                    rng.uniform(box.lo.y, box.hi.y),
                    rng.uniform(box.lo.z, box.hi.z)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

/// Pick a ray count whose per-frame query time roughly matches the frame-0
/// build time. That is the regime a frame service runs in, and the only one
/// where overlap has anything to hide: with a negligible query phase the
/// overlapped loop degenerates to the sequential one, and with negligible
/// build the swap is free either way.
int calibrated_rays(const DynamicBenchOptions& o,
                    const std::shared_ptr<const AnimatedScene>& anim,
                    ThreadPool& pool) {
  if (o.rays > 0) return o.rays;
  const Scene frame0 = anim->frame(0);
  Stopwatch clock;
  clock.start();
  const auto tree = make_builder(Algorithm::kInPlace)
                        ->build(frame0.triangles(), kBaseConfig, pool);
  const double build_seconds = clock.elapsed();

  const AABB box = tree->bounds();
  Rng rng(o.seed);
  constexpr int kProbe = 512;
  clock.start();
  for (int r = 0; r < kProbe; ++r) {
    (void)tree->closest_hit(random_ray_into(rng, box));
  }
  const double per_ray = clock.elapsed() / kProbe;
  if (per_ray <= 0.0) return kProbe;
  const double want = build_seconds / per_ray;
  return static_cast<int>(std::min(65536.0, std::max(128.0, want)));
}

std::shared_ptr<const AnimatedScene> capped(
    std::shared_ptr<const AnimatedScene> anim, std::size_t frames) {
  if (frames == 0 || frames >= anim->frame_count()) return anim;
  const std::string name = anim->name();
  return std::make_shared<ProceduralAnimation>(
      name, frames, [anim](std::size_t i) { return anim->frame(i); });
}

struct RunResult {
  double wall_seconds = 0.0;
  double build_seconds = 0.0;
  double query_seconds = 0.0;
  std::uint64_t frames = 0;
  std::size_t tuner_iterations = 0;
  double frames_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(frames) / wall_seconds
                              : 0.0;
  }
  /// Mean per-frame cost, the tuner's objective summed over the run.
  double frame_seconds() const {
    return frames > 0 ? (build_seconds + query_seconds) /
                            static_cast<double>(frames)
                      : 0.0;
  }
};

/// One full pass over the animation: the per-frame query workload is the
/// same seeded ray stream in every mode, so wall-clock differences come from
/// the pipeline structure (overlap) and the build configuration (tuning).
RunResult run_pipeline(const DynamicBenchOptions& o, int rays,
                       const std::shared_ptr<const AnimatedScene>& anim,
                       bool overlap, FrameTuner* tuner, ConfigCache* cache,
                       ThreadPool& pool,
                       Algorithm algorithm = Algorithm::kInPlace) {
  SceneRegistry registry(pool);
  if (cache != nullptr) registry.attach_cache(cache);

  FramePipelineOptions popts;
  popts.overlap = overlap;
  popts.tuner = tuner;
  popts.algorithm = algorithm;
  FramePipeline pipeline(anim, registry, popts);

  Rng rng(o.seed);
  Stopwatch wall;
  wall.start();
  for (FrameTick tick = pipeline.begin(); tick.published;) {
    const auto snap = registry.acquire(anim->name());
    const AABB box = snap->tree->bounds();
    Stopwatch query_clock;
    query_clock.start();
    for (int r = 0; r < rays; ++r) {
      (void)snap->tree->closest_hit(random_ray_into(rng, box));
    }
    tick = pipeline.advance(query_clock.elapsed());
  }

  RunResult out;
  out.wall_seconds = wall.elapsed();
  const FramePipelineStats stats = pipeline.stats();
  out.frames = stats.frames_published;
  out.build_seconds = stats.total_build_seconds;
  out.query_seconds = stats.total_query_seconds;
  if (tuner != nullptr) out.tuner_iterations = tuner->iterations();
  return out;
}

/// The paper-conclusion demo: all five tuned algorithms compete under the
/// frame objective m = t_build + w * t_query on real builds, and the
/// pipeline serves whichever the FrameTuner selects. Returns once selection
/// has finished (plus a few frames serving the winner).
struct RoutingResult {
  Algorithm algorithm = Algorithm::kInPlace;
  std::uint64_t frames = 0;
  double best_objective = 0.0;
};

RoutingResult run_routing(const DynamicBenchOptions& o, int rays,
                          const std::shared_ptr<const AnimatedScene>& anim,
                          double query_weight, ThreadPool& pool) {
  FrameTunerOptions topts;
  topts.algorithms = all_algorithms();
  topts.frames_per_algorithm = 4;
  topts.query_weight = query_weight;
  FrameTuner tuner(topts);

  SceneRegistry registry(pool);
  FramePipelineOptions popts;
  popts.tuner = &tuner;
  popts.loop = true;  // selection decides when to stop, not the frame count
  FramePipeline pipeline(anim, registry, popts);

  Rng rng(o.seed);
  std::uint64_t frames = 1;
  std::size_t settle = 4;  // post-selection frames serving the winner
  for (FrameTick tick = pipeline.begin();
       tick.published && frames < 600 && (!tuner.selection_done() ||
                                          settle-- > 0);
       ++frames) {
    const auto snap = registry.acquire(anim->name());
    const AABB box = snap->tree->bounds();
    Stopwatch query_clock;
    query_clock.start();
    for (int r = 0; r < rays; ++r) {
      (void)snap->tree->closest_hit(random_ray_into(rng, box));
    }
    tick = pipeline.advance(query_clock.elapsed());
  }

  RoutingResult out;
  out.algorithm = tuner.best_algorithm();
  out.frames = frames;
  out.best_objective = tuner.best_objective();
  return out;
}

/// Disabled-tracing overhead: with the recorder off a TraceSpan must cost a
/// single predictable branch (one relaxed atomic load), i.e. nothing at frame
/// scale. Measured here so a regression that makes "tracing compiled in but
/// off" expensive fails the bench run instead of silently taxing every build.
double measure_disabled_span_ns() {
  TraceRecorder::instance().set_enabled(false);
  constexpr int kSpans = 2'000'000;
  Stopwatch clock;
  clock.start();
  for (int i = 0; i < kSpans; ++i) {
    TraceSpan span("bench.noop", "bench");
  }
  return clock.elapsed() / kSpans * 1e9;
}

/// Best of `o.reps` timed passes (by wall clock). Per-frame costs on these
/// scenes sit in the low-millisecond range, where a single pass is at the
/// mercy of scheduler noise; the minimum is the standard estimator for the
/// noise-free cost.
template <typename Fn>
RunResult best_of(const DynamicBenchOptions& o, Fn&& one_pass) {
  RunResult best = one_pass();
  for (std::size_t rep = 1; rep < o.reps; ++rep) {
    const RunResult r = one_pass();
    if (r.wall_seconds < best.wall_seconds) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const DynamicBenchOptions o = parse_options(argc, argv);
  std::printf("dynamic pipeline bench: detail %.2f, %zu frames/scene, "
              "%u workers, best of %zu reps\n\n",
              o.detail, o.frames, o.threads, o.reps);

  struct Row {
    std::string scene;
    int rays = 0;
    RunResult sequential, overlapped, tuned, balanced;
  };
  std::vector<Row> rows;

  for (const std::string& id : dynamic_scene_ids()) {
    const auto anim = capped(make_scene(id, o.detail), o.frames);
    ThreadPool pool(o.threads);
    Row row;
    row.scene = id;
    const int rays = calibrated_rays(o, anim, pool);
    row.rays = rays;

    // Base configuration: sequential vs overlapped. Reps are interleaved so
    // both modes sample the same machine-load windows, and the min of each is
    // kept — otherwise a load spike during one mode's block decides the
    // comparison.
    for (std::size_t rep = 0; rep < o.reps; ++rep) {
      const RunResult s =
          run_pipeline(o, rays, anim, /*overlap=*/false, nullptr, nullptr,
                       pool);
      const RunResult v =
          run_pipeline(o, rays, anim, /*overlap=*/true, nullptr, nullptr,
                       pool);
      // The left-balanced builder serving the same overlapped pipeline: its
      // raw build throughput is the reason the five-candidate selection
      // below routes fast-moving scenes to it.
      const RunResult b =
          run_pipeline(o, rays, anim, /*overlap=*/true, nullptr, nullptr,
                       pool, Algorithm::kBalanced);
      if (rep == 0 || s.wall_seconds < row.sequential.wall_seconds) {
        row.sequential = s;
      }
      if (rep == 0 || v.wall_seconds < row.overlapped.wall_seconds) {
        row.overlapped = v;
      }
      if (rep == 0 || b.wall_seconds < row.balanced.wall_seconds) {
        row.balanced = b;
      }
    }

    // Tuned: seed the cache with the base configuration at its measured
    // frame cost, then run untimed tuning passes — record_tuned replaces
    // the entry only if the tuner found something faster (ConfigCache
    // keeps-if-faster). The timed pass serves the resulting configuration
    // fixed, exactly as a warm-started next run would open.
    ConfigCache cache;
    cache.store(
        ConfigCache::key_for(id,
                             std::string(to_string(Algorithm::kInPlace)),
                             pool.concurrency()),
        SceneRegistry::values_of(kBaseConfig, Algorithm::kInPlace),
        row.overlapped.frame_seconds());
    FrameTuner tuner;
    tuner.warm_start(cache, id, pool.concurrency());
    for (std::size_t pass = 0; pass < o.reps && !tuner.converged(); ++pass) {
      (void)run_pipeline(o, rays, anim, /*overlap=*/true, &tuner, &cache,
                         pool);
    }
    row.tuned = best_of(o, [&] {
      return run_pipeline(o, rays, anim, /*overlap=*/true, nullptr, &cache,
                          pool);
    });
    row.tuned.tuner_iterations = tuner.iterations();

    std::printf("%-14s %5d rays | sequential %6.1f fps | overlapped %6.1f "
                "fps (x%.2f) | frame cost base %7.3f ms -> tuned %7.3f ms "
                "(x%.2f, %zu iters) | balanced build x%.2f\n",
                id.c_str(), rays, row.sequential.frames_per_sec(),
                row.overlapped.frames_per_sec(),
                row.overlapped.frames_per_sec() /
                    row.sequential.frames_per_sec(),
                row.overlapped.frame_seconds() * 1e3,
                row.tuned.frame_seconds() * 1e3,
                row.overlapped.frame_seconds() / row.tuned.frame_seconds(),
                row.tuned.tuner_iterations,
                row.balanced.build_seconds > 0.0
                    ? row.overlapped.build_seconds / row.balanced.build_seconds
                    : 0.0);
    rows.push_back(std::move(row));
  }

  // Five-candidate algorithm routing: a fast-moving scene with a light query
  // batch (build-dominated objective) and a static query-heavy scene (the
  // same structured frame rebuilt while a weighted query load dominates).
  const int routing_rays = o.smoke ? 256 : 512;
  const int static_rays = o.smoke ? 2000 : 8000;
  const double static_weight = 20.0;
  RoutingResult fast_route, static_route;
  std::string static_scene = "bunny";
  {
    ThreadPool pool(o.threads);
    const auto fast_anim = capped(make_scene("toasters", o.detail), o.frames);
    fast_route = run_routing(o, routing_rays, fast_anim, 1.0, pool);

    const auto base = std::make_shared<Scene>(make_bunny(
        std::min(1.0f, o.detail * 2.0f)));
    const auto static_anim = std::make_shared<ProceduralAnimation>(
        static_scene, std::size_t{8},
        [base](std::size_t) { return *base; });
    static_route = run_routing(o, static_rays, static_anim, static_weight,
                               pool);
  }
  const std::string fast_name{to_string(fast_route.algorithm)};
  const std::string static_name{to_string(static_route.algorithm)};
  std::printf("\nrouting: fast-moving toasters -> %s (%" PRIu64
              " frames) | static bunny (w=%.0f) -> %s (%" PRIu64 " frames)\n",
              fast_name.c_str(), fast_route.frames, static_weight,
              static_name.c_str(), static_route.frames);

  std::FILE* out = std::fopen(o.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", o.json_path.c_str());
    return 1;
  }
  // Hardware context matters for reading the overlap column: with a single
  // CPU there is no spare core to hide the build on, so ~1.0 is the expected
  // (and correct) result there.
  // Threshold is deliberately loose (the real cost is ~1 ns): this asserts
  // "no measurable regression", not a microbenchmark number, and must not
  // flake on loaded CI machines.
  const double disabled_ns = measure_disabled_span_ns();
  constexpr double kMaxDisabledNs = 1000.0;
  std::printf("disabled TraceSpan: %.2f ns/span (limit %.0f)\n", disabled_ns,
              kMaxDisabledNs);

  std::fprintf(out,
               "{\"cpus\": %u, \"workers\": %u, \"reps\": %zu,\n"
               " \"trace\": {\"disabled_ns_per_span\": %.3f},\n"
               " \"scenes\": [\n",
               std::thread::hardware_concurrency(), o.threads, o.reps,
               disabled_ns);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const auto emit = [out](const char* key, const RunResult& rr,
                            const char* tail) {
      std::fprintf(out,
                   "    \"%s\": {\"frames\": %" PRIu64
                   ", \"wall_seconds\": %.4f, \"frames_per_sec\": %.2f, "
                   "\"build_seconds\": %.4f, \"query_seconds\": %.4f, "
                   "\"frame_seconds\": %.6f, \"tuner_iterations\": %zu}%s\n",
                   key, rr.frames, rr.wall_seconds, rr.frames_per_sec(),
                   rr.build_seconds, rr.query_seconds, rr.frame_seconds(),
                   rr.tuner_iterations, tail);
    };
    std::fprintf(out, "  {\"scene\": \"%s\", \"rays\": %d,\n", r.scene.c_str(),
                 r.rays);
    emit("sequential", r.sequential, ",");
    emit("overlapped", r.overlapped, ",");
    emit("tuned", r.tuned, ",");
    emit("balanced", r.balanced, ",");
    std::fprintf(out,
                 "    \"overlap_speedup\": %.3f,\n"
                 "    \"tuned_speedup\": %.3f,\n"
                 "    \"balanced_build_speedup\": %.3f}%s\n",
                 r.overlapped.frames_per_sec() / r.sequential.frames_per_sec(),
                 r.overlapped.frame_seconds() / r.tuned.frame_seconds(),
                 r.balanced.build_seconds > 0.0
                     ? r.overlapped.build_seconds / r.balanced.build_seconds
                     : 0.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "],\n");
  std::fprintf(out,
               " \"routing\": {\n"
               "  \"fast\": {\"scene\": \"toasters\", \"rays\": %d, "
               "\"query_weight\": 1.0, \"algorithm\": \"%s\", "
               "\"frames\": %" PRIu64 "},\n"
               "  \"static\": {\"scene\": \"%s\", \"rays\": %d, "
               "\"query_weight\": %.1f, \"algorithm\": \"%s\", "
               "\"frames\": %" PRIu64 "}}}\n",
               routing_rays, fast_name.c_str(), fast_route.frames,
               static_scene.c_str(), static_rays, static_weight,
               static_name.c_str(), static_route.frames);
  std::fclose(out);
  std::printf("\nwrote %s (%zu scenes)\n", o.json_path.c_str(), rows.size());
  if (disabled_ns > kMaxDisabledNs) {
    std::fprintf(stderr,
                 "FAIL: disabled TraceSpan costs %.1f ns (> %.0f ns): "
                 "tracing is no longer free when off\n",
                 disabled_ns, kMaxDisabledNs);
    return 1;
  }
  return 0;
}
