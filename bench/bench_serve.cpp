// Serving-path benchmark: throughput and latency of the micro-batched
// QueryService at batch size 1 (no batching — every request is its own pool
// task) versus the batch size the ServeTuner converges to on the same
// traffic, plus a mixed-family pass (closest-hit / any-hit / packet / range
// / k-NN / closest-point) that reports per-family p50/p99 latency. Writes
// BENCH_serve.json with throughput and p50/p99 latency per configuration
// and per family; `--smoke` shrinks everything for CI.
//
// The point of the comparison is the one the serving layer exists to make:
// per-request dispatch amortization. At batch=1 every ray pays a full
// queue round-trip and pool submission; at the tuned batch size those costs
// spread over the whole batch.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <thread>

#include "bench_common.hpp"
#include "core/differential.hpp"
#include "core/kdtune.hpp"

namespace {

using namespace kdtune;
using kdtune::bench::BenchOptions;

struct ServeMeasurement {
  std::int64_t batch_size = 0;
  std::int64_t flush_us = 0;
  std::uint64_t completed = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

Ray random_ray_into(Rng& rng, const AABB& box) {
  const Vec3 origin =
      box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)}) *
                         (length(box.extent()) * 0.8f + 0.5f);
  const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                    rng.uniform(box.lo.y, box.hi.y),
                    rng.uniform(box.lo.z, box.hi.z)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

/// Runs `total` closest-hit requests from `clients` closed-loop threads
/// against a fresh service configured with `params`; returns the measured
/// window. A fresh service per run keeps each configuration's histograms and
/// counters isolated.
ServeMeasurement run_load(SceneRegistry& registry, ThreadPool& pool,
                          const std::vector<std::string>& names,
                          const std::vector<AABB>& boxes,
                          const ServingParams& params, int clients, int total,
                          std::uint64_t seed) {
  ServiceOptions sopts;
  sopts.params = params;
  QueryService service(registry, pool, sopts);

  const int per_client = std::max(total / std::max(clients, 1), 1);
  Rng master(seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < clients; ++c) rngs.push_back(master.split());

  Stopwatch wall;
  wall.start();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng = rngs[static_cast<std::size_t>(c)];
      for (int i = 0; i < per_client; ++i) {
        const std::size_t scene = static_cast<std::size_t>(
            rng.next_int(0, static_cast<std::int64_t>(names.size()) - 1));
        service
            .submit_closest_hit(names[scene],
                                random_ray_into(rng, boxes[scene]))
            .get();
      }
    });
  }
  for (auto& t : threads) t.join();
  service.drain();
  const double seconds = wall.elapsed();
  const ServiceStats stats = service.stats();
  const EndpointStats& ep =
      stats.endpoints[static_cast<int>(QueryKind::kClosestHit)];

  ServeMeasurement m;
  m.batch_size = params.batch_size;
  m.flush_us = params.flush_timeout_us;
  m.completed = stats.completed;
  m.seconds = seconds;
  m.qps = seconds > 0.0 ? static_cast<double>(stats.completed) / seconds : 0.0;
  m.p50_us = ep.p50_seconds * 1e6;
  m.p99_us = ep.p99_seconds * 1e6;
  m.mean_us = ep.mean_seconds * 1e6;
  service.shutdown();
  return m;
}

struct FamilyRow {
  const char* name = "";
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

/// Fires a uniform mix of all six query families from closed-loop clients
/// and returns one latency row per family from the service's per-family
/// histograms.
std::vector<FamilyRow> run_mixed_load(SceneRegistry& registry,
                                      ThreadPool& pool,
                                      const std::vector<std::string>& names,
                                      const std::vector<AABB>& boxes,
                                      const ServingParams& params, int clients,
                                      int total, std::uint64_t seed) {
  ServiceOptions sopts;
  sopts.params = params;
  QueryService service(registry, pool, sopts);

  const int per_client = std::max(total / std::max(clients, 1), 1);
  Rng master(seed ^ 0xFA317ull);
  std::vector<Rng> rngs;
  for (int c = 0; c < clients; ++c) rngs.push_back(master.split());

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng = rngs[static_cast<std::size_t>(c)];
      for (int i = 0; i < per_client; ++i) {
        const std::size_t scene = static_cast<std::size_t>(
            rng.next_int(0, static_cast<std::int64_t>(names.size()) - 1));
        const AABB& box = boxes[scene];
        const float diag = length(box.extent());
        const Vec3 point{rng.uniform(box.lo.x, box.hi.x),
                         rng.uniform(box.lo.y, box.hi.y),
                         rng.uniform(box.lo.z, box.hi.z)};
        switch (rng.next_int(0, 5)) {
          case 0:
            service.submit_closest_hit(names[scene],
                                       random_ray_into(rng, box)).get();
            break;
          case 1:
            service.submit_any_hit(names[scene], random_ray_into(rng, box))
                .get();
            break;
          case 2: {
            std::vector<Ray> rays;
            for (int r = 0; r < 8; ++r) {
              rays.push_back(random_ray_into(rng, box));
            }
            service.submit_packet(names[scene], std::move(rays)).get();
            break;
          }
          case 3: {
            const Vec3 half{rng.uniform(0.01f, 0.1f) * diag,
                            rng.uniform(0.01f, 0.1f) * diag,
                            rng.uniform(0.01f, 0.1f) * diag};
            service.submit_range(names[scene],
                                 AABB(point - half, point + half)).get();
            break;
          }
          case 4:
            service
                .submit_nearest(names[scene], point,
                                static_cast<std::uint32_t>(
                                    rng.next_int(1, 8)))
                .get();
            break;
          default:
            service
                .submit_closest_point(names[scene], point, diag * 0.5f)
                .get();
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  service.drain();
  const ServiceStats stats = service.stats();
  service.shutdown();

  std::vector<FamilyRow> rows;
  for (int k = 0; k < kQueryKindCount; ++k) {
    const EndpointStats& e = stats.endpoints[static_cast<std::size_t>(k)];
    FamilyRow row;
    row.name = to_string(static_cast<QueryKind>(k)).data();
    row.completed = e.completed;
    row.batches = e.batches;
    row.p50_us = e.p50_seconds * 1e6;
    row.p99_us = e.p99_seconds * 1e6;
    row.mean_us = e.mean_seconds * 1e6;
    rows.push_back(row);
  }
  return rows;
}

/// Lets the ServeTuner search over live traffic and returns its best params.
ServingParams tune_params(SceneRegistry& registry, ThreadPool& pool,
                          const std::vector<std::string>& names,
                          const std::vector<AABB>& boxes, int clients,
                          int windows, int window_ms, std::uint64_t seed) {
  ServiceOptions sopts;
  QueryService service(registry, pool, sopts);
  ServeTuner tuner(service);

  std::atomic<bool> done{false};
  Rng master(seed ^ 0xBE9Cull);
  std::vector<Rng> rngs;
  for (int c = 0; c < clients; ++c) rngs.push_back(master.split());
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng = rngs[static_cast<std::size_t>(c)];
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t scene = static_cast<std::size_t>(
            rng.next_int(0, static_cast<std::int64_t>(names.size()) - 1));
        service
            .submit_closest_hit(names[scene],
                                random_ray_into(rng, boxes[scene]))
            .get();
      }
    });
  }
  for (int w = 0; w < windows; ++w) {
    tuner.begin_window();
    std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
    tuner.end_window();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  service.shutdown();

  const ServingParams best = tuner.best();
  std::printf(
      "tuned over %zu windows: batch=%" PRId64 " flush=%" PRId64
      "us inflight=%" PRId64 "\n",
      tuner.windows(), best.batch_size, best.flush_timeout_us,
      best.max_inflight_batches);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchOptions opts =
      BenchOptions::parse(static_cast<int>(rest.size()), rest.data());
  if (smoke) {
    opts.detail = kdtune_ci_small() ? 0.06f : 0.1f;
    opts.measure = 5;
  }
  opts.describe("bench_serve: micro-batched serving throughput/latency");

  const int clients = 4;
  const int total = smoke ? (kdtune_ci_small() ? 400 : 800) : 4000;
  const int tune_windows = smoke ? 10 : 24;
  const int window_ms = smoke ? 10 : 40;

  ThreadPool pool(opts.threads);
  SceneRegistry registry(pool);
  std::vector<std::string> names{"bunny", "sponza"};
  std::vector<AABB> boxes;
  for (const std::string& id : names) {
    const Scene scene = make_scene(id, opts.detail)->frame(0);
    boxes.push_back(scene.bounds());
    const auto snap = registry.admit(id, scene);
    std::printf("  %-10s %7zu tris (%s)\n", id.c_str(), snap->triangle_count,
                snap->layout.c_str());
  }

  ServingParams unbatched;
  unbatched.batch_size = 1;
  unbatched.flush_timeout_us = 0;
  const ServingParams tuned = tune_params(registry, pool, names, boxes,
                                          clients, tune_windows, window_ms,
                                          opts.seed);

  std::vector<ServeMeasurement> rows;
  for (const ServingParams& p : {unbatched, tuned}) {
    ServeMeasurement best;
    for (std::size_t rep = 0; rep < std::max<std::size_t>(opts.reps, 1);
         ++rep) {
      const ServeMeasurement m = run_load(registry, pool, names, boxes, p,
                                          clients, total, opts.seed + rep);
      if (best.completed == 0 || m.qps > best.qps) best = m;
    }
    rows.push_back(best);
    std::printf("batch=%-4" PRId64 " %9.0f req/s   p50 %7.1f us   p99 %7.1f "
                "us   (%" PRIu64 " requests, best of %zu)\n",
                best.batch_size, best.qps, best.p50_us, best.p99_us,
                best.completed, std::max<std::size_t>(opts.reps, 1));
  }

  if (rows.size() == 2 && rows[0].qps > 0.0) {
    std::printf("tuned batching speedup over batch=1: %.2fx\n",
                rows[1].qps / rows[0].qps);
  }

  // Backend comparison: identical tuned serving parameters and traffic, the
  // registry's hot layout switch selecting the serving tree — the serving-
  // path view of the SIMD backend the micro benches measure in isolation.
  std::vector<std::pair<const char*, ServeMeasurement>> backend_rows;
  for (const QueryBackend backend :
       {QueryBackend::kCompact, QueryBackend::kWide8}) {
    for (const std::string& id : names) {
      if (registry.set_backend(id, backend) == nullptr) {
        std::fprintf(stderr, "cannot switch %s to backend %s\n", id.c_str(),
                     to_string(backend));
        return 1;
      }
    }
    ServeMeasurement best;
    for (std::size_t rep = 0; rep < std::max<std::size_t>(opts.reps, 1);
         ++rep) {
      const ServeMeasurement m = run_load(registry, pool, names, boxes, tuned,
                                          clients, total, opts.seed + rep);
      if (best.completed == 0 || m.qps > best.qps) best = m;
    }
    std::printf("backend=%-8s %9.0f req/s   p50 %7.1f us   p99 %7.1f us\n",
                to_string(backend), best.qps, best.p50_us, best.p99_us);
    backend_rows.emplace_back(to_string(backend), best);
  }
  if (backend_rows.size() == 2 && backend_rows[0].second.qps > 0.0) {
    std::printf("wide8 serving speedup over compact: %.2fx\n",
                backend_rows[1].second.qps / backend_rows[0].second.qps);
  }

  // Per-family latency under a uniform mix of all six query families, read
  // from the service's per-family histograms at the tuned parameters.
  const std::vector<FamilyRow> family_rows = run_mixed_load(
      registry, pool, names, boxes, tuned, clients, total, opts.seed);
  for (const FamilyRow& row : family_rows) {
    std::printf("family=%-13s %7" PRIu64 " completed in %5" PRIu64
                " batches   p50 %7.1f us   p99 %7.1f us\n",
                row.name, row.completed, row.batches, row.p50_us, row.p99_us);
  }

  std::FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServeMeasurement& m = rows[i];
    std::fprintf(out,
                 "  {\"config\": \"%s\", \"batch_size\": %" PRId64
                 ", \"flush_timeout_us\": %" PRId64
                 ", \"requests\": %" PRIu64
                 ", \"queries_per_sec\": %.1f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"mean_us\": %.2f}%s\n",
                 i == 0 ? "unbatched" : "tuned", m.batch_size, m.flush_us,
                 m.completed, m.qps, m.p50_us, m.p99_us, m.mean_us, ",");
  }
  for (std::size_t i = 0; i < backend_rows.size(); ++i) {
    const ServeMeasurement& m = backend_rows[i].second;
    std::fprintf(out,
                 "  {\"config\": \"backend\", \"backend\": \"%s\", "
                 "\"batch_size\": %" PRId64 ", \"requests\": %" PRIu64
                 ", \"queries_per_sec\": %.1f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"mean_us\": %.2f},\n",
                 backend_rows[i].first, m.batch_size, m.completed, m.qps,
                 m.p50_us, m.p99_us, m.mean_us);
  }
  for (std::size_t i = 0; i < family_rows.size(); ++i) {
    const FamilyRow& row = family_rows[i];
    std::fprintf(out,
                 "  {\"config\": \"family\", \"family\": \"%s\", "
                 "\"requests\": %" PRIu64 ", \"batches\": %" PRIu64
                 ", \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"mean_us\": %.2f}%s\n",
                 row.name, row.completed, row.batches, row.p50_us, row.p99_us,
                 row.mean_us, i + 1 < family_rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote BENCH_serve.json (%zu records)\n",
              rows.size() + backend_rows.size() + family_rows.size());
  return 0;
}
