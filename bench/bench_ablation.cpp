// Ablations of the design choices DESIGN.md calls out — not figures from the
// paper, but the studies a reviewer would ask for:
//
//   A1  perfect splits (straddler re-clipping) on/off: build cost vs tree
//       quality (SAH cost, render time)
//   A2  empty-space bonus sweep (Wald & Havran's lambda)
//   A3  BFS bin-count sweep: binned-SAH fidelity vs per-level cost
//   A4  search strategies head-to-head including hill climbing
//   A5  algorithm selection (the paper's SVI proposal) vs each fixed algorithm
//   A6  acceleration-structure baseline: tuned SAH kd-tree vs binned-SAH BVH
//   A7  CI sweep with traversal work counters: how the SAH intersect cost
//       trades node visits against triangle tests (the tuner's mechanism)

#include "bench_common.hpp"

namespace {

using namespace kdtune;
using namespace kdtune::bench;

double render_ms(const KdTreeBase& tree, const Scene& scene, ThreadPool& pool,
                 int w, int h) {
  const Camera camera(scene.camera(), w, h);
  Framebuffer fb(w, h);
  Stopwatch clock;
  clock.start();
  render(tree, scene, camera, fb, pool);
  return clock.elapsed() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe("Ablations: clipping, empty bonus, bin count, strategies, "
                "algorithm selection");

  ThreadPool pool(opts.threads);
  const Scene scene = make_scene("sponza", opts.detail)->frame(0);

  // --- A1: perfect splits ---------------------------------------------------
  {
    print_banner("A1: perfect splits (straddler re-clipping), sweep builder");
    TextTable t({"clipping", "build [ms]", "SAH cost", "prim refs",
                 "render [ms]"});
    for (const bool clip : {true, false}) {
      BuildConfig config;
      config.clip_straddlers = clip;
      Stopwatch clock;
      clock.start();
      const auto tree =
          make_sweep_builder()->build(scene.triangles(), config, pool);
      const double build_ms = clock.elapsed() * 1e3;
      const TreeStats stats = tree->stats();
      t.add_row({clip ? "on" : "off", fmt(build_ms, 2), fmt(stats.sah_cost, 1),
                 std::to_string(stats.prim_refs),
                 fmt(render_ms(*tree, scene, pool, opts.width, opts.height), 2)});
    }
    t.print();
  }

  // --- A2: empty-space bonus -------------------------------------------------
  {
    print_banner("A2: empty-space bonus sweep (in-place builder)");
    TextTable t({"bonus", "SAH cost", "nodes", "empty leaves", "render [ms]"});
    for (const double bonus : {0.0, 0.2, 0.5, 0.8}) {
      BuildConfig config;
      config.empty_bonus = bonus;
      const auto tree = make_builder(Algorithm::kInPlace)
                            ->build(scene.triangles(), config, pool);
      const TreeStats stats = tree->stats();
      t.add_row({fmt(bonus, 1), fmt(stats.sah_cost, 1),
                 std::to_string(stats.node_count),
                 std::to_string(stats.empty_leaf_count),
                 fmt(render_ms(*tree, scene, pool, opts.width, opts.height), 2)});
    }
    t.print();
  }

  // --- A3: bin count ----------------------------------------------------------
  {
    print_banner("A3: BFS bin-count sweep (in-place builder)");
    TextTable t({"bins", "build [ms]", "SAH cost", "render [ms]"});
    for (const int bins : {4, 8, 16, 32, 64}) {
      BuildConfig config;
      config.bin_count = bins;
      Stopwatch clock;
      clock.start();
      const auto tree = make_builder(Algorithm::kInPlace)
                            ->build(scene.triangles(), config, pool);
      const double build_ms = clock.elapsed() * 1e3;
      t.add_row({std::to_string(bins), fmt(build_ms, 2),
                 fmt(tree->stats().sah_cost, 1),
                 fmt(render_ms(*tree, scene, pool, opts.width, opts.height), 2)});
    }
    t.print();
  }

  // --- A4: strategies head-to-head --------------------------------------------
  {
    print_banner("A4: search strategies on the in-place algorithm (frames to "
                 "convergence, best frame time)");
    struct Entry {
      const char* name;
      std::function<std::unique_ptr<SearchStrategy>()> make;
    };
    const Entry entries[] = {
        {"nelder-mead", [&] { return make_nelder_mead_search(); }},
        {"hill-climb", [&] { return make_hill_climb_search(2, opts.seed); }},
        {"random-64", [&] { return make_random_search(64, opts.seed); }},
    };
    TextTable t({"strategy", "frames", "best frame [ms]", "config"});
    for (const Entry& entry : entries) {
      PipelineOptions popts;
      popts.width = opts.width;
      popts.height = opts.height;
      popts.strategy = entry.make();
      TunedPipeline pipeline(Algorithm::kInPlace, pool, std::move(popts));
      std::size_t frames = 0;
      while (!pipeline.tuner().converged() && frames < 4 * opts.iterations) {
        pipeline.render_frame(scene);
        ++frames;
      }
      t.add_row({entry.name, std::to_string(frames),
                 fmt(pipeline.tuner().best_time() * 1e3, 2),
                 config_to_string(pipeline.best_config(), false)});
    }
    t.print();
  }

  // --- A5: algorithm selection -------------------------------------------------
  {
    print_banner("A5: algorithm selection (tune each, pick the winner)");
    SelectorOptions sopts;
    sopts.width = opts.width;
    sopts.height = opts.height;
    sopts.frames_per_algorithm = opts.iterations;
    AlgorithmSelector selector(pool, sopts);
    std::size_t frames = 0;
    while (!selector.selection_done()) {
      selector.render_frame(scene);
      ++frames;
    }
    TextTable t({"algorithm", "best frame [ms]"});
    for (const auto& [algorithm, time] : selector.standings()) {
      t.add_row({std::string(to_string(algorithm)), fmt(time * 1e3, 2)});
    }
    t.print();
    std::printf("selected %s after %zu frames\n",
                std::string(to_string(selector.selected())).c_str(), frames);
  }

  // --- A6: kd-tree vs BVH -------------------------------------------------------
  {
    print_banner("A6: SAH kd-tree vs binned-SAH BVH (build + render, same scene)");
    TextTable t({"structure", "build [ms]", "nodes", "prim refs",
                 "render [ms]"});
    {
      Stopwatch clock;
      clock.start();
      const auto kd = make_builder(Algorithm::kInPlace)
                          ->build(scene.triangles(), kBaseConfig, pool);
      const double build_ms = clock.elapsed() * 1e3;
      const TreeStats s = kd->stats();
      t.add_row({"kd-tree (in-place, C_base)", fmt(build_ms, 2),
                 std::to_string(s.node_count), std::to_string(s.prim_refs),
                 fmt(render_ms(*kd, scene, pool, opts.width, opts.height), 2)});
    }
    {
      Stopwatch clock;
      clock.start();
      const auto bvh = build_bvh(scene.triangles(), {}, pool);
      const double build_ms = clock.elapsed() * 1e3;
      const TreeStats s = bvh->stats();
      t.add_row({"BVH (binned SAH)", fmt(build_ms, 2),
                 std::to_string(s.node_count), std::to_string(s.prim_refs),
                 fmt(render_ms(*bvh, scene, pool, opts.width, opts.height), 2)});
    }
    t.print();
  }

  // --- A7: CI sweep with traversal counters -------------------------------------
  {
    print_banner("A7: CI sweep - node visits vs triangle tests per primary ray "
                 "(sweep builder, camera rays)");
    TextTable t({"CI", "nodes", "leaves", "interior/ray", "leaves/ray",
                 "tris tested/ray"});
    const Camera camera(scene.camera(), 64, 48);
    for (const std::int64_t ci : {3, 10, 17, 40, 101}) {
      BuildConfig config;
      config.ci = ci;
      const auto tree_base =
          make_sweep_builder()->build(scene.triangles(), config, pool);
      const auto* tree = dynamic_cast<const KdTree*>(tree_base.get());
      TraversalCounters total;
      std::size_t rays = 0;
      for (int y = 0; y < 48; y += 2) {
        for (int x = 0; x < 64; x += 2) {
          tree->closest_hit_counted(camera.primary_ray(x, y), total);
          ++rays;
        }
      }
      const double inv = 1.0 / static_cast<double>(rays);
      const TreeStats stats = tree->stats();
      t.add_row({std::to_string(ci), std::to_string(stats.node_count),
                 std::to_string(stats.leaf_count),
                 fmt(static_cast<double>(total.interior_visited) * inv, 2),
                 fmt(static_cast<double>(total.leaves_visited) * inv, 2),
                 fmt(static_cast<double>(total.triangles_tested) * inv, 2)});
    }
    t.print();
  }
  return 0;
}
