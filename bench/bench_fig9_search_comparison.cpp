// Figure 9: Nelder-Mead vs exhaustive search vs the default configuration on
// the Sibenik scene, for all four algorithms. The paper measures each
// resulting configuration 150 times and draws box plots; this harness prints
// the box-plot statistics. Expected shape: the Nelder-Mead median lands
// within a few percent of the exhaustive optimum (within ~10% for lazy), both
// at or below the default configuration; rare NM outliers near speedup 1 come
// from local minima.
//
// The exhaustive search runs on a stride-coarsened grid (the paper's full
// 483k-point space is infeasible to enumerate online; the coarse grid keeps
// the same extent in every dimension).

#include <vector>

#include "bench_common.hpp"

namespace {

using namespace kdtune;
using namespace kdtune::bench;

/// Finds the exhaustive-search optimum by driving a pipeline with the
/// exhaustive strategy until it has enumerated its (coarsened) grid.
BuildConfig exhaustive_best(Algorithm algorithm, const Scene& frame,
                            ThreadPool& pool, const BenchOptions& opts) {
  PipelineOptions popts;
  popts.width = opts.width;
  popts.height = opts.height;
  std::vector<std::int64_t> strides{14, 10, 3};  // CI, CB, S
  if (algorithm == Algorithm::kLazy) strides.push_back(3);  // R
  popts.strategy = make_exhaustive_search(strides);
  TunedPipeline pipeline(algorithm, pool, std::move(popts));
  while (!pipeline.tuner().converged()) {
    pipeline.render_frame(frame);
  }
  return pipeline.best_config();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe("Figure 9: Nelder-Mead vs exhaustive vs default (Sibenik)");

  ThreadPool pool(opts.threads);
  const auto scene = make_scene("sibenik", opts.detail);
  const ExperimentOptions eopts = opts.experiment();

  TextTable table({"algorithm", "strategy", "min [ms]", "q1", "median", "q3",
                   "max", "config"});

  for (const Algorithm algorithm : all_algorithms()) {
    const bool lazy = algorithm == Algorithm::kLazy;
    std::printf("\n[%s]\n", std::string(to_string(algorithm)).c_str());

    // Default configuration distribution.
    const std::vector<double> default_times = measure_config_times(
        algorithm, *scene, kBaseConfig, pool, eopts, opts.measure);
    {
      const SampleStats s = compute_stats(default_times);
      table.add_row({std::string(to_string(algorithm)), "default",
                     fmt(s.min * 1e3, 2), fmt(s.q1 * 1e3, 2),
                     fmt(s.median * 1e3, 2), fmt(s.q3 * 1e3, 2),
                     fmt(s.max * 1e3, 2),
                     config_to_string(kBaseConfig, lazy)});
      std::printf("  default    median %8.2f ms\n", s.median * 1e3);
    }

    // Nelder-Mead: pool the measured times of the tuned configurations of
    // `reps` independent optimization runs.
    {
      std::vector<double> nm_times;
      BuildConfig last_config;
      const std::size_t per_rep =
          std::max<std::size_t>(3, opts.measure / opts.reps);
      for (std::size_t rep = 0; rep < opts.reps; ++rep) {
        ExperimentOptions ropts = eopts;
        ropts.seed = opts.seed + rep * 2741;
        const TuningRun run =
            run_tuning_experiment(algorithm, *scene, pool, ropts);
        last_config = run.tuned_config;
        const auto times = measure_config_times(
            algorithm, *scene, run.tuned_config, pool, eopts, per_rep);
        nm_times.insert(nm_times.end(), times.begin(), times.end());
      }
      const SampleStats s = compute_stats(nm_times);
      table.add_row({std::string(to_string(algorithm)), "nelder-mead",
                     fmt(s.min * 1e3, 2), fmt(s.q1 * 1e3, 2),
                     fmt(s.median * 1e3, 2), fmt(s.q3 * 1e3, 2),
                     fmt(s.max * 1e3, 2), config_to_string(last_config, lazy)});
      std::printf("  nelder-mead median %8.2f ms\n", s.median * 1e3);
    }

    // Exhaustive search over the coarsened grid.
    {
      const BuildConfig best =
          exhaustive_best(algorithm, scene->frame(0), pool, opts);
      const std::vector<double> ex_times = measure_config_times(
          algorithm, *scene, best, pool, eopts, opts.measure);
      const SampleStats s = compute_stats(ex_times);
      table.add_row({std::string(to_string(algorithm)), "exhaustive",
                     fmt(s.min * 1e3, 2), fmt(s.q1 * 1e3, 2),
                     fmt(s.median * 1e3, 2), fmt(s.q3 * 1e3, 2),
                     fmt(s.max * 1e3, 2), config_to_string(best, lazy)});
      std::printf("  exhaustive median %8.2f ms  %s\n", s.median * 1e3,
                  config_to_string(best, lazy).c_str());
    }
  }

  print_banner("Figure 9 summary");
  table.print();
  return 0;
}
