// Micro: construction throughput of every builder (the five tuned
// algorithms plus the sequential references) on the evaluation scenes, and
// the asymptotic-complexity ablation (sweep O(n log^2 n) vs event O(n log n)).

#include <benchmark/benchmark.h>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

std::unique_ptr<Builder> builder_for(int id) {
  switch (id) {
    case 0: return make_median_builder();
    case 1: return make_sweep_builder();
    case 2: return make_event_builder();
    case 3: return make_builder(Algorithm::kNodeLevel);
    case 4: return make_builder(Algorithm::kNested);
    case 5: return make_builder(Algorithm::kInPlace);
    default: return make_builder(Algorithm::kLazy);
  }
}

const char* builder_name(int id) {
  switch (id) {
    case 0: return "median";
    case 1: return "sweep";
    case 2: return "event";
    case 3: return "node-level";
    case 4: return "nested";
    case 5: return "in-place";
    default: return "lazy";
  }
}

const Scene& cached_scene(const std::string& id, float detail) {
  static std::map<std::string, Scene> cache;
  const std::string key = id + "@" + std::to_string(detail);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, make_scene(id, detail)->frame(0)).first;
  }
  return it->second;
}

void BM_Build(benchmark::State& state) {
  const int builder_id = static_cast<int>(state.range(0));
  const auto builder = builder_for(builder_id);
  const Scene& scene = cached_scene("sponza", 0.3f);
  ThreadPool pool(3);

  for (auto _ : state) {
    auto tree = builder->build(scene.triangles(), kBaseConfig, pool);
    benchmark::DoNotOptimize(tree);
  }
  state.SetLabel(builder_name(builder_id));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scene.triangle_count()));
}
BENCHMARK(BM_Build)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

// Complexity ablation: triangle-count sweep for the two exact sequential
// builders. The ratio of their slopes shows the extra log factor of the
// re-sorting sweep.
void BM_BuildScaling(benchmark::State& state) {
  const bool use_event = state.range(0) == 1;
  const float detail = static_cast<float>(state.range(1)) / 100.0f;
  const auto builder = use_event ? make_event_builder() : make_sweep_builder();
  const Scene& scene = cached_scene("bunny", detail);
  ThreadPool pool(0);

  for (auto _ : state) {
    auto tree = builder->build(scene.triangles(), kBaseConfig, pool);
    benchmark::DoNotOptimize(tree);
  }
  state.SetLabel(std::string(use_event ? "event" : "sweep") + "/n=" +
                 std::to_string(scene.triangle_count()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scene.triangle_count()));
}
BENCHMARK(BM_BuildScaling)
    ->Args({0, 10})
    ->Args({0, 20})
    ->Args({0, 40})
    ->Args({1, 10})
    ->Args({1, 20})
    ->Args({1, 40})
    ->Unit(benchmark::kMillisecond);

// Lazy construction cost as a function of R: the larger the minimal
// resolution, the cheaper the up-front build (figure-5's lazy advantage).
void BM_LazyBuildVsR(benchmark::State& state) {
  const auto builder = make_builder(Algorithm::kLazy);
  const Scene& scene = cached_scene("sibenik", 0.3f);
  ThreadPool pool(3);
  BuildConfig config;
  config.r = state.range(0);

  for (auto _ : state) {
    auto tree = builder->build(scene.triangles(), config, pool);
    benchmark::DoNotOptimize(tree);
  }
  state.SetLabel("R=" + std::to_string(config.r));
}
BENCHMARK(BM_LazyBuildVsR)->RangeMultiplier(4)->Range(16, 8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
