// Figure 8: mean speedup over time (tuning iterations) for Sponza (static)
// and Wood Doll (dynamic). The paper's observation: the autotuner reaches a
// stable state after about 40 iterations; static scenes then show little
// jitter, dynamic scenes keep a larger variance because the optimal
// configuration shifts with the animation.

#include <algorithm>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;
  using namespace kdtune::bench;
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe("Figure 8: mean speedup over tuning iterations "
                "(in-place algorithm; Sponza and Wood Doll)");

  ThreadPool pool(opts.threads);

  for (const char* scene_id : {"sponza", "wood_doll"}) {
    const auto scene = make_scene(scene_id, opts.detail);

    // Collect per-iteration times across repetitions; tuning keeps running
    // the full iteration budget so every repetition has the same length.
    std::vector<std::vector<double>> traces;
    double base_median = 0.0;
    for (std::size_t rep = 0; rep < opts.reps; ++rep) {
      ExperimentOptions eopts = opts.experiment();
      eopts.seed = opts.seed + rep * 6151;
      eopts.post_convergence = opts.iterations;  // keep measuring after conv.
      const TuningRun run =
          run_tuning_experiment(Algorithm::kInPlace, *scene, pool, eopts);
      std::vector<double> trace;
      trace.reserve(run.samples.size());
      for (const IterationSample& s : run.samples) trace.push_back(s.seconds);
      traces.push_back(std::move(trace));
      base_median = run.base_median;  // same protocol every repetition
    }

    std::size_t length = 0;
    for (const auto& t : traces) length = std::max(length, t.size());

    print_banner(std::string("Figure 8: ") + scene_id +
                 " - mean speedup vs iteration (speedup = t(C_base)/t_i)");
    TextTable table({"iteration", "mean speedup", "min", "max", "samples"});
    TextTable csv({"scene", "iteration", "mean_speedup"});
    for (std::size_t i = 0; i < length; ++i) {
      std::vector<double> at;
      for (const auto& t : traces) {
        if (i < t.size() && t[i] > 0.0) at.push_back(base_median / t[i]);
      }
      if (at.empty()) continue;
      const SampleStats s = compute_stats(at);
      if (i % 5 == 0 || i + 1 == length) {
        table.add_row({std::to_string(i), fmt(s.mean, 2), fmt(s.min, 2),
                       fmt(s.max, 2), std::to_string(s.count)});
      }
      csv.add_row({scene_id, std::to_string(i), fmt(s.mean, 4)});
    }
    table.print();
    if (opts.csv) {
      print_banner("CSV");
      csv.print_csv();
    }
  }
  return 0;
}
