// Micro: range, nearest-neighbor and k-NN query throughput through the SAH
// kd-tree (builder layout and compact serving layout) vs the BVH baseline,
// plus lazy-tree queries (which may expand) and a closest-hit sweep over the
// serving query backends (compact / wide4 / wide8 / bvh) on bunny — the
// measurement the wide-backend acceptance gate reads. The JSON pass also
// asserts the best-first search prunes at push time (KnnSearchStats.pruned
// must be nonzero on a real scene — the child-push bound check is the fix
// for unconditional enqueueing).
//
// Like bench_micro_traversal, the binary always writes machine-readable
// results to BENCH_queries.json (--json=PATH to override); `--smoke` runs
// only that pass with reduced repetitions for CI.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.hpp"
#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct QueryFixture {
  Scene scene;
  std::unique_ptr<KdTreeBase> kd;
  std::unique_ptr<CompactKdTree> compact;
  std::unique_ptr<KdTreeBase> bvh;
  std::vector<AABB> boxes;
  std::vector<Vec3> points;
};

const QueryFixture& fixture() {
  static const QueryFixture f = [] {
    QueryFixture q;
    q.scene = make_scene("sponza", 0.3f)->frame(0);
    ThreadPool pool(3);
    q.kd = make_builder(Algorithm::kInPlace)
               ->build(q.scene.triangles(), kBaseConfig, pool);
    q.compact = std::make_unique<CompactKdTree>(
        dynamic_cast<const KdTree&>(*q.kd));
    q.bvh = build_bvh(q.scene.triangles(), {}, pool);
    Rng rng(42);
    const AABB bounds = q.scene.bounds();
    for (int i = 0; i < 256; ++i) {
      const Vec3 c{rng.uniform(bounds.lo.x, bounds.hi.x),
                   rng.uniform(bounds.lo.y, bounds.hi.y),
                   rng.uniform(bounds.lo.z, bounds.hi.z)};
      const Vec3 half{rng.uniform(0.2f, 1.5f), rng.uniform(0.2f, 1.5f),
                      rng.uniform(0.2f, 1.5f)};
      q.boxes.push_back({c - half, c + half});
      q.points.push_back(c);
    }
    return q;
  }();
  return f;
}

const KdTreeBase& pick_tree(const QueryFixture& f, int which) {
  switch (which) {
    case 0: return *f.kd;
    case 1: return *f.compact;
    default: return *f.bvh;
  }
}

const char* tree_label(int which) {
  switch (which) {
    case 0: return "kd-tree";
    case 1: return "kd-compact";
    default: return "bvh";
  }
}

void BM_RangeQuery(benchmark::State& state) {
  const QueryFixture& f = fixture();
  const KdTreeBase& tree = pick_tree(f, static_cast<int>(state.range(0)));
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.query_range(f.boxes[i], out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % f.boxes.size();
  }
  state.SetLabel(tree_label(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RangeQuery)->Arg(0)->Arg(1)->Arg(2);

void BM_NearestQuery(benchmark::State& state) {
  const QueryFixture& f = fixture();
  const KdTreeBase& tree = pick_tree(f, static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.nearest(f.points[i]));
    i = (i + 1) % f.points.size();
  }
  state.SetLabel(tree_label(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NearestQuery)->Arg(0)->Arg(1)->Arg(2);

// Lazy queries on a fresh tree pay for expansion on first touch; this
// measures steady state after a warm-up pass.
void BM_LazyNearestWarm(benchmark::State& state) {
  static const auto tree = [] {
    ThreadPool pool(3);
    BuildConfig config;
    config.r = 256;
    const Scene scene = make_scene("sponza", 0.3f)->frame(0);
    auto t = make_builder(Algorithm::kLazy)->build(scene.triangles(), config, pool);
    return t;
  }();
  const QueryFixture& f = fixture();
  for (const Vec3& p : f.points) tree->nearest(p);  // warm up / expand

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->nearest(f.points[i]));
    i = (i + 1) % f.points.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LazyNearestWarm);

// ---------------------------------------------------------------------------
// Machine-readable measurement pass (BENCH_queries.json).

template <typename Fn>
double measure_ns_per_query(std::size_t count, int reps, Fn&& run) {
  using Clock = std::chrono::steady_clock;
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    run();
    const auto t1 = Clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(count);
    best = std::min(best, ns);
  }
  return best;
}

/// Closest-hit over the tunable serving backends on bunny: parity first
/// (valid/t bit-exact; triangle ids may differ on exact t-ties for wide/bvh),
/// then interleaved min-of-N timings. Prints the wide8-vs-compact speedup the
/// acceptance gate reads.
void run_backend_pass(std::vector<bench::BenchRecord>& records, int reps) {
  const Scene scene = make_scene("bunny", 1.0f)->frame(0);
  ThreadPool pool(3);
  const auto kd = make_builder(Algorithm::kInPlace)
                      ->build(scene.triangles(), kBaseConfig, pool);
  const auto compact = std::make_shared<const CompactKdTree>(
      dynamic_cast<const KdTree&>(*kd));
  const auto wide4 = make_wide_tree(compact, QueryBackend::kWide4);
  const auto wide8 = make_wide_tree(compact, QueryBackend::kWide8);
  const auto bvh = build_bvh(scene.triangles(), {}, pool);

  const Camera camera(scene.camera(), 256, 192);
  std::vector<Ray> rays;
  for (int y = 0; y < 192; ++y) {
    for (int x = 0; x < 256; ++x) rays.push_back(camera.primary_ray(x, y));
  }

  const char* names[] = {"compact", "wide4", "wide8", "bvh"};
  const KdTreeBase* trees[] = {compact.get(), wide4.get(), wide8.get(),
                               bvh.get()};

  std::size_t mismatches = 0;
  for (const Ray& ray : rays) {
    const Hit a = compact->closest_hit(ray);
    for (int i = 1; i < 4; ++i) {
      const Hit b = trees[i]->closest_hit(ray);
      if (a.valid() != b.valid() || (a.valid() && a.t != b.t)) ++mismatches;
    }
  }
  std::printf("backend hit-parity mismatches (bunny): %zu\n", mismatches);

  double best[4] = {1e30, 1e30, 1e30, 1e30};
  for (int rep = 0; rep < reps; ++rep) {
    for (int i = 0; i < 4; ++i) {
      best[i] = std::min(
          best[i], measure_ns_per_query(rays.size(), 1, [&] {
            std::size_t sink = 0;
            for (const Ray& ray : rays) {
              sink += trees[i]->closest_hit(ray).valid() ? 1 : 0;
            }
            benchmark::DoNotOptimize(sink);
          }));
    }
  }
  for (int i = 0; i < 4; ++i) {
    records.push_back({"bunny", "inplace", names[i], "closest_hit", best[i],
                       1e9 / best[i]});
    std::printf("%-10s closest_hit %9.1f ns/ray\n", names[i], best[i]);
  }
  std::printf("wide8 speedup vs compact (bunny, closest_hit, simd=%s): "
              "%.2fx\n",
              to_string(detect_simd_level()), best[0] / best[2]);
}

void run_json_pass(const std::string& path, bool smoke) {
  const int reps = smoke ? 2 : 5;
  const QueryFixture& f = fixture();
  std::vector<bench::BenchRecord> records;
  run_backend_pass(records, smoke ? 5 : 9);

  const char* layouts[] = {"kdtree", "compact", "bvh"};
  for (int which = 0; which < 3; ++which) {
    const KdTreeBase& tree = pick_tree(f, which);
    std::vector<std::uint32_t> out;
    const double range_ns = measure_ns_per_query(f.boxes.size(), reps, [&] {
      for (const AABB& box : f.boxes) {
        out.clear();
        tree.query_range(box, out);
        benchmark::DoNotOptimize(out.data());
      }
    });
    const double nearest_ns =
        measure_ns_per_query(f.points.size(), reps, [&] {
          for (const Vec3& p : f.points) {
            benchmark::DoNotOptimize(tree.nearest(p));
          }
        });
    std::vector<NearestResult> knn;
    const double knn_ns = measure_ns_per_query(f.points.size(), reps, [&] {
      for (const Vec3& p : f.points) {
        knn.clear();
        tree.nearest_k(p, 8, knn);
        benchmark::DoNotOptimize(knn.data());
      }
    });
    records.push_back({"sponza", "inplace", layouts[which], "range", range_ns,
                       1e9 / range_ns});
    records.push_back({"sponza", "inplace", layouts[which], "nearest",
                       nearest_ns, 1e9 / nearest_ns});
    records.push_back({"sponza", "inplace", layouts[which], "nearest_k8",
                       knn_ns, 1e9 / knn_ns});
    std::printf("%-10s range %9.1f ns/query | nearest %9.1f ns/query | "
                "k=8 %9.1f ns/query\n",
                layouts[which], range_ns, nearest_ns, knn_ns);
  }

  // Push-time pruning sanity: on a real scene the bound must reject child
  // pushes — if `pruned` is ever zero here the best-first search has
  // regressed to unconditional enqueueing.
  {
    const auto& kd = dynamic_cast<const KdTree&>(*f.kd);
    KnnSearchStats total{};
    for (const Vec3& p : f.points) {
      KnnSearchStats stats{};
      kd.nearest_counted(p, stats);
      total.pushed += stats.pushed;
      total.popped += stats.popped;
      total.pruned += stats.pruned;
    }
    std::printf("nearest push-prune: %llu pushed, %llu popped, %llu pruned\n",
                static_cast<unsigned long long>(total.pushed),
                static_cast<unsigned long long>(total.popped),
                static_cast<unsigned long long>(total.pruned));
    if (total.pruned == 0) {
      std::fprintf(stderr,
                   "FAIL: best-first nearest() pruned no child pushes\n");
      std::exit(1);
    }
  }
  bench::write_bench_json(path, records);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_queries.json";
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  run_json_pass(json_path, smoke);
  if (smoke) return 0;

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
