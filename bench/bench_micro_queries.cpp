// Micro: range and nearest-neighbor query throughput through the SAH
// kd-tree vs the BVH baseline, plus lazy-tree queries (which may expand).

#include <benchmark/benchmark.h>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

struct QueryFixture {
  Scene scene;
  std::unique_ptr<KdTreeBase> kd;
  std::unique_ptr<KdTreeBase> bvh;
  std::vector<AABB> boxes;
  std::vector<Vec3> points;
};

const QueryFixture& fixture() {
  static const QueryFixture f = [] {
    QueryFixture q;
    q.scene = make_scene("sponza", 0.3f)->frame(0);
    ThreadPool pool(3);
    q.kd = make_builder(Algorithm::kInPlace)
               ->build(q.scene.triangles(), kBaseConfig, pool);
    q.bvh = build_bvh(q.scene.triangles(), {}, pool);
    Rng rng(42);
    const AABB bounds = q.scene.bounds();
    for (int i = 0; i < 256; ++i) {
      const Vec3 c{rng.uniform(bounds.lo.x, bounds.hi.x),
                   rng.uniform(bounds.lo.y, bounds.hi.y),
                   rng.uniform(bounds.lo.z, bounds.hi.z)};
      const Vec3 half{rng.uniform(0.2f, 1.5f), rng.uniform(0.2f, 1.5f),
                      rng.uniform(0.2f, 1.5f)};
      q.boxes.push_back({c - half, c + half});
      q.points.push_back(c);
    }
    return q;
  }();
  return f;
}

void BM_RangeQuery(benchmark::State& state) {
  const QueryFixture& f = fixture();
  const KdTreeBase& tree = state.range(0) == 0 ? *f.kd : *f.bvh;
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.query_range(f.boxes[i], out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % f.boxes.size();
  }
  state.SetLabel(state.range(0) == 0 ? "kd-tree" : "bvh");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RangeQuery)->Arg(0)->Arg(1);

void BM_NearestQuery(benchmark::State& state) {
  const QueryFixture& f = fixture();
  const KdTreeBase& tree = state.range(0) == 0 ? *f.kd : *f.bvh;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.nearest(f.points[i]));
    i = (i + 1) % f.points.size();
  }
  state.SetLabel(state.range(0) == 0 ? "kd-tree" : "bvh");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NearestQuery)->Arg(0)->Arg(1);

// Lazy queries on a fresh tree pay for expansion on first touch; this
// measures steady state after a warm-up pass.
void BM_LazyNearestWarm(benchmark::State& state) {
  static const auto tree = [] {
    ThreadPool pool(3);
    BuildConfig config;
    config.r = 256;
    const Scene scene = make_scene("sponza", 0.3f)->frame(0);
    auto t = make_builder(Algorithm::kLazy)->build(scene.triangles(), config, pool);
    return t;
  }();
  const QueryFixture& f = fixture();
  for (const Vec3& p : f.points) tree->nearest(p);  // warm up / expand

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->nearest(f.points[i]));
    i = (i + 1) % f.points.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LazyNearestWarm);

}  // namespace

BENCHMARK_MAIN();
