// Micro: autotuner overhead — the paper claims "little runtime overhead";
// this measures the cost of a full measurement cycle (propose + apply +
// report) for the Nelder-Mead strategy and the baselines, excluding the
// client workload itself.

#include <benchmark/benchmark.h>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

void BM_TunerCycle_NelderMead(benchmark::State& state) {
  std::int64_t ci = 0, cb = 0, s = 0, r = 0;
  Tuner tuner;
  tuner.register_parameter(&ci, 3, 101, 1, "CI");
  tuner.register_parameter(&cb, 0, 60, 1, "CB");
  tuner.register_parameter(&s, 1, 8, 1, "S");
  tuner.register_parameter_pow2(&r, 16, 8192, "R");

  double fake_time = 1.0;
  for (auto _ : state) {
    tuner.apply_next();
    fake_time = 1.0 + 0.001 * static_cast<double>((ci + cb + s) % 7);
    tuner.record(fake_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TunerCycle_NelderMead);

void BM_TunerCycle_Random(benchmark::State& state) {
  std::int64_t ci = 0, cb = 0;
  Tuner tuner(make_random_search(1u << 30));
  tuner.register_parameter(&ci, 3, 101, 1, "CI");
  tuner.register_parameter(&cb, 0, 60, 1, "CB");
  for (auto _ : state) {
    tuner.apply_next();
    tuner.record(1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TunerCycle_Random);

void BM_TunerCycle_Exhaustive(benchmark::State& state) {
  std::int64_t ci = 0, cb = 0;
  Tuner tuner(make_exhaustive_search());
  tuner.register_parameter(&ci, 3, 101, 1, "CI");
  tuner.register_parameter(&cb, 0, 60, 1, "CB");
  for (auto _ : state) {
    tuner.apply_next();
    tuner.record(1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TunerCycle_Exhaustive);

// Convergence speed in evaluations on a synthetic bowl: how many frames the
// application pays before the tuner settles (paper: ~40 iterations).
void BM_NelderMeadConvergence(benchmark::State& state) {
  for (auto _ : state) {
    auto search = make_nelder_mead_search();
    search->initialize({99, 61, 8, 10});
    std::size_t evals = 0;
    while (!search->converged() && evals < 500) {
      const ConfigPoint p = search->propose();
      double cost = 1.0;
      const double targets[4] = {40, 20, 5, 3};
      for (std::size_t d = 0; d < 4; ++d) {
        const double delta = static_cast<double>(p[d]) - targets[d];
        cost += delta * delta;
      }
      search->report(cost);
      ++evals;
    }
    benchmark::DoNotOptimize(evals);
    state.counters["evals"] = static_cast<double>(evals);
  }
}
BENCHMARK(BM_NelderMeadConvergence);

}  // namespace

BENCHMARK_MAIN();
