// Micro: the parallel runtime substrate — task spawn overhead, parallel_for /
// reduce / scan / sort throughput at several pool widths. These bound what
// the S parameter can buy the builders.

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/kdtune.hpp"

namespace {

using namespace kdtune;

ThreadPool& pool_for(std::int64_t workers) {
  static std::map<std::int64_t, std::unique_ptr<ThreadPool>> pools;
  auto it = pools.find(workers);
  if (it == pools.end()) {
    it = pools
             .emplace(workers,
                      std::make_unique<ThreadPool>(
                          static_cast<unsigned>(workers)))
             .first;
  }
  return *it->second;
}

void BM_TaskSpawn(benchmark::State& state) {
  ThreadPool& pool = pool_for(state.range(0));
  for (auto _ : state) {
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
      group.run([] { benchmark::DoNotOptimize(0); });
    }
    group.wait();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_TaskSpawn)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

void BM_ParallelFor(benchmark::State& state) {
  ThreadPool& pool = pool_for(state.range(0));
  std::vector<float> data(1 << 18, 1.5f);
  for (auto _ : state) {
    parallel_for(pool, 0, data.size(), 4096,
                 [&](std::size_t i) { data[i] = data[i] * 1.0001f + 0.1f; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelFor)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

void BM_ParallelScan(benchmark::State& state) {
  ThreadPool& pool = pool_for(state.range(0));
  std::vector<std::uint32_t> in(1 << 18, 1), out(1 << 18);
  for (auto _ : state) {
    parallel_exclusive_scan<std::uint32_t>(pool, in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ParallelScan)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

void BM_ParallelSort(benchmark::State& state) {
  ThreadPool& pool = pool_for(state.range(0));
  std::vector<int> base(1 << 17);
  Rng rng(1);
  for (auto& v : base) v = static_cast<int>(rng.next_int(0, 1 << 30));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<int> data = base;
    state.ResumeTiming();
    parallel_sort(pool, std::span<int>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_ParallelSort)->Arg(0)->Arg(1)->Arg(3)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelReduce(benchmark::State& state) {
  ThreadPool& pool = pool_for(state.range(0));
  std::vector<double> data(1 << 18);
  std::iota(data.begin(), data.end(), 0.0);
  for (auto _ : state) {
    const double sum = parallel_reduce<double>(
        pool, 0, data.size(), 4096, 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0;
          for (std::size_t i = b; i < e; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelReduce)->Arg(0)->Arg(1)->Arg(3)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
