#pragma once

// Shared command-line handling for the per-figure benchmark binaries.
//
// Defaults are sized so the whole `for b in build/bench/*; do $b; done` sweep
// finishes in minutes on a small machine; pass --full for paper-scale runs
// (full-size scenes, 15 repetitions, more tuning iterations).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/kdtune.hpp"

namespace kdtune::bench {

struct BenchOptions {
  float detail = 0.25f;        ///< scene detail scale (1.0 = paper size)
  std::size_t reps = 3;        ///< experiment repetitions (paper: 15)
  std::size_t iterations = 60; ///< max tuning iterations per run
  std::size_t measure = 20;    ///< measurement repeats for distributions
  unsigned threads = 3;        ///< pool workers (pool width = threads + 1)
  int width = 96;
  int height = 72;
  bool csv = false;            ///< also print CSV blocks
  std::uint64_t seed = 0x5EEDu;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&arg](const char* key) -> const char* {
        const std::size_t n = std::strlen(key);
        return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
      };
      if (arg == "--full") {
        o.detail = 1.0f;
        o.reps = 15;
        o.iterations = 150;
        o.measure = 150;
        o.width = 256;
        o.height = 192;
      } else if (arg == "--csv") {
        o.csv = true;
      } else if (const char* v = value("--detail=")) {
        o.detail = std::strtof(v, nullptr);
      } else if (const char* v = value("--reps=")) {
        o.reps = std::strtoul(v, nullptr, 10);
      } else if (const char* v = value("--iters=")) {
        o.iterations = std::strtoul(v, nullptr, 10);
      } else if (const char* v = value("--measure=")) {
        o.measure = std::strtoul(v, nullptr, 10);
      } else if (const char* v = value("--threads=")) {
        o.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      } else if (const char* v = value("--seed=")) {
        o.seed = std::strtoull(v, nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --full --csv --detail=F --reps=N --iters=N "
            "--measure=N --threads=N --seed=N\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
        std::exit(1);
      }
    }
    return o;
  }

  ExperimentOptions experiment() const {
    ExperimentOptions e;
    e.width = width;
    e.height = height;
    e.detail = detail;
    e.max_iterations = iterations;
    e.base_samples = std::max<std::size_t>(3, measure / 4);
    e.seed = seed;
    return e;
  }

  void describe(const char* what) const {
    std::printf(
        "%s\n  scene detail %.2f, %zu repetition(s), <=%zu tuning iterations, "
        "%zu measurements, pool width %u, %dx%d px\n  (--full for paper-scale "
        "settings; --help for all options)\n",
        what, detail, reps, iterations, measure, threads + 1, width, height);
  }
};

/// One machine-readable measurement row for the BENCH_*.json artifacts the
/// CI Release job uploads: which scene/builder/layout was measured, what
/// query ran, and the resulting per-query cost and throughput.
struct BenchRecord {
  std::string scene;
  std::string builder;
  std::string layout;   ///< "kdtree", "compact", "bvh", ...
  std::string query;    ///< "closest_hit", "any_hit", "range", "nearest", ...
  double ns_per_query = 0.0;
  double queries_per_sec = 0.0;
};

/// Writes records as a JSON array of objects. Hand-rolled on purpose: the
/// fields are all simple identifiers and numbers, and the benchmarks must
/// not grow a JSON-library dependency.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(out,
                 "  {\"scene\": \"%s\", \"builder\": \"%s\", "
                 "\"layout\": \"%s\", \"query\": \"%s\", "
                 "\"ns_per_query\": %.3f, \"queries_per_sec\": %.1f}%s\n",
                 r.scene.c_str(), r.builder.c_str(), r.layout.c_str(),
                 r.query.c_str(), r.ns_per_query, r.queries_per_sec,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

inline std::string config_to_string(const BuildConfig& c, bool with_r) {
  std::string s = "(" + std::to_string(c.ci) + ", " + std::to_string(c.cb) +
                  ", " + std::to_string(c.s);
  if (with_r) s += ", " + std::to_string(c.r);
  return s + ")";
}

}  // namespace kdtune::bench
