// Warm-start value of the offline explorer's ConfigDatabase
// (docs/EXPLORE.md): how many tuning iterations does a new run need to get
// within 5% of the sweep-best configuration, starting cold (C_base) vs from
// an exact database hit vs from a nearest-neighbor match?
//
// The cost function is deterministic on purpose — build work modeled as
// node count (SAH evaluations, bins fixed) plus traversal work counted over
// a fixed seeded ray set, both normalized against C_base — so the iteration
// counts are reproducible across runs and machines and the cold-vs-warm
// comparison cannot be decided by measurement noise. Wall-clock seconds per
// arm are tracked alongside (those ARE machine-dependent). Only the
// tree-shaping parameters CI and CB are tuned: S controls task spawning,
// which deterministic work counters cannot observe.
//
// Protocol:
//   1. Sweep a coarse Table-II grid on the *library* scene (bunny at
//      --detail) and record the best configuration in a ConfigDatabase,
//      exactly as kdtune_explore would.
//   2. "exact_hit" arm: look the library scene itself up — an exact context
//      hit reuses the stored configuration directly, zero iterations.
//   3. "cold" and "nn_warm" arms: tune the *target* scene (same generator at
//      0.85x detail — similar geometry, different tessellation, so the
//      database match is near, not exact) with the online Tuner; nn_warm
//      seeds the search from the nearest entry's parameters. An arm is
//      converged at the first iteration whose best-so-far cost is within 5%
//      of the target's own exhaustive sweep best.
//
// Writes BENCH_explore.json (field reference in docs/EXPLORE.md). The
// contract the CI bench job checks: nn_warm converges in strictly fewer
// iterations than cold.

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "core/differential.hpp"

namespace {

using namespace kdtune;
using namespace kdtune::bench;

struct Workload {
  std::vector<Triangle> triangles;
  std::vector<Ray> rays;
  SceneFeatures features;
};

Workload make_workload(float detail, int rays, std::uint64_t seed) {
  Workload w;
  const Scene scene = make_scene("bunny", detail)->frame(0);
  w.triangles.assign(scene.triangles().begin(), scene.triangles().end());
  w.features = SceneFeatures::extract(w.triangles);
  const AABB box = scene.bounds();
  const Vec3 ext = box.extent();
  Rng rng(seed);
  w.rays.reserve(static_cast<std::size_t>(rays));
  for (int i = 0; i < rays; ++i) {
    const Vec3 origin{box.lo.x - ext.x * 0.5f + rng.next_float() * ext.x,
                      box.lo.y + rng.next_float() * ext.y,
                      box.lo.z + rng.next_float() * ext.z};
    const Vec3 target{box.lo.x + rng.next_float() * ext.x,
                      box.lo.y + rng.next_float() * ext.y,
                      box.lo.z + rng.next_float() * ext.z};
    Vec3 dir = target - origin;
    if (length(dir) == 0.0f) dir = {1, 0, 0};
    w.rays.emplace_back(origin, normalized(dir));
  }
  return w;
}

/// Deterministic cost of one configuration: SAH-evaluation build work plus
/// counted traversal work over the fixed ray set, each normalized by the
/// C_base value so neither term dominates by unit choice.
struct CostModel {
  double base_build_work = 1.0;
  double base_query_work = 1.0;

  struct Raw {
    double build_work = 0.0;
    double query_work = 0.0;
  };

  static Raw measure(const Workload& w, const BuildConfig& config,
                     ThreadPool& pool) {
    const auto built =
        make_builder(Algorithm::kInPlace)->build(w.triangles, config, pool);
    const auto* tree = dynamic_cast<const KdTree*>(built.get());
    Raw raw;
    raw.build_work = static_cast<double>(tree->stats().node_count);
    TraversalCounters counters;
    for (const Ray& ray : w.rays) {
      (void)tree->closest_hit_counted(ray, counters);
    }
    // Triangle tests weighted as expensive relative to node steps — the
    // serving regime this models (fat shading kernels per candidate hit).
    // The SAH builder assumes the CI/CT ratio instead, so the cost optimum
    // sits at high CI, well away from C_base = (17, 10, ...): a cold search
    // has real distance to cover and the warm-start advantage is visible.
    raw.query_work = static_cast<double>(counters.interior_visited) +
                     static_cast<double>(counters.leaves_visited) +
                     6.0 * static_cast<double>(counters.triangles_tested);
    return raw;
  }

  double cost(const Raw& raw) const {
    // Query work dominates (amortized serving); build work is a smaller
    // rebuild tax that breaks ties toward shallower trees.
    return 0.15 * raw.build_work / base_build_work +
           raw.query_work / base_query_work;
  }
};

CostModel calibrate(const Workload& w, ThreadPool& pool) {
  const CostModel::Raw base = CostModel::measure(w, kBaseConfig, pool);
  CostModel model;
  model.base_build_work = std::max(base.build_work, 1.0);
  model.base_query_work = std::max(base.query_work, 1.0);
  return model;
}

struct SweepResult {
  BuildConfig best = kBaseConfig;
  double best_cost = 0.0;
  std::size_t cells = 0;
};

SweepResult sweep(const Workload& w, const CostModel& model, ThreadPool& pool) {
  SweepResult r;
  bool first = true;
  for (const std::int64_t ci : {3, 9, 17, 33, 49, 65, 81, 101}) {
    for (const std::int64_t cb : {0, 10, 20, 30, 45, 60}) {
      BuildConfig config = kBaseConfig;
      config.ci = ci;
      config.cb = cb;
      const double cost = model.cost(CostModel::measure(w, config, pool));
      ++r.cells;
      if (first || cost < r.best_cost) {
        r.best = config;
        r.best_cost = cost;
        first = false;
      }
    }
  }
  return r;
}

struct ArmResult {
  std::string arm;
  std::string match_kind = "none";
  double match_distance = 0.0;
  long iterations_to_5pct = -1;  ///< -1 = never reached within the budget
  double seconds_to_5pct = 0.0;  ///< wall clock spent up to that iteration
  double final_best_cost = 0.0;
  std::size_t evaluations = 0;
};

const char* kind_name(ConfigDatabase::MatchKind kind) {
  switch (kind) {
    case ConfigDatabase::MatchKind::kExact: return "exact";
    case ConfigDatabase::MatchKind::kNear: return "near";
    case ConfigDatabase::MatchKind::kFar: return "far";
  }
  return "far";
}

/// Runs the online tuner against the deterministic cost model until the
/// best-so-far cost is within 5% of `target_cost` (or the budget runs out).
ArmResult run_arm(const std::string& name, const Workload& w,
                  const CostModel& model, double target_cost,
                  std::size_t budget, ThreadPool& pool,
                  const ConfigDatabase::Entry* seed_entry) {
  ArmResult result;
  result.arm = name;

  BuildConfig config = kBaseConfig;
  Tuner tuner;
  tuner.register_parameter(&config.ci, kPaperRanges.ci_min,
                           kPaperRanges.ci_max, 1, "ci");
  tuner.register_parameter(&config.cb, kPaperRanges.cb_min,
                           kPaperRanges.cb_max, 1, "cb");
  if (seed_entry != nullptr) {
    std::vector<std::int64_t> values = {kBaseConfig.ci, kBaseConfig.cb};
    for (const auto& [pname, value] : seed_entry->params) {
      if (pname == "ci") values[0] = value;
      else if (pname == "cb") values[1] = value;
    }
    tuner.warm_start(values);
  }

  const double threshold = 1.05 * target_cost;
  double best_cost = 0.0;
  Stopwatch wall;
  wall.start();
  for (std::size_t i = 1; i <= budget; ++i) {
    tuner.apply_next();
    const double cost = model.cost(CostModel::measure(w, config, pool));
    tuner.record(cost);
    ++result.evaluations;
    if (result.evaluations == 1 || cost < best_cost) best_cost = cost;
    if (result.iterations_to_5pct < 0 && best_cost <= threshold) {
      result.iterations_to_5pct = static_cast<long>(i);
      result.seconds_to_5pct = wall.elapsed();
    }
    if (result.iterations_to_5pct >= 0 && tuner.converged()) break;
  }
  result.final_best_cost = best_cost;
  return result;
}

void write_explore_json(const std::string& path, float detail,
                        float target_detail, std::size_t library_cells,
                        const SweepResult& library, const SweepResult& target,
                        const std::vector<ArmResult>& arms,
                        bool warm_faster) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n\"scene\": \"bunny\",\n\"library_detail\": %.4f,\n"
               "\"target_detail\": %.4f,\n\"sweep_cells\": %zu,\n"
               "\"library_sweep_best_cost\": %.6f,\n"
               "\"target_sweep_best_cost\": %.6f,\n\"arms\": [\n",
               detail, target_detail, library_cells + target.cells,
               library.best_cost, target.best_cost);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    std::fprintf(out,
                 "  {\"arm\": \"%s\", \"match_kind\": \"%s\", "
                 "\"match_distance\": %.6f, \"iterations_to_5pct\": %ld, "
                 "\"seconds_to_5pct\": %.6f, \"final_best_cost\": %.6f, "
                 "\"evaluations\": %zu}%s\n",
                 a.arm.c_str(), a.match_kind.c_str(), a.match_distance,
                 a.iterations_to_5pct, a.seconds_to_5pct, a.final_best_cost,
                 a.evaluations, i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(out, "],\n\"warm_faster_than_cold\": %s\n}\n",
               warm_faster ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe(
      "BENCH_explore: cold vs exact-hit vs NN-warm iterations to reach "
      "within 5% of the sweep-best configuration (deterministic cost model)");

  const float detail = kdtune_ci_small() ? 0.5f * opts.detail : opts.detail;
  const float target_detail = 0.85f * detail;
  const int rays = kdtune_ci_small() ? 96 : 256;
  ThreadPool pool(opts.threads);

  // The offline library holds sweeps at several detail levels, as a real
  // explorer database would; the target detail falls between two of them,
  // so the NN lookup always has a genuine near neighbor.
  const float library_scales[] = {1.0f, 0.9f, 0.8f};
  const Workload target = make_workload(target_detail, rays, opts.seed ^ 0x9E);
  const HardwareDescriptor hw = HardwareDescriptor::detect(pool.concurrency());

  // --- Phase 1: offline sweeps of the library scenes into the database -----
  ConfigDatabase db;
  std::vector<Workload> libraries;
  SweepResult library_sweep{};
  CostModel library_model;
  std::size_t library_cells = 0;
  for (const float scale : library_scales) {
    const float lib_detail = scale * detail;
    libraries.push_back(make_workload(lib_detail, rays, opts.seed));
    const Workload& lib = libraries.back();
    const CostModel lib_model = calibrate(lib, pool);
    const SweepResult lib_sweep = sweep(lib, lib_model, pool);
    if (libraries.size() == 1) {
      library_sweep = lib_sweep;
      library_model = lib_model;
    }
    library_cells += lib_sweep.cells;
    char scene_name[32];
    std::snprintf(scene_name, sizeof(scene_name), "bunny@%.4f", lib_detail);
    ConfigDatabase::Entry entry;
    entry.workload = "build";
    entry.scene = scene_name;
    entry.builder = std::string(to_string(Algorithm::kInPlace));
    entry.backend = "compact";
    entry.hw = hw;
    entry.features = lib.features;
    entry.params = {{"ci", lib_sweep.best.ci}, {"cb", lib_sweep.best.cb}};
    entry.seconds = lib_sweep.best_cost;
    db.store(std::move(entry));
    std::printf(
        "library sweep %s: %zu cells, best CI=%lld CB=%lld cost %.4f\n",
        scene_name, lib_sweep.cells, static_cast<long long>(lib_sweep.best.ci),
        static_cast<long long>(lib_sweep.best.cb), lib_sweep.best_cost);
  }

  // The target scene's own exhaustive best is the arms' 5% reference.
  const CostModel target_model = calibrate(target, pool);
  const SweepResult target_sweep = sweep(target, target_model, pool);
  std::printf(
      "target sweep:  %zu cells, best CI=%lld CB=%lld cost %.4f\n",
      target_sweep.cells, static_cast<long long>(target_sweep.best.ci),
      static_cast<long long>(target_sweep.best.cb), target_sweep.best_cost);

  std::vector<ArmResult> arms;

  // --- Arm "exact_hit": the library scene itself — direct reuse ------------
  {
    ArmResult exact;
    exact.arm = "exact_hit";
    const auto match = db.nearest(
        "build", libraries[0].features, hw,
        std::string(to_string(Algorithm::kInPlace)), "compact");
    exact.match_kind = kind_name(match.kind);
    exact.match_distance = match.distance;
    if (match.kind == ConfigDatabase::MatchKind::kExact) {
      // No tuning at all: the stored configuration is applied as-is.
      exact.iterations_to_5pct = 0;
      exact.seconds_to_5pct = 0.0;
      BuildConfig reused = kBaseConfig;
      for (const auto& [pname, value] : match.entry->params) {
        if (pname == "ci") reused.ci = value;
        else if (pname == "cb") reused.cb = value;
        else if (pname == "s") reused.s = value;
      }
      exact.final_best_cost =
          library_model.cost(CostModel::measure(libraries[0], reused, pool));
      exact.evaluations = 1;
    }
    arms.push_back(exact);
  }

  // --- Arms "cold" / "nn_warm": tuning the target scene --------------------
  const std::size_t budget = opts.iterations;
  arms.push_back(run_arm("cold", target, target_model, target_sweep.best_cost,
                         budget, pool, nullptr));
  {
    // The target detail sits between two library detail levels, so this
    // lookup finds a near neighbor at the database's default threshold.
    const auto match = db.nearest(
        "build", target.features, hw,
        std::string(to_string(Algorithm::kInPlace)), "compact");
    const ConfigDatabase::Entry* seed =
        (match.entry != nullptr && match.kind != ConfigDatabase::MatchKind::kFar)
            ? match.entry
            : nullptr;
    ArmResult warm = run_arm("nn_warm", target, target_model,
                             target_sweep.best_cost, budget, pool, seed);
    warm.match_kind = kind_name(match.kind);
    warm.match_distance = match.distance;
    arms.push_back(warm);
  }

  print_banner("BENCH_explore: iterations to reach within 5% of sweep best");
  TextTable table({"arm", "match", "distance", "iters to 5%", "seconds to 5%",
                   "final best cost", "evals"});
  for (const ArmResult& a : arms) {
    table.add_row({a.arm, a.match_kind, fmt(a.match_distance, 3),
                   std::to_string(a.iterations_to_5pct),
                   fmt(a.seconds_to_5pct, 3), fmt(a.final_best_cost, 4),
                   std::to_string(a.evaluations)});
  }
  table.print();

  const ArmResult& cold = arms[1];
  const ArmResult& warm = arms[2];
  const bool warm_faster =
      warm.iterations_to_5pct >= 0 &&
      (cold.iterations_to_5pct < 0 ||
       warm.iterations_to_5pct < cold.iterations_to_5pct);
  std::printf("nn_warm %ld iteration(s) vs cold %ld: %s\n",
              warm.iterations_to_5pct, cold.iterations_to_5pct,
              warm_faster ? "warm start converges strictly faster"
                          : "WARM START DID NOT HELP");

  write_explore_json("BENCH_explore.json", detail, target_detail,
                     library_cells, library_sweep, target_sweep, arms,
                     warm_faster);
  return warm_faster ? 0 : 1;
}
