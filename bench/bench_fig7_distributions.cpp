// Figure 7: distribution of tuned configurations for the in-place algorithm —
// (a) across the static scenes, (b) across the dynamic scenes, (c) across the
// four (virtual) hardware platforms on Sibenik. The paper normalizes every
// parameter to [0, 100] and draws box plots; this harness prints the box-plot
// statistics (min/q1/median/q3/max) per scene/platform and parameter. The
// result to look for: the boxes land in clearly different ranges — tuned
// configurations are not portable across inputs or machines.

#include <vector>

#include "bench_common.hpp"

namespace {

using namespace kdtune;
using namespace kdtune::bench;

double normalize(std::int64_t value, std::int64_t lo, std::int64_t hi) {
  if (hi == lo) return 0.0;
  return 100.0 * static_cast<double>(value - lo) / static_cast<double>(hi - lo);
}

// Collects the normalized tuned parameter values of `reps` independent
// tuning runs of the in-place algorithm.
std::vector<std::vector<double>> tuned_distributions(
    const AnimatedScene& scene, ThreadPool& pool, const BenchOptions& opts,
    std::uint64_t seed_base) {
  std::vector<std::vector<double>> per_param(3);
  for (std::size_t rep = 0; rep < opts.reps; ++rep) {
    ExperimentOptions eopts = opts.experiment();
    eopts.seed = seed_base + rep * 104729;
    const TuningRun run =
        run_tuning_experiment(Algorithm::kInPlace, scene, pool, eopts);
    per_param[0].push_back(normalize(run.tuned_values[0], 3, 101));   // CI
    per_param[1].push_back(normalize(run.tuned_values[1], 0, 60));    // CB
    per_param[2].push_back(normalize(run.tuned_values[2], 1, 8));     // S
  }
  return per_param;
}

void print_boxplots(TextTable& table, const std::string& label,
                    const std::vector<std::vector<double>>& dists) {
  static const char* kParams[3] = {"CI", "CB", "S"};
  for (int p = 0; p < 3; ++p) {
    const SampleStats s = compute_stats(dists[p]);
    table.add_row({label, kParams[p], fmt(s.min, 1), fmt(s.q1, 1),
                   fmt(s.median, 1), fmt(s.q3, 1), fmt(s.max, 1)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  opts.describe(
      "Figure 7: distribution of tuned configurations (in-place algorithm), "
      "normalized to [0, 100]");

  // (a) + (b): scenes on the reference pool.
  {
    ThreadPool pool(opts.threads);
    TextTable table(
        {"scene", "param", "min", "q1", "median", "q3", "max"});
    for (const std::string& id : static_scene_ids()) {
      const auto scene = make_scene(id, opts.detail);
      std::printf("tuning on %s...\n", id.c_str());
      print_boxplots(table, id,
                     tuned_distributions(*scene, pool, opts, opts.seed));
    }
    print_banner("Figure 7a: static scenes");
    table.print();
  }
  {
    ThreadPool pool(opts.threads);
    TextTable table(
        {"scene", "param", "min", "q1", "median", "q3", "max"});
    for (const std::string& id : dynamic_scene_ids()) {
      const auto scene = make_scene(id, opts.detail);
      std::printf("tuning on %s...\n", id.c_str());
      print_boxplots(table, id,
                     tuned_distributions(*scene, pool, opts, opts.seed + 17));
    }
    print_banner("Figure 7b: dynamic scenes");
    table.print();
  }

  // (c): Sibenik across the virtual platforms (DESIGN.md substitution #2 —
  // each platform pins the pool's thread count to the paper machine's).
  {
    TextTable table(
        {"platform", "param", "min", "q1", "median", "q3", "max"});
    const auto scene = make_scene("sibenik", opts.detail);
    for (const Platform& platform : paper_platforms()) {
      std::printf("tuning on virtual platform %s (%u threads; %s)...\n",
                  platform.name.c_str(), platform.threads,
                  platform.emulates.c_str());
      ThreadPool pool(platform.threads - 1);  // pool width == threads
      print_boxplots(table, platform.name,
                     tuned_distributions(*scene, pool, opts, opts.seed + 33));
    }
    print_banner(
        "Figure 7c: Sibenik on four virtual platforms (paper: tuned "
        "configurations differ per machine -> not portable)");
    table.print();
  }
  return 0;
}
