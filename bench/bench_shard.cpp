// bench_shard — sharded serving tier throughput/latency sweep.
//
// Measures the ShardRouter at 1/2/4/8 shards for the two workloads that
// stress opposite ends of the routing spectrum — closest-hit rays (narrow
// overlap sets, merge is a single (t, id) fold) and radius-limited k-NN
// (wider overlap sets, KnnCollector merge) — plus a router-overhead pair:
// the same ray workload against a bare QueryService and against a 1-shard
// router, whose difference is the price of admission + routing + merge.
// Writes BENCH_shard.json; `--smoke` shrinks everything for CI.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/differential.hpp"
#include "core/kdtune.hpp"
#include "shard/shard_router.hpp"

using namespace kdtune;

namespace {

struct Row {
  std::string mode;   ///< "router" or "direct"
  int shards = 0;     ///< 0 for direct
  std::string query;  ///< "closest_hit" or "nearest"
  std::uint64_t completed = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_fanout = 0.0;
};

/// Closed-loop: `clients` threads race down one shared request index,
/// submitting and immediately resolving. Returns elapsed seconds.
template <typename SubmitOne>
double run_workload(int requests, int clients, SubmitOne&& submit_one) {
  Stopwatch wall;
  wall.start();
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests) break;
        submit_one(i).get();
      }
    });
  }
  for (auto& t : threads) t.join();
  return wall.elapsed();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const float detail = smoke ? (kdtune_ci_small() ? 0.08f : 0.15f) : 0.4f;
  const int requests = smoke ? (kdtune_ci_small() ? 300 : 600) : 4000;
  const int clients = 4;

  const Scene scene = make_scene("bunny", detail)->frame(0);
  std::vector<Triangle> tris(scene.triangles().begin(),
                             scene.triangles().end());
  const AABB box = scene.bounds();
  const float diag = length(box.extent());
  std::printf("bench_shard: %zu tris, %d requests x %d clients\n", tris.size(),
              requests, clients);

  // Deterministic workloads, shared by every configuration.
  Rng rng(0x5EEDu);
  std::vector<Ray> rays;
  std::vector<Vec3> points;
  rays.reserve(static_cast<std::size_t>(requests));
  points.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const Vec3 origin =
        box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                       rng.uniform(-1, 1)}) *
                           (diag * 0.8f + 0.5f);
    const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                      rng.uniform(box.lo.y, box.hi.y),
                      rng.uniform(box.lo.z, box.hi.z)};
    Vec3 dir = target - origin;
    if (length(dir) == 0.0f) dir = {1, 0, 0};
    rays.push_back(Ray(origin, normalized(dir)));
    points.push_back(target);
  }
  const float knn_radius = 0.2f * diag;

  std::vector<Row> rows;

  // --- Router sweep: K x {closest-hit, kNN}, fresh router per cell so the
  // latency histogram belongs to exactly one configuration.
  for (const int k : {1, 2, 4, 8}) {
    for (const bool knn : {false, true}) {
      ShardRouterOptions ropts;
      ropts.shard_count = k;
      ropts.router_threads = 2;
      ShardRouter router(tris, ropts);
      const double seconds = run_workload(requests, clients, [&](int i) {
        const auto idx = static_cast<std::size_t>(i);
        return knn ? router.submit_nearest("bench", points[idx], 8, knn_radius)
                   : router.submit_closest_hit("bench", rays[idx]);
      });
      router.drain();
      const ShardRouterStats stats = router.stats();
      Row row;
      row.mode = "router";
      row.shards = k;
      row.query = knn ? "nearest" : "closest_hit";
      row.completed = stats.completed;
      row.qps = static_cast<double>(stats.completed) / seconds;
      row.p50_us = stats.p50_seconds * 1e6;
      row.p99_us = stats.p99_seconds * 1e6;
      row.mean_fanout = stats.mean_fanout;
      rows.push_back(row);
      router.shutdown();
      std::printf(
          "shards=%d %-11s %9.0f req/s   p50 %7.1f us   p99 %7.1f us   "
          "fanout %.2f\n",
          k, row.query.c_str(), row.qps, row.p50_us, row.p99_us,
          row.mean_fanout);
    }
  }

  // --- Router overhead: the same rays against a bare QueryService. Compare
  // with the shards=1 row above — the gap is admission + routing + merge.
  {
    ThreadPool pool(2);
    SceneRegistry registry(pool);
    Scene copy("bench");
    copy.mutable_triangles() = tris;
    registry.admit("bench", std::move(copy), AdmitOptions{});
    QueryService service(registry, pool);
    const double seconds = run_workload(requests, clients, [&](int i) {
      return service.submit_closest_hit("bench",
                                        rays[static_cast<std::size_t>(i)]);
    });
    service.drain();
    const ServiceStats stats = service.stats();
    const EndpointStats& ep =
        stats.endpoints[static_cast<std::size_t>(QueryKind::kClosestHit)];
    Row row;
    row.mode = "direct";
    row.shards = 0;
    row.query = "closest_hit";
    row.completed = ep.completed;
    row.qps = static_cast<double>(ep.completed) / seconds;
    row.p50_us = ep.p50_seconds * 1e6;
    row.p99_us = ep.p99_seconds * 1e6;
    rows.push_back(row);
    service.shutdown();
    std::printf(
        "direct   %-11s %9.0f req/s   p50 %7.1f us   p99 %7.1f us   "
        "(vs shards=1: router merge overhead)\n",
        row.query.c_str(), row.qps, row.p50_us, row.p99_us);
  }

  std::FILE* out = std::fopen("BENCH_shard.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "  {\"mode\": \"%s\", \"shards\": %d, \"query\": \"%s\", "
                 "\"completed\": %" PRIu64
                 ", \"qps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"mean_fanout\": %.3f}%s\n",
                 r.mode.c_str(), r.shards, r.query.c_str(), r.completed, r.qps,
                 r.p50_us, r.p99_us, r.mean_fanout,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("wrote BENCH_shard.json (%zu records)\n", rows.size());
  return 0;
}
