// animated_tuning: runs a dynamic scene end-to-end — the geometry changes
// every frame, the kd-tree is rebuilt from scratch each time, and the tuner
// keeps adapting. Prints the per-frame trace the paper's Fig. 8 is built
// from: time, configuration, convergence state.
//
//   ./animated_tuning [toasters|wood_doll|fairy_forest] [algorithm] [detail]

#include <cstdio>
#include <string>

#include "core/kdtune.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;

  const std::string scene_id = argc > 1 ? argv[1] : "wood_doll";
  const std::string algo_name = argc > 2 ? argv[2] : "in-place";
  const float detail = argc > 3 ? std::strtof(argv[3], nullptr) : 0.5f;

  const auto scene = make_scene(scene_id, detail);
  const Algorithm algorithm = algorithm_from_string(algo_name);

  ThreadPool pool(3);
  TunedPipeline pipeline(algorithm, pool);

  // Baseline: the frame time of C_base on the first frame, so the trace
  // shows speedup rather than raw time.
  const Scene first = scene->frame(0);
  double base = 0.0;
  for (int i = 0; i < 3; ++i) {
    base += pipeline.render_frame_with(first, kBaseConfig).total_seconds;
  }
  base /= 3.0;
  std::printf("C_base frame time: %.2f ms\n", base * 1e3);
  std::printf("%5s %6s %9s %8s  %s\n", "iter", "frame", "time[ms]", "speedup",
              "configuration");

  // Every animation frame is repeated 5x (the paper's protocol for dynamic
  // scenes) so the tuner gets enough measurements before the sequence ends.
  const std::size_t total = scene->frame_count() * 5;
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t f = (i / 5) % scene->frame_count();
    const FrameReport r = pipeline.render_frame(scene->frame(f));
    if (i % 5 == 0) {
      std::printf("%5zu %6zu %9.2f %8.2f  CI=%lld CB=%lld S=%lld%s%s\n", i, f,
                  r.total_seconds * 1e3, base / r.total_seconds,
                  static_cast<long long>(r.config.ci),
                  static_cast<long long>(r.config.cb),
                  static_cast<long long>(r.config.s),
                  algorithm == Algorithm::kLazy
                      ? (" R=" + std::to_string(r.config.r)).c_str()
                      : "",
                  r.tuner_converged ? "  [converged]" : "");
    }
  }

  const BuildConfig best = pipeline.best_config();
  std::printf("\nbest: CI=%lld CB=%lld S=%lld R=%lld, %zu re-tunes\n",
              static_cast<long long>(best.ci), static_cast<long long>(best.cb),
              static_cast<long long>(best.s), static_cast<long long>(best.r),
              pipeline.tuner().retune_count());
  return 0;
}
