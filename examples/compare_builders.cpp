// compare_builders: builds the same scene with every builder in the library
// (the paper's four parallel algorithms plus the three sequential references)
// and prints construction time, tree shape, and a render checksum proving all
// trees produce the same image.
//
//   ./compare_builders [scene] [detail]

#include <cstdio>
#include <string>

#include "core/kdtune.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;

  const std::string scene_id = argc > 1 ? argv[1] : "sponza";
  const float detail = argc > 2 ? std::strtof(argv[2], nullptr) : 0.3f;

  const Scene scene = make_scene(scene_id, detail)->frame(0);
  ThreadPool pool(3);
  std::printf("scene %s: %zu triangles, pool width %u\n\n", scene_id.c_str(),
              scene.triangle_count(), pool.concurrency());

  std::vector<std::unique_ptr<Builder>> builders;
  builders.push_back(make_median_builder());
  builders.push_back(make_sweep_builder());
  builders.push_back(make_event_builder());
  for (Algorithm a : all_algorithms()) builders.push_back(make_builder(a));

  const Camera camera(scene.camera(), 160, 120);

  TextTable table({"builder", "build[ms]", "nodes", "leaves", "depth",
                   "SAH cost", "checksum"});
  for (const auto& builder : builders) {
    Stopwatch clock;
    clock.start();
    const auto tree = builder->build(scene.triangles(), kBaseConfig, pool);
    const double build_ms = clock.elapsed() * 1e3;

    Framebuffer fb(160, 120);
    render(*tree, scene, camera, fb, pool);

    const TreeStats stats = tree->stats();
    table.add_row({std::string(builder->name()), fmt(build_ms, 2),
                   std::to_string(stats.node_count),
                   std::to_string(stats.leaf_count),
                   std::to_string(stats.max_depth), fmt(stats.sah_cost, 1),
                   fmt(fb.checksum(), 3)});
  }
  table.print();
  std::printf(
      "\nIdentical checksums mean every builder's tree resolves every ray to "
      "the same surface.\n");
  return 0;
}
