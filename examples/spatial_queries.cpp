// spatial_queries: the kd-tree as a general spatial index, beyond ray
// casting — range queries, nearest-neighbor lookups, serialization and
// Graphviz export. (The paper's introduction: spatial data structures
// support "fast range or nearest neighbor queries on multidimensional
// data".)

#include <cstdio>

#include "core/kdtune.hpp"

int main() {
  using namespace kdtune;

  ThreadPool pool(3);
  const Scene scene = make_sponza(0.25f);
  std::printf("scene '%s': %zu triangles\n", scene.name().c_str(),
              scene.triangle_count());

  const auto tree_base =
      make_builder(Algorithm::kInPlace)->build(scene.triangles(), kBaseConfig, pool);
  const auto& tree = dynamic_cast<const KdTree&>(*tree_base);

  // Range query: everything inside a column's neighborhood.
  const AABB region({-2.0f, 0.0f, -7.0f}, {2.0f, 4.0f, -5.0f});
  std::vector<std::uint32_t> in_region;
  tree.query_range(region, in_region);
  std::printf("range query %zu triangles intersect the region around a column\n",
              in_region.size());

  // Nearest-neighbor: closest geometry to a point floating mid-atrium.
  const Vec3 probe{0.0f, 2.0f, 0.0f};
  const NearestResult nearest = tree.nearest(probe);
  if (nearest.valid()) {
    std::printf("nearest triangle to (0,2,0): #%u at distance %.3f, point "
                "(%.2f, %.2f, %.2f)\n",
                nearest.triangle, std::sqrt(nearest.distance_sq),
                nearest.point.x, nearest.point.y, nearest.point.z);
  }

  // Serialize the tree and load it back.
  save_tree_file("sponza.kdt", tree);
  const auto loaded = load_tree_file("sponza.kdt");
  std::printf("serialized + reloaded: %zu nodes, SAH cost %.1f\n",
              loaded->nodes().size(), loaded->stats().sah_cost);

  // Export the top of the tree for Graphviz.
  DotOptions dot;
  dot.max_depth = 5;
  export_dot_file("sponza_tree.dot", tree, dot);
  std::printf("wrote sponza.kdt and sponza_tree.dot "
              "(dot -Tsvg sponza_tree.dot -o tree.svg)\n");

  // Packet-traced render for good measure.
  RenderOptions opts;
  opts.use_packets = true;
  Framebuffer fb(240, 180);
  const Camera camera(scene.camera(), 240, 180);
  const RenderResult r = render(tree, scene, camera, fb, pool, opts);
  fb.save_ppm("sponza_packets.ppm");
  std::printf("packet render: %zu primary rays, %zu hits -> sponza_packets.ppm\n",
              r.rays_cast, r.hits);
  return 0;
}
