// custom_autotune: the Tuner is application-agnostic (paper §III-A, fig. 1) —
// this example tunes something that has nothing to do with kd-trees: the
// block size and thread count of a cache-blocked matrix transpose. It mirrors
// the paper's fig. 1 listing: register parameters, then wrap the hot loop in
// Start()/Stop().

#include <cstdio>
#include <vector>

#include "core/kdtune.hpp"

namespace {

// Cache-blocked out-of-place transpose; the optimal block size depends on the
// cache hierarchy — exactly the kind of constant people hard-code and
// autotuners should own.
void blocked_transpose(const std::vector<float>& in, std::vector<float>& out,
                       std::size_t n, std::size_t block,
                       kdtune::ThreadPool& pool) {
  kdtune::parallel_for_blocked(
      pool, 0, (n + block - 1) / block, 1, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t bi = b0; bi < b1; ++bi) {
          const std::size_t i0 = bi * block;
          const std::size_t i1 = std::min(n, i0 + block);
          for (std::size_t j0 = 0; j0 < n; j0 += block) {
            const std::size_t j1 = std::min(n, j0 + block);
            for (std::size_t i = i0; i < i1; ++i) {
              for (std::size_t j = j0; j < j1; ++j) {
                out[j * n + i] = in[i * n + j];
              }
            }
          }
        }
      });
}

}  // namespace

int main() {
  using namespace kdtune;

  constexpr std::size_t n = 1024;
  std::vector<float> in(n * n), out(n * n);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i % 97);
  }

  // The two knobs, as plain program variables the tuner writes into.
  std::int64_t block = 16;
  std::int64_t threads = 2;

  Tuner tuner;
  tuner.register_parameter_pow2(&block, 8, 256, "block");
  tuner.register_parameter(&threads, 0, 7, 1, "threads");

  std::printf("%5s %10s %7s %8s\n", "iter", "time[ms]", "block", "threads");
  for (int iter = 0; iter < 60; ++iter) {
    tuner.start();
    ThreadPool pool(static_cast<unsigned>(threads));
    blocked_transpose(in, out, n, static_cast<std::size_t>(block), pool);
    tuner.stop();

    const auto& last = tuner.history().back();
    if (iter % 5 == 0 || tuner.converged()) {
      std::printf("%5d %10.3f %7lld %8lld%s\n", iter, last.seconds * 1e3,
                  static_cast<long long>(last.values[0]),
                  static_cast<long long>(last.values[1]),
                  tuner.converged() ? "  [converged]" : "");
    }
    if (tuner.converged()) break;
  }

  const auto best = tuner.best_values();
  std::printf("best: block=%lld threads=%lld (%.3f ms)\n",
              static_cast<long long>(best[0]), static_cast<long long>(best[1]),
              tuner.best_time() * 1e3);
  return 0;
}
