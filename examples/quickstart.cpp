// Quickstart: the smallest end-to-end use of the library — generate a scene,
// run the autotuned ray-casting pipeline for a few frames, and watch the
// tuner improve the frame time. Writes the final render to quickstart.ppm.

#include <cstdio>

#include "core/kdtune.hpp"

int main() {
  using namespace kdtune;

  // A thread pool the builders and the renderer share. Worker count 3 plus
  // the calling thread gives an execution width of 4.
  ThreadPool pool(3);

  // The Stanford-Bunny stand-in at reduced detail (~4.4k triangles).
  const Scene scene = make_bunny(0.25f);
  std::printf("scene '%s': %zu triangles\n", scene.name().c_str(),
              scene.triangle_count());

  // An autotuned pipeline around the lazy construction algorithm. The tuner
  // owns the SAH parameters CI and CB, the parallelization parameter S, and
  // the lazy resolution R (paper Table Ib).
  PipelineOptions opts;
  opts.width = 160;
  opts.height = 120;
  TunedPipeline pipeline(Algorithm::kLazy, pool, std::move(opts));

  Framebuffer fb(160, 120);
  for (int frame = 0; frame < 40; ++frame) {
    const FrameReport report = pipeline.render_frame(scene, &fb);
    if (frame % 5 == 0 || pipeline.tuner().converged()) {
      std::printf(
          "frame %3d  total %7.2f ms (build %6.2f + render %6.2f)  "
          "CI=%-3lld CB=%-3lld S=%lld R=%-5lld %s\n",
          frame, report.total_seconds * 1e3, report.build_seconds * 1e3,
          report.render_seconds * 1e3,
          static_cast<long long>(report.config.ci),
          static_cast<long long>(report.config.cb),
          static_cast<long long>(report.config.s),
          static_cast<long long>(report.config.r),
          report.tuner_converged ? "[converged]" : "");
    }
    if (pipeline.tuner().converged()) break;
  }

  const BuildConfig best = pipeline.best_config();
  std::printf("best configuration: CI=%lld CB=%lld S=%lld R=%lld  (%.2f ms)\n",
              static_cast<long long>(best.ci), static_cast<long long>(best.cb),
              static_cast<long long>(best.s), static_cast<long long>(best.r),
              pipeline.tuner().best_time() * 1e3);

  fb.save_ppm("quickstart.ppm");
  std::printf("wrote quickstart.ppm\n");
  return 0;
}
