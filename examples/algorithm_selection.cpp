// algorithm_selection: the paper's closing question — which *algorithm* wins
// on a given scene and machine — answered with the baseline the paper
// proposes: tune each algorithm in turn, then route all rendering to the
// winner. Watch the selector move through the four candidates and settle.
//
//   ./algorithm_selection [scene] [detail]

#include <cstdio>
#include <string>

#include "core/kdtune.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;

  const std::string scene_id = argc > 1 ? argv[1] : "sibenik";
  const float detail = argc > 2 ? std::strtof(argv[2], nullptr) : 0.3f;

  const auto animated = make_scene(scene_id, detail);
  const Scene scene = animated->frame(0);
  ThreadPool pool(3);
  std::printf("scene %s: %zu triangles\n\n", scene_id.c_str(),
              scene.triangle_count());

  SelectorOptions opts;
  opts.width = 128;
  opts.height = 96;
  opts.frames_per_algorithm = 40;
  AlgorithmSelector selector(pool, opts);

  Algorithm last = selector.current();
  std::printf("evaluating %s...\n", std::string(to_string(last)).c_str());
  std::size_t frame = 0;
  while (!selector.selection_done()) {
    selector.render_frame(scene);
    ++frame;
    if (!selector.selection_done() && selector.current() != last) {
      last = selector.current();
      std::printf("evaluating %s... (frame %zu)\n",
                  std::string(to_string(last)).c_str(), frame);
    }
  }

  std::printf("\nstandings after %zu frames:\n", frame);
  TextTable table({"algorithm", "best frame [ms]", "tuned config"});
  for (const auto& [algorithm, time] : selector.standings()) {
    const BuildConfig best = selector.pipeline(algorithm).best_config();
    std::string config = "(CI=" + std::to_string(best.ci) +
                         ", CB=" + std::to_string(best.cb) +
                         ", S=" + std::to_string(best.s);
    if (algorithm == Algorithm::kLazy) {
      config += ", R=" + std::to_string(best.r);
    }
    config += ")";
    table.add_row({std::string(to_string(algorithm)), fmt(time * 1e3, 2),
                   config});
  }
  table.print();

  std::printf("\nselected: %s — subsequent frames render through it\n",
              std::string(to_string(selector.selected())).c_str());
  for (int i = 0; i < 5; ++i) {
    const FrameReport r = selector.render_frame(scene);
    std::printf("  frame: %.2f ms\n", r.total_seconds * 1e3);
  }
  return 0;
}
