// render_scene: renders any of the six evaluation scenes with any of the four
// algorithms, tuning online until convergence, then saves the image.
//
//   ./render_scene [scene] [algorithm] [detail] [output.ppm]
//   ./render_scene sibenik lazy 0.5 sibenik.ppm

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/kdtune.hpp"

int main(int argc, char** argv) {
  using namespace kdtune;

  const std::string scene_id = argc > 1 ? argv[1] : "sibenik";
  const std::string algo_name = argc > 2 ? argv[2] : "lazy";
  const float detail = argc > 3 ? std::strtof(argv[3], nullptr) : 0.4f;
  const std::string output =
      argc > 4 ? argv[4] : scene_id + "_" + algo_name + ".ppm";

  Algorithm algorithm;
  std::unique_ptr<AnimatedScene> scene;
  try {
    algorithm = algorithm_from_string(algo_name);
    scene = make_scene(scene_id, detail);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: render_scene [bunny|sponza|sibenik|toasters|"
                 "wood_doll|fairy_forest] [node-level|nested|in-place|lazy] "
                 "[detail] [out.ppm]\n");
    return 1;
  }

  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()) - 0);
  std::printf("scene %s (%zu frames, %zu triangles at frame 0), algorithm %s\n",
              scene_id.c_str(), scene->frame_count(),
              scene->frame(0).triangle_count(), algo_name.c_str());

  PipelineOptions opts;
  opts.width = 320;
  opts.height = 240;
  TunedPipeline pipeline(algorithm, pool, std::move(opts));

  Framebuffer fb(320, 240);
  const Scene frame0 = scene->frame(0);
  double first_time = 0.0;
  int frames = 0;
  for (; frames < 80; ++frames) {
    const std::size_t f =
        scene->frame_count() > 1 ? (frames / 5) % scene->frame_count() : 0;
    const Scene current = f == 0 ? frame0 : scene->frame(f);
    const FrameReport report = pipeline.render_frame(current, &fb);
    if (frames == 0) first_time = report.total_seconds;
    if (pipeline.tuner().converged()) break;
  }

  const BuildConfig best = pipeline.best_config();
  std::printf(
      "converged after %d frames: CI=%lld CB=%lld S=%lld R=%lld\n"
      "first frame %.2f ms, best frame %.2f ms\n",
      frames, static_cast<long long>(best.ci), static_cast<long long>(best.cb),
      static_cast<long long>(best.s), static_cast<long long>(best.r),
      first_time * 1e3, pipeline.tuner().best_time() * 1e3);

  fb.save_ppm(output);
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
