#pragma once

// Indexed triangle mesh. Scene generators build meshes (shared vertices keep
// memory + generation time down); the kd-tree layers consume flat triangle
// soups produced by `append_triangles`.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/transform.hpp"
#include "geom/triangle.hpp"
#include "geom/vec3.hpp"

namespace kdtune {

class Mesh {
 public:
  Mesh() = default;

  std::size_t vertex_count() const noexcept { return vertices_.size(); }
  std::size_t triangle_count() const noexcept { return indices_.size() / 3; }
  bool empty() const noexcept { return indices_.empty(); }

  std::span<const Vec3> vertices() const noexcept { return vertices_; }
  std::span<const std::uint32_t> indices() const noexcept { return indices_; }
  std::span<Vec3> mutable_vertices() noexcept { return vertices_; }

  /// Appends a vertex, returning its index.
  std::uint32_t add_vertex(const Vec3& v) {
    vertices_.push_back(v);
    return static_cast<std::uint32_t>(vertices_.size() - 1);
  }

  void add_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c);

  /// Appends a quad as two triangles (a,b,c) and (a,c,d).
  void add_quad(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d);

  Triangle triangle(std::size_t i) const noexcept {
    return {vertices_[indices_[3 * i]], vertices_[indices_[3 * i + 1]],
            vertices_[indices_[3 * i + 2]]};
  }

  AABB bounds() const noexcept;

  /// Appends all of `other`'s geometry, transformed by `xf`.
  void merge(const Mesh& other, const Transform& xf = {});

  /// Transforms all vertices in place.
  void transform(const Transform& xf);

  /// Flattens into a triangle soup (appends to `out`).
  void append_triangles(std::vector<Triangle>& out,
                        const Transform& xf = {}) const;

  /// Removes triangles with zero area (guards generators against numeric
  /// degeneracies at poles/seams). Returns the number removed.
  std::size_t remove_degenerate_triangles();

 private:
  std::vector<Vec3> vertices_;
  std::vector<std::uint32_t> indices_;  // triples
};

}  // namespace kdtune
