#pragma once

// Animated scenes. The paper's dynamic inputs (Toasters, Wood Doll, Fairy
// Forest) change geometry every frame, forcing a kd-tree rebuild per frame —
// which is exactly the situation online autotuning targets. An AnimatedScene
// yields one Scene per frame; static scenes are the single-frame special case.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "geom/transform.hpp"
#include "scene/mesh.hpp"
#include "scene/scene.hpp"

namespace kdtune {

class AnimatedScene {
 public:
  virtual ~AnimatedScene() = default;

  virtual const std::string& name() const noexcept = 0;
  virtual std::size_t frame_count() const noexcept = 0;
  virtual bool dynamic() const noexcept { return frame_count() > 1; }

  /// Builds frame `i` (0-based, must be < frame_count()). Returned scenes
  /// share triangle storage where the implementation can (Scene copies are
  /// copy-on-write): per-frame cost is geometry *generation*, never a copy of
  /// an existing soup. StaticScene and OrbitScene hand out the same shared
  /// soup every call; the dynamic generators produce fresh geometry per frame
  /// because the triangles genuinely differ.
  virtual Scene frame(std::size_t i) const = 0;
};

/// Adapts a fixed Scene to the AnimatedScene interface (frame_count == 1).
/// frame() shares the stored soup (O(1), no triangle copy).
class StaticScene final : public AnimatedScene {
 public:
  explicit StaticScene(Scene scene) : scene_(std::move(scene)) {}

  const std::string& name() const noexcept override { return scene_.name(); }
  std::size_t frame_count() const noexcept override { return 1; }
  Scene frame(std::size_t) const override { return scene_; }

 private:
  Scene scene_;
};

/// A rig of rigid parts: each part is a mesh with a per-frame transform.
/// frame(i) evaluates every part's pose at i and flattens the result. This is
/// the representation behind the Toasters and Wood Doll stand-ins.
class RigidRigScene final : public AnimatedScene {
 public:
  /// pose(frame) -> world transform of the part at that frame.
  using PoseFn = std::function<Transform(std::size_t)>;

  RigidRigScene(std::string name, std::size_t frames,
                CameraPreset camera, std::vector<PointLight> lights)
      : name_(std::move(name)), frames_(frames),
        camera_(camera), lights_(std::move(lights)) {}

  void add_part(Mesh mesh, PoseFn pose) {
    parts_.push_back({std::move(mesh), std::move(pose)});
  }

  /// A part that never moves.
  void add_static_part(Mesh mesh) {
    add_part(std::move(mesh), [](std::size_t) { return Transform{}; });
  }

  std::size_t part_count() const noexcept { return parts_.size(); }

  const std::string& name() const noexcept override { return name_; }
  std::size_t frame_count() const noexcept override { return frames_; }
  Scene frame(std::size_t i) const override;

 private:
  struct Part {
    Mesh mesh;
    PoseFn pose;
  };

  std::string name_;
  std::size_t frames_;
  CameraPreset camera_;
  std::vector<PointLight> lights_;
  std::vector<Part> parts_;
};

/// A static scene with a camera orbiting its geometry: every frame has the
/// same triangles but a different viewpoint (frame() shares the soup and only
/// the camera differs). The paper notes that "camera
/// positioning, system load and other environment effects all influence the
/// optimal configuration" even for static geometry — this wrapper produces
/// exactly that workload (rebuild-per-frame with identical input, shifting
/// ray distribution).
class OrbitScene final : public AnimatedScene {
 public:
  /// The camera circles the scene center at the preset's distance and
  /// height, completing one revolution over `frames` frames.
  OrbitScene(Scene scene, std::size_t frames);

  const std::string& name() const noexcept override { return name_; }
  std::size_t frame_count() const noexcept override { return frames_; }
  bool dynamic() const noexcept override { return false; }  // geometry static
  Scene frame(std::size_t i) const override;

 private:
  Scene scene_;
  std::string name_;
  std::size_t frames_;
};

/// Fully procedural per-frame scenes (used where per-vertex deformation is
/// needed rather than rigid parts).
class ProceduralAnimation final : public AnimatedScene {
 public:
  using FrameFn = std::function<Scene(std::size_t)>;

  ProceduralAnimation(std::string name, std::size_t frames, FrameFn fn)
      : name_(std::move(name)), frames_(frames), fn_(std::move(fn)) {}

  const std::string& name() const noexcept override { return name_; }
  std::size_t frame_count() const noexcept override { return frames_; }
  Scene frame(std::size_t i) const override { return fn_(i); }

 private:
  std::string name_;
  std::size_t frames_;
  FrameFn fn_;
};

}  // namespace kdtune
