#pragma once

// Parametric primitive meshes the procedural scene generators are assembled
// from. All primitives are centered/axis-conventional; placement is done via
// Transform at merge time.

#include <cstdint>

#include "scene/mesh.hpp"

namespace kdtune::primitives {

/// Axis-aligned box spanning [-sx/2, sx/2] x [-sy/2, sy/2] x [-sz/2, sz/2].
Mesh box(const Vec3& size);

/// XZ ground plane at y=0, `size` x `size`, tessellated `res` x `res` quads.
Mesh grid(float size, int res);

/// Y-axis cylinder, radius `r`, height `h` (base at y=0), `segments` sides.
/// `capped` adds top/bottom fans.
Mesh cylinder(float r, float h, int segments, bool capped = true);

/// Y-axis cone, base radius `r` at y=0, apex at y=h.
Mesh cone(float r, float h, int segments, bool capped = true);

/// Unit icosphere (radius 1, centered), `subdivisions` rounds of 4-way
/// subdivision. Triangle count = 20 * 4^subdivisions.
Mesh icosphere(int subdivisions);

/// Open half-pipe arch in the XY plane extruded along Z: inner radius `r`,
/// thickness `t`, depth `d`, `segments` angular steps over [0, pi]. Building
/// block for colonnades and vaults.
Mesh arch(float r, float t, float d, int segments);

/// UV sphere with explicit ring/segment counts (exact triangle-count control:
/// 2*segments*(rings-1) triangles).
Mesh uv_sphere(float radius, int rings, int segments);

}  // namespace kdtune::primitives
