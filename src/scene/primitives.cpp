#include "scene/primitives.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <numbers>
#include <utility>

namespace kdtune::primitives {

namespace {
constexpr float kPi = std::numbers::pi_v<float>;
}

Mesh box(const Vec3& size) {
  Mesh m;
  const Vec3 h = size * 0.5f;
  // 8 corners; bit i of the index selects hi/lo per axis.
  std::uint32_t idx[8];
  for (int c = 0; c < 8; ++c) {
    idx[c] = m.add_vertex({(c & 1) ? h.x : -h.x,
                           (c & 2) ? h.y : -h.y,
                           (c & 4) ? h.z : -h.z});
  }
  // Faces wound outward.
  m.add_quad(idx[0], idx[2], idx[3], idx[1]);  // -z
  m.add_quad(idx[4], idx[5], idx[7], idx[6]);  // +z
  m.add_quad(idx[0], idx[1], idx[5], idx[4]);  // -y
  m.add_quad(idx[2], idx[6], idx[7], idx[3]);  // +y
  m.add_quad(idx[0], idx[4], idx[6], idx[2]);  // -x
  m.add_quad(idx[1], idx[3], idx[7], idx[5]);  // +x
  return m;
}

Mesh grid(float size, int res) {
  Mesh m;
  const float half = size * 0.5f;
  const float step = size / static_cast<float>(res);
  for (int j = 0; j <= res; ++j) {
    for (int i = 0; i <= res; ++i) {
      m.add_vertex({-half + step * static_cast<float>(i), 0.0f,
                    -half + step * static_cast<float>(j)});
    }
  }
  const auto at = [res](int i, int j) {
    return static_cast<std::uint32_t>(j * (res + 1) + i);
  };
  for (int j = 0; j < res; ++j) {
    for (int i = 0; i < res; ++i) {
      m.add_quad(at(i, j), at(i, j + 1), at(i + 1, j + 1), at(i + 1, j));
    }
  }
  return m;
}

Mesh cylinder(float r, float h, int segments, bool capped) {
  Mesh m;
  std::vector<std::uint32_t> bottom(segments), top(segments);
  for (int i = 0; i < segments; ++i) {
    const float a = 2.0f * kPi * static_cast<float>(i) / static_cast<float>(segments);
    const float x = r * std::cos(a);
    const float z = r * std::sin(a);
    bottom[i] = m.add_vertex({x, 0.0f, z});
    top[i] = m.add_vertex({x, h, z});
  }
  for (int i = 0; i < segments; ++i) {
    const int n = (i + 1) % segments;
    m.add_quad(bottom[i], top[i], top[n], bottom[n]);
  }
  if (capped) {
    const std::uint32_t cb = m.add_vertex({0.0f, 0.0f, 0.0f});
    const std::uint32_t ct = m.add_vertex({0.0f, h, 0.0f});
    for (int i = 0; i < segments; ++i) {
      const int n = (i + 1) % segments;
      m.add_triangle(cb, bottom[i], bottom[n]);
      m.add_triangle(ct, top[n], top[i]);
    }
  }
  return m;
}

Mesh cone(float r, float h, int segments, bool capped) {
  Mesh m;
  std::vector<std::uint32_t> base(segments);
  for (int i = 0; i < segments; ++i) {
    const float a = 2.0f * kPi * static_cast<float>(i) / static_cast<float>(segments);
    base[i] = m.add_vertex({r * std::cos(a), 0.0f, r * std::sin(a)});
  }
  const std::uint32_t apex = m.add_vertex({0.0f, h, 0.0f});
  for (int i = 0; i < segments; ++i) {
    const int n = (i + 1) % segments;
    m.add_triangle(base[i], apex, base[n]);
  }
  if (capped) {
    const std::uint32_t cb = m.add_vertex({0.0f, 0.0f, 0.0f});
    for (int i = 0; i < segments; ++i) {
      const int n = (i + 1) % segments;
      m.add_triangle(cb, base[i], base[n]);
    }
  }
  return m;
}

Mesh icosphere(int subdivisions) {
  Mesh m;
  // Icosahedron from three orthogonal golden rectangles.
  const float phi = (1.0f + std::sqrt(5.0f)) * 0.5f;
  const Vec3 base[12] = {
      {-1, phi, 0}, {1, phi, 0},   {-1, -phi, 0}, {1, -phi, 0},
      {0, -1, phi}, {0, 1, phi},   {0, -1, -phi}, {0, 1, -phi},
      {phi, 0, -1}, {phi, 0, 1},   {-phi, 0, -1}, {-phi, 0, 1}};
  for (const Vec3& v : base) m.add_vertex(normalized(v));
  const int faces[20][3] = {
      {0, 11, 5}, {0, 5, 1},  {0, 1, 7},   {0, 7, 10}, {0, 10, 11},
      {1, 5, 9},  {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
      {3, 9, 4},  {3, 4, 2},  {3, 2, 6},   {3, 6, 8},  {3, 8, 9},
      {4, 9, 5},  {2, 4, 11}, {6, 2, 10},  {8, 6, 7},  {9, 8, 1}};

  std::vector<std::array<std::uint32_t, 3>> tris;
  tris.reserve(20);
  for (const auto& f : faces) {
    tris.push_back({static_cast<std::uint32_t>(f[0]),
                    static_cast<std::uint32_t>(f[1]),
                    static_cast<std::uint32_t>(f[2])});
  }

  for (int s = 0; s < subdivisions; ++s) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> midpoint;
    const auto mid = [&](std::uint32_t a, std::uint32_t b) {
      const std::pair<std::uint32_t, std::uint32_t> key{std::min(a, b),
                                                        std::max(a, b)};
      if (const auto it = midpoint.find(key); it != midpoint.end()) return it->second;
      const Vec3 p = normalized((m.vertices()[a] + m.vertices()[b]) * 0.5f);
      const std::uint32_t idx = m.add_vertex(p);
      midpoint.emplace(key, idx);
      return idx;
    };
    std::vector<std::array<std::uint32_t, 3>> next;
    next.reserve(tris.size() * 4);
    for (const auto& t : tris) {
      const std::uint32_t ab = mid(t[0], t[1]);
      const std::uint32_t bc = mid(t[1], t[2]);
      const std::uint32_t ca = mid(t[2], t[0]);
      next.push_back({t[0], ab, ca});
      next.push_back({t[1], bc, ab});
      next.push_back({t[2], ca, bc});
      next.push_back({ab, bc, ca});
    }
    tris = std::move(next);
  }

  for (const auto& t : tris) m.add_triangle(t[0], t[1], t[2]);
  return m;
}

Mesh arch(float r, float t, float d, int segments) {
  Mesh m;
  const float r_out = r + t;
  // Rings of 4 vertices (inner/outer x front/back) along the half circle.
  std::vector<std::array<std::uint32_t, 4>> rings(segments + 1);
  for (int i = 0; i <= segments; ++i) {
    const float a = kPi * static_cast<float>(i) / static_cast<float>(segments);
    const float c = std::cos(a);
    const float s = std::sin(a);
    rings[i] = {m.add_vertex({r * c, r * s, 0.0f}),
                m.add_vertex({r_out * c, r_out * s, 0.0f}),
                m.add_vertex({r * c, r * s, d}),
                m.add_vertex({r_out * c, r_out * s, d})};
  }
  for (int i = 0; i < segments; ++i) {
    const auto& p = rings[i];
    const auto& q = rings[i + 1];
    m.add_quad(p[0], q[0], q[2], p[2]);  // inner surface
    m.add_quad(p[1], p[3], q[3], q[1]);  // outer surface
    m.add_quad(p[0], p[1], q[1], q[0]);  // front face
    m.add_quad(p[2], q[2], q[3], p[3]);  // back face
  }
  return m;
}

Mesh uv_sphere(float radius, int rings, int segments) {
  Mesh m;
  const std::uint32_t south = m.add_vertex({0.0f, -radius, 0.0f});
  std::vector<std::vector<std::uint32_t>> ring_idx;
  for (int j = 1; j < rings; ++j) {
    const float theta = kPi * static_cast<float>(j) / static_cast<float>(rings);
    std::vector<std::uint32_t> row(segments);
    for (int i = 0; i < segments; ++i) {
      const float phi = 2.0f * kPi * static_cast<float>(i) / static_cast<float>(segments);
      row[i] = m.add_vertex({radius * std::sin(theta) * std::cos(phi),
                             -radius * std::cos(theta),
                             radius * std::sin(theta) * std::sin(phi)});
    }
    ring_idx.push_back(std::move(row));
  }
  const std::uint32_t north = m.add_vertex({0.0f, radius, 0.0f});

  for (int i = 0; i < segments; ++i) {
    const int n = (i + 1) % segments;
    m.add_triangle(south, ring_idx.front()[n], ring_idx.front()[i]);
    m.add_triangle(north, ring_idx.back()[i], ring_idx.back()[n]);
  }
  for (std::size_t j = 0; j + 1 < ring_idx.size(); ++j) {
    for (int i = 0; i < segments; ++i) {
      const int n = (i + 1) % segments;
      m.add_quad(ring_idx[j][i], ring_idx[j][n], ring_idx[j + 1][n],
                 ring_idx[j + 1][i]);
    }
  }
  return m;
}

}  // namespace kdtune::primitives
