#pragma once

// Procedural stand-ins for the paper's six evaluation scenes. See DESIGN.md §2
// (substitution #1): the original model files are not redistributable, so each
// generator reproduces the scene's triangle count and spatial character — the
// two properties that drive SAH kd-tree construction and traversal behaviour.
//
// Every generator takes a `detail` scale in (0, 1]: at 1.0 it matches the
// paper's triangle count (exactly, via frieze padding); smaller values shrink
// tessellation proportionally so tests run fast.

#include <memory>
#include <string>
#include <vector>

#include "scene/animation.hpp"
#include "scene/scene.hpp"

namespace kdtune {

/// Bunny stand-in: displaced sphere, 69,666 triangles at detail=1. Static.
Scene make_bunny(float detail = 1.0f);

/// Sponza stand-in: open atrium with colonnades, 66,450 triangles. Static.
Scene make_sponza(float detail = 1.0f);

/// Sibenik stand-in: enclosed cathedral interior, 75,284 triangles. Static.
Scene make_sibenik(float detail = 1.0f);

/// Toasters stand-in: articulated appliances, 11,141 triangles, 246 frames.
std::unique_ptr<AnimatedScene> make_toasters(float detail = 1.0f);

/// Wood Doll stand-in: articulated humanoid, 6,658 triangles, 29 frames.
std::unique_ptr<AnimatedScene> make_wood_doll(float detail = 1.0f);

/// Fairy Forest stand-in: forest with a close-up figure (heavy occlusion),
/// 174,117 triangles, 21 frames.
std::unique_ptr<AnimatedScene> make_fairy_forest(float detail = 1.0f);

/// Registry -------------------------------------------------------------

/// The six scene ids in the paper's order:
/// bunny, sponza, sibenik, toasters, wood_doll, fairy_forest.
std::vector<std::string> scene_ids();
std::vector<std::string> static_scene_ids();
std::vector<std::string> dynamic_scene_ids();

/// Builds a scene by id; throws std::invalid_argument for unknown ids.
std::unique_ptr<AnimatedScene> make_scene(const std::string& id,
                                          float detail = 1.0f);

namespace detail_helpers {

/// A zig-zag wall strip with *exactly* `n` triangles spanning `length` along
/// +X at height `y0..y0+height`, depth position z. Generators use this to pad
/// composite scenes to the paper's exact triangle counts with plausible
/// geometry (a decorative frieze) instead of degenerate filler.
Mesh frieze(float length, float y0, float height, float z, std::size_t n);

/// Scales a tessellation parameter by `detail`, with a floor of `min_value`.
int scaled(int base, float detail, int min_value = 1);

}  // namespace detail_helpers

}  // namespace kdtune
