#include "scene/mesh.hpp"

#include <stdexcept>

namespace kdtune {

void Mesh::add_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  const auto n = static_cast<std::uint32_t>(vertices_.size());
  if (a >= n || b >= n || c >= n) {
    throw std::out_of_range("Mesh::add_triangle: vertex index out of range");
  }
  indices_.push_back(a);
  indices_.push_back(b);
  indices_.push_back(c);
}

void Mesh::add_quad(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    std::uint32_t d) {
  add_triangle(a, b, c);
  add_triangle(a, c, d);
}

AABB Mesh::bounds() const noexcept {
  AABB box;
  for (const Vec3& v : vertices_) box.expand(v);
  return box;
}

void Mesh::merge(const Mesh& other, const Transform& xf) {
  const auto base = static_cast<std::uint32_t>(vertices_.size());
  vertices_.reserve(vertices_.size() + other.vertices_.size());
  for (const Vec3& v : other.vertices_) vertices_.push_back(xf.apply_point(v));
  indices_.reserve(indices_.size() + other.indices_.size());
  for (std::uint32_t i : other.indices_) indices_.push_back(base + i);
}

void Mesh::transform(const Transform& xf) {
  for (Vec3& v : vertices_) v = xf.apply_point(v);
}

void Mesh::append_triangles(std::vector<Triangle>& out, const Transform& xf) const {
  out.reserve(out.size() + triangle_count());
  for (std::size_t i = 0; i < triangle_count(); ++i) {
    Triangle t = triangle(i);
    out.push_back({xf.apply_point(t.a), xf.apply_point(t.b), xf.apply_point(t.c)});
  }
}

std::size_t Mesh::remove_degenerate_triangles() {
  std::vector<std::uint32_t> kept;
  kept.reserve(indices_.size());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < triangle_count(); ++i) {
    if (triangle(i).degenerate()) {
      ++removed;
      continue;
    }
    kept.push_back(indices_[3 * i]);
    kept.push_back(indices_[3 * i + 1]);
    kept.push_back(indices_[3 * i + 2]);
  }
  indices_ = std::move(kept);
  return removed;
}

}  // namespace kdtune
