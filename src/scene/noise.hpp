#pragma once

// Deterministic gradient-free value noise + fractional Brownian motion.
// Used to displace the Bunny stand-in and to vary tree/terrain shapes in the
// Fairy-Forest stand-in. Hash-based, so no tables to seed and identical
// results on every platform.

#include <cstdint>

#include "geom/vec3.hpp"

namespace kdtune {

class ValueNoise {
 public:
  explicit ValueNoise(std::uint32_t seed = 1337u) : seed_(seed) {}

  /// Smooth noise in [-1, 1] at a 3D position.
  float sample(const Vec3& p) const noexcept;

  /// `octaves` octaves of self-similar noise, lacunarity 2, gain 0.5;
  /// output approximately in [-1, 1].
  float fbm(const Vec3& p, int octaves) const noexcept;

 private:
  float lattice(std::int32_t x, std::int32_t y, std::int32_t z) const noexcept;

  std::uint32_t seed_;
};

}  // namespace kdtune
