// Sibenik stand-in: an enclosed cathedral interior — nave with a barrel-vault
// ceiling made of ribbed arches, two rows of pillars, closed walls and an apse
// half-dome. Enclosure matters: rays terminate inside the model, the property
// that makes lazy construction shine on this scene in the paper (1.96x).
// 75,284 triangles at detail=1 (frieze-padded exact).

#include <cmath>
#include <numbers>

#include "scene/generators.hpp"
#include "scene/primitives.hpp"

namespace kdtune {

namespace {

constexpr std::size_t kSibenikTriangles = 75284;
constexpr float kPi = std::numbers::pi_v<float>;

std::size_t padded_target(std::size_t paper_count, float detail) {
  if (detail >= 1.0f) return paper_count;
  const double t = static_cast<double>(paper_count) * detail * detail;
  return static_cast<std::size_t>(std::lround(t));
}

}  // namespace

Scene make_sibenik(float detail) {
  using detail_helpers::frieze;
  using detail_helpers::scaled;
  namespace prim = kdtune::primitives;

  Scene scene("sibenik");
  auto& tris = scene.mutable_triangles();

  const float nave_x = 30.0f;   // length
  const float nave_z = 10.0f;   // width
  const float wall_h = 8.0f;    // height of the straight wall section
  const Transform upright = Transform::rotate({1, 0, 0}, kPi / 2.0f);

  // Floor.
  {
    Mesh floor = prim::grid(1.0f, scaled(100, detail, 4));
    floor.append_triangles(tris,
                           Transform::scale({nave_x, 1.0f, nave_z + 2.0f}));
  }

  // Side walls and end walls: the interior is fully enclosed.
  {
    const int wall_res = scaled(60, detail, 4);
    Mesh wall = prim::grid(1.0f, wall_res);
    for (int side = 0; side < 2; ++side) {
      const float z = (side == 0 ? -1.0f : 1.0f) * (nave_z * 0.5f + 1.0f);
      wall.append_triangles(
          tris, Transform::translate({0.0f, wall_h * 0.5f, z}) *
                    Transform::scale({nave_x, wall_h, 1.0f}) * upright);
    }
    for (int side = 0; side < 2; ++side) {
      const float x = (side == 0 ? -1.0f : 1.0f) * nave_x * 0.5f;
      wall.append_triangles(
          tris, Transform::translate({x, wall_h * 0.5f, 0.0f}) *
                    Transform::rotate({0, 1, 0}, kPi / 2.0f) *
                    Transform::scale({nave_z + 2.0f, wall_h, 1.0f}) * upright);
    }
  }

  // Barrel vault: ribbed arches spanning the nave width, packed along its
  // length so the ribs form a (faceted) ceiling.
  {
    const int ribs = scaled(30, detail, 3);
    const int arch_seg = scaled(48, detail, 5);
    const float rib_depth = nave_x / static_cast<float>(ribs);
    Mesh rib = prim::arch(nave_z * 0.5f, 0.4f, rib_depth, arch_seg);
    const Transform orient = Transform::rotate({0, 1, 0}, kPi / 2.0f);
    for (int r = 0; r < ribs; ++r) {
      const float x = -nave_x * 0.5f + rib_depth * static_cast<float>(r);
      rib.append_triangles(tris,
                           Transform::translate({x, wall_h, 0.0f}) * orient);
    }
  }

  // Two rows of pillars down the nave.
  {
    const int pillar_seg = scaled(40, detail, 5);
    const int pillars_per_row = 8;
    const float spacing = nave_x / static_cast<float>(pillars_per_row + 1);
    Mesh pillar = prim::cylinder(0.5f, wall_h, pillar_seg, true);
    Mesh base = prim::box({1.4f, 0.5f, 1.4f});
    for (int row = 0; row < 2; ++row) {
      const float z = (row == 0 ? -1.0f : 1.0f) * nave_z * 0.3f;
      for (int p = 1; p <= pillars_per_row; ++p) {
        const float x = -nave_x * 0.5f + spacing * static_cast<float>(p);
        pillar.append_triangles(tris, Transform::translate({x, 0.0f, z}));
        base.append_triangles(tris, Transform::translate({x, 0.25f, z}));
      }
    }
  }

  // Apse: half dome closing off the far (+x) end.
  {
    const int dome_rings = scaled(18, detail, 4);
    const int dome_seg = scaled(28, detail, 5);
    Mesh dome = prim::uv_sphere(nave_z * 0.45f, dome_rings, dome_seg);
    dome.append_triangles(
        tris, Transform::translate({nave_x * 0.5f, wall_h * 0.75f, 0.0f}));
  }

  // Frieze padding to the target triangle count (exact at detail = 1);
  // placed as a decorative band along a side wall, like the cathedral's
  // ornamental stonework.
  const std::size_t want = padded_target(kSibenikTriangles, detail);
  if (tris.size() < want) {
    Mesh band = frieze(nave_x - 2.0f, wall_h - 1.6f, 1.1f,
                       -(nave_z * 0.5f + 0.95f), want - tris.size());
    band.append_triangles(
        tris, Transform::translate({-(nave_x - 2.0f) * 0.5f, 0.0f, 0.0f}));
  }

  scene.set_camera({{-nave_x * 0.42f, 3.0f, 1.5f},
                    {nave_x * 0.45f, 4.5f, 0.0f},
                    {0, 1, 0},
                    62.0f});
  scene.add_light({{0.0f, wall_h + 3.0f, 0.0f}, {1.0f, 0.95f, 0.85f}});
  scene.add_light({{-10.0f, 4.0f, 2.0f}, {0.3f, 0.3f, 0.38f}});
  return scene;
}

}  // namespace kdtune
