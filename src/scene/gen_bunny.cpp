// Bunny stand-in: a smooth closed blob with uniformly small triangles, the
// geometric character of the Stanford Bunny that matters to an SAH builder.
// At detail=1 the mesh is a uv-sphere with 52 rings x 683 segments displaced
// by fBm noise: 2 * 683 * (52 - 1) = 69,666 triangles, the paper's count
// exactly.

#include <cmath>

#include "scene/generators.hpp"
#include "scene/noise.hpp"
#include "scene/primitives.hpp"

namespace kdtune {

Scene make_bunny(float detail) {
  using detail_helpers::scaled;
  const int rings = scaled(52, detail, 6);
  const int segments = scaled(683, detail, 12);

  Mesh blob = primitives::uv_sphere(1.0f, rings, segments);

  // Organic displacement: fBm radial offset plus a vertical squash makes the
  // blob bunny-like (rounded back, flattened base) rather than spherical.
  const ValueNoise noise(20160516u);
  for (Vec3& v : blob.mutable_vertices()) {
    const Vec3 dir = normalized(v);
    const float bump = noise.fbm(dir * 2.5f, 5);
    const float ear = std::max(0.0f, dir.y - 0.55f) * noise.fbm(dir * 6.0f, 3);
    const float r = 1.0f + 0.22f * bump + 0.9f * ear;
    v = dir * r;
    v.y *= 0.85f;  // squash
  }
  blob.remove_degenerate_triangles();

  Scene scene("bunny");
  blob.append_triangles(scene.mutable_triangles(),
                        Transform::translate({0.0f, 1.0f, 0.0f}));

  scene.set_camera({{0.0f, 1.6f, 3.4f}, {0.0f, 0.9f, 0.0f}, {0, 1, 0}, 50.0f});
  scene.add_light({{4.0f, 6.0f, 4.0f}, {1.0f, 1.0f, 1.0f}});
  scene.add_light({{-3.0f, 4.0f, -2.0f}, {0.4f, 0.4f, 0.5f}});
  return scene;
}

}  // namespace kdtune
