#include "scene/obj_loader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace kdtune {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("OBJ parse error at line " + std::to_string(line) +
                           ": " + what);
}

// "3", "3/1", "3//2", "3/1/2", "-1" -> vertex index (1-based or negative).
long parse_face_index(const std::string& token, std::size_t line) {
  const std::size_t slash = token.find('/');
  const std::string head = slash == std::string::npos ? token : token.substr(0, slash);
  try {
    std::size_t pos = 0;
    const long v = std::stol(head, &pos);
    if (pos != head.size() || v == 0) fail(line, "bad face index '" + token + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line, "bad face index '" + token + "'");
  }
}

}  // namespace

Mesh load_obj(std::istream& in) {
  Mesh mesh;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blank lines.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;

    if (tag == "v") {
      float x, y, z;
      if (!(ls >> x >> y >> z)) fail(line_no, "vertex needs 3 coordinates");
      mesh.add_vertex({x, y, z});
    } else if (tag == "f") {
      std::vector<std::uint32_t> face;
      std::string token;
      while (ls >> token) {
        long v = parse_face_index(token, line_no);
        const long n = static_cast<long>(mesh.vertex_count());
        if (v < 0) v = n + v + 1;  // relative indexing
        if (v < 1 || v > n) fail(line_no, "face index out of range");
        face.push_back(static_cast<std::uint32_t>(v - 1));
      }
      if (face.size() < 3) fail(line_no, "face needs at least 3 vertices");
      for (std::size_t i = 1; i + 1 < face.size(); ++i) {
        mesh.add_triangle(face[0], face[i], face[i + 1]);
      }
    }
    // All other tags (vn, vt, g, o, s, usemtl, mtllib, ...) are ignored.
  }
  return mesh;
}

Mesh load_obj_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open OBJ file: " + path);
  return load_obj(in);
}

void save_obj(std::ostream& out, const Mesh& mesh) {
  for (const Vec3& v : mesh.vertices()) {
    out << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  const auto idx = mesh.indices();
  for (std::size_t i = 0; i + 2 < idx.size(); i += 3) {
    out << "f " << idx[i] + 1 << ' ' << idx[i + 1] + 1 << ' ' << idx[i + 2] + 1
        << '\n';
  }
}

void save_obj_file(const std::string& path, const Mesh& mesh) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open OBJ file for writing: " + path);
  save_obj(out, mesh);
}

}  // namespace kdtune
