#pragma once

// A renderable scene: a flat triangle soup plus the lights and the camera
// preset the ray caster uses. The kd-tree builders consume only the triangle
// span; the rest exists so the evaluation harness can render each scene the
// way the paper's figures describe (e.g. the Fairy-Forest close-up camera).
//
// Triangle storage is *shared* between copies (copy-on-write): copying a
// Scene is O(1) in the triangle count, and the copy references the same
// immutable soup until one side calls mutable_triangles(). This is what makes
// per-frame scene handoff cheap across the animation / registry / pipeline
// layers — StaticScene::frame() and OrbitScene::frame() return by value yet
// share one soup, and SceneRegistry can keep a frame's geometry without
// duplicating it. Caveat: the reference returned by mutable_triangles() is
// tied to the current storage generation — copying the Scene and then writing
// through a previously obtained reference would mutate the shared soup, so
// finish mutating before handing copies out (every generator does).

#include <memory>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/intersect.hpp"
#include "geom/triangle.hpp"
#include "geom/vec3.hpp"

namespace kdtune {

struct PointLight {
  Vec3 position;
  Vec3 intensity{1.0f, 1.0f, 1.0f};
};

/// Where the camera should sit for this scene (consumed by render::Camera).
struct CameraPreset {
  Vec3 eye{0.0f, 1.0f, 5.0f};
  Vec3 look_at{0.0f, 0.0f, 0.0f};
  Vec3 up{0.0f, 1.0f, 0.0f};
  float vertical_fov_deg = 55.0f;
};

class Scene {
 public:
  Scene() = default;
  explicit Scene(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::span<const Triangle> triangles() const noexcept {
    return triangles_ ? std::span<const Triangle>(*triangles_)
                      : std::span<const Triangle>();
  }

  /// Write access to the soup. Copy-on-write: if other Scene copies share the
  /// storage it is cloned first, so mutation never affects them.
  std::vector<Triangle>& mutable_triangles();

  std::size_t triangle_count() const noexcept {
    return triangles_ ? triangles_->size() : 0;
  }

  /// True when this scene references the same triangle storage as `other`
  /// (i.e. copying between them was free). Exposed for the frame-sharing
  /// regression tests.
  bool shares_triangles(const Scene& other) const noexcept {
    return triangles_ != nullptr && triangles_ == other.triangles_;
  }

  std::span<const PointLight> lights() const noexcept { return lights_; }
  void add_light(const PointLight& l) { lights_.push_back(l); }

  const CameraPreset& camera() const noexcept { return camera_; }
  void set_camera(const CameraPreset& c) { camera_ = c; }

  AABB bounds() const noexcept { return bounds_of(triangles()); }

 private:
  std::string name_;
  std::shared_ptr<std::vector<Triangle>> triangles_;
  std::vector<PointLight> lights_;
  CameraPreset camera_;
};

}  // namespace kdtune
