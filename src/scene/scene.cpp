#include "scene/scene.hpp"

// Scene is currently header-only logic; this TU anchors the library target
// and is the future home of scene (de)serialization.
