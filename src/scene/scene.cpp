#include "scene/scene.hpp"

namespace kdtune {

std::vector<Triangle>& Scene::mutable_triangles() {
  if (!triangles_) {
    triangles_ = std::make_shared<std::vector<Triangle>>();
  } else if (triangles_.use_count() > 1) {
    // Copy-on-write clone. The use_count() check is sound because concurrent
    // access to *this* Scene object is the caller's race, not ours: a count
    // of 1 cannot grow behind our back without someone copying this very
    // object concurrently.
    triangles_ = std::make_shared<std::vector<Triangle>>(*triangles_);
  }
  return *triangles_;
}

}  // namespace kdtune
