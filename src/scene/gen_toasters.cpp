// Toasters stand-in: four articulated chrome toasters on a kitchen counter.
// Per frame, toast slices pop up and down and the levers move in opposition —
// rigid-part animation matching the Utah "Toasters" sequence's character:
// small scene, localized motion, full rebuild required every frame.
// 11,141 triangles, 246 frames at detail=1.

#include <cmath>
#include <numbers>

#include "scene/generators.hpp"
#include "scene/primitives.hpp"

namespace kdtune {

namespace {

constexpr std::size_t kToastersTriangles = 11141;
constexpr std::size_t kToastersFrames = 246;
constexpr float kPi = std::numbers::pi_v<float>;

std::size_t padded_target(std::size_t paper_count, float detail) {
  if (detail >= 1.0f) return paper_count;
  const double t = static_cast<double>(paper_count) * detail * detail;
  return static_cast<std::size_t>(std::lround(t));
}

}  // namespace

std::unique_ptr<AnimatedScene> make_toasters(float detail) {
  using detail_helpers::frieze;
  using detail_helpers::scaled;
  namespace prim = kdtune::primitives;

  CameraPreset camera{{0.0f, 2.6f, 6.5f}, {0.0f, 0.8f, 0.0f}, {0, 1, 0}, 48.0f};
  std::vector<PointLight> lights{{{3.0f, 6.0f, 5.0f}, {1.0f, 1.0f, 1.0f}},
                                 {{-4.0f, 3.0f, 2.0f}, {0.3f, 0.3f, 0.35f}}};
  auto rig = std::make_unique<RigidRigScene>("toasters", kToastersFrames,
                                             camera, lights);

  // Counter top.
  {
    Mesh counter = prim::grid(1.0f, scaled(30, detail, 3));
    counter.transform(Transform::scale({10.0f, 1.0f, 6.0f}));
    rig->add_static_part(std::move(counter));
  }

  // Toaster pieces (shared shapes, instanced per toaster).
  const int shell_seg = scaled(20, detail, 5);
  const int knob_rings = scaled(7, detail, 3);
  const int knob_seg = scaled(10, detail, 4);
  const Mesh body = prim::box({1.2f, 0.7f, 0.8f});
  const Mesh shell = prim::cylinder(0.4f, 1.2f, shell_seg, true);
  const Mesh slot = prim::box({0.9f, 0.06f, 0.16f});
  const Mesh lever = prim::box({0.08f, 0.3f, 0.1f});
  const Mesh knob = prim::uv_sphere(0.09f, knob_rings, knob_seg);
  const Mesh toast = prim::box({0.75f, 0.5f, 0.08f});

  const float frames_f = static_cast<float>(kToastersFrames);
  for (int t = 0; t < 4; ++t) {
    // Two rows of two toasters, each with its own pop phase.
    const float bx = (t % 2 == 0 ? -1.4f : 1.4f);
    const float bz = (t / 2 == 0 ? -1.0f : 1.0f);
    const float phase = static_cast<float>(t) * 0.25f;
    const Transform at = Transform::translate({bx, 0.75f, bz});

    // Body and rounded shell (the shell lies on its side along X).
    Mesh body_i = body;
    body_i.transform(at);
    rig->add_static_part(std::move(body_i));
    Mesh shell_i = shell;
    shell_i.transform(at * Transform::translate({-0.6f, 0.35f, 0.0f}) *
                      Transform::rotate({0, 0, 1}, -kPi / 2.0f));
    rig->add_static_part(std::move(shell_i));

    // Slots on top.
    for (int s = 0; s < 2; ++s) {
      Mesh slot_i = slot;
      slot_i.transform(at * Transform::translate(
                                {0.0f, 0.36f, (s == 0 ? -0.18f : 0.18f)}));
      rig->add_static_part(std::move(slot_i));
    }

    // The pop cycle: toast rises, hangs, drops; lever mirrors it downward.
    const auto pop = [phase, frames_f](std::size_t frame) {
      const float u = std::fmod(
          static_cast<float>(frame) / frames_f + phase, 1.0f);
      // Smooth pulse: up during the middle third of the cycle.
      const float s = std::sin(u * 2.0f * kPi);
      return std::max(0.0f, s) * 0.55f;
    };

    for (int s = 0; s < 2; ++s) {
      const float z_off = (s == 0 ? -0.18f : 0.18f);
      rig->add_part(toast, [at, z_off, pop](std::size_t frame) {
        return at * Transform::translate({0.0f, 0.2f + pop(frame), z_off});
      });
    }

    Mesh lever_knob = lever;
    lever_knob.merge(knob, Transform::translate({0.0f, -0.15f, 0.0f}));
    rig->add_part(lever_knob, [at, pop](std::size_t frame) {
      return at *
             Transform::translate({0.68f, 0.25f - 0.35f * pop(frame), 0.0f});
    });
  }

  // Backsplash frieze pads the static geometry to the paper's exact count.
  {
    // Count what the rig produces for frame 0 and pad the difference.
    const std::size_t current = rig->frame(0).triangle_count();
    const std::size_t want = padded_target(kToastersTriangles, detail);
    if (current < want) {
      Mesh band = frieze(9.0f, 1.2f, 0.8f, -2.9f, want - current);
      band.transform(Transform::translate({-4.5f, 0.0f, 0.0f}));
      rig->add_static_part(std::move(band));
    }
  }

  return rig;
}

}  // namespace kdtune
