// Sponza stand-in: an open rectangular atrium with two stories of colonnades,
// arches between the columns, tall surrounding walls and a tessellated floor —
// the mix of large occluders and dense thin columns that characterizes the
// Dabrovic Sponza model. 66,450 triangles at detail=1 (frieze-padded exact).

#include <cmath>
#include <numbers>

#include "scene/generators.hpp"
#include "scene/primitives.hpp"

namespace kdtune {

namespace {

constexpr std::size_t kSponzaTriangles = 66450;
constexpr float kPi = std::numbers::pi_v<float>;

// Target count for a given detail level: exact paper count at detail >= 1,
// otherwise scaled by detail^2 (tessellation is two-dimensional).
std::size_t padded_target(std::size_t paper_count, float detail) {
  if (detail >= 1.0f) return paper_count;
  const double t = static_cast<double>(paper_count) * detail * detail;
  return static_cast<std::size_t>(std::lround(t));
}

}  // namespace

Scene make_sponza(float detail) {
  using detail_helpers::frieze;
  using detail_helpers::scaled;
  namespace prim = kdtune::primitives;

  Scene scene("sponza");
  auto& tris = scene.mutable_triangles();

  const float atrium_x = 24.0f;  // length
  const float atrium_z = 12.0f;  // width
  const float story_h = 4.0f;
  const float wall_h = 2.5f * story_h;

  // Floor.
  {
    Mesh floor = prim::grid(1.0f, scaled(90, detail, 4));
    floor.append_triangles(
        tris, Transform::scale({atrium_x + 6.0f, 1.0f, atrium_z + 6.0f}));
  }

  // Surrounding walls: vertical grids on all four sides, two stories tall.
  {
    const int wall_res = scaled(56, detail, 4);
    Mesh wall = prim::grid(1.0f, wall_res);  // XZ unit grid, rotated upright
    const Transform upright = Transform::rotate({1, 0, 0}, kPi / 2.0f);
    // Long walls (facing +-z).
    for (int side = 0; side < 2; ++side) {
      const float z = (side == 0 ? -1.0f : 1.0f) * (atrium_z * 0.5f + 2.5f);
      wall.append_triangles(
          tris, Transform::translate({0.0f, wall_h * 0.5f, z}) *
                    Transform::scale({atrium_x + 6.0f, wall_h, 1.0f}) * upright);
    }
    // Short walls (facing +-x).
    for (int side = 0; side < 2; ++side) {
      const float x = (side == 0 ? -1.0f : 1.0f) * (atrium_x * 0.5f + 2.5f);
      wall.append_triangles(
          tris, Transform::translate({x, wall_h * 0.5f, 0.0f}) *
                    Transform::rotate({0, 1, 0}, kPi / 2.0f) *
                    Transform::scale({atrium_z + 5.0f, wall_h, 1.0f}) * upright);
    }
  }

  // Two rows x two stories of columns with capital spheres and arches.
  {
    const int col_seg = scaled(24, detail, 5);
    const int cap_rings = scaled(10, detail, 3);
    const int cap_seg = scaled(16, detail, 4);
    const int arch_seg = scaled(16, detail, 3);
    const int columns_per_row = 10;
    const float spacing = atrium_x / static_cast<float>(columns_per_row - 1);

    Mesh column = prim::cylinder(0.35f, story_h - 0.6f, col_seg, true);
    Mesh capital = prim::uv_sphere(0.45f, cap_rings, cap_seg);
    Mesh arch_m = prim::arch(spacing * 0.5f - 0.35f, 0.3f, 0.7f, arch_seg);

    for (int story = 0; story < 2; ++story) {
      const float y0 = static_cast<float>(story) * story_h;
      for (int row = 0; row < 2; ++row) {
        const float z = (row == 0 ? -1.0f : 1.0f) * atrium_z * 0.5f;
        for (int c = 0; c < columns_per_row; ++c) {
          const float x = -atrium_x * 0.5f + spacing * static_cast<float>(c);
          column.append_triangles(tris, Transform::translate({x, y0, z}));
          capital.append_triangles(
              tris, Transform::translate({x, y0 + story_h - 0.4f, z}));
          if (c + 1 < columns_per_row) {
            arch_m.append_triangles(
                tris, Transform::translate(
                          {x + spacing * 0.5f, y0 + story_h - 0.6f, z - 0.35f}));
          }
        }
      }
    }
  }

  // Frieze padding to the target triangle count (exact at detail = 1).
  const std::size_t want = padded_target(kSponzaTriangles, detail);
  if (tris.size() < want) {
    Mesh band = frieze(atrium_x + 4.0f, wall_h - 1.4f, 1.2f,
                       -(atrium_z * 0.5f + 2.45f), want - tris.size());
    band.append_triangles(
        tris, Transform::translate({-(atrium_x + 4.0f) * 0.5f, 0.0f, 0.0f}));
  }

  scene.set_camera({{-atrium_x * 0.45f, 3.0f, 0.0f},
                    {atrium_x * 0.4f, 3.5f, 0.0f},
                    {0, 1, 0},
                    60.0f});
  scene.add_light({{0.0f, 14.0f, 0.0f}, {1.0f, 1.0f, 0.95f}});
  scene.add_light({{-8.0f, 5.0f, 3.0f}, {0.35f, 0.35f, 0.4f}});
  return scene;
}

}  // namespace kdtune
