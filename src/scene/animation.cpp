#include "scene/animation.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace kdtune {

OrbitScene::OrbitScene(Scene scene, std::size_t frames)
    : scene_(std::move(scene)),
      name_(scene_.name() + "_orbit"),
      frames_(frames == 0 ? 1 : frames) {}

Scene OrbitScene::frame(std::size_t i) const {
  if (i >= frames_) {
    throw std::out_of_range("OrbitScene::frame: index out of range");
  }
  Scene out = scene_;
  const CameraPreset& base = scene_.camera();
  const Vec3 offset = base.eye - base.look_at;
  const float angle = 2.0f * std::numbers::pi_v<float> *
                      static_cast<float>(i) / static_cast<float>(frames_);
  const Transform rot = Transform::rotate(base.up, angle);
  CameraPreset moved = base;
  moved.eye = base.look_at + rot.apply_vector(offset);
  out.set_camera(moved);
  out.set_name(name_);
  return out;
}

Scene RigidRigScene::frame(std::size_t i) const {
  if (i >= frames_) {
    throw std::out_of_range("RigidRigScene::frame: index " + std::to_string(i) +
                            " >= " + std::to_string(frames_));
  }
  Scene scene(name_);
  scene.set_camera(camera_);
  for (const PointLight& l : lights_) scene.add_light(l);
  for (const Part& part : parts_) {
    part.mesh.append_triangles(scene.mutable_triangles(), part.pose(i));
  }
  return scene;
}

}  // namespace kdtune
