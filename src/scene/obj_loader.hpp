#pragma once

// Minimal Wavefront OBJ reader/writer. Supports `v` and `f` records with
// triangle and convex-polygon faces (fan triangulation) and negative
// (relative) indices. This lets users drop in the paper's original models
// (Bunny, Sponza, ...) when they have them, in place of the procedural
// stand-ins.

#include <istream>
#include <ostream>
#include <string>

#include "scene/mesh.hpp"

namespace kdtune {

/// Parses an OBJ stream. Throws std::runtime_error with a line number on
/// malformed input. Normals/texcoords/materials are accepted and ignored.
Mesh load_obj(std::istream& in);

/// Convenience file overload; throws on unreadable path.
Mesh load_obj_file(const std::string& path);

/// Writes vertices and triangular faces.
void save_obj(std::ostream& out, const Mesh& mesh);
void save_obj_file(const std::string& path, const Mesh& mesh);

}  // namespace kdtune
