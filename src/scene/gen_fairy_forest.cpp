// Fairy Forest stand-in: a large forest (noise-displaced terrain, hundreds of
// trees, scattered rocks and mushrooms) with the camera positioned right next
// to a hovering fairy figure, so nearly all of the scene's geometry is
// occluded — the paper's corner case where lazily-built subtrees are never
// expanded. The fairy hovers and flaps its wings; the tree canopies sway.
// 174,117 triangles, 21 frames at detail=1.

#include <cmath>
#include <numbers>

#include "geom/rng.hpp"
#include "scene/generators.hpp"
#include "scene/noise.hpp"
#include "scene/primitives.hpp"

namespace kdtune {

namespace {

constexpr std::size_t kFairyTriangles = 174117;
constexpr std::size_t kFairyFrames = 21;
constexpr float kPi = std::numbers::pi_v<float>;

std::size_t padded_target(std::size_t paper_count, float detail) {
  if (detail >= 1.0f) return paper_count;
  const double t = static_cast<double>(paper_count) * detail * detail;
  return static_cast<std::size_t>(std::lround(t));
}

}  // namespace

std::unique_ptr<AnimatedScene> make_fairy_forest(float detail) {
  using detail_helpers::frieze;
  using detail_helpers::scaled;
  namespace prim = kdtune::primitives;

  // The camera sits right behind the fairy; the forest stretches away behind
  // the viewpoint and to the sides — occluded or outside the frustum.
  CameraPreset camera{{0.0f, 1.25f, 1.1f}, {0.0f, 1.2f, 0.0f}, {0, 1, 0}, 45.0f};
  std::vector<PointLight> lights{{{1.5f, 3.0f, 1.5f}, {1.0f, 0.95f, 0.8f}},
                                 {{-6.0f, 8.0f, -6.0f}, {0.4f, 0.45f, 0.5f}}};
  auto rig = std::make_unique<RigidRigScene>("fairy_forest", kFairyFrames,
                                             camera, lights);

  // Terrain: large displaced grid.
  {
    Mesh terrain = prim::grid(1.0f, scaled(120, detail, 6));
    terrain.transform(Transform::scale({60.0f, 1.0f, 60.0f}));
    const ValueNoise noise(7001u);
    for (Vec3& v : terrain.mutable_vertices()) {
      v.y = 1.2f * noise.fbm({v.x * 0.08f, 0.0f, v.z * 0.08f}, 4) - 0.1f;
    }
    rig->add_static_part(std::move(terrain));
  }

  // Forest: trunk + canopy cones, scattered with a deterministic RNG; the
  // canopies are animated parts (gentle sway), trunks are static.
  {
    const int trunk_seg = scaled(12, detail, 4);
    const int canopy_seg = scaled(16, detail, 4);
    const int tree_count = std::max(8, static_cast<int>(std::lround(
                               600.0 * detail * detail)));
    const Mesh trunk = prim::cylinder(0.18f, 1.6f, trunk_seg, false);
    Mesh canopy;
    for (int layer = 0; layer < 3; ++layer) {
      Mesh c = prim::cone(1.1f - 0.25f * static_cast<float>(layer), 1.2f,
                          canopy_seg, layer == 0);
      c.transform(Transform::translate({0.0f, 1.1f + 0.7f * layer, 0.0f}));
      canopy.merge(c);
    }

    Rng rng(0xF41A7ull);
    const ValueNoise noise(7001u);
    const float frames_f = static_cast<float>(kFairyFrames);
    for (int t = 0; t < tree_count; ++t) {
      // Keep a clearing around the fairy so the close-up view stays open.
      float x, z;
      do {
        x = rng.uniform(-28.0f, 28.0f);
        z = rng.uniform(-28.0f, 28.0f);
      } while (x * x + z * z < 9.0f);
      const float ground = 1.2f * noise.fbm({x * 0.08f, 0.0f, z * 0.08f}, 4) - 0.1f;
      const float s = rng.uniform(0.7f, 1.5f);
      const Transform base = Transform::translate({x, ground, z}) *
                             Transform::scale(s);
      Mesh trunk_i = trunk;
      trunk_i.transform(base);
      rig->add_static_part(std::move(trunk_i));

      const float sway_phase = rng.next_float();
      const float sway_amp = 0.03f + 0.02f * rng.next_float();
      rig->add_part(canopy, [base, sway_phase, sway_amp,
                             frames_f](std::size_t frame) {
        const float a = sway_amp *
            std::sin((static_cast<float>(frame) / frames_f + sway_phase) *
                     2.0f * kPi);
        return base * Transform::rotate({0, 0, 1}, a);
      });
    }

    // Undergrowth: mushrooms (cone caps on stubby trunks) and rocks.
    const int clutter = std::max(4, static_cast<int>(std::lround(
                            200.0 * detail * detail)));
    const Mesh rock = prim::uv_sphere(0.25f, scaled(6, detail, 3),
                                      scaled(8, detail, 4));
    const Mesh cap = prim::cone(0.16f, 0.12f, scaled(10, detail, 4), true);
    const Mesh stem = prim::cylinder(0.04f, 0.12f, scaled(8, detail, 4), false);
    for (int i = 0; i < clutter; ++i) {
      const float x = rng.uniform(-28.0f, 28.0f);
      const float z = rng.uniform(-28.0f, 28.0f);
      const float ground = 1.2f * noise.fbm({x * 0.08f, 0.0f, z * 0.08f}, 4) - 0.1f;
      const Transform at = Transform::translate({x, ground, z});
      if (i % 2 == 0) {
        Mesh r = rock;
        r.transform(at * Transform::scale(rng.uniform(0.5f, 1.6f)));
        rig->add_static_part(std::move(r));
      } else {
        Mesh m = stem;
        m.merge(cap, Transform::translate({0.0f, 0.12f, 0.0f}));
        m.transform(at);
        rig->add_static_part(std::move(m));
      }
    }
  }

  // The fairy: body, head, and two flapping wings, hovering near the camera.
  {
    const Vec3 anchor{0.0f, 1.2f, 0.0f};
    const float frames_f = static_cast<float>(kFairyFrames);
    const auto hover = [anchor, frames_f](std::size_t frame) {
      const float u = static_cast<float>(frame) / frames_f;
      return Transform::translate(
          anchor + Vec3{0.0f, 0.06f * std::sin(u * 2.0f * kPi), 0.0f});
    };

    Mesh body = prim::uv_sphere(0.12f, scaled(16, detail, 4), scaled(24, detail, 5));
    body.transform(Transform::scale({1.0f, 1.8f, 1.0f}));
    rig->add_part(std::move(body), hover);

    Mesh head = prim::uv_sphere(0.07f, scaled(12, detail, 4), scaled(18, detail, 5));
    head.transform(Transform::translate({0.0f, 0.3f, 0.0f}));
    rig->add_part(std::move(head), hover);

    Mesh wing = prim::grid(1.0f, scaled(8, detail, 2));
    wing.transform(Transform::rotate({0, 0, 1}, kPi / 2.0f) *
                   Transform::scale({0.5f, 1.0f, 0.3f}) *
                   Transform::translate({0.5f, 0.0f, 0.0f}));
    for (int side = 0; side < 2; ++side) {
      const float sgn = side == 0 ? 1.0f : -1.0f;
      rig->add_part(wing, [hover, sgn, frames_f](std::size_t frame) {
        const float u = static_cast<float>(frame) / frames_f;
        const float flap = 0.9f * std::sin(u * 6.0f * kPi);
        return hover(frame) * Transform::rotate({0, 0, 1}, sgn * (0.5f + flap)) *
               Transform::scale({sgn, 1.0f, 1.0f});
      });
    }
  }

  // Distant frieze band (a "cliff face" at the forest edge) pads to the
  // paper's exact triangle count.
  {
    const std::size_t current = rig->frame(0).triangle_count();
    const std::size_t want = padded_target(kFairyTriangles, detail);
    if (current < want) {
      Mesh band = frieze(56.0f, 0.0f, 4.0f, -29.5f, want - current);
      band.transform(Transform::translate({-28.0f, 0.0f, 0.0f}));
      rig->add_static_part(std::move(band));
    }
  }

  return rig;
}

}  // namespace kdtune
