#include "scene/noise.hpp"

#include <cmath>

namespace kdtune {

namespace {

// Quintic fade curve (Perlin's improved interpolant): C2-continuous so the
// displaced surface has no visible lattice creases.
float fade(float t) noexcept { return t * t * t * (t * (t * 6.0f - 15.0f) + 10.0f); }

float lerpf(float a, float b, float t) noexcept { return a + (b - a) * t; }

}  // namespace

float ValueNoise::lattice(std::int32_t x, std::int32_t y, std::int32_t z) const noexcept {
  // Mix the lattice coordinates with the seed through a 32-bit finalizer.
  std::uint32_t h = seed_;
  h ^= static_cast<std::uint32_t>(x) * 0x8DA6B343u;
  h ^= static_cast<std::uint32_t>(y) * 0xD8163841u;
  h ^= static_cast<std::uint32_t>(z) * 0xCB1AB31Fu;
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return static_cast<float>(h) * (2.0f / 4294967295.0f) - 1.0f;
}

float ValueNoise::sample(const Vec3& p) const noexcept {
  const float fx = std::floor(p.x);
  const float fy = std::floor(p.y);
  const float fz = std::floor(p.z);
  const auto x0 = static_cast<std::int32_t>(fx);
  const auto y0 = static_cast<std::int32_t>(fy);
  const auto z0 = static_cast<std::int32_t>(fz);
  const float tx = fade(p.x - fx);
  const float ty = fade(p.y - fy);
  const float tz = fade(p.z - fz);

  float corner[2][2][2];
  for (int dz = 0; dz < 2; ++dz) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        corner[dz][dy][dx] = lattice(x0 + dx, y0 + dy, z0 + dz);
      }
    }
  }
  const float x00 = lerpf(corner[0][0][0], corner[0][0][1], tx);
  const float x10 = lerpf(corner[0][1][0], corner[0][1][1], tx);
  const float x01 = lerpf(corner[1][0][0], corner[1][0][1], tx);
  const float x11 = lerpf(corner[1][1][0], corner[1][1][1], tx);
  const float y0v = lerpf(x00, x10, ty);
  const float y1v = lerpf(x01, x11, ty);
  return lerpf(y0v, y1v, tz);
}

float ValueNoise::fbm(const Vec3& p, int octaves) const noexcept {
  float amplitude = 0.5f;
  float frequency = 1.0f;
  float sum = 0.0f;
  float norm = 0.0f;
  for (int o = 0; o < octaves; ++o) {
    sum += amplitude * sample(p * frequency);
    norm += amplitude;
    amplitude *= 0.5f;
    frequency *= 2.0f;
  }
  return norm > 0.0f ? sum / norm : 0.0f;
}

}  // namespace kdtune
