#include "scene/generators.hpp"

#include <cmath>
#include <stdexcept>

namespace kdtune {

namespace detail_helpers {

Mesh frieze(float length, float y0, float height, float z, std::size_t n) {
  Mesh m;
  if (n == 0) return m;
  // Classic triangle strip: vertices alternate bottom/top along +X; triangle
  // i is (v_i, v_i+1, v_i+2), giving exactly n triangles from n+2 vertices.
  const std::size_t columns = (n + 1) / 2 + 1;
  const float step = length / static_cast<float>(columns);
  for (std::size_t k = 0; k < n + 2; ++k) {
    const float x = step * static_cast<float>(k / 2);
    const float y = (k % 2 == 0) ? y0 : y0 + height;
    m.add_vertex({x, y, z});
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::uint32_t>(i);
    m.add_triangle(a, a + 1, a + 2);
  }
  return m;
}

int scaled(int base, float detail, int min_value) {
  const int v = static_cast<int>(std::lround(static_cast<double>(base) * detail));
  return std::max(min_value, v);
}

}  // namespace detail_helpers

std::vector<std::string> static_scene_ids() {
  return {"bunny", "sponza", "sibenik"};
}

std::vector<std::string> dynamic_scene_ids() {
  return {"toasters", "wood_doll", "fairy_forest"};
}

std::vector<std::string> scene_ids() {
  std::vector<std::string> ids = static_scene_ids();
  for (auto& id : dynamic_scene_ids()) ids.push_back(id);
  return ids;
}

std::unique_ptr<AnimatedScene> make_scene(const std::string& id, float detail) {
  if (id == "bunny") return std::make_unique<StaticScene>(make_bunny(detail));
  if (id == "sponza") return std::make_unique<StaticScene>(make_sponza(detail));
  if (id == "sibenik") return std::make_unique<StaticScene>(make_sibenik(detail));
  if (id == "toasters") return make_toasters(detail);
  if (id == "wood_doll") return make_wood_doll(detail);
  if (id == "fairy_forest") return make_fairy_forest(detail);
  throw std::invalid_argument("unknown scene id: " + id);
}

}  // namespace kdtune
