// Wood Doll stand-in: a small articulated wooden figure walking in place over
// a 29-frame cycle — limbs swing from shoulder/hip pivots, the head bobs.
// Matches the Utah "Wood Doll" sequence's character: tiny triangle budget,
// strongly articulated motion. 6,658 triangles, 29 frames at detail=1.

#include <cmath>
#include <numbers>

#include "scene/generators.hpp"
#include "scene/primitives.hpp"

namespace kdtune {

namespace {

constexpr std::size_t kWoodDollTriangles = 6658;
constexpr std::size_t kWoodDollFrames = 29;
constexpr float kPi = std::numbers::pi_v<float>;

std::size_t padded_target(std::size_t paper_count, float detail) {
  if (detail >= 1.0f) return paper_count;
  const double t = static_cast<double>(paper_count) * detail * detail;
  return static_cast<std::size_t>(std::lround(t));
}

// Swing around a pivot point: rotate about `axis` by `angle`, anchored at
// `pivot` (the classic joint transform).
Transform swing(const Vec3& pivot, const Vec3& axis, float angle) {
  return Transform::translate(pivot) * Transform::rotate(axis, angle) *
         Transform::translate(-pivot);
}

}  // namespace

std::unique_ptr<AnimatedScene> make_wood_doll(float detail) {
  using detail_helpers::frieze;
  using detail_helpers::scaled;
  namespace prim = kdtune::primitives;

  CameraPreset camera{{0.0f, 1.3f, 3.2f}, {0.0f, 1.0f, 0.0f}, {0, 1, 0}, 50.0f};
  std::vector<PointLight> lights{{{2.5f, 4.0f, 3.0f}, {1.0f, 1.0f, 0.95f}},
                                 {{-2.0f, 2.0f, -1.0f}, {0.3f, 0.3f, 0.35f}}};
  auto rig = std::make_unique<RigidRigScene>("wood_doll", kWoodDollFrames,
                                             camera, lights);

  // Ground.
  {
    Mesh ground = prim::grid(1.0f, scaled(30, detail, 3));
    ground.transform(Transform::scale({6.0f, 1.0f, 6.0f}));
    rig->add_static_part(std::move(ground));
  }

  const int limb_seg = scaled(24, detail, 5);
  const int head_rings = scaled(16, detail, 4);
  const int head_seg = scaled(24, detail, 5);
  const int joint_rings = scaled(6, detail, 3);
  const int joint_seg = scaled(8, detail, 4);

  const float frames_f = static_cast<float>(kWoodDollFrames);
  const auto cycle = [frames_f](std::size_t frame, float phase) {
    return std::sin((static_cast<float>(frame) / frames_f + phase) * 2.0f * kPi);
  };

  // Torso, pelvis, head (head bobs slightly).
  {
    Mesh torso = prim::cylinder(0.18f, 0.5f, limb_seg, true);
    torso.transform(Transform::translate({0.0f, 0.95f, 0.0f}));
    rig->add_static_part(std::move(torso));

    Mesh pelvis = prim::box({0.3f, 0.15f, 0.2f});
    pelvis.transform(Transform::translate({0.0f, 0.9f, 0.0f}));
    rig->add_static_part(std::move(pelvis));

    Mesh skirt = prim::cone(0.3f, 0.35f, scaled(48, detail, 6), false);
    skirt.transform(Transform::translate({0.0f, 0.75f, 0.0f}));
    rig->add_static_part(std::move(skirt));

    Mesh head = prim::uv_sphere(0.16f, head_rings, head_seg);
    rig->add_part(head, [cycle](std::size_t frame) {
      return Transform::translate(
          {0.0f, 1.62f + 0.02f * cycle(frame, 0.5f), 0.0f});
    });

    Mesh hat = prim::cone(0.18f, 0.22f, scaled(24, detail, 5), true);
    rig->add_part(hat, [cycle](std::size_t frame) {
      return Transform::translate(
          {0.0f, 1.72f + 0.02f * cycle(frame, 0.5f), 0.0f});
    });
  }

  // Limbs: upper+lower segments with spherical joints, swinging in the
  // standard contralateral walk pattern (left arm with right leg).
  const Mesh upper_limb = prim::cylinder(0.05f, 0.3f, limb_seg, true);
  const Mesh lower_limb = prim::cylinder(0.04f, 0.28f, limb_seg, true);
  const Mesh joint_ball = prim::uv_sphere(0.06f, joint_rings, joint_seg);
  const Mesh hand = prim::box({0.07f, 0.1f, 0.07f});

  struct LimbSpec {
    Vec3 pivot;       // shoulder or hip
    float phase;      // walk phase offset
    float amplitude;  // swing amplitude (radians)
  };
  const LimbSpec arms[2] = {{{-0.26f, 1.4f, 0.0f}, 0.0f, 0.6f},
                            {{0.26f, 1.4f, 0.0f}, 0.5f, 0.6f}};
  const LimbSpec legs[2] = {{{-0.1f, 0.85f, 0.0f}, 0.5f, 0.45f},
                            {{0.1f, 0.85f, 0.0f}, 0.0f, 0.45f}};

  const auto add_limb = [&](const LimbSpec& spec, bool is_arm) {
    const Vec3 pivot = spec.pivot;
    const float amp = spec.amplitude;
    const float phase = spec.phase;
    const auto pose = [pivot, amp, phase, cycle](std::size_t frame) {
      return swing(pivot, {1, 0, 0}, amp * cycle(frame, phase));
    };
    // The lower segment bends additionally at the elbow/knee.
    const Vec3 mid = pivot - Vec3{0.0f, 0.34f, 0.0f};
    const float knee_amp = is_arm ? 0.35f : 0.5f;
    const auto lower_pose = [pivot, mid, amp, knee_amp, phase,
                             cycle](std::size_t frame) {
      const float c = cycle(frame, phase);
      return swing(pivot, {1, 0, 0}, amp * c) *
             swing(mid, {1, 0, 0}, knee_amp * std::max(0.0f, c));
    };

    Mesh upper = upper_limb;
    upper.transform(Transform::translate(pivot - Vec3{0.0f, 0.32f, 0.0f}));
    rig->add_part(std::move(upper), pose);

    Mesh ball = joint_ball;
    ball.transform(Transform::translate(pivot));
    rig->add_part(std::move(ball), pose);

    Mesh elbow = joint_ball;
    elbow.transform(Transform::translate(mid));
    rig->add_part(std::move(elbow), lower_pose);

    Mesh lower = lower_limb;
    lower.transform(Transform::translate(mid - Vec3{0.0f, 0.3f, 0.0f}));
    rig->add_part(std::move(lower), lower_pose);

    Mesh tip = hand;
    tip.transform(Transform::translate(mid - Vec3{0.0f, 0.36f, 0.0f}));
    rig->add_part(std::move(tip), lower_pose);
  };

  for (const LimbSpec& spec : arms) add_limb(spec, true);
  for (const LimbSpec& spec : legs) add_limb(spec, false);

  // Backdrop frieze pads to the paper's exact count.
  {
    const std::size_t current = rig->frame(0).triangle_count();
    const std::size_t want = padded_target(kWoodDollTriangles, detail);
    if (current < want) {
      Mesh band = frieze(5.0f, 0.1f, 1.6f, -2.8f, want - current);
      band.transform(Transform::translate({-2.5f, 0.0f, 0.0f}));
      rig->add_static_part(std::move(band));
    }
  }

  return rig;
}

}  // namespace kdtune
