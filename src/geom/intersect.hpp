#pragma once

// Ray/AABB slab test and brute-force reference queries. The brute-force
// closest-hit is the oracle every kd-tree traversal is validated against in
// the property tests.

#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"

namespace kdtune {

/// Slab test. On success returns true and yields the parametric entry/exit
/// interval clamped to [ray.t_min, ray.t_max].
bool intersect_aabb(const Ray& ray, const AABB& box,
                    float& t_enter, float& t_exit) noexcept;

inline bool intersect_aabb(const Ray& ray, const AABB& box) noexcept {
  float t0, t1;
  return intersect_aabb(ray, box, t0, t1);
}

/// O(n) closest hit over a triangle soup; reference oracle for tests.
Hit brute_force_closest_hit(const Ray& ray, std::span<const Triangle> tris) noexcept;

/// O(n) any-hit (shadow ray) over a triangle soup; reference oracle.
bool brute_force_any_hit(const Ray& ray, std::span<const Triangle> tris) noexcept;

/// Bounds of a whole triangle soup.
AABB bounds_of(std::span<const Triangle> tris) noexcept;

}  // namespace kdtune
