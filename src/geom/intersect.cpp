#include "geom/intersect.hpp"

#include <algorithm>

namespace kdtune {

bool intersect_aabb(const Ray& ray, const AABB& box,
                    float& t_enter, float& t_exit) noexcept {
  float t0 = ray.t_min;
  float t1 = ray.t_max;
  for (int axis = 0; axis < 3; ++axis) {
    const float inv = ray.inv_dir[axis];
    float near = (box.lo[axis] - ray.origin[axis]) * inv;
    float far = (box.hi[axis] - ray.origin[axis]) * inv;
    if (inv < 0.0f) std::swap(near, far);
    // NaN (ray parallel to slab and origin on boundary) resolves to "no
    // constraint" because comparisons with NaN are false.
    if (near > t0) t0 = near;
    if (far < t1) t1 = far;
    if (t0 > t1) return false;
  }
  t_enter = t0;
  t_exit = t1;
  return true;
}

Hit brute_force_closest_hit(const Ray& ray, std::span<const Triangle> tris) noexcept {
  Hit best;
  Ray r = ray;
  for (std::size_t i = 0; i < tris.size(); ++i) {
    float t, u, v;
    if (intersect(r, tris[i], t, u, v)) {
      best.t = t;
      best.triangle = static_cast<std::uint32_t>(i);
      best.u = u;
      best.v = v;
      r.t_max = t;  // shrink interval so later hits must be closer
    }
  }
  return best;
}

bool brute_force_any_hit(const Ray& ray, std::span<const Triangle> tris) noexcept {
  for (const Triangle& tri : tris) {
    float t, u, v;
    if (intersect(ray, tri, t, u, v)) return true;
  }
  return false;
}

AABB bounds_of(std::span<const Triangle> tris) noexcept {
  AABB box;
  for (const Triangle& tri : tris) box.expand(tri.bounds());
  return box;
}

}  // namespace kdtune
