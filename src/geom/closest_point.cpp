#include "geom/closest_point.hpp"

#include <algorithm>
#include <limits>

namespace kdtune {

Vec3 closest_point_on_triangle(const Vec3& p, const Triangle& tri) noexcept {
  // Ericson 5.1.5: classify p against the triangle's Voronoi regions.
  const Vec3& a = tri.a;
  const Vec3& b = tri.b;
  const Vec3& c = tri.c;

  const Vec3 ab = b - a;
  const Vec3 ac = c - a;
  const Vec3 ap = p - a;
  const float d1 = dot(ab, ap);
  const float d2 = dot(ac, ap);
  if (d1 <= 0.0f && d2 <= 0.0f) return a;  // vertex region A

  const Vec3 bp = p - b;
  const float d3 = dot(ab, bp);
  const float d4 = dot(ac, bp);
  if (d3 >= 0.0f && d4 <= d3) return b;  // vertex region B

  const float vc = d1 * d4 - d3 * d2;
  if (vc <= 0.0f && d1 >= 0.0f && d3 <= 0.0f) {
    const float v = d1 / (d1 - d3);
    return a + ab * v;  // edge region AB
  }

  const Vec3 cp = p - c;
  const float d5 = dot(ab, cp);
  const float d6 = dot(ac, cp);
  if (d6 >= 0.0f && d5 <= d6) return c;  // vertex region C

  const float vb = d5 * d2 - d1 * d6;
  if (vb <= 0.0f && d2 >= 0.0f && d6 <= 0.0f) {
    const float w = d2 / (d2 - d6);
    return a + ac * w;  // edge region AC
  }

  const float va = d3 * d6 - d5 * d4;
  if (va <= 0.0f && (d4 - d3) >= 0.0f && (d5 - d6) >= 0.0f) {
    const float w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
    return b + (c - b) * w;  // edge region BC
  }

  // Face region.
  const float denom = 1.0f / (va + vb + vc);
  const float v = vb * denom;
  const float w = vc * denom;
  return a + ab * v + ac * w;
}

float distance_squared(const Vec3& p, const AABB& box) noexcept {
  if (box.empty()) return std::numeric_limits<float>::infinity();
  float sum = 0.0f;
  for (int axis = 0; axis < 3; ++axis) {
    const float v = p[axis];
    if (v < box.lo[axis]) {
      const float d = box.lo[axis] - v;
      sum += d * d;
    } else if (v > box.hi[axis]) {
      const float d = v - box.hi[axis];
      sum += d * d;
    }
  }
  return sum;
}

}  // namespace kdtune
