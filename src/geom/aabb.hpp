#pragma once

// Axis-aligned bounding box. The SAH is computed entirely from AABB surface
// areas (Wald & Havran 2006), so this type carries the surface-area and
// split helpers the builders need.

#include <limits>
#include <ostream>

#include "geom/vec3.hpp"

namespace kdtune {

struct AABB {
  Vec3 lo{std::numeric_limits<float>::infinity(),
          std::numeric_limits<float>::infinity(),
          std::numeric_limits<float>::infinity()};
  Vec3 hi{-std::numeric_limits<float>::infinity(),
          -std::numeric_limits<float>::infinity(),
          -std::numeric_limits<float>::infinity()};

  constexpr AABB() = default;
  constexpr AABB(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  /// An empty box is the identity of expand()/unite(); any point expands it.
  bool empty() const noexcept {
    return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
  }

  void expand(const Vec3& p) noexcept {
    lo = min(lo, p);
    hi = max(hi, p);
  }

  void expand(const AABB& b) noexcept {
    lo = min(lo, b.lo);
    hi = max(hi, b.hi);
  }

  Vec3 extent() const noexcept { return hi - lo; }
  Vec3 center() const noexcept { return (lo + hi) * 0.5f; }

  /// Surface area; the quantity the SAH divides to obtain hit probabilities.
  /// Empty boxes report zero area so they never look profitable to a split.
  float surface_area() const noexcept {
    if (empty()) return 0.0f;
    const Vec3 e = extent();
    return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  float volume() const noexcept {
    if (empty()) return 0.0f;
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  Axis longest_axis() const noexcept { return max_axis(extent()); }

  bool contains(const Vec3& p, float eps = 0.0f) const noexcept {
    return p.x >= lo.x - eps && p.x <= hi.x + eps &&
           p.y >= lo.y - eps && p.y <= hi.y + eps &&
           p.z >= lo.z - eps && p.z <= hi.z + eps;
  }

  bool contains(const AABB& b, float eps = 0.0f) const noexcept {
    return !b.empty() && contains(b.lo, eps) && contains(b.hi, eps);
  }

  bool overlaps(const AABB& b) const noexcept {
    return lo.x <= b.hi.x && hi.x >= b.lo.x &&
           lo.y <= b.hi.y && hi.y >= b.lo.y &&
           lo.z <= b.hi.z && hi.z >= b.lo.z;
  }

  /// Splits the box by the plane `axis = offset` into (left, right) halves.
  /// The offset is clamped into the box so both halves stay valid.
  std::pair<AABB, AABB> split(Axis axis, float offset) const noexcept;

  /// Intersection of two boxes; empty if they are disjoint.
  static AABB intersect(const AABB& a, const AABB& b) noexcept {
    AABB r{max(a.lo, b.lo), min(a.hi, b.hi)};
    return r;
  }

  static AABB unite(const AABB& a, const AABB& b) noexcept {
    AABB r = a;
    r.expand(b);
    return r;
  }

  friend bool operator==(const AABB& a, const AABB& b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }

  friend std::ostream& operator<<(std::ostream& os, const AABB& b) {
    return os << '[' << b.lo << " .. " << b.hi << ']';
  }
};

}  // namespace kdtune
