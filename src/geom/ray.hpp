#pragma once

// Ray with cached reciprocal direction for the slab AABB test. The traversal
// loop evaluates a slab test per kd-node, so the reciprocals are computed once
// at construction.

#include <limits>

#include "geom/vec3.hpp"

namespace kdtune {

struct Ray {
  Vec3 origin;
  Vec3 dir;       ///< not required to be normalized
  Vec3 inv_dir;   ///< 1/dir, +-inf on zero components (IEEE semantics)
  float t_min = 1e-4f;
  float t_max = std::numeric_limits<float>::infinity();

  Ray() : Ray({0, 0, 0}, {0, 0, 1}) {}

  Ray(const Vec3& o, const Vec3& d,
      float tmin = 1e-4f,
      float tmax = std::numeric_limits<float>::infinity())
      : origin(o), dir(d),
        inv_dir{1.0f / d.x, 1.0f / d.y, 1.0f / d.z},
        t_min(tmin), t_max(tmax) {}

  Vec3 at(float t) const noexcept { return origin + dir * t; }
};

/// Result of the closest-hit query against the scene.
struct Hit {
  float t = std::numeric_limits<float>::infinity();
  std::uint32_t triangle = kNoTriangle;
  float u = 0.0f;  ///< barycentric coordinate
  float v = 0.0f;  ///< barycentric coordinate

  static constexpr std::uint32_t kNoTriangle = 0xFFFFFFFFu;

  bool valid() const noexcept { return triangle != kNoTriangle; }
};

}  // namespace kdtune
