#pragma once

// Point/primitive proximity queries (Ericson, Real-Time Collision Detection,
// ch. 5 — the same reference the traversal uses). These power the kd-tree's
// nearest-neighbor query, the second query family the paper's introduction
// names for spatial data structures.

#include "geom/aabb.hpp"
#include "geom/triangle.hpp"
#include "geom/vec3.hpp"

namespace kdtune {

/// Closest point on triangle `tri` to point `p` (vertex, edge or face).
Vec3 closest_point_on_triangle(const Vec3& p, const Triangle& tri) noexcept;

/// Squared distance from `p` to the triangle.
inline float distance_squared(const Vec3& p, const Triangle& tri) noexcept {
  return length_squared(p - closest_point_on_triangle(p, tri));
}

/// Squared distance from `p` to the box (0 if inside).
float distance_squared(const Vec3& p, const AABB& box) noexcept;

}  // namespace kdtune
