#include "geom/triangle.hpp"

#include <array>
#include <cmath>

namespace kdtune {

bool intersect(const Ray& ray, const Triangle& tri,
               float& t, float& u, float& v) noexcept {
  const Vec3 e1 = tri.b - tri.a;
  const Vec3 e2 = tri.c - tri.a;
  return intersect_edges(ray, tri.a, e1, e2, t, u, v);
}

namespace {

// Clips the convex polygon `poly` against the half space `keep_below ?
// p[axis] <= offset : p[axis] >= offset`, writing the result to `out`.
// Returns the output vertex count. Classic Sutherland–Hodgman step.
int clip_against_plane(const Vec3* poly, int n, Axis axis, float offset,
                       bool keep_below, Vec3* out) noexcept {
  int m = 0;
  for (int i = 0; i < n; ++i) {
    const Vec3& cur = poly[i];
    const Vec3& nxt = poly[(i + 1) % n];
    const float dc = keep_below ? offset - cur[axis] : cur[axis] - offset;
    const float dn = keep_below ? offset - nxt[axis] : nxt[axis] - offset;
    const bool cur_in = dc >= 0.0f;
    const bool nxt_in = dn >= 0.0f;
    if (cur_in) out[m++] = cur;
    if (cur_in != nxt_in) {
      const float denom = dc - dn;
      const float s = denom != 0.0f ? dc / denom : 0.0f;
      out[m++] = lerp(cur, nxt, s);
    }
  }
  return m;
}

}  // namespace

AABB clipped_bounds(const Triangle& tri, const AABB& box) noexcept {
  // A triangle clipped by up to 6 planes has at most 3 + 6 vertices.
  std::array<Vec3, 10> buf_a{tri.a, tri.b, tri.c};
  std::array<Vec3, 10> buf_b{};
  Vec3* src = buf_a.data();
  Vec3* dst = buf_b.data();
  int n = 3;
  for (int axis = 0; axis < 3 && n > 0; ++axis) {
    const Axis a = static_cast<Axis>(axis);
    n = clip_against_plane(src, n, a, box.hi[a], /*keep_below=*/true, dst);
    std::swap(src, dst);
    if (n == 0) break;
    n = clip_against_plane(src, n, a, box.lo[a], /*keep_below=*/false, dst);
    std::swap(src, dst);
  }
  AABB result;
  for (int i = 0; i < n; ++i) result.expand(src[i]);
  // Numerical safety: the clipped polygon must stay inside the node box or
  // the SAH sweep may place events outside the node extent.
  if (!result.empty()) {
    result.lo = max(result.lo, box.lo);
    result.hi = min(result.hi, box.hi);
  }
  return result;
}

}  // namespace kdtune
