#include "geom/aabb.hpp"

#include <algorithm>

namespace kdtune {

std::pair<AABB, AABB> AABB::split(Axis axis, float offset) const noexcept {
  const float clamped = std::clamp(offset, lo[axis], hi[axis]);
  AABB left = *this;
  AABB right = *this;
  left.hi[axis] = clamped;
  right.lo[axis] = clamped;
  return {left, right};
}

}  // namespace kdtune
