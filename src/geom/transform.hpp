#pragma once

// Affine transform (3x3 linear part + translation). Enough for the scene
// generators and the keyframe animation rigs; no projective math is needed
// anywhere in the library (the camera generates rays directly).

#include <array>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace kdtune {

class Transform {
 public:
  /// Identity.
  constexpr Transform()
      : m_{{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}, t_{0, 0, 0} {}

  static Transform translate(const Vec3& t);
  static Transform scale(const Vec3& s);
  static Transform scale(float s) { return scale(Vec3(s)); }
  /// Rotation by `radians` around the (normalized internally) `axis`,
  /// Rodrigues' formula.
  static Transform rotate(const Vec3& axis, float radians);

  Vec3 apply_point(const Vec3& p) const noexcept {
    return apply_vector(p) + t_;
  }

  Vec3 apply_vector(const Vec3& v) const noexcept {
    return {m_[0][0] * v.x + m_[0][1] * v.y + m_[0][2] * v.z,
            m_[1][0] * v.x + m_[1][1] * v.y + m_[1][2] * v.z,
            m_[2][0] * v.x + m_[2][1] * v.y + m_[2][2] * v.z};
  }

  /// Composition: (a * b) applies b first, then a.
  friend Transform operator*(const Transform& a, const Transform& b);

  /// Bounds of the 8 transformed corners (conservative box transform).
  AABB apply_bounds(const AABB& box) const noexcept;

  const std::array<std::array<float, 3>, 3>& linear() const noexcept { return m_; }
  const Vec3& translation() const noexcept { return t_; }

 private:
  std::array<std::array<float, 3>, 3> m_;  ///< row-major linear part
  Vec3 t_;                                 ///< translation
};

}  // namespace kdtune
