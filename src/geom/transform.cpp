#include "geom/transform.hpp"

#include <cmath>

namespace kdtune {

Transform Transform::translate(const Vec3& t) {
  Transform r;
  r.t_ = t;
  return r;
}

Transform Transform::scale(const Vec3& s) {
  Transform r;
  r.m_[0][0] = s.x;
  r.m_[1][1] = s.y;
  r.m_[2][2] = s.z;
  return r;
}

Transform Transform::rotate(const Vec3& axis, float radians) {
  const Vec3 u = normalized(axis);
  const float c = std::cos(radians);
  const float s = std::sin(radians);
  const float ic = 1.0f - c;
  Transform r;
  r.m_ = {{{c + u.x * u.x * ic, u.x * u.y * ic - u.z * s, u.x * u.z * ic + u.y * s},
           {u.y * u.x * ic + u.z * s, c + u.y * u.y * ic, u.y * u.z * ic - u.x * s},
           {u.z * u.x * ic - u.y * s, u.z * u.y * ic + u.x * s, c + u.z * u.z * ic}}};
  return r;
}

Transform operator*(const Transform& a, const Transform& b) {
  Transform r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      r.m_[i][j] = a.m_[i][0] * b.m_[0][j] + a.m_[i][1] * b.m_[1][j] +
                   a.m_[i][2] * b.m_[2][j];
    }
  }
  r.t_ = a.apply_vector(b.t_) + a.t_;
  return r;
}

AABB Transform::apply_bounds(const AABB& box) const noexcept {
  if (box.empty()) return box;
  AABB out;
  for (int corner = 0; corner < 8; ++corner) {
    const Vec3 p{(corner & 1) ? box.hi.x : box.lo.x,
                 (corner & 2) ? box.hi.y : box.lo.y,
                 (corner & 4) ? box.hi.z : box.lo.z};
    out.expand(apply_point(p));
  }
  return out;
}

}  // namespace kdtune
