#pragma once

// Deterministic xoshiro256** PRNG. Used by the scene generators, the
// autotuner's random-sampling phase, and the property tests. Not <random>'s
// mt19937 because we want cheap, splittable, reproducible streams with a tiny
// state that can live inside per-thread contexts.

#include <cstdint>

namespace kdtune {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, recommended initialization for xoshiro.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1u;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + (hi - lo) * next_float();
  }

  /// A statistically independent child stream; allows deterministic
  /// per-thread / per-object RNGs derived from one master seed.
  Rng split() noexcept { return Rng(next_u64() ^ 0xA3EC647659359ACDull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace kdtune
