#pragma once

// Triangle primitive. kd-tree builders operate on triangle *bounds* (possibly
// clipped to a node box — "perfect splits" in Wald & Havran's terminology),
// while traversal needs the exact Möller–Trumbore intersection test.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace kdtune {

struct Triangle {
  Vec3 a, b, c;

  constexpr Triangle() = default;
  constexpr Triangle(const Vec3& a_, const Vec3& b_, const Vec3& c_)
      : a(a_), b(b_), c(c_) {}

  AABB bounds() const noexcept {
    AABB box;
    box.expand(a);
    box.expand(b);
    box.expand(c);
    return box;
  }

  Vec3 centroid() const noexcept { return (a + b + c) / 3.0f; }

  /// Geometric (unnormalized-winding) normal.
  Vec3 normal() const noexcept { return normalized(cross(b - a, c - a)); }

  float area() const noexcept { return 0.5f * length(cross(b - a, c - a)); }

  bool degenerate() const noexcept { return area() <= 0.0f; }
};

/// Möller–Trumbore ray/triangle intersection.
/// On a hit with t in (ray.t_min, ray.t_max), fills t/u/v and returns true.
bool intersect(const Ray& ray, const Triangle& tri,
               float& t, float& u, float& v) noexcept;

/// Möller–Trumbore core over precomputed edge vectors (e1 = b - a,
/// e2 = c - a). This is the *single* definition of the test: `intersect`
/// computes the edges and calls it, and the compact tree's leaf-block SoA
/// path loads precomputed edges and calls it — so both are bit-identical by
/// construction.
/// Straight-line (branchless) form of the test: always evaluates the full
/// arithmetic and returns the hit distance, or +infinity for a miss. `u`/`v`
/// are written unconditionally (garbage on a miss). The rejection predicate
/// is evaluated at the end, which is exactly equivalent to the classic
/// early-out ordering: a near-zero determinant poisons uu/vv/tt with
/// inf/NaN, but such lanes are rejected by the determinant clause anyway.
/// The single straight-line body is what lets the compact tree's leaf-block
/// loop vectorize across a SoA block while staying bit-identical to the
/// scalar path — every caller funnels into this one definition.
inline float intersect_edges_t(const Vec3& origin, const Vec3& dir,
                               float t_min, float t_max, const Vec3& a,
                               const Vec3& e1, const Vec3& e2, float& u,
                               float& v) noexcept {
  constexpr float kEps = 1e-9f;
  const Vec3 p = cross(dir, e2);
  const float det = dot(e1, p);
  const float inv_det = 1.0f / det;
  const Vec3 s = origin - a;
  const float uu = dot(s, p) * inv_det;
  const Vec3 q = cross(s, e1);
  const float vv = dot(dir, q) * inv_det;
  const float tt = dot(e2, q) * inv_det;
  // Bitwise & (not &&): no short-circuit control flow, so the whole body
  // if-converts and vectorizes when inlined into a block loop.
  const bool hit = (std::fabs(det) >= kEps) & (uu >= 0.0f) & (uu <= 1.0f) &
                   (vv >= 0.0f) & (uu + vv <= 1.0f) & (tt > t_min) &
                   (tt < t_max);
  u = uu;
  v = vv;
  return hit ? tt : std::numeric_limits<float>::infinity();
}

inline bool intersect_edges(const Vec3& origin, const Vec3& dir, float t_min,
                            float t_max, const Vec3& a, const Vec3& e1,
                            const Vec3& e2, float& t, float& u,
                            float& v) noexcept {
  float uu, vv;
  const float tt =
      intersect_edges_t(origin, dir, t_min, t_max, a, e1, e2, uu, vv);
  if (tt == std::numeric_limits<float>::infinity()) return false;
  t = tt;
  u = uu;
  v = vv;
  return true;
}

inline bool intersect_edges(const Ray& ray, const Vec3& a, const Vec3& e1,
                            const Vec3& e2, float& t, float& u,
                            float& v) noexcept {
  return intersect_edges(ray.origin, ray.dir, ray.t_min, ray.t_max, a, e1, e2,
                         t, u, v);
}

/// Clips a triangle against an AABB (Sutherland–Hodgman against the 6 slabs)
/// and returns the bounds of the clipped polygon. This yields the tight
/// per-node bounds the exact SAH sweep uses; if the triangle misses the box
/// entirely an empty AABB is returned.
AABB clipped_bounds(const Triangle& tri, const AABB& box) noexcept;

}  // namespace kdtune
