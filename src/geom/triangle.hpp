#pragma once

// Triangle primitive. kd-tree builders operate on triangle *bounds* (possibly
// clipped to a node box — "perfect splits" in Wald & Havran's terminology),
// while traversal needs the exact Möller–Trumbore intersection test.

#include <array>
#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace kdtune {

struct Triangle {
  Vec3 a, b, c;

  constexpr Triangle() = default;
  constexpr Triangle(const Vec3& a_, const Vec3& b_, const Vec3& c_)
      : a(a_), b(b_), c(c_) {}

  AABB bounds() const noexcept {
    AABB box;
    box.expand(a);
    box.expand(b);
    box.expand(c);
    return box;
  }

  Vec3 centroid() const noexcept { return (a + b + c) / 3.0f; }

  /// Geometric (unnormalized-winding) normal.
  Vec3 normal() const noexcept { return normalized(cross(b - a, c - a)); }

  float area() const noexcept { return 0.5f * length(cross(b - a, c - a)); }

  bool degenerate() const noexcept { return area() <= 0.0f; }
};

/// Möller–Trumbore ray/triangle intersection.
/// On a hit with t in (ray.t_min, ray.t_max), fills t/u/v and returns true.
bool intersect(const Ray& ray, const Triangle& tri,
               float& t, float& u, float& v) noexcept;

/// Clips a triangle against an AABB (Sutherland–Hodgman against the 6 slabs)
/// and returns the bounds of the clipped polygon. This yields the tight
/// per-node bounds the exact SAH sweep uses; if the triangle misses the box
/// entirely an empty AABB is returned.
AABB clipped_bounds(const Triangle& tri, const AABB& box) noexcept;

}  // namespace kdtune
