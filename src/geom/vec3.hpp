#pragma once

// Minimal 3-component vector used throughout the kd-tree, scene and renderer
// layers. Deliberately a plain aggregate: builders store millions of these and
// rely on trivially-copyable semantics for fast partitioning.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace kdtune {

/// Axis indices used across the kd-tree code. A split plane is always
/// axis-aligned, so an axis plus an offset fully describes it.
enum class Axis : std::uint8_t { X = 0, Y = 1, Z = 2 };

/// Next axis in round-robin order (X -> Y -> Z -> X).
constexpr Axis next_axis(Axis a) noexcept {
  return static_cast<Axis>((static_cast<std::uint8_t>(a) + 1u) % 3u);
}

constexpr int axis_index(Axis a) noexcept { return static_cast<int>(a); }

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float vx, float vy, float vz) : x(vx), y(vy), z(vz) {}
  constexpr explicit Vec3(float v) : x(v), y(v), z(v) {}

  constexpr float operator[](int i) const noexcept {
    return i == 0 ? x : (i == 1 ? y : z);
  }
  float& operator[](int i) noexcept { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr float operator[](Axis a) const noexcept {
    return (*this)[axis_index(a)];
  }
  float& operator[](Axis a) noexcept { return (*this)[axis_index(a)]; }

  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x; y += o.y; z += o.z; return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x; y -= o.y; z -= o.z; return *this;
  }
  constexpr Vec3& operator*=(float s) noexcept {
    x *= s; y *= s; z *= s; return *this;
  }
  constexpr Vec3& operator/=(float s) noexcept { return *this *= (1.0f / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, float s) noexcept { return a *= s; }
  friend constexpr Vec3 operator*(float s, Vec3 a) noexcept { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, float s) noexcept { return a /= s; }
  friend constexpr Vec3 operator*(Vec3 a, const Vec3& b) noexcept {
    return {a.x * b.x, a.y * b.y, a.z * b.z};
  }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) noexcept {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  friend constexpr bool operator!=(const Vec3& a, const Vec3& b) noexcept {
    return !(a == b);
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

constexpr float dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y,
          a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

constexpr float length_squared(const Vec3& v) noexcept { return dot(v, v); }

inline float length(const Vec3& v) noexcept { return std::sqrt(length_squared(v)); }

/// Returns v normalized; a zero vector is returned unchanged so callers never
/// see NaNs from degenerate input.
inline Vec3 normalized(const Vec3& v) noexcept {
  const float len = length(v);
  return len > 0.0f ? v / len : v;
}

constexpr Vec3 min(const Vec3& a, const Vec3& b) noexcept {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

constexpr Vec3 max(const Vec3& a, const Vec3& b) noexcept {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

constexpr Vec3 lerp(const Vec3& a, const Vec3& b, float t) noexcept {
  return a + (b - a) * t;
}

/// Component with the largest absolute extent; used to pick split axes.
inline Axis max_axis(const Vec3& v) noexcept {
  if (v.x >= v.y && v.x >= v.z) return Axis::X;
  return v.y >= v.z ? Axis::Y : Axis::Z;
}

inline bool is_finite(const Vec3& v) noexcept {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

}  // namespace kdtune
