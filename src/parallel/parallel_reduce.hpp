#pragma once

// Map-reduce over a blocked range. Used for parallel SAH plane minimization
// (the per-chunk argmin of the nested builder) and for parallel statistics.

#include <cstddef>
#include <mutex>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace kdtune {

/// Evaluates `map(block_begin, block_end) -> T` on blocks in parallel, then
/// folds the block results left-to-right with `reduce(T, T) -> T`, starting
/// from `identity`. The fold order is deterministic (block order), so
/// floating-point reductions are reproducible run-to-run.
template <typename T, typename Map, typename Reduce>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, T identity, Map&& map, Reduce&& reduce) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return identity;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_blocks =
      std::max<std::size_t>(1, static_cast<std::size_t>(pool.concurrency()) * 4);
  const std::size_t block = std::max(grain, (n + max_blocks - 1) / max_blocks);
  const std::size_t num_blocks = (n + block - 1) / block;

  if (num_blocks <= 1 || pool.worker_count() == 0) {
    return reduce(identity, map(begin, end));
  }

  std::vector<T> partial(num_blocks, identity);
  TaskGroup group(pool);
  for (std::size_t k = 0; k < num_blocks; ++k) {
    const std::size_t b = begin + k * block;
    const std::size_t e = std::min(end, b + block);
    group.run([&partial, &map, k, b, e] { partial[k] = map(b, e); });
  }
  group.wait();

  T acc = identity;
  for (const T& p : partial) acc = reduce(acc, p);
  return acc;
}

}  // namespace kdtune
