#pragma once

// From-scratch parallel runtime used by every builder. The paper's
// implementations use OpenMP tasks / parallel-for / critical sections; this
// pool provides the equivalent primitives with an exactly controllable thread
// count (which the virtual-platform experiments rely on).
//
// Deadlock-freedom: waiting on a TaskGroup *helps* — the waiting thread pops
// and executes pending tasks instead of blocking. Recursive fork-join (the
// node-level builder) therefore cannot starve even when every worker is
// waiting on children.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kdtune {

class TaskGroup;

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers in addition to the calling
  /// thread (which participates through TaskGroup::wait). `num_threads == 0`
  /// is valid: everything runs inline on the caller.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (excludes the caller).
  unsigned worker_count() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Total execution width: workers plus the participating caller.
  unsigned concurrency() const noexcept { return worker_count() + 1; }

  /// Runs one pending task on the calling thread. Returns false when the
  /// queue was empty. Public so that TaskGroup waits can help.
  bool try_run_one();

  /// Enqueues a bare task with no completion tracking (fire-and-forget).
  /// Callers that need to wait should go through TaskGroup instead. On a
  /// zero-worker pool the task only runs when somebody calls try_run_one().
  void submit(std::function<void()> task);

  /// Shared default pool sized to the hardware; always has >= 1 worker so
  /// bare submissions make progress even on single-core machines.
  static ThreadPool& global();

 private:
  friend class TaskGroup;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Fork-join scope. Tasks spawned through the group are executed by the pool;
/// wait() participates in execution until all of this group's tasks (including
/// tasks recursively spawned from them) finished. The first exception thrown
/// by any task is captured and rethrown from wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait_noexcept(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawns `fn` onto the pool. If the pool has no workers the task runs
  /// inline immediately (sequential degradation).
  template <typename F>
  void run(F&& fn) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    if (pool_.worker_count() == 0) {
      execute(std::function<void()>(std::forward<F>(fn)));
      return;
    }
    pool_.submit([this, f = std::function<void()>(std::forward<F>(fn))]() mutable {
      execute(std::move(f));
    });
  }

  /// Blocks until every task of this group completed; helps execute pool
  /// tasks while waiting. Rethrows the first captured exception.
  void wait();

  /// Number of tasks not yet completed (approximate; for tests/metrics).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  void execute(std::function<void()> fn);
  void wait_noexcept() noexcept;

  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::mutex err_mutex_;
  std::exception_ptr error_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace kdtune
