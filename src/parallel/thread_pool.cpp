#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"

namespace kdtune {

ThreadPool::ThreadPool(unsigned num_threads) {
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  trace_counter("pool.queue_depth", static_cast<double>(depth), "pool");
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  {
    TraceSpan span("pool.help", "pool");  // ran inline by a helping waiter
    task();
  }
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      TraceSpan span("pool.task", "pool");
      task();
    }
  }
}

ThreadPool& ThreadPool::global() {
  // hardware_concurrency() may report 0 (unknown) or 1 (single core). The
  // naive "cores - 1" sizing then yields a pool with *no* workers, and a bare
  // submit() with no helping TaskGroup waiter would never run. The shared
  // pool therefore always keeps at least one worker; zero-worker pools remain
  // constructible explicitly for the sequential-degradation tests.
  const unsigned hw = std::thread::hardware_concurrency();
  static ThreadPool pool(hw > 1u ? hw - 1u : 1u);
  return pool;
}

void TaskGroup::execute(std::function<void()> fn) {
  try {
    TraceSpan span("pool.group_task", "pool");
    fn();
  } catch (...) {
    std::lock_guard lock(err_mutex_);
    if (!error_) error_ = std::current_exception();
  }
  // The decrement and the wake-up happen under the group mutex. This is not
  // just about lost notifications: a waiter that observes pending_ == 0 may
  // destroy the TaskGroup immediately, so the counter must only reach zero
  // while we hold the mutex, and we must not touch any group member after
  // releasing it. The waiter re-acquires the mutex before returning, which
  // forces it to wait until this unlock.
  std::lock_guard lock(done_mutex_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.notify_all();
  }
}

void TaskGroup::wait() {
  using namespace std::chrono_literals;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (!pool_.try_run_one()) {
      // Nothing to help with: tasks of this group are running on workers.
      std::unique_lock lock(done_mutex_);
      done_cv_.wait_for(lock, 100us, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
  }
  // Synchronize with the last finisher: it decremented to zero while
  // holding done_mutex_, so once we acquire it here the finisher can no
  // longer be inside execute() touching this object, and destruction after
  // wait() is safe.
  { std::lock_guard lock(done_mutex_); }
  std::exception_ptr err;
  {
    std::lock_guard lock(err_mutex_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void TaskGroup::wait_noexcept() noexcept {
  try {
    wait();
  } catch (...) {
    // Destructor path: the exception was already lost to the caller; dropping
    // it here keeps unwinding safe.
  }
}

}  // namespace kdtune
