#pragma once

// Blocked-range parallel for, the OpenMP `parallel for` equivalent the paper's
// nested and in-place builders are written with.

#include <algorithm>
#include <cstddef>

#include "parallel/thread_pool.hpp"

namespace kdtune {

/// Splits [begin, end) into blocks of at least `grain` elements and invokes
/// `body(block_begin, block_end)` for each, in parallel. The calling thread
/// participates. Blocks are sized so there are at most ~4 blocks per unit of
/// concurrency, which keeps scheduling overhead bounded on fine grains.
template <typename Body>
void parallel_for_blocked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain, Body&& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_blocks =
      std::max<std::size_t>(1, static_cast<std::size_t>(pool.concurrency()) * 4);
  const std::size_t block =
      std::max(grain, (n + max_blocks - 1) / max_blocks);
  if (n <= block || pool.worker_count() == 0) {
    body(begin, end);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t b = begin; b < end; b += block) {
    const std::size_t e = std::min(end, b + block);
    group.run([&body, b, e] { body(b, e); });
  }
  group.wait();
}

/// Element-wise parallel for: `body(i)` for i in [begin, end).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Body&& body) {
  parallel_for_blocked(pool, begin, end, grain,
                       [&body](std::size_t b, std::size_t e) {
                         for (std::size_t i = b; i < e; ++i) body(i);
                       });
}

}  // namespace kdtune
