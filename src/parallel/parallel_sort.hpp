#pragma once

// Parallel merge sort over a contiguous range: chunked std::sort followed by a
// log-depth pairwise merge tree. Used to sort SAH events in the nested builder
// (event sorting dominates sequential build time, so parallelizing it is what
// makes intra-node parallelism pay off).

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace kdtune {

template <typename T, typename Compare = std::less<T>>
void parallel_sort(ThreadPool& pool, std::span<T> data, Compare cmp = {}) {
  const std::size_t n = data.size();
  const std::size_t min_chunk = 4096;
  const std::size_t width = pool.concurrency();
  if (n < 2 * min_chunk || width <= 1 || pool.worker_count() == 0) {
    std::sort(data.begin(), data.end(), cmp);
    return;
  }

  // Round chunk count down to a power of two so the merge tree is balanced.
  std::size_t chunks = 1;
  while (chunks * 2 <= width * 2 && n / (chunks * 2) >= min_chunk) chunks *= 2;
  const std::size_t block = (n + chunks - 1) / chunks;

  std::vector<std::size_t> bounds;
  bounds.reserve(chunks + 1);
  for (std::size_t b = 0; b <= n; b += block) bounds.push_back(std::min(b, n));
  if (bounds.back() != n) bounds.push_back(n);

  {
    TaskGroup group(pool);
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      group.run([&, k] {
        std::sort(data.begin() + bounds[k], data.begin() + bounds[k + 1], cmp);
      });
    }
    group.wait();
  }

  // Pairwise merge passes; each pass halves the number of sorted runs.
  std::vector<T> scratch(n);
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(bounds.size() / 2 + 2);
    TaskGroup group(pool);
    std::size_t k = 0;
    for (; k + 2 < bounds.size(); k += 2) {
      const std::size_t lo = bounds[k], mid = bounds[k + 1], hi = bounds[k + 2];
      next.push_back(lo);
      group.run([&, lo, mid, hi] {
        std::merge(data.begin() + lo, data.begin() + mid,
                   data.begin() + mid, data.begin() + hi,
                   scratch.begin() + lo, cmp);
        std::copy(scratch.begin() + lo, scratch.begin() + hi, data.begin() + lo);
      });
    }
    for (; k < bounds.size(); ++k) next.push_back(bounds[k]);
    group.wait();
    bounds = std::move(next);
  }
}

}  // namespace kdtune
