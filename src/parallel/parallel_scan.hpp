#pragma once

// Chunked three-phase exclusive prefix sum — the core of Choi et al.'s nested
// and in-place builders ("a sequence of parallel prefix operations"): phase 1
// sums each chunk in parallel, phase 2 scans the chunk totals sequentially
// (this serialization is inherent, as the paper notes), phase 3 writes the
// offset prefix values in parallel.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace kdtune {

/// out[i] = init + sum(in[0..i)). `in` and `out` may alias element-for-element
/// (same span) because each output slot is written after its input is read
/// within the same chunk pass.
template <typename T>
void parallel_exclusive_scan(ThreadPool& pool, std::span<const T> in,
                             std::span<T> out, T init = T{}) {
  const std::size_t n = in.size();
  if (out.size() != n) throw std::invalid_argument("scan: size mismatch");
  if (n == 0) return;

  const std::size_t chunks =
      std::max<std::size_t>(1, std::min<std::size_t>(
          static_cast<std::size_t>(pool.concurrency()) * 4, n));
  const std::size_t block = (n + chunks - 1) / chunks;
  const std::size_t num_chunks = (n + block - 1) / block;

  if (num_chunks <= 1 || pool.worker_count() == 0) {
    T acc = init;
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];
      out[i] = acc;
      acc = acc + v;
    }
    return;
  }

  // Phase 1: per-chunk totals.
  std::vector<T> chunk_sum(num_chunks, T{});
  {
    TaskGroup group(pool);
    for (std::size_t k = 0; k < num_chunks; ++k) {
      const std::size_t b = k * block;
      const std::size_t e = std::min(n, b + block);
      group.run([&, k, b, e] {
        T acc{};
        for (std::size_t i = b; i < e; ++i) acc = acc + in[i];
        chunk_sum[k] = acc;
      });
    }
    group.wait();
  }

  // Phase 2: sequential scan over chunk totals (the serialized step).
  std::vector<T> chunk_offset(num_chunks);
  T acc = init;
  for (std::size_t k = 0; k < num_chunks; ++k) {
    chunk_offset[k] = acc;
    acc = acc + chunk_sum[k];
  }

  // Phase 3: per-chunk exclusive scan seeded with the chunk offset.
  {
    TaskGroup group(pool);
    for (std::size_t k = 0; k < num_chunks; ++k) {
      const std::size_t b = k * block;
      const std::size_t e = std::min(n, b + block);
      group.run([&, k, b, e] {
        T local = chunk_offset[k];
        for (std::size_t i = b; i < e; ++i) {
          const T v = in[i];
          out[i] = local;
          local = local + v;
        }
      });
    }
    group.wait();
  }
}

/// Total of `in` plus scan: convenience overload returning the inclusive sum
/// (== the offset one past the end), which partition-style callers need.
template <typename T>
T parallel_exclusive_scan_total(ThreadPool& pool, std::span<const T> in,
                                std::span<T> out, T init = T{}) {
  parallel_exclusive_scan(pool, in, out, init);
  if (in.empty()) return init;
  return out[in.size() - 1] + in[in.size() - 1];
}

}  // namespace kdtune
