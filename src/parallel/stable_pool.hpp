#pragma once

// Append-only storage with stable addresses and lock-free reads, used by the
// lazy kd-tree: ray-casting threads read nodes while expansion appends new
// subtrees. Elements live in fixed-size blocks; the block pointer table is
// preallocated at construction, so readers never observe a reallocation.
// Appends serialize on an internal mutex (expansion is already serialized by
// the tree's critical section, matching the paper's OpenMP critical).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace kdtune {

template <typename T>
class StablePool {
 public:
  static constexpr std::size_t kBlockSize = 4096;

  /// `capacity` bounds the total number of elements ever stored; it only
  /// costs one pointer per 4096 elements up front.
  explicit StablePool(std::size_t capacity)
      : capacity_(capacity),
        blocks_((capacity + kBlockSize - 1) / kBlockSize) {}

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Lock-free read. `i` must be < size() as observed by this thread
  /// (publication of new indices is the caller's responsibility — the lazy
  /// tree publishes via the parent node's flags).
  const T& operator[](std::size_t i) const noexcept {
    return blocks_[i / kBlockSize].load(std::memory_order_acquire)[i % kBlockSize];
  }

  T& operator[](std::size_t i) noexcept {
    return blocks_[i / kBlockSize].load(std::memory_order_acquire)[i % kBlockSize];
  }

  /// Appends `count` default-constructed elements, returning the first index.
  /// Throws std::length_error when the fixed capacity would be exceeded.
  std::size_t append(std::size_t count) {
    std::lock_guard lock(mutex_);
    const std::size_t start = size_.load(std::memory_order_relaxed);
    if (start + count > capacity_) {
      throw std::length_error("StablePool: capacity exceeded");
    }
    const std::size_t last_block = (start + count + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = allocated_blocks_; b < last_block; ++b) {
      blocks_[b].store(new T[kBlockSize](), std::memory_order_release);
    }
    allocated_blocks_ = std::max(allocated_blocks_, last_block);
    size_.store(start + count, std::memory_order_release);
    return start;
  }

  ~StablePool() {
    for (std::size_t b = 0; b < allocated_blocks_; ++b) {
      delete[] blocks_[b].load(std::memory_order_relaxed);
    }
  }

  StablePool(const StablePool&) = delete;
  StablePool& operator=(const StablePool&) = delete;

 private:
  std::size_t capacity_;
  std::vector<std::atomic<T*>> blocks_;
  std::atomic<std::size_t> size_{0};
  std::size_t allocated_blocks_ = 0;
  std::mutex mutex_;
};

}  // namespace kdtune
