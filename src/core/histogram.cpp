#include "core/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace kdtune {

int LogHistogram::index_of(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int octave = std::bit_width(value) - 1;  // floor(log2(value)) >= 2
  const int sub =
      static_cast<int>((value >> (octave - kSubBits)) & (kSubBuckets - 1));
  return (octave - 1) * kSubBuckets + sub;
}

std::uint64_t LogHistogram::bucket_lower(int index) noexcept {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int octave = index / kSubBuckets + 1;
  const int sub = index % kSubBuckets;
  return (std::uint64_t{1} << octave) +
         (static_cast<std::uint64_t>(sub) << (octave - kSubBits));
}

std::uint64_t LogHistogram::bucket_upper(int index) noexcept {
  if (index + 1 >= kBucketCount) return ~std::uint64_t{0};
  return bucket_lower(index + 1) - 1;
}

void LogHistogram::record(std::uint64_t value) noexcept {
  buckets_[static_cast<std::size_t>(index_of(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void LogHistogram::record_seconds(double seconds) noexcept {
  if (!(seconds > 0.0)) {  // negatives and NaN clamp to 0
    record(0);
    return;
  }
  const double ns = seconds * 1e9;
  constexpr double kMax = 1.8e19;  // < 2^64, saturate beyond
  record(ns >= kMax ? ~std::uint64_t{0} : static_cast<std::uint64_t>(ns));
}

std::uint64_t LogHistogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~std::uint64_t{0} && count() == 0 ? 0 : v;
}

std::uint64_t LogHistogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double LogHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

std::uint64_t LogHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil): the value such that at least
  // ceil(q * n) samples are <= it.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(n) - 1e-9)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate inside the bucket by the rank's position within it.
      const std::uint64_t lo = bucket_lower(i);
      const std::uint64_t hi = bucket_upper(i);
      const double frac =
          c <= 1 ? 0.0
                 : static_cast<double>(rank - seen - 1) /
                       static_cast<double>(c - 1);
      // Compute the offset in uint64 and cap it at the bucket span: the
      // span as a double rounds *up* for the top octaves (e.g. the last
      // bucket spans 2^61 - 1 but rounds to 2^61), so `lo + offset` could
      // wrap past UINT64_MAX and collapse a top-bucket quantile to min().
      const std::uint64_t span = hi - lo;
      std::uint64_t offset =
          static_cast<std::uint64_t>(static_cast<double>(span) * frac);
      if (offset > span) offset = span;
      const std::uint64_t v = lo + offset;
      return std::clamp(v, min(), max());
    }
    seen += c;
  }
  return max();
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          c, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  if (other.count() != 0) {
    std::uint64_t v = other.min_.load(std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen && !min_.compare_exchange_weak(seen, v,
                                                   std::memory_order_relaxed)) {
    }
    v = other.max_.load(std::memory_order_relaxed);
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v,
                                                   std::memory_order_relaxed)) {
    }
  }
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string LogHistogram::to_json(double scale) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"min\": %.3f, \"mean\": %.3f, "
                "\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f}",
                static_cast<unsigned long long>(count()),
                static_cast<double>(min()) * scale, mean() * scale,
                static_cast<double>(quantile(0.5)) * scale,
                static_cast<double>(quantile(0.9)) * scale,
                static_cast<double>(quantile(0.99)) * scale,
                static_cast<double>(max()) * scale);
  return buf;
}

}  // namespace kdtune
