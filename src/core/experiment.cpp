#include "core/experiment.hpp"

#include <algorithm>

namespace kdtune {

namespace {

/// The frame an iteration renders: dynamic scenes advance every
/// `frame_repeat` iterations and wrap around; static scenes always render
/// frame 0.
std::size_t frame_for_iteration(const AnimatedScene& scene,
                                std::size_t iteration,
                                std::size_t frame_repeat) {
  if (scene.frame_count() <= 1) return 0;
  const std::size_t step = std::max<std::size_t>(1, frame_repeat);
  return (iteration / step) % scene.frame_count();
}

}  // namespace

StrategyFactory nelder_mead_factory() {
  return [](std::uint64_t seed) {
    NelderMeadOptions opts;
    opts.seed = seed;
    return make_nelder_mead_search(opts);
  };
}

TuningRun run_tuning_experiment(Algorithm algorithm, const AnimatedScene& scene,
                                ThreadPool& pool, const ExperimentOptions& opts,
                                const StrategyFactory& strategy_factory) {
  const StrategyFactory factory =
      strategy_factory ? strategy_factory : nelder_mead_factory();

  PipelineOptions popts;
  popts.width = opts.width;
  popts.height = opts.height;
  popts.tuner = opts.tuner;
  popts.strategy = factory(opts.seed);
  TunedPipeline pipeline(algorithm, pool, std::move(popts));

  TuningRun run;
  run.scene = scene.name();
  run.algorithm = std::string(to_string(algorithm));

  // Scene frames are pre-generated so per-frame geometry synthesis never
  // pollutes the timing (the paper measures construction + rendering only).
  std::vector<Scene> frames;
  frames.reserve(scene.frame_count());
  for (std::size_t f = 0; f < scene.frame_count(); ++f) {
    frames.push_back(scene.frame(f));
  }

  std::size_t post = 0;
  std::size_t iteration = 0;
  bool noted_convergence = false;
  while (iteration < opts.max_iterations + opts.post_convergence) {
    const std::size_t frame =
        frame_for_iteration(scene, iteration, opts.frame_repeat);
    const FrameReport report = pipeline.render_frame(frames[frame]);

    IterationSample sample;
    sample.iteration = iteration;
    sample.frame = frame;
    sample.seconds = report.total_seconds;
    sample.build_seconds = report.build_seconds;
    sample.render_seconds = report.render_seconds;
    sample.values = {report.config.ci, report.config.cb, report.config.s};
    if (algorithm == Algorithm::kLazy) sample.values.push_back(report.config.r);
    sample.after_convergence = report.tuner_converged;
    run.samples.push_back(sample);

    ++iteration;
    if (pipeline.tuner().converged()) {
      if (!noted_convergence) {
        noted_convergence = true;
        run.iterations_to_convergence = iteration;
      }
      if (++post >= opts.post_convergence) break;
    }
  }
  if (!noted_convergence) run.iterations_to_convergence = iteration;

  run.tuned_values = pipeline.tuner().best_values();
  run.tuned_config = pipeline.best_config();

  // Tuned/base medians over the same frame schedule.
  const std::size_t eval_samples = std::max<std::size_t>(opts.base_samples, 3);
  run.tuned_median = measure_config_median(algorithm, scene, run.tuned_config,
                                           pool, opts, eval_samples);
  run.base_median = measure_config_median(algorithm, scene, kBaseConfig, pool,
                                          opts, eval_samples);
  return run;
}

std::vector<double> measure_config_times(Algorithm algorithm,
                                         const AnimatedScene& scene,
                                         const BuildConfig& config,
                                         ThreadPool& pool,
                                         const ExperimentOptions& opts,
                                         std::size_t samples) {
  PipelineOptions popts;
  popts.width = opts.width;
  popts.height = opts.height;
  TunedPipeline pipeline(algorithm, pool, std::move(popts));

  std::vector<Scene> frames;
  frames.reserve(scene.frame_count());
  for (std::size_t f = 0; f < scene.frame_count(); ++f) {
    frames.push_back(scene.frame(f));
  }

  std::vector<double> times;
  times.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t frame = frame_for_iteration(scene, i, opts.frame_repeat);
    const FrameReport report =
        pipeline.render_frame_with(frames[frame], config);
    times.push_back(report.total_seconds);
  }
  return times;
}

double measure_config_median(Algorithm algorithm, const AnimatedScene& scene,
                             const BuildConfig& config, ThreadPool& pool,
                             const ExperimentOptions& opts,
                             std::size_t samples) {
  const std::vector<double> times =
      measure_config_times(algorithm, scene, config, pool, opts, samples);
  return compute_stats(times).median;
}

}  // namespace kdtune
