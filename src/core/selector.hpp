#pragma once

// Algorithm selection — the open question the paper's conclusion raises: which
// *algorithm* is best for a given scene and machine is a nominal parameter
// with no notion of distance or direction, so it cannot live inside the
// Nelder-Mead search. This implements the strategy the paper suggests as the
// baseline: optimize one algorithm after another, then pick the best.
//
// The selector owns one TunedPipeline per algorithm. It tunes them in
// sequence (each gets a frame budget, ending early on convergence), then
// routes every further frame to the winner, whose tuner keeps running online
// (so drift re-tuning still works after selection).

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "core/pipeline.hpp"

namespace kdtune {

struct SelectorOptions {
  int width = 160;
  int height = 120;
  /// Maximum tuning frames granted to each algorithm's pipeline.
  std::size_t frames_per_algorithm = 60;
  TunerOptions tuner{};
  TuningRanges ranges{};
};

class AlgorithmSelector {
 public:
  AlgorithmSelector(ThreadPool& pool, SelectorOptions opts = {});

  /// Renders one frame through the pipeline currently under evaluation (or
  /// the selected winner once selection finished).
  FrameReport render_frame(const Scene& scene, Framebuffer* fb = nullptr);

  /// True once every algorithm had its tuning phase.
  bool selection_done() const noexcept { return phase_ >= candidates_.size(); }

  /// The algorithm currently being evaluated, or the winner when done.
  Algorithm current() const noexcept;

  /// The winner; only meaningful when selection_done().
  Algorithm selected() const;

  /// Best measured frame time per algorithm (infinity if not yet evaluated).
  std::vector<std::pair<Algorithm, double>> standings() const;

  const TunedPipeline& pipeline(Algorithm a) const;
  TunedPipeline& pipeline(Algorithm a);

 private:
  struct Candidate {
    Algorithm algorithm;
    std::unique_ptr<TunedPipeline> pipeline;
    std::size_t frames = 0;
  };

  Candidate& candidate(Algorithm a);
  void maybe_advance_phase();

  SelectorOptions opts_;
  std::vector<Candidate> candidates_;
  std::size_t phase_ = 0;  ///< index of the candidate being tuned
  std::optional<Algorithm> selected_;
};

}  // namespace kdtune
