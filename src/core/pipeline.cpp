#include "core/pipeline.hpp"

#include "kdtree/lazy_tree.hpp"
#include "tuning/measurement.hpp"

namespace kdtune {

TunedPipeline::TunedPipeline(Algorithm algorithm, ThreadPool& pool,
                             PipelineOptions opts)
    : algorithm_(algorithm), pool_(pool), opts_(std::move(opts)),
      builder_(make_builder(algorithm)),
      tuner_(std::move(opts_.strategy), opts_.tuner) {
  register_build_parameters(tuner_, config_, algorithm_, opts_.ranges);
}

FrameReport TunedPipeline::run_once(const Scene& scene,
                                    const BuildConfig& config,
                                    Framebuffer* fb) {
  FrameReport report;
  report.config = config;

  Framebuffer local(opts_.width, opts_.height);
  Framebuffer& target = fb != nullptr ? *fb : local;
  const Camera camera(scene.camera(), target.width(), target.height());

  Stopwatch clock;
  clock.start();
  const std::unique_ptr<KdTreeBase> tree =
      builder_->build(scene.triangles(), config, pool_);
  report.build_seconds = clock.elapsed();

  clock.start();
  render(*tree, scene, camera, target, pool_, opts_.render);
  report.render_seconds = clock.elapsed();
  report.total_seconds = report.build_seconds + report.render_seconds;

  report.tree = tree->stats();
  if (const auto* lazy = dynamic_cast<const LazyKdTree*>(tree.get())) {
    report.lazy_expansions = lazy->expansions();
  }
  return report;
}

FrameReport TunedPipeline::render_frame(const Scene& scene, Framebuffer* fb) {
  const bool converged_before = tuner_.converged();
  // apply_next() writes the configuration under test into config_; the
  // measurement handed to the tuner defaults to the sum t_c + t_r (the
  // paper's m_a), or one of the components per the configured objective.
  tuner_.apply_next();
  FrameReport report = run_once(scene, config_, fb);
  report.tuner_converged = converged_before;
  switch (opts_.objective) {
    case TuningObjective::kTotalTime:
      tuner_.record(report.total_seconds);
      break;
    case TuningObjective::kBuildTime:
      tuner_.record(report.build_seconds);
      break;
    case TuningObjective::kRenderTime:
      tuner_.record(report.render_seconds);
      break;
  }
  return report;
}

FrameReport TunedPipeline::render_frame_with(const Scene& scene,
                                             const BuildConfig& config,
                                             Framebuffer* fb) {
  return run_once(scene, config, fb);
}

void TunedPipeline::warm_start(const BuildConfig& config) {
  std::vector<std::int64_t> values{config.ci, config.cb, config.s};
  if (algorithm_ == Algorithm::kLazy) values.push_back(config.r);
  tuner_.warm_start(values);
}

BuildConfig TunedPipeline::best_config() const {
  const std::vector<std::int64_t> values = tuner_.best_values();
  BuildConfig best;
  best.ci = values[0];
  best.cb = values[1];
  best.s = values[2];
  if (values.size() > 3) best.r = values[3];
  return best;
}

}  // namespace kdtune
