#pragma once

// Experiment runner shared by the per-figure benchmark binaries. It
// reproduces the paper's protocol (§V-C): a single experiment constructs the
// kd-tree for each frame of a scene with the current configuration and
// renders it, the autotuner measuring total time and choosing the next
// configuration; static scenes iterate until convergence, dynamic scenes
// repeat every frame 5x; speedups compare the tuned configuration's time to
// C_base on the same frames.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "scene/animation.hpp"
#include "tuning/measurement.hpp"

namespace kdtune {

struct ExperimentOptions {
  int width = 96;
  int height = 72;
  /// Scene detail (1.0 = the paper's triangle counts; benches default lower
  /// so the full grid of experiments completes in CI time).
  float detail = 0.35f;
  /// Upper bound on tuning iterations (frames); tuning may converge earlier.
  std::size_t max_iterations = 80;
  /// Extra iterations measured after convergence (the converged plateau of
  /// Fig. 8, and the sample the tuned-time median is computed from).
  std::size_t post_convergence = 8;
  /// Dynamic scenes: every frame is repeated this many times (paper: 5).
  std::size_t frame_repeat = 5;
  /// Measurements of C_base the baseline median is computed from.
  std::size_t base_samples = 8;
  std::uint64_t seed = 0x5EEDu;
  TunerOptions tuner{};
};

struct IterationSample {
  std::size_t iteration = 0;
  std::size_t frame = 0;  ///< animation frame the iteration rendered
  double seconds = 0.0;
  double build_seconds = 0.0;
  double render_seconds = 0.0;
  std::vector<std::int64_t> values;  ///< parameter values used
  bool after_convergence = false;
};

struct TuningRun {
  std::string scene;
  std::string algorithm;
  std::vector<IterationSample> samples;
  std::vector<std::int64_t> tuned_values;  ///< best configuration found
  BuildConfig tuned_config;
  double tuned_median = 0.0;  ///< median frame time at the tuned config
  double base_median = 0.0;   ///< median frame time at C_base
  std::size_t iterations_to_convergence = 0;

  double speedup() const noexcept {
    return tuned_median > 0.0 ? base_median / tuned_median : 0.0;
  }
};

/// Factory so each repetition gets a fresh strategy (seeded differently).
using StrategyFactory =
    std::function<std::unique_ptr<SearchStrategy>(std::uint64_t seed)>;

/// Default: the paper's random-sampling-seeded Nelder-Mead.
StrategyFactory nelder_mead_factory();

/// Runs one full tuning experiment of `algorithm` on `scene`.
TuningRun run_tuning_experiment(Algorithm algorithm,
                                const AnimatedScene& scene,
                                ThreadPool& pool, const ExperimentOptions& opts,
                                const StrategyFactory& strategy_factory = {});

/// Median frame time of a pinned configuration over `samples` frames of the
/// scene (cycling through its animation).
double measure_config_median(Algorithm algorithm, const AnimatedScene& scene,
                             const BuildConfig& config, ThreadPool& pool,
                             const ExperimentOptions& opts,
                             std::size_t samples);

/// All frame times of a pinned configuration (Fig. 9 needs distributions).
std::vector<double> measure_config_times(Algorithm algorithm,
                                         const AnimatedScene& scene,
                                         const BuildConfig& config,
                                         ThreadPool& pool,
                                         const ExperimentOptions& opts,
                                         std::size_t samples);

}  // namespace kdtune
