#include "core/table_io.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace kdtune {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]))
         << (c < cells.size() ? cells[c] : "") << " | ";
    }
    os << '\n';
  };
  line(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void print_banner(const std::string& title, std::ostream& os) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace kdtune
