#pragma once

// Log-bucket histogram — the serving layer's latency/occupancy metric.
//
// Values (unsigned integers; latencies are recorded in nanoseconds) land in
// logarithmically spaced buckets: 4 sub-buckets per power of two, HDR-style,
// so relative quantile error is bounded by one sub-bucket (~19%) across the
// full 64-bit range with a fixed 256-slot table and no allocation. Recording
// is a single relaxed atomic increment, safe from any number of threads
// concurrently; quantile/merge/json readers see a (possibly slightly stale)
// consistent-enough snapshot, which is all a metrics endpoint needs.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace kdtune {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave.
  static constexpr int kSubBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Highest index is for value 2^64-1: (63 - 1) * 4 + 3 = 251.
  static constexpr int kBucketCount = 252;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Thread-safe, lock-free.
  void record(std::uint64_t value) noexcept;

  /// Records a duration in seconds as integer nanoseconds (negative clamps
  /// to 0; overflow saturates). Thread-safe.
  void record_seconds(double seconds) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t min() const noexcept;  ///< 0 when empty
  std::uint64_t max() const noexcept;  ///< 0 when empty
  double mean() const noexcept;        ///< 0 when empty

  /// Value at quantile q in [0, 1] (0.5 = median, 0.99 = p99), linearly
  /// interpolated inside the winning bucket and clamped to the observed
  /// min/max. 0 when empty.
  std::uint64_t quantile(double q) const noexcept;

  /// quantile() on a nanosecond-recorded histogram, in seconds.
  double quantile_seconds(double q) const noexcept {
    return static_cast<double>(quantile(q)) * 1e-9;
  }
  double mean_seconds() const noexcept { return mean() * 1e-9; }

  /// Adds `other`'s counts into this histogram (per-shard merge).
  void merge(const LogHistogram& other) noexcept;

  void reset() noexcept;

  /// {"count":N,"min":..,"mean":..,"p50":..,"p90":..,"p99":..,"max":..}
  /// with values scaled by `scale` (e.g. 1e-3 to report ns as us).
  std::string to_json(double scale = 1.0) const;

  /// Bucket geometry, exposed for the tests.
  static int index_of(std::uint64_t value) noexcept;
  static std::uint64_t bucket_lower(int index) noexcept;
  static std::uint64_t bucket_upper(int index) noexcept;  ///< inclusive

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace kdtune
