#pragma once

// Differential fuzz harness: one seeded case generates a random scene and a
// random BuildConfig drawn from the paper's Table II ranges, builds the same
// geometry with every builder (the five tuned algorithms plus the three
// sequential references), re-emits the eager tree into the compact serving
// layout, builds the BVH baseline, and then checks that every implementation
// agrees with a brute-force oracle — *exactly*, not approximately — on
// closest-hit, any-hit, range, nearest, k-nearest and closest-point-within-
// radius queries. The lazy tree is probed twice: once fresh (queries racing
// first-touch expansion of its own deferred subtrees) and once after
// expand_all().
//
// Exactness is well-defined because every implementation shares the same
// per-triangle primitives (Möller-Trumbore, closest_point_on_triangle,
// clipped_bounds): for a given ray and triangle the computed t is bit
// identical no matter which tree found the pair, so the minimum over the
// soup is bit identical too. Distance ties break toward the lowest triangle
// id in every tree and in the oracles (KnnCollector's contract), so even the
// winning ids — including full k-NN result lists — compare bit-exactly.
//
// Shared by tests/test_differential_fuzz.cpp (a ctest-sized seed sweep) and
// tools/kdtune_fuzz.cpp (the standalone driver CI uses for 500+ cases).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kdtune {

struct DifferentialOptions {
  std::size_t max_triangles = 260;  ///< scene size cap (min stays small)
  int rays = 24;                    ///< closest-hit + any-hit probes
  int boxes = 8;                    ///< range-query probes
  int points = 8;                   ///< nearest-neighbor probes
  int knn_points = 8;               ///< k-NN + closest-point-radius probes
  int post_expand_rays = 8;         ///< re-probes after lazy expand_all()
};

/// Default options, scaled down when the KDTUNE_CI_SMALL environment
/// variable is set (the sanitizer CI jobs use this: TSan is ~10x slower).
DifferentialOptions differential_default_options();

/// True when KDTUNE_CI_SMALL is set to anything but "" or "0".
bool kdtune_ci_small() noexcept;

struct DifferentialResult {
  std::size_t queries = 0;  ///< individual probe comparisons executed
  std::vector<std::string> disagreements;  ///< empty = every query agreed

  bool ok() const noexcept { return disagreements.empty(); }
};

/// Runs one seeded (scene, config) case. Deterministic: the same seed and
/// options always generate the same geometry, configuration and probes.
DifferentialResult run_differential_case(
    std::uint64_t seed, const DifferentialOptions& opts = {});

}  // namespace kdtune
