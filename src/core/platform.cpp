#include "core/platform.hpp"

namespace kdtune {

std::vector<Platform> paper_platforms() {
  return {
      {"opteron24", 24, "dual AMD Opteron 6168, 24 cores @ 1.9 GHz"},
      {"xeon8", 8, "Intel Xeon E5-1620, 4 cores / 8 threads @ 3.7 GHz"},
      {"i7_8", 8, "Intel i7-4770K, 4 cores / 8 threads @ 3.5 GHz"},
      {"a8_4", 4, "AMD A8-4500M, 4 cores @ 1.9 GHz"},
  };
}

Platform opteron_platform() { return paper_platforms().front(); }

}  // namespace kdtune
