#include "core/platform.hpp"

#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace kdtune {

std::vector<Platform> paper_platforms() {
  return {
      {"opteron24", 24, "dual AMD Opteron 6168, 24 cores @ 1.9 GHz"},
      {"xeon8", 8, "Intel Xeon E5-1620, 4 cores / 8 threads @ 3.7 GHz"},
      {"i7_8", 8, "Intel i7-4770K, 4 cores / 8 threads @ 3.5 GHz"},
      {"a8_4", 4, "AMD A8-4500M, 4 cores @ 1.9 GHz"},
  };
}

Platform opteron_platform() { return paper_platforms().front(); }

unsigned host_core_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned host_cache_line_bytes() noexcept {
#if defined(_SC_LEVEL1_DCACHE_LINESIZE)
  const long reported = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (reported > 0) return static_cast<unsigned>(reported);
#endif
  return 64;
}

}  // namespace kdtune
