#pragma once

// TunedPipeline — the paper's Fig. 4 workflow as a reusable component: per
// frame, the tuner's measurement cycle wraps kd-tree construction plus
// rendering (m = t_c + t_r), and the tuner writes the next configuration into
// the BuildConfig before the next frame. This is the public entry point for
// applications that want an autotuned kd-tree ray caster.

#include <memory>
#include <optional>

#include "core/base_config.hpp"
#include "kdtree/builder.hpp"
#include "render/framebuffer.hpp"
#include "render/raycaster.hpp"
#include "scene/scene.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {

/// What the tuner minimizes. The paper's objective is the full frame time
/// m = t_c + t_r; build-only suits offline bakes (minimize construction,
/// ignore query quality), render-only suits build-once/query-forever uses.
enum class TuningObjective { kTotalTime, kBuildTime, kRenderTime };

struct PipelineOptions {
  int width = 160;
  int height = 120;
  TuningRanges ranges{};
  TunerOptions tuner{};
  RenderOptions render{};
  TuningObjective objective = TuningObjective::kTotalTime;
  /// nullptr selects the default Nelder-Mead strategy.
  std::unique_ptr<SearchStrategy> strategy{};
};

struct FrameReport {
  double build_seconds = 0.0;
  double render_seconds = 0.0;
  double total_seconds = 0.0;   ///< t_c + t_r, what the tuner measures
  BuildConfig config;           ///< configuration this frame ran with
  TreeStats tree;
  std::size_t lazy_expansions = 0;  ///< lazy algorithm only
  bool tuner_converged = false;     ///< state *before* this measurement
};

class TunedPipeline {
 public:
  TunedPipeline(Algorithm algorithm, ThreadPool& pool,
                PipelineOptions opts = {});

  /// Builds the tree for `scene` with the configuration under test, renders
  /// into `fb` (sized per options), reports the time to the tuner, and
  /// applies the next configuration. `fb == nullptr` renders into an
  /// internal buffer.
  FrameReport render_frame(const Scene& scene, Framebuffer* fb = nullptr);

  /// One frame with a *pinned* configuration, bypassing the tuner — used to
  /// measure C_base baselines and tuned-config validation runs.
  FrameReport render_frame_with(const Scene& scene, const BuildConfig& config,
                                Framebuffer* fb = nullptr);

  Algorithm algorithm() const noexcept { return algorithm_; }
  const Tuner& tuner() const noexcept { return tuner_; }
  Tuner& tuner() noexcept { return tuner_; }
  const BuildConfig& config() const noexcept { return config_; }

  /// Best configuration found so far as a BuildConfig.
  BuildConfig best_config() const;

  /// Seeds the tuner with a known-good configuration (e.g. a ConfigCache hit
  /// from a previous run). Call before the first render_frame().
  void warm_start(const BuildConfig& config);

 private:
  FrameReport run_once(const Scene& scene, const BuildConfig& config,
                       Framebuffer* fb);

  Algorithm algorithm_;
  ThreadPool& pool_;
  PipelineOptions opts_;
  std::unique_ptr<Builder> builder_;
  BuildConfig config_;  ///< tuner-owned parameter storage
  Tuner tuner_;
};

}  // namespace kdtune
