#include "core/differential.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "bvh/bvh.hpp"
#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"
#include "geom/rng.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/compact_tree.hpp"
#include "kdtree/knn.hpp"
#include "kdtree/lazy_tree.hpp"
#include "kdtree/wide_tree.hpp"
#include "parallel/thread_pool.hpp"
#include "shard/sharded_tree.hpp"

namespace kdtune {

namespace {

// Random soup generator. Shapes stress different tree pathologies: uniform
// clouds, outlier clusters (huge empty-space cutoffs), flat sheets (one axis
// never splits usefully), elongated tubes, mixed scales, an axis-aligned
// grid whose coplanar geometry produces exact SAH-plane and hit-distance
// ties — the case where "agree approximately" would hide real divergence —
// and degenerate-input corner cases (empty soup, a single triangle,
// all-coincident copies) where a partitioning builder can loop or emit an
// unbalanced tree instead of terminating in a leaf.
std::vector<Triangle> generate_geometry(Rng& rng,
                                        const DifferentialOptions& opts) {
  const int shape = static_cast<int>(rng.next_int(0, 6));
  if (shape == 6) {
    const int corner = static_cast<int>(rng.next_int(0, 3));
    if (corner == 0) return {};  // empty soup
    const Triangle one{{rng.uniform(-2, 2), rng.uniform(-2, 2), 0.0f},
                       {rng.uniform(0.2f, 1.0f), 0.5f, 0.1f},
                       {0.3f, rng.uniform(0.2f, 1.0f), -0.1f}};
    if (corner == 1) return {one};  // single triangle
    // All-coincident primitives: identical copies (corner 2) or copies with
    // one jittered vertex sharing a centroid cluster (corner 3). Every
    // split plane a builder can try straddles everything.
    const std::size_t n =
        static_cast<std::size_t>(rng.next_int(9, 64));
    std::vector<Triangle> tris(n, one);
    if (corner == 3) {
      for (std::size_t i = 0; i < n; ++i) {
        tris[i].c.z += 0.001f * static_cast<float>(i % 3);
      }
    }
    return tris;
  }
  const std::size_t n = static_cast<std::size_t>(
      rng.next_int(2, static_cast<std::int64_t>(opts.max_triangles)));
  std::vector<Triangle> tris;
  tris.reserve(n);

  if (shape == 5) {
    // Axis-aligned grid of quads in the z = const planes.
    const int cols = static_cast<int>(rng.next_int(2, 8));
    for (std::size_t i = 0; i < n; ++i) {
      const int cell = static_cast<int>(i / 2);
      const float x = static_cast<float>(cell % cols);
      const float y = static_cast<float>((cell / cols) % cols);
      const float z = static_cast<float>(cell / (cols * cols));
      if (i % 2 == 0) {
        tris.push_back({{x, y, z}, {x + 1, y, z}, {x, y + 1, z}});
      } else {
        tris.push_back({{x + 1, y + 1, z}, {x, y + 1, z}, {x + 1, y, z}});
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 base;
      float scale = 0.4f;
      switch (shape) {
        case 0:
          base = {rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3)};
          break;
        case 1:
          if (i % 10 == 0) {
            base = {rng.uniform(-20, 20), rng.uniform(-20, 20),
                    rng.uniform(-20, 20)};
          } else {
            base = {rng.uniform(-0.5f, 0.5f), rng.uniform(-0.5f, 0.5f),
                    rng.uniform(-0.5f, 0.5f)};
          }
          break;
        case 2:
          base = {rng.uniform(-5, 5), rng.uniform(-5, 5),
                  rng.uniform(-0.01f, 0.01f)};
          scale = 0.6f;
          break;
        case 3:
          base = {rng.uniform(-50, 50), rng.uniform(-1, 1),
                  rng.uniform(-1, 1)};
          break;
        default:
          base = {rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
          scale = rng.next_float() < 0.3f ? 3.0f : 0.02f;
          break;
      }
      tris.push_back(
          {base,
           base + Vec3{rng.uniform(-scale, scale), rng.uniform(-scale, scale),
                       rng.uniform(-scale, scale)},
           base + Vec3{rng.uniform(-scale, scale), rng.uniform(-scale, scale),
                       rng.uniform(-scale, scale)}});
    }
  }

  // Degenerates must be skipped identically by every builder and by the
  // brute-force oracles below.
  if (n > 10) {
    tris[n / 2] = {tris[0].a, tris[0].a, tris[0].a};
  }
  return tris;
}

// A random point of the paper's Table II search space, plus the non-tuned
// build controls the ablations sweep.
BuildConfig generate_config(Rng& rng) {
  BuildConfig config;
  config.ci = rng.next_int(3, 101);
  config.cb = rng.next_int(0, 60);
  config.s = rng.next_int(1, 8);
  config.r = 16ll << rng.next_int(0, 9);
  config.bin_count = static_cast<int>(rng.next_int(4, 64));
  config.empty_bonus = rng.next_float() < 0.5f ? 0.0 : rng.next_double() * 0.9;
  config.clip_straddlers = rng.next_float() < 0.8f;
  if (rng.next_float() < 0.2f) {
    config.max_depth = static_cast<int>(rng.next_int(2, 96));
  }
  return config;
}

struct Impl {
  std::string name;
  /// shared, not unique: the wide backends alias one compact source tree.
  std::shared_ptr<KdTreeBase> tree;
};

Ray random_ray(Rng& rng, const AABB& box) {
  if (rng.next_float() < 0.25f) {
    // Axis-aligned ray: exercises the NaN split-plane traversal path and
    // exact near/far tie-breaks against axis-aligned geometry.
    const int axis = static_cast<int>(rng.next_int(0, 2));
    Vec3 origin{rng.uniform(box.lo.x, box.hi.x),
                rng.uniform(box.lo.y, box.hi.y),
                rng.uniform(box.lo.z, box.hi.z)};
    Vec3 dir{0, 0, 0};
    const bool positive = rng.next_float() < 0.5f;
    dir[static_cast<Axis>(axis)] = positive ? 1.0f : -1.0f;
    origin[static_cast<Axis>(axis)] =
        positive ? box.lo[static_cast<Axis>(axis)] - 1.0f
                 : box.hi[static_cast<Axis>(axis)] + 1.0f;
    return Ray(origin, dir);
  }
  const Vec3 origin =
      box.center() + normalized(Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                     rng.uniform(-1, 1)}) *
                         (length(box.extent()) * 0.8f + 1.0f);
  const Vec3 target{rng.uniform(box.lo.x, box.hi.x),
                    rng.uniform(box.lo.y, box.hi.y),
                    rng.uniform(box.lo.z, box.hi.z)};
  Vec3 dir = target - origin;
  if (length(dir) == 0.0f) dir = {1, 0, 0};
  return Ray(origin, normalized(dir));
}

AABB random_box(Rng& rng, const AABB& bounds) {
  const Vec3 ext = bounds.extent();
  const float pad = 0.25f * length(ext) + 0.5f;
  const auto coord = [&](float lo, float hi) {
    return rng.uniform(lo - pad, hi + pad);
  };
  Vec3 p{coord(bounds.lo.x, bounds.hi.x), coord(bounds.lo.y, bounds.hi.y),
         coord(bounds.lo.z, bounds.hi.z)};
  Vec3 q{coord(bounds.lo.x, bounds.hi.x), coord(bounds.lo.y, bounds.hi.y),
         coord(bounds.lo.z, bounds.hi.z)};
  return AABB(min(p, q), max(p, q));
}

// Brute-force range oracle: the exact predicate every tree applies at its
// leaves, over the non-degenerate triangles every builder stores.
std::vector<std::uint32_t> brute_force_range(std::span<const Triangle> tris,
                                             const AABB& box) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;
    if (box.overlaps(tris[i].bounds()) &&
        !clipped_bounds(tris[i], box).empty()) {
      out.push_back(i);
    }
  }
  return out;
}

NearestResult brute_force_nearest(std::span<const Triangle> tris,
                                  const Vec3& point) {
  // Ascending scan with a strict `<` keeps the lowest id on exact distance
  // ties — the same tie-break every tree's KnnCollector applies.
  NearestResult best;
  for (std::uint32_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;
    const Vec3 cp = closest_point_on_triangle(point, tris[i]);
    const float d = length_squared(point - cp);
    if (d < best.distance_sq) best = {i, cp, d};
  }
  return best;
}

// Brute-force k-NN oracle through the same KnnCollector the trees use, so
// radius acceptance, dedup and (distance, id) ordering are one definition.
std::vector<NearestResult> brute_force_knn(std::span<const Triangle> tris,
                                           const Vec3& point, std::size_t k,
                                           float max_distance) {
  KnnCollector collector(k, max_distance);
  for (std::uint32_t i = 0; i < tris.size(); ++i) {
    if (tris[i].degenerate()) continue;
    const Vec3 cp = closest_point_on_triangle(point, tris[i]);
    collector.offer(i, cp, length_squared(point - cp));
  }
  std::vector<NearestResult> out;
  collector.take_sorted(out);
  return out;
}

}  // namespace

bool kdtune_ci_small() noexcept {
  const char* v = std::getenv("KDTUNE_CI_SMALL");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

DifferentialOptions differential_default_options() {
  DifferentialOptions opts;
  if (kdtune_ci_small()) {
    opts.max_triangles = 96;
    opts.rays = 10;
    opts.boxes = 4;
    opts.points = 4;
    opts.knn_points = 4;
    opts.post_expand_rays = 4;
  }
  return opts;
}

DifferentialResult run_differential_case(std::uint64_t seed,
                                         const DifferentialOptions& opts) {
  DifferentialResult result;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);

  const std::vector<Triangle> tris = generate_geometry(rng, opts);
  const BuildConfig config = generate_config(rng);
  const unsigned workers = static_cast<unsigned>(rng.next_int(0, 3));
  ThreadPool pool(workers);

  const auto fail = [&](std::ostringstream& msg) {
    result.disagreements.push_back("seed " + std::to_string(seed) + ": " +
                                   msg.str());
  };

  std::vector<Impl> impls;
  impls.push_back({"sweep", make_sweep_builder()->build(tris, config, pool)});
  impls.push_back({"event", make_event_builder()->build(tris, config, pool)});
  impls.push_back(
      {"median", make_median_builder()->build(tris, config, pool)});
  for (const Algorithm a : all_algorithms()) {
    impls.push_back(
        {std::string(to_string(a)), make_builder(a)->build(tris, config, pool)});
  }

  // The compact serving layout, re-emitted from the eager sweep tree, plus
  // the wide backends collapsed from it: the auto-detected kernels (AVX2/SSE
  // on this host) and the forced scalar fallback, which must answer
  // identically — so one fuzz sweep checks every kernel tier the binary can
  // reach against brute force and against each other.
  const auto* eager = dynamic_cast<const KdTree*>(impls.front().tree.get());
  if (eager != nullptr) {
    auto compact = std::make_shared<CompactKdTree>(*eager);
    impls.push_back({"compact", compact});
    impls.push_back({"wide4", std::make_shared<WideKdTree4>(compact)});
    impls.push_back({"wide8", std::make_shared<WideKdTree8>(compact)});
    if (detect_simd_level() != SimdLevel::kScalar) {
      impls.push_back({"wide4-scalar", std::make_shared<WideKdTree4>(
                                           compact, SimdLevel::kScalar)});
      impls.push_back({"wide8-scalar", std::make_shared<WideKdTree8>(
                                           compact, SimdLevel::kScalar)});
    }
  } else {
    std::ostringstream msg;
    msg << "sweep builder did not produce an eager KdTree";
    fail(msg);
  }

  // The cross-structure BVH baseline, with its own randomized knobs.
  BvhConfig bvh_config;
  bvh_config.bin_count = static_cast<int>(rng.next_int(2, 32));
  bvh_config.max_leaf_size = static_cast<int>(rng.next_int(1, 8));
  impls.push_back({"bvh", build_bvh(tris, bvh_config, pool)});

  // The sharded serving tier's partition + route + merge path, probed like
  // any other tree: straddler duplication across shard boundaries is the
  // highest-risk correctness surface in the repo, so it rides in the widest
  // net we have. Random K covers the no-cut degenerate (K=1) through three
  // cut levels.
  const int shard_count = 1 << rng.next_int(0, 3);
  impls.push_back({"sharded-k" + std::to_string(shard_count),
                   std::make_shared<ShardedKdTree>(
                       std::vector<Triangle>(tris.begin(), tris.end()),
                       shard_count, *make_sweep_builder(), config, pool)});

  const LazyKdTree* lazy = nullptr;
  for (const Impl& impl : impls) {
    if (auto* l = dynamic_cast<const LazyKdTree*>(impl.tree.get())) lazy = l;
  }

  AABB box = bounds_of(tris);
  if (box.empty()) box = AABB({-1, -1, -1}, {1, 1, 1});

  // --- Ray probes (closest_hit + any_hit); the first pass races the lazy
  // tree's first-touch expansion of whatever subtrees the rays reach.
  std::vector<Ray> rays;
  for (int i = 0; i < opts.rays; ++i) rays.push_back(random_ray(rng, box));

  const auto probe_rays = [&](std::span<const Ray> batch, const char* phase) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Ray& ray = batch[i];
      const Hit expected = brute_force_closest_hit(ray, tris);
      const bool expected_any = brute_force_any_hit(ray, tris);
      for (const Impl& impl : impls) {
        ++result.queries;
        const Hit got = impl.tree->closest_hit(ray);
        if (got.valid() != expected.valid() ||
            (expected.valid() && got.t != expected.t)) {
          std::ostringstream msg;
          msg << phase << " ray " << i << " closest_hit (" << impl.name
              << "): expected valid=" << expected.valid() << " t="
              << std::hexfloat << expected.t << ", got valid=" << got.valid()
              << " t=" << got.t << " (tri " << got.triangle << " vs "
              << expected.triangle << ")";
          fail(msg);
        }
        ++result.queries;
        const bool got_any = impl.tree->any_hit(ray);
        if (got_any != expected_any) {
          std::ostringstream msg;
          msg << phase << " ray " << i << " any_hit (" << impl.name
              << "): expected " << expected_any << ", got " << got_any;
          fail(msg);
        }
      }
    }
  };
  probe_rays(rays, "fresh");

  // --- Range probes: the result set is an exact, structure-independent
  // predicate, so every implementation must return the identical id list.
  for (int i = 0; i < opts.boxes; ++i) {
    const AABB query = random_box(rng, box);
    const std::vector<std::uint32_t> expected =
        brute_force_range(tris, query);
    std::vector<std::uint32_t> out;
    for (const Impl& impl : impls) {
      ++result.queries;
      out.clear();
      impl.tree->query_range(query, out);
      if (out != expected) {
        std::ostringstream msg;
        msg << "box " << i << " query_range (" << impl.name << "): expected "
            << expected.size() << " ids, got " << out.size();
        fail(msg);
      }
    }
  }

  // --- Nearest probes: the minimum squared distance over the soup is bit
  // identical across implementations (same closest_point_on_triangle per
  // triangle), and the winning id is too — ties break toward the lowest
  // triangle id in every tree, so the comparison includes the id.
  for (int i = 0; i < opts.points; ++i) {
    const Vec3 point{rng.uniform(box.lo.x - 1.0f, box.hi.x + 1.0f),
                     rng.uniform(box.lo.y - 1.0f, box.hi.y + 1.0f),
                     rng.uniform(box.lo.z - 1.0f, box.hi.z + 1.0f)};
    const NearestResult expected = brute_force_nearest(tris, point);
    for (const Impl& impl : impls) {
      ++result.queries;
      const NearestResult got = impl.tree->nearest(point);
      if (got.valid() != expected.valid() ||
          (expected.valid() && (got.distance_sq != expected.distance_sq ||
                                got.triangle != expected.triangle))) {
        std::ostringstream msg;
        msg << "point " << i << " nearest (" << impl.name
            << "): expected valid=" << expected.valid() << " d2="
            << std::hexfloat << expected.distance_sq << " tri "
            << expected.triangle << ", got valid=" << got.valid()
            << " d2=" << got.distance_sq << " tri " << got.triangle;
        fail(msg);
      }
    }
  }

  // --- k-NN + closest-point-within-radius probes: full result lists must be
  // bit identical (ids included) against the KnnCollector brute oracle.
  const float diag = length(box.extent());
  for (int i = 0; i < opts.knn_points; ++i) {
    const Vec3 point{rng.uniform(box.lo.x - 1.0f, box.hi.x + 1.0f),
                     rng.uniform(box.lo.y - 1.0f, box.hi.y + 1.0f),
                     rng.uniform(box.lo.z - 1.0f, box.hi.z + 1.0f)};
    const std::size_t k = static_cast<std::size_t>(rng.next_int(1, 6));
    // Half the probes bound the search by a conservative radius — the
    // photon-gather / sensor-query shape — including radii small enough to
    // produce empty results.
    const float radius = rng.next_float() < 0.5f
                             ? std::numeric_limits<float>::infinity()
                             : rng.uniform(0.0f, diag * 0.6f + 0.1f);
    const std::vector<NearestResult> expected =
        brute_force_knn(tris, point, k, radius);
    std::vector<NearestResult> got;
    for (const Impl& impl : impls) {
      ++result.queries;
      got.clear();
      impl.tree->nearest_k(point, k, got, radius);
      bool match = got.size() == expected.size();
      for (std::size_t j = 0; match && j < got.size(); ++j) {
        match = got[j].triangle == expected[j].triangle &&
                got[j].distance_sq == expected[j].distance_sq;
      }
      if (!match) {
        std::ostringstream msg;
        msg << "point " << i << " nearest_k k=" << k << " r=" << std::hexfloat
            << radius << " (" << impl.name << "): expected "
            << expected.size() << " results, got " << got.size();
        for (std::size_t j = 0; j < std::min(got.size(), expected.size());
             ++j) {
          if (got[j].triangle != expected[j].triangle ||
              got[j].distance_sq != expected[j].distance_sq) {
            msg << "; first mismatch at " << j << ": tri " << got[j].triangle
                << " d2=" << got[j].distance_sq << " vs tri "
                << expected[j].triangle << " d2=" << expected[j].distance_sq;
            break;
          }
        }
        fail(msg);
      }

      // Closest point with a conservative seed radius: equivalent to k=1
      // over the same radius, so the first expected entry is the oracle.
      ++result.queries;
      const NearestResult within = impl.tree->nearest_within(point, radius);
      const bool expect_valid = !expected.empty();
      if (within.valid() != expect_valid ||
          (expect_valid && (within.triangle != expected.front().triangle ||
                            within.distance_sq !=
                                expected.front().distance_sq))) {
        std::ostringstream msg;
        msg << "point " << i << " nearest_within r=" << std::hexfloat
            << radius << " (" << impl.name << "): expected valid="
            << expect_valid << ", got valid=" << within.valid() << " tri "
            << within.triangle << " d2=" << within.distance_sq;
        fail(msg);
      }
    }
  }

  // --- Post-expansion pass: the fully expanded lazy tree must still agree.
  if (lazy != nullptr) {
    lazy->expand_all();
    if (lazy->deferred_remaining() != 0) {
      std::ostringstream msg;
      msg << "expand_all left " << lazy->deferred_remaining()
          << " deferred nodes";
      fail(msg);
    }
    std::vector<Ray> post;
    for (int i = 0; i < opts.post_expand_rays; ++i) {
      post.push_back(random_ray(rng, box));
    }
    probe_rays(post, "expanded");
    if (lazy->stack_overflows() != 0) {
      std::ostringstream msg;
      msg << "lazy traversal dropped " << lazy->stack_overflows()
          << " far children (stack overflow)";
      fail(msg);
    }
  }

  return result;
}

}  // namespace kdtune
