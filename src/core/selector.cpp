#include "core/selector.hpp"

#include <limits>
#include <stdexcept>

namespace kdtune {

AlgorithmSelector::AlgorithmSelector(ThreadPool& pool, SelectorOptions opts)
    : opts_(opts) {
  for (const Algorithm a : all_algorithms()) {
    PipelineOptions popts;
    popts.width = opts_.width;
    popts.height = opts_.height;
    popts.tuner = opts_.tuner;
    popts.ranges = opts_.ranges;
    candidates_.push_back(
        {a, std::make_unique<TunedPipeline>(a, pool, std::move(popts)), 0});
  }
}

Algorithm AlgorithmSelector::current() const noexcept {
  if (selection_done()) {
    return selected_.value_or(candidates_.front().algorithm);
  }
  return candidates_[phase_].algorithm;
}

Algorithm AlgorithmSelector::selected() const {
  if (!selected_) {
    throw std::logic_error("AlgorithmSelector: selection not finished");
  }
  return *selected_;
}

std::vector<std::pair<Algorithm, double>> AlgorithmSelector::standings() const {
  std::vector<std::pair<Algorithm, double>> out;
  out.reserve(candidates_.size());
  for (const Candidate& c : candidates_) {
    out.emplace_back(c.algorithm, c.frames > 0
                                      ? c.pipeline->tuner().best_time()
                                      : std::numeric_limits<double>::infinity());
  }
  return out;
}

AlgorithmSelector::Candidate& AlgorithmSelector::candidate(Algorithm a) {
  for (Candidate& c : candidates_) {
    if (c.algorithm == a) return c;
  }
  throw std::invalid_argument("AlgorithmSelector: unknown algorithm");
}

const TunedPipeline& AlgorithmSelector::pipeline(Algorithm a) const {
  return *const_cast<AlgorithmSelector*>(this)->candidate(a).pipeline;
}

TunedPipeline& AlgorithmSelector::pipeline(Algorithm a) {
  return *candidate(a).pipeline;
}

void AlgorithmSelector::maybe_advance_phase() {
  const Candidate& c = candidates_[phase_];
  // A phase ends when its tuner converged or the frame budget is exhausted;
  // at least a handful of frames are always granted so best_time is real.
  const bool budget_done = c.frames >= opts_.frames_per_algorithm;
  const bool converged = c.frames >= 4 && c.pipeline->tuner().converged();
  if (!budget_done && !converged) return;

  ++phase_;
  if (selection_done()) {
    // Pick the winner: smallest best measured frame time.
    double best = std::numeric_limits<double>::infinity();
    for (const Candidate& cand : candidates_) {
      const double t = cand.pipeline->tuner().best_time();
      if (t < best) {
        best = t;
        selected_ = cand.algorithm;
      }
    }
    if (!selected_) selected_ = candidates_.front().algorithm;
  }
}

FrameReport AlgorithmSelector::render_frame(const Scene& scene,
                                            Framebuffer* fb) {
  if (!selection_done()) {
    Candidate& c = candidates_[phase_];
    const FrameReport report = c.pipeline->render_frame(scene, fb);
    ++c.frames;
    maybe_advance_phase();
    return report;
  }
  return candidate(*selected_).pipeline->render_frame(scene, fb);
}

}  // namespace kdtune
