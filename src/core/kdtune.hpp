#pragma once

// Umbrella header: the full public API of the kdtune library.
//
//   #include "core/kdtune.hpp"
//
//   kdtune::ThreadPool pool(7);
//   auto scene = kdtune::make_scene("sibenik", 0.5f);
//   kdtune::TunedPipeline pipeline(kdtune::Algorithm::kLazy, pool);
//   for (std::size_t i = 0; i < 100; ++i) {
//     auto report = pipeline.render_frame(scene->frame(0));
//   }
//
// See README.md for a guided tour and DESIGN.md for the architecture.

#include "core/base_config.hpp"      // Table II ranges, C_base
#include "core/experiment.hpp"       // paper-protocol experiment runner
#include "core/histogram.hpp"        // log-bucket latency histogram
#include "core/pipeline.hpp"         // TunedPipeline (fig. 4 workflow)
#include "core/platform.hpp"         // virtual platforms
#include "core/selector.hpp"         // algorithm selection (paper SVI)
#include "core/table_io.hpp"         // bench output helpers
#include "bvh/bvh.hpp"               // cross-structure baseline
#include "geom/closest_point.hpp"
#include "geom/intersect.hpp"        // brute-force oracles, slab test
#include "geom/ray.hpp"
#include "geom/rng.hpp"
#include "geom/transform.hpp"
#include "geom/triangle.hpp"
#include "kdtree/builder.hpp"        // the four algorithms + references
#include "kdtree/analysis.hpp"
#include "kdtree/compact_tree.hpp"   // cache-compact serving layout
#include "kdtree/dot_export.hpp"
#include "kdtree/knn.hpp"           // shared k-NN collection core
#include "kdtree/lazy_tree.hpp"
#include "kdtree/packet.hpp"
#include "kdtree/query_backend.hpp" // serving-backend enum (tunable online)
#include "kdtree/serialize.hpp"
#include "kdtree/simd_dispatch.hpp" // runtime CPU-feature detection
#include "kdtree/tree.hpp"
#include "kdtree/validate.hpp"
#include "kdtree/wide_tree.hpp"      // 4/8-wide SIMD collapse of the compact tree
#include "obs/trace.hpp"             // run-wide tracing (Chrome trace JSON)
#include "obs/tuner_log.hpp"         // per-iteration tuner decision log
#include "dse/config_db.hpp"         // feature-keyed cross-scene config store
#include "dse/explore.hpp"           // offline design-space sweep driver
#include "dse/features.hpp"          // scene/hardware descriptors (DB keys)
#include "dynamic/frame_pipeline.hpp"  // overlapped rebuild/query frame loop
#include "dynamic/frame_tuner.hpp"     // cross-frame autotuning + selection
#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/parallel_scan.hpp"
#include "parallel/parallel_sort.hpp"
#include "parallel/thread_pool.hpp"
#include "render/camera.hpp"
#include "render/framebuffer.hpp"
#include "render/raycaster.hpp"
#include "scene/animation.hpp"
#include "scene/generators.hpp"      // the six evaluation scenes
#include "scene/obj_loader.hpp"
#include "serve/query_service.hpp"   // micro-batched async ray service
#include "serve/scene_registry.hpp"  // versioned scene registry (hot swap)
#include "serve/serve_tuner.hpp"     // online tuning of the serving knobs
#include "tuning/config_cache.hpp"   // persistent warm-start cache
#include "tuning/search.hpp"         // Nelder-Mead + baseline strategies
#include "tuning/tuner.hpp"          // the AtuneRT-style online autotuner
