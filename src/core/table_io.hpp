#pragma once

// Small table/CSV emitters shared by the benchmark binaries: every figure
// bench prints a human-readable table (the paper's rows/series) plus a CSV
// block for replotting.

#include <iostream>
#include <string>
#include <vector>

namespace kdtune {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Aligned, pipe-separated print.
  void print(std::ostream& os = std::cout) const;

  /// Plain CSV (comma-separated, no quoting — callers keep cells simple).
  void print_csv(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting (tables want "0.0123", not 1.23e-02).
std::string fmt(double value, int precision = 4);

/// Section banner for bench output.
void print_banner(const std::string& title, std::ostream& os = std::cout);

}  // namespace kdtune
