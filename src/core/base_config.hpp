#pragma once

// The paper's tuning setup: Table II parameter ranges, the manually crafted
// base configuration C_base = (17, 10, 3, 2^12), and the glue that registers
// a BuildConfig's fields with a Tuner (Table Ia for the eager algorithms,
// Table Ib — adding R — for the lazy one).

#include "kdtree/build_config.hpp"
#include "kdtree/builder.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {

/// Table II ranges.
struct TuningRanges {
  std::int64_t ci_min = 3, ci_max = 101;
  std::int64_t cb_min = 0, cb_max = 60;
  std::int64_t s_min = 1, s_max = 8;
  std::int64_t r_min = 16, r_max = 8192;  // powers of two
};

inline constexpr TuningRanges kPaperRanges{};

/// Registers CI, CB, S (and R for the lazy algorithm) on `tuner`, pointing at
/// the fields of `config`. Returns the number of registered parameters.
std::size_t register_build_parameters(Tuner& tuner, BuildConfig& config,
                                      Algorithm algorithm,
                                      const TuningRanges& ranges = kPaperRanges);

/// C_base as index-space point for the given algorithm (for FixedSearch).
ConfigPoint base_config_point(Algorithm algorithm,
                              const TuningRanges& ranges = kPaperRanges);

}  // namespace kdtune
