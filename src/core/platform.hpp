#pragma once

// Virtual platforms — the substitution for the paper's four physical machines
// (Fig. 7c; DESIGN.md §2.2). A platform pins the worker-thread count of the
// pool the builders run on, emulating each machine's multithreading capacity.
// Clock-speed differences are not emulated: they scale all measurements
// uniformly and therefore do not move the optimum within a platform, but
// thread counts do (through S and the parallel phase granularities).

#include <string>
#include <vector>

namespace kdtune {

struct Platform {
  std::string name;
  unsigned threads = 1;   ///< hardware threads of the emulated machine
  std::string emulates;   ///< the paper's machine this stands in for
};

/// The paper's four machines (§V-C).
std::vector<Platform> paper_platforms();

/// The machine the paper's main results (Figs. 5, 6, 8, 9) were measured on:
/// the dual AMD Opteron 6168, 24 hardware threads.
Platform opteron_platform();

}  // namespace kdtune
