#pragma once

// Virtual platforms — the substitution for the paper's four physical machines
// (Fig. 7c; DESIGN.md §2.2). A platform pins the worker-thread count of the
// pool the builders run on, emulating each machine's multithreading capacity.
// Clock-speed differences are not emulated: they scale all measurements
// uniformly and therefore do not move the optimum within a platform, but
// thread counts do (through S and the parallel phase granularities).

#include <string>
#include <vector>

namespace kdtune {

struct Platform {
  std::string name;
  unsigned threads = 1;   ///< hardware threads of the emulated machine
  std::string emulates;   ///< the paper's machine this stands in for
};

/// The paper's four machines (§V-C).
std::vector<Platform> paper_platforms();

/// The machine the paper's main results (Figs. 5, 6, 8, 9) were measured on:
/// the dual AMD Opteron 6168, 24 hardware threads.
Platform opteron_platform();

/// Physical properties of the *host* (as opposed to the virtual platforms
/// above): inputs of the design-space explorer's HardwareDescriptor
/// (src/dse/features.hpp), which keys the portable config database.

/// Hardware threads of this host (>= 1; hardware_concurrency with a floor).
unsigned host_core_count() noexcept;

/// L1 data cache line size in bytes; 64 when the OS does not report it.
unsigned host_cache_line_bytes() noexcept;

}  // namespace kdtune
