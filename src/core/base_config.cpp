#include "core/base_config.hpp"

namespace kdtune {

std::size_t register_build_parameters(Tuner& tuner, BuildConfig& config,
                                      Algorithm algorithm,
                                      const TuningRanges& ranges) {
  tuner.register_parameter(&config.ci, ranges.ci_min, ranges.ci_max, 1, "CI");
  tuner.register_parameter(&config.cb, ranges.cb_min, ranges.cb_max, 1, "CB");
  tuner.register_parameter(&config.s, ranges.s_min, ranges.s_max, 1, "S");
  if (algorithm == Algorithm::kLazy) {
    tuner.register_parameter_pow2(&config.r, ranges.r_min, ranges.r_max, "R");
    return 4;
  }
  return 3;
}

ConfigPoint base_config_point(Algorithm algorithm, const TuningRanges& ranges) {
  const BuildConfig base = kBaseConfig;
  ConfigPoint point{base.ci - ranges.ci_min, base.cb - ranges.cb_min,
                    base.s - ranges.s_min};
  if (algorithm == Algorithm::kLazy) {
    std::int64_t index = 0;
    for (std::int64_t v = ranges.r_min; v < base.r; v *= 2) ++index;
    point.push_back(index);
  }
  return point;
}

}  // namespace kdtune
