#include "shard/shard_router.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "kdtree/knn.hpp"
#include "shard/sharded_tree.hpp"

namespace kdtune {

namespace {

QueryResponse rejected(QueryKind kind, QueryStatus status) {
  QueryResponse resp;
  resp.kind = kind;
  resp.status = status;
  return resp;
}

}  // namespace

ShardRouter::ShardRouter(std::vector<Triangle> triangles,
                         ShardRouterOptions opts)
    : triangles_(std::move(triangles)),
      opts_(std::move(opts)),
      build_pool_(std::thread::hardware_concurrency() > 1
                      ? std::thread::hardware_concurrency() - 1
                      : 0),
      start_(Clock::now()) {
  fanout_cap_.store(opts_.fanout_cap < 0 ? 0 : opts_.fanout_cap,
                    std::memory_order_relaxed);
  cluster_ = make_cluster(opts_.shard_count);
  const unsigned threads = std::max(1u, opts_.router_threads);
  routers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    routers_.emplace_back([this] { router_loop(); });
  }
}

ShardRouter::~ShardRouter() { shutdown(); }

std::shared_ptr<ShardRouter::Cluster> ShardRouter::make_cluster(
    int count) const {
  auto cluster = std::make_shared<Cluster>();
  cluster->plan = build_shard_plan(triangles_, count);
  const int k = cluster->plan.shard_count;
  cluster->slots.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    auto slot = std::make_unique<ShardSlot>();
    std::vector<Triangle> soup =
        cluster->plan.shard_triangles[static_cast<std::size_t>(s)];
    if (opts_.process_workers) {
      ProcessShardWorker::Options wopts;
      wopts.worker_path = opts_.worker_path;
      wopts.backend = opts_.backend;
      wopts.config = opts_.config;
      wopts.reroute_on_death = opts_.reroute_on_death;
      slot->worker = std::make_unique<ProcessShardWorker>(std::move(soup),
                                                          wopts, build_pool_);
    } else {
      InProcessShardWorker::Options wopts;
      wopts.scene_name = "shard" + std::to_string(s);
      wopts.workers = std::max(1u, opts_.workers_per_shard);
      wopts.algorithm = opts_.algorithm;
      wopts.config = opts_.config;
      wopts.backend = opts_.backend;
      wopts.service = opts_.shard_service;
      wopts.cache = opts_.cache;
      slot->worker =
          std::make_unique<InProcessShardWorker>(std::move(soup), wopts);
    }
    cluster->slots.push_back(std::move(slot));
  }
  return cluster;
}

std::shared_ptr<ShardRouter::Cluster> ShardRouter::snapshot() const {
  std::lock_guard<std::mutex> lk(cluster_mutex_);
  return cluster_;
}

void ShardRouter::set_shard_count(int count) {
  count = clamp_shard_count(count);
  {
    std::lock_guard<std::mutex> lk(cluster_mutex_);
    if (cluster_ != nullptr && cluster_->plan.shard_count == count) return;
  }
  // Build off to the side; in-flight requests keep the cluster they
  // snapshotted, the old workers retire with its last reference.
  std::shared_ptr<Cluster> next = make_cluster(count);
  std::shared_ptr<Cluster> old;
  {
    std::lock_guard<std::mutex> lk(cluster_mutex_);
    old = std::move(cluster_);
    cluster_ = std::move(next);
  }
}

int ShardRouter::shard_count() const {
  std::lock_guard<std::mutex> lk(cluster_mutex_);
  return cluster_ != nullptr ? cluster_->plan.shard_count : 0;
}

void ShardRouter::set_serving_params(const ServingParams& params) {
  const std::shared_ptr<Cluster> cluster = snapshot();
  if (cluster == nullptr) return;
  for (const auto& slot : cluster->slots) {
    if (QueryService* service = slot->worker->service()) {
      service->set_serving_params(params);
    }
  }
}

QueryService* ShardRouter::shard_service(int s) const {
  const std::shared_ptr<Cluster> cluster = snapshot();
  if (cluster == nullptr || s < 0 ||
      s >= static_cast<int>(cluster->slots.size())) {
    return nullptr;
  }
  return cluster->slots[static_cast<std::size_t>(s)]->worker->service();
}

void ShardRouter::kill_worker(int s) {
  const std::shared_ptr<Cluster> cluster = snapshot();
  if (cluster == nullptr || s < 0 ||
      s >= static_cast<int>(cluster->slots.size())) {
    return;
  }
  auto* worker = dynamic_cast<ProcessShardWorker*>(
      cluster->slots[static_cast<std::size_t>(s)]->worker.get());
  if (worker != nullptr) worker->kill_child();
}

std::uint64_t ShardRouter::rerouted() const {
  const std::shared_ptr<Cluster> cluster = snapshot();
  std::uint64_t total = 0;
  if (cluster != nullptr) {
    for (const auto& slot : cluster->slots) total += slot->worker->rerouted();
  }
  return total;
}

// ----------------------------------------------------------------- admission

std::future<QueryResponse> ShardRouter::enqueue(wire::ShardQuery query,
                                                const std::string& tenant) {
  Request req;
  req.query = std::move(query);
  req.tenant = tenant;
  req.submitted = Clock::now();
  std::future<QueryResponse> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    if (!accepting_) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(rejected(req.query.kind, QueryStatus::kShutdown));
      return fut;
    }
    if (queues_[0].size() + queues_[1].size() >= opts_.max_queue) {
      rejected_overflow_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(
          rejected(req.query.kind, QueryStatus::kRejectedOverflow));
      return fut;
    }
    // Quota gate last: a request that would be bounced by the queue bound
    // anyway must not burn one of its tenant's tokens.
    if (!tenants_.admit(tenant, req.submitted, &req.priority)) {
      rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(
          rejected(req.query.kind, QueryStatus::kRejectedQuota));
      return fut;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    queues_[static_cast<int>(req.priority)].push_back(std::move(req));
  }
  queue_cv_.notify_one();
  return fut;
}

std::future<QueryResponse> ShardRouter::submit_closest_hit(
    const std::string& tenant, const Ray& ray, Clock::time_point deadline) {
  wire::ShardQuery q;
  q.kind = QueryKind::kClosestHit;
  q.ray = ray;
  q.deadline = deadline;
  return enqueue(std::move(q), tenant);
}

std::future<QueryResponse> ShardRouter::submit_any_hit(
    const std::string& tenant, const Ray& ray, Clock::time_point deadline) {
  wire::ShardQuery q;
  q.kind = QueryKind::kAnyHit;
  q.ray = ray;
  q.deadline = deadline;
  return enqueue(std::move(q), tenant);
}

std::future<QueryResponse> ShardRouter::submit_packet(
    const std::string& tenant, std::vector<Ray> rays,
    Clock::time_point deadline) {
  wire::ShardQuery q;
  q.kind = QueryKind::kPacket;
  q.rays = std::move(rays);
  q.deadline = deadline;
  return enqueue(std::move(q), tenant);
}

std::future<QueryResponse> ShardRouter::submit_range(
    const std::string& tenant, const AABB& box, Clock::time_point deadline) {
  wire::ShardQuery q;
  q.kind = QueryKind::kRange;
  q.box = box;
  q.deadline = deadline;
  return enqueue(std::move(q), tenant);
}

std::future<QueryResponse> ShardRouter::submit_nearest(
    const std::string& tenant, const Vec3& point, std::uint32_t k,
    float max_distance, Clock::time_point deadline) {
  wire::ShardQuery q;
  q.kind = QueryKind::kNearest;
  q.point = point;
  q.k = k;
  q.max_distance = max_distance;
  q.deadline = deadline;
  return enqueue(std::move(q), tenant);
}

std::future<QueryResponse> ShardRouter::submit_closest_point(
    const std::string& tenant, const Vec3& point, float max_distance,
    Clock::time_point deadline) {
  wire::ShardQuery q;
  q.kind = QueryKind::kClosestPoint;
  q.point = point;
  q.max_distance = max_distance;
  q.deadline = deadline;
  return enqueue(std::move(q), tenant);
}

// ------------------------------------------------------------------ dispatch

void ShardRouter::router_loop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lk(queue_mutex_);
      queue_cv_.wait(lk, [this] {
        return stop_ || !queues_[0].empty() || !queues_[1].empty();
      });
      // Strict priority: interactive first, batch only when the interactive
      // queue is empty. Drain everything before honoring stop_.
      std::deque<Request>* queue = nullptr;
      if (!queues_[0].empty()) {
        queue = &queues_[0];
      } else if (!queues_[1].empty()) {
        queue = &queues_[1];
      } else {
        break;  // stop_ set and both queues empty
      }
      req = std::move(queue->front());
      queue->pop_front();
      ++inflight_;
    }
    process(req);
    {
      std::lock_guard<std::mutex> lk(queue_mutex_);
      --inflight_;
      if (inflight_ == 0 && queues_[0].empty() && queues_[1].empty()) {
        done_cv_.notify_all();
      }
    }
  }
}

void ShardRouter::route_query(const ShardPlan& plan,
                              const wire::ShardQuery& q,
                              std::vector<int>& out) {
  out.clear();
  switch (q.kind) {
    case QueryKind::kClosestHit:
    case QueryKind::kAnyHit:
      plan.route_ray(q.ray, out);
      break;
    case QueryKind::kPacket: {
      // Union of the per-ray routes, ascending.
      bool member[kMaxShardCount] = {};
      std::vector<int> per;
      for (const Ray& ray : q.rays) {
        plan.route_ray(ray, per);
        for (const int s : per) member[s] = true;
      }
      for (int s = 0; s < plan.shard_count; ++s) {
        if (member[s]) out.push_back(s);
      }
      break;
    }
    case QueryKind::kRange:
      plan.route_box(q.box, out);
      break;
    case QueryKind::kNearest:
    case QueryKind::kClosestPoint:
      plan.route_sphere(q.point, q.max_distance, out);
      break;
  }
}

void ShardRouter::finish(Request& req, QueryResponse resp) {
  const double latency =
      std::chrono::duration<double>(Clock::now() - req.submitted).count();
  resp.latency_seconds = latency;
  latency_.record_seconds(latency);
  tenants_.record_completion(req.tenant, latency);
  processed_.fetch_add(1, std::memory_order_relaxed);
  switch (resp.status) {
    case QueryStatus::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kTimedOut:
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  req.promise.set_value(std::move(resp));
}

void ShardRouter::process(Request& req) {
  const wire::ShardQuery& q = req.query;
  QueryResponse resp;
  resp.kind = q.kind;
  if (Clock::now() >= q.deadline) {
    resp.status = QueryStatus::kTimedOut;
    finish(req, std::move(resp));
    return;
  }
  const std::shared_ptr<Cluster> cluster = snapshot();
  std::vector<int> routed;
  route_query(cluster->plan, q, routed);

  // Merge accumulators. Packet hits start as misses; range ids accumulate
  // raw and are canonicalized once at the end; kNN folds through the same
  // KnnCollector the single-tree path uses, with global ids (straddler
  // duplicates collapse by id).
  resp.hits.assign(q.kind == QueryKind::kPacket ? q.rays.size() : 0, Hit{});
  KnnCollector collector(q.k, q.max_distance);
  QueryStatus failure = QueryStatus::kOk;

  const int cap = fanout_cap_.load(std::memory_order_relaxed);
  const std::size_t wave =
      cap <= 0 ? routed.size() : static_cast<std::size_t>(cap);
  for (std::size_t begin = 0; begin < routed.size();
       begin += std::max<std::size_t>(wave, 1)) {
    if (q.kind == QueryKind::kAnyHit && resp.any) break;  // short-circuit
    const std::size_t end =
        wave == 0 ? routed.size() : std::min(routed.size(), begin + wave);
    std::vector<std::pair<int, std::future<QueryResponse>>> futures;
    futures.reserve(end - begin);
    const Clock::time_point wave_start = Clock::now();
    for (std::size_t i = begin; i < end; ++i) {
      const int s = routed[i];
      ShardSlot& slot = *cluster->slots[static_cast<std::size_t>(s)];
      slot.subqueries.fetch_add(1, std::memory_order_relaxed);
      subqueries_.fetch_add(1, std::memory_order_relaxed);
      futures.emplace_back(s, slot.worker->submit(q));
    }
    for (auto& [s, future] : futures) {
      QueryResponse sub = future.get();
      ShardSlot& slot = *cluster->slots[static_cast<std::size_t>(s)];
      slot.latency.record_seconds(
          std::chrono::duration<double>(Clock::now() - wave_start).count());
      if (sub.status != QueryStatus::kOk) {
        if (failure == QueryStatus::kOk) failure = sub.status;
        continue;
      }
      resp.scene_version = std::max(resp.scene_version, sub.scene_version);
      const std::span<const std::uint32_t> ids =
          cluster->plan.shard_global_ids[static_cast<std::size_t>(s)];
      switch (q.kind) {
        case QueryKind::kClosestHit:
          merge_closest_hit(resp.hit, remap_hit(sub.hit, ids));
          break;
        case QueryKind::kAnyHit:
          resp.any = resp.any || sub.any;
          break;
        case QueryKind::kPacket:
          for (std::size_t r = 0;
               r < sub.hits.size() && r < resp.hits.size(); ++r) {
            merge_closest_hit(resp.hits[r], remap_hit(sub.hits[r], ids));
          }
          break;
        case QueryKind::kRange:
          for (const std::uint32_t local : sub.range_ids) {
            resp.range_ids.push_back(ids[local]);
          }
          break;
        case QueryKind::kNearest:
          for (const NearestResult& n : sub.neighbors) {
            collector.offer(ids[n.triangle], n.point, n.distance_sq);
          }
          break;
        case QueryKind::kClosestPoint: {
          NearestResult candidate = sub.nearest;
          if (candidate.valid()) candidate.triangle = ids[candidate.triangle];
          merge_nearest(resp.nearest, candidate);
          break;
        }
      }
    }
  }
  if (q.kind == QueryKind::kRange) canonicalize_range_ids(resp.range_ids, 0);
  if (q.kind == QueryKind::kNearest) collector.take_sorted(resp.neighbors);
  resp.status = failure;  // kOk unless some sub-query failed
  finish(req, std::move(resp));
}

// ----------------------------------------------------------------- lifecycle

bool ShardRouter::accepting() const {
  std::lock_guard<std::mutex> lk(queue_mutex_);
  return accepting_;
}

void ShardRouter::drain() {
  std::unique_lock<std::mutex> lk(queue_mutex_);
  done_cv_.wait(lk, [this] {
    return inflight_ == 0 && queues_[0].empty() && queues_[1].empty();
  });
}

void ShardRouter::shutdown() {
  std::lock_guard<std::mutex> shutdown_lk(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    if (!accepting_ && stop_ && routers_.empty()) return;
    accepting_ = false;
  }
  drain();
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : routers_) {
    if (t.joinable()) t.join();
  }
  routers_.clear();
  const std::shared_ptr<Cluster> cluster = snapshot();
  if (cluster != nullptr) {
    for (const auto& slot : cluster->slots) slot->worker->shutdown();
  }
}

// --------------------------------------------------------------------- stats

ShardRouterStats ShardRouter::stats() const {
  ShardRouterStats out;
  const std::shared_ptr<Cluster> cluster = snapshot();
  out.shard_count = cluster != nullptr ? cluster->plan.shard_count : 0;
  out.fanout_cap = fanout_cap();
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.rejected_overflow = rejected_overflow_.load(std::memory_order_relaxed);
  out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  out.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  out.rejected =
      out.rejected_overflow + out.rejected_shutdown + out.rejected_quota;
  out.timed_out = timed_out_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.subqueries = subqueries_.load(std::memory_order_relaxed);
  const std::uint64_t processed = processed_.load(std::memory_order_relaxed);
  out.mean_fanout = processed > 0 ? static_cast<double>(out.subqueries) /
                                        static_cast<double>(processed)
                                  : 0.0;
  out.p50_seconds = latency_.quantile_seconds(0.5);
  out.p99_seconds = latency_.quantile_seconds(0.99);
  out.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - start_).count();
  out.qps = out.uptime_seconds > 0.0
                ? static_cast<double>(out.completed) / out.uptime_seconds
                : 0.0;
  out.tenants = tenants_.stats();
  if (cluster != nullptr) {
    for (std::size_t s = 0; s < cluster->slots.size(); ++s) {
      const ShardSlot& slot = *cluster->slots[s];
      ShardSlotStats stats;
      stats.shard = static_cast<int>(s);
      stats.triangles = cluster->plan.shard_triangles[s].size();
      stats.alive = slot.worker->alive();
      stats.subqueries = slot.subqueries.load(std::memory_order_relaxed);
      stats.rerouted = slot.worker->rerouted();
      stats.p50_seconds = slot.latency.quantile_seconds(0.5);
      stats.p99_seconds = slot.latency.quantile_seconds(0.99);
      out.shards.push_back(stats);
    }
    for (const auto& slot : cluster->slots) out.rerouted += slot->worker->rerouted();
  }
  return out;
}

std::string ShardRouter::stats_json() const {
  const ShardRouterStats s = stats();
  std::string json;
  json.reserve(1024);
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"shard_count\":%d,\"fanout_cap\":%d,\"accepted\":%llu,"
      "\"completed\":%llu,\"rejected\":%llu,\"rejected_overflow\":%llu,"
      "\"rejected_shutdown\":%llu,\"rejected_quota\":%llu,"
      "\"timed_out\":%llu,\"failed\":%llu,\"subqueries\":%llu,"
      "\"rerouted\":%llu,\"mean_fanout\":%.3f,\"p50_us\":%.1f,"
      "\"p99_us\":%.1f,\"uptime_seconds\":%.3f,\"qps\":%.1f,\"tenants\":[",
      s.shard_count, s.fanout_cap,
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.rejected_overflow),
      static_cast<unsigned long long>(s.rejected_shutdown),
      static_cast<unsigned long long>(s.rejected_quota),
      static_cast<unsigned long long>(s.timed_out),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.subqueries),
      static_cast<unsigned long long>(s.rerouted), s.mean_fanout,
      s.p50_seconds * 1e6, s.p99_seconds * 1e6, s.uptime_seconds, s.qps);
  json += buf;
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    const TenantStats& t = s.tenants[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"tenant\":\"%s\",\"priority\":\"%s\",\"admitted\":%llu,"
                  "\"rejected_quota\":%llu,\"completed\":%llu,"
                  "\"p50_us\":%.1f,\"p99_us\":%.1f}",
                  i == 0 ? "" : ",", t.tenant.c_str(),
                  std::string(to_string(t.priority)).c_str(),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.rejected_quota),
                  static_cast<unsigned long long>(t.completed),
                  t.p50_seconds * 1e6, t.p99_seconds * 1e6);
    json += buf;
  }
  json += "],\"shards\":[";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardSlotStats& sh = s.shards[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"shard\":%d,\"triangles\":%zu,\"alive\":%s,"
                  "\"subqueries\":%llu,\"rerouted\":%llu,"
                  "\"p50_us\":%.1f,\"p99_us\":%.1f}",
                  i == 0 ? "" : ",", sh.shard, sh.triangles,
                  sh.alive ? "true" : "false",
                  static_cast<unsigned long long>(sh.subqueries),
                  static_cast<unsigned long long>(sh.rerouted),
                  sh.p50_seconds * 1e6, sh.p99_seconds * 1e6);
    json += buf;
  }
  json += "]}";
  return json;
}

// ------------------------------------------------------------- tuner bridge

void register_shard_dimensions(ServeTunerOptions& opts, ShardRouter& router,
                               int max_shards, int max_fanout) {
  ServeTunerExtraDimension shards;
  shards.name = "shard_count";
  shards.min = 1;
  shards.max = std::max(1, max_shards);
  shards.pow2 = true;
  shards.apply = [&router](std::int64_t v) {
    router.set_shard_count(static_cast<int>(v));
  };
  opts.extra_dimensions.push_back(std::move(shards));

  ServeTunerExtraDimension fanout;
  fanout.name = "fanout_cap";
  fanout.min = 1;
  fanout.max = std::max(1, max_fanout);
  fanout.step = 1;
  fanout.apply = [&router](std::int64_t v) {
    router.set_fanout_cap(static_cast<int>(v));
  };
  opts.extra_dimensions.push_back(std::move(fanout));

  opts.completed_counter = [&router] { return router.completed(); };
  opts.apply_params = [&router](const ServingParams& params) {
    router.set_serving_params(params);
  };
}

}  // namespace kdtune
