#pragma once

// ShardedKdTree — a KdTreeBase facade over a ShardPlan plus one sub-tree per
// shard. Queries route through the plan's cut tree, run on each overlapping
// shard, and merge with the canonical semantics the brute-force oracles use
// (min-(t, id) for hits, sorted+deduped global ids for range, KnnCollector
// lexicographic (distance_sq, id) order for kNN) — so a sharded tree answers
// every query family bit-identically to a single tree over the same soup.
//
// Implementing KdTreeBase buys two things: the differential fuzzer probes a
// sharded impl exactly like any other tree (straddler duplication is the
// highest-risk correctness surface, so it sits in the widest test net we
// have), and the router's in-process fallback path reuses the same merge
// code the fuzzer validates.

#include <memory>
#include <vector>

#include "kdtree/builder.hpp"
#include "kdtree/tree.hpp"
#include "shard/partition.hpp"

namespace kdtune {

class ShardedKdTree final : public KdTreeBase {
 public:
  /// Partitions `triangles` into `shard_count` shards and builds each
  /// sub-tree with `builder`/`config` on `pool`.
  ShardedKdTree(std::vector<Triangle> triangles, int shard_count,
                const Builder& builder, const BuildConfig& config,
                ThreadPool& pool);

  /// Wraps pre-built shard trees over an existing plan (the router path).
  /// `shards[i]` must be built over `plan.shard_triangles[i]`.
  ShardedKdTree(std::vector<Triangle> triangles, ShardPlan plan,
                std::vector<std::shared_ptr<const KdTreeBase>> shards);

  Hit closest_hit(const Ray& ray) const override;
  bool any_hit(const Ray& ray) const override;
  void query_range(const AABB& box,
                   std::vector<std::uint32_t>& out) const override;
  NearestResult nearest(const Vec3& point) const override;
  const AABB& bounds() const noexcept override { return bounds_; }
  std::span<const Triangle> triangles() const noexcept override {
    return triangles_;
  }
  TreeStats stats() const override;  ///< aggregated over the shard trees

  const ShardPlan& plan() const noexcept { return plan_; }
  int shard_count() const noexcept { return plan_.shard_count; }
  const KdTreeBase* shard(int s) const noexcept {
    return shards_[static_cast<std::size_t>(s)].get();
  }

 protected:
  void do_nearest_k(const Vec3& point, std::size_t k,
                    std::vector<NearestResult>& out,
                    float max_distance) const override;

 private:
  std::vector<Triangle> triangles_;  ///< the global (unsharded) soup
  ShardPlan plan_;
  std::vector<std::shared_ptr<const KdTreeBase>> shards_;
  AABB bounds_;
};

/// Remaps a shard-local hit to global triangle ids. Invalid hits pass
/// through untouched.
Hit remap_hit(Hit hit, std::span<const std::uint32_t> global_ids) noexcept;

/// Folds `candidate` (already global) into `best` by (t, id) — the canonical
/// closest-hit merge. Shared by ShardedKdTree and the ShardRouter.
void merge_closest_hit(Hit& best, const Hit& candidate) noexcept;

/// Folds `candidate` into `best` by (distance_sq, id) — the canonical
/// nearest merge (KnnCollector's knn_before order).
void merge_nearest(NearestResult& best,
                   const NearestResult& candidate) noexcept;

/// Sorts and dedups `ids[first..]` in place — the canonical range merge
/// (straddlers land in several shards, so duplicates are expected).
void canonicalize_range_ids(std::vector<std::uint32_t>& ids,
                            std::size_t first);

}  // namespace kdtune
