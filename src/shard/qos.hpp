#pragma once

// Multi-tenant QoS for the sharded serving tier: per-tenant token-bucket
// admission quotas, two strict priority classes, and per-tenant latency
// histograms. Layered on top of the existing never-blocking admission — a
// tenant over its quota is *rejected immediately* (kRejectedQuota), never
// queued, so a saturating tenant cannot occupy queue slots that belong to
// the others.
//
// The bucket holds up to `burst` tokens, refills at `rate_per_second`, and
// every admitted request consumes one token. Refill is computed from caller-
// supplied time points, so tests drive the clock deterministically. Tenants
// without a configured quota are unlimited (and still get counters and a
// latency histogram — the fleet default is "observed, not throttled").

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/histogram.hpp"

namespace kdtune {

/// Strict two-class priority: interactive requests always dispatch before
/// batch requests (starvation of kBatch under sustained interactive load is
/// the documented, intended behavior — batch is the scavenger class).
enum class Priority : int {
  kInteractive = 0,
  kBatch = 1,
};
inline constexpr int kPriorityCount = 2;
std::string_view to_string(Priority priority) noexcept;

struct TenantQuota {
  /// Tokens per second; non-finite = unlimited (no quota enforcement).
  double rate_per_second = std::numeric_limits<double>::infinity();
  /// Bucket capacity (maximum burst). Non-finite with a finite rate clamps
  /// to max(rate, 1) — a bottomless bucket would disable the quota.
  double burst = std::numeric_limits<double>::infinity();
  Priority priority = Priority::kInteractive;
};

struct TenantStats {
  std::string tenant;
  Priority priority = Priority::kInteractive;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t completed = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double mean_seconds = 0.0;
};

class TenantTable {
 public:
  using Clock = std::chrono::steady_clock;

  TenantTable() = default;
  TenantTable(const TenantTable&) = delete;
  TenantTable& operator=(const TenantTable&) = delete;

  /// Creates or reconfigures a tenant. A quota change refills the bucket to
  /// the new burst (the tenant starts the new regime with a full bucket).
  void set_quota(const std::string& tenant, const TenantQuota& quota);
  TenantQuota quota(const std::string& tenant) const;

  /// Consumes one token at `now`. True = admitted. Unknown tenants are
  /// created unlimited on first touch. `priority_out` (optional) receives
  /// the tenant's priority class either way.
  bool admit(const std::string& tenant, Clock::time_point now,
             Priority* priority_out = nullptr);

  /// Records one completed request's end-to-end latency for the tenant.
  void record_completion(const std::string& tenant, double latency_seconds);

  /// Per-tenant counters + latency quantiles, sorted by tenant name.
  std::vector<TenantStats> stats() const;

  /// Bucket-wise merge of every tenant's latency histogram into `into` —
  /// the fleet-wide view, without re-recording a single sample.
  void merge_latency(LogHistogram& into) const;

  std::size_t size() const;

 private:
  struct Tenant {
    TenantQuota quota{};
    double tokens = 0.0;
    bool bucket_started = false;  ///< tokens/last_refill valid
    Clock::time_point last_refill{};
    std::uint64_t admitted = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t completed = 0;
    LogHistogram latency;  ///< nanoseconds
  };

  /// True when the quota actually throttles (finite rate).
  static bool limited(const TenantQuota& q) noexcept;

  Tenant& tenant_locked(const std::string& name);

  mutable std::mutex mutex_;
  /// unique_ptr: LogHistogram is neither copyable nor movable, and stats()
  /// readers must be able to touch histograms outside map rebalances.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace kdtune
