#pragma once

// ShardRouter — the sharded serving tier's front end.
//
// One router owns a cluster: a ShardPlan (top-level cut tree) plus one
// ShardWorker per shard (in-process QueryService slices by default, spawned
// kdtune_shardd processes in process mode). Submissions carry a tenant id
// and pass three admission gates in order — accepting, queue bound, tenant
// token bucket — all non-blocking; a request the gates admit is queued in
// its tenant's priority class (strict interactive-before-batch dispatch).
//
// Router threads pop requests, compute the shard overlap set from the cut
// planes (ray segment / box / sphere reach — union of per-ray routes for
// packets), fan sub-queries to the overlapping workers in waves of at most
// `fanout_cap`, and merge shard-local answers into global ids with the
// canonical semantics the differential fuzzer validates (min-(t, id) hits,
// sorted+deduped range, KnnCollector (distance_sq, id) order) — so sharded
// answers are bit-identical to a single tree over the same soup, for every
// QueryKind. Any-hit short-circuits between waves.
//
// shard_count and fanout_cap are live knobs: set_shard_count() builds a new
// cluster off to the side and swaps it in RCU-style (in-flight requests
// finish on the cluster they snapshotted; the old workers retire with the
// last reference). register_shard_dimensions() exposes both to a ServeTuner
// as extra search dimensions.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/histogram.hpp"
#include "serve/serve_tuner.hpp"
#include "shard/partition.hpp"
#include "shard/qos.hpp"
#include "shard/shard_worker.hpp"

namespace kdtune {

struct ShardRouterOptions {
  /// Shards in the initial cluster (clamped to a power of two in [1, 64]).
  int shard_count = 4;
  unsigned router_threads = 2;
  /// Admission bound on queued (undispatched) requests, both classes.
  std::size_t max_queue = 4096;
  /// Max shards queried concurrently per request; 0 = no cap (whole route
  /// set in one wave). Tunable live via set_fanout_cap().
  int fanout_cap = 0;
  Algorithm algorithm = Algorithm::kInPlace;
  std::optional<BuildConfig> config{};
  QueryBackend backend = QueryBackend::kCompact;
  /// Per-shard QueryService options (in-process workers).
  ServiceOptions shard_service{};
  unsigned workers_per_shard = 1;
  /// Spawn one kdtune_shardd process per shard instead of in-process
  /// workers. Requires `worker_path`.
  bool process_workers = false;
  std::string worker_path;
  ConfigCache* cache = nullptr;  ///< warm-start cache, not owned
  /// Process mode: answer from the retained in-parent tree when a worker
  /// dies (false = reject those sub-queries with kShutdown).
  bool reroute_on_death = true;
};

struct ShardSlotStats {
  int shard = 0;
  std::size_t triangles = 0;
  bool alive = true;
  std::uint64_t subqueries = 0;
  std::uint64_t rerouted = 0;  ///< fallback-answered after a worker death
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
};

struct ShardRouterStats {
  int shard_count = 1;
  int fanout_cap = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;  ///< kOk responses
  std::uint64_t rejected_overflow = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected = 0;  ///< sum of the three above
  std::uint64_t timed_out = 0;
  std::uint64_t failed = 0;
  std::uint64_t subqueries = 0;
  std::uint64_t rerouted = 0;
  double mean_fanout = 0.0;  ///< subqueries per processed request
  double p50_seconds = 0.0;  ///< end-to-end router latency
  double p99_seconds = 0.0;
  double uptime_seconds = 0.0;
  double qps = 0.0;
  std::vector<TenantStats> tenants;
  std::vector<ShardSlotStats> shards;
};

class ShardRouter {
 public:
  using Clock = std::chrono::steady_clock;

  ShardRouter(std::vector<Triangle> triangles, ShardRouterOptions opts = {});
  ~ShardRouter();  ///< shutdown()

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // -- submissions (tenant-tagged; never block; futures resolve exactly once)
  std::future<QueryResponse> submit_closest_hit(
      const std::string& tenant, const Ray& ray,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_any_hit(
      const std::string& tenant, const Ray& ray,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_packet(
      const std::string& tenant, std::vector<Ray> rays,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_range(
      const std::string& tenant, const AABB& box,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_nearest(
      const std::string& tenant, const Vec3& point, std::uint32_t k = 1,
      float max_distance = std::numeric_limits<float>::infinity(),
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_closest_point(
      const std::string& tenant, const Vec3& point, float max_distance,
      Clock::time_point deadline = Clock::time_point::max());

  // -- multi-tenant QoS
  void set_quota(const std::string& tenant, const TenantQuota& quota) {
    tenants_.set_quota(tenant, quota);
  }
  TenantQuota quota(const std::string& tenant) const {
    return tenants_.quota(tenant);
  }

  // -- live knobs (ServeTuner dimensions)
  /// Re-partitions into clamp_shard_count(count) shards and hot-swaps the
  /// cluster. Blocks for the rebuild; in-flight requests are unaffected.
  void set_shard_count(int count);
  int shard_count() const;
  void set_fanout_cap(int cap) {
    fanout_cap_.store(cap < 0 ? 0 : cap, std::memory_order_relaxed);
  }
  int fanout_cap() const {
    return fanout_cap_.load(std::memory_order_relaxed);
  }
  /// Forwards to every in-process shard worker's QueryService.
  void set_serving_params(const ServingParams& params);

  // -- lifecycle
  void drain();     ///< blocks until every accepted request completed
  void shutdown();  ///< stops admission, drains, joins; idempotent
  bool accepting() const;

  std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rerouted() const;
  unsigned concurrency() const noexcept {
    return static_cast<unsigned>(routers_.size());
  }

  ShardRouterStats stats() const;
  std::string stats_json() const;

  /// In-process mode: shard `s`'s QueryService (nullptr in process mode or
  /// out of range). Snapshot of the *current* cluster.
  QueryService* shard_service(int s) const;

  /// Test hook (process mode): SIGKILL shard `s`'s child. The worker
  /// degrades to reroute-or-reject; the router keeps answering.
  void kill_worker(int s);

 private:
  struct ShardSlot {
    std::unique_ptr<ShardWorker> worker;
    LogHistogram latency;  ///< sub-query wave latency, nanoseconds
    std::atomic<std::uint64_t> subqueries{0};
  };
  struct Cluster {
    ShardPlan plan;
    /// unique_ptr: slots hold a histogram and an atomic (non-movable).
    std::vector<std::unique_ptr<ShardSlot>> slots;
  };
  struct Request {
    wire::ShardQuery query;
    std::string tenant;
    Priority priority = Priority::kInteractive;
    Clock::time_point submitted{};
    std::promise<QueryResponse> promise;
  };

  std::shared_ptr<Cluster> make_cluster(int count) const;
  std::shared_ptr<Cluster> snapshot() const;
  std::future<QueryResponse> enqueue(wire::ShardQuery query,
                                     const std::string& tenant);
  static void route_query(const ShardPlan& plan, const wire::ShardQuery& q,
                          std::vector<int>& out);
  void router_loop();
  void process(Request& req);
  void finish(Request& req, QueryResponse resp);

  std::vector<Triangle> triangles_;
  ShardRouterOptions opts_;
  /// Parallelizes the in-parent shard builds; mutable because clusters are
  /// built from const context (snapshot/make_cluster are logically const).
  mutable ThreadPool build_pool_;
  TenantTable tenants_;

  mutable std::mutex cluster_mutex_;
  std::shared_ptr<Cluster> cluster_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  std::deque<Request> queues_[kPriorityCount];
  std::size_t inflight_ = 0;
  bool accepting_ = true;
  bool stop_ = false;
  std::vector<std::thread> routers_;
  std::mutex shutdown_mutex_;

  std::atomic<int> fanout_cap_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_overflow_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> rejected_quota_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> subqueries_{0};
  LogHistogram latency_;  ///< end-to-end request latency, nanoseconds
  Clock::time_point start_;
};

/// Registers the sharded tier's knobs on a ServeTunerOptions as extra search
/// dimensions: `shard_count` on a power-of-two grid in [1, max_shards] and
/// `fanout_cap` in [1, max_fanout] (a cap of max_fanout or more behaves as
/// "no cap" when it reaches shard_count). Also points the tuner's completed
/// counter and parameter application at the router, so serving-parameter
/// trials drive every shard's QueryService through one search.
void register_shard_dimensions(ServeTunerOptions& opts, ShardRouter& router,
                               int max_shards = 8, int max_fanout = 8);

}  // namespace kdtune
