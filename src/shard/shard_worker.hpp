#pragma once

// Shard workers — the execution backends behind the ShardRouter. One worker
// owns one shard's sub-tree and answers ShardQuery sub-queries in shard-
// local triangle ids (the router remaps to global ids when merging).
//
// Two implementations:
//  * InProcessShardWorker — a private ThreadPool slice + SceneRegistry +
//    QueryService per shard, so every shard reuses the existing admission /
//    batching / ConfigCache / backend / tracing stack unchanged.
//  * ProcessShardWorker — a spawned `kdtune_shardd` child process receiving
//    the shard's serialized compact tree over the wire protocol (pipes). A
//    writer mutex serializes request frames; a reader thread resolves
//    futures by request id. When the child dies (EOF/EPIPE) the worker
//    *degrades instead of hanging*: pending and future sub-queries are
//    re-routed to a retained in-parent fallback tree (bit-identical answers,
//    `rerouted()` counts them) or rejected with kShutdown when re-routing is
//    disabled.

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "kdtree/builder.hpp"
#include "kdtree/query_backend.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/query_service.hpp"
#include "shard/wire.hpp"

namespace kdtune {

/// Executes one sub-query synchronously against a shard tree, applying the
/// exact result canonicalization QueryService::execute applies (range ids
/// sorted + deduped). Shared by the in-parent fallback path and the
/// kdtune_shardd daemon, so every execution path produces identical bytes.
QueryResponse execute_shard_query(const KdTreeBase& tree,
                                  const wire::ShardQuery& query);

class ShardWorker {
 public:
  virtual ~ShardWorker() = default;

  /// Never blocks on the shard's progress; the future resolves exactly once.
  virtual std::future<QueryResponse> submit(const wire::ShardQuery& query) = 0;
  virtual void shutdown() = 0;
  virtual bool alive() const { return true; }
  /// Sub-queries answered by the fallback tree after the backend died.
  virtual std::uint64_t rerouted() const { return 0; }
  virtual int pid() const { return -1; }           ///< process mode only
  virtual QueryService* service() { return nullptr; }  ///< in-process only
};

class InProcessShardWorker final : public ShardWorker {
 public:
  struct Options {
    std::string scene_name = "shard";   ///< registry key (diagnostics)
    unsigned workers = 1;               ///< thread-pool slice width
    Algorithm algorithm = Algorithm::kInPlace;
    std::optional<BuildConfig> config{};
    QueryBackend backend = QueryBackend::kCompact;
    ServiceOptions service{};
    ConfigCache* cache = nullptr;       ///< warm-start cache, not owned
  };

  InProcessShardWorker(std::vector<Triangle> triangles, const Options& opts);
  ~InProcessShardWorker() override;

  std::future<QueryResponse> submit(const wire::ShardQuery& query) override;
  void shutdown() override;
  QueryService* service() override { return service_.get(); }
  const std::string& scene_name() const noexcept { return scene_; }

 private:
  std::string scene_;
  ThreadPool pool_;
  SceneRegistry registry_;
  std::unique_ptr<QueryService> service_;
};

class ProcessShardWorker final : public ShardWorker {
 public:
  struct Options {
    std::string worker_path;  ///< the kdtune_shardd binary
    QueryBackend backend = QueryBackend::kCompact;
    std::optional<BuildConfig> config{};
    /// Answer from the retained in-parent tree when the child dies; false
    /// rejects with kShutdown instead.
    bool reroute_on_death = true;
  };

  /// Builds the shard tree in-parent (sweep build + compact re-emit),
  /// retains it as the fallback, serializes it to the spawned child, and
  /// waits for the handshake. A failed spawn/handshake leaves the worker in
  /// the dead state — submits degrade immediately; nothing throws.
  ProcessShardWorker(std::vector<Triangle> triangles, const Options& opts,
                     ThreadPool& build_pool);
  ~ProcessShardWorker() override;

  std::future<QueryResponse> submit(const wire::ShardQuery& query) override;
  void shutdown() override;
  bool alive() const override;
  std::uint64_t rerouted() const override {
    return rerouted_.load(std::memory_order_relaxed);
  }
  int pid() const override { return pid_; }

  /// Test hook: SIGKILL the child (reroute-or-reject drill). The reader
  /// thread observes EOF and degrades the worker.
  void kill_child();

 private:
  struct Pending {
    wire::ShardQuery query;  ///< retained for fallback re-execution
    std::promise<QueryResponse> promise;
  };

  void reader_loop();
  /// Marks dead and fails/re-routes every pending request. Called from the
  /// reader (EOF) and from submit (write error).
  void degrade();
  QueryResponse answer_fallback(const wire::ShardQuery& query);

  std::shared_ptr<const KdTreeBase> fallback_;
  bool reroute_on_death_ = true;

  mutable std::mutex state_mutex_;  ///< pending_, alive_, next_id_
  std::map<std::uint64_t, Pending> pending_;
  bool alive_ = false;
  bool shutting_down_ = false;
  std::uint64_t next_id_ = 1;

  std::mutex write_mutex_;  ///< serializes request frames
  int write_fd_ = -1;
  int read_fd_ = -1;
  int pid_ = -1;
  std::atomic<std::uint64_t> rerouted_{0};
  std::thread reader_;
};

}  // namespace kdtune
