#pragma once

// Same-host binary wire protocol for process-pool shard workers.
//
// Framing: every message is a u32 little-endian payload length followed by
// the payload; payload byte 0 is the MsgType. Handshake: the parent sends
// kHello ([type u8][backend u8][serialized tree bytes — the v2/v3 streams
// from kdtree/serialize]), the worker replies kHelloAck ([type u8]
// [u64 triangle_count]). After that the parent sends kQuery frames tagged
// with a u64 request id and the worker answers each with a kResult frame
// carrying the same id — ids let responses return out of order, though the
// reference kdtune_shardd daemon answers in order. kShutdown (or EOF on the
// request pipe) ends the worker.
//
// The protocol is deliberately host-local (pipes between a router and its
// spawned workers): numbers are raw little-endian host encodings, exactly
// like the tree serialization streams it embeds, and triangle ids in both
// directions are *shard-local* — the router owns the local-to-global remap.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "kdtree/tree.hpp"
#include "serve/query_service.hpp"

namespace kdtune::wire {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kResult = 4,
  kShutdown = 5,
};

/// Refuse frames larger than this (a corrupt length prefix must not make
/// the reader allocate gigabytes).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// One sub-query addressed to a single shard, in shard-local coordinates
/// (the geometry is global — only triangle ids are shard-local).
struct ShardQuery {
  QueryKind kind = QueryKind::kClosestHit;
  std::uint64_t id = 0;
  Ray ray{};
  std::vector<Ray> rays;  ///< kPacket
  AABB box{};             ///< kRange
  Vec3 point{};           ///< kNearest / kClosestPoint
  std::uint32_t k = 1;    ///< kNearest
  float max_distance = std::numeric_limits<float>::infinity();
  /// Router-side only (not serialized): in-process workers forward it to
  /// their QueryService so shard batches respect the caller's deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Appends the kQuery payload (including the leading MsgType byte) to `out`.
void encode_query(const ShardQuery& query, std::vector<std::uint8_t>& out);
/// Parses a kQuery payload (without the MsgType byte). False = malformed.
bool decode_query(std::span<const std::uint8_t> body, ShardQuery& query);

/// Appends the kResult payload (including the leading MsgType byte).
/// Serializes status/kind plus the kind's result fields of `resp`.
void encode_result(std::uint64_t id, const QueryResponse& resp,
                   std::vector<std::uint8_t>& out);
/// Parses a kResult payload (without the MsgType byte). False = malformed.
bool decode_result(std::span<const std::uint8_t> body, std::uint64_t& id,
                   QueryResponse& resp);

/// Writes one length-prefixed frame (payload = `body`, whose first byte must
/// be the MsgType). Handles partial writes and EINTR; false on any error
/// (EPIPE included — call ignore_sigpipe() first, which every wire user
/// does). Not atomic across callers: serialize writers externally.
bool write_frame(int fd, std::span<const std::uint8_t> body);

/// Reads one frame. `type` gets payload byte 0, `body` the rest. False on
/// EOF, error, or a malformed/oversized length prefix.
bool read_frame(int fd, MsgType& type, std::vector<std::uint8_t>& body);

/// Idempotently sets SIGPIPE to SIG_IGN for the process — a dead worker's
/// pipe must surface as an EPIPE write error, not a process kill.
void ignore_sigpipe();

}  // namespace kdtune::wire
