#include "shard/qos.hpp"

#include <algorithm>
#include <cmath>

namespace kdtune {

std::string_view to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

bool TenantTable::limited(const TenantQuota& q) noexcept {
  return std::isfinite(q.rate_per_second);
}

TenantTable::Tenant& TenantTable::tenant_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::make_unique<Tenant>()).first;
  }
  return *it->second;
}

void TenantTable::set_quota(const std::string& tenant,
                            const TenantQuota& quota) {
  std::lock_guard<std::mutex> lk(mutex_);
  Tenant& t = tenant_locked(tenant);
  t.quota = quota;
  if (limited(t.quota) && !std::isfinite(t.quota.burst)) {
    t.quota.burst = std::max(t.quota.rate_per_second, 1.0);
  }
  t.quota.burst = std::max(t.quota.burst, 1.0);
  t.quota.rate_per_second = std::max(t.quota.rate_per_second, 0.0);
  t.tokens = t.quota.burst;
  t.bucket_started = false;  // first admit after a change restarts the clock
}

TenantQuota TenantTable::quota(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second->quota : TenantQuota{};
}

bool TenantTable::admit(const std::string& tenant, Clock::time_point now,
                        Priority* priority_out) {
  std::lock_guard<std::mutex> lk(mutex_);
  Tenant& t = tenant_locked(tenant);
  if (priority_out != nullptr) *priority_out = t.quota.priority;
  if (!limited(t.quota)) {
    ++t.admitted;
    return true;
  }
  if (!t.bucket_started) {
    t.tokens = t.quota.burst;  // a fresh tenant starts with a full bucket
    t.last_refill = now;
    t.bucket_started = true;
  } else if (now > t.last_refill) {
    const double dt = std::chrono::duration<double>(now - t.last_refill).count();
    t.tokens = std::min(t.quota.burst, t.tokens + t.quota.rate_per_second * dt);
    t.last_refill = now;
  }
  if (t.tokens >= 1.0) {
    t.tokens -= 1.0;
    ++t.admitted;
    return true;
  }
  ++t.rejected_quota;
  return false;
}

void TenantTable::record_completion(const std::string& tenant,
                                    double latency_seconds) {
  LogHistogram* hist = nullptr;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    Tenant& t = tenant_locked(tenant);
    ++t.completed;
    hist = &t.latency;
  }
  // Histogram recording is lock-free; Tenant objects are never destroyed
  // while the table lives (unique_ptr in the map), so recording outside the
  // table lock is safe.
  hist->record_seconds(latency_seconds);
}

std::vector<TenantStats> TenantTable::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantStats s;
    s.tenant = name;
    s.priority = t->quota.priority;
    s.admitted = t->admitted;
    s.rejected_quota = t->rejected_quota;
    s.completed = t->completed;
    s.p50_seconds = t->latency.quantile_seconds(0.5);
    s.p99_seconds = t->latency.quantile_seconds(0.99);
    s.mean_seconds = t->latency.mean_seconds();
    out.push_back(std::move(s));
  }
  return out;
}

void TenantTable::merge_latency(LogHistogram& into) const {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& [name, t] : tenants_) {
    into.merge(t->latency);
  }
}

std::size_t TenantTable::size() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return tenants_.size();
}

}  // namespace kdtune
