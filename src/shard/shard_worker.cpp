#include "shard/shard_worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "kdtree/compact_tree.hpp"
#include "kdtree/packet.hpp"
#include "kdtree/serialize.hpp"
#include "kdtree/wide_tree.hpp"
#include "scene/scene.hpp"

extern char** environ;

namespace kdtune {

QueryResponse execute_shard_query(const KdTreeBase& tree,
                                  const wire::ShardQuery& query) {
  QueryResponse resp;
  resp.kind = query.kind;
  if (std::chrono::steady_clock::now() >= query.deadline) {
    resp.status = QueryStatus::kTimedOut;
    return resp;
  }
  switch (query.kind) {
    case QueryKind::kClosestHit:
      resp.hit = tree.closest_hit(query.ray);
      break;
    case QueryKind::kAnyHit:
      resp.any = tree.any_hit(query.ray);
      break;
    case QueryKind::kPacket:
      resp.hits.resize(query.rays.size());
      closest_hit_packet_any(tree, query.rays, resp.hits);
      break;
    case QueryKind::kRange:
      tree.query_range(query.box, resp.range_ids);
      // Same canonicalization as QueryService::execute — sorted + deduped,
      // so daemon, fallback, and in-process answers are byte-identical.
      std::sort(resp.range_ids.begin(), resp.range_ids.end());
      resp.range_ids.erase(
          std::unique(resp.range_ids.begin(), resp.range_ids.end()),
          resp.range_ids.end());
      break;
    case QueryKind::kNearest:
      tree.nearest_k(query.point, query.k, resp.neighbors,
                     query.max_distance);
      break;
    case QueryKind::kClosestPoint:
      resp.nearest = tree.nearest_within(query.point, query.max_distance);
      break;
  }
  resp.status = QueryStatus::kOk;
  return resp;
}

// ---------------------------------------------------------------- in-process

InProcessShardWorker::InProcessShardWorker(std::vector<Triangle> triangles,
                                           const Options& opts)
    : scene_(opts.scene_name), pool_(opts.workers), registry_(pool_) {
  registry_.attach_cache(opts.cache);
  Scene scene(scene_);
  scene.mutable_triangles() = std::move(triangles);
  AdmitOptions admit;
  admit.algorithm = opts.algorithm;
  admit.config = opts.config;
  admit.compact = true;
  admit.backend = opts.backend;
  registry_.admit(scene_, std::move(scene), admit);
  service_ = std::make_unique<QueryService>(registry_, pool_, opts.service);
}

InProcessShardWorker::~InProcessShardWorker() { shutdown(); }

void InProcessShardWorker::shutdown() { service_->shutdown(); }

std::future<QueryResponse> InProcessShardWorker::submit(
    const wire::ShardQuery& query) {
  switch (query.kind) {
    case QueryKind::kClosestHit:
      return service_->submit_closest_hit(scene_, query.ray, query.deadline);
    case QueryKind::kAnyHit:
      return service_->submit_any_hit(scene_, query.ray, query.deadline);
    case QueryKind::kPacket:
      return service_->submit_packet(scene_, query.rays, query.deadline);
    case QueryKind::kRange:
      return service_->submit_range(scene_, query.box, query.deadline);
    case QueryKind::kNearest:
      return service_->submit_nearest(scene_, query.point, query.k,
                                      query.max_distance, query.deadline);
    case QueryKind::kClosestPoint:
      return service_->submit_closest_point(scene_, query.point,
                                            query.max_distance,
                                            query.deadline);
  }
  std::promise<QueryResponse> promise;
  QueryResponse resp;
  resp.kind = query.kind;
  resp.status = QueryStatus::kError;
  promise.set_value(std::move(resp));
  return promise.get_future();
}

// -------------------------------------------------------------- process pool

ProcessShardWorker::ProcessShardWorker(std::vector<Triangle> triangles,
                                       const Options& opts,
                                       ThreadPool& build_pool)
    : reroute_on_death_(opts.reroute_on_death) {
  wire::ignore_sigpipe();

  // Build the shard tree in-parent. The serving-layout tree doubles as the
  // re-route fallback, so degraded answers stay bit-identical.
  const std::size_t triangle_count = triangles.size();
  std::shared_ptr<const CompactKdTree> compact;
  std::string tree_bytes;
  try {
    const BuildConfig config = opts.config.value_or(BuildConfig{});
    const std::unique_ptr<KdTreeBase> built =
        make_sweep_builder()->build(triangles, config, build_pool);
    const auto* eager = dynamic_cast<const KdTree*>(built.get());
    if (eager == nullptr) return;  // dead worker; submits degrade
    compact = std::make_shared<CompactKdTree>(*eager);
    std::ostringstream stream;
    if (opts.backend == QueryBackend::kWide4) {
      auto wide = std::make_shared<WideKdTree4>(compact);
      save_wide_tree(stream, *wide);  // serialization v3
      fallback_ = wide;
    } else if (opts.backend == QueryBackend::kWide8) {
      auto wide = std::make_shared<WideKdTree8>(compact);
      save_wide_tree(stream, *wide);  // serialization v3
      fallback_ = wide;
    } else {
      save_compact_tree(stream, *compact);  // serialization v2
      fallback_ = compact;
    }
    tree_bytes = std::move(stream).str();
  } catch (...) {
    // Un-serializable shard (node budget overflow): keep whatever fallback
    // we have and stay in the degraded (local-answer) state.
    if (fallback_ == nullptr && compact != nullptr) fallback_ = compact;
    return;
  }

  if (opts.worker_path.empty()) return;

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe2(to_child, O_CLOEXEC) != 0) return;
  if (pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return;
  }

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, to_child[0], STDIN_FILENO);
  posix_spawn_file_actions_adddup2(&actions, from_child[1], STDOUT_FILENO);
  char* argv[] = {const_cast<char*>(opts.worker_path.c_str()), nullptr};
  pid_t pid = -1;
  const int rc = posix_spawn(&pid, opts.worker_path.c_str(), &actions,
                             nullptr, argv, environ);
  posix_spawn_file_actions_destroy(&actions);
  ::close(to_child[0]);
  ::close(from_child[1]);
  if (rc != 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    return;
  }
  pid_ = static_cast<int>(pid);
  write_fd_ = to_child[1];
  read_fd_ = from_child[0];

  // Handshake: ship the tree, wait for the triangle-count echo.
  std::vector<std::uint8_t> hello;
  hello.reserve(2 + tree_bytes.size());
  hello.push_back(static_cast<std::uint8_t>(wire::MsgType::kHello));
  hello.push_back(static_cast<std::uint8_t>(opts.backend));
  hello.insert(hello.end(), tree_bytes.begin(), tree_bytes.end());
  bool ok = wire::write_frame(write_fd_, hello);
  wire::MsgType type{};
  std::vector<std::uint8_t> ack;
  ok = ok && wire::read_frame(read_fd_, type, ack) &&
       type == wire::MsgType::kHelloAck && ack.size() == sizeof(std::uint64_t);
  if (ok) {
    std::uint64_t count = 0;
    std::memcpy(&count, ack.data(), sizeof(count));
    ok = count == triangle_count;
  }
  if (!ok) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ::close(write_fd_);
    ::close(read_fd_);
    write_fd_ = read_fd_ = -1;
    pid_ = -1;
    return;
  }
  alive_ = true;
  reader_ = std::thread([this] { reader_loop(); });
}

ProcessShardWorker::~ProcessShardWorker() { shutdown(); }

bool ProcessShardWorker::alive() const {
  std::lock_guard<std::mutex> lk(state_mutex_);
  return alive_;
}

QueryResponse ProcessShardWorker::answer_fallback(
    const wire::ShardQuery& query) {
  if (reroute_on_death_ && fallback_ != nullptr) {
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    return execute_shard_query(*fallback_, query);
  }
  QueryResponse resp;
  resp.kind = query.kind;
  resp.status = QueryStatus::kShutdown;
  return resp;
}

std::future<QueryResponse> ProcessShardWorker::submit(
    const wire::ShardQuery& query) {
  std::uint64_t id = 0;
  std::future<QueryResponse> fut;
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    if (!alive_) {
      std::promise<QueryResponse> promise;
      fut = promise.get_future();
      promise.set_value(answer_fallback(query));
      return fut;
    }
    id = next_id_++;
    Pending& p = pending_[id];
    p.query = query;
    p.query.id = id;
    fut = p.promise.get_future();
  }

  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return fut;  // degraded while encoding
    wire::encode_query(it->second.query, frame);
  }
  bool ok = false;
  {
    std::lock_guard<std::mutex> lk(write_mutex_);
    ok = wire::write_frame(write_fd_, frame);
  }
  if (!ok) degrade();  // completes our pending entry too (re-route/reject)
  return fut;
}

void ProcessShardWorker::reader_loop() {
  wire::MsgType type{};
  std::vector<std::uint8_t> body;
  while (wire::read_frame(read_fd_, type, body)) {
    if (type != wire::MsgType::kResult) continue;
    std::uint64_t id = 0;
    QueryResponse resp;
    if (!wire::decode_result(body, id, resp)) break;
    Pending pending;
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(state_mutex_);
      const auto it = pending_.find(id);
      if (it != pending_.end()) {
        pending = std::move(it->second);
        pending_.erase(it);
        found = true;
      }
    }
    if (found) pending.promise.set_value(std::move(resp));
  }
  degrade();
}

void ProcessShardWorker::degrade() {
  std::map<std::uint64_t, Pending> orphans;
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    alive_ = false;
    orphans.swap(pending_);
  }
  for (auto& [id, pending] : orphans) {
    pending.promise.set_value(answer_fallback(pending.query));
  }
}

void ProcessShardWorker::kill_child() {
  int pid = -1;
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    pid = pid_;
  }
  if (pid > 0) ::kill(pid, SIGKILL);
}

void ProcessShardWorker::shutdown() {
  bool was_alive = false;
  {
    std::lock_guard<std::mutex> lk(state_mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
    was_alive = alive_;
  }
  if (was_alive && write_fd_ >= 0) {
    const std::uint8_t bye =
        static_cast<std::uint8_t>(wire::MsgType::kShutdown);
    std::lock_guard<std::mutex> lk(write_mutex_);
    (void)wire::write_frame(write_fd_, std::span<const std::uint8_t>(&bye, 1));
  }
  if (write_fd_ >= 0) {
    std::lock_guard<std::mutex> lk(write_mutex_);
    ::close(write_fd_);  // EOF tells the child to exit
    write_fd_ = -1;
  }
  if (reader_.joinable()) reader_.join();
  degrade();  // reader may never have started (failed spawn)
  if (pid_ > 0) {
    // Bounded wait, then SIGKILL — a wedged worker must not wedge shutdown.
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {  // ~2s
      const pid_t r = ::waitpid(pid_, &status, WNOHANG);
      if (r == pid_ || r < 0) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, &status, 0);
    }
    pid_ = -1;
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

}  // namespace kdtune
