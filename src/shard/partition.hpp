#pragma once

// Spatial scene partitioner — the sharded serving tier's domain decomposition.
//
// A scene is split into K (power of two) sub-soups by a complete binary tree
// of K-1 axis-aligned cut planes chosen over triangle *centroids* (median
// cut along the longest centroid-bounds axis — the distributed forest-of-
// octrees recipe, flattened to one level of kd-style cuts). Triangles whose
// bounds straddle a cut are duplicated into every overlapping shard, exactly
// like straddlers are referenced from both children inside a single kd-tree,
// so each shard can answer any query that geometrically reaches its region
// without consulting its neighbors.
//
// The routing predicates are the load-bearing correctness surface: a query
// must visit every shard whose region can contain an answer. Placement and
// routing use the *same* per-cut comparisons (lo <= pos goes left, hi >= pos
// goes right — both inclusive, so planar/straddling geometry lands on both
// sides), which gives the invariant the differential fuzzer leans on: any
// point of any triangle lies in some routed shard's sub-soup, hence
// min-over-routed-shards == min-over-the-whole-soup bit-exactly, and kNN /
// range unions cover the global result set. The predicates are NaN-free for
// every representable ray (zero direction components, infinite t_max) and
// radius (infinity routes everywhere).

#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"

namespace kdtune {

/// Hard cap on K — 64 shards of >= 1 process each is already far past any
/// sane fan-out on one host, and it bounds the routing stack.
inline constexpr int kMaxShardCount = 64;

/// Rounds `requested` down to a power of two in [1, kMaxShardCount].
int clamp_shard_count(int requested) noexcept;

/// One top-level axis-aligned cut plane. Left child owns coordinates
/// <= pos, right child owns >= pos (both inclusive — see header comment).
struct ShardCut {
  int axis = 0;     ///< 0 = X, 1 = Y, 2 = Z
  float pos = 0.0f;
};

/// The partition: cut tree plus the per-shard sub-soups. `cuts` is stored in
/// heap order (root at 0, children of i at 2i+1 / 2i+2); with K a power of
/// two the tree is perfect and leaf node `K-1+s` is shard `s`.
struct ShardPlan {
  int shard_count = 1;
  std::vector<ShardCut> cuts;  ///< size shard_count - 1
  AABB bounds;                 ///< bounds of the input soup
  /// Per-shard triangle soups. Local triangle order preserves global order,
  /// so shard-local id comparisons agree with global-id comparisons.
  std::vector<std::vector<Triangle>> shard_triangles;
  /// Per-shard local-id -> global-id maps (strictly ascending).
  std::vector<std::vector<std::uint32_t>> shard_global_ids;
  std::size_t input_triangles = 0;
  std::size_t total_refs = 0;  ///< sum of shard sizes; excess = straddlers

  /// Ascending shard ids whose region the ray's [t_min, t_max] segment can
  /// reach. Handles zero direction components and infinite t_max.
  void route_ray(const Ray& ray, std::vector<int>& out) const;
  /// Ascending shard ids whose region overlaps `box` (inclusive faces).
  void route_box(const AABB& box, std::vector<int>& out) const;
  /// Ascending shard ids whose region intersects the closed ball around
  /// `center`; an infinite radius routes to every shard.
  void route_sphere(const Vec3& center, float radius,
                    std::vector<int>& out) const;
  void route_all(std::vector<int>& out) const;
};

/// Partitions `tris` into clamp_shard_count(shard_count) sub-soups.
/// Deterministic: the same soup and K always produce the same plan.
ShardPlan build_shard_plan(std::span<const Triangle> tris, int shard_count);

}  // namespace kdtune
