#include "shard/sharded_tree.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "geom/intersect.hpp"
#include "kdtree/knn.hpp"

namespace kdtune {

Hit remap_hit(Hit hit, std::span<const std::uint32_t> global_ids) noexcept {
  if (hit.valid()) hit.triangle = global_ids[hit.triangle];
  return hit;
}

void merge_closest_hit(Hit& best, const Hit& candidate) noexcept {
  if (!candidate.valid()) return;
  if (!best.valid() || candidate.t < best.t ||
      (candidate.t == best.t && candidate.triangle < best.triangle)) {
    best = candidate;
  }
}

void merge_nearest(NearestResult& best,
                   const NearestResult& candidate) noexcept {
  if (!candidate.valid()) return;
  if (!best.valid() || knn_before(candidate, best)) best = candidate;
}

void canonicalize_range_ids(std::vector<std::uint32_t>& ids,
                            std::size_t first) {
  auto begin = ids.begin() + static_cast<std::ptrdiff_t>(first);
  std::sort(begin, ids.end());
  ids.erase(std::unique(begin, ids.end()), ids.end());
}

ShardedKdTree::ShardedKdTree(std::vector<Triangle> triangles, int shard_count,
                             const Builder& builder, const BuildConfig& config,
                             ThreadPool& pool)
    : triangles_(std::move(triangles)),
      plan_(build_shard_plan(triangles_, shard_count)),
      bounds_(bounds_of(triangles_)) {
  shards_.reserve(static_cast<std::size_t>(plan_.shard_count));
  for (int s = 0; s < plan_.shard_count; ++s) {
    shards_.push_back(builder.build(
        plan_.shard_triangles[static_cast<std::size_t>(s)], config, pool));
  }
}

ShardedKdTree::ShardedKdTree(
    std::vector<Triangle> triangles, ShardPlan plan,
    std::vector<std::shared_ptr<const KdTreeBase>> shards)
    : triangles_(std::move(triangles)),
      plan_(std::move(plan)),
      shards_(std::move(shards)),
      bounds_(bounds_of(triangles_)) {}

Hit ShardedKdTree::closest_hit(const Ray& ray) const {
  std::vector<int> route;
  plan_.route_ray(ray, route);
  Hit best;
  for (const int s : route) {
    const Hit local = shards_[static_cast<std::size_t>(s)]->closest_hit(ray);
    merge_closest_hit(
        best,
        remap_hit(local, plan_.shard_global_ids[static_cast<std::size_t>(s)]));
  }
  return best;
}

bool ShardedKdTree::any_hit(const Ray& ray) const {
  std::vector<int> route;
  plan_.route_ray(ray, route);
  for (const int s : route) {
    if (shards_[static_cast<std::size_t>(s)]->any_hit(ray)) return true;
  }
  return false;
}

void ShardedKdTree::query_range(const AABB& box,
                                std::vector<std::uint32_t>& out) const {
  std::vector<int> route;
  plan_.route_box(box, route);
  const std::size_t first = out.size();
  std::vector<std::uint32_t> local;
  for (const int s : route) {
    local.clear();
    shards_[static_cast<std::size_t>(s)]->query_range(box, local);
    const auto& ids = plan_.shard_global_ids[static_cast<std::size_t>(s)];
    for (const std::uint32_t id : local) out.push_back(ids[id]);
  }
  canonicalize_range_ids(out, first);
}

NearestResult ShardedKdTree::nearest(const Vec3& point) const {
  NearestResult best;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    merge_nearest(best, [&] {
      NearestResult local = shards_[s]->nearest(point);
      if (local.valid()) local.triangle = plan_.shard_global_ids[s][local.triangle];
      return local;
    }());
  }
  return best;
}

void ShardedKdTree::do_nearest_k(const Vec3& point, std::size_t k,
                                 std::vector<NearestResult>& out,
                                 float max_distance) const {
  std::vector<int> route;
  plan_.route_sphere(point, max_distance, route);
  KnnCollector collector(k, max_distance);
  std::vector<NearestResult> local;
  for (const int s : route) {
    local.clear();
    shards_[static_cast<std::size_t>(s)]->nearest_k(point, k, local,
                                                    max_distance);
    const auto& ids = plan_.shard_global_ids[static_cast<std::size_t>(s)];
    // Each shard's top-k contains every global top-k candidate the shard
    // owns, so the union the collector sees covers the global answer;
    // straddler duplicates collapse in the collector's id dedup.
    for (const NearestResult& r : local) {
      collector.offer(ids[r.triangle], r.point, r.distance_sq);
    }
  }
  collector.take_sorted(out);
}

TreeStats ShardedKdTree::stats() const {
  TreeStats total;
  double prim_sum = 0.0;
  std::size_t nonempty_leaves = 0;
  for (const auto& shard : shards_) {
    const TreeStats s = shard->stats();
    total.node_count += s.node_count;
    total.leaf_count += s.leaf_count;
    total.deferred_count += s.deferred_count;
    total.empty_leaf_count += s.empty_leaf_count;
    total.prim_refs += s.prim_refs;
    total.max_depth = std::max(total.max_depth, s.max_depth);
    total.sah_cost += s.sah_cost;
    const std::size_t ne = s.leaf_count - s.empty_leaf_count;
    prim_sum += s.avg_leaf_prims * static_cast<double>(ne);
    nonempty_leaves += ne;
  }
  if (nonempty_leaves > 0) {
    total.avg_leaf_prims = prim_sum / static_cast<double>(nonempty_leaves);
  }
  return total;
}

}  // namespace kdtune
