#include "shard/partition.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "geom/intersect.hpp"

namespace kdtune {

namespace {

/// Leaf node id of shard `s` in the heap-ordered perfect cut tree.
inline int leaf_base(int shard_count) noexcept { return shard_count - 1; }

void partition_node(std::span<const Triangle> all, int node,
                    std::vector<std::uint32_t> ids, ShardPlan& plan) {
  if (node >= leaf_base(plan.shard_count)) {
    const int shard = node - leaf_base(plan.shard_count);
    auto& soup = plan.shard_triangles[static_cast<std::size_t>(shard)];
    auto& map = plan.shard_global_ids[static_cast<std::size_t>(shard)];
    soup.reserve(ids.size());
    map.reserve(ids.size());
    for (const std::uint32_t id : ids) {
      soup.push_back(all[id]);
      map.push_back(id);  // ids arrive ascending, so the map stays ascending
    }
    return;
  }

  ShardCut cut;
  if (!ids.empty()) {
    AABB centroid_bounds;
    for (const std::uint32_t id : ids) {
      centroid_bounds.expand(all[id].centroid());
    }
    const Axis axis = centroid_bounds.longest_axis();
    cut.axis = static_cast<int>(axis);
    std::vector<float> coords;
    coords.reserve(ids.size());
    for (const std::uint32_t id : ids) {
      coords.push_back(all[id].centroid()[axis]);
    }
    auto mid = coords.begin() +
               static_cast<std::ptrdiff_t>(coords.size() / 2);
    std::nth_element(coords.begin(), mid, coords.end());
    cut.pos = *mid;
  }
  plan.cuts[static_cast<std::size_t>(node)] = cut;

  // Inclusive placement on both sides: a triangle goes into every child
  // whose half-space its bounds touch. Median position guarantees both
  // children are non-empty whenever the parent is.
  const Axis axis = static_cast<Axis>(cut.axis);
  std::vector<std::uint32_t> left, right;
  for (const std::uint32_t id : ids) {
    const AABB b = all[id].bounds();
    if (b.lo[axis] <= cut.pos) left.push_back(id);
    if (b.hi[axis] >= cut.pos) right.push_back(id);
  }
  ids.clear();
  ids.shrink_to_fit();
  partition_node(all, 2 * node + 1, std::move(left), plan);
  partition_node(all, 2 * node + 2, std::move(right), plan);
}

}  // namespace

int clamp_shard_count(int requested) noexcept {
  const int k = std::clamp(requested, 1, kMaxShardCount);
  return static_cast<int>(
      std::bit_floor(static_cast<unsigned>(k)));
}

ShardPlan build_shard_plan(std::span<const Triangle> tris, int shard_count) {
  ShardPlan plan;
  plan.shard_count = clamp_shard_count(shard_count);
  plan.cuts.resize(static_cast<std::size_t>(plan.shard_count - 1));
  plan.bounds = bounds_of(tris);
  plan.shard_triangles.resize(static_cast<std::size_t>(plan.shard_count));
  plan.shard_global_ids.resize(static_cast<std::size_t>(plan.shard_count));
  plan.input_triangles = tris.size();

  std::vector<std::uint32_t> ids(tris.size());
  for (std::uint32_t i = 0; i < tris.size(); ++i) ids[i] = i;
  partition_node(tris, 0, std::move(ids), plan);

  for (const auto& soup : plan.shard_triangles) {
    plan.total_refs += soup.size();
  }
  return plan;
}

void ShardPlan::route_ray(const Ray& ray, std::vector<int>& out) const {
  out.clear();
  int stack[kMaxShardCount];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const int node = stack[--sp];
    if (node >= shard_count - 1) {
      out.push_back(node - (shard_count - 1));
      continue;
    }
    const ShardCut& cut = cuts[static_cast<std::size_t>(node)];
    const Axis axis = static_cast<Axis>(cut.axis);
    const float o = ray.origin[axis];
    const float d = ray.dir[axis];
    // Reachable coordinate range along the cut axis over [t_min, t_max].
    // d == 0 (covers -0.0f) keeps the origin coordinate; otherwise an
    // infinite t_max yields an infinite endpoint, never a NaN.
    float lo_reach = o;
    float hi_reach = o;
    if (d != 0.0f) {
      const float a = o + d * ray.t_min;
      const float b = o + d * ray.t_max;
      lo_reach = std::min(a, b);
      hi_reach = std::max(a, b);
    }
    // Push right before left so shards pop in ascending order.
    if (hi_reach >= cut.pos) stack[sp++] = 2 * node + 2;
    if (lo_reach <= cut.pos) stack[sp++] = 2 * node + 1;
  }
}

void ShardPlan::route_box(const AABB& box, std::vector<int>& out) const {
  out.clear();
  int stack[kMaxShardCount];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const int node = stack[--sp];
    if (node >= shard_count - 1) {
      out.push_back(node - (shard_count - 1));
      continue;
    }
    const ShardCut& cut = cuts[static_cast<std::size_t>(node)];
    const Axis axis = static_cast<Axis>(cut.axis);
    if (box.hi[axis] >= cut.pos) stack[sp++] = 2 * node + 2;
    if (box.lo[axis] <= cut.pos) stack[sp++] = 2 * node + 1;
  }
}

void ShardPlan::route_sphere(const Vec3& center, float radius,
                             std::vector<int>& out) const {
  out.clear();
  const float r = std::max(radius, 0.0f);
  int stack[kMaxShardCount];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const int node = stack[--sp];
    if (node >= shard_count - 1) {
      out.push_back(node - (shard_count - 1));
      continue;
    }
    const ShardCut& cut = cuts[static_cast<std::size_t>(node)];
    const Axis axis = static_cast<Axis>(cut.axis);
    const float c = center[axis];
    // Finite center ± infinite radius is ±infinity, so both sides route.
    if (c + r >= cut.pos) stack[sp++] = 2 * node + 2;
    if (c - r <= cut.pos) stack[sp++] = 2 * node + 1;
  }
}

void ShardPlan::route_all(std::vector<int>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) out.push_back(s);
}

}  // namespace kdtune
