#include "shard/wire.hpp"

#include <csignal>
#include <cstring>
#include <mutex>

#include <errno.h>
#include <unistd.h>

namespace kdtune::wire {

namespace {

// --- little put/get helpers. Raw host little-endian, like the tree
// serialization streams this protocol embeds; bounds-checked on the read
// side so a truncated or corrupt frame decodes to `false`, never UB.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

template <typename T>
void put_raw(std::vector<std::uint8_t>& out, T v) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void put_vec3(std::vector<std::uint8_t>& out, const Vec3& v) {
  put_raw(out, v.x);
  put_raw(out, v.y);
  put_raw(out, v.z);
}

struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() { return get<std::uint8_t>(); }

  template <typename T>
  T get() {
    T v{};
    if (pos + sizeof(T) > data.size()) {
      ok = false;
      return v;
    }
    std::memcpy(&v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  Vec3 vec3() {
    Vec3 v;
    v.x = get<float>();
    v.y = get<float>();
    v.z = get<float>();
    return v;
  }

  bool done() const { return ok && pos == data.size(); }
};

void put_ray(std::vector<std::uint8_t>& out, const Ray& ray) {
  put_vec3(out, ray.origin);
  put_vec3(out, ray.dir);
  put_raw(out, ray.t_min);
  put_raw(out, ray.t_max);
}

Ray get_ray(Cursor& c) {
  const Vec3 origin = c.vec3();
  const Vec3 dir = c.vec3();
  Ray ray(origin, dir);  // recomputes inv_dir
  ray.t_min = c.get<float>();
  ray.t_max = c.get<float>();
  return ray;
}

void put_hit(std::vector<std::uint8_t>& out, const Hit& hit) {
  put_raw(out, hit.t);
  put_raw(out, hit.triangle);
  put_raw(out, hit.u);
  put_raw(out, hit.v);
}

Hit get_hit(Cursor& c) {
  Hit hit;
  hit.t = c.get<float>();
  hit.triangle = c.get<std::uint32_t>();
  hit.u = c.get<float>();
  hit.v = c.get<float>();
  return hit;
}

void put_nearest(std::vector<std::uint8_t>& out, const NearestResult& r) {
  put_raw(out, r.triangle);
  put_vec3(out, r.point);
  put_raw(out, r.distance_sq);
}

NearestResult get_nearest(Cursor& c) {
  NearestResult r;
  r.triangle = c.get<std::uint32_t>();
  r.point = c.vec3();
  r.distance_sq = c.get<float>();
  return r;
}

/// Count prefix for the variable-length sections; capped at frame size on
/// decode so a corrupt count cannot drive a giant resize.
bool plausible(std::uint32_t count, const Cursor& c, std::size_t elem_bytes) {
  return static_cast<std::size_t>(count) * elem_bytes <=
         c.data.size() - c.pos + elem_bytes;
}

bool io_write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool io_read_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n <= 0) {  // 0 = EOF mid-frame: treat like an error
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

void encode_query(const ShardQuery& query, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kQuery));
  put_u8(out, static_cast<std::uint8_t>(query.kind));
  put_raw(out, query.id);
  switch (query.kind) {
    case QueryKind::kClosestHit:
    case QueryKind::kAnyHit:
      put_ray(out, query.ray);
      break;
    case QueryKind::kPacket:
      put_raw(out, static_cast<std::uint32_t>(query.rays.size()));
      for (const Ray& ray : query.rays) put_ray(out, ray);
      break;
    case QueryKind::kRange:
      put_vec3(out, query.box.lo);
      put_vec3(out, query.box.hi);
      break;
    case QueryKind::kNearest:
      put_vec3(out, query.point);
      put_raw(out, query.k);
      put_raw(out, query.max_distance);
      break;
    case QueryKind::kClosestPoint:
      put_vec3(out, query.point);
      put_raw(out, query.max_distance);
      break;
  }
}

bool decode_query(std::span<const std::uint8_t> body, ShardQuery& query) {
  Cursor c{body};
  const std::uint8_t kind = c.u8();
  if (!c.ok || kind >= kQueryKindCount) return false;
  query.kind = static_cast<QueryKind>(kind);
  query.id = c.get<std::uint64_t>();
  switch (query.kind) {
    case QueryKind::kClosestHit:
    case QueryKind::kAnyHit:
      query.ray = get_ray(c);
      break;
    case QueryKind::kPacket: {
      const std::uint32_t count = c.get<std::uint32_t>();
      if (!c.ok || !plausible(count, c, 8 * sizeof(float))) return false;
      query.rays.clear();
      query.rays.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) query.rays.push_back(get_ray(c));
      break;
    }
    case QueryKind::kRange: {
      const Vec3 lo = c.vec3();
      const Vec3 hi = c.vec3();
      query.box = AABB(lo, hi);
      break;
    }
    case QueryKind::kNearest:
      query.point = c.vec3();
      query.k = c.get<std::uint32_t>();
      query.max_distance = c.get<float>();
      break;
    case QueryKind::kClosestPoint:
      query.point = c.vec3();
      query.max_distance = c.get<float>();
      break;
  }
  return c.done();
}

void encode_result(std::uint64_t id, const QueryResponse& resp,
                   std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kResult));
  put_u8(out, static_cast<std::uint8_t>(resp.kind));
  put_raw(out, id);
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  switch (resp.kind) {
    case QueryKind::kClosestHit:
      put_hit(out, resp.hit);
      break;
    case QueryKind::kAnyHit:
      put_u8(out, resp.any ? 1 : 0);
      break;
    case QueryKind::kPacket:
      put_raw(out, static_cast<std::uint32_t>(resp.hits.size()));
      for (const Hit& hit : resp.hits) put_hit(out, hit);
      break;
    case QueryKind::kRange:
      put_raw(out, static_cast<std::uint32_t>(resp.range_ids.size()));
      for (const std::uint32_t tri : resp.range_ids) put_raw(out, tri);
      break;
    case QueryKind::kNearest:
      put_raw(out, static_cast<std::uint32_t>(resp.neighbors.size()));
      for (const NearestResult& r : resp.neighbors) put_nearest(out, r);
      break;
    case QueryKind::kClosestPoint:
      put_nearest(out, resp.nearest);
      break;
  }
}

bool decode_result(std::span<const std::uint8_t> body, std::uint64_t& id,
                   QueryResponse& resp) {
  Cursor c{body};
  const std::uint8_t kind = c.u8();
  if (!c.ok || kind >= kQueryKindCount) return false;
  resp.kind = static_cast<QueryKind>(kind);
  id = c.get<std::uint64_t>();
  const std::uint8_t status = c.u8();
  if (!c.ok || status > static_cast<std::uint8_t>(QueryStatus::kError)) {
    return false;
  }
  resp.status = static_cast<QueryStatus>(status);
  switch (resp.kind) {
    case QueryKind::kClosestHit:
      resp.hit = get_hit(c);
      break;
    case QueryKind::kAnyHit:
      resp.any = c.u8() != 0;
      break;
    case QueryKind::kPacket: {
      const std::uint32_t count = c.get<std::uint32_t>();
      if (!c.ok || !plausible(count, c, 4 * sizeof(float))) return false;
      resp.hits.clear();
      resp.hits.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) resp.hits.push_back(get_hit(c));
      break;
    }
    case QueryKind::kRange: {
      const std::uint32_t count = c.get<std::uint32_t>();
      if (!c.ok || !plausible(count, c, sizeof(std::uint32_t))) return false;
      resp.range_ids.clear();
      resp.range_ids.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        resp.range_ids.push_back(c.get<std::uint32_t>());
      }
      break;
    }
    case QueryKind::kNearest: {
      const std::uint32_t count = c.get<std::uint32_t>();
      if (!c.ok || !plausible(count, c, 5 * sizeof(float))) return false;
      resp.neighbors.clear();
      resp.neighbors.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        resp.neighbors.push_back(get_nearest(c));
      }
      break;
    }
    case QueryKind::kClosestPoint:
      resp.nearest = get_nearest(c);
      break;
  }
  return c.done();
}

bool write_frame(int fd, std::span<const std::uint8_t> body) {
  if (body.empty() || body.size() > kMaxFrameBytes) return false;
  std::uint8_t prefix[4];
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  std::memcpy(prefix, &len, sizeof(len));
  return io_write_all(fd, prefix, sizeof(prefix)) &&
         io_write_all(fd, body.data(), body.size());
}

bool read_frame(int fd, MsgType& type, std::vector<std::uint8_t>& body) {
  std::uint8_t prefix[4];
  if (!io_read_all(fd, prefix, sizeof(prefix))) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  if (len == 0 || len > kMaxFrameBytes) return false;
  body.resize(len);
  if (!io_read_all(fd, body.data(), body.size())) return false;
  type = static_cast<MsgType>(body.front());
  body.erase(body.begin());
  return true;
}

}  // namespace kdtune::wire
