#include "dynamic/frame_tuner.hpp"

#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "obs/tuner_log.hpp"

namespace kdtune {

FrameTuner::FrameTuner(FrameTunerOptions opts) : opts_(std::move(opts)) {
  if (opts_.algorithms.empty()) {
    throw std::invalid_argument("FrameTuner: need at least one algorithm");
  }
  candidates_.reserve(opts_.algorithms.size());
  for (const Algorithm a : opts_.algorithms) {
    Candidate c;
    c.algorithm = a;
    c.tuner = std::make_unique<Tuner>(nullptr, opts_.tuner);
    candidates_.push_back(std::move(c));
  }
  // Parameters are registered only once every candidate sits at its final
  // address: each Tuner holds raw pointers into its candidate's config, and
  // candidates_ never resizes after construction (FrameTuner is immovable).
  for (Candidate& c : candidates_) {
    register_build_parameters(*c.tuner, c.config, c.algorithm, opts_.ranges);
    // The backend dimension is always registered last, after the build knobs
    // ([CI, CB, S] (+R)) — best_config()/best_backend() rely on this order.
    c.tunes_backend =
        opts_.tune_backend && c.algorithm != Algorithm::kLazy;
    if (c.tunes_backend) {
      c.tuner->register_parameter(&c.backend, 0, kQueryBackendCount - 1, 1,
                                  std::string(kQueryBackendParam));
    }
  }
  // A single candidate needs no selection phase: route to it immediately so
  // selection_done() is trivially true and the budget never interferes.
  if (candidates_.size() == 1) {
    phase_ = 1;
    winner_ = 0;
  }
}

std::size_t FrameTuner::warm_start(const ConfigCache& cache,
                                   const std::string& scene,
                                   unsigned threads) {
  const std::string hw_suffix = HardwareDescriptor::detect(threads).suffix();
  std::size_t warmed = 0;
  for (Candidate& c : candidates_) {
    const std::string algorithm(to_string(c.algorithm));
    const auto entry = cache.lookup_compat(
        ConfigCache::key_for(scene, algorithm, threads,
                             to_string(QueryBackend::kCompact), hw_suffix),
        ConfigCache::key_for(scene, algorithm, threads));
    if (!entry) continue;
    // Cached entries persist the build knobs only ([CI, CB, S] (+R)); when
    // this candidate also tunes the backend dimension, seed it at kCompact.
    std::vector<std::int64_t> values = entry->values;
    if (c.tunes_backend && values.size() == c.tuner->parameter_count() - 1) {
      values.push_back(0);
    }
    c.tuner->warm_start(values);
    c.warmed = true;
    ++warmed;
  }
  return warmed;
}

std::size_t FrameTuner::warm_start_db(const ConfigDatabase& db,
                                      const SceneFeatures& features,
                                      const HardwareDescriptor& hw) {
  std::size_t warmed = 0;
  for (Candidate& c : candidates_) {
    if (c.warmed) continue;  // the cache's scene-exact seed stays
    const auto match =
        db.nearest("build", features, hw, std::string(to_string(c.algorithm)));
    if (match.entry == nullptr ||
        match.kind == ConfigDatabase::MatchKind::kFar) {
      continue;
    }
    std::int64_t ci = c.config.ci, cb = c.config.cb, s = c.config.s,
                 r = c.config.r;
    for (const auto& [name, value] : match.entry->params) {
      if (name == "ci") ci = value;
      if (name == "cb") cb = value;
      if (name == "s") s = value;
      if (name == "r") r = value;
    }
    std::vector<std::int64_t> values{ci, cb, s};
    if (c.algorithm == Algorithm::kLazy) values.push_back(r);
    if (c.tunes_backend) {
      // Seed the layout dimension from the measured backend when the entry
      // names one this candidate can serve.
      QueryBackend backend = QueryBackend::kCompact;
      backend_from_string(match.entry->backend, backend);
      values.push_back(static_cast<std::int64_t>(backend));
    }
    c.tuner->warm_start(values);
    c.warmed = true;
    ++warmed;
  }
  return warmed;
}

FrameTuner::Candidate& FrameTuner::active() {
  return candidates_[selection_done() ? winner_ : phase_];
}

const FrameTuner::Candidate& FrameTuner::active() const {
  return candidates_[selection_done() ? winner_ : phase_];
}

bool FrameTuner::selection_done() const noexcept {
  return phase_ >= candidates_.size();
}

Algorithm FrameTuner::current_algorithm() const noexcept {
  return active().algorithm;
}

FrameTuner::Trial FrameTuner::next_trial() {
  Candidate& c = active();
  Trial trial;
  trial.algorithm = c.algorithm;
  if (!probe_outstanding_) {
    // A fresh proposal is (or becomes) applied to c.config: the first trial
    // applies explicitly; later ones were applied by Tuner::record() when the
    // previous probe retired.
    if (!c.started) {
      c.tuner->apply_next();
      c.started = true;
    }
    trial.probe = true;
    probe_outstanding_ = true;
  }
  trial.config = c.config;
  if (c.tunes_backend) trial.backend = backend_from_int(c.backend);
  return trial;
}

void FrameTuner::set_log(TunerLog* log) {
  for (Candidate& c : candidates_) {
    c.tuner->set_log(log, "frame:" + std::string(to_string(c.algorithm)));
  }
}

void FrameTuner::frame_retired(bool probe, double build_seconds,
                               double query_seconds) {
  if (!probe) return;
  if (!probe_outstanding_) {
    throw std::logic_error("FrameTuner: probe retired without an outstanding "
                           "probe trial");
  }
  Candidate& c = active();
  // record() reports the measurement for the applied proposal and applies the
  // next one into c.config (fig. 4's "apply new configuration" on Stop()).
  c.tuner->record(build_seconds + opts_.query_weight * query_seconds);
  trace_instant("frame.probe_retired", "tuner");
  probe_outstanding_ = false;
  ++iterations_;
  ++c.probe_frames;
  maybe_advance_selection();
}

void FrameTuner::maybe_advance_selection() {
  if (selection_done()) return;
  const Candidate& c = candidates_[phase_];
  if (c.probe_frames < opts_.frames_per_algorithm && !c.tuner->converged()) {
    return;
  }
  ++phase_;
  if (!selection_done()) return;
  // Selection finished: pick the fastest candidate; its online tuner keeps
  // running (drift re-tunes still work after selection).
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const double t = candidates_[i].tuner->best_time();
    if (t > 0.0 && t < best) {
      best = t;
      winner_ = i;
    }
  }
}

Algorithm FrameTuner::best_algorithm() const { return active().algorithm; }

BuildConfig FrameTuner::best_config() const {
  const Candidate& c = active();
  const std::vector<std::int64_t> values = c.tuner->best_values();
  BuildConfig config = c.config;
  if (values.size() >= 3) {
    config.ci = values[0];
    config.cb = values[1];
    config.s = values[2];
  }
  // Layout-aware: index 3 is R only for the lazy algorithm; for backend-tuned
  // candidates the trailing value is the QueryBackend, not a build knob.
  if (c.algorithm == Algorithm::kLazy && values.size() > 3) {
    config.r = values[3];
  }
  return config;
}

QueryBackend FrameTuner::best_backend() const {
  const Candidate& c = active();
  if (!c.tunes_backend) return QueryBackend::kCompact;
  return backend_from_int(c.tuner->best_values().back());
}

double FrameTuner::best_objective() const { return active().tuner->best_time(); }

std::size_t FrameTuner::iterations() const noexcept { return iterations_; }

bool FrameTuner::converged() const { return active().tuner->converged(); }

const Tuner& FrameTuner::tuner(Algorithm a) const {
  for (const Candidate& c : candidates_) {
    if (c.algorithm == a) return *c.tuner;
  }
  throw std::invalid_argument("FrameTuner: algorithm is not a candidate");
}

}  // namespace kdtune
