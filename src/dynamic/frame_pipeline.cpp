#include "dynamic/frame_pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "tuning/measurement.hpp"

namespace kdtune {

namespace {

FramePipeline::Clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<FramePipeline::Clock::duration>(
      std::chrono::duration<double>(seconds));
}

double to_seconds(FramePipeline::Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

FramePipeline::FramePipeline(std::shared_ptr<const AnimatedScene> scene,
                             SceneRegistry& registry,
                             FramePipelineOptions opts)
    : scene_(std::move(scene)), registry_(registry), opts_(opts) {
  if (!scene_) {
    throw std::invalid_argument("FramePipeline: null scene");
  }
  if (scene_->frame_count() == 0) {
    throw std::invalid_argument("FramePipeline: animation has no frames");
  }
  name_ = scene_->name();
}

FramePipeline::~FramePipeline() {
  // The build task captures `this`; it must finish before we go away. The
  // staged tree (if any) retires unpublished.
  if (inflight_.has_value()) wait_for_staged(nullptr);
}

FrameTuner::Trial FramePipeline::next_trial() {
  if (opts_.tuner != nullptr) return opts_.tuner->next_trial();
  FrameTuner::Trial trial;
  trial.algorithm = opts_.algorithm;
  if (opts_.config) trial.config = *opts_.config;
  trial.backend = opts_.backend;
  trial.probe = false;
  return trial;
}

FrameTick FramePipeline::begin() {
  if (began_) throw std::logic_error("FramePipeline::begin: called twice");
  began_ = true;
  TraceSpan span("frame.begin", "frame");

  AdmitOptions admit;
  admit.compact = opts_.compact;
  admit.backend = opts_.backend;
  bool probe = false;
  if (opts_.tuner != nullptr) {
    const FrameTuner::Trial trial = opts_.tuner->next_trial();
    admit.algorithm = trial.algorithm;
    admit.config = trial.config;
    admit.backend = trial.backend;
    probe = trial.probe;
  } else {
    admit.algorithm = opts_.algorithm;
    admit.config = opts_.config;
  }

  const auto snap = registry_.admit(name_, scene_->frame(0), admit);
  serving_frame_ = 0;
  serving_probe_ = probe;
  serving_build_seconds_ = snap->build_seconds;
  serving_version_ = snap->version;
  next_frame_ = 1;
  drained_ = scene_->frame_count() == 1 && !opts_.loop;
  if (opts_.loop && scene_->frame_count() == 1) next_frame_ = 0;

  if (opts_.target_frame_seconds > 0.0) {
    deadline_ = Clock::now() + to_duration(opts_.target_frame_seconds);
  }

  FrameTick tick;
  tick.published = true;
  tick.frame = 0;
  tick.version = snap->version;
  tick.build_seconds = snap->build_seconds;
  tick.algorithm = snap->algorithm;
  tick.config = snap->config;
  tick.backend = snap->backend;
  note_published(tick, 0.0);

  if (opts_.overlap && !drained_) launch_build(next_frame_);
  return tick;
}

void FramePipeline::launch_build(std::size_t frame) {
  const FrameTuner::Trial trial = next_trial();
  // The trial configuration is copied into the task now: the tuner may write
  // the next proposal into its storage while this build runs.
  const std::optional<BuildConfig> config =
      (opts_.tuner != nullptr || opts_.config) ? std::optional(trial.config)
                                               : std::nullopt;
  const Algorithm algorithm = trial.algorithm;
  const QueryBackend backend = trial.backend;

  InFlight inflight;
  inflight.frame = frame;
  inflight.probe = trial.probe;
  auto promise =
      std::make_shared<std::promise<SceneRegistry::StagedSnapshot>>();
  inflight.staged = promise->get_future();
  registry_.pool().submit([this, frame, config, algorithm, backend, promise] {
    try {
      // This span is what makes the build-overlap visible in a trace: it
      // sits on a pool worker's track while frame.boundary spans run on
      // the driver thread.
      TraceSpan span("frame.build", "frame");
      promise->set_value(registry_.stage(name_, scene_->frame(frame), config,
                                         algorithm, backend));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  inflight_ = std::move(inflight);
}

SceneRegistry::StagedSnapshot FramePipeline::wait_for_staged(
    double* wait_seconds) {
  TraceSpan span("frame.wait_build", "frame");
  Stopwatch clock;
  clock.start();
  std::future<SceneRegistry::StagedSnapshot>& fut = inflight_->staged;
  // Help the pool instead of blocking: keeps zero-worker pools live and puts
  // the boundary thread to work when the workers are saturated by the build.
  while (fut.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!registry_.pool().try_run_one()) {
      fut.wait_for(std::chrono::microseconds(100));
    }
  }
  if (wait_seconds != nullptr) *wait_seconds = clock.elapsed();
  SceneRegistry::StagedSnapshot staged = fut.get();
  inflight_.reset();
  return staged;
}

FrameTick FramePipeline::advance(double query_seconds) {
  if (!began_) {
    throw std::logic_error("FramePipeline::advance: begin() first");
  }
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    totals_.total_query_seconds += query_seconds;
  }

  // Retire the frame that just finished serving: its measurement — build
  // time of its tree plus the weighted query time reported now — completes
  // the tuner's cycle when it was the probe frame.
  if (opts_.tuner != nullptr) {
    opts_.tuner->frame_retired(serving_probe_, serving_build_seconds_,
                               query_seconds);
    serving_probe_ = false;
  }

  TraceSpan boundary_span("frame.boundary", "frame");
  if (drained_ && !inflight_.has_value()) {
    record_best();
    FrameTick tick;
    tick.published = false;
    tick.frame = serving_frame_;
    tick.version = serving_version_;
    return tick;
  }

  const bool paced = opts_.target_frame_seconds > 0.0;

  SceneRegistry::StagedSnapshot staged;
  std::size_t staged_frame = 0;
  bool staged_probe = false;
  double wait_seconds = 0.0;
  if (opts_.overlap) {
    // Publish no earlier than the frame boundary, then wait out the build.
    if (paced) std::this_thread::sleep_until(deadline_);
    staged_frame = inflight_->frame;
    staged_probe = inflight_->probe;
    staged = wait_for_staged(&wait_seconds);
  } else {
    // Sequential baseline: the build runs here, after retirement, on the
    // boundary thread (parallelized over the pool) — nothing overlaps.
    const FrameTuner::Trial trial = next_trial();
    const std::optional<BuildConfig> config =
        (opts_.tuner != nullptr || opts_.config) ? std::optional(trial.config)
                                                 : std::nullopt;
    staged_frame = next_frame_;
    staged_probe = trial.probe;
    Stopwatch clock;
    clock.start();
    staged = registry_.stage(name_, scene_->frame(staged_frame), config,
                             trial.algorithm, trial.backend);
    wait_seconds = clock.elapsed();
    if (paced) std::this_thread::sleep_until(deadline_);
  }
  if (!staged.valid()) {
    throw std::runtime_error("FramePipeline: scene missing from registry");
  }

  double lag_seconds = 0.0;
  if (paced) {
    const Clock::time_point now = Clock::now();
    if (now > deadline_) lag_seconds = to_seconds(now - deadline_);
  }

  trace_instant("frame.publish", "frame");
  trace_counter("frame.lag_ms", lag_seconds * 1e3, "frame");
  const auto snap = registry_.publish_staged(std::move(staged));
  if (!snap) {
    throw std::runtime_error("FramePipeline: scene removed while staged");
  }
  if (snap->version != serving_version_ + 1) {
    // The pipeline is the only writer of its scene; any other publication
    // interleaving would break the exactly-once frame contract.
    throw std::logic_error("FramePipeline: publication version skew");
  }

  serving_frame_ = staged_frame;
  serving_probe_ = staged_probe;
  serving_build_seconds_ = snap->build_seconds;
  serving_version_ = snap->version;

  // Pacing bookkeeping. Carry-over reschedules from the actual publication
  // (no death spiral: one long build delays the schedule instead of making
  // every later frame "late"); skip-ahead keeps the absolute schedule and
  // drops animation frames to catch back up.
  std::size_t skip = 0;
  if (paced) {
    const auto interval = to_duration(opts_.target_frame_seconds);
    if (lag_seconds > 0.0) {
      if (opts_.lag_policy == LagPolicy::kSkipAhead) {
        skip = static_cast<std::size_t>(lag_seconds /
                                        opts_.target_frame_seconds);
        deadline_ += interval * static_cast<long>(1 + skip);
      } else {
        deadline_ = Clock::now() + interval;
      }
    } else {
      deadline_ += interval;
    }
  }

  // Choose the next frame to build.
  const std::size_t count = scene_->frame_count();
  std::size_t skipped = 0;
  if (opts_.loop) {
    next_frame_ = (staged_frame + 1 + skip) % count;
    skipped = skip;
  } else if (staged_frame + 1 >= count) {
    drained_ = true;
  } else {
    // The final frame is always presented: skipping never drops it.
    next_frame_ = std::min(staged_frame + 1 + skip, count - 1);
    skipped = next_frame_ - (staged_frame + 1);
  }

  FrameTick tick;
  tick.published = true;
  tick.frame = staged_frame;
  tick.version = snap->version;
  tick.skipped = skipped;
  tick.build_seconds = snap->build_seconds;
  tick.wait_seconds = wait_seconds;
  tick.lag_seconds = lag_seconds;
  tick.algorithm = snap->algorithm;
  tick.config = snap->config;
  tick.backend = snap->backend;
  note_published(tick, query_seconds);

  if (!drained_ && opts_.overlap) launch_build(next_frame_);
  return tick;
}

bool FramePipeline::done() const noexcept {
  return began_ && drained_ && !inflight_.has_value();
}

void FramePipeline::record_best() {
  if (recorded_best_ || opts_.tuner == nullptr) return;
  if (opts_.tuner->iterations() == 0) return;
  registry_.record_tuned(name_, opts_.tuner->best_config(),
                         opts_.tuner->best_objective(),
                         opts_.tuner->best_algorithm());
  recorded_best_ = true;
}

void FramePipeline::note_published(const FrameTick& tick,
                                   double /*query_seconds*/) {
  lag_hist_.record_seconds(tick.lag_seconds);
  std::lock_guard<std::mutex> lk(stats_mutex_);
  ++totals_.frames_published;
  totals_.frames_skipped += tick.skipped;
  if (tick.lag_seconds > 0.0) ++totals_.late_frames;
  totals_.total_build_seconds += tick.build_seconds;
  totals_.total_wait_seconds += tick.wait_seconds;
  totals_.max_lag_seconds =
      std::max(totals_.max_lag_seconds, tick.lag_seconds);
}

FramePipelineStats FramePipeline::stats() const {
  FramePipelineStats out;
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    out = totals_;
  }
  out.lag_p50_seconds = lag_hist_.quantile_seconds(0.5);
  out.lag_p99_seconds = lag_hist_.quantile_seconds(0.99);
  return out;
}

}  // namespace kdtune
