#pragma once

// FramePipeline — the dynamic-scene frame loop as a long-lived service.
//
// The paper's headline scenario is geometry that changes every frame
// (Toasters, Wood Doll, Fairy Forest), forcing a kd-tree rebuild per frame —
// exactly where online autotuning pays off because measurements amortize
// across frames. This pipeline connects the existing substrates into that
// loop: while queries run against frame N's tree (published as a
// SceneRegistry version and typically served through QueryService), the
// builder constructs frame N+1's tree asynchronously on the shared
// ThreadPool, and the new tree is hot-swapped in at the frame boundary
// (double-buffered via SceneRegistry::stage() / publish_staged(); the old
// version retires RCU-style when its last reader drops it).
//
// Contracts (specified in docs/DYNAMIC.md, tested in
// tests/test_frame_pipeline.cpp):
//   * Exactly-once publication: every advance() publishes exactly one staged
//     tree; registry versions increase by exactly 1 per published frame and
//     animation frame indices are strictly monotone (modulo looping).
//   * Swap timing: publication happens only inside begin()/advance() — never
//     from the build task — so the caller always knows which frame serves.
//   * Result parity: queries against the published tree are bit-identical to
//     a sequential build-then-query loop over the same frames (hit distances
//     are exact across builders/configs; see core/differential.hpp).
//   * Pacing: with a target frame interval, advance() publishes no earlier
//     than the frame deadline. A build running past the deadline either
//     carries over (kCarryOver: publish late, reschedule from the actual
//     publication) or skips ahead (kSkipAhead: drop animation frames to
//     catch back up to the absolute schedule). Lag lands in a LogHistogram.
//
// The pipeline is driven by one caller thread (begin() once, then advance()
// per frame); queries may run from any number of other threads via the
// registry/QueryService. stats() is safe from any thread.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/histogram.hpp"
#include "dynamic/frame_tuner.hpp"
#include "scene/animation.hpp"
#include "serve/scene_registry.hpp"

namespace kdtune {

/// What to do when the next frame's build is still running at the frame
/// deadline (paced mode only).
enum class LagPolicy {
  kCarryOver,  ///< keep serving frame N past its deadline; publish late
  kSkipAhead,  ///< drop animation frames to catch back up to the schedule
};

struct FramePipelineOptions {
  /// Builder algorithm for fixed-config operation; a FrameTuner overrides
  /// this per trial (including algorithm selection).
  Algorithm algorithm = Algorithm::kInPlace;
  /// Fixed build configuration; unset falls back to the registry's attached
  /// ConfigCache entry, then kBaseConfig (ignored when a tuner is attached).
  std::optional<BuildConfig> config{};
  /// Re-emit eager builds into the compact serving layout.
  bool compact = true;
  /// Fixed serving backend (compact / wide4 / wide8 / bvh) for each frame's
  /// tree; requires `compact`. A FrameTuner with tune_backend overrides this
  /// per trial, making the layout part of the per-frame objective.
  QueryBackend backend = QueryBackend::kCompact;
  /// Overlap the next frame's build with the current frame's queries. Off
  /// gives the sequential build-then-query baseline bench_dynamic compares
  /// against (build runs inside advance(), after the previous frame retires).
  bool overlap = true;
  /// Target seconds per frame; 0 = unpaced (publish as soon as built).
  double target_frame_seconds = 0.0;
  LagPolicy lag_policy = LagPolicy::kCarryOver;
  /// Wrap past the last animation frame (long-lived service) instead of
  /// draining.
  bool loop = false;
  /// Online tuner driving algorithm/config across frames; not owned, may be
  /// nullptr (fixed config). Must outlive the pipeline.
  FrameTuner* tuner = nullptr;
};

/// Result of one frame boundary.
struct FrameTick {
  /// False once the animation is exhausted (non-loop): nothing was published
  /// and the pipeline has recorded its tuned configuration.
  bool published = false;
  std::size_t frame = 0;       ///< animation frame index now being served
  std::uint64_t version = 0;   ///< registry version serving it
  std::size_t skipped = 0;     ///< animation frames dropped at this boundary
  double build_seconds = 0.0;  ///< construction time of the published tree
  double wait_seconds = 0.0;   ///< advance() blocked on the build this long
  double lag_seconds = 0.0;    ///< publication time past the frame deadline
  Algorithm algorithm = Algorithm::kInPlace;
  BuildConfig config{};        ///< configuration the published tree used
  /// Serving backend of the published snapshot (kCompact for lazy /
  /// non-compacted frames).
  QueryBackend backend = QueryBackend::kCompact;
};

struct FramePipelineStats {
  std::uint64_t frames_published = 0;
  std::uint64_t frames_skipped = 0;
  std::uint64_t late_frames = 0;   ///< paced frames published past deadline
  double total_build_seconds = 0.0;
  double total_query_seconds = 0.0;
  double total_wait_seconds = 0.0;  ///< boundary time blocked on builds
  double lag_p50_seconds = 0.0;
  double lag_p99_seconds = 0.0;
  double max_lag_seconds = 0.0;
};

class FramePipeline {
 public:
  using Clock = std::chrono::steady_clock;

  /// The pipeline publishes under `scene->name()` in `registry` and builds
  /// on the registry's pool.
  FramePipeline(std::shared_ptr<const AnimatedScene> scene,
                SceneRegistry& registry, FramePipelineOptions opts = {});

  /// Waits for any in-flight build (without publishing it).
  ~FramePipeline();

  FramePipeline(const FramePipeline&) = delete;
  FramePipeline& operator=(const FramePipeline&) = delete;

  /// Builds and publishes frame 0 synchronously (the service cannot answer
  /// queries before the first tree exists), then starts the overlapped build
  /// of frame 1. Call exactly once, before the first advance().
  FrameTick begin();

  /// The frame boundary. `query_seconds` is the caller-measured query/render
  /// time of the frame currently serving (feeds the tuner objective
  /// m = t_build + w * t_query). Retires the serving frame, waits for the
  /// staged build per the pacing policy, publishes it, and launches the next
  /// build. Returns published=false once the animation is exhausted.
  FrameTick advance(double query_seconds = 0.0);

  /// True when the last animation frame is serving and no build is in flight
  /// (always false with loop=true).
  bool done() const noexcept;

  /// Records the tuner's best configuration with the registry (and its
  /// attached ConfigCache) under the tuner's best algorithm. Called
  /// automatically when the animation drains; idempotent; no-op without a
  /// tuner or before the first completed measurement.
  void record_best();

  std::size_t current_frame() const noexcept { return serving_frame_; }
  const std::string& scene_name() const noexcept { return name_; }
  const AnimatedScene& scene() const noexcept { return *scene_; }
  FrameTuner* tuner() const noexcept { return opts_.tuner; }

  FramePipelineStats stats() const;

 private:
  struct InFlight {
    std::size_t frame = 0;
    bool probe = false;
    std::future<SceneRegistry::StagedSnapshot> staged;
  };

  FrameTuner::Trial next_trial();
  void launch_build(std::size_t frame);
  SceneRegistry::StagedSnapshot wait_for_staged(double* wait_seconds);
  void note_published(const FrameTick& tick, double query_seconds);

  std::shared_ptr<const AnimatedScene> scene_;
  SceneRegistry& registry_;
  FramePipelineOptions opts_;
  std::string name_;
  bool began_ = false;
  bool recorded_best_ = false;

  // Serving state (driver thread only).
  std::size_t serving_frame_ = 0;
  bool serving_probe_ = false;
  double serving_build_seconds_ = 0.0;
  std::uint64_t serving_version_ = 0;

  std::optional<InFlight> inflight_;
  std::size_t next_frame_ = 0;  ///< next animation frame to build
  bool drained_ = false;        ///< no further frames to build (non-loop)

  Clock::time_point deadline_{};  ///< paced mode: next frame boundary

  mutable std::mutex stats_mutex_;
  FramePipelineStats totals_;
  LogHistogram lag_hist_;  ///< nanoseconds of publication lag
};

}  // namespace kdtune
