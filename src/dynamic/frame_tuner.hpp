#pragma once

// FrameTuner — the paper's online tuning loop pointed at the dynamic-scene
// frame pipeline's *true* per-frame objective: build time plus weighted query
// time (m = t_c + w * t_q, the fig. 4 measurement with the render term
// generalized to whatever query traffic the frame served). It owns the
// BuildConfig parameter storage the Tuner writes into and, when given several
// candidate algorithms, runs the selection strategy the paper's conclusion
// suggests — tune one algorithm after another, then route every further frame
// to the winner, whose tuner keeps running online.
//
// The probe-frame protocol. In the overlapped pipeline a frame's measurement
// completes one boundary *after* its build starts (the build overlaps the
// previous frame's queries; the query time arrives when the frame retires).
// Tuner::record() auto-applies the next proposal, so recording at the wrong
// moment would attribute a measurement to the wrong configuration. FrameTuner
// therefore tags exactly one in-flight build per tuner iteration as the
// *probe*: next_trial() hands out the current proposal, marking it probe when
// a fresh proposal is outstanding; frame_retired() completes the measurement
// only for probe frames (build_seconds of that frame's tree + query_weight *
// its query seconds) and lets the Tuner advance. Non-probe frames reuse the
// trial configuration unrecorded. Sequentially (no overlap) every frame is a
// probe and the loop degenerates to the paper's fig. 4; overlapped, tuner
// iterations advance every other frame while the pipeline never stalls.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/base_config.hpp"
#include "dse/config_db.hpp"
#include "kdtree/builder.hpp"
#include "kdtree/query_backend.hpp"
#include "tuning/config_cache.hpp"
#include "tuning/tuner.hpp"

namespace kdtune {

struct FrameTunerOptions {
  /// Candidate algorithms. One entry tunes that algorithm's knobs only; more
  /// entries add the selection phase (each candidate gets probe frames until
  /// convergence or its budget, then the best routes all further frames).
  std::vector<Algorithm> algorithms{Algorithm::kInPlace};
  /// Probe-frame budget per candidate during the selection phase.
  std::size_t frames_per_algorithm = 24;
  /// w in the objective m = t_build + w * t_query.
  double query_weight = 1.0;
  /// Add the serving query backend (compact / wide4 / wide8 / bvh) as one
  /// more tuned dimension of each non-lazy candidate: the frame objective
  /// then weighs a layout's collapse cost against its query speedup per
  /// scene. Lazy candidates keep serving the builder layout (no compact
  /// source to collapse) and always issue kCompact trials.
  bool tune_backend = false;
  TuningRanges ranges{};
  TunerOptions tuner{};
};

class FrameTuner {
 public:
  explicit FrameTuner(FrameTunerOptions opts = {});

  FrameTuner(const FrameTuner&) = delete;
  FrameTuner& operator=(const FrameTuner&) = delete;

  /// Seeds each candidate's search from the cache entry for
  /// (scene, algorithm, threads) — the canonical backend/hardware-keyed
  /// entry first, then the legacy pre-backend key. Call before the first
  /// next_trial(). Returns the number of candidates warm-started.
  std::size_t warm_start(const ConfigCache& cache, const std::string& scene,
                         unsigned threads);

  /// Seeds each candidate from the ConfigDatabase's nearest measured
  /// context (docs/EXPLORE.md): exact and near matches seed the search at
  /// the stored parameters (the online loop keeps refining); far misses
  /// leave the candidate cold. Returns the number warm-started. Typically
  /// combined with warm_start(): cache first (same scene), database after
  /// (candidates the cache missed).
  std::size_t warm_start_db(const ConfigDatabase& db,
                            const SceneFeatures& features,
                            const HardwareDescriptor& hw);

  struct Trial {
    Algorithm algorithm = Algorithm::kInPlace;
    BuildConfig config{};
    /// Serving backend for this build (kCompact unless tune_backend).
    QueryBackend backend = QueryBackend::kCompact;
    /// True when this build's frame completes the current tuning measurement.
    bool probe = false;
  };

  /// Configuration for the next build the pipeline launches.
  Trial next_trial();

  /// Reports a retired frame: `probe` must be the flag next_trial() issued
  /// for the build of that frame's tree. Probe frames complete the current
  /// measurement (build + query_weight * query) and advance the search.
  void frame_retired(bool probe, double build_seconds, double query_seconds);

  /// True once every candidate had its selection budget (trivially true for
  /// a single candidate).
  bool selection_done() const noexcept;

  /// The algorithm currently issuing trials (the winner once selection_done).
  Algorithm current_algorithm() const noexcept;

  /// Best (algorithm, config, backend, objective seconds) found so far.
  Algorithm best_algorithm() const;
  BuildConfig best_config() const;
  QueryBackend best_backend() const;
  double best_objective() const;

  /// Probe measurements completed across all candidates.
  std::size_t iterations() const noexcept;

  /// True when the active candidate's search has converged.
  bool converged() const;

  const Tuner& tuner(Algorithm a) const;
  double query_weight() const noexcept { return opts_.query_weight; }

  /// Attaches `log` to every candidate tuner (stream names
  /// "frame:<algorithm>"). The log must outlive this FrameTuner.
  void set_log(TunerLog* log);

 private:
  struct Candidate {
    Algorithm algorithm = Algorithm::kInPlace;
    BuildConfig config{};  ///< tuner-owned parameter storage
    std::int64_t backend = 0;  ///< tuner-owned QueryBackend (tune_backend)
    bool tunes_backend = false;
    std::unique_ptr<Tuner> tuner;
    std::size_t probe_frames = 0;
    bool started = false;  ///< first apply_next() issued
    bool warmed = false;   ///< seeded by warm_start / warm_start_db
  };

  Candidate& active();
  const Candidate& active() const;
  void maybe_advance_selection();

  FrameTunerOptions opts_;
  std::vector<Candidate> candidates_;
  std::size_t phase_ = 0;       ///< candidate under selection; == size when done
  std::size_t winner_ = 0;      ///< valid once selection_done()
  bool probe_outstanding_ = false;
  std::size_t iterations_ = 0;
};

}  // namespace kdtune
