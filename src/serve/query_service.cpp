#include "serve/query_service.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "kdtree/packet.hpp"
#include "obs/trace.hpp"

namespace kdtune {

namespace {

constexpr std::int64_t kMaxBatchSize = 1 << 20;

ServingParams clamp_params(ServingParams p) noexcept {
  p.batch_size = std::clamp<std::int64_t>(p.batch_size, 1, kMaxBatchSize);
  p.flush_timeout_us = std::max<std::int64_t>(p.flush_timeout_us, 0);
  p.max_inflight_batches = std::max<std::int64_t>(p.max_inflight_batches, 0);
  for (FamilyParams& f : p.family) {
    // 0 / -1 are the inherit sentinels; anything below clamps onto them.
    f.batch_size = std::clamp<std::int64_t>(f.batch_size, 0, kMaxBatchSize);
    f.flush_timeout_us = std::max<std::int64_t>(f.flush_timeout_us, -1);
  }
  return p;
}

double seconds_between(QueryService::Clock::time_point a,
                       QueryService::Clock::time_point b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::string_view to_string(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::kClosestHit: return "closest_hit";
    case QueryKind::kAnyHit: return "any_hit";
    case QueryKind::kPacket: return "packet";
    case QueryKind::kRange: return "range";
    case QueryKind::kNearest: return "nearest";
    case QueryKind::kClosestPoint: return "closest_point";
  }
  return "unknown";
}

std::string_view to_string(QueryStatus status) noexcept {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kSceneNotFound: return "scene_not_found";
    case QueryStatus::kRejectedOverflow: return "rejected_overflow";
    case QueryStatus::kTimedOut: return "timed_out";
    case QueryStatus::kShutdown: return "shutdown";
    case QueryStatus::kRejectedQuota: return "rejected_quota";
    case QueryStatus::kError: return "error";
  }
  return "unknown";
}

QueryService::QueryService(SceneRegistry& registry, ThreadPool& pool,
                           ServiceOptions opts)
    : registry_(registry),
      pool_(pool),
      max_queue_(std::max<std::size_t>(opts.max_queue, 1)),
      started_(Clock::now()),
      params_(clamp_params(opts.params)) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QueryService::~QueryService() { shutdown(); }

std::future<QueryResponse> QueryService::submit_closest_hit(
    std::string scene, const Ray& ray, Clock::time_point deadline) {
  Request req;
  req.kind = QueryKind::kClosestHit;
  req.scene = std::move(scene);
  req.ray = ray;
  req.deadline = deadline;
  return submit(std::move(req));
}

std::future<QueryResponse> QueryService::submit_any_hit(
    std::string scene, const Ray& ray, Clock::time_point deadline) {
  Request req;
  req.kind = QueryKind::kAnyHit;
  req.scene = std::move(scene);
  req.ray = ray;
  req.deadline = deadline;
  return submit(std::move(req));
}

std::future<QueryResponse> QueryService::submit_packet(
    std::string scene, std::vector<Ray> rays, Clock::time_point deadline) {
  Request req;
  req.kind = QueryKind::kPacket;
  req.scene = std::move(scene);
  req.rays = std::move(rays);
  req.deadline = deadline;
  return submit(std::move(req));
}

std::future<QueryResponse> QueryService::submit_range(
    std::string scene, const AABB& box, Clock::time_point deadline) {
  Request req;
  req.kind = QueryKind::kRange;
  req.scene = std::move(scene);
  req.box = box;
  req.deadline = deadline;
  return submit(std::move(req));
}

std::future<QueryResponse> QueryService::submit_nearest(
    std::string scene, const Vec3& point, std::uint32_t k, float max_distance,
    Clock::time_point deadline) {
  Request req;
  req.kind = QueryKind::kNearest;
  req.scene = std::move(scene);
  req.point = point;
  req.k = std::max<std::uint32_t>(k, 1);
  req.max_distance = max_distance;
  req.deadline = deadline;
  return submit(std::move(req));
}

std::future<QueryResponse> QueryService::submit_closest_point(
    std::string scene, const Vec3& point, float max_distance,
    Clock::time_point deadline) {
  Request req;
  req.kind = QueryKind::kClosestPoint;
  req.scene = std::move(scene);
  req.point = point;
  req.max_distance = max_distance;
  req.deadline = deadline;
  return submit(std::move(req));
}

std::future<QueryResponse> QueryService::submit(Request req) {
  req.submitted = Clock::now();
  std::future<QueryResponse> fut = req.promise.get_future();
  const int kind = static_cast<int>(req.kind);

  QueryStatus reject = QueryStatus::kOk;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!accepting_) {
      reject = QueryStatus::kShutdown;
    } else if (pending_ >= max_queue_) {
      reject = QueryStatus::kRejectedOverflow;
    } else {
      counters_[kind].accepted.fetch_add(1, std::memory_order_relaxed);
      queues_[static_cast<std::size_t>(kind)].push_back(std::move(req));
      depth = ++pending_;
    }
  }
  if (reject == QueryStatus::kOk) {
    dispatch_cv_.notify_one();
    trace_counter("serve.queue_depth", static_cast<double>(depth), "serve");
    return fut;
  }

  // Rejection path: resolve the future immediately — admission control must
  // never block a caller, and a rejected request is complete by definition.
  if (reject == QueryStatus::kShutdown) {
    counters_[kind].rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_[kind].rejected_overflow.fetch_add(1, std::memory_order_relaxed);
  }
  QueryResponse resp;
  resp.status = reject;
  resp.kind = req.kind;
  req.promise.set_value(std::move(resp));
  return fut;
}

void QueryService::set_serving_params(const ServingParams& params) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    params_ = clamp_params(params);
  }
  dispatch_cv_.notify_all();
}

ServingParams QueryService::serving_params() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return params_;
}

bool QueryService::accepting() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return accepting_;
}

void QueryService::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    if (stop_ && pending_ == 0) return;
    if (pending_ == 0) {
      dispatch_cv_.wait(lk);
      continue;
    }
    const ServingParams params = params_;
    const std::size_t inflight_cap =
        params.max_inflight_batches > 0
            ? static_cast<std::size_t>(params.max_inflight_batches)
            : pool_.concurrency();
    if (inflight_batches_ >= inflight_cap) {
      dispatch_cv_.wait(lk);  // a batch completion frees a slot
      continue;
    }

    // Pick a family to flush. A family is ready when its batch fills, its
    // oldest request has waited out the family's flush timeout, or the
    // service is draining/stopping. Among ready families the oldest head
    // request wins (FIFO fairness across families); when none is ready,
    // sleep until the earliest family flush deadline.
    const Clock::time_point now = Clock::now();
    const bool force = drain_waiters_ > 0 || !accepting_ || stop_;
    int pick = -1;
    Clock::time_point earliest_flush = Clock::time_point::max();
    for (int k = 0; k < kQueryKindCount; ++k) {
      const auto& q = queues_[static_cast<std::size_t>(k)];
      if (q.empty()) continue;
      const QueryKind kind = static_cast<QueryKind>(k);
      const std::size_t cap =
          static_cast<std::size_t>(params.effective_batch(kind));
      const Clock::time_point flush_at =
          q.front().submitted +
          std::chrono::microseconds(params.effective_flush_us(kind));
      if (force || q.size() >= cap || now >= flush_at) {
        if (pick < 0 ||
            q.front().submitted <
                queues_[static_cast<std::size_t>(pick)].front().submitted) {
          pick = k;
        }
      } else {
        earliest_flush = std::min(earliest_flush, flush_at);
      }
    }
    if (pick < 0) {
      dispatch_cv_.wait_until(lk, earliest_flush);
      continue;
    }

    auto& queue = queues_[static_cast<std::size_t>(pick)];
    const std::size_t batch_cap = static_cast<std::size_t>(
        params.effective_batch(static_cast<QueryKind>(pick)));
    auto batch = std::make_shared<std::vector<Request>>();
    batch->reserve(std::min(batch_cap, queue.size()));
    while (!queue.empty() && batch->size() < batch_cap) {
      batch->push_back(std::move(queue.front()));
      queue.pop_front();
    }
    pending_ -= batch->size();
    inflight_requests_ += batch->size();
    ++inflight_batches_;
    const double inflight_now = static_cast<double>(inflight_batches_);
    lk.unlock();
    trace_instant("serve.flush", "serve");
    trace_counter("serve.inflight_batches", inflight_now, "serve");
    if (pool_.worker_count() == 0) {
      // Sequential degradation: no workers to hand the batch to, so the
      // dispatcher thread executes it inline.
      run_batch(std::move(*batch));
    } else {
      pool_.submit([this, batch] { run_batch(std::move(*batch)); });
    }
    lk.lock();
  }
}

void QueryService::execute(
    Request& req, QueryResponse& resp,
    std::vector<std::pair<std::string, std::shared_ptr<const SceneSnapshot>>>&
        snapshots) const {
  // Per-batch snapshot memo: one registry acquire per distinct scene per
  // batch. Linear scan — batches reference a handful of scenes at most.
  const std::shared_ptr<const SceneSnapshot>* snap = nullptr;
  for (const auto& [name, cached] : snapshots) {
    if (name == req.scene) {
      snap = &cached;
      break;
    }
  }
  if (snap == nullptr) {
    snapshots.emplace_back(req.scene, registry_.acquire(req.scene));
    snap = &snapshots.back().second;
  }
  if (*snap == nullptr) {
    resp.status = QueryStatus::kSceneNotFound;
    return;
  }
  const SceneSnapshot& snapshot = **snap;
  resp.scene_version = snapshot.version;
  switch (req.kind) {
    case QueryKind::kClosestHit:
      resp.hit = snapshot.tree->closest_hit(req.ray);
      break;
    case QueryKind::kAnyHit:
      resp.any = snapshot.tree->any_hit(req.ray);
      break;
    case QueryKind::kPacket:
      resp.hits.resize(req.rays.size());
      closest_hit_packet_any(*snapshot.tree, req.rays, resp.hits);
      break;
    case QueryKind::kRange:
      snapshot.tree->query_range(req.box, resp.range_ids);
      // Canonicalize: trees may emit ids in traversal order; a sorted,
      // deduped list is bit-comparable across every backend.
      std::sort(resp.range_ids.begin(), resp.range_ids.end());
      resp.range_ids.erase(
          std::unique(resp.range_ids.begin(), resp.range_ids.end()),
          resp.range_ids.end());
      break;
    case QueryKind::kNearest:
      snapshot.tree->nearest_k(req.point, req.k, resp.neighbors,
                               req.max_distance);
      break;
    case QueryKind::kClosestPoint:
      resp.nearest =
          snapshot.tree->nearest_within(req.point, req.max_distance);
      break;
  }
  resp.status = QueryStatus::kOk;
}

void QueryService::run_batch(std::vector<Request> batch) {
  TraceSpan span("serve.batch", "serve");
  trace_counter("serve.batch_size", static_cast<double>(batch.size()),
                "serve");
  batch_occupancy_.record(batch.size());
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (!batch.empty()) {
    // Batches are homogeneous per family, so the front request's kind is
    // the batch's kind.
    counters_[static_cast<std::size_t>(batch.front().kind)].batches.fetch_add(
        1, std::memory_order_relaxed);
  }
  std::vector<std::pair<std::string, std::shared_ptr<const SceneSnapshot>>>
      snapshots;

  for (Request& req : batch) {
    QueryResponse resp;
    resp.kind = req.kind;
    const int kind = static_cast<int>(req.kind);
    try {
      if (Clock::now() >= req.deadline) {
        resp.status = QueryStatus::kTimedOut;
      } else {
        execute(req, resp, snapshots);
      }
    } catch (...) {
      resp.status = QueryStatus::kError;
    }
    switch (resp.status) {
      case QueryStatus::kOk:
        counters_[kind].completed.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryStatus::kTimedOut:
        counters_[kind].timed_out.fetch_add(1, std::memory_order_relaxed);
        break;
      case QueryStatus::kSceneNotFound:
        counters_[kind].not_found.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        counters_[kind].failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    resp.latency_seconds = seconds_between(req.submitted, Clock::now());
    latency_[kind].record_seconds(resp.latency_seconds);
    req.promise.set_value(std::move(resp));
  }

  {
    std::lock_guard<std::mutex> lk(mutex_);
    inflight_requests_ -= batch.size();
    --inflight_batches_;
    // Notify while holding the mutex: a drain()/shutdown() waiter may
    // destroy this service the moment it observes completion, so the
    // notifies must finish before the waiter can re-acquire the lock —
    // notifying after unlock would race ~QueryService.
    dispatch_cv_.notify_one();  // an in-flight slot freed up
    done_cv_.notify_all();      // drain() may be waiting on this batch
  }
  trace_instant("serve.batch_complete", "serve");
}

void QueryService::drain() {
  std::unique_lock<std::mutex> lk(mutex_);
  ++drain_waiters_;
  dispatch_cv_.notify_all();  // flush partial batches immediately
  done_cv_.wait(lk, [this] {
    return pending_ == 0 && inflight_requests_ == 0;
  });
  --drain_waiters_;
}

void QueryService::shutdown() {
  std::lock_guard<std::mutex> shutdown_lk(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    accepting_ = false;
  }
  dispatch_cv_.notify_all();
  drain();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  for (int k = 0; k < kQueryKindCount; ++k) {
    EndpointStats& e = s.endpoints[static_cast<std::size_t>(k)];
    const KindCounters& c = counters_[static_cast<std::size_t>(k)];
    e.accepted = c.accepted.load(std::memory_order_relaxed);
    e.completed = c.completed.load(std::memory_order_relaxed);
    e.rejected_overflow = c.rejected_overflow.load(std::memory_order_relaxed);
    e.rejected_shutdown = c.rejected_shutdown.load(std::memory_order_relaxed);
    e.rejected_quota = c.rejected_quota.load(std::memory_order_relaxed);
    e.rejected = e.rejected_overflow + e.rejected_shutdown + e.rejected_quota;
    e.timed_out = c.timed_out.load(std::memory_order_relaxed);
    e.not_found = c.not_found.load(std::memory_order_relaxed);
    e.failed = c.failed.load(std::memory_order_relaxed);
    e.batches = c.batches.load(std::memory_order_relaxed);
    const LogHistogram& h = latency_[static_cast<std::size_t>(k)];
    e.p50_seconds = h.quantile_seconds(0.5);
    e.p99_seconds = h.quantile_seconds(0.99);
    e.mean_seconds = h.mean_seconds();
    s.accepted += e.accepted;
    s.completed += e.completed;
    s.rejected_overflow += e.rejected_overflow;
    s.rejected_shutdown += e.rejected_shutdown;
    s.rejected_quota += e.rejected_quota;
    s.rejected += e.rejected;
    s.timed_out += e.timed_out;
    s.not_found += e.not_found;
    s.failed += e.failed;
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mean_batch_occupancy = batch_occupancy_.mean();
  s.p50_batch_occupancy = batch_occupancy_.quantile(0.5);
  s.swaps = registry_.swap_count();
  s.uptime_seconds = seconds_between(started_, Clock::now());
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0.0;
  return s;
}

std::string QueryService::stats_json() const {
  const ServiceStats s = stats();
  std::string out;
  out.reserve(1024);
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"uptime_seconds\": %.3f,\n  \"qps\": %.1f,\n"
      "  \"accepted\": %llu,\n  \"completed\": %llu,\n"
      "  \"rejected\": %llu,\n  \"rejected_overflow\": %llu,\n"
      "  \"rejected_shutdown\": %llu,\n  \"rejected_quota\": %llu,\n"
      "  \"timed_out\": %llu,\n"
      "  \"not_found\": %llu,\n  \"failed\": %llu,\n"
      "  \"batches\": %llu,\n  \"mean_batch_occupancy\": %.2f,\n"
      "  \"p50_batch_occupancy\": %llu,\n  \"swaps\": %llu,\n"
      "  \"endpoints\": {\n",
      s.uptime_seconds, s.qps, static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected),
      static_cast<unsigned long long>(s.rejected_overflow),
      static_cast<unsigned long long>(s.rejected_shutdown),
      static_cast<unsigned long long>(s.rejected_quota),
      static_cast<unsigned long long>(s.timed_out),
      static_cast<unsigned long long>(s.not_found),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.batches), s.mean_batch_occupancy,
      static_cast<unsigned long long>(s.p50_batch_occupancy),
      static_cast<unsigned long long>(s.swaps));
  out += buf;
  for (int k = 0; k < kQueryKindCount; ++k) {
    const EndpointStats& e = s.endpoints[static_cast<std::size_t>(k)];
    std::snprintf(
        buf, sizeof(buf),
        "    \"%s\": {\"accepted\": %llu, \"completed\": %llu, "
        "\"rejected\": %llu, \"rejected_overflow\": %llu, "
        "\"rejected_shutdown\": %llu, \"rejected_quota\": %llu, "
        "\"timed_out\": %llu, \"not_found\": %llu, "
        "\"failed\": %llu, \"batches\": %llu, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"mean_us\": %.1f}%s\n",
        std::string(to_string(static_cast<QueryKind>(k))).c_str(),
        static_cast<unsigned long long>(e.accepted),
        static_cast<unsigned long long>(e.completed),
        static_cast<unsigned long long>(e.rejected),
        static_cast<unsigned long long>(e.rejected_overflow),
        static_cast<unsigned long long>(e.rejected_shutdown),
        static_cast<unsigned long long>(e.rejected_quota),
        static_cast<unsigned long long>(e.timed_out),
        static_cast<unsigned long long>(e.not_found),
        static_cast<unsigned long long>(e.failed),
        static_cast<unsigned long long>(e.batches), e.p50_seconds * 1e6,
        e.p99_seconds * 1e6, e.mean_seconds * 1e6,
        k + 1 < kQueryKindCount ? "," : "");
    out += buf;
  }
  out += "  }\n}\n";
  return out;
}

}  // namespace kdtune
