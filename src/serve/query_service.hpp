#pragma once

// Micro-batched asynchronous ray query service.
//
// Clients submit heterogeneous requests (closest-hit, any-hit, packet-of-
// rays) against named scenes in a SceneRegistry and get a std::future for
// the response. A dispatcher thread collects requests from a lock-guarded,
// *bounded* submission queue into batches — flushed when the batch fills or
// the oldest request has waited flush_timeout_us — and hands each batch to
// the shared ThreadPool. Batching amortizes task dispatch and snapshot
// acquisition over many requests, which is where single-query serving
// throughput goes to die.
//
// Contracts (tested in tests/test_serve_service.cpp):
//   * Admission control: submit() never blocks. A full queue rejects with
//     kRejectedOverflow; a shut-down service rejects with kShutdown; both as
//     immediately-ready futures.
//   * Exactly-once completion: every *accepted* request gets exactly one
//     response, even through drain/shutdown and hot swaps.
//   * Deadlines: a request whose deadline expired before execution completes
//     with kTimedOut instead of running.
//   * drain() returns once every accepted request has completed; shutdown()
//     additionally stops admission first and then the dispatcher (and is
//     what the destructor runs).
//
// The serving knobs (batch size, flush timeout, in-flight batch cap a.k.a.
// worker share) are mutable at runtime via set_serving_params() — that is
// the surface the ServeTuner drives with the paper's online tuning loop.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/histogram.hpp"
#include "geom/ray.hpp"
#include "serve/scene_registry.hpp"

namespace kdtune {

enum class QueryKind : int { kClosestHit = 0, kAnyHit = 1, kPacket = 2 };
inline constexpr int kQueryKindCount = 3;
std::string_view to_string(QueryKind kind) noexcept;

enum class QueryStatus {
  kOk,
  kSceneNotFound,      ///< scene name unknown at execution time
  kRejectedOverflow,   ///< admission control: queue full at submit
  kTimedOut,           ///< deadline expired before execution
  kShutdown,           ///< submitted after shutdown began
  kError,              ///< query threw (never expected; the catch-all)
};
std::string_view to_string(QueryStatus status) noexcept;

struct QueryResponse {
  QueryStatus status = QueryStatus::kError;
  QueryKind kind = QueryKind::kClosestHit;
  std::uint64_t scene_version = 0;  ///< snapshot version that served it
  Hit hit{};                        ///< closest-hit result
  bool any = false;                 ///< any-hit result
  std::vector<Hit> hits;            ///< packet result, one per ray
  double latency_seconds = 0.0;     ///< submit-to-completion
};

/// The tuner-driven serving knobs. All values clamp to sane minima on apply.
struct ServingParams {
  std::int64_t batch_size = 16;
  std::int64_t flush_timeout_us = 200;
  /// Cap on concurrently executing batches (the service's share of the pool);
  /// 0 means the pool's full concurrency.
  std::int64_t max_inflight_batches = 0;
};

struct ServiceOptions {
  /// Admission bound: pending (undispatched) requests beyond this reject.
  std::size_t max_queue = 4096;
  ServingParams params{};
};

struct EndpointStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;   ///< kOk responses
  std::uint64_t rejected = 0;    ///< overflow + shutdown rejections
  std::uint64_t timed_out = 0;
  std::uint64_t not_found = 0;
  std::uint64_t failed = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double mean_seconds = 0.0;
};

struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t not_found = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  double mean_batch_occupancy = 0.0;
  std::uint64_t p50_batch_occupancy = 0;
  std::uint64_t swaps = 0;       ///< registry hot swaps observed so far
  double uptime_seconds = 0.0;
  double qps = 0.0;              ///< completed responses per uptime second
  std::array<EndpointStats, kQueryKindCount> endpoints{};
};

class QueryService {
 public:
  using Clock = std::chrono::steady_clock;

  QueryService(SceneRegistry& registry, ThreadPool& pool,
               ServiceOptions opts = {});
  ~QueryService();  ///< shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  std::future<QueryResponse> submit_closest_hit(
      std::string scene, const Ray& ray,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_any_hit(
      std::string scene, const Ray& ray,
      Clock::time_point deadline = Clock::time_point::max());
  std::future<QueryResponse> submit_packet(
      std::string scene, std::vector<Ray> rays,
      Clock::time_point deadline = Clock::time_point::max());

  /// Thread-safe; takes effect for the next batch decision.
  void set_serving_params(const ServingParams& params);
  ServingParams serving_params() const;

  /// Blocks until every accepted request has completed. Callers should stop
  /// submitting first (concurrent submits merely extend the wait).
  void drain();

  /// Stops admission, drains, and stops the dispatcher. Idempotent.
  void shutdown();

  bool accepting() const;
  unsigned concurrency() const noexcept { return pool_.concurrency(); }
  SceneRegistry& registry() const noexcept { return registry_; }

  ServiceStats stats() const;
  std::string stats_json() const;

 private:
  struct Request {
    QueryKind kind = QueryKind::kClosestHit;
    std::string scene;
    Ray ray{};
    std::vector<Ray> rays;
    Clock::time_point deadline{};
    Clock::time_point submitted{};
    std::promise<QueryResponse> promise;
  };

  struct KindCounters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> timed_out{0};
    std::atomic<std::uint64_t> not_found{0};
    std::atomic<std::uint64_t> failed{0};
  };

  std::future<QueryResponse> submit(Request req);
  void dispatcher_loop();
  void run_batch(std::vector<Request> batch);
  void execute(Request& req, QueryResponse& resp,
               std::vector<std::pair<std::string,
                                     std::shared_ptr<const SceneSnapshot>>>&
                   snapshots) const;

  SceneRegistry& registry_;
  ThreadPool& pool_;
  const std::size_t max_queue_;
  const Clock::time_point started_;

  mutable std::mutex mutex_;  ///< guards queue_, params_, flags, in-flight
  std::condition_variable dispatch_cv_;  ///< wakes the dispatcher
  std::condition_variable done_cv_;      ///< wakes drain() waiters
  std::deque<Request> queue_;
  ServingParams params_;
  bool accepting_ = true;
  bool stop_ = false;
  int drain_waiters_ = 0;
  std::size_t inflight_requests_ = 0;
  std::size_t inflight_batches_ = 0;

  std::array<KindCounters, kQueryKindCount> counters_;
  std::array<LogHistogram, kQueryKindCount> latency_;  ///< nanoseconds
  LogHistogram batch_occupancy_;
  std::atomic<std::uint64_t> batches_{0};

  std::mutex shutdown_mutex_;  ///< serializes shutdown() callers
  std::thread dispatcher_;     ///< last member: starts in the ctor body
};

}  // namespace kdtune
